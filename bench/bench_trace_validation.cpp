// bench_trace_validation — measured execution traces vs the analytic
// makespan model (§5.1 folklore).
//
// Every scheme runs through the real (traced) MR pipeline twice:
//   * compute-heavy regime: small elements, expensive comp() — the paper
//     says broadcast wins (fewest, perfectly balanced waves);
//   * shipping-heavy regime: large elements, cheap comp() — block's
//     minimal replication should win.
//
// The trace gives the measured side of the comparison. The simulator
// moves bytes by reference, so wire time is normalized: measured ship and
// aggregate seconds are the traced byte volumes times the model's
// network rate, while compute is the wave-packed reduce/map execution
// seconds actually spent evaluating comp(). The analytic side is
// estimate_makespan with the compute rate calibrated from the measured
// busy seconds (c = busy / C(v,2)) and the same wire rate, so both sides
// price resources identically and only the *structure* (replication,
// waves, working sets) differs.
//
// Asserts, exiting non-zero on violation:
//   * folklore winners — broadcast beats block when compute-heavy; block
//     beats broadcast and design when shipping-heavy (measured AND
//     analytic, every gap is structurally >= 2x);
//   * ranking agreement — for any scheme pair whose analytic totals
//     differ by >= 1.5x, the measured totals order the same way;
//   * phase ordering — where the model predicts ship >= 2x compute (or
//     the reverse), the measured phases order the same way;
//   * span accounting — the trace covers exactly the tasks the engine ran.
//
// Emits BENCH_trace_validation.json with the per-regime, per-scheme
// measured and analytic phase seconds and the assertion verdicts.
#include <cmath>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "common/units.hpp"
#include "mr/cluster.hpp"
#include "mr/trace.hpp"
#include "pairwise/block_scheme.hpp"
#include "pairwise/broadcast_scheme.hpp"
#include "pairwise/cost_model.hpp"
#include "pairwise/dataset.hpp"
#include "pairwise/design_scheme.hpp"
#include "pairwise/makespan.hpp"
#include "pairwise/pipeline.hpp"
#include "pairwise/runner.hpp"
#include "workloads/generators.hpp"
#include "workloads/kernels.hpp"

namespace {

using namespace pairmr;

constexpr std::uint32_t kNodes = 4;
constexpr double kWireSecondsPerByte = 1e-8;  // 100 MB/s, as the model

struct SchemeRun {
  std::string scheme;
  SchemeMetrics metrics;

  // Wire-normalized measured phases (seconds).
  double ship_seconds = 0.0;
  double compute_seconds = 0.0;  // wave-packed measured execution
  double aggregate_seconds = 0.0;
  double overhead_seconds = 0.0;

  std::uint64_t ship_bytes = 0;
  std::uint64_t aggregate_bytes = 0;
  double compute_busy_seconds = 0.0;
  std::uint64_t waves = 0;
  std::uint64_t evaluations = 0;

  MakespanBreakdown analytic;

  double total() const {
    return ship_seconds + compute_seconds + aggregate_seconds +
           overhead_seconds;
  }
};

struct Regime {
  std::string name;
  std::uint64_t element_bytes;
  PairwiseJob job;
  std::string expected_winner;  // §5.1 folklore
  std::vector<SchemeRun> runs;
};

bool g_ok = true;

void check(bool condition, const std::string& what) {
  std::cout << (condition ? "  [ok]   " : "  [FAIL] ") << what << "\n";
  if (!condition) g_ok = false;
}

SchemeRun run_scheme(const DistributionScheme& scheme, const PairwiseJob& job,
                     const std::vector<std::string>& payloads) {
  mr::Cluster cluster({.num_nodes = kNodes, .worker_threads = 0});
  mr::Tracer tracer;
  cluster.set_tracer(&tracer);
  const auto inputs = write_dataset(cluster, "/data", payloads);

  PairwiseOptions options;
  // One engine reduce task per scheme task, so the trace sees the
  // scheme's work units (and waves) unmerged.
  const auto tasks = static_cast<std::uint32_t>(scheme.num_tasks());
  options.num_reduce_tasks = tasks;
  options.distribute_partitioner =
      std::make_shared<mr::RangePartitioner>(scheme.num_tasks());
  RunSpec spec;
  spec.input_paths = inputs;
  spec.scheme = borrow_scheme(scheme);
  spec.job = job;
  spec.options = options;
  const RunReport stats = PairwiseRunner(cluster).run(spec);

  const mr::PhaseBreakdown d =
      tracer.phase_breakdown(stats.compute_jobs.front().job_name, kNodes);
  const mr::PhaseBreakdown a =
      tracer.phase_breakdown(stats.merge_jobs.front().job_name, kNodes);

  SchemeRun run;
  run.scheme = scheme.name();
  run.metrics = scheme.metrics();
  // Distribution: job 1's shuffle moves the replicated element copies.
  run.ship_bytes = d.ship_bytes;
  run.ship_seconds =
      static_cast<double>(d.ship_bytes) * kWireSecondsPerByte;
  // Aggregation: job 2's shuffle moves every copy again, results attached.
  run.aggregate_bytes = a.ship_bytes;
  run.aggregate_seconds =
      static_cast<double>(a.ship_bytes) * kWireSecondsPerByte;
  run.compute_seconds = d.compute_seconds + a.compute_seconds;
  run.overhead_seconds = d.overhead_seconds + a.overhead_seconds;
  run.compute_busy_seconds = d.compute_busy_seconds;
  run.waves = d.compute_waves;
  run.evaluations = stats.evaluations;

  // Span accounting: the trace must cover exactly the tasks the engine
  // ran — job 1's map tasks plus its per-scheme reduce tasks.
  check(d.tasks == stats.compute_jobs.front().map_tasks.size() + tasks,
        run.scheme + ": trace covers all " + std::to_string(d.tasks) +
            " distribute-job tasks");
  return run;
}

Regime run_regime(Regime regime, const std::vector<std::string>& payloads,
                  std::uint64_t v) {
  std::cout << "\n--- regime: " << regime.name << " (s = "
            << format_bytes(regime.element_bytes) << ") ---\n";
  const BroadcastScheme broadcast(v, kNodes);
  const BlockScheme block(v, /*h=*/2);
  const DesignScheme design(v);
  regime.runs.push_back(run_scheme(broadcast, regime.job, payloads));
  regime.runs.push_back(run_scheme(block, regime.job, payloads));
  regime.runs.push_back(run_scheme(design, regime.job, payloads));

  // Calibrate the analytic model from the measurements: per-evaluation
  // cost from the traced busy seconds, per-task overhead from the traced
  // framework residue. Structure (replication, waves) stays analytic.
  CostRates rates;
  rates.network_seconds_per_byte = kWireSecondsPerByte;
  double c = 0.0, o = 0.0;
  for (const SchemeRun& r : regime.runs) {
    c += r.compute_busy_seconds / static_cast<double>(r.evaluations);
    o += r.overhead_seconds * kNodes /
         static_cast<double>(r.metrics.num_tasks);
  }
  rates.compute_seconds_per_eval = c / static_cast<double>(regime.runs.size());
  rates.task_overhead_seconds = o / static_cast<double>(regime.runs.size());

  TablePrinter t({"scheme", "ship (s)", "compute (s)", "aggregate (s)",
                  "overhead (s)", "measured total", "analytic total",
                  "waves"});
  t.set_caption("measured (wire-normalized trace) vs analytic phases");
  for (SchemeRun& r : regime.runs) {
    r.analytic = estimate_makespan(r.metrics, v, regime.element_bytes,
                                   kNodes, rates);
    t.add_row({r.scheme, TablePrinter::sci(r.ship_seconds, 2),
               TablePrinter::sci(r.compute_seconds, 2),
               TablePrinter::sci(r.aggregate_seconds, 2),
               TablePrinter::sci(r.overhead_seconds, 2),
               TablePrinter::sci(r.total(), 2),
               TablePrinter::sci(r.analytic.total(), 2),
               TablePrinter::num(r.waves)});
  }
  t.print(std::cout);

  // Folklore winner, measured and analytic.
  const SchemeRun* measured_best = &regime.runs[0];
  const SchemeRun* analytic_best = &regime.runs[0];
  for (const SchemeRun& r : regime.runs) {
    if (r.total() < measured_best->total()) measured_best = &r;
    if (r.analytic.total() < analytic_best->analytic.total()) {
      analytic_best = &r;
    }
  }
  check(measured_best->scheme == regime.expected_winner,
        "measured winner is " + regime.expected_winner + " (got " +
            measured_best->scheme + ")");
  check(analytic_best->scheme == regime.expected_winner,
        "analytic winner is " + regime.expected_winner + " (got " +
            analytic_best->scheme + ")");

  // Ranking agreement wherever the model separates schemes by >= 1.5x.
  for (const SchemeRun& fast : regime.runs) {
    for (const SchemeRun& slow : regime.runs) {
      if (fast.analytic.total() * 1.5 > slow.analytic.total()) continue;
      check(fast.total() < slow.total(),
            "measured agrees: " + fast.scheme + " < " + slow.scheme +
                " (analytic gap " +
                TablePrinter::num(
                    slow.analytic.total() / fast.analytic.total(), 1) +
                "x)");
    }
  }

  // Phase ordering wherever the model predicts a >= 2x gap.
  for (const SchemeRun& r : regime.runs) {
    if (r.analytic.ship_seconds >= 2.0 * r.analytic.compute_seconds) {
      check(r.ship_seconds > r.compute_seconds,
            r.scheme + ": measured ship dominates compute");
    } else if (r.analytic.compute_seconds >= 2.0 * r.analytic.ship_seconds) {
      check(r.compute_seconds > r.ship_seconds,
            r.scheme + ": measured compute dominates ship");
    }
  }
  return regime;
}

void append_json(std::string& out, const Regime& regime) {
  out += "    {\"regime\": \"" + regime.name + "\", \"expected_winner\": \"" +
         regime.expected_winner + "\", \"element_bytes\": " +
         std::to_string(regime.element_bytes) + ", \"schemes\": [\n";
  for (std::size_t i = 0; i < regime.runs.size(); ++i) {
    const SchemeRun& r = regime.runs[i];
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "      {\"scheme\": \"%s\", \"measured\": {\"ship_seconds\": %.9g, "
        "\"compute_seconds\": %.9g, \"aggregate_seconds\": %.9g, "
        "\"overhead_seconds\": %.9g, \"total_seconds\": %.9g, "
        "\"ship_bytes\": %llu, \"aggregate_bytes\": %llu, \"waves\": %llu}, "
        "\"analytic\": {\"ship_seconds\": %.9g, \"compute_seconds\": %.9g, "
        "\"aggregate_seconds\": %.9g, \"overhead_seconds\": %.9g, "
        "\"total_seconds\": %.9g}}%s\n",
        r.scheme.c_str(), r.ship_seconds, r.compute_seconds,
        r.aggregate_seconds, r.overhead_seconds, r.total(),
        static_cast<unsigned long long>(r.ship_bytes),
        static_cast<unsigned long long>(r.aggregate_bytes),
        static_cast<unsigned long long>(r.waves), r.analytic.ship_seconds,
        r.analytic.compute_seconds, r.analytic.aggregate_seconds,
        r.analytic.overhead_seconds, r.analytic.total(),
        i + 1 < regime.runs.size() ? "," : "");
    out += buf;
  }
  out += "    ]}";
}

}  // namespace

int main() {
  std::cout << "=== bench_trace_validation: traced phases vs the analytic "
               "makespan model ===\n";

  const std::uint64_t v = 120;

  // Compute-heavy: tiny elements, expensive comp(). Broadcast's p = n
  // perfectly balanced waves beat block's lumpy h = 2 tasks (its biggest
  // task holds (v/2)^2 pairs, ~2x broadcast's per-task share).
  Regime compute_heavy;
  compute_heavy.name = "compute-heavy";
  compute_heavy.element_bytes = 64;
  compute_heavy.job.compute = workloads::expensive_blob_kernel(32);
  compute_heavy.expected_winner = "broadcast";
  compute_heavy = run_regime(
      std::move(compute_heavy),
      workloads::blob_payloads(v, compute_heavy.element_bytes, 7), v);

  // Shipping-heavy: big elements, near-free comp(). Block h = 2 ships
  // each element twice; broadcast p = n ships it four times, design
  // ~sqrt(v) times.
  Regime shipping_heavy;
  shipping_heavy.name = "shipping-heavy";
  shipping_heavy.element_bytes = 32 * kKiB;
  shipping_heavy.job.compute = [](const Element& a, const Element& b) {
    return workloads::encode_result(static_cast<double>(
        a.payload.size() > b.payload.size() ? a.payload.size() -
                                                  b.payload.size()
                                            : b.payload.size() -
                                                  a.payload.size()));
  };
  shipping_heavy.expected_winner = "block";
  shipping_heavy = run_regime(
      std::move(shipping_heavy),
      workloads::blob_payloads(v, shipping_heavy.element_bytes, 7), v);

  std::string json = "{\n  \"bench\": \"trace_validation\", \"v\": " +
                     std::to_string(v) + ", \"nodes\": " +
                     std::to_string(kNodes) + ",\n  \"regimes\": [\n";
  append_json(json, compute_heavy);
  json += ",\n";
  append_json(json, shipping_heavy);
  json += "\n  ],\n  \"passed\": ";
  json += g_ok ? "true" : "false";
  json += "\n}\n";
  std::ofstream out("BENCH_trace_validation.json");
  out << json;
  std::cout << "\nwrote BENCH_trace_validation.json\n";

  std::cout << (g_ok ? "\nAll trace-validation assertions passed.\n"
                     : "\nTRACE-VALIDATION ASSERTIONS FAILED.\n");
  return g_ok ? 0 : 1;
}
