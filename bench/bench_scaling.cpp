// Scaling study on the simulated cluster: wall-clock time and per-node
// communication for each scheme as the node count grows, with a
// compute-heavy kernel (the regime the paper targets).
//
// This corresponds to the paper's motivation for parallelization: with an
// expensive comp(), evaluations dominate and all schemes should speed up
// with more nodes until task-count limits bind (broadcast p = n keeps
// pace; block needs h(h+1)/2 >= n; design always has >= v tasks).
#include <cstdint>
#include <iostream>
#include <memory>
#include <vector>

#include "common/hash.hpp"
#include "common/serde.hpp"
#include "common/stopwatch.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "mr/cluster.hpp"
#include "pairwise/block_scheme.hpp"
#include "pairwise/broadcast_scheme.hpp"
#include "pairwise/dataset.hpp"
#include "pairwise/design_scheme.hpp"
#include "pairwise/pipeline.hpp"
#include "pairwise/runner.hpp"
#include "workloads/generators.hpp"
#include "workloads/kernels.hpp"

namespace {

using namespace pairmr;

struct Result {
  double seconds = 0.0;
  std::uint64_t shuffle_bytes = 0;
};

// Parallel structure independent of host cores: distribute the scheme's
// tasks over n nodes the way the engine's hash partitioner does, and
// compare total work against the most-loaded node (the compute-phase
// critical path). This is the speed-up a real n-node cluster would see
// for a compute-bound kernel.
double structural_speedup(const DistributionScheme& scheme,
                          std::uint32_t nodes) {
  std::vector<std::uint64_t> load(nodes, 0);
  std::uint64_t total = 0;
  for (TaskId t = 0; t < scheme.num_tasks(); ++t) {
    const std::uint64_t work = scheme.pairs_in(t).size();
    load[fnv1a(encode_u64_key(t)) % nodes] += work;
    total += work;
  }
  const std::uint64_t critical = *std::max_element(load.begin(), load.end());
  return critical == 0 ? 0.0
                       : static_cast<double>(total) /
                             static_cast<double>(critical);
}

Result run(const DistributionScheme& scheme,
           const std::vector<std::string>& payloads, std::uint32_t nodes) {
  mr::Cluster cluster({.num_nodes = nodes, .worker_threads = nodes});
  const auto inputs = write_dataset(cluster, "/data", payloads);
  RunSpec spec;
  spec.input_paths = inputs;
  spec.scheme = borrow_scheme(scheme);
  spec.job.compute = workloads::expensive_blob_kernel(64);
  const Stopwatch timer;
  const RunReport report = PairwiseRunner(cluster).run(spec);
  return Result{timer.elapsed_seconds(), report.shuffle_remote_bytes};
}

}  // namespace

int main() {
  std::cout << "=== bench_scaling: speed-up and communication vs cluster "
               "size ===\n\n";

  const std::uint64_t v = 96;
  const auto payloads = workloads::blob_payloads(v, 2048, 11);

  TablePrinter t({"nodes", "scheme", "time (s)", "host speedup",
                  "structural speedup", "shuffle bytes"});
  t.set_caption("Pairwise computation (v = 96, s = 2 KiB, expensive "
                "kernel), host-parallel simulation");
  for (const char* name : {"broadcast", "block", "design"}) {
    double base = 0.0;
    for (const std::uint32_t nodes : {1u, 2u, 4u, 8u}) {
      std::unique_ptr<DistributionScheme> scheme;
      if (std::string(name) == "broadcast") {
        scheme = std::make_unique<BroadcastScheme>(v, nodes);
      } else if (std::string(name) == "block") {
        // Smallest h with h(h+1)/2 >= nodes.
        std::uint64_t h = 1;
        while (h * (h + 1) / 2 < nodes) ++h;
        scheme = std::make_unique<BlockScheme>(v, h);
      } else {
        scheme = std::make_unique<DesignScheme>(v);
      }
      const Result r = run(*scheme, payloads, nodes);
      if (nodes == 1) base = r.seconds;
      t.add_row({TablePrinter::num(std::uint64_t{nodes}), name,
                 TablePrinter::num(r.seconds, 3),
                 TablePrinter::num(base / r.seconds, 2) + "x",
                 TablePrinter::num(structural_speedup(*scheme, nodes), 2) +
                     "x",
                 format_bytes(r.shuffle_bytes)});
    }
  }
  t.print(std::cout);
  std::cout << "\nNote: 'host speedup' is bounded by this machine's cores "
               "(tasks run on host threads); 'structural speedup' is the "
               "compute-phase critical-path ratio an n-node cluster would "
               "achieve — it grows with n until the scheme's task count "
               "and balance bind (Table 1's Number-of-Tasks row).\n";
  return 0;
}
