// Section 7 ablation: hierarchical (two-level) block processing versus the
// flat block scheme, and chunked-sequential design processing.
//
// The paper's claim: processing coarse blocks sequentially (each
// aggregated before the next starts) eases BOTH limits — peak
// intermediate storage and working-set size stay bounded by one round.
// Expected shape: peak intermediate drops roughly by the number of
// rounds; total evaluations and final results are identical.
#include <cstdint>
#include <iostream>
#include <vector>

#include "common/intmath.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "mr/cluster.hpp"
#include "pairwise/block_scheme.hpp"
#include "pairwise/dataset.hpp"
#include "pairwise/design_scheme.hpp"
#include "pairwise/hierarchical.hpp"
#include "pairwise/pipeline.hpp"
#include "pairwise/runner.hpp"
#include "workloads/generators.hpp"
#include "workloads/kernels.hpp"

namespace {

using namespace pairmr;

PairwiseJob make_job() {
  PairwiseJob job;
  job.compute = workloads::expensive_blob_kernel(1);
  return job;
}

}  // namespace

int main() {
  std::cout << "=== bench_hierarchical: Section 7 — hierarchical "
               "processing ablation ===\n\n";

  const std::uint64_t v = 144;
  const std::uint64_t element_bytes = 512;
  const auto payloads = workloads::blob_payloads(v, element_bytes, 99);
  const std::uint64_t fine_h = 12;  // 78 fine tasks

  // Flat baseline.
  std::uint64_t flat_intermediate = 0;
  {
    mr::Cluster cluster({.num_nodes = 4, .worker_threads = 0});
    const auto inputs = write_dataset(cluster, "/data", payloads);
    RunSpec spec;
    spec.input_paths = inputs;
    spec.scheme = std::make_shared<BlockScheme>(v, fine_h);
    spec.job = make_job();
    const RunReport stats = PairwiseRunner(cluster).run(spec);
    flat_intermediate = stats.intermediate_bytes;
    std::cout << "Flat block scheme (h = " << fine_h
              << "): intermediate = " << format_bytes(stats.intermediate_bytes)
              << ", max ws = " << format_bytes(stats.max_working_set_bytes)
              << ", evaluations = " << stats.evaluations << "\n\n";
  }

  TablePrinter t({"coarse H", "rounds", "peak intermediate", "vs flat",
                  "max ws bytes", "evals"});
  t.set_caption("Hierarchical block processing (fine h = " +
                std::to_string(fine_h) + ", coarse factor H varies)");
  for (const std::uint64_t H : {2ull, 3ull, 4ull, 6ull}) {
    mr::Cluster cluster({.num_nodes = 4, .worker_threads = 0});
    const auto inputs = write_dataset(cluster, "/data", payloads);
    const BlockScheme fine(v, fine_h);
    const auto rounds = coarse_block_rounds(fine, H);
    RunSpec spec;
    spec.input_paths = inputs;
    spec.mode = RunMode::kRounds;
    spec.scheme = borrow_scheme(fine);
    spec.rounds = rounds;
    spec.job = make_job();
    const RunReport stats = PairwiseRunner(cluster).run(spec);
    t.add_row({TablePrinter::num(H), TablePrinter::num(rounds.size()),
               format_bytes(stats.intermediate_bytes),
               TablePrinter::num(100.0 *
                                     static_cast<double>(
                                         stats.intermediate_bytes) /
                                     static_cast<double>(flat_intermediate),
                                 1) +
                   "%",
               format_bytes(stats.max_working_set_bytes),
               TablePrinter::num(stats.evaluations)});
  }
  t.print(std::cout);

  // Design variant: process task chunks sequentially (§7's second idea).
  std::cout << "\nDesign scheme with sequential task chunks:\n";
  TablePrinter d({"chunk size", "rounds", "peak intermediate", "evals"});
  const DesignScheme design(v);
  for (const std::uint64_t chunk : {design.num_tasks(), std::uint64_t{40},
                                    std::uint64_t{20}}) {
    mr::Cluster cluster({.num_nodes = 4, .worker_threads = 0});
    const auto inputs = write_dataset(cluster, "/data", payloads);
    const auto rounds = chunked_rounds(design, chunk);
    RunSpec spec;
    spec.input_paths = inputs;
    spec.mode = RunMode::kRounds;
    spec.scheme = borrow_scheme(design);
    spec.rounds = rounds;
    spec.job = make_job();
    const RunReport stats = PairwiseRunner(cluster).run(spec);
    d.add_row({TablePrinter::num(chunk), TablePrinter::num(rounds.size()),
               format_bytes(stats.intermediate_bytes),
               TablePrinter::num(stats.evaluations)});
  }
  d.print(std::cout);
  std::cout << "\nExpected shape: peak intermediate shrinks as rounds grow; "
               "evaluations stay C(v,2) = " << pair_count(v) << ".\n";
  return 0;
}
