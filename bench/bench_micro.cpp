// Google-benchmark microbenchmarks for the library's hot paths: scheme
// construction and queries, triangular-label inversion, finite-field
// arithmetic, plane construction, element codec, and the MR engine's
// fixed overhead.
#include <benchmark/benchmark.h>

#include <memory>

#include "common/serde.hpp"
#include "design/gf.hpp"
#include "design/projective_plane.hpp"
#include "mr/cluster.hpp"
#include "mr/context.hpp"
#include "mr/engine.hpp"
#include "pairwise/block_scheme.hpp"
#include "pairwise/broadcast_scheme.hpp"
#include "pairwise/design_scheme.hpp"
#include "pairwise/element.hpp"
#include "pairwise/triangular.hpp"
#include "workloads/generators.hpp"

namespace {

using namespace pairmr;

void BM_PairLabelInversion(benchmark::State& state) {
  std::uint64_t p = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(label_to_pair(p));
    p = p % 1000000 + 1;
  }
}
BENCHMARK(BM_PairLabelInversion);

void BM_BlockSchemeSubsets(benchmark::State& state) {
  const BlockScheme scheme(100000, static_cast<std::uint64_t>(state.range(0)));
  ElementId id = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheme.subsets_of(id));
    id = (id + 7919) % 100000;
  }
}
BENCHMARK(BM_BlockSchemeSubsets)->Arg(10)->Arg(100);

void BM_BlockSchemePairs(benchmark::State& state) {
  const BlockScheme scheme(10000, 100);  // 100x100-pair blocks
  TaskId t = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheme.pairs_in(t));
    t = (t + 1) % scheme.num_tasks();
  }
}
BENCHMARK(BM_BlockSchemePairs);

void BM_DesignSchemeConstruction(benchmark::State& state) {
  const auto v = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    const DesignScheme scheme(v);
    benchmark::DoNotOptimize(scheme.num_tasks());
  }
}
BENCHMARK(BM_DesignSchemeConstruction)->Arg(1000)->Arg(10000);

void BM_PG2Construction(benchmark::State& state) {
  const auto q = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(design::pg2_construction(q));
  }
}
BENCHMARK(BM_PG2Construction)->Arg(8)->Arg(16)->Arg(32);

void BM_GFMul(benchmark::State& state) {
  const design::GaloisField gf(static_cast<std::uint64_t>(state.range(0)));
  std::uint64_t a = 1, b = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(gf.mul(a, b));
    a = (a + 1) % gf.order();
    b = (b + 3) % gf.order();
  }
}
BENCHMARK(BM_GFMul)->Arg(101)->Arg(128)->Arg(243);

void BM_ElementCodec(benchmark::State& state) {
  Element e;
  e.id = 42;
  e.payload.assign(static_cast<std::size_t>(state.range(0)), 'x');
  for (int i = 0; i < 32; ++i) {
    e.results.push_back(ResultEntry{static_cast<ElementId>(i), "12345678"});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(decode_element(encode_element(e)));
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(encoded_element_size(e)));
}
BENCHMARK(BM_ElementCodec)->Arg(512)->Arg(65536);

void BM_EngineIdentityJob(benchmark::State& state) {
  // Fixed engine overhead: identity map+reduce over 1000 small records.
  std::vector<mr::Record> records;
  for (int i = 0; i < 1000; ++i) {
    records.push_back(mr::Record{encode_u64_key(i), "payload"});
  }
  int round = 0;
  mr::Cluster cluster({.num_nodes = 4, .worker_threads = 2});
  cluster.scatter_records("/in", records);
  for (auto _ : state) {
    mr::JobSpec spec;
    spec.name = "identity";
    spec.input_paths = cluster.dfs().list("/in");
    spec.output_dir = "/out-" + std::to_string(round++);
    spec.mapper_factory = [] { return std::make_unique<mr::IdentityMapper>(); };
    spec.reducer_factory = [] {
      return std::make_unique<mr::IdentityReducer>();
    };
    benchmark::DoNotOptimize(mr::Engine(cluster).run(spec));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          1000);
}
BENCHMARK(BM_EngineIdentityJob)->Unit(benchmark::kMillisecond);

void BM_BroadcastPairsChunk(benchmark::State& state) {
  const BroadcastScheme scheme(10000, 1000);  // ~50k labels per task
  TaskId t = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheme.pairs_in(t));
    t = (t + 1) % 1000;
  }
}
BENCHMARK(BM_BroadcastPairsChunk);

}  // namespace
