// bench_hotpath — throughput of the two per-record hot paths this repo
// optimizes: the compare phase (pairs/second through PairEvaluator) and
// the shuffle grouping (records/second through group_by_key).
//
// Compare phase: every kernel runs the identical all-pairs loop twice on
// the same elements — once with the seed ComputeFn (decode both payloads
// per pair) and once with the decode-once PreparedKernel. The keep hook
// folds every result byte into an FNV checksum and keeps nothing, so both
// paths do identical work, memory stays flat across millions of pairs,
// and checksum equality proves the outputs are byte-identical.
//
// Shuffle: one million u64-keyed records grouped by the radix path
// (group_by_key) and by the seed stable_sort reference
// (group_by_key_stable_sort), checksummed the same way.
//
// Asserts, exiting non-zero on violation:
//   * prepared/plain checksums match for every kernel (byte equality);
//   * radix/stable_sort group checksums match;
//   * the decode-once path is >= 2x the seed path for jaccard and
//     euclidean at v = 2000 (the ISSUE acceptance bar); the remaining
//     kernels are reported informationally.
//
// Emits BENCH_hotpath.json with the measured rates and verdicts.
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.hpp"
#include "common/serde.hpp"
#include "common/stopwatch.hpp"
#include "mr/group.hpp"
#include "pairwise/pipeline.hpp"
#include "workloads/generators.hpp"
#include "workloads/kernels.hpp"

namespace {

using namespace pairmr;

bool g_ok = true;

void check(bool condition, const std::string& what) {
  std::cout << (condition ? "  [ok]   " : "  [FAIL] ") << what << "\n";
  if (!condition) g_ok = false;
}

// Order-sensitive mix of every result byte, one multiply per 8-byte word
// so the checksum itself stays a negligible share of the per-pair cost.
std::uint64_t fnv_mix(std::uint64_t acc, std::string_view bytes) {
  while (bytes.size() >= 8) {
    std::uint64_t word;
    std::memcpy(&word, bytes.data(), 8);
    acc = (acc ^ word) * 0x100000001b3ull;
    bytes.remove_prefix(8);
  }
  for (const char c : bytes) {
    acc = (acc ^ static_cast<std::uint8_t>(c)) * 0x100000001b3ull;
  }
  return acc;
}

// ---------------------------------------------------------------------------
// Compare phase.

struct KernelSpec {
  std::string name;
  std::uint64_t v = 0;
  bool asserted = false;  // must hit the 2x bar
  int reps = 1;           // timed repetitions; best rep wins
  std::vector<std::string> payloads;
  PairwiseJob plain;
  PairwiseJob prepared;
};

struct CompareResult {
  std::string name;
  std::uint64_t v = 0;
  std::uint64_t pairs = 0;
  bool asserted = false;
  double plain_pairs_per_sec = 0.0;
  double prepared_pairs_per_sec = 0.0;
  double speedup = 0.0;
};

std::vector<Element> make_elements(const std::vector<std::string>& payloads) {
  std::vector<Element> elems(payloads.size());
  for (std::size_t i = 0; i < payloads.size(); ++i) {
    elems[i].id = i;
    elems[i].payload = payloads[i];
  }
  return elems;
}

// All-pairs loop through PairEvaluator; returns (seconds, checksum).
std::pair<double, std::uint64_t> run_all_pairs(const PairwiseJob& base,
                                               const std::vector<Element>& elems,
                                               int reps) {
  std::uint64_t sum = 0;
  PairwiseJob job = base;
  job.keep = [&sum](const Element&, const Element&, std::string_view result) {
    sum = fnv_mix(sum, result);
    return false;  // accumulators stay empty; memory stays flat
  };
  const std::size_t v = elems.size();
  double best = 0.0;
  std::uint64_t checksum = 0;
  for (int rep = 0; rep < reps; ++rep) {
    sum = 0x9e3779b97f4a7c15ull;
    PairEvaluator evaluator(job, elems);
    std::vector<ResultEntry> lo_acc, hi_acc;
    const Stopwatch timer;
    for (std::size_t lo = 0; lo < v; ++lo) {
      for (std::size_t hi = lo + 1; hi < v; ++hi) {
        evaluator.evaluate(lo, hi, lo_acc, hi_acc);
      }
    }
    const double elapsed = timer.elapsed_seconds();
    if (rep == 0 || elapsed < best) best = elapsed;
    checksum = sum;
  }
  return {best, checksum};
}

CompareResult bench_kernel(const KernelSpec& spec) {
  const std::vector<Element> elems = make_elements(spec.payloads);
  const std::uint64_t pairs = spec.v * (spec.v - 1) / 2;

  const auto [plain_s, plain_sum] = run_all_pairs(spec.plain, elems, spec.reps);
  const auto [prep_s, prep_sum] = run_all_pairs(spec.prepared, elems, spec.reps);

  CompareResult r;
  r.name = spec.name;
  r.v = spec.v;
  r.pairs = pairs;
  r.asserted = spec.asserted;
  r.plain_pairs_per_sec = static_cast<double>(pairs) / plain_s;
  r.prepared_pairs_per_sec = static_cast<double>(pairs) / prep_s;
  r.speedup = plain_s / prep_s;

  std::cout << spec.name << " (v=" << spec.v << ", " << pairs << " pairs)\n"
            << "  plain:    " << static_cast<std::uint64_t>(r.plain_pairs_per_sec)
            << " pairs/s\n"
            << "  prepared: "
            << static_cast<std::uint64_t>(r.prepared_pairs_per_sec)
            << " pairs/s  (" << r.speedup << "x)\n";
  check(plain_sum == prep_sum, spec.name + ": checksums byte-identical");
  if (spec.asserted) {
    std::ostringstream os;
    os << spec.name << ": decode-once >= 2x seed path (got " << r.speedup
       << "x)";
    check(r.speedup >= 2.0, os.str());
  }
  return r;
}

std::vector<KernelSpec> kernel_specs() {
  std::vector<KernelSpec> specs;

  const auto vectors = [](std::uint64_t v, std::uint32_t dim) {
    return workloads::vector_payloads(workloads::clustered_points(
        v, dim, /*num_clusters=*/4, /*spread=*/10.0, /*seed=*/31));
  };

  KernelSpec euclid;
  euclid.name = "euclidean";
  euclid.v = 2000;
  euclid.asserted = true;
  euclid.reps = 3;
  euclid.payloads = vectors(euclid.v, /*dim=*/16);
  euclid.plain.compute = workloads::euclidean_kernel();
  euclid.prepared.compute = workloads::euclidean_kernel();
  euclid.prepared.prepared = workloads::euclidean_prepared();
  specs.push_back(std::move(euclid));

  KernelSpec jac;
  jac.name = "jaccard";
  jac.v = 2000;
  jac.asserted = true;
  jac.reps = 3;
  jac.payloads = workloads::document_payloads(workloads::token_documents(
      jac.v, /*vocabulary=*/4096, /*tokens_per_doc=*/12, /*seed=*/32));
  jac.plain.compute = workloads::jaccard_kernel();
  jac.prepared.compute = workloads::jaccard_kernel();
  jac.prepared.prepared = workloads::jaccard_prepared();
  specs.push_back(std::move(jac));

  KernelSpec cos;
  cos.name = "cosine";
  cos.v = 1200;
  cos.payloads = vectors(cos.v, /*dim=*/16);
  cos.plain.compute = workloads::cosine_kernel();
  cos.prepared.compute = workloads::cosine_kernel();
  cos.prepared.prepared = workloads::cosine_prepared();
  specs.push_back(std::move(cos));

  KernelSpec inner;
  inner.name = "inner_product";
  inner.v = 1200;
  inner.payloads = vectors(inner.v, /*dim=*/16);
  inner.plain.compute = workloads::inner_product_kernel();
  inner.prepared.compute = workloads::inner_product_kernel();
  inner.prepared.prepared = workloads::inner_product_prepared();
  specs.push_back(std::move(inner));

  KernelSpec mi;
  mi.name = "mutual_information";
  mi.v = 500;
  mi.payloads = vectors(mi.v, /*dim=*/32);
  mi.plain.compute = workloads::mutual_information_kernel(/*bins=*/8);
  mi.prepared.compute = workloads::mutual_information_kernel(/*bins=*/8);
  mi.prepared.prepared = workloads::mutual_information_prepared(/*bins=*/8);
  specs.push_back(std::move(mi));

  return specs;
}

// ---------------------------------------------------------------------------
// Shuffle grouping.

struct ShuffleResult {
  std::uint64_t records = 0;
  std::uint64_t groups = 0;
  double stable_records_per_sec = 0.0;
  double radix_records_per_sec = 0.0;
  double speedup = 0.0;
};

ShuffleResult bench_shuffle() {
  constexpr std::uint64_t kRecords = 1'000'000;
  constexpr std::uint64_t kDistinctKeys = 50'000;
  std::vector<mr::Record> base;
  base.reserve(kRecords);
  Rng rng(41);
  for (std::uint64_t i = 0; i < kRecords; ++i) {
    base.push_back(mr::Record{encode_u64_key(rng.next_below(kDistinctKeys)),
                              "value-" + std::to_string(i % 997)});
  }

  const auto measure = [&base](void (*group)(std::vector<mr::Record>&,
                                             const mr::GroupFn&)) {
    double best = 0.0;
    std::uint64_t checksum = 0;
    std::uint64_t groups = 0;
    for (int rep = 0; rep < 2; ++rep) {
      std::vector<mr::Record> records = base;  // copied outside the timer
      std::uint64_t sum = 0x9e3779b97f4a7c15ull;
      std::uint64_t n = 0;
      const Stopwatch timer;
      group(records, [&sum, &n](const mr::Bytes& key,
                                const std::vector<mr::Bytes>& values) {
        sum = fnv_mix(sum, key);
        for (const auto& value : values) sum = fnv_mix(sum, value);
        ++n;
      });
      const double elapsed = timer.elapsed_seconds();
      if (rep == 0 || elapsed < best) best = elapsed;
      checksum = sum;
      groups = n;
    }
    return std::tuple{best, checksum, groups};
  };

  const auto [stable_s, stable_sum, stable_groups] =
      measure(&mr::group_by_key_stable_sort);
  const auto [radix_s, radix_sum, radix_groups] = measure(&mr::group_by_key);

  ShuffleResult r;
  r.records = kRecords;
  r.groups = radix_groups;
  r.stable_records_per_sec = static_cast<double>(kRecords) / stable_s;
  r.radix_records_per_sec = static_cast<double>(kRecords) / radix_s;
  r.speedup = stable_s / radix_s;

  std::cout << "shuffle grouping (" << kRecords << " records, "
            << radix_groups << " groups)\n"
            << "  stable_sort: "
            << static_cast<std::uint64_t>(r.stable_records_per_sec)
            << " records/s\n"
            << "  radix:       "
            << static_cast<std::uint64_t>(r.radix_records_per_sec)
            << " records/s  (" << r.speedup << "x)\n";
  check(stable_sum == radix_sum && stable_groups == radix_groups,
        "shuffle: radix and stable_sort group checksums match");
  return r;
}

// ---------------------------------------------------------------------------

std::string to_json(const std::vector<CompareResult>& compare,
                    const ShuffleResult& shuffle) {
  std::ostringstream os;
  os << "{\n  \"bench\": \"hotpath\",\n  \"compare\": [\n";
  for (std::size_t i = 0; i < compare.size(); ++i) {
    const CompareResult& r = compare[i];
    os << "    {\"kernel\": \"" << r.name << "\", \"v\": " << r.v
       << ", \"pairs\": " << r.pairs
       << ", \"plain_pairs_per_sec\": " << r.plain_pairs_per_sec
       << ", \"prepared_pairs_per_sec\": " << r.prepared_pairs_per_sec
       << ", \"speedup\": " << r.speedup
       << ", \"asserted\": " << (r.asserted ? "true" : "false") << "}"
       << (i + 1 < compare.size() ? "," : "") << "\n";
  }
  os << "  ],\n  \"shuffle\": {\"records\": " << shuffle.records
     << ", \"groups\": " << shuffle.groups
     << ", \"stable_sort_records_per_sec\": " << shuffle.stable_records_per_sec
     << ", \"radix_records_per_sec\": " << shuffle.radix_records_per_sec
     << ", \"speedup\": " << shuffle.speedup << "},\n  \"passed\": "
     << (g_ok ? "true" : "false") << "\n}\n";
  return os.str();
}

}  // namespace

int main() {
  std::cout << "bench_hotpath: compare-phase and shuffle throughput\n\n";

  std::vector<CompareResult> compare;
  for (const KernelSpec& spec : kernel_specs()) {
    compare.push_back(bench_kernel(spec));
  }
  std::cout << "\n";
  const ShuffleResult shuffle = bench_shuffle();

  std::ofstream out("BENCH_hotpath.json");
  out << to_json(compare, shuffle);
  std::cout << "\nwrote BENCH_hotpath.json\n";
  std::cout << (g_ok ? "PASS" : "FAIL") << "\n";
  return g_ok ? 0 : 1;
}
