// Memory-budget sweep: the same two-job design-scheme run executed under
// shrinking per-task budgets, from fully in-memory down to budgets tiny
// enough to force multi-run spills and multi-pass (fan_in = 4) merges.
//
// Expected shape: the tracked peak task memory falls with the budget and
// never exceeds it; spill runs and merge passes grow as the budget
// shrinks; aggregated output stays byte-identical throughout (asserted —
// this bench doubles as an end-to-end equivalence check at sizes the
// unit tests don't reach).
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "mr/cluster.hpp"
#include "pairwise/dataset.hpp"
#include "pairwise/design_scheme.hpp"
#include "pairwise/runner.hpp"
#include "workloads/generators.hpp"
#include "workloads/kernels.hpp"

namespace {

using namespace pairmr;

PairwiseJob make_job() {
  PairwiseJob job;
  job.compute = workloads::expensive_blob_kernel(1);
  return job;
}

struct Observation {
  std::vector<std::string> encoded;
  RunReport report;
};

Observation run_with_budget(const std::vector<std::string>& payloads,
                            const mr::MemoryBudget& budget) {
  mr::Cluster cluster({.num_nodes = 4, .worker_threads = 0});
  const auto inputs = write_dataset(cluster, "/data", payloads);
  const DesignScheme scheme(payloads.size());

  RunSpec spec;
  spec.input_paths = inputs;
  spec.mode = RunMode::kTwoJob;
  spec.scheme = borrow_scheme(scheme);
  spec.job = make_job();
  spec.options.memory_budget = budget;

  Observation obs;
  obs.report = PairwiseRunner(cluster).run(spec);
  for (const Element& e : read_elements(cluster, obs.report.output_dir)) {
    obs.encoded.push_back(encode_element(e));
  }
  return obs;
}

}  // namespace

int main() {
  std::cout << "=== bench_spill: memory-budgeted out-of-core execution ===\n\n";

  const std::uint64_t v = 121;
  const std::uint64_t element_bytes = 256;
  const auto payloads = workloads::blob_payloads(v, element_bytes, 42);

  const Observation baseline = run_with_budget(payloads, mr::MemoryBudget{});

  TablePrinter table({"budget", "peak tracked", "spill runs", "spill bytes",
                      "merge passes", "output identical"});
  table.set_caption("Per-task memory budget sweep, two-job design scheme (v = " +
                    std::to_string(v) + ", s = " +
                    std::to_string(element_bytes) + " B, fan_in = 4)");
  // Without a budget the engine does not meter task memory.
  table.add_row({"unlimited", "untracked", "0", "0", "0", "reference"});

  for (const std::uint64_t budget_bytes :
       {1ull << 20, 1ull << 16, 1ull << 13, 1ull << 11, 1ull << 9}) {
    const Observation obs = run_with_budget(
        payloads,
        mr::MemoryBudget{.bytes = budget_bytes, .merge_fan_in = 4});
    const bool identical = obs.encoded == baseline.encoded;
    PAIRMR_CHECK(identical, "spilled output diverged from in-memory run");
    // A single record larger than the budget must still be buffered, so
    // the exact engine invariant is peak <= max(budget, largest record)
    // (checked inside every map task). At budgets comfortably above one
    // compute-output record the simple form must hold here too.
    if (budget_bytes >= (1ull << 16)) {
      PAIRMR_CHECK(obs.report.max_tracked_bytes <= budget_bytes,
                   "tracked peak exceeded the budget");
    }
    table.add_row({format_bytes(budget_bytes),
                   format_bytes(obs.report.max_tracked_bytes),
                   TablePrinter::num(obs.report.spill_runs),
                   format_bytes(obs.report.spill_bytes),
                   TablePrinter::num(obs.report.merge_passes),
                   identical ? "yes" : "NO"});
  }

  table.print(std::cout);
  std::cout << "\nEvery budgeted run reproduced the unbudgeted output byte "
               "for byte; peak tracked task memory stayed within the "
               "budget (or one record, whichever is larger).\n";
  return 0;
}
