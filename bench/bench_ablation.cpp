// Ablations of the pipeline's engineering choices (DESIGN.md calls these
// out): (1) the Job-2 aggregation combiner, (2) map-split granularity,
// (3) reduce-task count, (4) hash vs range partitioning of element ids.
// Each knob is toggled in isolation on the same dataset/scheme; the
// tables report shuffle records/bytes and wall time.
#include <cstdint>
#include <iostream>
#include <memory>
#include <vector>

#include "common/serde.hpp"
#include "common/stopwatch.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "mr/cluster.hpp"
#include "pairwise/block_scheme.hpp"
#include "pairwise/dataset.hpp"
#include "pairwise/pipeline.hpp"
#include "pairwise/runner.hpp"
#include "workloads/generators.hpp"
#include "workloads/kernels.hpp"

namespace {

using namespace pairmr;

constexpr std::uint64_t kV = 160;
constexpr std::uint64_t kH = 8;

PairwiseJob make_job() {
  PairwiseJob job;
  job.compute = workloads::expensive_blob_kernel(1);
  return job;
}

struct RunResult {
  RunReport stats;
  double seconds = 0.0;
};

RunResult run(const std::vector<std::string>& payloads,
              const PairwiseOptions& options) {
  mr::Cluster cluster({.num_nodes = 4, .worker_threads = 0});
  const auto inputs = write_dataset(cluster, "/data", payloads);
  const Stopwatch timer;
  RunSpec spec;
  spec.input_paths = inputs;
  spec.scheme = std::make_shared<BlockScheme>(kV, kH);
  spec.job = make_job();
  spec.options = options;
  RunResult r;
  r.stats = PairwiseRunner(cluster).run(spec);
  r.seconds = timer.elapsed_seconds();
  return r;
}

}  // namespace

int main() {
  std::cout << "=== bench_ablation: pipeline engineering knobs ===\n\n";
  const auto payloads = workloads::blob_payloads(kV, 512, 31);

  // --- 1. Aggregation combiner ------------------------------------------
  {
    TablePrinter t({"combiner", "job2 reduce input records",
                    "job2 shuffle remote", "time (s)"});
    t.set_caption("Ablation 1 — Job-2 aggregation combiner (v = " +
                  std::to_string(kV) + ", block h = " + std::to_string(kH) +
                  ")");
    for (const bool combiner : {false, true}) {
      PairwiseOptions options;
      options.aggregation_combiner = combiner;
      const RunResult r = run(payloads, options);
      t.add_row({combiner ? "on" : "off",
                 TablePrinter::num(r.stats.merge_jobs.front().counter(
                     mr::counter::kReduceInputRecords)),
                 format_bytes(r.stats.merge_jobs.front().counter(
                     mr::counter::kShuffleBytesRemote)),
                 TablePrinter::num(r.seconds, 3)});
    }
    t.print(std::cout);
    std::cout << "Expected: combiner pre-merges copies map-side, shrinking "
                 "Job 2's reduce input.\n\n";
  }

  // --- 2. Map split granularity ------------------------------------------
  {
    TablePrinter t({"records/split", "map tasks", "time (s)"});
    t.set_caption("Ablation 2 — map-split granularity");
    for (const std::uint64_t split : {0ull, 64ull, 16ull, 4ull}) {
      PairwiseOptions options;
      options.max_records_per_split = split;
      const RunResult r = run(payloads, options);
      t.add_row({split == 0 ? "whole file" : std::to_string(split),
                 TablePrinter::num(r.stats.compute_jobs.front().map_tasks.size()),
                 TablePrinter::num(r.seconds, 3)});
    }
    t.print(std::cout);
    std::cout << "Expected: more map tasks add scheduling overhead at this "
                 "scale; results are identical regardless (engine "
                 "determinism is split-invariant).\n\n";
  }

  // --- 3. Reduce-task count ----------------------------------------------
  {
    TablePrinter t({"reduce tasks", "max ws records", "shuffle remote",
                    "time (s)"});
    t.set_caption("Ablation 3 — reduce-task count (4 nodes)");
    for (const std::uint32_t reducers : {2u, 4u, 8u, 16u}) {
      PairwiseOptions options;
      options.num_reduce_tasks = reducers;
      const RunResult r = run(payloads, options);
      t.add_row({TablePrinter::num(std::uint64_t{reducers}),
                 TablePrinter::num(r.stats.max_working_set_records),
                 format_bytes(r.stats.shuffle_remote_bytes),
                 TablePrinter::num(r.seconds, 3)});
    }
    t.print(std::cout);
    std::cout << "Expected: working-set maxima are scheme properties, "
                 "invariant to reducer count; shuffle locality shifts.\n\n";
  }

  // --- 4. Partitioner ------------------------------------------------------
  {
    TablePrinter t({"partitioner", "job2 shuffle local", "job2 shuffle "
                    "remote", "time (s)"});
    t.set_caption("Ablation 4 — Job-2 partitioner (hash vs range)");
    for (const bool range : {false, true}) {
      mr::Cluster cluster({.num_nodes = 4, .worker_threads = 0});
      const auto inputs = write_dataset(cluster, "/data", payloads);
      // Reproduce the runner's two jobs but swap Job 2's partitioner:
      // easiest through the options-free API is to re-run and compare the
      // default; the range partitioner is exercised via a manual job here.
      const Stopwatch timer;
      RunSpec spec;
      spec.input_paths = inputs;
      spec.scheme = std::make_shared<BlockScheme>(kV, kH);
      spec.job = make_job();
      const RunReport stats = PairwiseRunner(cluster).run(spec);
      // Range-partition the final output by element id as a third job to
      // show the locality difference of contiguous key ranges.
      mr::JobSpec sort_job;
      sort_job.name = "partition-demo";
      sort_job.input_paths = cluster.dfs().list(stats.output_dir);
      sort_job.output_dir = std::string("/sorted-") + (range ? "r" : "h");
      sort_job.mapper_factory = [] {
        return std::make_unique<mr::IdentityMapper>();
      };
      sort_job.reducer_factory = [] {
        return std::make_unique<mr::IdentityReducer>();
      };
      if (range) {
        sort_job.partitioner = std::make_shared<mr::RangePartitioner>(kV);
      }
      const mr::JobResult jr = mr::Engine(cluster).run(sort_job);
      t.add_row({range ? "range(v)" : "hash",
                 format_bytes(jr.counter(mr::counter::kShuffleBytesLocal)),
                 format_bytes(jr.counter(mr::counter::kShuffleBytesRemote)),
                 TablePrinter::num(timer.elapsed_seconds(), 3)});
    }
    t.print(std::cout);
    std::cout << "Expected: range partitioning yields sorted, contiguous "
                 "output shards (Figure 2 layout) at comparable cost.\n";
  }
  return 0;
}
