// Regenerates Table 1 ("Comparison of distribution schemes"): the five
// metrics for the broadcast, block, and design schemes — first symbolically
// instantiated for a range of parameters, then cross-checked against the
// *constructed* schemes (exact task counts, working sets, evaluations).
// Also prints the head of the Figure 5 pair enumeration for reference.
#include <cstdint>
#include <iostream>

#include "common/table.hpp"
#include "pairwise/block_scheme.hpp"
#include "pairwise/broadcast_scheme.hpp"
#include "pairwise/cost_model.hpp"
#include "pairwise/design_scheme.hpp"
#include "pairwise/triangular.hpp"

namespace {

using namespace pairmr;

void print_symbolic_table() {
  TablePrinter t({"Metric", "Broadcast", "Block", "Design"});
  t.set_caption(
      "Table 1 — Comparison of distribution schemes (symbolic, as printed "
      "in the paper)");
  t.add_row({"Number of Tasks (p)", "arbitrary", "h(h+1)/2",
             "q^2+q+1 >= v, q prime"});
  t.add_row({"Communication Costs", "2vp", "2vh", "~2v*sqrt(v) (max 2vn)"});
  t.add_row({"Replication Factor", "p", "h", "~sqrt(v)"});
  t.add_row({"Working Set Size", "v", "2*ceil(v/h)", "~sqrt(v)"});
  t.add_row({"Evaluations per Task", "v(v-1)/2p", "ceil(v/h)^2",
             "~(v-1)/2"});
  t.print(std::cout);
  std::cout << "\n";
}

void print_instantiated(std::uint64_t v, std::uint64_t n, std::uint64_t p,
                        std::uint64_t h) {
  const SchemeMetrics b = broadcast_metrics(v, p);
  const SchemeMetrics k = block_metrics(v, h);
  const SchemeMetrics d = design_metrics_approx(v, n);

  TablePrinter t({"Metric", "Broadcast (p=" + std::to_string(p) + ")",
                  "Block (h=" + std::to_string(h) + ")", "Design"});
  t.set_caption("Table 1 instantiated for v=" + std::to_string(v) +
                ", n=" + std::to_string(n) +
                " (communication/working set in elements)");
  t.add_row({"Number of Tasks", TablePrinter::num(b.num_tasks),
             TablePrinter::num(k.num_tasks), TablePrinter::num(d.num_tasks)});
  t.add_row({"Communication Costs",
             TablePrinter::sci(b.communication_elements, 2),
             TablePrinter::sci(k.communication_elements, 2),
             TablePrinter::sci(d.communication_elements, 2)});
  t.add_row({"Replication Factor", TablePrinter::num(b.replication_factor, 1),
             TablePrinter::num(k.replication_factor, 1),
             TablePrinter::num(d.replication_factor, 1)});
  t.add_row({"Working Set Size", TablePrinter::num(b.working_set_elements, 0),
             TablePrinter::num(k.working_set_elements, 0),
             TablePrinter::num(d.working_set_elements, 1)});
  t.add_row({"Evaluations per Task",
             TablePrinter::sci(b.evaluations_per_task, 2),
             TablePrinter::sci(k.evaluations_per_task, 2),
             TablePrinter::sci(d.evaluations_per_task, 2)});
  t.print(std::cout);
  std::cout << "\n";
}

// Exact values from the constructed schemes — validates that the Table 1
// formulas describe what the implementations actually build.
void print_constructed_check(std::uint64_t v, std::uint64_t p,
                             std::uint64_t h) {
  const BroadcastScheme broadcast(v, p);
  const BlockScheme block(v, h);
  const DesignScheme design(v);

  const auto exact = [](const DistributionScheme& s) {
    std::uint64_t max_ws = 0, max_evals = 0, copies = 0;
    for (TaskId t = 0; t < s.num_tasks(); ++t) {
      const auto ws = s.working_set(t).size();
      max_ws = std::max<std::uint64_t>(max_ws, ws);
      max_evals = std::max<std::uint64_t>(max_evals, s.pairs_in(t).size());
      copies += ws;
    }
    struct Out {
      std::uint64_t tasks, max_ws, max_evals;
      double repl;
    };
    return Out{s.num_tasks(), max_ws, max_evals,
               static_cast<double>(copies) /
                   static_cast<double>(s.num_elements())};
  };

  TablePrinter t({"Exact metric", "Broadcast", "Block", "Design"});
  t.set_caption("Constructed-scheme cross-check for v=" + std::to_string(v) +
                " (exact enumeration; design uses q=" +
                std::to_string(design.plane_order()) + ")");
  const auto b = exact(broadcast);
  const auto k = exact(block);
  const auto d = exact(design);
  t.add_row({"Tasks", TablePrinter::num(b.tasks), TablePrinter::num(k.tasks),
             TablePrinter::num(d.tasks)});
  t.add_row({"Max working set", TablePrinter::num(b.max_ws),
             TablePrinter::num(k.max_ws), TablePrinter::num(d.max_ws)});
  t.add_row({"Max evaluations/task", TablePrinter::num(b.max_evals),
             TablePrinter::num(k.max_evals), TablePrinter::num(d.max_evals)});
  t.add_row({"Avg replication", TablePrinter::num(b.repl, 2),
             TablePrinter::num(k.repl, 2), TablePrinter::num(d.repl, 2)});
  t.print(std::cout);
  std::cout << "\n";
}

void print_fig5_head() {
  TablePrinter t({"i\\j", "1", "2", "3", "4", "5", "6"});
  t.set_caption("Figure 5 — Enumeration of the distance matrix (head)");
  for (std::uint64_t i = 2; i <= 7; ++i) {
    std::vector<std::string> row{std::to_string(i)};
    for (std::uint64_t j = 1; j <= 6; ++j) {
      row.push_back(j < i ? std::to_string(pair_label(i, j)) : "");
    }
    t.add_row(std::move(row));
  }
  t.print(std::cout);
  std::cout << "\n";
}

}  // namespace

int main() {
  std::cout << "=== bench_table1: Table 1 + Figure 5 reproduction ===\n\n";
  print_symbolic_table();
  print_fig5_head();
  // The paper's §3 running example (10,000 elements) and a smaller
  // instance at two cluster sizes.
  print_instantiated(/*v=*/10000, /*n=*/16, /*p=*/16, /*h=*/10);
  print_instantiated(/*v=*/1000, /*n=*/8, /*p=*/8, /*h=*/5);
  print_constructed_check(/*v=*/500, /*p=*/8, /*h=*/5);
  return 0;
}
