// bench_churn — incremental PairwiseSession updates vs from-scratch
// batch re-runs across churn rates (DESIGN.md §16).
//
// For each churn batch size k, a session holding base_v cached elements
// absorbs k new ones via update() — paying base_v·k + C(k,2)
// evaluations — while the baseline re-runs the full batch pipeline over
// the union at C(base_v+k, 2). The analytic work ratio is
// batch_pairs / delta_pairs (≈ v/k for small k); with a compute-bound
// kernel the wall-clock speedup must track it.
//
// Asserts, exiting non-zero on violation:
//   * the session state is byte-identical, part file by part file, to
//     the from-scratch batch output (the differential oracle, as in
//     tests/pairwise/churn_equivalence_test.cpp);
//   * the evaluation counters tile exactly: update == delta_pairs,
//     batch == batch_pairs — the measured ratio IS the analytic factor;
//   * the measured speedup clears kGapGate × analytic_factor, floored
//     at beating the batch re-run at all.
//
// Emits BENCH_churn.json next to BENCH_simjoin.json.
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/intmath.hpp"
#include "mr/cluster.hpp"
#include "pairwise/churn_report.hpp"
#include "pairwise/dataset.hpp"
#include "pairwise/runner.hpp"
#include "pairwise/session.hpp"
#include "workloads/generators.hpp"
#include "workloads/kernels.hpp"

namespace {

using namespace pairmr;

constexpr std::uint64_t kBaseV = 100;
constexpr std::uint64_t kElementBytes = 1024;
constexpr std::uint32_t kKernelRounds = 4;
constexpr std::uint64_t kSeed = 23;
// Fraction of the analytic work ratio the wall-clock speedup must reach
// with the compute-bound kernel; the slack absorbs the fixed per-job MR
// overhead the update pays on far fewer evaluations.
constexpr double kGapGate = 0.25;

bool g_ok = true;

void check(bool condition, const std::string& what) {
  std::cout << (condition ? "  [ok]   " : "  [FAIL] ") << what << "\n";
  if (!condition) g_ok = false;
}

PairwiseJob make_job() {
  PairwiseJob job;
  job.compute = workloads::expensive_blob_kernel(kKernelRounds);
  return job;
}

using Snapshot = std::vector<std::pair<std::string, std::vector<mr::Record>>>;

Snapshot snapshot(const mr::Cluster& cluster, const std::string& dir) {
  Snapshot out;
  for (const std::string& path : cluster.dfs().list(dir)) {
    out.emplace_back(path.substr(dir.size()),
                     cluster.dfs().open(path)->records);
  }
  return out;
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int main() {
  std::cout << "bench_churn: incremental session update vs from-scratch "
               "batch (base v="
            << kBaseV << ", s=" << kElementBytes << " B)\n\n";

  const auto payloads =
      workloads::blob_payloads(kBaseV + 100, kElementBytes, kSeed);
  const std::vector<std::string> base(payloads.begin(),
                                      payloads.begin() + kBaseV);

  std::vector<ChurnPoint> points;

  std::cout << std::left << std::setw(7) << "k" << std::right << std::setw(12)
            << "batch prs" << std::setw(11) << "delta prs" << std::setw(11)
            << "batch (s)" << std::setw(12) << "update (s)" << std::setw(10)
            << "speedup" << std::setw(10) << "analytic" << "\n";

  for (const std::uint64_t k : {1ull, 10ull, 100ull}) {
    const std::uint64_t union_v = kBaseV + k;
    const std::vector<std::string> delta(payloads.begin() + kBaseV,
                                         payloads.begin() + union_v);

    // Incremental path: one session, update() timed alone — the base
    // state is sunk cost already paid by submit().
    mr::Cluster live({.num_nodes = 4, .worker_threads = 2});
    PairwiseSession session(live, make_job());
    session.submit(base);
    const auto update_start = std::chrono::steady_clock::now();
    const RunReport update = session.update(delta);
    const double update_seconds = seconds_since(update_start);

    // Baseline: the full batch pipeline over the union, from scratch,
    // with the identical scheme construction.
    mr::Cluster fresh({.num_nodes = 4, .worker_threads = 2});
    RunSpec spec;
    spec.input_paths =
        write_dataset(fresh, "/batch",
                      {payloads.begin(), payloads.begin() + union_v});
    spec.scheme = PairwiseSession::batch_scheme(
        SchemeKind::kBlock, union_v, fresh.num_nodes(), 0,
        PlaneConstruction::kTheorem2Prime);
    spec.job = make_job();
    const auto batch_start = std::chrono::steady_clock::now();
    const RunReport batch = PairwiseRunner(fresh).run(spec);
    const double batch_seconds = seconds_since(batch_start);

    ChurnPoint p;
    p.base_v = kBaseV;
    p.delta_k = k;
    p.batch_pairs = pair_count(union_v);
    p.delta_pairs = kBaseV * k + pair_count(k);
    p.reused_pairs = pair_count(kBaseV);
    p.batch_seconds = batch_seconds;
    p.update_seconds = update_seconds;
    p.speedup = batch_seconds / update_seconds;
    p.analytic_factor = static_cast<double>(p.batch_pairs) /
                        static_cast<double>(p.delta_pairs);
    p.gap_gate = kGapGate;
    p.identical = snapshot(live, session.state_dir()) ==
                  snapshot(fresh, batch.output_dir);

    std::ostringstream oi;
    oi << "k=" << k << ": session state byte-identical to from-scratch "
       << "batch over the union";
    check(p.identical, oi.str());

    // The counters, not the clock, prove the work ratio: the update
    // evaluated exactly the delta tile and the batch exactly C(v+k,2),
    // so measured-evaluations ratio == analytic factor by construction.
    std::ostringstream ot;
    ot << "k=" << k << ": update evaluations (" << update.evaluations
       << ") == base_v*k + C(k,2) (" << p.delta_pairs << "), tiling "
       << update.pairs_delta << " + " << update.pairs_reused << " == C("
       << union_v << ",2)";
    check(update.evaluations == p.delta_pairs &&
              update.pairs_delta == p.delta_pairs &&
              update.pairs_reused == p.reused_pairs &&
              update.pairs_delta + update.pairs_reused == p.batch_pairs,
          ot.str());
    std::ostringstream ob;
    ob << "k=" << k << ": batch evaluations (" << batch.evaluations
       << ") == C(" << union_v << ",2) (" << p.batch_pairs << ")";
    check(batch.evaluations == p.batch_pairs, ob.str());

    const double required =
        std::max(1.0, kGapGate * p.analytic_factor);
    std::ostringstream os;
    os << "k=" << k << ": speedup " << std::fixed << std::setprecision(2)
       << p.speedup << "x clears max(1, " << kGapGate << " x analytic "
       << p.analytic_factor << ") = " << required << "x";
    check(p.speedup >= required, os.str());

    p.passed = p.identical && update.evaluations == p.delta_pairs &&
               batch.evaluations == p.batch_pairs && p.speedup >= required;
    points.push_back(p);

    std::cout << std::left << std::setw(7) << k << std::right << std::setw(12)
              << p.batch_pairs << std::setw(11) << p.delta_pairs
              << std::fixed << std::setprecision(3) << std::setw(11)
              << batch_seconds << std::setw(12) << update_seconds
              << std::setprecision(2) << std::setw(9) << p.speedup << "x"
              << std::setw(9) << p.analytic_factor << "x"
              << std::defaultfloat << "\n";
  }
  std::cout << "\n";

  std::ofstream out("BENCH_churn.json");
  out << churn_to_json(points);
  std::cout << "wrote BENCH_churn.json\n";

  g_ok = g_ok && churn_all_ok(points);
  std::cout << (g_ok ? "PASS" : "FAIL") << "\n";
  return g_ok ? 0 : 1;
}
