// bench_frontier — the replication-rate vs reducer-size frontier.
//
// Places every distribution scheme (broadcast, block at two factors,
// quorum, design, cyclic-design where admissible, and the hierarchical
// grouping) on the (reducer size q, replication rate r) plane across a
// sweep of dataset sizes, against the Afrati/Ullman lower bound
// r >= (v-1)/(q-1). All quantities are enumerated from the schemes'
// actual working sets, cross-checked against subsets_of fan-out.
//
// Asserts, exiting non-zero on violation:
//   * every point sits on or above the lower bound;
//   * quorum replication stays within 2.5x the design scheme's at each v
//     (the ~2sqrt(v) generic-cover budget), and matches design exactly at
//     v = 57, an exact Singer plane order where the cover is perfect.
//
// Emits BENCH_frontier.json next to BENCH_hotpath.json.
#include <cstdint>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "pairwise/frontier.hpp"

namespace {

using namespace pairmr;

bool g_ok = true;

void check(bool condition, const std::string& what) {
  std::cout << (condition ? "  [ok]   " : "  [FAIL] ") << what << "\n";
  if (!condition) g_ok = false;
}

}  // namespace

int main() {
  std::cout << "bench_frontier: replication rate vs reducer size\n\n";

  const std::vector<std::uint64_t> sizes = {57, 96, 200, 500, 1000, 2000};
  const std::vector<FrontierPoint> points = frontier_sweep(sizes);

  std::cout << std::left << std::setw(14) << "scheme" << std::setw(16)
            << "params" << std::right << std::setw(6) << "v" << std::setw(8)
            << "tasks" << std::setw(6) << "q" << std::setw(10) << "r"
            << std::setw(10) << "bound" << std::setw(8) << "ratio" << "\n";
  for (const FrontierPoint& p : points) {
    std::cout << std::left << std::setw(14) << p.scheme << std::setw(16)
              << p.params << std::right << std::setw(6) << p.v << std::setw(8)
              << p.num_tasks << std::setw(6) << p.reducer_size << std::fixed
              << std::setprecision(2) << std::setw(10) << p.replication_rate
              << std::setw(10) << p.lower_bound << std::setw(8) << p.ratio
              << std::defaultfloat << "\n";
  }
  std::cout << "\n";

  for (const FrontierPoint& p : points) {
    std::ostringstream os;
    os << p.scheme << " " << p.params << " v=" << p.v
       << ": r >= (v-1)/(q-1) (" << p.replication_rate
       << " >= " << p.lower_bound << ")";
    check(p.ok, os.str());
  }

  // Quorum vs design replication per v: within the generic-cover budget
  // everywhere, exactly equal at the Singer plane order v = 57.
  std::map<std::uint64_t, double> design_r, quorum_r;
  for (const FrontierPoint& p : points) {
    if (p.scheme == "design") design_r[p.v] = p.replication_rate;
    if (p.scheme == "quorum") quorum_r[p.v] = p.replication_rate;
  }
  for (const auto& [v, r] : quorum_r) {
    std::ostringstream os;
    os << "quorum replication within 2.5x design at v=" << v << " (" << r
       << " vs " << design_r[v] << ")";
    check(r <= 2.5 * design_r[v], os.str());
  }
  check(quorum_r[57] == design_r[57],
        "quorum matches design replication at the v=57 plane order");

  std::ofstream out("BENCH_frontier.json");
  out << frontier_to_json(points);
  std::cout << "\nwrote BENCH_frontier.json\n";
  std::cout << (g_ok ? "PASS" : "FAIL") << "\n";
  return g_ok ? 0 : 1;
}
