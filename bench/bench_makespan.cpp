// Makespan surface: which scheme finishes first, as a function of
// per-evaluation compute cost and element size — the quantitative form
// of the paper's qualitative guidance (§5.1: broadcast suits "moderate
// dataset, expensive function"; §5.2/5.3 trade replication against
// working sets for larger data).
#include <cstdint>
#include <iostream>
#include <vector>

#include "common/table.hpp"
#include "common/units.hpp"
#include "pairwise/cost_model.hpp"
#include "pairwise/makespan.hpp"

namespace {
using namespace pairmr;
}

int main() {
  std::cout << "=== bench_makespan: which scheme finishes first ===\n\n";

  const std::uint64_t v = 10000;
  const std::uint64_t n = 16;
  const std::uint64_t h = 10;

  // Sweep compute cost (rows) × element size (columns); print the winner.
  const std::vector<double> eval_costs = {1e-8, 1e-7, 1e-6, 1e-5, 1e-4,
                                          1e-3};
  const std::vector<std::uint64_t> sizes = {kKiB, 10 * kKiB, 100 * kKiB,
                                            kMiB};

  TablePrinter t({"comp() cost (s)", "s=1KiB", "s=10KiB", "s=100KiB",
                  "s=1MiB"});
  t.set_caption("Winner by makespan (v = " + std::to_string(v) + ", n = " +
                std::to_string(n) + ", block h = " + std::to_string(h) +
                ", 100 MB/s network)");
  for (const double cost : eval_costs) {
    CostRates rates;
    rates.compute_seconds_per_eval = cost;
    std::vector<std::string> row{TablePrinter::sci(cost, 0)};
    for (const auto s : sizes) {
      row.push_back(compare_makespans(v, s, n, h, rates).winner);
    }
    t.add_row(std::move(row));
  }
  t.print(std::cout);

  // Detailed breakdown at two representative corners.
  struct Corner {
    const char* label;
    double cost;
    std::uint64_t size;
  };
  for (const auto& [label, cost, size] :
       {Corner{"compute-heavy, small elements", 1e-4, kKiB},
        Corner{"shipping-heavy, large elements", 1e-8, kMiB}}) {
    CostRates rates;
    rates.compute_seconds_per_eval = cost;
    const SchemeComparison c = compare_makespans(v, size, n, h, rates);
    TablePrinter d({"scheme", "ship (s)", "compute (s)", "aggregate (s)",
                    "overhead (s)", "total (s)"});
    d.set_caption(std::string("\nBreakdown — ") + label);
    for (const MakespanBreakdown* m : {&c.broadcast, &c.block, &c.design}) {
      d.add_row({m->scheme, TablePrinter::num(m->ship_seconds, 2),
                 TablePrinter::num(m->compute_seconds, 2),
                 TablePrinter::num(m->aggregate_seconds, 2),
                 TablePrinter::num(m->overhead_seconds, 2),
                 TablePrinter::num(m->total(), 2)});
    }
    d.print(std::cout);
    std::cout << "winner: " << c.winner << "\n";
  }
  std::cout << "\nExpected shape: broadcast wins the compute-heavy corner "
               "(fewest waves), block wins the shipping-heavy corner "
               "(least replication), design sits between.\n";
  return 0;
}
