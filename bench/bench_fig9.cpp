// Regenerates Figure 9:
//   (a) lower/upper bounds on the blocking factor h versus dataset size,
//       for the paper's maxws/maxis values (rising lines = maxws lower
//       bounds, falling lines = maxis upper bounds), including the paper's
//       4 GB spot check;
//   (b) max(v) for all three approaches versus element size at
//       maxws = 200 MiB, maxis = 1 TiB, locating the block/design
//       cross-over the paper describes.
#include <cstdint>
#include <iostream>
#include <vector>

#include "common/table.hpp"
#include "common/units.hpp"
#include "pairwise/cost_model.hpp"

namespace {

using namespace pairmr;

void fig9a() {
  const std::vector<std::uint64_t> dataset_sizes = {
      kGiB,     2 * kGiB,  4 * kGiB,  6 * kGiB, 8 * kGiB,
      10 * kGiB, 12 * kGiB, 16 * kGiB};

  TablePrinter t({"vs (dataset)", "h_lo @200MiB", "h_lo @400MiB",
                  "h_lo @1GiB", "h_hi @100GiB", "h_hi @1TiB",
                  "h_hi @10TiB", "valid h (200MiB,1TiB)"});
  t.set_caption(
      "Figure 9(a) — lower and upper bounds for h for the block approach\n"
      "rising: h >= 2*vs/maxws; falling: h <= maxis/vs");
  for (const auto vs : dataset_sizes) {
    const auto lo = [&](std::uint64_t maxws) {
      return block_h_range(vs, Limits{maxws, kTiB}).lo;
    };
    const auto hi = [&](std::uint64_t maxis) {
      return block_h_range(vs, Limits{200 * kMiB, maxis}).hi;
    };
    const HRange r = block_h_range(vs, Limits{200 * kMiB, kTiB});
    t.add_row({format_bytes(vs), TablePrinter::num(lo(200 * kMiB)),
               TablePrinter::num(lo(400 * kMiB)), TablePrinter::num(lo(kGiB)),
               TablePrinter::num(hi(100 * kGiB)), TablePrinter::num(hi(kTiB)),
               TablePrinter::num(hi(10 * kTiB)),
               r.valid() ? "[" + std::to_string(r.lo) + ", " +
                               std::to_string(r.hi) + "]"
                         : "none"});
  }
  t.print(std::cout);

  // The paper's worked example: a 4 GB (SI) dataset.
  const HRange paper = block_h_range(4'000'000'000ull,
                                     Limits{200 * kMiB, kTiB});
  std::cout << "\nPaper spot check (vs = 4 GB): valid h in [" << paper.lo
            << ", " << paper.hi << "]  (paper reports [39, 263]; unit base "
            << "unstated — see EXPERIMENTS.md)\n";
  std::cout << "Feasibility limit: vs <= "
            << format_bytes(block_max_dataset_bytes(Limits{200 * kMiB, kTiB}))
            << " (intersection of both bounds)\n\n";
}

void fig9b() {
  const Limits limits{200 * kMiB, kTiB};
  const std::vector<std::uint64_t> sizes = {
      10 * kKiB,  20 * kKiB,  50 * kKiB, 100 * kKiB, 200 * kKiB,
      500 * kKiB, 800 * kKiB, kMiB,      1536 * kKiB, 2 * kMiB,
      5 * kMiB,   10 * kMiB};

  TablePrinter t({"element size", "broadcast", "block", "design", "winner"});
  t.set_caption(
      "Figure 9(b) — base set size limitation compared for all approaches\n"
      "max(v) at maxws = 200 MiB, maxis = 1 TiB");
  std::uint64_t crossover = 0;
  for (const auto s : sizes) {
    const std::uint64_t b = broadcast_max_v(s, limits);
    const std::uint64_t k = block_max_v(s, limits);
    const std::uint64_t d = design_max_v(s, limits);
    const char* winner = (k >= d && k >= b) ? "block"
                         : (d >= k && d >= b) ? "design"
                                              : "broadcast";
    if (crossover == 0 && d > k) crossover = s;
    t.add_row({format_bytes(s), TablePrinter::num(b), TablePrinter::num(k),
               TablePrinter::num(d), winner});
  }
  t.print(std::cout);
  std::cout << "\nBlock/design cross-over at element size ~"
            << format_bytes(crossover)
            << " (paper: design pulls ahead for elements > 1MB)\n";
}

}  // namespace

int main() {
  std::cout << "=== bench_fig9: Figure 9 reproduction ===\n\n";
  fig9a();
  fig9b();
  return 0;
}
