// Regenerates Figure 8:
//   (a) max(v) before the broadcast working-set limit is reached, per
//       element size, for maxws in {200 MiB, 400 MiB, 1 GiB};
//   (b) max(v) before the design intermediate-storage limit is reached,
//       per element size, for maxis in {100 GiB, 1 TiB, 10 TiB}.
// Element sizes sweep 10 KiB .. 10 MiB (the paper's 10^1..10^4 KB axis).
#include <cstdint>
#include <iostream>
#include <vector>

#include "common/table.hpp"
#include "common/units.hpp"
#include "pairwise/cost_model.hpp"

namespace {

using namespace pairmr;

const std::vector<std::uint64_t> kElementSizes = {
    10 * kKiB,  20 * kKiB,  50 * kKiB,  100 * kKiB, 200 * kKiB,
    500 * kKiB, kMiB,       2 * kMiB,   5 * kMiB,   10 * kMiB};

void fig8a() {
  TablePrinter t({"element size", "maxws=200MiB", "maxws=400MiB",
                  "maxws=1GiB"});
  t.set_caption(
      "Figure 8(a) — base set size limitation for the broadcast approach\n"
      "max(v) before working-set size limit is reached (v <= maxws/s)");
  for (const auto s : kElementSizes) {
    t.add_row({format_bytes(s),
               TablePrinter::num(broadcast_max_v(s, 200 * kMiB)),
               TablePrinter::num(broadcast_max_v(s, 400 * kMiB)),
               TablePrinter::num(broadcast_max_v(s, kGiB))});
  }
  t.print(std::cout);
  std::cout << "\n";
}

void fig8b() {
  TablePrinter t({"element size", "maxis=100GiB", "maxis=1TiB",
                  "maxis=10TiB"});
  t.set_caption(
      "Figure 8(b) — base set size limitation for the design approach\n"
      "max(v) before intermediate storage limit is reached "
      "(v^1.5 * s <= maxis)");
  for (const auto s : kElementSizes) {
    t.add_row({format_bytes(s),
               TablePrinter::num(design_max_v_by_storage(s, 100 * kGiB)),
               TablePrinter::num(design_max_v_by_storage(s, kTiB)),
               TablePrinter::num(design_max_v_by_storage(s, 10 * kTiB))});
  }
  t.print(std::cout);
  std::cout << "\n";
}

}  // namespace

int main() {
  std::cout << "=== bench_fig8: Figure 8 reproduction ===\n\n";
  fig8a();
  fig8b();
  // Shape checks matching the paper's chart (log-log straight lines):
  // 8a slope -1 (halving element size doubles max v), 8b slope -2/3.
  std::cout << "Shape check: 8a max(v) ratio for 10x element size = "
            << static_cast<double>(broadcast_max_v(10 * kKiB, 200 * kMiB)) /
                   static_cast<double>(broadcast_max_v(100 * kKiB, 200 * kMiB))
            << " (paper: 10, slope -1 in log-log)\n";
  std::cout << "Shape check: 8b max(v) ratio for 10x element size = "
            << static_cast<double>(design_max_v_by_storage(10 * kKiB, kTiB)) /
                   static_cast<double>(
                       design_max_v_by_storage(100 * kKiB, kTiB))
            << " (paper: 10^(2/3) ~ 4.64, slope -2/3 in log-log)\n";
  return 0;
}
