// Related-work baseline (paper §2): Elsayed et al.'s inverted-index
// document similarity versus the paper's quadratic pairwise pipeline.
//
// The paper positions its schemes for problems whose "quadratic
// complexity cannot be reduced". This bench quantifies the boundary:
// with a sparse corpus the index touches a fraction of the pairs and
// wins; as term sharing grows the index's pair contributions blow past
// C(v,2) and the quadratic pipeline's bounded work wins.
#include <cstdint>
#include <iostream>
#include <vector>

#include "common/intmath.hpp"
#include "common/stopwatch.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "mr/cluster.hpp"
#include "pairwise/block_scheme.hpp"
#include "pairwise/dataset.hpp"
#include "pairwise/pipeline.hpp"
#include "pairwise/runner.hpp"
#include "workloads/generators.hpp"
#include "workloads/inverted_index.hpp"
#include "workloads/kernels.hpp"

namespace {

using namespace pairmr;
constexpr double kThreshold = 0.2;

struct Corpus {
  const char* label;
  std::uint32_t vocabulary;
  std::uint32_t tokens_per_doc;
};

}  // namespace

int main() {
  std::cout << "=== bench_baseline: inverted index (Elsayed et al.) vs "
               "quadratic pairwise ===\n\n";

  const std::uint64_t v = 80;
  const std::vector<Corpus> corpora = {
      {"sparse  (vocab 100k)", 100000, 20},
      {"medium  (vocab 2k)", 2000, 40},
      {"dense   (vocab 100)", 100, 40},
  };

  TablePrinter t({"corpus", "method", "pair work", "vs C(v,2)",
                  "shuffle bytes", "time (s)", "pairs kept"});
  t.set_caption("v = " + std::to_string(v) +
                " documents, threshold = " + TablePrinter::num(kThreshold, 2) +
                ", C(v,2) = " + TablePrinter::num(pair_count(v)));

  for (const Corpus& corpus : corpora) {
    const auto docs =
        workloads::token_documents(v, corpus.vocabulary,
                                   corpus.tokens_per_doc, 404);
    const auto payloads = workloads::document_payloads(docs);

    // Inverted-index baseline.
    {
      mr::Cluster cluster({.num_nodes = 4, .worker_threads = 0});
      const auto inputs = write_dataset(cluster, "/docs", payloads);
      const Stopwatch timer;
      const workloads::InvertedIndexStats stats =
          workloads::run_doc_similarity_inverted(cluster, inputs,
                                                 kThreshold);
      const auto kept =
          workloads::read_similarities(cluster, stats.output_dir).size();
      t.add_row({corpus.label, "inverted index",
                 TablePrinter::num(stats.pair_contributions),
                 TablePrinter::num(
                     static_cast<double>(stats.pair_contributions) /
                         static_cast<double>(pair_count(v)),
                     2) + "x",
                 format_bytes(stats.shuffle_remote_bytes),
                 TablePrinter::num(timer.elapsed_seconds(), 3),
                 TablePrinter::num(static_cast<std::uint64_t>(kept))});
    }
    // Quadratic pipeline (block scheme).
    {
      mr::Cluster cluster({.num_nodes = 4, .worker_threads = 0});
      const auto inputs = write_dataset(cluster, "/docs", payloads);
      RunSpec spec;
      spec.input_paths = inputs;
      spec.scheme = std::make_shared<BlockScheme>(v, 4);
      spec.job.compute = workloads::jaccard_kernel();
      spec.job.keep = workloads::keep_above(kThreshold);
      const Stopwatch timer;
      const RunReport stats = PairwiseRunner(cluster).run(spec);
      std::uint64_t kept = 0;
      for (const Element& e : read_elements(cluster, stats.output_dir)) {
        for (const auto& r : e.results) kept += r.other > e.id;
      }
      t.add_row({corpus.label, "pairwise block",
                 TablePrinter::num(stats.evaluations), "1.00x",
                 format_bytes(stats.shuffle_remote_bytes),
                 TablePrinter::num(timer.elapsed_seconds(), 3),
                 TablePrinter::num(kept)});
    }
  }
  t.print(std::cout);
  std::cout << "\nExpected shape: both methods keep identical pairs; the "
               "index does less work on the sparse corpus and degenerates "
               "past C(v,2) on the dense one — the regime the paper's "
               "schemes are built for.\n";
  return 0;
}
