// Section 6 analog of the paper's cloud experiments: run all three
// distribution schemes through the real MR pipeline on the simulated
// cluster and compare *measured* replication factor, working-set size,
// and communication volume against the Table 1 predictions.
//
// The paper reports measurements "close to our theoretic evaluations",
// with the working-set limit hit "a little earlier than expected" because
// other data shares memory with the elements. The same effect appears
// here organically: measured working-set bytes include record framing on
// top of the raw payloads, so the overhead column is positive.
#include <cstdint>
#include <iostream>
#include <memory>
#include <vector>

#include "common/table.hpp"
#include "common/units.hpp"
#include "mr/cluster.hpp"
#include "mr/fault.hpp"
#include "pairwise/block_scheme.hpp"
#include "pairwise/broadcast_scheme.hpp"
#include "pairwise/dataset.hpp"
#include "pairwise/design_scheme.hpp"
#include "pairwise/pipeline.hpp"
#include "pairwise/runner.hpp"
#include "workloads/generators.hpp"
#include "workloads/kernels.hpp"

namespace {

using namespace pairmr;

struct RunRow {
  std::string scheme;
  SchemeMetrics predicted;
  RunReport measured;
};

RunRow run_scheme(const DistributionScheme& scheme,
                  const std::vector<std::string>& payloads,
                  const mr::FaultPlan* faults = nullptr) {
  mr::Cluster cluster({.num_nodes = 4, .worker_threads = 0});
  const auto inputs = write_dataset(cluster, "/data", payloads);
  RunSpec spec;
  spec.input_paths = inputs;
  spec.scheme = borrow_scheme(scheme);
  spec.job.compute = workloads::expensive_blob_kernel(2);
  spec.options.fault_plan = faults;
  RunRow row;
  row.scheme = scheme.name();
  row.predicted = scheme.metrics();
  row.measured = PairwiseRunner(cluster).run(spec);
  return row;
}

std::uint64_t pipeline_counter(const RunReport& stats, const char* name) {
  std::uint64_t total = 0;
  for (const auto& job : stats.compute_jobs) total += job.counter(name);
  for (const auto& job : stats.merge_jobs) total += job.counter(name);
  return total;
}

}  // namespace

int main() {
  std::cout << "=== bench_cluster_validation: Section 6 — measured vs "
               "theoretic metrics ===\n\n";

  const std::uint64_t v = 120;
  const std::uint64_t element_bytes = 512;
  const auto payloads = workloads::blob_payloads(v, element_bytes, 2026);

  const BroadcastScheme broadcast(v, /*tasks=*/8);
  const BlockScheme block(v, /*h=*/5);
  const DesignScheme design(v);

  std::vector<RunRow> rows;
  rows.push_back(run_scheme(broadcast, payloads));
  rows.push_back(run_scheme(block, payloads));
  rows.push_back(run_scheme(design, payloads));

  std::cout << "Dataset: v = " << v << " elements x "
            << format_bytes(element_bytes) << " = "
            << format_bytes(v * element_bytes) << ", cluster: 4 nodes\n"
            << "Design scheme plane order q = " << design.plane_order()
            << " (q^2+q+1 = " << design.plane_points() << ")\n\n";

  TablePrinter t({"scheme", "repl (pred)", "repl (meas)", "ws elems (pred)",
                  "ws bytes (meas)", "ws overhead", "evals", "interm bytes",
                  "shuffle remote"});
  t.set_caption("Measured vs predicted scheme characteristics");
  for (const auto& row : rows) {
    const double predicted_ws_bytes =
        row.predicted.working_set_elements *
        static_cast<double>(element_bytes);
    const double overhead =
        100.0 * (static_cast<double>(row.measured.max_working_set_bytes) -
                 predicted_ws_bytes) /
        predicted_ws_bytes;
    t.add_row({row.scheme, TablePrinter::num(row.predicted.replication_factor, 2),
               TablePrinter::num(row.measured.replication_factor, 2),
               TablePrinter::num(row.predicted.working_set_elements, 1),
               format_bytes(row.measured.max_working_set_bytes),
               TablePrinter::num(overhead, 1) + "%",
               TablePrinter::num(row.measured.evaluations),
               format_bytes(row.measured.intermediate_bytes),
               format_bytes(row.measured.shuffle_remote_bytes)});
  }
  t.print(std::cout);

  std::cout << "\nObservations (cf. paper Section 6):\n"
            << "  * measured replication tracks the Table 1 prediction "
               "(p / h / ~sqrt(v));\n"
            << "  * every scheme performed exactly C(v,2) = "
            << rows[0].measured.evaluations << " evaluations;\n"
            << "  * measured working sets exceed s*|D| by the framing "
               "overhead — the paper's \"limit hit a little earlier than "
               "expected\".\n";

  // Communication comparison: the paper's Table 1 states 2vp vs 2vh vs
  // ~2v*sqrt(v) shipped elements; our meter counts actual bytes of the
  // two jobs (shuffle both ways), so ratios — not absolutes — match.
  TablePrinter c({"scheme", "comm elems (pred)", "map-out bytes (meas)",
                  "ratio vs block"});
  c.set_caption("\nCommunication volume (predicted elements vs measured "
                "replicated bytes)");
  const double block_bytes = static_cast<double>(
      rows[1].measured.compute_jobs.front().counter(mr::counter::kMapOutputBytes));
  for (const auto& row : rows) {
    const double meas = static_cast<double>(
        row.measured.compute_jobs.front().counter(mr::counter::kMapOutputBytes));
    c.add_row({row.scheme,
               TablePrinter::sci(row.predicted.communication_elements, 2),
               format_bytes(static_cast<std::uint64_t>(meas)),
               TablePrinter::num(meas / block_bytes, 2)});
  }
  c.print(std::cout);

  // Recovery overhead under a fixed fault plan (paper §2: tasks "may get
  // aborted and restarted at any time"): identical chaos — probabilistic
  // task kills, dropped shuffle fetches, stragglers with speculative
  // backups, and the loss of one node mid-job — hits every scheme; the
  // output is unchanged (see tests/pairwise/fault_equivalence_test.cpp),
  // only the traffic grows.
  mr::FaultPlan faults(2026);
  faults.with_task_kill_rate(0.15, 2)
      .with_fetch_drop_rate(0.1)
      .with_straggler_rate(0.15)
      .fail_node(1);

  std::vector<RunRow> faulted;
  faulted.push_back(run_scheme(BroadcastScheme(v, 8), payloads, &faults));
  faulted.push_back(run_scheme(BlockScheme(v, 5), payloads, &faults));
  faulted.push_back(run_scheme(DesignScheme(v), payloads, &faults));

  TablePrinter f({"scheme", "retried", "speculative", "spec wins",
                  "fetch retries", "recovery bytes", "shuffle remote",
                  "overhead"});
  f.set_caption("\nRecovery overhead under injected faults (seed 2026, one "
                "node lost)");
  for (std::size_t i = 0; i < faulted.size(); ++i) {
    const auto& row = faulted[i];
    const std::uint64_t recovery =
        pipeline_counter(row.measured, mr::counter::kRecoveryBytes);
    const std::uint64_t shuffle = row.measured.shuffle_remote_bytes;
    // Extra wire traffic relative to the clean run of the same scheme.
    const double clean =
        static_cast<double>(rows[i].measured.shuffle_remote_bytes);
    const double overhead =
        100.0 * (static_cast<double>(shuffle + recovery) - clean) / clean;
    f.add_row(
        {row.scheme,
         TablePrinter::num(
             pipeline_counter(row.measured, mr::counter::kTasksRetried)),
         TablePrinter::num(
             pipeline_counter(row.measured, mr::counter::kTasksSpeculative)),
         TablePrinter::num(
             pipeline_counter(row.measured, mr::counter::kSpeculativeWins)),
         TablePrinter::num(pipeline_counter(
             row.measured, mr::counter::kShuffleFetchRetries)),
         format_bytes(recovery), format_bytes(shuffle),
         TablePrinter::num(overhead, 1) + "%"});
  }
  f.print(std::cout);

  std::cout << "\n  * aggregated outputs are byte-identical to the clean "
               "runs; faults only add\n    recovery traffic and retries "
               "(the engine's determinism promise under faults).\n";
  return 0;
}
