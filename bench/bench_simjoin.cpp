// bench_simjoin — pruned vs exhaustive some-pairs similarity join.
//
// Runs the thresholded Jaccard join (RunMode::kSimilarityJoin, prefix
// filter + length filter, DESIGN.md §14) against the exhaustive two-job
// pipeline with a keep-filter at the same threshold, across a sweep of
// thresholds, and reports candidate/survivor/pruned counts and end-to-end
// pairs/s for both paths.
//
// Asserts, exiting non-zero on violation:
//   * the join's aggregated output is byte-identical to the exhaustive
//     reference at every threshold (the differential oracle, as in
//     tests/pairwise/similarity_join_equivalence_test.cpp);
//   * pairs.candidate == pairs.survivor + pairs.pruned at every point;
//   * candidate counts shrink monotonically as the threshold rises.
//
// Emits BENCH_simjoin.json next to BENCH_frontier.json.
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/intmath.hpp"
#include "mr/cluster.hpp"
#include "pairwise/block_scheme.hpp"
#include "pairwise/dataset.hpp"
#include "pairwise/runner.hpp"
#include "pairwise/simjoin_report.hpp"
#include "workloads/generators.hpp"
#include "workloads/kernels.hpp"

namespace {

using namespace pairmr;

constexpr std::uint64_t kV = 64;
constexpr std::uint64_t kSeed = 42;

bool g_ok = true;

void check(bool condition, const std::string& what) {
  std::cout << (condition ? "  [ok]   " : "  [FAIL] ") << what << "\n";
  if (!condition) g_ok = false;
}

struct Timed {
  std::vector<std::string> encoded;
  RunReport report;
  double seconds = 0.0;
};

std::vector<std::string> dataset() {
  auto docs = workloads::token_documents(kV, /*vocabulary=*/128,
                                         /*tokens_per_doc=*/12, kSeed);
  // Plant near-duplicates: the last kV/8 documents mirror the first ones
  // with a single extra token, so every threshold — including 0.9 — keeps
  // some survivors and both counter branches see traffic.
  for (std::uint64_t i = 0; i < kV / 8; ++i) {
    auto dup = docs[i];
    dup.push_back(200 + static_cast<std::uint32_t>(i));
    docs[kV - 1 - i] = std::move(dup);
  }
  return workloads::document_payloads(docs);
}

Timed run(double threshold, bool join) {
  mr::Cluster cluster({.num_nodes = 4, .worker_threads = 2});
  const auto inputs = write_dataset(cluster, "/data", dataset());
  const BlockScheme scheme(kV, 4);

  RunSpec spec;
  spec.input_paths = inputs;
  spec.scheme = borrow_scheme(scheme);
  if (join) {
    spec.mode = RunMode::kSimilarityJoin;
    spec.options.similarity_join.threshold = threshold;
  } else {
    spec.mode = RunMode::kTwoJob;
    spec.job.compute = workloads::jaccard_kernel();
    spec.job.prepared = workloads::jaccard_prepared();
    spec.job.keep = workloads::keep_above(threshold);
  }

  Timed t;
  const auto start = std::chrono::steady_clock::now();
  t.report = PairwiseRunner(cluster).run(spec);
  t.seconds = std::chrono::duration<double>(
                  std::chrono::steady_clock::now() - start)
                  .count();
  for (const Element& e : read_elements(cluster, t.report.output_dir)) {
    t.encoded.push_back(encode_element(e));
  }
  return t;
}

}  // namespace

int main() {
  std::cout << "bench_simjoin: pruned vs exhaustive similarity join (v="
            << kV << ", C(v,2)=" << pair_count(kV) << ")\n\n";

  const std::vector<double> thresholds = {0.1, 0.25, 0.5, 0.75, 0.9};
  std::vector<SimjoinPoint> points;

  std::cout << std::left << std::setw(8) << "t" << std::right << std::setw(10)
            << "total" << std::setw(11) << "candidate" << std::setw(10)
            << "survivor" << std::setw(9) << "pruned" << std::setw(12)
            << "exh pair/s" << std::setw(13) << "join pair/s" << std::setw(9)
            << "speedup" << "\n";

  for (const double t : thresholds) {
    const Timed exhaustive = run(t, /*join=*/false);
    const Timed join = run(t, /*join=*/true);

    SimjoinPoint p;
    p.filter = "prefix";
    p.threshold = t;
    p.v = kV;
    p.total_pairs = pair_count(kV);
    p.candidate_pairs = join.report.candidate_pairs;
    p.survivor_pairs = join.report.survivor_pairs;
    p.pruned_pairs = join.report.pruned_pairs;
    p.exhaustive_seconds = exhaustive.seconds;
    p.join_seconds = join.seconds;
    p.exhaustive_pairs_per_s =
        static_cast<double>(p.total_pairs) / exhaustive.seconds;
    p.join_pairs_per_s = static_cast<double>(p.total_pairs) / join.seconds;
    p.speedup = exhaustive.seconds / join.seconds;
    p.identical = join.encoded == exhaustive.encoded;
    points.push_back(p);

    std::cout << std::left << std::fixed << std::setprecision(2)
              << std::setw(8) << t << std::right << std::setw(10)
              << p.total_pairs << std::setw(11) << p.candidate_pairs
              << std::setw(10) << p.survivor_pairs << std::setw(9)
              << p.pruned_pairs << std::setprecision(0) << std::setw(12)
              << p.exhaustive_pairs_per_s << std::setw(13)
              << p.join_pairs_per_s << std::setprecision(2) << std::setw(9)
              << p.speedup << std::defaultfloat << "\n";
  }
  std::cout << "\n";

  for (const SimjoinPoint& p : points) {
    std::ostringstream os;
    os << "t=" << p.threshold
       << ": join output byte-identical to exhaustive reference";
    check(p.identical, os.str());
    std::ostringstream oc;
    oc << "t=" << p.threshold << ": pairs.candidate (" << p.candidate_pairs
       << ") == survivor (" << p.survivor_pairs << ") + pruned ("
       << p.pruned_pairs << ")";
    check(p.candidate_pairs == p.survivor_pairs + p.pruned_pairs, oc.str());
  }
  for (std::size_t i = 1; i < points.size(); ++i) {
    std::ostringstream os;
    os << "candidates shrink as the threshold rises (t="
       << points[i - 1].threshold << " -> " << points[i].threshold << ": "
       << points[i - 1].candidate_pairs << " >= "
       << points[i].candidate_pairs << ")";
    check(points[i].candidate_pairs <= points[i - 1].candidate_pairs,
          os.str());
  }
  check(points.back().candidate_pairs < points.back().total_pairs,
        "prefix filter prunes pairs at the top threshold");

  std::ofstream out("BENCH_simjoin.json");
  out << simjoin_to_json(points);
  std::cout << "\nwrote BENCH_simjoin.json\n";
  std::cout << (g_ok ? "PASS" : "FAIL") << "\n";
  return g_ok ? 0 : 1;
}
