// bench_backend — in-process threads vs forked worker processes.
//
// Runs the same two-job design-scheme pairwise computation on both
// execution backends (mr/backend/backend.hpp) in two regimes:
//
//   * compute-heavy: small elements, an expensive kernel — the fork
//     backend's process-spawn and frame-shipping overhead should mostly
//     amortize away behind the arithmetic;
//   * shipping-heavy: large elements, a near-free kernel — every shuffle
//     byte now crosses a real process boundary over a Unix-domain
//     socket, so this regime prices the serialization itself.
//
// For each (regime, backend) cell it reports makespan and shuffle
// throughput (remote bytes / wall seconds), and asserts — exiting
// non-zero on violation — that both backends produce byte-identical
// aggregated output. Wall-clock numbers vary run to run; the identity
// bits do not.
//
// Emits BENCH_backend.json next to BENCH_frontier.json.
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "mr/backend/backend.hpp"
#include "mr/backend/bench_report.hpp"
#include "mr/cluster.hpp"
#include "pairwise/dataset.hpp"
#include "pairwise/design_scheme.hpp"
#include "pairwise/runner.hpp"
#include "workloads/generators.hpp"
#include "workloads/kernels.hpp"

namespace {

using namespace pairmr;

struct Regime {
  std::string name;
  std::uint64_t v;
  std::uint64_t element_bytes;
  std::uint32_t kernel_rounds;
};

struct Observation {
  std::vector<std::string> encoded;
  mr::backend::BenchPoint point;
};

const char* backend_label(mr::BackendKind kind) {
  return kind == mr::BackendKind::kFork ? "fork" : "inprocess";
}

Observation run_once(const Regime& regime,
                     const std::vector<std::string>& payloads,
                     mr::BackendKind backend) {
  mr::Cluster cluster({.num_nodes = 4, .worker_threads = 0});
  const auto inputs = write_dataset(cluster, "/data", payloads);
  const DesignScheme scheme(payloads.size());

  RunSpec spec;
  spec.input_paths = inputs;
  spec.mode = RunMode::kTwoJob;
  spec.scheme = &scheme;
  spec.job.compute = workloads::expensive_blob_kernel(regime.kernel_rounds);
  spec.options.backend = backend;

  const auto start = std::chrono::steady_clock::now();
  const RunReport report = PairwiseRunner(cluster).run(spec);
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  Observation obs;
  for (const Element& e : read_elements(cluster, report.output_dir)) {
    obs.encoded.push_back(encode_element(e));
  }
  obs.point.regime = regime.name;
  obs.point.backend = backend_label(backend);
  obs.point.v = regime.v;
  obs.point.element_bytes = regime.element_bytes;
  obs.point.evaluations = report.evaluations;
  obs.point.wall_seconds = seconds;
  obs.point.shuffle_remote_bytes = report.shuffle_remote_bytes;
  obs.point.shuffle_mib_per_second =
      seconds > 0.0 ? static_cast<double>(report.shuffle_remote_bytes) /
                          (1024.0 * 1024.0) / seconds
                    : 0.0;
  return obs;
}

}  // namespace

int main() {
  std::cout << "=== bench_backend: in-process vs forked worker processes "
               "===\n\n";

  const std::vector<Regime> regimes = {
      {"compute-heavy", 57, 64, 192},
      {"shipping-heavy", 121, 4096, 1},
  };

  TablePrinter table({"regime", "backend", "v", "elem bytes", "makespan",
                      "shuffle bytes", "shuffle MiB/s", "output identical"});
  table.set_caption(
      "Two-job design scheme, 4 nodes; fork = one worker process per node");

  std::vector<mr::backend::BenchPoint> points;
  for (const Regime& regime : regimes) {
    const auto payloads =
        workloads::blob_payloads(regime.v, regime.element_bytes, 7);
    // The in-process run is the reference both cells diff against.
    Observation reference;
    for (const mr::BackendKind kind :
         {mr::BackendKind::kInProcess, mr::BackendKind::kFork}) {
      Observation obs = run_once(regime, payloads, kind);
      if (kind == mr::BackendKind::kInProcess) reference = obs;
      obs.point.identical = obs.encoded == reference.encoded;
      PAIRMR_CHECK(obs.point.identical,
                   "backend output diverged from the in-process reference");

      std::ostringstream makespan, rate;
      makespan << std::fixed << std::setprecision(3) << obs.point.wall_seconds
               << " s";
      rate << std::fixed << std::setprecision(1)
           << obs.point.shuffle_mib_per_second;
      table.add_row({regime.name, obs.point.backend,
                     TablePrinter::num(obs.point.v),
                     format_bytes(regime.element_bytes), makespan.str(),
                     format_bytes(obs.point.shuffle_remote_bytes), rate.str(),
                     obs.point.identical ? "yes" : "NO"});
      points.push_back(obs.point);
    }
  }

  table.print(std::cout);

  std::ofstream out("BENCH_backend.json");
  out << mr::backend::bench_to_json(points);
  std::cout << "\nwrote BENCH_backend.json\n";

  const bool ok = mr::backend::bench_all_ok(points);
  std::cout << (ok ? "PASS" : "FAIL") << "\n";
  return ok ? 0 : 1;
}
