// bench_backend — in-process threads vs forked worker processes, and
// the fork backend's socket vs shared-memory shuffle planes.
//
// Runs the same two-job design-scheme pairwise computation on both
// execution backends (mr/backend/backend.hpp) in two regimes:
//
//   * compute-heavy: small elements, an expensive kernel — the fork
//     backend's process-spawn and frame-shipping overhead should mostly
//     amortize away behind the arithmetic;
//   * shipping-heavy: large elements, a near-free kernel — every shuffle
//     byte now crosses a real process boundary, so this regime prices
//     the shuffle transport itself. The fork backend runs it twice: once
//     streaming partitions over the Unix-domain shuffle sockets
//     (ShufflePlane::kSocket) and once passing memfd arena fds over
//     SCM_RIGHTS with the reducer decoding straight from an mmap
//     (kShm) — the zero-copy plane's payoff shows up here as shuffle
//     MiB/s.
//
// A third point runs the multi-job similarity-join pipeline on a
// persistent fork pool: the workers_forked / workers_reused columns show
// the pool forking once per node and re-arming with kBeginJob for every
// later job, instead of paying fork/teardown per job.
//
// For each cell it reports makespan, shuffle throughput (remote bytes /
// wall seconds), and the worker-pool tallies, and asserts — exiting
// non-zero on violation — that every run produces byte-identical
// aggregated output to its in-process reference. Wall-clock numbers vary
// run to run; the identity bits do not.
//
// Emits BENCH_backend.json next to BENCH_frontier.json.
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "mr/backend/backend.hpp"
#include "mr/backend/bench_report.hpp"
#include "mr/cluster.hpp"
#include "mr/trace.hpp"
#include "pairwise/block_scheme.hpp"
#include "pairwise/dataset.hpp"
#include "pairwise/design_scheme.hpp"
#include "pairwise/runner.hpp"
#include "workloads/generators.hpp"
#include "workloads/kernels.hpp"

namespace {

using namespace pairmr;

struct Regime {
  std::string name;
  std::uint64_t v;
  std::uint64_t element_bytes;
  std::uint32_t kernel_rounds;
};

struct Observation {
  std::vector<std::string> encoded;
  mr::backend::BenchPoint point;
};

const char* backend_label(mr::BackendKind kind) {
  return kind == mr::BackendKind::kFork ? "fork" : "inprocess";
}

const char* plane_label(mr::ShufflePlane plane) {
  return plane == mr::ShufflePlane::kShm ? "shm" : "socket";
}

// Seconds spent inside remote shuffle fetches, summed over the run's
// kShuffleFetch trace spans (fetch-busy time across all reduce attempts,
// not wall). Worker-side spans arrive with their measured durations
// intact (Tracer::import_span), so the fork backend's fetches are timed
// where they ran. This is the denominator that isolates the shuffle
// transport from kernel/decode work the planes share.
double remote_fetch_seconds(const mr::Tracer& tracer) {
  double total = 0.0;
  for (const mr::Span& s : tracer.spans()) {
    if (s.kind == mr::SpanKind::kShuffleFetch && s.node != s.peer) {
      total += s.end_seconds - s.start_seconds;
    }
  }
  return total;
}

// Fills the fields shared by every cell from the run's report.
void fill_point(mr::backend::BenchPoint& point, const RunReport& report,
                double seconds, double fetch_seconds) {
  point.jobs = report.compute_jobs.size() + report.merge_jobs.size() +
               report.candidate_jobs.size();
  point.wall_seconds = seconds;
  point.evaluations = report.evaluations;
  point.shuffle_plane = plane_label(report.shuffle_plane);
  point.shuffle_remote_bytes = report.shuffle_remote_bytes;
  point.shuffle_mib_per_second =
      fetch_seconds > 0.0
          ? static_cast<double>(report.shuffle_remote_bytes) /
                (1024.0 * 1024.0) / fetch_seconds
          : 0.0;
  point.workers_forked = report.workers_forked;
  point.workers_reused = report.workers_reused;
}

Observation run_once(const Regime& regime,
                     const std::vector<std::string>& payloads,
                     mr::BackendKind backend, mr::ShufflePlane plane) {
  mr::Cluster cluster({.num_nodes = 4, .worker_threads = 0});
  mr::Tracer tracer;
  cluster.set_tracer(&tracer);
  const auto inputs = write_dataset(cluster, "/data", payloads);
  const DesignScheme scheme(payloads.size());

  RunSpec spec;
  spec.input_paths = inputs;
  spec.mode = RunMode::kTwoJob;
  spec.scheme = borrow_scheme(scheme);
  spec.job.compute = workloads::expensive_blob_kernel(regime.kernel_rounds);
  spec.options.backend = backend;
  spec.options.shuffle_plane = plane;

  const auto start = std::chrono::steady_clock::now();
  const RunReport report = PairwiseRunner(cluster).run(spec);
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  Observation obs;
  for (const Element& e : read_elements(cluster, report.output_dir)) {
    obs.encoded.push_back(encode_element(e));
  }
  obs.point.regime = regime.name;
  obs.point.backend = backend_label(backend);
  obs.point.v = regime.v;
  obs.point.element_bytes = regime.element_bytes;
  fill_point(obs.point, report, seconds, remote_fetch_seconds(tracer));
  return obs;
}

// The multi-job point: the thresholded similarity join runs a
// candidate-generation pipeline plus the pairwise phase — several engine
// jobs back-to-back on one persistent pool.
Observation run_simjoin(mr::BackendKind backend, mr::ShufflePlane plane) {
  constexpr std::uint64_t kV = 48;
  mr::Cluster cluster({.num_nodes = 4, .worker_threads = 0});
  mr::Tracer tracer;
  cluster.set_tracer(&tracer);
  const auto docs = workloads::token_documents(kV, /*vocabulary=*/96,
                                               /*tokens_per_doc=*/10, 7);
  const auto inputs =
      write_dataset(cluster, "/data", workloads::document_payloads(docs));
  const BlockScheme scheme(kV, 4);

  RunSpec spec;
  spec.input_paths = inputs;
  spec.mode = RunMode::kSimilarityJoin;
  spec.scheme = borrow_scheme(scheme);
  spec.options.similarity_join.threshold = 0.25;
  spec.options.backend = backend;
  spec.options.shuffle_plane = plane;

  const auto start = std::chrono::steady_clock::now();
  const RunReport report = PairwiseRunner(cluster).run(spec);
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  Observation obs;
  for (const Element& e : read_elements(cluster, report.output_dir)) {
    obs.encoded.push_back(encode_element(e));
  }
  obs.point.regime = "simjoin-pipeline";
  obs.point.backend = backend_label(backend);
  obs.point.v = kV;
  obs.point.element_bytes = 0;  // token documents, not fixed-size blobs
  fill_point(obs.point, report, seconds, remote_fetch_seconds(tracer));
  return obs;
}

void add_row(TablePrinter& table, const mr::backend::BenchPoint& p) {
  std::ostringstream makespan, rate;
  makespan << std::fixed << std::setprecision(3) << p.wall_seconds << " s";
  rate << std::fixed << std::setprecision(1) << p.shuffle_mib_per_second;
  table.add_row({p.regime, p.backend, p.shuffle_plane,
                 TablePrinter::num(p.v), TablePrinter::num(p.jobs),
                 makespan.str(), format_bytes(p.shuffle_remote_bytes),
                 rate.str(), TablePrinter::num(p.workers_forked),
                 TablePrinter::num(p.workers_reused),
                 p.identical ? "yes" : "NO"});
}

}  // namespace

int main() {
  std::cout << "=== bench_backend: in-process vs forked worker processes "
               "===\n\n";

  const std::vector<Regime> regimes = {
      {"compute-heavy", 57, 64, 192},
      {"shipping-heavy", 121, 65536, 1},
  };

  TablePrinter table({"regime", "backend", "plane", "v", "jobs", "makespan",
                      "shuffle bytes", "shuffle MiB/s", "forked", "reused",
                      "output identical"});
  table.set_caption(
      "Two-job design scheme + simjoin pipeline, 4 nodes; fork = one "
      "worker process per node, persistent across each run's jobs");

  // Cells per regime: the in-process reference, then the fork backend on
  // each shuffle plane. Every fork cell diffs against the reference.
  const std::vector<std::pair<mr::BackendKind, mr::ShufflePlane>> cells = {
      {mr::BackendKind::kInProcess, mr::ShufflePlane::kSocket},
      {mr::BackendKind::kFork, mr::ShufflePlane::kSocket},
      {mr::BackendKind::kFork, mr::ShufflePlane::kShm},
  };

  std::vector<mr::backend::BenchPoint> points;
  for (const Regime& regime : regimes) {
    const auto payloads =
        workloads::blob_payloads(regime.v, regime.element_bytes, 7);
    Observation reference;
    for (const auto& [kind, plane] : cells) {
      Observation obs = run_once(regime, payloads, kind, plane);
      if (kind == mr::BackendKind::kInProcess) reference = obs;
      obs.point.identical = obs.encoded == reference.encoded;
      PAIRMR_CHECK(obs.point.identical,
                   "backend output diverged from the in-process reference");
      add_row(table, obs.point);
      points.push_back(obs.point);
    }
  }

  {
    Observation reference;
    for (const auto& [kind, plane] : cells) {
      Observation obs = run_simjoin(kind, plane);
      if (kind == mr::BackendKind::kInProcess) reference = obs;
      obs.point.identical = obs.encoded == reference.encoded;
      PAIRMR_CHECK(obs.point.identical,
                   "backend output diverged from the in-process reference");
      add_row(table, obs.point);
      points.push_back(obs.point);
    }
  }

  table.print(std::cout);

  // The zero-copy plane's headline number: shuffle throughput in the
  // regime dominated by moving bytes. Informational — wall-clock ratios
  // are not asserted; the identity bits above are.
  const auto find_point = [&](const std::string& regime,
                              const std::string& plane)
      -> const mr::backend::BenchPoint* {
    for (const auto& p : points) {
      if (p.regime == regime && p.backend == "fork" &&
          p.shuffle_plane == plane) {
        return &p;
      }
    }
    return nullptr;
  };
  const auto* socket_pt = find_point("shipping-heavy", "socket");
  const auto* shm_pt = find_point("shipping-heavy", "shm");
  if (socket_pt != nullptr && shm_pt != nullptr &&
      socket_pt->shuffle_mib_per_second > 0.0) {
    std::cout << "\nshipping-heavy shm/socket shuffle throughput: "
              << std::fixed << std::setprecision(2)
              << shm_pt->shuffle_mib_per_second /
                     socket_pt->shuffle_mib_per_second
              << "x\n";
  }

  std::ofstream out("BENCH_backend.json");
  out << mr::backend::bench_to_json(points);
  std::cout << "\nwrote BENCH_backend.json\n";

  const bool ok = mr::backend::bench_all_ok(points);
  std::cout << (ok ? "PASS" : "FAIL") << "\n";
  return ok ? 0 : 1;
}
