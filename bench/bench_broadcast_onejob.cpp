// Section 5.1 ablation: the optimized one-job broadcast implementation
// (dataset via distributed cache, only results shuffled) versus the
// generic two-job pipeline with the same broadcast scheme.
//
// Expected shape: the generic pipeline materializes ~p dataset copies
// (Table 1's 2vp communication), while the one-job variant ships the
// dataset once per *node* and shuffles only result records — so its
// replicated volume is independent of p.
#include <cstdint>
#include <iostream>
#include <vector>

#include "common/table.hpp"
#include "common/units.hpp"
#include "mr/cluster.hpp"
#include "pairwise/broadcast_scheme.hpp"
#include "pairwise/dataset.hpp"
#include "pairwise/pipeline.hpp"
#include "pairwise/runner.hpp"
#include "workloads/generators.hpp"
#include "workloads/kernels.hpp"

namespace {

using namespace pairmr;

PairwiseJob make_job() {
  PairwiseJob job;
  job.compute = workloads::expensive_blob_kernel(1);
  return job;
}

}  // namespace

int main() {
  std::cout << "=== bench_broadcast_onejob: Section 5.1 — one-job vs "
               "generic two-job broadcast ===\n\n";

  const std::uint64_t v = 96;
  const std::uint64_t element_bytes = 1024;
  const auto payloads = workloads::blob_payloads(v, element_bytes, 7);

  TablePrinter t({"tasks p", "variant", "dataset copies moved",
                  "shuffle+cache bytes", "intermediate bytes", "evals"});
  t.set_caption("Broadcast implementations across task counts (v = " +
                std::to_string(v) + ", s = " + format_bytes(element_bytes) +
                ", 4 nodes)");

  const std::uint64_t dataset_bytes = v * element_bytes;
  for (const std::uint64_t p : {4ull, 8ull, 16ull, 32ull}) {
    // Generic two-job pipeline.
    {
      mr::Cluster cluster({.num_nodes = 4, .worker_threads = 0});
      const auto inputs = write_dataset(cluster, "/data", payloads);
      RunSpec spec;
      spec.input_paths = inputs;
      spec.scheme = std::make_shared<BroadcastScheme>(v, p);
      spec.job = make_job();
      const RunReport stats = PairwiseRunner(cluster).run(spec);
      const double copies =
          static_cast<double>(stats.compute_jobs.front().counter(
              mr::counter::kMapOutputBytes)) /
          static_cast<double>(dataset_bytes);
      t.add_row({TablePrinter::num(p), "generic 2-job",
                 TablePrinter::num(copies, 2),
                 format_bytes(stats.shuffle_remote_bytes),
                 format_bytes(stats.intermediate_bytes),
                 TablePrinter::num(stats.evaluations)});
    }
    // One-job distributed-cache variant.
    {
      mr::Cluster cluster({.num_nodes = 4, .worker_threads = 0});
      const auto inputs = write_dataset(cluster, "/data", payloads);
      RunSpec spec;
      spec.input_paths = inputs;
      spec.mode = RunMode::kBroadcast;
      spec.broadcast = BroadcastTarget{.v = v, .num_tasks = p};
      spec.job = make_job();
      const RunReport stats = PairwiseRunner(cluster).run(spec);
      const double copies =
          static_cast<double>(stats.cache_broadcast_bytes) /
          static_cast<double>(dataset_bytes);
      t.add_row({TablePrinter::num(p), "one-job (cache)",
                 TablePrinter::num(copies, 2),
                 format_bytes(stats.shuffle_remote_bytes +
                              stats.cache_broadcast_bytes),
                 format_bytes(stats.intermediate_bytes),
                 TablePrinter::num(stats.evaluations)});
    }
  }
  t.print(std::cout);
  std::cout << "\nExpected shape: generic copies grow with p (Table 1: "
               "replication = p); one-job copies stay ~(n-1), independent "
               "of p.\n";
  return 0;
}
