#include "workloads/generators.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "common/serde.hpp"
#include "workloads/kernels.hpp"

namespace pairmr::workloads {
namespace {

TEST(BlobPayloadsTest, ExactSizesAndDeterminism) {
  const auto a = blob_payloads(10, 500, 42);
  const auto b = blob_payloads(10, 500, 42);
  ASSERT_EQ(a.size(), 10u);
  for (const auto& p : a) EXPECT_EQ(p.size(), 500u);
  EXPECT_EQ(a, b);
  const auto c = blob_payloads(10, 500, 43);
  EXPECT_NE(a, c);
}

TEST(BlobPayloadsTest, PayloadsAreDistinct) {
  const auto payloads = blob_payloads(20, 64, 1);
  for (std::size_t i = 0; i < payloads.size(); ++i) {
    for (std::size_t j = i + 1; j < payloads.size(); ++j) {
      EXPECT_NE(payloads[i], payloads[j]);
    }
  }
}

TEST(ClusteredPointsTest, IntraClusterTighterThanInter) {
  // Points i, i+2 share a cluster (2 clusters, round-robin assignment);
  // i, i+1 do not. With spread 50 the separation must dominate.
  const auto points = clustered_points(40, 4, 2, 50.0, 9);
  double intra = 0.0, inter = 0.0;
  int n_intra = 0, n_inter = 0;
  for (std::size_t i = 0; i + 2 < points.size(); ++i) {
    intra += euclidean_distance(points[i], points[i + 2]);
    ++n_intra;
    inter += euclidean_distance(points[i], points[i + 1]);
    ++n_inter;
  }
  EXPECT_LT(intra / n_intra, inter / n_inter / 2.0);
}

TEST(VectorPayloadsTest, RoundTripThroughSerde) {
  const auto points = clustered_points(5, 3, 1, 1.0, 2);
  const auto payloads = vector_payloads(points);
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(decode_f64_vec(payloads[i]), points[i]);
  }
}

TEST(TokenDocumentsTest, SortedDeduplicatedInVocabulary) {
  const auto docs = token_documents(30, 1000, 50, 5);
  ASSERT_EQ(docs.size(), 30u);
  for (const auto& doc : docs) {
    EXPECT_FALSE(doc.empty());
    EXPECT_LE(doc.size(), 50u);
    for (std::size_t i = 1; i < doc.size(); ++i) {
      EXPECT_LT(doc[i - 1], doc[i]);  // sorted and unique
    }
    EXPECT_LT(doc.back(), 1000u);
  }
}

TEST(TokenDocumentsTest, ZipfSkewSharesFrequentTokens) {
  // Low token ids act as frequent terms; most document pairs should share
  // at least one.
  const auto docs = token_documents(20, 500, 40, 11);
  int sharing = 0, total = 0;
  for (std::size_t i = 0; i < docs.size(); ++i) {
    for (std::size_t j = i + 1; j < docs.size(); ++j) {
      if (jaccard_similarity(docs[i], docs[j]) > 0.0) ++sharing;
      ++total;
    }
  }
  EXPECT_GT(sharing, total / 2);
}

TEST(DocumentPayloadsTest, RoundTrip) {
  const auto docs = token_documents(5, 100, 10, 3);
  const auto payloads = document_payloads(docs);
  for (std::size_t i = 0; i < docs.size(); ++i) {
    EXPECT_EQ(decode_token_set(payloads[i]), docs[i]);
  }
}

TEST(ExpressionProfilesTest, CoRegulatedGenesCorrelate) {
  // Same-group genes share a regulator: their MI should clearly beat
  // cross-group MI (this is the structure gene-network recovery needs).
  const auto profiles = expression_profiles(12, 200, 3, 17);
  const double same_group = mutual_information(profiles[0], profiles[1], 8);
  const double cross_group = mutual_information(profiles[0], profiles[4], 8);
  EXPECT_GT(same_group, cross_group + 0.2);
}

TEST(ExpressionProfilesTest, ShapeAndDeterminism) {
  const auto a = expression_profiles(6, 50, 2, 1);
  const auto b = expression_profiles(6, 50, 2, 1);
  ASSERT_EQ(a.size(), 6u);
  EXPECT_EQ(a[0].size(), 50u);
  EXPECT_EQ(a, b);
}

TEST(GeneratorsTest, InvalidParametersThrow) {
  EXPECT_THROW(blob_payloads(3, 0, 1), PreconditionError);
  EXPECT_THROW(clustered_points(3, 0, 1, 1.0, 1), PreconditionError);
  EXPECT_THROW(token_documents(3, 0, 5, 1), PreconditionError);
  EXPECT_THROW(expression_profiles(3, 0, 2, 1), PreconditionError);
}

}  // namespace
}  // namespace pairmr::workloads
