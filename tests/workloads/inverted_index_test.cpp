// The Elsayed et al. baseline must agree with the quadratic pipeline on
// which pairs pass the similarity threshold — and must do *less* work on
// sparse corpora (its raison d'être) but *more* on dense ones (the
// regime the paper's schemes target).
#include "workloads/inverted_index.hpp"

#include <gtest/gtest.h>

#include "../support/run_pairwise.hpp"

#include "common/intmath.hpp"
#include "pairwise/block_scheme.hpp"
#include "pairwise/dataset.hpp"
#include "pairwise/pipeline.hpp"
#include "workloads/generators.hpp"
#include "workloads/kernels.hpp"

namespace pairmr::workloads {
namespace {

constexpr double kThreshold = 0.2;

// Reference: thresholded Jaccard for all pairs, serially.
std::map<std::pair<ElementId, ElementId>, double> reference(
    const std::vector<std::vector<std::uint32_t>>& docs) {
  std::map<std::pair<ElementId, ElementId>, double> out;
  for (ElementId i = 0; i < docs.size(); ++i) {
    for (ElementId j = i + 1; j < docs.size(); ++j) {
      const double s = jaccard_similarity(docs[i], docs[j]);
      if (s >= kThreshold) out[{i, j}] = s;
    }
  }
  return out;
}

TEST(InvertedIndexTest, MatchesSerialReference) {
  const auto docs = token_documents(25, 300, 40, 13);
  mr::Cluster cluster({.num_nodes = 3, .worker_threads = 2});
  const auto inputs =
      write_dataset(cluster, "/docs", document_payloads(docs));

  const InvertedIndexStats stats =
      run_doc_similarity_inverted(cluster, inputs, kThreshold);
  const auto measured = read_similarities(cluster, stats.output_dir);
  const auto expected = reference(docs);

  ASSERT_EQ(measured.size(), expected.size());
  for (const auto& [pair, sim] : expected) {
    const auto it = measured.find(pair);
    ASSERT_NE(it, measured.end());
    EXPECT_DOUBLE_EQ(it->second, sim);
  }
}

TEST(InvertedIndexTest, MatchesQuadraticPipeline) {
  const auto docs = token_documents(20, 400, 30, 7);
  const auto payloads = document_payloads(docs);

  // Baseline.
  mr::Cluster c1({.num_nodes = 2, .worker_threads = 2});
  const auto in1 = write_dataset(c1, "/docs", payloads);
  const InvertedIndexStats baseline =
      run_doc_similarity_inverted(c1, in1, kThreshold);
  const auto base_sims = read_similarities(c1, baseline.output_dir);

  // Quadratic pipeline with the block scheme.
  mr::Cluster c2({.num_nodes = 2, .worker_threads = 2});
  const auto in2 = write_dataset(c2, "/docs", payloads);
  PairwiseJob job;
  job.compute = jaccard_kernel();
  job.keep = keep_above(kThreshold);
  const BlockScheme scheme(docs.size(), 3);
  const RunReport quad = pairmr::testing::run_two_job(c2, in2, scheme, job);

  std::map<std::pair<ElementId, ElementId>, double> quad_sims;
  for (const Element& e : read_elements(c2, quad.output_dir)) {
    for (const auto& r : e.results) {
      if (r.other > e.id) {
        quad_sims[{e.id, r.other}] = decode_result(r.result);
      }
    }
  }
  EXPECT_EQ(base_sims, quad_sims);
}

TEST(InvertedIndexTest, SparseCorpusDoesLessWorkThanQuadratic) {
  // Huge vocabulary, short docs: few shared terms, so the index touches
  // far fewer pairs than C(v,2) — Elsayed's winning regime.
  const std::uint64_t v = 60;
  const auto docs = token_documents(v, 100000, 12, 3);
  mr::Cluster cluster({.num_nodes = 2, .worker_threads = 2});
  const auto inputs =
      write_dataset(cluster, "/docs", document_payloads(docs));
  const InvertedIndexStats stats =
      run_doc_similarity_inverted(cluster, inputs, kThreshold);
  EXPECT_LT(stats.pair_contributions, pair_count(v) / 2);
}

TEST(InvertedIndexTest, DenseCorpusDegenerates) {
  // Tiny vocabulary: every term's posting list is nearly the whole
  // corpus, so contributions far exceed the Cartesian product — the
  // irreducible regime where the paper's schemes win.
  const std::uint64_t v = 40;
  const auto docs = token_documents(v, 30, 25, 3);
  mr::Cluster cluster({.num_nodes = 2, .worker_threads = 2});
  const auto inputs =
      write_dataset(cluster, "/docs", document_payloads(docs));
  const InvertedIndexStats stats =
      run_doc_similarity_inverted(cluster, inputs, kThreshold);
  EXPECT_GT(stats.pair_contributions, pair_count(v) * 2);
}

}  // namespace
}  // namespace pairmr::workloads
