#include "workloads/kernels.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/serde.hpp"
#include "workloads/generators.hpp"

namespace pairmr::workloads {
namespace {

Element vec_element(ElementId id, const std::vector<double>& v) {
  Element e;
  e.id = id;
  e.payload = encode_f64_vec(v);
  return e;
}

TEST(ResultCodecTest, RoundTrip) {
  for (const double x : {0.0, -1.5, 3.25e10, 1e-300}) {
    EXPECT_DOUBLE_EQ(decode_result(encode_result(x)), x);
  }
}

TEST(EuclideanTest, KnownValues) {
  EXPECT_DOUBLE_EQ(euclidean_distance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(euclidean_distance({1, 2, 3}, {1, 2, 3}), 0.0);
  EXPECT_THROW(euclidean_distance({1}, {1, 2}), PreconditionError);
}

TEST(CosineTest, KnownValues) {
  EXPECT_DOUBLE_EQ(cosine_similarity({1, 0}, {0, 1}), 0.0);
  EXPECT_DOUBLE_EQ(cosine_similarity({2, 0}, {5, 0}), 1.0);
  EXPECT_DOUBLE_EQ(cosine_similarity({1, 0}, {-3, 0}), -1.0);
  EXPECT_DOUBLE_EQ(cosine_similarity({0, 0}, {1, 1}), 0.0);  // zero norm
}

TEST(InnerProductTest, KnownValues) {
  EXPECT_DOUBLE_EQ(inner_product({1, 2, 3}, {4, 5, 6}), 32.0);
  EXPECT_DOUBLE_EQ(inner_product({}, {}), 0.0);
}

TEST(JaccardTest, KnownValues) {
  EXPECT_DOUBLE_EQ(jaccard_similarity({1, 2, 3}, {2, 3, 4}), 0.5);
  EXPECT_DOUBLE_EQ(jaccard_similarity({1, 2}, {3, 4}), 0.0);
  EXPECT_DOUBLE_EQ(jaccard_similarity({5, 7}, {5, 7}), 1.0);
  EXPECT_DOUBLE_EQ(jaccard_similarity({}, {}), 1.0);
  EXPECT_DOUBLE_EQ(jaccard_similarity({1}, {}), 0.0);
}

TEST(MutualInformationTest, IndependentNearZeroCorrelatedHigh) {
  Rng rng(5);
  std::vector<double> x(3000), y_dep(3000), y_ind(3000);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = rng.next_gaussian();
    y_dep[i] = x[i] + 0.1 * rng.next_gaussian();
    y_ind[i] = rng.next_gaussian();
  }
  const double dep = mutual_information(x, y_dep, 8);
  const double ind = mutual_information(x, y_ind, 8);
  EXPECT_GT(dep, 1.0);
  EXPECT_LT(ind, 0.1);
}

TEST(MutualInformationTest, SelfInformationIsEntropyScale) {
  Rng rng(9);
  std::vector<double> x(2000);
  for (auto& v : x) v = rng.next_gaussian();
  // MI(X, X) should approach the (binned) entropy — far above noise.
  EXPECT_GT(mutual_information(x, x, 8), 1.5);
}

TEST(MutualInformationTest, ConstantVectorHasZeroMI) {
  const std::vector<double> c(100, 3.0);
  std::vector<double> x(100);
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = static_cast<double>(i);
  EXPECT_DOUBLE_EQ(mutual_information(c, x, 4), 0.0);
}

TEST(MutualInformationTest, InvalidInputsThrow) {
  EXPECT_THROW(mutual_information({1.0}, {1.0, 2.0}, 4), PreconditionError);
  EXPECT_THROW(mutual_information({}, {}, 4), PreconditionError);
  EXPECT_THROW(mutual_information({1.0, 2.0}, {1.0, 2.0}, 1),
               PreconditionError);
}

TEST(EditDistanceTest, KnownValues) {
  EXPECT_EQ(edit_distance("", ""), 0u);
  EXPECT_EQ(edit_distance("abc", ""), 3u);
  EXPECT_EQ(edit_distance("", "xy"), 2u);
  EXPECT_EQ(edit_distance("kitten", "sitting"), 3u);
  EXPECT_EQ(edit_distance("flaw", "lawn"), 2u);
  EXPECT_EQ(edit_distance("identical", "identical"), 0u);
}

TEST(EditDistanceTest, SymmetryAndTriangleInequality) {
  const std::vector<std::string> words = {"alpha", "alpine", "slope",
                                          "elope", ""};
  for (const auto& a : words) {
    for (const auto& b : words) {
      EXPECT_EQ(edit_distance(a, b), edit_distance(b, a));
      for (const auto& c : words) {
        EXPECT_LE(edit_distance(a, c),
                  edit_distance(a, b) + edit_distance(b, c));
      }
    }
  }
}

TEST(KernelWrapperTest, EditDistanceKernelUsesRawPayloads) {
  const auto kernel = edit_distance_kernel();
  Element a, b;
  a.payload = "kitten";
  b.payload = "sitting";
  EXPECT_DOUBLE_EQ(decode_result(kernel(a, b)), 3.0);
}

TEST(KernelWrapperTest, EuclideanKernelDecodesPayloads) {
  const auto kernel = euclidean_kernel();
  const std::string r =
      kernel(vec_element(0, {0, 0}), vec_element(1, {3, 4}));
  EXPECT_DOUBLE_EQ(decode_result(r), 5.0);
}

TEST(KernelWrapperTest, JaccardKernelDecodesTokenSets) {
  const auto kernel = jaccard_kernel();
  Element a, b;
  a.payload = document_payloads({{1, 2, 3}})[0];
  b.payload = document_payloads({{2, 3, 4}})[0];
  EXPECT_DOUBLE_EQ(decode_result(kernel(a, b)), 0.5);
}

TEST(KernelWrapperTest, ExpensiveKernelIsDeterministicAndSymmetricish) {
  const auto kernel = expensive_blob_kernel(4);
  Element a, b;
  a.payload = "payload-a";
  b.payload = "payload-b";
  EXPECT_EQ(kernel(a, b), kernel(a, b));
  // More rounds => different mixing.
  EXPECT_NE(kernel(a, b), expensive_blob_kernel(5)(a, b));
}

TEST(KeepPredicatesTest, ThresholdsApplyToDecodedResult) {
  Element dummy;
  const auto below = keep_below(2.5);
  EXPECT_TRUE(below(dummy, dummy, encode_result(2.5)));
  EXPECT_FALSE(below(dummy, dummy, encode_result(2.6)));
  const auto above = keep_above(0.8);
  EXPECT_TRUE(above(dummy, dummy, encode_result(0.9)));
  EXPECT_FALSE(above(dummy, dummy, encode_result(0.7)));
}

}  // namespace
}  // namespace pairmr::workloads
