#include "design/difference_set.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "design/design_check.hpp"
#include "design/primes.hpp"

namespace pairmr::design {
namespace {

TEST(DifferenceSetCheckTest, RecognizesTheClassicFanoSet) {
  // {1, 2, 4} mod 7 is the canonical planar difference set of order 2.
  EXPECT_TRUE(is_planar_difference_set({1, 2, 4}, 7));
  EXPECT_TRUE(is_planar_difference_set({0, 1, 3}, 7));
}

TEST(DifferenceSetCheckTest, RejectsNonPlanarSets) {
  EXPECT_FALSE(is_planar_difference_set({0, 1, 2}, 7));  // diff 1 twice
  EXPECT_FALSE(is_planar_difference_set({0, 1}, 7));     // too few diffs
  EXPECT_FALSE(is_planar_difference_set({0, 1, 3}, 8));  // wrong modulus
  EXPECT_FALSE(is_planar_difference_set({0, 0, 3}, 7));  // repeated element
}

class SingerSets : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SingerSets, ProducesAPlanarDifferenceSet) {
  const std::uint64_t q = GetParam();
  const auto d = singer_difference_set(q);
  EXPECT_EQ(d.size(), q + 1);
  EXPECT_TRUE(is_planar_difference_set(d, q_hat(q)))
      << "q=" << q;
}

// Primes and prime powers, up to the q³ <= 2^16 limit.
INSTANTIATE_TEST_SUITE_P(Orders, SingerSets,
                         ::testing::Values(2, 3, 4, 5, 7, 8, 9, 11, 13, 16,
                                           25, 27, 32, 37),
                         [](const auto& info) {
                           return "q" + std::to_string(info.param);
                         });

TEST(SingerSetTest, TooLargeOrderThrows) {
  EXPECT_THROW(singer_difference_set(41), pairmr::PreconditionError);
  EXPECT_THROW(singer_difference_set(6), pairmr::PreconditionError);
}

class CyclicPlanes : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CyclicPlanes, TranslatesFormAValidDesign) {
  const std::uint64_t q = GetParam();
  const DesignCollection d = cyclic_construction(q);
  EXPECT_EQ(d.blocks.size(), q_hat(q));
  const CheckResult check = check_design(d);
  EXPECT_TRUE(check.ok) << check.error;
}

INSTANTIATE_TEST_SUITE_P(Orders, CyclicPlanes,
                         ::testing::Values(2, 3, 4, 5, 8, 9),
                         [](const auto& info) {
                           return "q" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace pairmr::design
