#include "design/primes.hpp"

#include <gtest/gtest.h>

namespace pairmr::design {
namespace {

TEST(PrimesTest, SmallPrimality) {
  EXPECT_FALSE(is_prime(0));
  EXPECT_FALSE(is_prime(1));
  EXPECT_TRUE(is_prime(2));
  EXPECT_TRUE(is_prime(3));
  EXPECT_FALSE(is_prime(4));
  EXPECT_TRUE(is_prime(5));
  EXPECT_FALSE(is_prime(9));
  EXPECT_TRUE(is_prime(97));
  EXPECT_TRUE(is_prime(101));
  EXPECT_FALSE(is_prime(1001));  // 7 × 11 × 13
  EXPECT_TRUE(is_prime(7919));
}

TEST(PrimesTest, PrimeCountUpTo1000) {
  int count = 0;
  for (std::uint64_t n = 2; n <= 1000; ++n) {
    if (is_prime(n)) ++count;
  }
  EXPECT_EQ(count, 168);  // π(1000)
}

TEST(PrimePowerTest, RecognizesPrimePowers) {
  const auto p8 = as_prime_power(8);
  ASSERT_TRUE(p8.has_value());
  EXPECT_EQ(p8->p, 2u);
  EXPECT_EQ(p8->k, 3u);

  const auto p9 = as_prime_power(9);
  ASSERT_TRUE(p9.has_value());
  EXPECT_EQ(p9->p, 3u);
  EXPECT_EQ(p9->k, 2u);

  const auto p7 = as_prime_power(7);
  ASSERT_TRUE(p7.has_value());
  EXPECT_EQ(p7->p, 7u);
  EXPECT_EQ(p7->k, 1u);

  const auto p243 = as_prime_power(243);
  ASSERT_TRUE(p243.has_value());
  EXPECT_EQ(p243->p, 3u);
  EXPECT_EQ(p243->k, 5u);
}

TEST(PrimePowerTest, RejectsComposites) {
  EXPECT_FALSE(as_prime_power(0).has_value());
  EXPECT_FALSE(as_prime_power(1).has_value());
  EXPECT_FALSE(as_prime_power(6).has_value());
  EXPECT_FALSE(as_prime_power(12).has_value());
  EXPECT_FALSE(as_prime_power(100).has_value());
  EXPECT_FALSE(as_prime_power(1000).has_value());
}

TEST(QHatTest, KnownValues) {
  EXPECT_EQ(q_hat(2), 7u);     // Fano plane
  EXPECT_EQ(q_hat(3), 13u);
  EXPECT_EQ(q_hat(101), 10303u);
}

TEST(SmallestOrderTest, PaperExample) {
  // Paper §5.3: "If, e.g., v = 10,000, then q = 101."
  EXPECT_EQ(smallest_prime_order(10000), 101u);
}

TEST(SmallestOrderTest, ExactFitAndBoundaries) {
  EXPECT_EQ(smallest_prime_order(7), 2u);    // 7 = q_hat(2)
  EXPECT_EQ(smallest_prime_order(8), 3u);    // needs q_hat(3) = 13
  EXPECT_EQ(smallest_prime_order(13), 3u);
  EXPECT_EQ(smallest_prime_order(14), 5u);   // q=4 not prime -> 5
  EXPECT_EQ(smallest_prime_order(2), 2u);
}

TEST(SmallestOrderTest, PrimePowerBeatsPrimeWhenAvailable) {
  // v = 14: prime-only search must skip 4 (not prime) while the
  // prime-power search accepts it (q_hat(4) = 21 >= 14).
  EXPECT_EQ(smallest_prime_power_order(14), 4u);
  EXPECT_LE(smallest_prime_power_order(14), smallest_prime_order(14));
}

TEST(SmallestOrderTest, PrimePowerNeverWorseSweep) {
  for (std::uint64_t v = 2; v < 500; ++v) {
    const std::uint64_t qp = smallest_prime_order(v);
    const std::uint64_t qpp = smallest_prime_power_order(v);
    EXPECT_LE(qpp, qp) << "v=" << v;
    EXPECT_GE(q_hat(qpp), v) << "v=" << v;
    // Minimality: no smaller admissible order exists.
    if (qpp > 2) {
      for (std::uint64_t q = 2; q < qpp; ++q) {
        if (as_prime_power(q).has_value()) {
          EXPECT_LT(q_hat(q), v) << "v=" << v << " q=" << q;
        }
      }
    }
  }
}

}  // namespace
}  // namespace pairmr::design
