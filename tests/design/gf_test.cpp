// GF(p^k) field-axiom property tests: exhaustive over all elements for
// every plane-relevant small order, prime and prime-power alike.
#include "design/gf.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/check.hpp"

namespace pairmr::design {
namespace {

class GaloisFieldAxioms : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GaloisFieldAxioms, AdditiveGroup) {
  const GaloisField gf(GetParam());
  const std::uint64_t q = gf.order();
  for (std::uint64_t a = 0; a < q; ++a) {
    EXPECT_EQ(gf.add(a, 0), a);                       // identity
    EXPECT_EQ(gf.add(a, gf.neg(a)), 0u);              // inverse
    for (std::uint64_t b = 0; b < q; ++b) {
      EXPECT_EQ(gf.add(a, b), gf.add(b, a));          // commutativity
      EXPECT_EQ(gf.sub(gf.add(a, b), b), a);          // sub inverts add
    }
  }
}

TEST_P(GaloisFieldAxioms, MultiplicativeGroup) {
  const GaloisField gf(GetParam());
  const std::uint64_t q = gf.order();
  for (std::uint64_t a = 0; a < q; ++a) {
    EXPECT_EQ(gf.mul(a, 1), a);
    EXPECT_EQ(gf.mul(a, 0), 0u);
    if (a != 0) {
      EXPECT_EQ(gf.mul(a, gf.inv(a)), 1u) << "a=" << a;
    }
    for (std::uint64_t b = 0; b < q; ++b) {
      EXPECT_EQ(gf.mul(a, b), gf.mul(b, a));
      // No zero divisors — the defining property an irreducible modulus
      // buys us; a reducible modulus would fail here.
      if (a != 0 && b != 0) {
        EXPECT_NE(gf.mul(a, b), 0u);
      }
    }
  }
}

TEST_P(GaloisFieldAxioms, Distributivity) {
  const GaloisField gf(GetParam());
  const std::uint64_t q = gf.order();
  // Exhaustive for tiny fields, strided for the larger ones.
  const std::uint64_t step = q <= 9 ? 1 : 3;
  for (std::uint64_t a = 0; a < q; a += step) {
    for (std::uint64_t b = 0; b < q; b += step) {
      for (std::uint64_t c = 0; c < q; c += step) {
        EXPECT_EQ(gf.mul(a, gf.add(b, c)),
                  gf.add(gf.mul(a, b), gf.mul(a, c)));
      }
    }
  }
}

TEST_P(GaloisFieldAxioms, FermatLittleTheorem) {
  const GaloisField gf(GetParam());
  for (std::uint64_t a = 1; a < gf.order(); ++a) {
    EXPECT_EQ(gf.pow(a, gf.order() - 1), 1u) << "a=" << a;
  }
}

INSTANTIATE_TEST_SUITE_P(PlaneOrders, GaloisFieldAxioms,
                         ::testing::Values(2, 3, 4, 5, 7, 8, 9, 11, 13, 16,
                                           25, 27),
                         [](const auto& info) {
                           return "GF" + std::to_string(info.param);
                         });

TEST(GaloisFieldTest, PrimeFieldIsModularArithmetic) {
  const GaloisField gf(7);
  EXPECT_EQ(gf.add(5, 4), 2u);
  EXPECT_EQ(gf.sub(2, 5), 4u);
  EXPECT_EQ(gf.mul(3, 5), 1u);
  EXPECT_EQ(gf.inv(3), 5u);
  EXPECT_EQ(gf.characteristic(), 7u);
  EXPECT_EQ(gf.degree(), 1u);
}

TEST(GaloisFieldTest, GF4HasCharacteristic2) {
  const GaloisField gf(4);
  EXPECT_EQ(gf.characteristic(), 2u);
  EXPECT_EQ(gf.degree(), 2u);
  // In characteristic 2, x + x = 0 for every x.
  for (std::uint64_t a = 0; a < 4; ++a) EXPECT_EQ(gf.add(a, a), 0u);
}

TEST(GaloisFieldTest, PowEdgeCases) {
  const GaloisField gf(9);
  EXPECT_EQ(gf.pow(0, 0), 1u);  // empty product convention
  EXPECT_EQ(gf.pow(0, 5), 0u);
  EXPECT_EQ(gf.pow(1, 1000000), 1u);
}

TEST(GaloisFieldTest, LogTablesUseAPrimitiveElement) {
  for (const std::uint64_t q : {2ull, 5ull, 8ull, 9ull, 27ull, 101ull}) {
    const GaloisField gf(q);
    ASSERT_TRUE(gf.has_log_tables()) << "q=" << q;
    const std::uint64_t g = gf.generator();
    ASSERT_NE(g, 0u);
    // g's powers must enumerate every nonzero element exactly once.
    std::set<std::uint64_t> orbit;
    std::uint64_t x = 1;
    for (std::uint64_t i = 0; i < q - 1; ++i) {
      EXPECT_TRUE(orbit.insert(x).second) << "q=" << q;
      x = gf.mul(x, g);
    }
    EXPECT_EQ(x, 1u) << "g^(q-1) != 1 for q=" << q;
    EXPECT_EQ(orbit.size(), q - 1);
  }
}

TEST(GaloisFieldTest, TableMulMatchesPolynomialMul) {
  // The table fast path must agree with pow-derived arithmetic: check
  // a·a^{q-2} == 1 for every element (exercises both paths: pow uses mul).
  const GaloisField gf(64);
  for (std::uint64_t a = 1; a < 64; ++a) {
    EXPECT_EQ(gf.mul(a, gf.pow(a, 62)), 1u) << "a=" << a;
  }
}

TEST(GaloisFieldTest, NonPrimePowerOrderThrows) {
  EXPECT_THROW(GaloisField(6), pairmr::PreconditionError);
  EXPECT_THROW(GaloisField(12), pairmr::PreconditionError);
  EXPECT_THROW(GaloisField(1), pairmr::PreconditionError);
  EXPECT_THROW(GaloisField(0), pairmr::PreconditionError);
}

TEST(GaloisFieldTest, InverseOfZeroThrows) {
  const GaloisField gf(5);
  EXPECT_THROW(gf.inv(0), pairmr::PreconditionError);
}

}  // namespace
}  // namespace pairmr::design
