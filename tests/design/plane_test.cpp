// Projective-plane construction tests: both constructions must yield valid
// (q²+q+1, q+1, 1)-designs, and truncation must preserve exactly-once pair
// coverage — the property the whole design scheme rests on.
#include "design/projective_plane.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/check.hpp"
#include "design/design_check.hpp"
#include "design/primes.hpp"

namespace pairmr::design {
namespace {

class Theorem2Planes : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Theorem2Planes, IsValidDesign) {
  const std::uint64_t q = GetParam();
  const DesignCollection d = theorem2_construction(q);
  EXPECT_EQ(d.v, q_hat(q));
  EXPECT_EQ(d.k, q + 1);
  EXPECT_EQ(d.blocks.size(), q_hat(q));  // symmetric design: b == v
  const CheckResult check = check_design(d);
  EXPECT_TRUE(check.ok) << check.error;
}

INSTANTIATE_TEST_SUITE_P(Primes, Theorem2Planes,
                         ::testing::Values(2, 3, 5, 7, 11, 13, 17),
                         [](const auto& info) {
                           return "q" + std::to_string(info.param);
                         });

class PG2Planes : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PG2Planes, IsValidDesign) {
  const std::uint64_t q = GetParam();
  const DesignCollection d = pg2_construction(q);
  EXPECT_EQ(d.v, q_hat(q));
  EXPECT_EQ(d.k, q + 1);
  EXPECT_EQ(d.blocks.size(), q_hat(q));
  const CheckResult check = check_design(d);
  EXPECT_TRUE(check.ok) << check.error;
}

// Includes the prime powers 4, 8, 9, 16, 27 that Theorem 2 cannot build.
INSTANTIATE_TEST_SUITE_P(PrimePowers, PG2Planes,
                         ::testing::Values(2, 3, 4, 5, 7, 8, 9, 11, 16, 27),
                         [](const auto& info) {
                           return "q" + std::to_string(info.param);
                         });

TEST(PlaneTest, FanoPlaneMatchesPaperFigure4) {
  // The paper's Figure 4/7 shows a (7,3,1)-design: 7 blocks of 3, every
  // pair exactly once. Our construction need not match block-for-block
  // (any Fano plane is isomorphic), but must have the same shape.
  const DesignCollection d = theorem2_construction(2);
  EXPECT_EQ(d.v, 7u);
  EXPECT_EQ(d.blocks.size(), 7u);
  for (const auto& b : d.blocks) EXPECT_EQ(b.size(), 3u);
  // Paper's D1 = {s1, s2, s3} appears verbatim in the Theorem 2 form.
  EXPECT_EQ(d.blocks[0], (Block{0, 1, 2}));
}

TEST(PlaneTest, EachElementLiesInExactlyQPlus1Blocks) {
  for (const std::uint64_t q : {3u, 4u, 5u}) {
    const DesignCollection d =
        (q == 4) ? pg2_construction(q) : theorem2_construction(q);
    std::vector<std::uint64_t> membership(d.v, 0);
    for (const auto& b : d.blocks) {
      for (const auto e : b) ++membership[e];
    }
    for (std::uint64_t e = 0; e < d.v; ++e) {
      EXPECT_EQ(membership[e], q + 1) << "q=" << q << " element " << e;
    }
  }
}

TEST(PlaneTest, BlocksAreSortedAndDuplicateFree) {
  for (const DesignCollection& d :
       {theorem2_construction(5), pg2_construction(4)}) {
    for (const auto& b : d.blocks) {
      EXPECT_TRUE(std::is_sorted(b.begin(), b.end()));
      EXPECT_EQ(std::set<std::uint64_t>(b.begin(), b.end()).size(), b.size());
    }
  }
}

TEST(PlaneTest, TheoremRequiresPrime) {
  EXPECT_THROW(theorem2_construction(4), pairmr::PreconditionError);
  EXPECT_THROW(theorem2_construction(6), pairmr::PreconditionError);
}

class TruncationCoverage
    : public ::testing::TestWithParam<std::pair<std::uint64_t, std::uint64_t>> {
};

TEST_P(TruncationCoverage, CoversEveryPairExactlyOnce) {
  const auto [q, v] = GetParam();
  const DesignCollection d = truncate(theorem2_construction(q), v);
  EXPECT_EQ(d.v, v);
  const CheckResult check = check_pair_coverage(v, d.blocks);
  EXPECT_TRUE(check.ok) << check.error;
  // No degenerate blocks survive truncation.
  for (const auto& b : d.blocks) EXPECT_GE(b.size(), 2u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TruncationCoverage,
    ::testing::Values(std::pair<std::uint64_t, std::uint64_t>{3, 8},
                      std::pair<std::uint64_t, std::uint64_t>{3, 10},
                      std::pair<std::uint64_t, std::uint64_t>{5, 14},
                      std::pair<std::uint64_t, std::uint64_t>{5, 25},
                      std::pair<std::uint64_t, std::uint64_t>{7, 40},
                      std::pair<std::uint64_t, std::uint64_t>{7, 56},
                      std::pair<std::uint64_t, std::uint64_t>{11, 100}),
    [](const auto& info) {
      return "q" + std::to_string(info.param.first) + "_v" +
             std::to_string(info.param.second);
    });

TEST(TruncationTest, FullSizeIsIdentity) {
  const DesignCollection d = theorem2_construction(3);
  const DesignCollection t = truncate(d, d.v);
  EXPECT_EQ(t.blocks, d.blocks);
}

TEST(TruncationTest, UpwardTruncationThrows) {
  const DesignCollection d = theorem2_construction(2);
  EXPECT_THROW(truncate(d, 100), pairmr::PreconditionError);
}

TEST(TruncationTest, BlockSizesStayNearSqrtV) {
  // Paper §5.3: truncated working sets still hold about √v (≤ q+1)
  // elements; the "rule 2" blocks shrink but the bulk keeps its size.
  const std::uint64_t v = 40;
  const DesignCollection d = truncate(theorem2_construction(7), v);
  for (const auto& b : d.blocks) {
    EXPECT_LE(b.size(), 8u);  // q + 1
  }
}

}  // namespace
}  // namespace pairmr::design
