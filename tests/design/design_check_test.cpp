#include "design/design_check.hpp"

#include <gtest/gtest.h>

namespace pairmr::design {
namespace {

TEST(DesignCheckTest, AcceptsFanoPlane) {
  const std::vector<Block> fano = {{0, 1, 2}, {0, 3, 4}, {0, 5, 6},
                                   {1, 3, 5}, {1, 4, 6}, {2, 3, 6},
                                   {2, 4, 5}};
  EXPECT_TRUE(check_pair_coverage(7, fano).ok);

  DesignCollection d;
  d.v = 7;
  d.k = 3;
  d.q = 2;
  d.blocks = fano;
  EXPECT_TRUE(check_design(d).ok);
}

TEST(DesignCheckTest, DetectsMissingPair) {
  // Pair {5,6} never covered.
  const std::vector<Block> blocks = {{0, 1, 2}, {0, 3, 4}, {0, 5}, {0, 6},
                                     {1, 3, 5}, {1, 4, 6}, {2, 3, 6},
                                     {2, 4, 5}};
  const CheckResult r = check_pair_coverage(7, blocks);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("never covered"), std::string::npos);
}

TEST(DesignCheckTest, DetectsDoubleCoverage) {
  const std::vector<Block> blocks = {{0, 1}, {0, 1}};
  const CheckResult r = check_pair_coverage(2, blocks);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("more than once"), std::string::npos);
}

TEST(DesignCheckTest, DetectsOutOfRangeElement) {
  const std::vector<Block> blocks = {{0, 9}};
  const CheckResult r = check_pair_coverage(3, blocks);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find(">= v"), std::string::npos);
}

TEST(DesignCheckTest, DetectsDuplicateInBlock) {
  const std::vector<Block> blocks = {{0, 0, 1}};
  const CheckResult r = check_pair_coverage(2, blocks);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("duplicate"), std::string::npos);
}

TEST(DesignCheckTest, DetectsWrongBlockSize) {
  DesignCollection d;
  d.v = 7;
  d.k = 3;
  d.q = 2;
  d.blocks = {{0, 1, 2, 3}};
  const CheckResult r = check_design(d);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("expected k=3"), std::string::npos);
}

TEST(DesignCheckTest, TrivialSingleBlockSolution) {
  // The paper's trivial solution: b=1, D1=S, P1 = all pairs.
  const std::vector<Block> blocks = {{0, 1, 2, 3, 4}};
  EXPECT_TRUE(check_pair_coverage(5, blocks).ok);
}

}  // namespace
}  // namespace pairmr::design
