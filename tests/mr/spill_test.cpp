// Unit tests of the spill path's building blocks (mr/spill.hpp) — the
// GroupIterator's grouped merge, record-level merge_runs, multi-pass
// merge_to_fan_in — plus engine-level spill-on/off byte-equivalence and
// metering of the memory budget.
#include "mr/spill.hpp"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "mr/cluster.hpp"
#include "mr/context.hpp"
#include "mr/engine.hpp"
#include "mr/group.hpp"
#include "mr/job.hpp"

namespace pairmr::mr {
namespace {

std::vector<Record> recs(
    std::initializer_list<std::pair<const char*, const char*>> kvs) {
  std::vector<Record> out;
  for (const auto& [k, v] : kvs) out.push_back(Record{k, v});
  return out;
}

// Reference semantics: GroupIterator over sources must equal group_by_key
// over the concatenation of the sources in index order.
std::vector<std::pair<std::string, std::vector<std::string>>> reference_groups(
    const std::vector<RunSource>& sources) {
  std::vector<Record> concat;
  for (const auto& s : sources) {
    for (const auto& r : s.view()) concat.push_back(r);
  }
  std::vector<std::pair<std::string, std::vector<std::string>>> out;
  group_by_key(concat, [&](const Bytes& key, const std::vector<Bytes>& vals) {
    out.emplace_back(key, vals);
  });
  return out;
}

void expect_groups_match(GroupIterator& it,
                         const std::vector<RunSource>& reference_sources) {
  const auto want = reference_groups(reference_sources);
  std::size_t i = 0;
  while (it.next()) {
    ASSERT_LT(i, want.size());
    EXPECT_EQ(it.key(), want[i].first) << "group " << i;
    EXPECT_EQ(it.values(), want[i].second) << "group " << i;
    ++i;
  }
  EXPECT_EQ(i, want.size());
}

// Copy of a source list for building the reference (GroupIterator moves
// owned values out).
std::vector<RunSource> copy_sources(const std::vector<RunSource>& sources) {
  std::vector<RunSource> out;
  for (const auto& s : sources) {
    out.push_back(s.owned() ? RunSource::from_records(s.view())
                            : RunSource::from_file(s.file));
  }
  return out;
}

TEST(GroupIteratorTest, NoSourcesYieldsNothing) {
  GroupIterator it({});
  EXPECT_FALSE(it.next());
  EXPECT_EQ(it.records_consumed(), 0u);
  EXPECT_EQ(it.max_head_bytes(), 0u);
}

TEST(GroupIteratorTest, EmptyRunsAreSkipped) {
  std::vector<RunSource> sources;
  sources.push_back(RunSource::from_records({}));
  sources.push_back(RunSource::from_records(recs({{"a", "1"}})));
  sources.push_back(RunSource::from_records({}));
  auto reference = copy_sources(sources);
  GroupIterator it(std::move(sources));
  expect_groups_match(it, reference);
  EXPECT_EQ(it.records_consumed(), 1u);
}

TEST(GroupIteratorTest, SingleRecord) {
  GroupIterator it({RunSource::from_records(recs({{"k", "v"}}))});
  ASSERT_TRUE(it.next());
  EXPECT_EQ(it.key(), "k");
  EXPECT_EQ(it.values(), std::vector<Bytes>{"v"});
  EXPECT_FALSE(it.next());
}

TEST(GroupIteratorTest, DuplicateKeysMergeAcrossRunsInSourceOrder) {
  // Key "b" appears in all three runs (twice in run 0): values must come
  // out in (source index, position) order — exactly the stable-sort order
  // of the concatenation.
  std::vector<RunSource> sources;
  sources.push_back(
      RunSource::from_records(recs({{"a", "s0"}, {"b", "s0-1"}, {"b", "s0-2"}})));
  sources.push_back(RunSource::from_records(recs({{"b", "s1"}, {"c", "s1"}})));
  sources.push_back(RunSource::from_records(recs({{"b", "s2"}, {"d", "s2"}})));
  auto reference = copy_sources(sources);
  GroupIterator it(std::move(sources));
  expect_groups_match(it, reference);
  EXPECT_EQ(it.records_consumed(), 7u);
  EXPECT_GT(it.max_head_bytes(), 0u);
}

TEST(GroupIteratorTest, FileBackedAndOwnedSourcesMix) {
  Cluster cluster({.num_nodes = 1});
  cluster.dfs().write_file("/runs/r0", 0,
                           recs({{"a", "file"}, {"c", "file"}}));
  std::vector<RunSource> sources;
  sources.push_back(RunSource::from_file(cluster.dfs().open("/runs/r0")));
  sources.push_back(RunSource::from_records(recs({{"a", "mem"}, {"b", "mem"}})));
  auto reference = copy_sources(sources);
  GroupIterator it(std::move(sources));
  expect_groups_match(it, reference);
}

TEST(MergeRunsTest, EquivalentToStableSortOfConcatenation) {
  // Three sorted runs with overlapping keys; merge must equal the stable
  // sort of their concatenation in source order.
  std::vector<RunSource> sources;
  sources.push_back(
      RunSource::from_records(recs({{"a", "0"}, {"m", "0"}, {"z", "0"}})));
  sources.push_back(RunSource::from_records(recs({{"a", "1"}, {"n", "1"}})));
  sources.push_back(
      RunSource::from_records(recs({{"b", "2"}, {"m", "2"}, {"m", "2b"}})));

  std::vector<Record> concat;
  for (const auto& s : sources) {
    for (const auto& r : s.view()) concat.push_back(r);
  }
  sort_records_stable(concat);

  const std::vector<Record> merged = merge_runs(std::move(sources));
  ASSERT_EQ(merged.size(), concat.size());
  for (std::size_t i = 0; i < merged.size(); ++i) {
    EXPECT_EQ(merged[i].key, concat[i].key) << i;
    EXPECT_EQ(merged[i].value, concat[i].value) << i;
  }
}

TEST(MergeToFanInTest, NoPassesWhenAlreadyUnderFanIn) {
  Cluster cluster({.num_nodes = 1});
  std::vector<RunSource> sources;
  sources.push_back(RunSource::from_records(recs({{"a", "0"}})));
  sources.push_back(RunSource::from_records(recs({{"b", "1"}})));
  MergeStats stats;
  const auto out = merge_to_fan_in(cluster.dfs(), "/scratch/", 0,
                                   std::move(sources), 4, stats);
  EXPECT_EQ(out.size(), 2u);
  EXPECT_EQ(stats.passes, 0u);
  EXPECT_EQ(stats.runs_written, 0u);
}

TEST(MergeToFanInTest, MultiPassBinaryMergePreservesGroupedOrder) {
  // 9 single-key runs at fan_in=2: 9 → 5 → 3 → 2 runs, three passes, and
  // the final grouped stream must equal the ungrouped reference.
  Cluster cluster({.num_nodes = 1});
  std::vector<RunSource> sources;
  for (int i = 0; i < 9; ++i) {
    const std::string key = std::string(1, static_cast<char>('a' + i % 4));
    sources.push_back(RunSource::from_records(
        recs({{key.c_str(), std::to_string(i).c_str()}})));
  }
  auto reference = copy_sources(sources);

  MergeStats stats;
  auto out = merge_to_fan_in(cluster.dfs(), "/scratch/", 0,
                             std::move(sources), 2, stats);
  EXPECT_EQ(out.size(), 2u);
  EXPECT_EQ(stats.passes, 3u);
  EXPECT_GT(stats.runs_written, 0u);
  EXPECT_GT(stats.bytes_written, 0u);

  GroupIterator it(std::move(out));
  expect_groups_match(it, reference);
}

// --- engine-level spill behavior ----------------------------------------

class SplitMapper final : public Mapper {
 public:
  void map(const Bytes& key, const Bytes& value, MapContext& ctx) override {
    // Several emissions per input record so tiny budgets force spills.
    for (int i = 0; i < 4; ++i) {
      ctx.emit(key + "-" + std::to_string(i), value);
    }
    ctx.emit(key, value);
  }
};

class ConcatReducer final : public Reducer {
 public:
  void reduce(const Bytes& key, const std::vector<Bytes>& values,
              ReduceContext& ctx) override {
    std::string joined;
    for (const auto& v : values) {
      joined += v;
      joined += '|';
    }
    ctx.emit(key, joined);
  }
};

std::vector<std::string> write_inputs(Cluster& cluster) {
  std::vector<Record> records;
  for (int i = 0; i < 24; ++i) {
    records.push_back(Record{"key" + std::to_string(i % 7),
                             "payload-" + std::to_string(i)});
  }
  return cluster.scatter_records("/in", std::move(records));
}

JobSpec spill_spec(const std::vector<std::string>& inputs,
                   const std::string& output_dir) {
  JobSpec spec;
  spec.name = "spill-e2e";
  spec.input_paths = inputs;
  spec.output_dir = output_dir;
  spec.mapper_factory = [] { return std::make_unique<SplitMapper>(); };
  spec.reducer_factory = [] { return std::make_unique<ConcatReducer>(); };
  return spec;
}

std::vector<Record> run_and_gather(Cluster& cluster, const JobSpec& spec,
                                   JobResult* result_out = nullptr) {
  const JobResult result = Engine(cluster).run(spec);
  if (result_out != nullptr) *result_out = result;
  return cluster.gather_records(spec.output_dir);
}

TEST(EngineSpillTest, TinyBudgetOutputByteIdenticalToInMemory) {
  Cluster baseline({.num_nodes = 3, .worker_threads = 2});
  const auto want =
      run_and_gather(baseline, spill_spec(write_inputs(baseline), "/out"));

  Cluster cluster({.num_nodes = 3, .worker_threads = 2});
  JobSpec spec = spill_spec(write_inputs(cluster), "/out");
  spec.memory_budget = MemoryBudget{.bytes = 64, .merge_fan_in = 2};
  JobResult result;
  const auto got = run_and_gather(cluster, spec, &result);

  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].key, want[i].key) << i;
    EXPECT_EQ(got[i].value, want[i].value) << i;
  }

  // The budget actually bit: runs spilled, multi-pass merges happened,
  // and the tracked peak stayed within the budget.
  EXPECT_GT(result.counter(counter::kSpillRuns), 0u);
  EXPECT_GT(result.counter(counter::kSpillBytes), 0u);
  EXPECT_GT(result.counter(counter::kMergePasses), 0u);
  EXPECT_LE(result.counter(counter::kMemoryMaxTrackedBytes), 64u);

  // Scratch space is swept once the job completes.
  EXPECT_TRUE(cluster.dfs().list("/out.spill/").empty());
}

TEST(EngineSpillTest, GenerousBudgetNeverSpills) {
  Cluster cluster({.num_nodes = 3, .worker_threads = 2});
  JobSpec spec = spill_spec(write_inputs(cluster), "/out");
  spec.memory_budget = MemoryBudget{.bytes = 1ull << 30};
  JobResult result;
  run_and_gather(cluster, spec, &result);
  EXPECT_EQ(result.counter(counter::kSpillRuns), 0u);
  EXPECT_EQ(result.counter(counter::kMergePasses), 0u);
  EXPECT_GT(result.counter(counter::kMemoryMaxTrackedBytes), 0u);
}

TEST(EngineSpillTest, CombinerRunsPerSpillAndOutputMatches) {
  // A combinable job (concat is order-sensitive, so use the reducer only
  // at reduce time; combiner here just forwards — the point is that the
  // per-run combine hook fires and output still matches).
  Cluster baseline({.num_nodes = 2, .worker_threads = 2});
  JobSpec ref_spec = spill_spec(write_inputs(baseline), "/out");
  ref_spec.combiner_factory = [] { return std::make_unique<IdentityReducer>(); };
  const auto want = run_and_gather(baseline, ref_spec);

  Cluster cluster({.num_nodes = 2, .worker_threads = 2});
  JobSpec spec = spill_spec(write_inputs(cluster), "/out");
  spec.combiner_factory = [] { return std::make_unique<IdentityReducer>(); };
  spec.memory_budget = MemoryBudget{.bytes = 96, .merge_fan_in = 2};
  JobResult result;
  const auto got = run_and_gather(cluster, spec, &result);

  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].key, want[i].key) << i;
    EXPECT_EQ(got[i].value, want[i].value) << i;
  }
  EXPECT_GT(result.counter(counter::kSpillRuns), 0u);
  EXPECT_GT(result.counter(counter::kCombineInputRecords), 0u);
}

TEST(EngineSpillTest, MapOnlyJobIgnoresBudget) {
  Cluster cluster({.num_nodes = 2, .worker_threads = 1});
  JobSpec spec;
  spec.name = "spill-maponly";
  spec.input_paths = write_inputs(cluster);
  spec.output_dir = "/out";
  spec.map_only = true;
  spec.mapper_factory = [] { return std::make_unique<SplitMapper>(); };
  spec.memory_budget = MemoryBudget{.bytes = 16, .merge_fan_in = 2};
  JobResult result;
  const auto got = run_and_gather(cluster, spec, &result);
  EXPECT_FALSE(got.empty());
  // Map-only output preserves emission order, which spilling would
  // destroy — the budget must be ignored entirely.
  EXPECT_EQ(result.counter(counter::kSpillRuns), 0u);
  EXPECT_EQ(result.counter(counter::kSpillBytes), 0u);
}

TEST(EngineSpillTest, OneWayFanInIsRejectedUpFront) {
  Cluster cluster({.num_nodes = 1});
  JobSpec spec = spill_spec(write_inputs(cluster), "/out");
  spec.memory_budget = MemoryBudget{.bytes = 64, .merge_fan_in = 1};
  EXPECT_THROW(Engine(cluster).run(spec), PreconditionError);
}

}  // namespace
}  // namespace pairmr::mr
