// Schema and golden tests for the BENCH_backend.json document emitted by
// bench/bench_backend: the exact field set and ordering of every point,
// a literal golden rendering of hand-built points, and the pass flag's
// all-points-identical semantics. Pure rendering — no jobs are run and
// no processes are forked here.
#include "mr/backend/bench_report.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "../support/mini_json.hpp"

namespace pairmr::mr::backend {
namespace {

using minijson::JsonParser;
using minijson::JsonValue;

const std::vector<std::string> kPointKeys = {
    "regime",       "backend",
    "shuffle_plane", "v",
    "element_bytes", "evaluations",
    "jobs",         "wall_seconds",
    "shuffle_remote_bytes", "shuffle_mib_per_second",
    "workers_forked", "workers_reused",
    "identical"};

JsonValue parse_or_die(const std::string& json) {
  JsonValue doc;
  JsonParser parser(json);
  EXPECT_TRUE(parser.parse(doc)) << json;
  return doc;
}

BenchPoint sample_point(const std::string& backend, bool identical) {
  BenchPoint p;
  p.regime = "compute-heavy";
  p.backend = backend;
  p.shuffle_plane = backend == "fork" ? "shm" : "socket";
  p.v = 57;
  p.element_bytes = 64;
  p.evaluations = 1596;
  p.jobs = 2;
  p.wall_seconds = 0.5;
  p.shuffle_remote_bytes = 8388608;
  p.shuffle_mib_per_second = 16;
  p.workers_forked = backend == "fork" ? 4 : 0;
  p.workers_reused = backend == "fork" ? 4 : 0;
  p.identical = identical;
  return p;
}

TEST(BackendBenchSchema, DocumentMatchesSchema) {
  const std::vector<BenchPoint> points = {sample_point("inprocess", true),
                                          sample_point("fork", true)};
  const JsonValue doc = parse_or_die(bench_to_json(points));
  ASSERT_EQ(doc.kind, JsonValue::kObject);
  ASSERT_EQ(doc.object.size(), 3u);
  EXPECT_EQ(doc.object[0].first, "bench");
  EXPECT_EQ(doc.object[1].first, "points");
  EXPECT_EQ(doc.object[2].first, "passed");

  ASSERT_EQ(doc.object[0].second.kind, JsonValue::kString);
  EXPECT_EQ(doc.object[0].second.str, "backend");
  ASSERT_EQ(doc.object[2].second.kind, JsonValue::kBool);
  EXPECT_TRUE(doc.object[2].second.boolean);

  const JsonValue& array = doc.object[1].second;
  ASSERT_EQ(array.kind, JsonValue::kArray);
  ASSERT_EQ(array.array.size(), points.size());
  for (std::size_t i = 0; i < array.array.size(); ++i) {
    const JsonValue& point = array.array[i];
    ASSERT_EQ(point.kind, JsonValue::kObject) << "point " << i;
    ASSERT_EQ(point.object.size(), kPointKeys.size()) << "point " << i;
    for (std::size_t k = 0; k < kPointKeys.size(); ++k) {
      EXPECT_EQ(point.object[k].first, kPointKeys[k])
          << "point " << i << " key " << k;
    }
    EXPECT_EQ(point.find("regime")->kind, JsonValue::kString);
    EXPECT_EQ(point.find("backend")->kind, JsonValue::kString);
    EXPECT_EQ(point.find("shuffle_plane")->kind, JsonValue::kString);
    EXPECT_EQ(point.find("v")->kind, JsonValue::kNumber);
    EXPECT_EQ(point.find("element_bytes")->kind, JsonValue::kNumber);
    EXPECT_EQ(point.find("evaluations")->kind, JsonValue::kNumber);
    EXPECT_EQ(point.find("jobs")->kind, JsonValue::kNumber);
    EXPECT_EQ(point.find("wall_seconds")->kind, JsonValue::kNumber);
    EXPECT_EQ(point.find("shuffle_remote_bytes")->kind, JsonValue::kNumber);
    EXPECT_EQ(point.find("shuffle_mib_per_second")->kind,
              JsonValue::kNumber);
    EXPECT_EQ(point.find("workers_forked")->kind, JsonValue::kNumber);
    EXPECT_EQ(point.find("workers_reused")->kind, JsonValue::kNumber);
    EXPECT_EQ(point.find("identical")->kind, JsonValue::kBool);
  }
}

// Pins the exact serialization so downstream consumers of
// BENCH_backend.json cannot be broken by silent format drift.
TEST(BackendBenchSchema, GoldenLiteral) {
  const std::vector<BenchPoint> points = {sample_point("fork", true)};
  const std::string expected =
      "{\n"
      "  \"bench\": \"backend\",\n"
      "  \"points\": [\n"
      "    {\"regime\": \"compute-heavy\", \"backend\": \"fork\", "
      "\"shuffle_plane\": \"shm\", "
      "\"v\": 57, \"element_bytes\": 64, \"evaluations\": 1596, "
      "\"jobs\": 2, "
      "\"wall_seconds\": 0.5, \"shuffle_remote_bytes\": 8388608, "
      "\"shuffle_mib_per_second\": 16, "
      "\"workers_forked\": 4, \"workers_reused\": 4, "
      "\"identical\": true}\n"
      "  ],\n"
      "  \"passed\": true\n"
      "}\n";
  EXPECT_EQ(bench_to_json(points), expected);
}

TEST(BackendBenchSchema, PassedIsFalseWhenAnyPointDiverged) {
  const std::vector<BenchPoint> points = {sample_point("inprocess", true),
                                          sample_point("fork", false)};
  EXPECT_FALSE(bench_all_ok(points));
  const JsonValue doc = parse_or_die(bench_to_json(points));
  ASSERT_EQ(doc.object[2].second.kind, JsonValue::kBool);
  EXPECT_FALSE(doc.object[2].second.boolean);
}

TEST(BackendBenchSchema, EmptyDocumentStillParses) {
  const JsonValue doc = parse_or_die(bench_to_json({}));
  ASSERT_EQ(doc.object[1].second.kind, JsonValue::kArray);
  EXPECT_TRUE(doc.object[1].second.array.empty());
  // Vacuously passed, matching frontier semantics.
  ASSERT_EQ(doc.object[2].second.kind, JsonValue::kBool);
  EXPECT_TRUE(doc.object[2].second.boolean);
}

}  // namespace
}  // namespace pairmr::mr::backend
