// Cross-backend differential oracle: the same job run on the in-process
// and fork backends must be indistinguishable from the outside —
// byte-identical output files, equal counter folds, equal NetworkMeter
// totals, and the same canonical trace structure. The pairwise matrix
// (every driver-facing scheme family × fault chaos × spill budgets)
// rides the same oracle end to end, so every engine feature the repo
// ships is held to the equivalence bar, not just word count.
//
// The fork runs are also checked to have actually crossed a process
// boundary: worker-recorded spans carry the worker's os_pid, which must
// differ from this (coordinator) process — otherwise the "fork backend"
// could silently degrade to in-process execution and this oracle would
// prove nothing.
#include <gtest/gtest.h>

#include <sys/types.h>
#include <unistd.h>

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "../support/backend_matrix.hpp"
#include "common/rng.hpp"
#include "mr/cluster.hpp"
#include "mr/context.hpp"
#include "mr/engine.hpp"
#include "mr/fault.hpp"
#include "mr/trace.hpp"
#include "pairwise/block_scheme.hpp"
#include "pairwise/broadcast_scheme.hpp"
#include "pairwise/dataset.hpp"
#include "pairwise/design_scheme.hpp"
#include "pairwise/quorum_scheme.hpp"
#include "pairwise/runner.hpp"
#include "workloads/kernels.hpp"

namespace pairmr {
namespace {

using mr::BackendKind;
using mr::Bytes;
using mr::Cluster;
using mr::Engine;
using mr::FaultPlan;
using mr::JobResult;
using mr::JobSpec;
using mr::MapContext;
using mr::Mapper;
using mr::MemoryBudget;
using mr::Record;
using mr::ReduceContext;
using mr::Reducer;
using mr::TaskKind;
using mr::Tracer;

// --- Word-count fixtures (mr-level oracle) --------------------------------

class TokenizeMapper final : public Mapper {
 public:
  void map(const Bytes& /*key*/, const Bytes& value,
           MapContext& ctx) override {
    std::istringstream is(value);
    std::string word;
    while (is >> word) ctx.emit(word, "1");
  }
};

class SumReducer final : public Reducer {
 public:
  void reduce(const Bytes& key, const std::vector<Bytes>& values,
              ReduceContext& ctx) override {
    std::uint64_t total = 0;
    for (const auto& v : values) total += std::stoull(v);
    ctx.emit(key, std::to_string(total));
  }
};

std::vector<std::string> write_corpus(Cluster& cluster) {
  cluster.dfs().write_file("/in/a", 0,
                           {Record{"0", "the quick brown fox"},
                            Record{"1", "jumps over the lazy dog"}});
  cluster.dfs().write_file("/in/b", 1,
                           {Record{"0", "the dog barks"},
                            Record{"1", "quick quick slow"}});
  return {"/in/a", "/in/b"};
}

JobSpec word_count_spec(const std::vector<std::string>& inputs,
                        BackendKind backend) {
  JobSpec spec;
  spec.name = "wordcount";
  spec.input_paths = inputs;
  spec.output_dir = "/out";
  spec.mapper_factory = [] { return std::make_unique<TokenizeMapper>(); };
  spec.reducer_factory = [] { return std::make_unique<SumReducer>(); };
  spec.backend = backend;
  return spec;
}

// Everything externally observable about one run, on a fresh cluster.
struct Observation {
  std::map<std::string, std::vector<Record>> files;  // path -> records
  std::map<std::string, std::uint64_t> counters;
  std::uint64_t remote_bytes = 0;
  std::uint64_t local_bytes = 0;
  std::uint64_t remote_transfers = 0;
  std::vector<std::uint64_t> sent_by;
  std::vector<std::uint64_t> received_at;
  std::string trace_signature;
};

Observation observe(const Cluster& cluster, const JobResult& result,
                    const std::string& output_dir, const Tracer* tracer) {
  Observation ob;
  for (const auto& path : cluster.dfs().list(output_dir)) {
    ob.files[path] = cluster.dfs().open(path)->records;
  }
  ob.counters = result.counters;
  ob.remote_bytes = cluster.network().remote_bytes();
  ob.local_bytes = cluster.network().local_bytes();
  ob.remote_transfers = cluster.network().remote_transfers();
  for (mr::NodeId n = 0; n < cluster.num_nodes(); ++n) {
    ob.sent_by.push_back(cluster.network().sent_by(n));
    ob.received_at.push_back(cluster.network().received_at(n));
  }
  if (tracer != nullptr) ob.trace_signature = tracer->structure_signature();
  return ob;
}

// Counters with transport provenance removed: shuffle.shm.bytes records
// which plane served the remote shuffle volume, so it legitimately
// differs across backends and planes — exactly like worker os_pids,
// which the structure signature already excludes. Everything else is job
// semantics and must match bit for bit.
std::map<std::string, std::uint64_t> semantic_counters(
    const std::map<std::string, std::uint64_t>& counters) {
  auto out = counters;
  out.erase(mr::counter::kShuffleShmBytes);
  return out;
}

void expect_equal(const Observation& in_process, const Observation& fork,
                  const std::string& what) {
  // Output files byte-identical: same paths, same records in order.
  EXPECT_EQ(in_process.files, fork.files) << what;
  // Counter folds equal — including spill, recovery, and max counters.
  EXPECT_EQ(semantic_counters(in_process.counters),
            semantic_counters(fork.counters))
      << what;
  // NetworkMeter totals equal: the coordinator meters both backends.
  EXPECT_EQ(in_process.remote_bytes, fork.remote_bytes) << what;
  EXPECT_EQ(in_process.local_bytes, fork.local_bytes) << what;
  EXPECT_EQ(in_process.remote_transfers, fork.remote_transfers) << what;
  EXPECT_EQ(in_process.sent_by, fork.sent_by) << what;
  EXPECT_EQ(in_process.received_at, fork.received_at) << what;
  EXPECT_EQ(in_process.trace_signature, fork.trace_signature) << what;
}

TEST(BackendEquivalence, WordCountMatchesAcrossBackends) {
  PAIRMR_SKIP_WITHOUT_FORK_SUPPORT();
  std::vector<Observation> runs;
  for (const BackendKind kind : testing::kBackendMatrix) {
    Cluster cluster({.num_nodes = 3, .worker_threads = 2});
    Tracer tracer;
    cluster.set_tracer(&tracer);
    const auto inputs = write_corpus(cluster);
    const JobResult result =
        Engine(cluster).run(word_count_spec(inputs, kind));
    runs.push_back(observe(cluster, result, "/out", &tracer));
  }
  expect_equal(runs[0], runs[1], "wordcount");
}

// The proof the fork backend is not quietly running in-process: spans
// recorded inside task attempts carry the executing worker's os_pid,
// which must be a real child pid — never this process's.
TEST(BackendEquivalence, ForkWorkersExecuteInDistinctProcesses) {
  PAIRMR_SKIP_WITHOUT_FORK_SUPPORT();
  Cluster cluster({.num_nodes = 3, .worker_threads = 2});
  Tracer tracer;
  cluster.set_tracer(&tracer);
  const auto inputs = write_corpus(cluster);
  Engine(cluster).run(word_count_spec(inputs, BackendKind::kFork));

  std::set<std::uint32_t> worker_pids;
  for (const mr::Span& span : tracer.spans()) {
    if (span.os_pid != 0 &&
        span.os_pid != static_cast<std::uint32_t>(getpid())) {
      worker_pids.insert(span.os_pid);
    }
  }
  // Three nodes each hosted at least one task, so at least two distinct
  // worker processes must have recorded spans (tasks spread over nodes).
  EXPECT_GE(worker_pids.size(), 2u);
  // And no task-execution span may claim the coordinator's pid.
  for (const mr::Span& span : tracer.spans()) {
    if (span.kind == mr::SpanKind::kMapExec ||
        span.kind == mr::SpanKind::kReduceExec) {
      EXPECT_NE(span.os_pid, static_cast<std::uint32_t>(getpid()))
          << "task executed in the coordinator process";
      EXPECT_NE(span.os_pid, 0u);
    }
  }
}

// PAIRMR_TEST_MEMORY_BUDGET is parsed per run and the resolved TaskEnv is
// what forked workers inherit, so an env change between two jobs of one
// test process must reach the workers of each job — the budgeted run
// spills inside worker processes, the unbudgeted rerun does not.
TEST(BackendEquivalence, EnvMemoryBudgetPropagatesIntoForkedWorkers) {
  PAIRMR_SKIP_WITHOUT_FORK_SUPPORT();
  const char* prior = std::getenv("PAIRMR_TEST_MEMORY_BUDGET");
  const std::string saved = prior == nullptr ? "" : prior;

  Cluster budgeted({.num_nodes = 2, .worker_threads = 2});
  const auto in_budgeted = write_corpus(budgeted);
  ASSERT_EQ(setenv("PAIRMR_TEST_MEMORY_BUDGET", "16", 1), 0);
  const JobResult with_budget =
      Engine(budgeted).run(word_count_spec(in_budgeted, BackendKind::kFork));

  Cluster unbudgeted({.num_nodes = 2, .worker_threads = 2});
  const auto in_unbudgeted = write_corpus(unbudgeted);
  ASSERT_EQ(unsetenv("PAIRMR_TEST_MEMORY_BUDGET"), 0);
  const JobResult without_budget = Engine(unbudgeted)
      .run(word_count_spec(in_unbudgeted, BackendKind::kFork));

  if (!saved.empty()) {
    setenv("PAIRMR_TEST_MEMORY_BUDGET", saved.c_str(), 1);
  }

  // The 16-byte budget forces worker-side spills; the spill counters the
  // workers ship back prove the env value reached their TaskEnv.
  EXPECT_GT(with_budget.counter(mr::counter::kSpillRuns), 0u);
  EXPECT_EQ(without_budget.counter(mr::counter::kSpillRuns), 0u);
  // Results are budget-independent as always.
  EXPECT_EQ(budgeted.gather_records("/out"),
            unbudgeted.gather_records("/out"));
}

// --- Pairwise matrix (pipeline-level oracle) ------------------------------

std::vector<std::string> random_payloads(std::uint64_t v,
                                         std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::string> payloads;
  for (std::uint64_t i = 0; i < v; ++i) {
    std::string p;
    const std::uint64_t len = 1 + rng.next_below(32);
    for (std::uint64_t k = 0; k < len; ++k) {
      p.push_back(static_cast<char>('a' + rng.next_below(26)));
    }
    payloads.push_back(std::move(p));
  }
  return payloads;
}

PairwiseJob test_job() {
  PairwiseJob job;
  job.compute = [](const Element& a, const Element& b) {
    const double la = static_cast<double>(a.payload.size());
    const double lb = static_cast<double>(b.payload.size());
    return workloads::encode_result(
        std::abs(la - lb) + 0.001 * static_cast<double>(a.id + b.id));
  };
  return job;
}

// Chaos with worker-process kills on top of the usual task kills, fetch
// drops, and stragglers: the fork backend must SIGKILL+respawn workers
// and regenerate their published partitions without the output, the
// counters, or the meter diverging from the in-process run.
FaultPlan make_chaos_plan(std::uint64_t seed) {
  FaultPlan plan(seed);
  plan.with_task_kill_rate(0.2, 2)
      .with_worker_kill_rate(0.2, 1)
      .with_fetch_drop_rate(0.15)
      .with_straggler_rate(0.15)
      .kill_task(TaskKind::kMap, 0)
      .kill_worker(TaskKind::kReduce, 0)
      .drop_fetch(/*reduce_task=*/0, /*map_task=*/0)
      .mark_straggler(TaskKind::kMap, 1);
  return plan;
}

Observation execute_pairwise(BackendKind backend,
                             const std::string& scheme_label,
                             const std::vector<std::string>& payloads,
                             const MemoryBudget& budget,
                             const FaultPlan* plan,
                             mr::ShufflePlane plane = mr::ShufflePlane::kAuto) {
  Cluster cluster({.num_nodes = 4, .worker_threads = 2});
  Tracer tracer;
  cluster.set_tracer(&tracer);
  const auto inputs = write_dataset(cluster, "/data", payloads);
  const std::uint64_t v = payloads.size();

  std::unique_ptr<DistributionScheme> scheme;
  if (scheme_label == "block") {
    scheme = std::make_unique<BlockScheme>(v, 4);
  } else if (scheme_label == "design") {
    scheme = std::make_unique<DesignScheme>(v);
  } else if (scheme_label == "quorum") {
    scheme = std::make_unique<QuorumScheme>(v);
  } else {
    scheme = std::make_unique<BroadcastScheme>(v, 5);
  }

  RunSpec spec;
  spec.input_paths = inputs;
  spec.job = test_job();
  spec.scheme = borrow_scheme(*scheme);
  spec.options.fault_plan = plan;
  spec.options.memory_budget = budget;
  spec.options.backend = backend;
  spec.options.shuffle_plane = plane;

  const RunReport report = PairwiseRunner(cluster).run(spec);

  Observation ob;
  for (const auto& path : cluster.dfs().list(report.output_dir)) {
    ob.files[path] = cluster.dfs().open(path)->records;
  }
  // Fold every job's counters (jobs run in a fixed order, so the fold is
  // itself deterministic).
  for (const auto& result : report.compute_jobs) {
    for (const auto& [name, value] : result.counters) {
      ob.counters[name] += value;
    }
  }
  for (const auto& result : report.merge_jobs) {
    for (const auto& [name, value] : result.counters) {
      ob.counters[name] += value;
    }
  }
  ob.remote_bytes = cluster.network().remote_bytes();
  ob.local_bytes = cluster.network().local_bytes();
  ob.remote_transfers = cluster.network().remote_transfers();
  for (mr::NodeId n = 0; n < cluster.num_nodes(); ++n) {
    ob.sent_by.push_back(cluster.network().sent_by(n));
    ob.received_at.push_back(cluster.network().received_at(n));
  }
  ob.trace_signature = tracer.structure_signature();
  return ob;
}

struct Case {
  std::string scheme;
  bool chaos;
  std::uint64_t budget_bytes;  // 0 = in-memory
};

std::string case_name(const Case& c) {
  return c.scheme + (c.chaos ? "_chaos" : "_faultfree") + "_b" +
         std::to_string(c.budget_bytes);
}

class BackendEquivalenceMatrix : public ::testing::TestWithParam<Case> {};

TEST_P(BackendEquivalenceMatrix, PipelineMatchesAcrossBackends) {
  PAIRMR_SKIP_WITHOUT_FORK_SUPPORT();
  const Case& c = GetParam();
  const std::uint64_t seed = 9100 + c.budget_bytes;
  const auto payloads = random_payloads(18 + seed % 7, seed);
  const FaultPlan plan = make_chaos_plan(seed);
  const FaultPlan* fp = c.chaos ? &plan : nullptr;
  const MemoryBudget budget =
      c.budget_bytes == 0
          ? MemoryBudget{}
          : MemoryBudget{.bytes = c.budget_bytes, .merge_fan_in = 2};

  const Observation in_process =
      execute_pairwise(BackendKind::kInProcess, c.scheme, payloads, budget,
                       fp);
  const Observation fork =
      execute_pairwise(BackendKind::kFork, c.scheme, payloads, budget, fp);
  expect_equal(in_process, fork, case_name(c));
}

INSTANTIATE_TEST_SUITE_P(
    SchemesTimesFaultsTimesBudgets, BackendEquivalenceMatrix,
    ::testing::Values(Case{"broadcast", false, 0},
                      Case{"block", false, 0},
                      Case{"design", false, 0},
                      Case{"quorum", false, 0},
                      Case{"broadcast", true, 0},
                      Case{"block", true, 0},
                      Case{"design", true, 0},
                      Case{"quorum", true, 0},
                      Case{"block", false, 256},
                      Case{"block", true, 256},
                      Case{"design", true, 1024},
                      Case{"quorum", true, 1024}),
    [](const auto& info) { return case_name(info.param); });

// Cross-plane oracle over the same matrix, both runs on the fork
// backend: swapping the shuffle transport (per-worker sockets vs memfd
// arenas passed by fd and mmap'd) must leave every external observable
// byte-identical — files, counters, meter totals, trace structure. The
// shm run additionally proves it actually used the arenas: its
// shuffle.shm.bytes covers the entire remote shuffle volume, and the
// socket run never grows the counter.
class ShufflePlaneEquivalenceMatrix : public ::testing::TestWithParam<Case> {
};

TEST_P(ShufflePlaneEquivalenceMatrix, PipelineMatchesAcrossShufflePlanes) {
  PAIRMR_SKIP_WITHOUT_FORK_SUPPORT();
  const Case& c = GetParam();
  const std::uint64_t seed = 9100 + c.budget_bytes;
  const auto payloads = random_payloads(18 + seed % 7, seed);
  const FaultPlan plan = make_chaos_plan(seed);
  const FaultPlan* fp = c.chaos ? &plan : nullptr;
  const MemoryBudget budget =
      c.budget_bytes == 0
          ? MemoryBudget{}
          : MemoryBudget{.bytes = c.budget_bytes, .merge_fan_in = 2};

  const Observation socket =
      execute_pairwise(BackendKind::kFork, c.scheme, payloads, budget, fp,
                       mr::ShufflePlane::kSocket);
  const Observation shm =
      execute_pairwise(BackendKind::kFork, c.scheme, payloads, budget, fp,
                       mr::ShufflePlane::kShm);
  expect_equal(socket, shm, case_name(c));

  EXPECT_EQ(socket.counters.count(mr::counter::kShuffleShmBytes), 0u)
      << "socket plane served bytes out of an arena";
  const auto it = shm.counters.find(mr::counter::kShuffleShmBytes);
  ASSERT_NE(it, shm.counters.end())
      << "shm plane fell back to sockets for every partition";
  EXPECT_EQ(it->second, shm.counters.at(mr::counter::kShuffleBytesRemote));
}

INSTANTIATE_TEST_SUITE_P(
    SchemesTimesFaultsTimesBudgets, ShufflePlaneEquivalenceMatrix,
    ::testing::Values(Case{"broadcast", false, 0},
                      Case{"block", false, 0},
                      Case{"design", false, 0},
                      Case{"quorum", false, 0},
                      Case{"broadcast", true, 0},
                      Case{"block", true, 0},
                      Case{"design", true, 0},
                      Case{"quorum", true, 0},
                      Case{"block", false, 256},
                      Case{"block", true, 256},
                      Case{"design", true, 1024},
                      Case{"quorum", true, 1024}),
    [](const auto& info) { return case_name(info.param); });

}  // namespace
}  // namespace pairmr
