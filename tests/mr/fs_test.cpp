#include "mr/fs.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace pairmr::mr {
namespace {

std::vector<Record> two_records() {
  return {Record{"k1", "v1"}, Record{"k2", "value-two"}};
}

TEST(SimDfsTest, WriteOpenRoundTrip) {
  SimDfs dfs(2);
  dfs.write_file("/data/a", 0, two_records());
  const auto file = dfs.open("/data/a");
  EXPECT_EQ(file->home, 0u);
  ASSERT_EQ(file->records.size(), 2u);
  EXPECT_EQ(file->records[1].value, "value-two");
  EXPECT_EQ(file->bytes, 4u + 11u);  // k1v1 + k2value-two
}

TEST(SimDfsTest, WriteOnceSemantics) {
  SimDfs dfs(1);
  dfs.write_file("/x", 0, {});
  EXPECT_THROW(dfs.write_file("/x", 0, {}), PreconditionError);
}

TEST(SimDfsTest, OpenMissingThrows) {
  SimDfs dfs(1);
  EXPECT_THROW(dfs.open("/nope"), PreconditionError);
  EXPECT_FALSE(dfs.exists("/nope"));
}

TEST(SimDfsTest, HomeNodeValidated) {
  SimDfs dfs(2);
  EXPECT_THROW(dfs.write_file("/y", 7, {}), PreconditionError);
}

TEST(SimDfsTest, ListIsSortedAndPrefixScoped) {
  SimDfs dfs(1);
  dfs.write_file("/out/part-r-00002", 0, {});
  dfs.write_file("/out/part-r-00000", 0, {});
  dfs.write_file("/out/part-r-00001", 0, {});
  dfs.write_file("/other/file", 0, {});
  const auto paths = dfs.list("/out/");
  ASSERT_EQ(paths.size(), 3u);
  EXPECT_EQ(paths[0], "/out/part-r-00000");
  EXPECT_EQ(paths[2], "/out/part-r-00002");
}

TEST(SimDfsTest, RemoveAndRemovePrefix) {
  SimDfs dfs(1);
  dfs.write_file("/a/1", 0, {});
  dfs.write_file("/a/2", 0, {});
  dfs.write_file("/b/1", 0, {});
  EXPECT_TRUE(dfs.remove("/a/1"));
  EXPECT_FALSE(dfs.remove("/a/1"));
  EXPECT_EQ(dfs.remove_prefix("/a"), 1u);
  EXPECT_TRUE(dfs.exists("/b/1"));
}

TEST(SimDfsTest, BytesPerNodeAccounting) {
  SimDfs dfs(2);
  dfs.write_file("/n0", 0, {Record{"aa", "bb"}});   // 4 bytes
  dfs.write_file("/n1", 1, {Record{"cccc", "dd"}}); // 6 bytes
  EXPECT_EQ(dfs.bytes_on_node(0), 4u);
  EXPECT_EQ(dfs.bytes_on_node(1), 6u);
  EXPECT_EQ(dfs.total_bytes(), 10u);
}

TEST(SimDfsTest, OpenedFileSurvivesRemoval) {
  // Readers hold a shared_ptr; removing the path must not invalidate it.
  SimDfs dfs(1);
  dfs.write_file("/f", 0, two_records());
  const auto file = dfs.open("/f");
  dfs.remove("/f");
  EXPECT_EQ(file->records.size(), 2u);
}

}  // namespace
}  // namespace pairmr::mr
