// Fork-backend fault tolerance: a worker process SIGKILLed mid-task is
// respawned, its published map outputs are regenerated, and the job
// finishes byte-identical to an untouched run — with the retry and the
// wasted shuffle traffic accounted in tasks.retried / recovery.bytes
// exactly as the in-process backend accounts them. And no matter how
// many workers were forked, killed, and respawned, none may outlive the
// job as a zombie: the forker reaps every worker and the coordinator
// reaps the forker.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "../support/backend_matrix.hpp"
#include "mr/backend/fork.hpp"
#include "mr/cluster.hpp"
#include "mr/context.hpp"
#include "mr/engine.hpp"
#include "mr/fault.hpp"

namespace pairmr::mr {
namespace {

class TokenizeMapper final : public Mapper {
 public:
  void map(const Bytes& /*key*/, const Bytes& value,
           MapContext& ctx) override {
    std::istringstream is(value);
    std::string word;
    while (is >> word) ctx.emit(word, "1");
  }
};

class SumReducer final : public Reducer {
 public:
  void reduce(const Bytes& key, const std::vector<Bytes>& values,
              ReduceContext& ctx) override {
    std::uint64_t total = 0;
    for (const auto& v : values) total += std::stoull(v);
    ctx.emit(key, std::to_string(total));
  }
};

std::vector<std::string> write_corpus(Cluster& cluster) {
  cluster.dfs().write_file("/in/a", 0,
                           {Record{"0", "the quick brown fox"},
                            Record{"1", "jumps over the lazy dog"}});
  cluster.dfs().write_file("/in/b", 1,
                           {Record{"0", "the dog barks"},
                            Record{"1", "quick quick slow"}});
  return {"/in/a", "/in/b"};
}

JobSpec word_count_spec(const std::vector<std::string>& inputs,
                        BackendKind backend, const FaultPlan* plan) {
  JobSpec spec;
  spec.name = "wordcount";
  spec.input_paths = inputs;
  spec.output_dir = "/out";
  spec.mapper_factory = [] { return std::make_unique<TokenizeMapper>(); };
  spec.reducer_factory = [] { return std::make_unique<SumReducer>(); };
  spec.backend = backend;
  spec.fault_plan = plan;
  spec.max_task_attempts = 3;
  return spec;
}

// True when this process has no child processes at all — reaped or
// otherwise. A leaked fork-backend worker or forker would show up here
// as a waitable (or zombie) child.
bool no_children_remain() {
  const pid_t r = waitpid(-1, nullptr, WNOHANG);
  return r == -1 && errno == ECHILD;
}

TEST(BackendFault, WorkerKillRecoversByteIdenticalWithAccounting) {
  PAIRMR_SKIP_WITHOUT_FORK_SUPPORT();

  // Reference: clean in-process run.
  Cluster clean({.num_nodes = 3, .worker_threads = 2});
  const auto in_clean = write_corpus(clean);
  Engine(clean).run(
      word_count_spec(in_clean, BackendKind::kInProcess, nullptr));

  // Fork run where the workers hosting map task 0 and reduce task 0 are
  // SIGKILLed mid-task (first attempt each).
  FaultPlan plan(4242);
  plan.kill_worker(TaskKind::kMap, 0).kill_worker(TaskKind::kReduce, 0);
  Cluster faulted({.num_nodes = 3, .worker_threads = 2});
  const auto in_faulted = write_corpus(faulted);
  const JobResult result = Engine(faulted).run(
      word_count_spec(in_faulted, BackendKind::kFork, &plan));

  EXPECT_EQ(clean.gather_records("/out"), faulted.gather_records("/out"));
  // One map and one reduce attempt lost their worker.
  EXPECT_EQ(result.counter(counter::kTasksRetried), 2u);
  // The killed reduce attempt's shuffle was for nothing; its fetched
  // bytes are charged as recovery traffic.
  EXPECT_GT(result.counter(counter::kRecoveryBytes), 0u);
  EXPECT_TRUE(no_children_remain());
}

TEST(BackendFault, ForkAndInProcessAgreeUnderWorkerKills) {
  PAIRMR_SKIP_WITHOUT_FORK_SUPPORT();

  std::vector<std::map<std::string, std::uint64_t>> counter_runs;
  std::vector<std::vector<Record>> output_runs;
  for (const BackendKind kind : testing::kBackendMatrix) {
    FaultPlan plan(1337);
    plan.with_worker_kill_rate(0.5, 1)
        .kill_worker(TaskKind::kMap, 0)
        .kill_worker(TaskKind::kReduce, 0);
    Cluster cluster({.num_nodes = 3, .worker_threads = 2});
    const auto inputs = write_corpus(cluster);
    const JobResult result =
        Engine(cluster).run(word_count_spec(inputs, kind, &plan));
    counter_runs.push_back(result.counters);
    output_runs.push_back(cluster.gather_records("/out"));
  }
  EXPECT_EQ(output_runs[0], output_runs[1]);
  // shuffle.shm.bytes is transport provenance (which plane served the
  // remote shuffle), not job semantics: only the fork run can have it
  // when the shm plane is selected, so it is excluded from the oracle.
  for (auto& counters : counter_runs) {
    counters.erase(counter::kShuffleShmBytes);
  }
  EXPECT_EQ(counter_runs[0], counter_runs[1]);
}

// A worker SIGKILLed after publishing its map output on the shm plane:
// the coordinator still holds the dead process's arena fds (memfds
// outlive their creator), the respawned worker regenerates the output
// and re-publishes, and settling swaps the stale arena for the fresh one
// with the old fd closed. By end_job every arena fd is swept — nothing
// leaks across jobs on a persistent pool — and the pool itself survives
// the kill to serve a second job with warm (reused) workers.
TEST(BackendFault, ShmArenaSweptAfterMidPublishWorkerKill) {
  PAIRMR_SKIP_WITHOUT_FORK_SUPPORT();

  Cluster clean({.num_nodes = 3, .worker_threads = 2});
  const auto in_clean = write_corpus(clean);
  Engine(clean).run(
      word_count_spec(in_clean, BackendKind::kInProcess, nullptr));

  FaultPlan plan(4242);
  plan.kill_worker(TaskKind::kMap, 0).kill_worker(TaskKind::kReduce, 0);
  Cluster faulted({.num_nodes = 3, .worker_threads = 2});
  const auto in_faulted = write_corpus(faulted);
  {
    // Both specs exist before the pool forks, so the pool's
    // copy-on-write image carries them (the contract BackendSession
    // automates; exercised raw here to reach the arena accessor).
    auto first = word_count_spec(in_faulted, BackendKind::kFork, &plan);
    first.shuffle_plane = ShufflePlane::kShm;
    auto second = word_count_spec(in_faulted, BackendKind::kFork, nullptr);
    second.output_dir = "/out2";
    second.shuffle_plane = ShufflePlane::kShm;
    backend::ForkBackend pool(faulted, /*persistent=*/true);

    const JobResult result = Engine(faulted).run(first, pool);
    EXPECT_EQ(clean.gather_records("/out"), faulted.gather_records("/out"));
    EXPECT_EQ(result.counter(counter::kTasksRetried), 2u);
    EXPECT_GT(result.counter(counter::kShuffleShmBytes), 0u)
        << "shm plane fell back to sockets";
    EXPECT_EQ(pool.open_arena_count(), 0u)
        << "arena fds leaked past end_job";
    const std::uint64_t forked_after_first = pool.workers_forked();

    const JobResult rerun = Engine(faulted).run(second, pool);
    EXPECT_EQ(clean.gather_records("/out"),
              faulted.gather_records("/out2"));
    EXPECT_GT(rerun.counter(counter::kShuffleShmBytes), 0u);
    EXPECT_EQ(pool.open_arena_count(), 0u);
    // The second job re-armed the surviving pool instead of forking.
    EXPECT_EQ(pool.workers_forked(), forked_after_first);
    EXPECT_GT(pool.workers_reused(), 0u);
  }
  EXPECT_TRUE(no_children_remain());
}

// Attempt tags ("m<task>-a<attempt>") key both staged executions and DFS
// spill scratch. A worker kill plus a tight budget makes the retried
// attempt spill again from a fresh worker process — on the write-once
// SimDfs, any tag reuse across attempts or PIDs would collide and throw.
TEST(BackendFault, RetriedSpillingAttemptsNeverCollideOnScratchPaths) {
  PAIRMR_SKIP_WITHOUT_FORK_SUPPORT();

  Cluster clean({.num_nodes = 3, .worker_threads = 2});
  const auto in_clean = write_corpus(clean);
  Engine(clean).run(
      word_count_spec(in_clean, BackendKind::kInProcess, nullptr));

  FaultPlan plan(99);
  plan.kill_worker(TaskKind::kMap, 0)
      .kill_task(TaskKind::kMap, 1)
      .kill_worker(TaskKind::kReduce, 0);
  Cluster faulted({.num_nodes = 3, .worker_threads = 2});
  const auto in_faulted = write_corpus(faulted);
  auto spec = word_count_spec(in_faulted, BackendKind::kFork, &plan);
  spec.memory_budget = MemoryBudget{.bytes = 16, .merge_fan_in = 2};
  const JobResult result = Engine(faulted).run(spec);

  EXPECT_GT(result.counter(counter::kSpillRuns), 0u);
  EXPECT_EQ(clean.gather_records("/out"), faulted.gather_records("/out"));
  EXPECT_TRUE(no_children_remain());
}

TEST(BackendFault, RepeatedForkJobsLeaveNoZombies) {
  PAIRMR_SKIP_WITHOUT_FORK_SUPPORT();

  for (int round = 0; round < 3; ++round) {
    FaultPlan plan(7 + static_cast<std::uint64_t>(round));
    plan.kill_worker(TaskKind::kMap, 0);
    Cluster cluster({.num_nodes = 2, .worker_threads = 2});
    const auto inputs = write_corpus(cluster);
    Engine(cluster).run(
        word_count_spec(inputs, BackendKind::kFork, &plan));
    // Workers (including the killed-and-respawned one) and the forker
    // must all be reaped by the time run() returns.
    EXPECT_TRUE(no_children_remain()) << "round " << round;
  }
}

}  // namespace
}  // namespace pairmr::mr
