#include "mr/counters.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace pairmr::mr {
namespace {

TEST(CountersTest, AddAccumulates) {
  Counters c;
  EXPECT_EQ(c.get("x"), 0u);
  c.add("x", 3);
  c.add("x", 4);
  EXPECT_EQ(c.get("x"), 7u);
}

TEST(CountersTest, NoteMaxKeepsMaximum) {
  Counters c;
  c.note_max("peak", 5);
  c.note_max("peak", 3);
  c.note_max("peak", 9);
  EXPECT_EQ(c.get("peak"), 9u);
}

TEST(CountersTest, SnapshotContainsAll) {
  Counters c;
  c.add("a", 1);
  c.add("b", 2);
  const auto snap = c.snapshot();
  EXPECT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap.at("a"), 1u);
  EXPECT_EQ(snap.at("b"), 2u);
}

TEST(CountersTest, MergeSumsRegularAndMaxesPeaks) {
  Counters a, b;
  a.add("records", 10);
  a.note_max("reduce.max.group.records", 7);
  b.add("records", 5);
  b.note_max("reduce.max.group.records", 3);
  a.merge(b);
  EXPECT_EQ(a.get("records"), 15u);
  EXPECT_EQ(a.get("reduce.max.group.records"), 7u);

  Counters c;
  c.note_max("reduce.max.group.records", 99);
  a.merge(c);
  EXPECT_EQ(a.get("reduce.max.group.records"), 99u);
}

TEST(CountersTest, ConcurrentAddsAreLossless) {
  Counters c;
  constexpr int kThreads = 4;
  constexpr int kAddsPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kAddsPerThread; ++i) c.add("n", 1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.get("n"), static_cast<std::uint64_t>(kThreads) * kAddsPerThread);
}

}  // namespace
}  // namespace pairmr::mr
