#include "mr/cluster.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/check.hpp"

namespace pairmr::mr {
namespace {

TEST(ClusterTest, ScatterSpreadsFilesAcrossNodes) {
  Cluster cluster({.num_nodes = 3, .worker_threads = 1});
  std::vector<Record> records;
  for (int i = 0; i < 10; ++i) {
    records.push_back(Record{std::to_string(i), "payload"});
  }
  const auto paths = cluster.scatter_records("/data", std::move(records));
  ASSERT_EQ(paths.size(), 3u);
  std::set<NodeId> homes;
  for (const auto& p : paths) homes.insert(cluster.dfs().open(p)->home);
  EXPECT_EQ(homes.size(), 3u);
}

TEST(ClusterTest, ScatterGatherPreservesRecords) {
  Cluster cluster({.num_nodes = 4, .worker_threads = 1});
  std::vector<Record> records;
  for (int i = 0; i < 25; ++i) {
    records.push_back(Record{std::to_string(i), "v" + std::to_string(i)});
  }
  const auto original = records;
  cluster.scatter_records("/data", std::move(records));
  auto gathered = cluster.gather_records("/data");
  ASSERT_EQ(gathered.size(), original.size());
  std::set<std::string> keys;
  for (const auto& r : gathered) keys.insert(r.key);
  EXPECT_EQ(keys.size(), 25u);  // nothing lost, nothing duplicated
}

TEST(ClusterTest, MultipleFilesPerNode) {
  Cluster cluster({.num_nodes = 2, .worker_threads = 1});
  std::vector<Record> records(20, Record{"k", "v"});
  const auto paths =
      cluster.scatter_records("/data", std::move(records), /*files=*/3);
  EXPECT_EQ(paths.size(), 6u);
}

TEST(ClusterTest, RoundRobinBalancesRecordCounts) {
  Cluster cluster({.num_nodes = 4, .worker_threads = 1});
  std::vector<Record> records(18, Record{"k", "v"});
  const auto paths = cluster.scatter_records("/data", std::move(records));
  std::vector<std::size_t> sizes;
  for (const auto& p : paths) {
    sizes.push_back(cluster.dfs().open(p)->records.size());
  }
  // 18 over 4 files: two files of 5 and two of 4.
  for (const auto s : sizes) {
    EXPECT_GE(s, 4u);
    EXPECT_LE(s, 5u);
  }
}

TEST(ClusterTest, InvalidConfigThrows) {
  EXPECT_THROW(Cluster({.num_nodes = 0}), PreconditionError);
}

}  // namespace
}  // namespace pairmr::mr
