// Wire-protocol robustness (mr/backend/protocol.hpp): valid frames
// round-trip exactly; garbled input — bad magic, unknown type,
// implausible length, mid-frame truncation — is rejected with an
// actionable ProtocolError naming the peer; a silent peer trips the
// receive timeout instead of hanging; the shm plane's SCM_RIGHTS fd
// passing round-trips working descriptors and rejects count mismatches
// and kernel-truncated ancillary data; a stale kBeginJob surfaces
// coordinator-side as a typed ProtocolError; and the field codecs
// reconstruct records, counters (including max-semantics counters), and
// spans exactly. All over socketpairs — no processes are forked here.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "common/check.hpp"
#include "common/serde.hpp"
#include "mr/backend/protocol.hpp"
#include "mr/counters.hpp"
#include "mr/trace.hpp"
#include "mr/types.hpp"

namespace pairmr::mr::backend {
namespace {

// A connected pair of stream sockets standing in for the control (or
// shuffle) connection.
struct SocketPair {
  int a = -1;
  int b = -1;
  SocketPair() {
    int fds[2];
    EXPECT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    a = fds[0];
    b = fds[1];
  }
  ~SocketPair() {
    if (a >= 0) close(a);
    if (b >= 0) close(b);
  }
  void close_a() {
    close(a);
    a = -1;
  }
};

std::string raw_header(std::uint32_t magic, std::uint32_t type,
                       std::uint64_t length) {
  BufWriter w;
  w.put_u32(magic);
  w.put_u32(type);
  w.put_u64(length);
  return std::move(w).str();
}

void send_raw(int fd, const std::string& bytes) {
  ASSERT_EQ(send(fd, bytes.data(), bytes.size(), 0),
            static_cast<ssize_t>(bytes.size()));
}

// EXPECT_THROW plus a check that the message contains `needle` — the
// "actionable" half of the contract.
template <typename Fn>
void expect_protocol_error(Fn&& fn, const std::string& needle) {
  try {
    fn();
    FAIL() << "expected ProtocolError containing \"" << needle << "\"";
  } catch (const ProtocolError& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "actual message: " << e.what();
  }
}

TEST(BackendProtocol, FramesRoundTrip) {
  SocketPair pair;
  const std::string payload("arbitrary \0 bytes survive", 25);
  send_frame(pair.a, FrameType::kMapTask, payload);
  std::string got;
  EXPECT_EQ(recv_frame(pair.b, got, "worker 0"), FrameType::kMapTask);
  EXPECT_EQ(got, payload);

  send_frame(pair.b, FrameType::kOk, "");
  EXPECT_EQ(recv_frame(pair.a, got, "coordinator"), FrameType::kOk);
  EXPECT_TRUE(got.empty());
}

TEST(BackendProtocol, BadMagicIsRejectedWithActionableError) {
  SocketPair pair;
  send_raw(pair.a, raw_header(0xdeadbeef,
                              static_cast<std::uint32_t>(FrameType::kOk), 0));
  std::string got;
  expect_protocol_error([&] { recv_frame(pair.b, got, "worker 3"); },
                        "bad magic");

  SocketPair named;
  send_raw(named.a, raw_header(0xdeadbeef,
                               static_cast<std::uint32_t>(FrameType::kOk), 0));
  expect_protocol_error([&] { recv_frame(named.b, got, "worker 3"); },
                        "worker 3");  // the error names the peer
}

TEST(BackendProtocol, UnknownFrameTypeIsRejected) {
  SocketPair pair;
  send_raw(pair.a, raw_header(kFrameMagic, 999, 0));
  std::string got;
  expect_protocol_error([&] { recv_frame(pair.b, got, "worker 1"); },
                        "unknown frame type 999");
}

TEST(BackendProtocol, ImplausiblePayloadLengthIsRejected) {
  SocketPair pair;
  send_raw(pair.a,
           raw_header(kFrameMagic,
                      static_cast<std::uint32_t>(FrameType::kMapDone),
                      kMaxFrameBytes + 1));
  std::string got;
  expect_protocol_error([&] { recv_frame(pair.b, got, "worker 2"); },
                        "implausible payload length");
}

TEST(BackendProtocol, TruncatedFrameIsRejectedNotHung) {
  SocketPair pair;
  // Announce an 8-byte payload, deliver 3 bytes, then close.
  send_raw(pair.a, raw_header(kFrameMagic,
                              static_cast<std::uint32_t>(FrameType::kHello),
                              8) +
                       "abc");
  pair.close_a();
  std::string got;
  expect_protocol_error([&] { recv_frame(pair.b, got, "worker 0"); },
                        "truncated frame");
  expect_protocol_error(
      [&] {
        SocketPair fresh;
        send_raw(fresh.a,
                 raw_header(kFrameMagic,
                            static_cast<std::uint32_t>(FrameType::kHello), 8) +
                     "abc");
        fresh.close_a();
        std::string p;
        recv_frame(fresh.b, p, "worker 0");
      },
      "3 of 8 expected bytes");
}

TEST(BackendProtocol, CleanEofBeforeAnyFrameIsPeerClosed) {
  SocketPair pair;
  pair.close_a();
  std::string got;
  EXPECT_THROW(recv_frame(pair.b, got, "worker 5"), PeerClosedError);
}

TEST(BackendProtocol, SilentPeerTimesOutInsteadOfHanging) {
  SocketPair pair;
  set_recv_timeout(pair.b, 1);
  const auto start = std::chrono::steady_clock::now();
  std::string got;
  expect_protocol_error([&] { recv_frame(pair.b, got, "worker 4"); },
                        "timed out waiting for a frame");
  const auto elapsed = std::chrono::steady_clock::now() - start;
  // Fired around the 1 s timeout — not instantly, and far from forever.
  EXPECT_GE(elapsed, std::chrono::milliseconds(500));
  EXPECT_LT(elapsed, std::chrono::seconds(30));
}

// A descriptor passed over SCM_RIGHTS arrives as a *working* fd (the
// kernel dup()s it into the receiver): bytes written through the passed
// copy come out of the original pipe. And a frame whose payload declares
// more fds than the ancillary data delivered — a worker lying about (or
// losing) its arena fd — is rejected with an actionable ProtocolError
// that names the frame and the peer, with the delivered fds closed so a
// garbled publish can never leak kernel-owned descriptors.
TEST(BackendProtocol, FdPassingRoundTripsAndCountMismatchClosesFds) {
  SocketPair pair;
  int pipe_fds[2];
  ASSERT_EQ(pipe(pipe_fds), 0);

  send_frame_with_fds(pair.a, FrameType::kPublishDoneShm, "arena-meta",
                      {pipe_fds[1]});
  std::string payload;
  std::vector<int> fds;
  EXPECT_EQ(recv_frame_with_fds(pair.b, payload, fds, "worker 1"),
            FrameType::kPublishDoneShm);
  EXPECT_EQ(payload, "arena-meta");
  ASSERT_EQ(fds.size(), 1u);
  ASSERT_NE(fds[0], pipe_fds[1]);  // a dup, not the sender's fd number
  require_fd_count(fds, 1, "kPublishDoneShm", "worker 1");  // count matches

  // The passed copy reaches the same pipe as the original.
  ASSERT_EQ(write(fds[0], "ping", 4), 4);
  char buf[4];
  ASSERT_EQ(read(pipe_fds[0], buf, 4), 4);
  EXPECT_EQ(std::string(buf, 4), "ping");
  close_fds(fds);

  // Same frame, but the payload claims two fds arrived.
  send_frame_with_fds(pair.a, FrameType::kPublishDoneShm, "arena-meta",
                      {pipe_fds[1]});
  ASSERT_EQ(recv_frame_with_fds(pair.b, payload, fds, "worker 1"),
            FrameType::kPublishDoneShm);
  ASSERT_EQ(fds.size(), 1u);
  const int delivered = fds[0];
  expect_protocol_error(
      [&] { require_fd_count(fds, 2, "kPublishDoneShm", "worker 1"); },
      "fd count mismatch on kPublishDoneShm from worker 1");
  EXPECT_TRUE(fds.empty());  // closed and cleared, not left dangling
  EXPECT_EQ(fcntl(delivered, F_GETFD), -1);
  EXPECT_EQ(errno, EBADF);

  close(pipe_fds[0]);
  close(pipe_fds[1]);
}

// More fds in flight than the receiver's cmsg buffer holds: the kernel
// sets MSG_CTRUNC and silently drops the overflow — kernel-owned fds
// with no userspace name. The receiver must treat the stream as garbled
// (ProtocolError naming the peer) and close what did arrive.
TEST(BackendProtocol, TruncatedScmRightsAncillaryDataIsRejected) {
  SocketPair pair;
  std::vector<int> sent;
  for (int i = 0; i < 4; ++i) {
    const int fd = open("/dev/null", O_RDONLY);
    ASSERT_GE(fd, 0);
    sent.push_back(fd);
  }
  send_frame_with_fds(pair.a, FrameType::kPublishDoneShm, "arena-meta", sent);

  std::string payload;
  std::vector<int> fds;
  expect_protocol_error(
      [&] {
        recv_frame_with_fds(pair.b, payload, fds, "worker 2", /*max_fds=*/2);
      },
      "truncated SCM_RIGHTS ancillary data from worker 2");
  EXPECT_TRUE(fds.empty());  // the fds that did fit were closed, not leaked
  close_fds(sent);
}

// The worker half of the persistent-pool handshake: a kBeginJob landing
// on a worker that already has a job in progress (the coordinator
// skipped kEndJob) is answered with kErr carrying ErrKind::kProtocol.
// This test speaks both ends of that exchange through the production
// codec — make_err_payload is exactly what the worker's dispatch loop
// ships, rethrow_shipped_error is exactly what the coordinator's
// roundtrip applies to a kErr response — and checks the coordinator ends
// up holding a typed ProtocolError that names the worker and the cause.
TEST(BackendProtocol, StaleBeginJobShipsAsTypedProtocolError) {
  SocketPair pair;
  send_frame(pair.a, FrameType::kErr,
             make_err_payload(
                 ErrKind::kProtocol,
                 "stale kBeginJob: worker 2 already has a job in progress "
                 "(the coordinator skipped kEndJob)"));
  std::string payload;
  ASSERT_EQ(recv_frame(pair.b, payload, "worker 2"), FrameType::kErr);
  expect_protocol_error([&] { rethrow_shipped_error(payload, "worker 2"); },
                        "stale kBeginJob");
  expect_protocol_error([&] { rethrow_shipped_error(payload, "worker 2"); },
                        "[worker 2]");  // the rethrow names the peer

  // The other kinds map back to the exception types the worker threw —
  // a stale frame must never be downgraded to a generic runtime_error.
  EXPECT_THROW(
      rethrow_shipped_error(make_err_payload(ErrKind::kPrecondition, "x"),
                            "worker 0"),
      PreconditionError);
  EXPECT_THROW(rethrow_shipped_error(
                   make_err_payload(ErrKind::kInternal, "x"), "worker 0"),
               InternalError);
  EXPECT_THROW(rethrow_shipped_error(
                   make_err_payload(ErrKind::kRuntime, "x"), "worker 0"),
               std::runtime_error);
}

TEST(BackendProtocol, RecordCodecRoundTrips) {
  const std::vector<Record> records = {
      {"", ""}, {"key", "value"}, {std::string(3, '\0'), "binary\x01\x02"}};
  BufWriter w;
  put_records(w, records);
  const std::string bytes = std::move(w).str();
  BufReader r(bytes);
  EXPECT_EQ(get_records(r), records);
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(BackendProtocol, CounterCodecPreservesMaxSemantics) {
  Counters counters;
  counters.add("map.input.records", 17);
  counters.add("shuffle.bytes.remote", 4096);
  counters.note_max("reduce.max.group.records", 99);
  BufWriter w;
  put_counters(w, counters);
  const std::string bytes = std::move(w).str();

  BufReader r(bytes);
  Counters out;
  get_counters(r, out);
  EXPECT_EQ(out.snapshot(), counters.snapshot());
  EXPECT_EQ(r.remaining(), 0u);

  // A second max observation merges by max, not by sum — the decoded bag
  // must behave like the original, not just snapshot like it.
  out.note_max("reduce.max.group.records", 50);
  EXPECT_EQ(out.get("reduce.max.group.records"), 99u);
}

// The span codec ships exactly the execution-local fields; job identity
// (job name, task kind/index, attempt) is inherited from the parent span
// at Tracer::import_span time, so it is deliberately not on the wire.
TEST(BackendProtocol, SpanCodecRoundTripsEveryShippedField) {
  Span span;
  span.id = 7;
  span.parent = 3;
  span.kind = SpanKind::kShuffleFetch;
  span.label = "shuffle-fetch 1->2";
  span.node = 2;
  span.peer = 1;
  span.bytes = 1234;
  span.records = 56;
  span.faulted = true;
  span.speculative = true;
  span.note = "dropped-by-fault-plan";
  span.os_pid = 31337;
  span.start_seconds = 1.25;
  span.end_seconds = 2.5;

  BufWriter w;
  put_spans(w, {span});
  const std::string bytes = std::move(w).str();
  BufReader r(bytes);
  const std::vector<Span> out = get_spans(r);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(r.remaining(), 0u);
  const Span& s = out[0];
  EXPECT_EQ(s.id, span.id);
  EXPECT_EQ(s.parent, span.parent);
  EXPECT_EQ(s.kind, span.kind);
  EXPECT_EQ(s.label, span.label);
  EXPECT_EQ(s.node, span.node);
  EXPECT_EQ(s.peer, span.peer);
  EXPECT_EQ(s.bytes, span.bytes);
  EXPECT_EQ(s.records, span.records);
  EXPECT_EQ(s.faulted, span.faulted);
  EXPECT_EQ(s.speculative, span.speculative);
  EXPECT_EQ(s.note, span.note);
  EXPECT_EQ(s.os_pid, span.os_pid);
  EXPECT_EQ(s.start_seconds, span.start_seconds);
  EXPECT_EQ(s.end_seconds, span.end_seconds);
}

}  // namespace
}  // namespace pairmr::mr::backend
