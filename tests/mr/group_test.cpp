// Property test for the shuffle grouping (mr/group.hpp): for arbitrary
// record sets the radix-capable group_by_key must produce exactly the
// groups — same keys, same key order, same within-key value order — as
// the seed stable_sort grouping it replaced.
#include "mr/group.hpp"

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "common/serde.hpp"

namespace pairmr::mr {
namespace {

using Groups = std::vector<std::pair<Bytes, std::vector<Bytes>>>;

Groups collect(void (*group)(std::vector<Record>&, const GroupFn&),
               std::vector<Record> records) {
  Groups out;
  group(records, [&out](const Bytes& key, const std::vector<Bytes>& values) {
    out.emplace_back(key, values);
  });
  return out;
}

void expect_equivalent(const std::vector<Record>& records,
                       const std::string& label) {
  const Groups want = collect(&group_by_key_stable_sort, records);
  const Groups got = collect(&group_by_key, records);
  ASSERT_EQ(got.size(), want.size()) << label;
  for (std::size_t g = 0; g < got.size(); ++g) {
    EXPECT_EQ(got[g].first, want[g].first) << label << " group " << g;
    EXPECT_EQ(got[g].second, want[g].second) << label << " group " << g;
  }
}

// Values are unique per record so within-key order differences show up.
std::vector<Record> with_unique_values(std::vector<Bytes> keys) {
  std::vector<Record> records;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    records.push_back(Record{std::move(keys[i]), "v" + std::to_string(i)});
  }
  return records;
}

TEST(GroupTest, EmptyAndSingleRecord) {
  expect_equivalent({}, "empty");
  expect_equivalent({Record{encode_u64_key(42), "x"}}, "single");
  expect_equivalent({Record{"odd-key", ""}}, "single-non-u64");
}

TEST(GroupTest, DuplicateKeysKeepArrivalOrder) {
  std::vector<Bytes> keys;
  Rng rng(7);
  for (int i = 0; i < 500; ++i) {
    keys.push_back(encode_u64_key(rng.next_below(8)));  // heavy duplication
  }
  expect_equivalent(with_unique_values(std::move(keys)), "duplicates");
}

TEST(GroupTest, RandomU64KeySweep) {
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    Rng rng(seed);
    std::vector<Bytes> keys;
    const std::uint64_t n = 1 + rng.next_below(400);
    for (std::uint64_t i = 0; i < n; ++i) {
      // Mix dense small ids (the pipeline's task/element keys) with full
      // 64-bit values so every radix digit position gets exercised.
      const std::uint64_t k = rng.next_below(3) == 0
                                  ? rng.next_u64()
                                  : rng.next_below(64);
      keys.push_back(encode_u64_key(k));
    }
    expect_equivalent(with_unique_values(std::move(keys)),
                      "seed " + std::to_string(seed));
  }
}

TEST(GroupTest, U64BoundaryKeys) {
  std::vector<Bytes> keys;
  for (const std::uint64_t k :
       {std::uint64_t{0}, std::uint64_t{1}, std::uint64_t{255},
        std::uint64_t{256}, (std::uint64_t{1} << 32) - 1,
        std::uint64_t{1} << 32, ~std::uint64_t{0}, std::uint64_t{0},
        ~std::uint64_t{0}}) {
    keys.push_back(encode_u64_key(k));
  }
  expect_equivalent(with_unique_values(std::move(keys)), "boundaries");
}

TEST(GroupTest, EmptyValuesSurvive) {
  std::vector<Record> records;
  for (int i = 0; i < 20; ++i) {
    records.push_back(Record{encode_u64_key(i % 3), ""});
  }
  expect_equivalent(records, "empty-values");
}

TEST(GroupTest, VariableLengthKeysFallBack) {
  // Non-8-byte keys (including empty) must take the comparison path and
  // still group identically.
  Rng rng(99);
  std::vector<Bytes> keys;
  for (int i = 0; i < 300; ++i) {
    std::string k;
    const std::uint64_t len = rng.next_below(12);  // 0..11 bytes
    for (std::uint64_t j = 0; j < len; ++j) {
      k.push_back(static_cast<char>(rng.next_below(4)));  // tiny alphabet
    }
    keys.push_back(std::move(k));
  }
  expect_equivalent(with_unique_values(std::move(keys)), "variable-length");
}

TEST(GroupTest, MixedWidthKeysFallBack) {
  // One non-u64 key among thousands of u64 keys forces the fallback;
  // grouping must stay equivalent.
  Rng rng(123);
  std::vector<Bytes> keys;
  for (int i = 0; i < 200; ++i) keys.push_back(encode_u64_key(rng.next_below(50)));
  keys.push_back("short");
  for (int i = 0; i < 200; ++i) keys.push_back(encode_u64_key(rng.next_below(50)));
  expect_equivalent(with_unique_values(std::move(keys)), "mixed-width");
}

TEST(GroupTest, GroupsArriveInAscendingByteOrder) {
  Rng rng(5);
  std::vector<Record> records;
  for (int i = 0; i < 256; ++i) {
    records.push_back(Record{encode_u64_key(rng.next_u64()), "v"});
  }
  Bytes prev;
  bool first = true;
  group_by_key(records, [&](const Bytes& key, const std::vector<Bytes>&) {
    if (!first) {
      EXPECT_LT(prev, key);
    }
    prev = key;
    first = false;
  });
}

}  // namespace
}  // namespace pairmr::mr
