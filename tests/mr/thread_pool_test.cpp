#include "mr/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>

namespace pairmr::mr {
namespace {

TEST(ThreadPoolTest, RunsEveryTask) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 100; ++i) {
    tasks.push_back([&count] { count.fetch_add(1); });
  }
  pool.run_all(std::move(tasks));
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, EmptyBatchReturnsImmediately) {
  ThreadPool pool(2);
  pool.run_all({});
}

TEST(ThreadPoolTest, SingleThreadWorks) {
  ThreadPool pool(1);
  std::atomic<int> count{0};
  std::vector<std::function<void()>> tasks(10,
                                           [&count] { count.fetch_add(1); });
  pool.run_all(std::move(tasks));
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPoolTest, ExceptionPropagatesAfterBatchCompletes) {
  ThreadPool pool(2);
  std::atomic<int> completed{0};
  std::vector<std::function<void()>> tasks;
  tasks.push_back([] { throw std::runtime_error("task failed"); });
  for (int i = 0; i < 20; ++i) {
    tasks.push_back([&completed] { completed.fetch_add(1); });
  }
  EXPECT_THROW(pool.run_all(std::move(tasks)), std::runtime_error);
  // No task is abandoned: the batch drains even when one throws.
  EXPECT_EQ(completed.load(), 20);
}

TEST(ThreadPoolTest, PoolReusableAfterError) {
  ThreadPool pool(2);
  std::vector<std::function<void()>> bad;
  bad.push_back([] { throw std::logic_error("boom"); });
  EXPECT_THROW(pool.run_all(std::move(bad)), std::logic_error);

  std::atomic<int> count{0};
  std::vector<std::function<void()>> good(5,
                                          [&count] { count.fetch_add(1); });
  pool.run_all(std::move(good));  // must not rethrow the stale error
  EXPECT_EQ(count.load(), 5);
}

TEST(ThreadPoolTest, ZeroRequestsHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
}

}  // namespace
}  // namespace pairmr::mr
