// Fault injection in the engine: deterministic FaultPlan decisions, task
// kills with retry, node loss with rescheduling, dropped shuffle fetches
// with re-fetch, speculative re-execution of stragglers, and the recovery
// accounting invariant tying the network meter to the job counters.
#include "mr/fault.hpp"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "mr/cluster.hpp"
#include "mr/context.hpp"
#include "mr/engine.hpp"

namespace pairmr::mr {
namespace {

class TokenizeMapper final : public Mapper {
 public:
  void map(const Bytes& /*key*/, const Bytes& value,
           MapContext& ctx) override {
    std::istringstream is(value);
    std::string word;
    while (is >> word) ctx.emit(word, "1");
  }
};

class SumReducer final : public Reducer {
 public:
  void reduce(const Bytes& key, const std::vector<Bytes>& values,
              ReduceContext& ctx) override {
    std::uint64_t total = 0;
    for (const auto& v : values) total += std::stoull(v);
    ctx.emit(key, std::to_string(total));
  }
};

JobSpec word_count_spec(const std::vector<std::string>& inputs,
                        const std::string& output_dir) {
  JobSpec spec;
  spec.name = "wordcount";
  spec.input_paths = inputs;
  spec.output_dir = output_dir;
  spec.mapper_factory = [] { return std::make_unique<TokenizeMapper>(); };
  spec.reducer_factory = [] { return std::make_unique<SumReducer>(); };
  return spec;
}

std::vector<std::string> write_corpus(Cluster& cluster) {
  std::vector<Record> records;
  for (int i = 0; i < 12; ++i) {
    records.push_back(Record{std::to_string(i),
                             "alpha beta gamma delta w" + std::to_string(i)});
  }
  return cluster.scatter_records("/in", std::move(records));
}

// Reference output of a fault-free run on an identically shaped cluster.
std::vector<Record> clean_output(std::uint32_t num_nodes) {
  Cluster cluster({.num_nodes = num_nodes, .worker_threads = 2});
  const auto inputs = write_corpus(cluster);
  Engine(cluster).run(word_count_spec(inputs, "/out"));
  return cluster.gather_records("/out");
}

// Every remote byte on the wire is either the job's logical traffic
// (shuffle + cache broadcast) or accounted recovery overhead.
void expect_recovery_invariant(const Cluster& cluster,
                               const JobResult& result) {
  EXPECT_EQ(cluster.network().remote_bytes(),
            result.counter(counter::kShuffleBytesRemote) +
                result.counter(counter::kCacheBroadcastBytes) +
                result.counter(counter::kRecoveryBytes));
}

// --- FaultPlan decision determinism -------------------------------------

TEST(FaultPlanTest, DecisionsAreDeterministicAcrossInstances) {
  const auto build = [] {
    FaultPlan plan(1234);
    plan.with_task_kill_rate(0.5, 3)
        .with_fetch_drop_rate(0.4)
        .with_straggler_rate(0.3)
        .with_speculative_win_rate(0.6);
    return plan;
  };
  const FaultPlan a = build();
  const FaultPlan b = build();
  for (TaskIndex i = 0; i < 64; ++i) {
    for (std::uint32_t attempt = 0; attempt < 4; ++attempt) {
      EXPECT_EQ(a.kills_task(TaskKind::kMap, i, attempt),
                b.kills_task(TaskKind::kMap, i, attempt));
      EXPECT_EQ(a.kills_task(TaskKind::kReduce, i, attempt),
                b.kills_task(TaskKind::kReduce, i, attempt));
    }
    EXPECT_EQ(a.is_straggler(TaskKind::kMap, i),
              b.is_straggler(TaskKind::kMap, i));
    EXPECT_EQ(a.backup_wins(TaskKind::kReduce, i),
              b.backup_wins(TaskKind::kReduce, i));
    EXPECT_EQ(a.drops_fetch(i % 8, i), b.drops_fetch(i % 8, i));
  }
}

TEST(FaultPlanTest, KillsOccupyLeadingAttemptsOnly) {
  FaultPlan plan(9);
  plan.with_task_kill_rate(1.0, 2);
  for (TaskIndex i = 0; i < 16; ++i) {
    EXPECT_TRUE(plan.kills_task(TaskKind::kMap, i, 0));
    EXPECT_TRUE(plan.kills_task(TaskKind::kMap, i, 1));
    EXPECT_FALSE(plan.kills_task(TaskKind::kMap, i, 2));
  }
}

TEST(FaultPlanTest, ExplicitInjectionsFire) {
  FaultPlan plan;
  plan.kill_task(TaskKind::kReduce, 3, 2)
      .drop_fetch(1, 4)
      .mark_straggler(TaskKind::kMap, 5)
      .fail_node(2);
  EXPECT_TRUE(plan.active());
  EXPECT_TRUE(plan.kills_task(TaskKind::kReduce, 3, 1));
  EXPECT_FALSE(plan.kills_task(TaskKind::kReduce, 3, 2));
  EXPECT_FALSE(plan.kills_task(TaskKind::kMap, 3, 0));
  EXPECT_TRUE(plan.drops_fetch(1, 4));
  EXPECT_FALSE(plan.drops_fetch(4, 1));
  EXPECT_TRUE(plan.is_straggler(TaskKind::kMap, 5));
  EXPECT_FALSE(plan.is_straggler(TaskKind::kReduce, 5));
  ASSERT_TRUE(plan.failed_node().has_value());
  EXPECT_EQ(*plan.failed_node(), 2u);
  EXPECT_FALSE(FaultPlan().active());
}

TEST(FaultPlanTest, RatesAreValidated) {
  FaultPlan plan(1);
  EXPECT_THROW(plan.with_task_kill_rate(1.5), PreconditionError);
  EXPECT_THROW(plan.with_fetch_drop_rate(-0.1), PreconditionError);
  EXPECT_THROW(plan.with_straggler_rate(2.0), PreconditionError);
  EXPECT_THROW(plan.with_task_kill_rate(0.5, 0), PreconditionError);
}

// --- Engine behaviour under injected faults ------------------------------

TEST(FaultInjectionTest, KilledTasksRetryAndPreserveOutput) {
  Cluster cluster({.num_nodes = 3, .worker_threads = 2});
  const auto inputs = write_corpus(cluster);
  FaultPlan plan;
  plan.kill_task(TaskKind::kMap, 0).kill_task(TaskKind::kReduce, 1);

  auto spec = word_count_spec(inputs, "/out");
  spec.fault_plan = &plan;
  const JobResult result = Engine(cluster).run(spec);

  EXPECT_EQ(result.counter(counter::kTasksRetried), 2u);
  EXPECT_GT(result.counter(counter::kRecoveryBytes), 0u);
  EXPECT_EQ(cluster.gather_records("/out"), clean_output(3));
  expect_recovery_invariant(cluster, result);
}

TEST(FaultInjectionTest, InjectedKillsDoNotConsumeUserAttempts) {
  Cluster cluster({.num_nodes = 2, .worker_threads = 1});
  const auto inputs = write_corpus(cluster);
  FaultPlan plan(3);
  plan.with_task_kill_rate(1.0, 3);  // every task dies three times

  auto spec = word_count_spec(inputs, "/out");
  spec.fault_plan = &plan;
  spec.max_task_attempts = 1;  // user code never fails, so 1 is enough
  const JobResult result = Engine(cluster).run(spec);

  // 2 map tasks + 2 reduce tasks, three injected kills each.
  EXPECT_EQ(result.counter(counter::kTasksRetried), 12u);
  EXPECT_EQ(cluster.gather_records("/out"), clean_output(2));
  expect_recovery_invariant(cluster, result);
}

TEST(FaultInjectionTest, NodeLossReschedulesAndMarksClusterState) {
  Cluster cluster({.num_nodes = 4, .worker_threads = 2});
  const auto inputs = write_corpus(cluster);
  FaultPlan plan;
  plan.fail_node(1);

  auto spec = word_count_spec(inputs, "/out");
  spec.fault_plan = &plan;
  const JobResult result = Engine(cluster).run(spec);

  EXPECT_FALSE(cluster.is_alive(1));
  EXPECT_EQ(cluster.num_alive(), 3u);
  // The map task homed on the lost node was aborted and re-run elsewhere.
  EXPECT_GE(result.counter(counter::kTasksRetried), 1u);
  for (const auto& task : result.map_tasks) EXPECT_NE(task.node, 1u);
  for (const auto& task : result.reduce_tasks) EXPECT_NE(task.node, 1u);
  // Its input had to cross the wire for the re-run.
  EXPECT_GT(result.counter(counter::kRecoveryBytes), 0u);
  EXPECT_EQ(cluster.gather_records("/out"), clean_output(4));
  expect_recovery_invariant(cluster, result);

  // A later job on the same cluster schedules around the dead node without
  // further kills.
  const JobResult second = Engine(cluster).run(word_count_spec(inputs, "/o2"));
  for (const auto& task : second.map_tasks) EXPECT_NE(task.node, 1u);
  EXPECT_EQ(second.counter(counter::kTasksRetried), 0u);
  EXPECT_EQ(cluster.gather_records("/o2"), clean_output(4));
}

TEST(FaultInjectionTest, FailingEveryNodeIsRejected) {
  Cluster cluster({.num_nodes = 1, .worker_threads = 1});
  const auto inputs = write_corpus(cluster);
  FaultPlan plan;
  plan.fail_node(0);
  auto spec = word_count_spec(inputs, "/out");
  spec.fault_plan = &plan;
  EXPECT_THROW(Engine(cluster).run(spec), PreconditionError);
}

TEST(FaultInjectionTest, DroppedFetchIsRefetchedAndCharged) {
  Cluster cluster({.num_nodes = 2, .worker_threads = 2});
  const auto inputs = write_corpus(cluster);
  FaultPlan plan;
  plan.drop_fetch(/*reduce_task=*/1, /*map_task=*/0);

  auto spec = word_count_spec(inputs, "/out");
  spec.fault_plan = &plan;
  const JobResult result = Engine(cluster).run(spec);

  EXPECT_EQ(result.counter(counter::kShuffleFetchRetries), 1u);
  // Reduce task 1 runs on node 1; map task 0 ran on node 0, so the dropped
  // copy crossed the wire and shows up as recovery traffic.
  EXPECT_GT(result.counter(counter::kRecoveryBytes), 0u);
  EXPECT_EQ(result.counter(counter::kTasksRetried), 0u);
  EXPECT_EQ(cluster.gather_records("/out"), clean_output(2));
  expect_recovery_invariant(cluster, result);
}

TEST(FaultInjectionTest, SpeculativeBackupWinsForStragglers) {
  Cluster cluster({.num_nodes = 3, .worker_threads = 2});
  const auto inputs = write_corpus(cluster);
  FaultPlan plan;
  plan.mark_straggler(TaskKind::kMap, 0).mark_straggler(TaskKind::kReduce, 2);

  auto spec = word_count_spec(inputs, "/out");
  spec.fault_plan = &plan;
  const JobResult result = Engine(cluster).run(spec);

  EXPECT_EQ(result.counter(counter::kTasksSpeculative), 2u);
  EXPECT_EQ(result.counter(counter::kSpeculativeWins), 2u);
  // The winning backup ran away from the straggler's original placement.
  const NodeId home = cluster.dfs().open(inputs[0])->home;
  EXPECT_NE(result.map_tasks[0].node, home);
  EXPECT_NE(result.reduce_tasks[2].node, 2u % 3u);
  // The losing executions' shuffle and input re-reads are recovery cost.
  EXPECT_GT(result.counter(counter::kRecoveryBytes), 0u);
  EXPECT_EQ(cluster.gather_records("/out"), clean_output(3));
  expect_recovery_invariant(cluster, result);
}

TEST(FaultInjectionTest, SpeculativeBackupCanLoseTheRace) {
  Cluster cluster({.num_nodes = 3, .worker_threads = 2});
  const auto inputs = write_corpus(cluster);
  FaultPlan plan(5);
  plan.mark_straggler(TaskKind::kMap, 0).with_speculative_win_rate(0.0);

  auto spec = word_count_spec(inputs, "/out");
  spec.fault_plan = &plan;
  const JobResult result = Engine(cluster).run(spec);

  EXPECT_EQ(result.counter(counter::kTasksSpeculative), 1u);
  EXPECT_EQ(result.counter(counter::kSpeculativeWins), 0u);
  // The original kept its data-local placement.
  EXPECT_EQ(result.map_tasks[0].node, cluster.dfs().open(inputs[0])->home);
  EXPECT_EQ(cluster.gather_records("/out"), clean_output(3));
  expect_recovery_invariant(cluster, result);
}

TEST(FaultInjectionTest, SpeculationRequiresASecondUsableNode) {
  Cluster cluster({.num_nodes = 1, .worker_threads = 1});
  const auto inputs = write_corpus(cluster);
  FaultPlan plan;
  plan.mark_straggler(TaskKind::kMap, 0);
  auto spec = word_count_spec(inputs, "/out");
  spec.fault_plan = &plan;
  const JobResult result = Engine(cluster).run(spec);
  EXPECT_EQ(result.counter(counter::kTasksSpeculative), 0u);
  EXPECT_EQ(cluster.gather_records("/out"), clean_output(1));
}

TEST(FaultInjectionTest, SpeculationCanBeDisabledPerJob) {
  Cluster cluster({.num_nodes = 3, .worker_threads = 2});
  const auto inputs = write_corpus(cluster);
  FaultPlan plan;
  plan.mark_straggler(TaskKind::kMap, 0);
  auto spec = word_count_spec(inputs, "/out");
  spec.fault_plan = &plan;
  spec.speculative_execution = false;
  const JobResult result = Engine(cluster).run(spec);
  EXPECT_EQ(result.counter(counter::kTasksSpeculative), 0u);
  EXPECT_EQ(result.map_tasks[0].node, cluster.dfs().open(inputs[0])->home);
  EXPECT_EQ(cluster.gather_records("/out"), clean_output(3));
}

// The determinism promise extended to faulted runs: output, counters, and
// metered bytes are identical for any worker-thread count under the same
// seeded chaos.
TEST(FaultInjectionTest, FaultedRunsAreDeterministicAcrossThreadCounts) {
  struct Observation {
    std::vector<Record> output;
    std::map<std::string, std::uint64_t> counters;
    std::uint64_t remote = 0;
    std::uint64_t local = 0;
    std::vector<std::uint64_t> sent, received;
  };
  std::vector<Observation> runs;
  for (const std::uint32_t threads : {1u, 2u, 8u}) {
    Cluster cluster({.num_nodes = 4, .worker_threads = threads});
    const auto inputs = write_corpus(cluster);
    FaultPlan plan(42);
    plan.with_task_kill_rate(0.5, 2)
        .with_fetch_drop_rate(0.4)
        .with_straggler_rate(0.4)
        .fail_node(2);
    auto spec = word_count_spec(inputs, "/out");
    spec.fault_plan = &plan;
    const JobResult result = Engine(cluster).run(spec);

    Observation obs;
    obs.output = cluster.gather_records("/out");
    obs.counters = result.counters;
    obs.remote = cluster.network().remote_bytes();
    obs.local = cluster.network().local_bytes();
    for (NodeId nd = 0; nd < 4; ++nd) {
      obs.sent.push_back(cluster.network().sent_by(nd));
      obs.received.push_back(cluster.network().received_at(nd));
    }
    // The chaos actually happened.
    EXPECT_GT(result.counter(counter::kTasksRetried), 0u);
    expect_recovery_invariant(cluster, result);
    runs.push_back(std::move(obs));
  }
  for (std::size_t i = 1; i < runs.size(); ++i) {
    EXPECT_EQ(runs[0].output, runs[i].output);
    EXPECT_EQ(runs[0].counters, runs[i].counters);
    EXPECT_EQ(runs[0].remote, runs[i].remote);
    EXPECT_EQ(runs[0].local, runs[i].local);
    EXPECT_EQ(runs[0].sent, runs[i].sent);
    EXPECT_EQ(runs[0].received, runs[i].received);
  }
  // And the faults changed the physical traffic relative to a clean run.
  EXPECT_EQ(runs[0].output, clean_output(4));
}

}  // namespace
}  // namespace pairmr::mr
