#include "mr/network.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <vector>

#include "common/check.hpp"
#include "mr/thread_pool.hpp"

namespace pairmr::mr {
namespace {

TEST(NetworkMeterTest, LocalTransfersAreFree) {
  NetworkMeter net(3);
  net.transfer(1, 1, 1000);
  EXPECT_EQ(net.remote_bytes(), 0u);
  EXPECT_EQ(net.local_bytes(), 1000u);
  EXPECT_EQ(net.remote_transfers(), 0u);
}

TEST(NetworkMeterTest, RemoteTransfersAreMetered) {
  NetworkMeter net(3);
  net.transfer(0, 1, 100);
  net.transfer(1, 2, 200);
  net.transfer(2, 0, 300);
  EXPECT_EQ(net.remote_bytes(), 600u);
  EXPECT_EQ(net.remote_transfers(), 3u);
  EXPECT_EQ(net.sent_by(0), 100u);
  EXPECT_EQ(net.sent_by(1), 200u);
  EXPECT_EQ(net.received_at(0), 300u);
  EXPECT_EQ(net.received_at(1), 100u);
}

TEST(NetworkMeterTest, ResetClearsEverything) {
  NetworkMeter net(2);
  net.transfer(0, 1, 42);
  net.transfer(0, 0, 7);
  net.reset();
  EXPECT_EQ(net.remote_bytes(), 0u);
  EXPECT_EQ(net.local_bytes(), 0u);
  EXPECT_EQ(net.sent_by(0), 0u);
  EXPECT_EQ(net.received_at(1), 0u);
}

TEST(NetworkMeterTest, OutOfRangeNodeThrows) {
  NetworkMeter net(2);
  EXPECT_THROW(net.transfer(0, 2, 1), PreconditionError);
  EXPECT_THROW(net.transfer(5, 0, 1), PreconditionError);
  EXPECT_THROW(net.sent_by(2), PreconditionError);
  EXPECT_THROW(NetworkMeter(0), PreconditionError);
}

// reset() may race with concurrent transfer()s (the engine resets between
// benchmark phases while stray pool work can still be metering). Each
// transfer's multi-counter update must land entirely before or entirely
// after a reset — a torn update would leave remote_bytes out of step with
// the per-node tallies. Hammer both from a pool and check the books after
// every reset and at the end.
TEST(NetworkMeterTest, ResetDoesNotTearConcurrentTransfers) {
  constexpr std::uint32_t kNodes = 4;
  constexpr std::uint64_t kSize = 64;  // fixed size → divisibility checks
  constexpr int kTransferTasks = 16;
  constexpr int kTransfersPerTask = 2000;
  NetworkMeter net(kNodes);
  ThreadPool pool(8);

  const auto check_consistent = [&net] {
    // Snapshot under race: totals must stay internally consistent — every
    // recorded remote transfer contributes kSize to remote_bytes and to
    // exactly one sent/received slot.
    const std::uint64_t remote = net.remote_bytes();
    EXPECT_EQ(remote % kSize, 0u);
    std::uint64_t sent = 0, received = 0;
    for (NodeId nd = 0; nd < kNodes; ++nd) {
      sent += net.sent_by(nd);
      received += net.received_at(nd);
    }
    EXPECT_EQ(sent % kSize, 0u);
    EXPECT_EQ(received % kSize, 0u);
  };

  std::vector<std::function<void()>> tasks;
  for (int t = 0; t < kTransferTasks; ++t) {
    tasks.push_back([&net, t] {
      for (int i = 0; i < kTransfersPerTask; ++i) {
        const NodeId src = static_cast<NodeId>((t + i) % kNodes);
        const NodeId dst = static_cast<NodeId>((t + i + 1 + i % 3) % kNodes);
        net.transfer(src, dst, kSize);
      }
    });
  }
  // Interleaved resets, each followed by a consistency probe.
  for (int r = 0; r < 8; ++r) {
    tasks.push_back([&net, &check_consistent] {
      for (int i = 0; i < 50; ++i) {
        net.reset();
        check_consistent();
      }
    });
  }
  pool.run_all(std::move(tasks));

  check_consistent();
  // Quiescent now: the ledger must balance exactly.
  std::uint64_t sent = 0, received = 0;
  for (NodeId nd = 0; nd < kNodes; ++nd) {
    sent += net.sent_by(nd);
    received += net.received_at(nd);
  }
  EXPECT_EQ(sent, net.remote_bytes());
  EXPECT_EQ(received, net.remote_bytes());
  EXPECT_EQ(net.remote_transfers() * kSize, net.remote_bytes());

  // And after a final quiescent reset everything is zero again.
  net.reset();
  EXPECT_EQ(net.remote_bytes(), 0u);
  EXPECT_EQ(net.local_bytes(), 0u);
  EXPECT_EQ(net.remote_transfers(), 0u);
  for (NodeId nd = 0; nd < kNodes; ++nd) {
    EXPECT_EQ(net.sent_by(nd), 0u);
    EXPECT_EQ(net.received_at(nd), 0u);
  }
}

}  // namespace
}  // namespace pairmr::mr
