#include "mr/network.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace pairmr::mr {
namespace {

TEST(NetworkMeterTest, LocalTransfersAreFree) {
  NetworkMeter net(3);
  net.transfer(1, 1, 1000);
  EXPECT_EQ(net.remote_bytes(), 0u);
  EXPECT_EQ(net.local_bytes(), 1000u);
  EXPECT_EQ(net.remote_transfers(), 0u);
}

TEST(NetworkMeterTest, RemoteTransfersAreMetered) {
  NetworkMeter net(3);
  net.transfer(0, 1, 100);
  net.transfer(1, 2, 200);
  net.transfer(2, 0, 300);
  EXPECT_EQ(net.remote_bytes(), 600u);
  EXPECT_EQ(net.remote_transfers(), 3u);
  EXPECT_EQ(net.sent_by(0), 100u);
  EXPECT_EQ(net.sent_by(1), 200u);
  EXPECT_EQ(net.received_at(0), 300u);
  EXPECT_EQ(net.received_at(1), 100u);
}

TEST(NetworkMeterTest, ResetClearsEverything) {
  NetworkMeter net(2);
  net.transfer(0, 1, 42);
  net.transfer(0, 0, 7);
  net.reset();
  EXPECT_EQ(net.remote_bytes(), 0u);
  EXPECT_EQ(net.local_bytes(), 0u);
  EXPECT_EQ(net.sent_by(0), 0u);
  EXPECT_EQ(net.received_at(1), 0u);
}

TEST(NetworkMeterTest, OutOfRangeNodeThrows) {
  NetworkMeter net(2);
  EXPECT_THROW(net.transfer(0, 2, 1), PreconditionError);
  EXPECT_THROW(net.transfer(5, 0, 1), PreconditionError);
  EXPECT_THROW(net.sent_by(2), PreconditionError);
  EXPECT_THROW(NetworkMeter(0), PreconditionError);
}

}  // namespace
}  // namespace pairmr::mr
