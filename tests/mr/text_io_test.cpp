#include "mr/text_io.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace pairmr::mr {
namespace {

TEST(TextIoTest, SimpleRoundTrip) {
  const std::vector<Record> records = {{"k1", "v1"}, {"k2", "v2"}};
  EXPECT_EQ(records_from_tsv(records_to_tsv(records)), records);
}

TEST(TextIoTest, TsvLayout) {
  EXPECT_EQ(records_to_tsv({{"a", "b"}}), "a\tb\n");
  EXPECT_EQ(records_to_tsv({}), "");
}

TEST(TextIoTest, SpecialCharactersRoundTrip) {
  const std::vector<Record> records = {
      {"tab\there", "line\nbreak"},
      {"back\\slash", "cr\rreturn"},
      {std::string("nul\0byte", 8), ""},
  };
  const auto back = records_from_tsv(records_to_tsv(records));
  EXPECT_EQ(back, records);
}

TEST(TextIoTest, LineWithoutTabHasEmptyValue) {
  const auto records = records_from_tsv("just-a-key\nk\tv\n");
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].key, "just-a-key");
  EXPECT_EQ(records[0].value, "");
  EXPECT_EQ(records[1].value, "v");
}

TEST(TextIoTest, EmptyLinesSkippedMissingTrailingNewlineOk) {
  const auto records = records_from_tsv("\na\t1\n\nb\t2");
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[1].key, "b");
}

TEST(TextIoTest, MalformedEscapesThrow) {
  EXPECT_THROW(records_from_tsv("bad\\x\tv\n"), PreconditionError);
  EXPECT_THROW(records_from_tsv("dangling\\\tv\n"), PreconditionError);
}

TEST(TextIoTest, EscapeUnescapeInverse) {
  const std::string nasty("a\tb\nc\rd\\e\0f", 12);
  EXPECT_EQ(unescape_field(escape_field(nasty)), nasty);
  // Escaped form contains no raw separators.
  const std::string escaped = escape_field(nasty);
  EXPECT_EQ(escaped.find('\t'), std::string::npos);
  EXPECT_EQ(escaped.find('\n'), std::string::npos);
}

}  // namespace
}  // namespace pairmr::mr
