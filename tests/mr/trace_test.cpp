// Tracer unit behavior and the span-accounting invariants the engine's
// instrumentation must uphold under chaos:
//   * every retried / speculative attempt in the job counters has a
//     matching annotated span, and vice versa;
//   * remote data-movement span bytes tie out exactly against the shuffle,
//     cache-broadcast, and recovery byte counters (and the network meter);
//   * span structure — counts, parentage, attribution — is identical for
//     any worker-thread count.
// Plus a regression hammer for Counters::add / note_max / merge racing
// with tracer recording from many threads.
#include "mr/trace.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "../support/backend_matrix.hpp"
#include "mr/cluster.hpp"
#include "mr/context.hpp"
#include "mr/engine.hpp"
#include "mr/fault.hpp"

namespace pairmr::mr {
namespace {

// Strictly increasing deterministic clock; safe to share across threads.
Tracer::Clock counter_clock() {
  auto ticks = std::make_shared<std::atomic<std::uint64_t>>(0);
  return [ticks] {
    return static_cast<double>(ticks->fetch_add(1) + 1) * 1e-6;
  };
}

class TokenizeMapper final : public Mapper {
 public:
  void map(const Bytes& /*key*/, const Bytes& value,
           MapContext& ctx) override {
    std::istringstream is(value);
    std::string word;
    while (is >> word) ctx.emit(word, "1");
  }
};

class SumReducer final : public Reducer {
 public:
  void reduce(const Bytes& key, const std::vector<Bytes>& values,
              ReduceContext& ctx) override {
    std::uint64_t total = 0;
    for (const auto& v : values) total += std::stoull(v);
    ctx.emit(key, std::to_string(total));
  }
};

// The chaos of the fault-equivalence harness: kills, a node loss, dropped
// fetches, stragglers with backups, plus seeded rate noise.
FaultPlan make_chaos_plan(std::uint64_t seed) {
  FaultPlan plan(seed);
  plan.with_task_kill_rate(0.25, 2)
      .with_fetch_drop_rate(0.2)
      .with_straggler_rate(0.2)
      .kill_task(TaskKind::kMap, 0)
      .kill_task(TaskKind::kReduce, 0)
      .fail_node(1)
      .drop_fetch(/*reduce_task=*/0, /*map_task=*/0)
      .mark_straggler(TaskKind::kMap, 1)
      .mark_straggler(TaskKind::kReduce, 1);
  return plan;
}

struct ChaosRun {
  std::vector<Span> spans;
  std::string signature;
  JobResult result;
  std::uint64_t remote_bytes = 0;
};

// Traced word count under chaos on a fresh cluster: 12 input files, a
// distributed-cache file (exercises kCacheBroadcast spans), 3 reduce
// tasks, deterministic clock.
ChaosRun run_chaos_word_count(std::uint32_t worker_threads,
                              std::uint64_t seed) {
  Cluster cluster({.num_nodes = 4, .worker_threads = worker_threads});
  std::vector<Record> records;
  for (int i = 0; i < 12; ++i) {
    records.push_back(Record{std::to_string(i),
                             "alpha beta gamma delta w" + std::to_string(i)});
  }
  const auto inputs = cluster.scatter_records("/in", std::move(records));
  cluster.dfs().write_file("/cache/side", /*home=*/0,
                           {Record{"k", std::string(256, 'x')}});

  Tracer tracer(counter_clock());
  const FaultPlan plan = make_chaos_plan(seed);

  JobSpec spec;
  spec.name = "wordcount";
  spec.input_paths = inputs;
  spec.output_dir = "/out";
  spec.mapper_factory = [] { return std::make_unique<TokenizeMapper>(); };
  spec.reducer_factory = [] { return std::make_unique<SumReducer>(); };
  spec.num_reduce_tasks = 3;
  spec.cache_paths = {"/cache/side"};
  spec.fault_plan = &plan;
  spec.tracer = &tracer;

  ChaosRun run;
  run.result = Engine(cluster).run(spec);
  run.spans = tracer.spans();
  run.signature = tracer.structure_signature();
  run.remote_bytes = cluster.network().remote_bytes();
  return run;
}

bool is_attempt(const Span& s) {
  return s.kind == SpanKind::kMapAttempt ||
         s.kind == SpanKind::kReduceAttempt;
}

bool is_data_movement(const Span& s) {
  return s.kind == SpanKind::kShuffleFetch ||
         s.kind == SpanKind::kInputRead ||
         s.kind == SpanKind::kCacheBroadcast;
}

// --- Tracer unit behavior ------------------------------------------------

TEST(TracerTest, RecordsNestedSpansWithPayloadAndParentage) {
  Tracer tracer(counter_clock());
  const SpanId job = tracer.begin_job("demo");
  const SpanId phase = tracer.begin_phase(job, "map");
  const SpanId att = tracer.begin_task(phase, TaskKind::kMap, 7, 2,
                                       /*node=*/3);
  const SpanId xfer = tracer.record_transfer(att, SpanKind::kInputRead,
                                             /*src=*/1, /*dst=*/3, 64,
                                             "recovery-reread");
  tracer.end(att, 128, 5);
  tracer.end(phase);
  tracer.end(job);

  const auto spans = tracer.spans();
  ASSERT_EQ(spans.size(), 4u);
  EXPECT_EQ(spans[0].kind, SpanKind::kJob);
  EXPECT_EQ(spans[0].parent, 0u);
  EXPECT_EQ(spans[1].parent, job);
  EXPECT_EQ(spans[2].parent, phase);
  EXPECT_EQ(spans[2].task_kind, TaskKind::kMap);
  EXPECT_EQ(spans[2].task, 7u);
  EXPECT_EQ(spans[2].attempt, 2u);
  EXPECT_EQ(spans[2].bytes, 128u);
  EXPECT_EQ(spans[2].records, 5u);
  EXPECT_EQ(spans[3].id, xfer);
  EXPECT_EQ(spans[3].peer, 1u);
  EXPECT_EQ(spans[3].node, 3u);
  EXPECT_TRUE(spans[3].remote());
  EXPECT_EQ(spans[3].bytes, 64u);
  EXPECT_DOUBLE_EQ(spans[3].duration_seconds(), 0.0);
  EXPECT_EQ(tracer.job_names(), std::vector<std::string>{"demo"});
  for (const Span& s : spans) {
    EXPECT_GE(s.end_seconds, s.start_seconds);
  }
}

TEST(TracerTest, MarkFaultedSetsFlagAndAppendsNotes) {
  Tracer tracer(counter_clock());
  const SpanId job = tracer.begin_job("j");
  const SpanId att = tracer.begin_task(job, TaskKind::kReduce, 0, 0, 0);
  tracer.annotate(att, "first");
  tracer.mark_faulted(att, "killed-by-fault-plan");
  tracer.end(att);
  tracer.end(job);

  const auto spans = tracer.spans();
  EXPECT_TRUE(spans[1].faulted);
  EXPECT_EQ(spans[1].note, "first;killed-by-fault-plan");
}

TEST(TracerTest, ScopedSpanIsInertWhenTracerIsNull) {
  ScopedSpan inert(nullptr, 0);
  inert.set_payload(10, 10);  // must not crash on destruction
  ScopedSpan moved = std::move(inert);
  moved.finish();
}

TEST(TracerTest, ScopedSpanEndsOnScopeExitWithPayload) {
  Tracer tracer(counter_clock());
  const SpanId job = tracer.begin_job("j");
  {
    ScopedSpan op(&tracer, tracer.begin_op(job, SpanKind::kMapExec, 2));
    op.set_payload(99, 3);
  }
  tracer.end(job);
  const auto spans = tracer.spans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[1].bytes, 99u);
  EXPECT_EQ(spans[1].records, 3u);
  EXPECT_GT(spans[1].end_seconds, spans[1].start_seconds);
}

TEST(TracerTest, ClearResetsSpansAndJobSequence) {
  Tracer tracer(counter_clock());
  tracer.end(tracer.begin_job("a"));
  tracer.clear();
  EXPECT_EQ(tracer.span_count(), 0u);
  tracer.end(tracer.begin_job("b"));
  EXPECT_EQ(tracer.spans()[0].job_seq, 0u);
}

// --- Span accounting under chaos ----------------------------------------

TEST(TraceAccountingTest, FaultAndSpeculationSpansMatchRecoveryCounters) {
  const ChaosRun run = run_chaos_word_count(/*worker_threads=*/4, 42);

  std::uint64_t retried_spans = 0;
  std::uint64_t speculative_spans = 0;
  std::uint64_t speculative_winners = 0;
  std::uint64_t lost_races = 0;
  for (const Span& s : run.spans) {
    if (!is_attempt(s)) continue;
    if (s.faulted && s.note.find("lost-race") == std::string::npos) {
      // Killed or crashed attempts — each one was retried.
      ++retried_spans;
      EXPECT_TRUE(s.note.find("killed-by-fault-plan") != std::string::npos ||
                  s.note.find("node-lost") != std::string::npos)
          << "unexpected fault note: " << s.note;
    }
    if (s.speculative) {
      ++speculative_spans;
      if (!s.faulted) ++speculative_winners;
    }
    if (s.faulted && s.note.find("lost-race") != std::string::npos) {
      ++lost_races;
    }
  }

  EXPECT_EQ(retried_spans, run.result.counter(counter::kTasksRetried));
  EXPECT_EQ(speculative_spans,
            run.result.counter(counter::kTasksSpeculative));
  EXPECT_EQ(speculative_winners,
            run.result.counter(counter::kSpeculativeWins));
  // Every speculative race has exactly one loser (original or backup).
  EXPECT_EQ(lost_races, run.result.counter(counter::kTasksSpeculative));

  // The chaos actually happened — the invariants are not vacuous.
  EXPECT_GT(retried_spans, 0u);
  EXPECT_GT(speculative_spans, 0u);

  // Dropped fetches leave one annotated span per retry.
  std::uint64_t dropped = 0;
  for (const Span& s : run.spans) {
    if (s.kind == SpanKind::kShuffleFetch &&
        s.note.find("dropped-mid-transfer") != std::string::npos) {
      ++dropped;
    }
  }
  EXPECT_EQ(dropped, run.result.counter(counter::kShuffleFetchRetries));
}

TEST(TraceAccountingTest, RemoteSpanBytesTieOutAgainstCountersAndMeter) {
  const ChaosRun run = run_chaos_word_count(/*worker_threads=*/4, 42);

  std::uint64_t fetch_and_reread = 0;
  std::uint64_t broadcast = 0;
  std::uint64_t all_movement = 0;
  for (const Span& s : run.spans) {
    if (!is_data_movement(s) || !s.remote()) continue;
    all_movement += s.bytes;
    if (s.kind == SpanKind::kCacheBroadcast) {
      broadcast += s.bytes;
    } else {
      fetch_and_reread += s.bytes;
    }
  }

  // Shuffle fetches + input re-reads cover exactly the logical shuffle
  // plus all fault-attributed traffic (wasted fetches, re-fetches,
  // re-reads); cache-broadcast spans cover the broadcast volume; together
  // they explain every remote byte the meter saw during this job.
  EXPECT_EQ(fetch_and_reread,
            run.result.counter(counter::kShuffleBytesRemote) +
                run.result.counter(counter::kRecoveryBytes));
  EXPECT_EQ(broadcast, run.result.counter(counter::kCacheBroadcastBytes));
  EXPECT_EQ(all_movement, run.remote_bytes);

  // shuffle.shm.bytes is the arena-served share of the remote shuffle
  // volume, in the same settled-meta unit the coordinator counts — the
  // decomposition above must hold unchanged on both shuffle planes. On
  // the shm plane every winning reduce attempt's remote fetch comes out
  // of an mmap'd arena, so the share covers the whole volume; on the
  // socket plane (and in process) the counter is absent.
  const std::uint64_t shm_share =
      run.result.counter(counter::kShuffleShmBytes);
  if (pairmr::testing::fork_backend_selected() &&
      pairmr::testing::shm_plane_selected()) {
    EXPECT_EQ(shm_share, run.result.counter(counter::kShuffleBytesRemote));
    EXPECT_GT(shm_share, 0u);
  } else {
    EXPECT_EQ(shm_share, 0u);
  }
}

TEST(TraceAccountingTest, EverySpanIsClosedAndParentedCorrectly) {
  const ChaosRun run = run_chaos_word_count(/*worker_threads=*/4, 42);
  ASSERT_FALSE(run.spans.empty());

  for (const Span& s : run.spans) {
    // The deterministic clock is strictly increasing, so every span opened
    // with begin_* and closed with end() has end > start; only completed
    // record_transfer spans are legitimately zero-duration. A span the
    // engine forgot to close would still sit at end == start.
    if (is_data_movement(s)) {
      EXPECT_GE(s.end_seconds, s.start_seconds);
    } else {
      EXPECT_GT(s.end_seconds, s.start_seconds)
          << "span " << s.id << " (" << to_string(s.kind)
          << ") never ended";
    }
    if (s.kind == SpanKind::kJob) {
      EXPECT_EQ(s.parent, 0u);
      continue;
    }
    ASSERT_GE(s.parent, 1u) << "non-job span without a parent";
    ASSERT_LT(s.parent, s.id) << "parent must precede child";
    const Span& p = run.spans[s.parent - 1];
    switch (s.kind) {
      case SpanKind::kPhase:
        EXPECT_EQ(p.kind, SpanKind::kJob);
        break;
      case SpanKind::kMapAttempt:
      case SpanKind::kReduceAttempt:
        EXPECT_EQ(p.kind, SpanKind::kPhase);
        break;
      case SpanKind::kMapExec:
        EXPECT_EQ(p.kind, SpanKind::kMapAttempt);
        break;
      case SpanKind::kReduceExec:
      case SpanKind::kShuffleFetch:
        EXPECT_EQ(p.kind, SpanKind::kReduceAttempt);
        break;
      case SpanKind::kSpill:
        // In-memory mode finalizes buckets under the attempt; spill mode
        // (memory budget / PAIRMR_TEST_MEMORY_BUDGET) finalizes the last
        // run inside the map execution.
        EXPECT_TRUE(p.kind == SpanKind::kMapAttempt ||
                    p.kind == SpanKind::kMapExec);
        break;
      case SpanKind::kSpillWrite:
        EXPECT_EQ(p.kind, SpanKind::kMapExec);
        break;
      case SpanKind::kMergePass:
        EXPECT_EQ(p.kind, SpanKind::kReduceExec);
        break;
      case SpanKind::kCombine:
        EXPECT_TRUE(p.kind == SpanKind::kSpill ||
                    p.kind == SpanKind::kSpillWrite);
        break;
      case SpanKind::kInputRead:
        EXPECT_EQ(p.kind, SpanKind::kMapAttempt);
        break;
      case SpanKind::kShmArena:
        // Shm shuffle plane only: the publishing worker serialized the
        // task's partitions into a memfd arena, under the kept attempt.
        EXPECT_EQ(p.kind, SpanKind::kMapAttempt);
        break;
      case SpanKind::kCacheBroadcast:
        EXPECT_EQ(p.kind, SpanKind::kPhase);
        break;
      case SpanKind::kOutputWrite:
        EXPECT_TRUE(p.kind == SpanKind::kReduceAttempt ||
                    p.kind == SpanKind::kPhase);
        break;
      default:
        ADD_FAILURE() << "unexpected span kind in engine trace";
    }
    EXPECT_EQ(p.job, s.job) << "child span crossed jobs";
  }
}

// --- Structure determinism across worker-thread counts -------------------

TEST(TraceDeterminismTest, StructureSignatureIdenticalAcrossThreadCounts) {
  const ChaosRun one = run_chaos_word_count(/*worker_threads=*/1, 42);
  const ChaosRun four = run_chaos_word_count(/*worker_threads=*/4, 42);
  const ChaosRun eight = run_chaos_word_count(/*worker_threads=*/8, 42);

  EXPECT_FALSE(one.signature.empty());
  EXPECT_EQ(one.spans.size(), four.spans.size());
  EXPECT_EQ(one.spans.size(), eight.spans.size());
  EXPECT_EQ(one.signature, four.signature);
  EXPECT_EQ(one.signature, eight.signature);

  // Different chaos → different structure (the signature is not constant).
  const ChaosRun other = run_chaos_word_count(/*worker_threads=*/4, 1337);
  EXPECT_NE(one.signature, other.signature);
}

// --- Counters / tracer concurrency regression ----------------------------

// PR 1 audit: Counters guards add/note_max/merge with one mutex, so a
// NetworkMeter-class read-modify-write tear cannot occur. Pin that down:
// hammer a shared bag (including a note_max counter) from many threads
// while the same threads record tracer spans, and require exact totals,
// the exact global maximum, and the exact span count.
TEST(CountersTraceInteractionTest, ConcurrentAddNoteMaxMergeStayExact) {
  constexpr int kThreads = 8;
  constexpr int kIters = 2000;

  Counters shared;
  Tracer tracer(counter_clock());
  const SpanId job = tracer.begin_job("hammer");

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Counters local;
      for (int i = 0; i < kIters; ++i) {
        const auto value = static_cast<std::uint64_t>(t * kIters + i);
        shared.add("hammer.sum", 1);
        shared.note_max(counter::kReduceMaxGroupRecords, value);
        local.add("hammer.sum.local", 1);
        local.note_max(counter::kReduceMaxGroupRecords, value);
        ScopedSpan op(&tracer,
                      tracer.begin_op(job, SpanKind::kMapExec,
                                      static_cast<NodeId>(t % 4)));
        op.set_payload(value, 1);
      }
      shared.merge(local);
    });
  }
  for (auto& th : threads) th.join();
  tracer.end(job);

  constexpr std::uint64_t kTotal =
      static_cast<std::uint64_t>(kThreads) * kIters;
  constexpr std::uint64_t kMax = kTotal - 1;
  EXPECT_EQ(shared.get("hammer.sum"), kTotal);
  EXPECT_EQ(shared.get("hammer.sum.local"), kTotal);
  // note_max merged with max (not sum) across note_max and merge alike.
  EXPECT_EQ(shared.get(counter::kReduceMaxGroupRecords), kMax);
  EXPECT_EQ(tracer.span_count(), kTotal + 1);

  // Every recorded span is well-formed: job-parented, closed, payload kept.
  const auto spans = tracer.spans();
  std::uint64_t payload_max = 0;
  for (std::size_t i = 1; i < spans.size(); ++i) {
    EXPECT_EQ(spans[i].parent, job);
    EXPECT_GE(spans[i].end_seconds, spans[i].start_seconds);
    payload_max = std::max(payload_max, spans[i].bytes);
  }
  EXPECT_EQ(payload_max, kMax);
}

}  // namespace
}  // namespace pairmr::mr
