// End-to-end tests of the MapReduce engine: a word count, determinism
// across worker-thread counts, combiner semantics, partitioners, the
// distributed cache, counters, and split handling.
#include "mr/engine.hpp"

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "../support/backend_matrix.hpp"
#include "common/check.hpp"
#include "common/serde.hpp"
#include "mr/context.hpp"

namespace pairmr::mr {
namespace {

// --- word count fixtures -------------------------------------------------

class TokenizeMapper final : public Mapper {
 public:
  void map(const Bytes& /*key*/, const Bytes& value,
           MapContext& ctx) override {
    std::istringstream is(value);
    std::string word;
    while (is >> word) ctx.emit(word, "1");
  }
};

class SumReducer final : public Reducer {
 public:
  void reduce(const Bytes& key, const std::vector<Bytes>& values,
              ReduceContext& ctx) override {
    std::uint64_t total = 0;
    for (const auto& v : values) total += std::stoull(v);
    ctx.emit(key, std::to_string(total));
  }
};

std::map<std::string, std::uint64_t> collect_counts(const Cluster& cluster,
                                                    const std::string& dir) {
  std::map<std::string, std::uint64_t> out;
  for (const auto& rec : cluster.gather_records(dir)) {
    out[rec.key] = std::stoull(rec.value);
  }
  return out;
}

JobSpec word_count_spec(const std::vector<std::string>& inputs,
                        const std::string& output_dir) {
  JobSpec spec;
  spec.name = "wordcount";
  spec.input_paths = inputs;
  spec.output_dir = output_dir;
  spec.mapper_factory = [] { return std::make_unique<TokenizeMapper>(); };
  spec.reducer_factory = [] { return std::make_unique<SumReducer>(); };
  return spec;
}

std::vector<std::string> write_corpus(Cluster& cluster) {
  return cluster.scatter_records(
      "/in", {Record{"1", "the quick brown fox"},
              Record{"2", "the lazy dog"},
              Record{"3", "the quick dog jumps"},
              Record{"4", "fox and dog and fox"}});
}

TEST(EngineTest, WordCountEndToEnd) {
  Cluster cluster({.num_nodes = 3, .worker_threads = 2});
  const auto inputs = write_corpus(cluster);
  Engine engine(cluster);
  const JobResult result = engine.run(word_count_spec(inputs, "/out"));

  const auto counts = collect_counts(cluster, "/out");
  EXPECT_EQ(counts.at("the"), 3u);
  EXPECT_EQ(counts.at("fox"), 3u);
  EXPECT_EQ(counts.at("dog"), 3u);
  EXPECT_EQ(counts.at("quick"), 2u);
  EXPECT_EQ(counts.at("and"), 2u);
  EXPECT_EQ(counts.at("jumps"), 1u);
  EXPECT_EQ(counts.size(), 8u);  // + brown, lazy

  EXPECT_EQ(result.counter(counter::kMapInputRecords), 4u);
  EXPECT_EQ(result.counter(counter::kMapOutputRecords), 16u);
  EXPECT_EQ(result.counter(counter::kReduceInputRecords), 16u);
  EXPECT_EQ(result.counter(counter::kReduceInputGroups), 8u);
  EXPECT_EQ(result.counter(counter::kReduceOutputRecords), 8u);
}

// The determinism promise in engine.hpp, checked in full: not just the
// output records but every counter, every per-file home node, and every
// network-meter reading must be identical for any worker-thread count.
TEST(EngineTest, OutputIdenticalAcrossWorkerThreadCounts) {
  struct Observation {
    std::vector<Record> output;
    std::map<std::string, std::uint64_t> counters;
    std::vector<std::pair<std::string, NodeId>> file_homes;
    std::uint64_t remote = 0;
    std::uint64_t local = 0;
    std::vector<std::uint64_t> sent, received;
  };
  std::vector<Observation> runs;
  for (const std::uint32_t threads : {1u, 2u, 8u}) {
    Cluster cluster({.num_nodes = 4, .worker_threads = threads});
    const auto inputs = write_corpus(cluster);
    const JobResult result = Engine(cluster).run(word_count_spec(inputs, "/out"));

    Observation obs;
    obs.output = cluster.gather_records("/out");
    obs.counters = result.counters;
    for (const auto& path : result.output_paths) {
      obs.file_homes.emplace_back(path, cluster.dfs().open(path)->home);
    }
    obs.remote = cluster.network().remote_bytes();
    obs.local = cluster.network().local_bytes();
    for (NodeId nd = 0; nd < 4; ++nd) {
      obs.sent.push_back(cluster.network().sent_by(nd));
      obs.received.push_back(cluster.network().received_at(nd));
    }
    runs.push_back(std::move(obs));
  }
  for (std::size_t i = 1; i < runs.size(); ++i) {
    EXPECT_EQ(runs[0].output, runs[i].output);
    EXPECT_EQ(runs[0].counters, runs[i].counters);
    EXPECT_EQ(runs[0].file_homes, runs[i].file_homes);
    EXPECT_EQ(runs[0].remote, runs[i].remote);
    EXPECT_EQ(runs[0].local, runs[i].local);
    EXPECT_EQ(runs[0].sent, runs[i].sent);
    EXPECT_EQ(runs[0].received, runs[i].received);
  }
}

TEST(EngineTest, ReduceOutputIsSortedByKeyWithinTask) {
  Cluster cluster({.num_nodes = 1, .worker_threads = 1});
  const auto inputs = write_corpus(cluster);
  Engine engine(cluster);
  auto spec = word_count_spec(inputs, "/out");
  spec.num_reduce_tasks = 1;
  const JobResult result = engine.run(spec);
  const auto file = cluster.dfs().open(result.output_paths[0]);
  for (std::size_t i = 1; i < file->records.size(); ++i) {
    EXPECT_LT(file->records[i - 1].key, file->records[i].key);
  }
}

TEST(EngineTest, CombinerShrinksShuffleButNotResult) {
  Cluster with({.num_nodes = 2, .worker_threads = 2});
  Cluster without({.num_nodes = 2, .worker_threads = 2});
  const auto in_with = write_corpus(with);
  const auto in_without = write_corpus(without);

  auto spec_with = word_count_spec(in_with, "/out");
  spec_with.combiner_factory = [] { return std::make_unique<SumReducer>(); };
  const JobResult r_with = Engine(with).run(spec_with);
  const JobResult r_without =
      Engine(without).run(word_count_spec(in_without, "/out"));

  EXPECT_EQ(collect_counts(with, "/out"), collect_counts(without, "/out"));
  EXPECT_LT(r_with.counter(counter::kReduceInputRecords),
            r_without.counter(counter::kReduceInputRecords));
  EXPECT_EQ(r_with.counter(counter::kCombineInputRecords), 16u);
}

TEST(EngineTest, SplitsRespectMaxRecords) {
  Cluster cluster({.num_nodes = 1, .worker_threads = 1});
  std::vector<Record> records;
  for (int i = 0; i < 10; ++i) {
    records.push_back(Record{std::to_string(i), "a b"});
  }
  cluster.dfs().write_file("/in/big", 0, std::move(records));

  Engine engine(cluster);
  auto spec = word_count_spec({"/in/big"}, "/out");
  spec.max_records_per_split = 3;
  const JobResult result = engine.run(spec);
  EXPECT_EQ(result.map_tasks.size(), 4u);  // 3+3+3+1
  EXPECT_EQ(result.map_tasks[3].input_records, 1u);
}

TEST(EngineTest, MapTasksRunDataLocal) {
  Cluster cluster({.num_nodes = 4, .worker_threads = 2});
  const auto inputs = write_corpus(cluster);  // one file per node
  Engine engine(cluster);
  const JobResult result = engine.run(word_count_spec(inputs, "/out"));
  for (const auto& task : result.map_tasks) {
    const auto file = cluster.dfs().open(inputs[task.index]);
    EXPECT_EQ(task.node, file->home);
  }
}

TEST(EngineTest, ShuffleMetersRemoteBytes) {
  Cluster cluster({.num_nodes = 4, .worker_threads = 2});
  const auto inputs = write_corpus(cluster);
  Engine engine(cluster);
  const JobResult result = engine.run(word_count_spec(inputs, "/out"));
  const std::uint64_t remote = result.counter(counter::kShuffleBytesRemote);
  const std::uint64_t local = result.counter(counter::kShuffleBytesLocal);
  EXPECT_GT(remote, 0u);
  EXPECT_EQ(remote + local, result.counter(counter::kMapOutputBytes));
  EXPECT_EQ(cluster.network().remote_bytes(), remote);
}

TEST(EngineTest, RangePartitionerGroupsContiguousKeys) {
  Cluster cluster({.num_nodes = 2, .worker_threads = 1});
  std::vector<Record> records;
  for (std::uint64_t i = 0; i < 100; ++i) {
    records.push_back(Record{encode_u64_key(i), "x"});
  }
  cluster.dfs().write_file("/in/keys", 0, std::move(records));

  JobSpec spec;
  spec.name = "range";
  spec.input_paths = {"/in/keys"};
  spec.output_dir = "/out";
  spec.mapper_factory = [] { return std::make_unique<IdentityMapper>(); };
  spec.reducer_factory = [] { return std::make_unique<IdentityReducer>(); };
  spec.partitioner = std::make_shared<RangePartitioner>(100);
  spec.num_reduce_tasks = 4;
  const JobResult result = Engine(cluster).run(spec);

  // Reducer r must hold exactly keys [25r, 25r+25).
  for (std::uint32_t r = 0; r < 4; ++r) {
    const auto file = cluster.dfs().open(result.output_paths[r]);
    ASSERT_EQ(file->records.size(), 25u);
    for (const auto& rec : file->records) {
      const std::uint64_t k = decode_u64_key(rec.key);
      EXPECT_GE(k, 25ull * r);
      EXPECT_LT(k, 25ull * (r + 1));
    }
  }
}

TEST(EngineTest, DistributedCacheIsVisibleAndMetered) {
  Cluster cluster({.num_nodes = 3, .worker_threads = 2});
  cluster.dfs().write_file("/cache/lookup", 0,
                           {Record{"k", "cached-value-123"}});
  cluster.dfs().write_file("/in/data", 1, {Record{"a", "b"}});

  class CacheReadingMapper final : public Mapper {
   public:
    void map(const Bytes&, const Bytes&, MapContext& ctx) override {
      const auto& cached = ctx.cache_file("/cache/lookup");
      ctx.emit("seen", cached[0].value);
    }
  };

  JobSpec spec;
  spec.name = "cache";
  spec.input_paths = {"/in/data"};
  spec.output_dir = "/out";
  spec.cache_paths = {"/cache/lookup"};
  spec.mapper_factory = [] { return std::make_unique<CacheReadingMapper>(); };
  spec.reducer_factory = [] { return std::make_unique<IdentityReducer>(); };
  const JobResult result = Engine(cluster).run(spec);

  const auto out = cluster.gather_records("/out");
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].value, "cached-value-123");
  // Broadcast to the 2 non-home nodes: 2 × file bytes.
  const std::uint64_t file_bytes = 1 + 16;  // "k" + value
  EXPECT_EQ(result.counter(counter::kCacheBroadcastBytes), 2 * file_bytes);
}

TEST(EngineTest, InvalidSpecsThrow) {
  Cluster cluster({.num_nodes = 1});
  Engine engine(cluster);
  JobSpec spec;  // everything missing
  EXPECT_THROW(engine.run(spec), PreconditionError);

  spec = word_count_spec({"/does/not/exist"}, "/out");
  EXPECT_THROW(engine.run(spec), PreconditionError);
}

TEST(EngineTest, MapperExceptionSurfacesToCaller) {
  Cluster cluster({.num_nodes = 2, .worker_threads = 2});
  cluster.dfs().write_file("/in/x", 0, {Record{"a", "b"}});
  class ThrowingMapper final : public Mapper {
   public:
    void map(const Bytes&, const Bytes&, MapContext&) override {
      throw std::runtime_error("user mapper bug");
    }
  };
  JobSpec spec;
  spec.name = "boom";
  spec.input_paths = {"/in/x"};
  spec.output_dir = "/out";
  spec.mapper_factory = [] { return std::make_unique<ThrowingMapper>(); };
  spec.reducer_factory = [] { return std::make_unique<IdentityReducer>(); };
  EXPECT_THROW(Engine(cluster).run(spec), std::runtime_error);
}

// Fails the first attempt of every task it runs in; succeeds after.
// Shared attempt ledger keyed by task index.
class FlakyMapper final : public Mapper {
 public:
  explicit FlakyMapper(std::atomic<int>* failures) : failures_(failures) {}
  void setup(MapContext& ctx) override {
    if (!failed_once_[ctx.task_index() % kSlots].exchange(true)) {
      failures_->fetch_add(1);
      throw std::runtime_error("injected map failure");
    }
  }
  void map(const Bytes& /*key*/, const Bytes& value,
           MapContext& ctx) override {
    std::istringstream is(value);
    std::string word;
    while (is >> word) ctx.emit(word, "1");
  }

  static void reset() {
    for (auto& f : failed_once_) f.store(false);
  }

 private:
  static constexpr int kSlots = 64;
  static std::array<std::atomic<bool>, kSlots> failed_once_;
  std::atomic<int>* failures_;
};
std::array<std::atomic<bool>, FlakyMapper::kSlots> FlakyMapper::failed_once_{};

TEST(EngineTest, FailedMapAttemptsAreRetriedWithCleanCounters) {
  PAIRMR_SKIP_UNDER_FORK(
      "FlakyMapper's fail-once latch is a process-global atomic; a retry "
      "on a fresh worker process cannot see the first attempt's flip");
  FlakyMapper::reset();
  Cluster cluster({.num_nodes = 3, .worker_threads = 2});
  const auto inputs = write_corpus(cluster);
  std::atomic<int> failures{0};

  auto spec = word_count_spec(inputs, "/out");
  spec.mapper_factory = [&failures] {
    return std::make_unique<FlakyMapper>(&failures);
  };
  spec.max_task_attempts = 2;
  const JobResult result = Engine(cluster).run(spec);

  EXPECT_GT(failures.load(), 0);  // injection actually fired
  // Counters must look as if nothing ever failed.
  EXPECT_EQ(result.counter(counter::kMapInputRecords), 4u);
  EXPECT_EQ(result.counter(counter::kMapOutputRecords), 16u);
  EXPECT_EQ(collect_counts(cluster, "/out").at("the"), 3u);
}

TEST(EngineTest, ExhaustedAttemptsFailTheJob) {
  FlakyMapper::reset();
  Cluster cluster({.num_nodes = 2, .worker_threads = 1});
  cluster.dfs().write_file("/in/x", 0, {Record{"a", "b"}});
  class AlwaysFailingMapper final : public Mapper {
   public:
    void map(const Bytes&, const Bytes&, MapContext&) override {
      throw std::runtime_error("always fails");
    }
  };
  JobSpec spec;
  spec.name = "doomed";
  spec.input_paths = {"/in/x"};
  spec.output_dir = "/out";
  spec.mapper_factory = [] { return std::make_unique<AlwaysFailingMapper>(); };
  spec.reducer_factory = [] { return std::make_unique<IdentityReducer>(); };
  spec.max_task_attempts = 3;
  EXPECT_THROW(Engine(cluster).run(spec), std::runtime_error);
}

TEST(EngineTest, FlakyReducerRetriesAndRefetchesInput) {
  PAIRMR_SKIP_UNDER_FORK(
      "FlakyReducer's fail-once latch is a process-global atomic; a retry "
      "on a fresh worker process cannot see the first attempt's flip");
  Cluster cluster({.num_nodes = 2, .worker_threads = 2});
  const auto inputs = write_corpus(cluster);

  static std::atomic<bool> reducer_failed{false};
  reducer_failed.store(false);
  class FlakyReducer final : public Reducer {
   public:
    void setup(ReduceContext& ctx) override {
      if (ctx.task_index() == 0 && !reducer_failed.exchange(true)) {
        throw std::runtime_error("injected reduce failure");
      }
    }
    void reduce(const Bytes& key, const std::vector<Bytes>& values,
                ReduceContext& ctx) override {
      std::uint64_t total = 0;
      for (const auto& v : values) total += std::stoull(v);
      ctx.emit(key, std::to_string(total));
    }
  };

  auto spec = word_count_spec(inputs, "/out");
  spec.reducer_factory = [] { return std::make_unique<FlakyReducer>(); };
  spec.max_task_attempts = 2;
  const JobResult result = Engine(cluster).run(spec);
  EXPECT_TRUE(reducer_failed.load());
  EXPECT_EQ(collect_counts(cluster, "/out").at("the"), 3u);
  // Reduce input records counted once despite the retry.
  EXPECT_EQ(result.counter(counter::kReduceInputRecords), 16u);
}

TEST(EngineTest, RetriedRunProducesIdenticalOutputToCleanRun) {
  PAIRMR_SKIP_UNDER_FORK(
      "FlakyMapper's fail-once latch is a process-global atomic; a retry "
      "on a fresh worker process cannot see the first attempt's flip");
  FlakyMapper::reset();
  Cluster clean({.num_nodes = 3, .worker_threads = 2});
  Cluster flaky({.num_nodes = 3, .worker_threads = 2});
  const auto in_clean = write_corpus(clean);
  const auto in_flaky = write_corpus(flaky);

  Engine(clean).run(word_count_spec(in_clean, "/out"));

  std::atomic<int> failures{0};
  auto spec = word_count_spec(in_flaky, "/out");
  spec.mapper_factory = [&failures] {
    return std::make_unique<FlakyMapper>(&failures);
  };
  spec.max_task_attempts = 2;
  Engine(flaky).run(spec);

  EXPECT_EQ(clean.gather_records("/out"), flaky.gather_records("/out"));
}

TEST(EngineTest, ReduceTaskCountDefaultsToNodes) {
  Cluster cluster({.num_nodes = 3, .worker_threads = 1});
  const auto inputs = write_corpus(cluster);
  const JobResult result =
      Engine(cluster).run(word_count_spec(inputs, "/out"));
  EXPECT_EQ(result.reduce_tasks.size(), 3u);
  EXPECT_EQ(result.output_paths.size(), 3u);
}

TEST(EngineTest, MapOnlyJobSkipsShuffleAndPreservesOrder) {
  Cluster cluster({.num_nodes = 2, .worker_threads = 2});
  std::vector<Record> records;
  for (int i = 0; i < 8; ++i) {
    records.push_back(Record{"z" + std::to_string(9 - i), "v"});
  }
  cluster.dfs().write_file("/in/m", 0, std::move(records));

  JobSpec spec;
  spec.name = "map-only";
  spec.input_paths = {"/in/m"};
  spec.output_dir = "/out";
  spec.mapper_factory = [] { return std::make_unique<IdentityMapper>(); };
  spec.map_only = true;
  const JobResult result = Engine(cluster).run(spec);

  EXPECT_EQ(result.reduce_tasks.size(), 0u);
  EXPECT_EQ(result.counter(counter::kShuffleBytesRemote), 0u);
  EXPECT_EQ(result.counter(counter::kShuffleBytesLocal), 0u);
  ASSERT_EQ(result.output_paths.size(), 1u);
  EXPECT_NE(result.output_paths[0].find("part-m-"), std::string::npos);
  // Emission order preserved (no sort): keys stay in reverse order.
  const auto file = cluster.dfs().open(result.output_paths[0]);
  ASSERT_EQ(file->records.size(), 8u);
  EXPECT_EQ(file->records[0].key, "z9");
  EXPECT_EQ(file->records[7].key, "z2");
  // Output lives on the map task's (data-local) node.
  EXPECT_EQ(file->home, 0u);
}

TEST(EngineTest, MapOnlyRejectsCombiner) {
  Cluster cluster({.num_nodes = 1});
  cluster.dfs().write_file("/in/x", 0, {Record{"a", "b"}});
  JobSpec spec;
  spec.name = "bad";
  spec.input_paths = {"/in/x"};
  spec.output_dir = "/out";
  spec.mapper_factory = [] { return std::make_unique<IdentityMapper>(); };
  spec.map_only = true;
  spec.combiner_factory = [] { return std::make_unique<IdentityReducer>(); };
  EXPECT_THROW(Engine(cluster).run(spec), PreconditionError);
}

TEST(EngineTest, MaxGroupCountersTrackLargestKeyGroup) {
  Cluster cluster({.num_nodes = 1, .worker_threads = 1});
  // Key "a" has 5 records, key "b" has 2.
  std::vector<Record> records;
  for (int i = 0; i < 5; ++i) records.push_back(Record{"a", "v"});
  for (int i = 0; i < 2; ++i) records.push_back(Record{"b", "v"});
  cluster.dfs().write_file("/in/g", 0, std::move(records));

  JobSpec spec;
  spec.name = "groups";
  spec.input_paths = {"/in/g"};
  spec.output_dir = "/out";
  spec.mapper_factory = [] { return std::make_unique<IdentityMapper>(); };
  spec.reducer_factory = [] { return std::make_unique<IdentityReducer>(); };
  const JobResult result = Engine(cluster).run(spec);
  EXPECT_EQ(result.counter(counter::kReduceMaxGroupRecords), 5u);
  EXPECT_EQ(result.counter(counter::kReduceMaxGroupBytes), 5u * 2u);
}

}  // namespace
}  // namespace pairmr::mr
