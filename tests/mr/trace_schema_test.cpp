// Chrome trace_event export schema: the JSON is valid, every event carries
// the exact stable field set, timestamps are monotone within each
// (pid, tid) lane, and the export is deterministic — an injected clock and
// one worker thread reproduce it byte-for-byte, including a literal golden
// for a hand-built trace.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "../support/backend_matrix.hpp"
#include "../support/mini_json.hpp"
#include "mr/cluster.hpp"
#include "mr/context.hpp"
#include "mr/engine.hpp"
#include "mr/trace.hpp"

namespace pairmr::mr {
namespace {

using minijson::JsonParser;
using minijson::JsonValue;

// --- Test fixtures --------------------------------------------------------

Tracer::Clock counter_clock() {
  auto ticks = std::make_shared<std::atomic<std::uint64_t>>(0);
  return [ticks] {
    return static_cast<double>(ticks->fetch_add(1) + 1) * 1e-6;
  };
}

class TokenizeMapper final : public Mapper {
 public:
  void map(const Bytes& /*key*/, const Bytes& value,
           MapContext& ctx) override {
    std::istringstream is(value);
    std::string word;
    while (is >> word) ctx.emit(word, "1");
  }
};

class SumReducer final : public Reducer {
 public:
  void reduce(const Bytes& key, const std::vector<Bytes>& values,
              ReduceContext& ctx) override {
    std::uint64_t total = 0;
    for (const auto& v : values) total += std::stoull(v);
    ctx.emit(key, std::to_string(total));
  }
};

// Small traced word count; deterministic clock, no faults.
std::string traced_word_count_json(std::uint32_t worker_threads) {
  Cluster cluster({.num_nodes = 2, .worker_threads = worker_threads});
  std::vector<Record> records;
  for (int i = 0; i < 6; ++i) {
    records.push_back(Record{std::to_string(i),
                             "alpha beta gamma w" + std::to_string(i)});
  }
  const auto inputs = cluster.scatter_records("/in", std::move(records));

  Tracer tracer(counter_clock());
  JobSpec spec;
  spec.name = "wordcount";
  spec.input_paths = inputs;
  spec.output_dir = "/out";
  spec.mapper_factory = [] { return std::make_unique<TokenizeMapper>(); };
  spec.reducer_factory = [] { return std::make_unique<SumReducer>(); };
  spec.num_reduce_tasks = 2;
  spec.tracer = &tracer;
  Engine(cluster).run(spec);

  std::ostringstream out;
  tracer.write_chrome_trace(out);
  return out.str();
}

const std::set<std::string>& known_categories() {
  static const std::set<std::string> kCategories{
      "job",           "phase",        "map-attempt", "map-exec",
      "spill",         "combine",      "reduce-attempt",
      "shuffle-fetch", "reduce-exec",  "input-read",
      "cache-broadcast", "output-write", "shm-arena"};
  return kCategories;
}

// Asserts the full schema on an export: top-level shape, per-event stable
// field set (names and order), arg types, and monotone ts per lane.
void expect_valid_trace(const std::string& json) {
  JsonValue root;
  ASSERT_TRUE(JsonParser(json).parse(root)) << "export is not valid JSON";
  ASSERT_EQ(root.kind, JsonValue::kObject);
  ASSERT_EQ(root.object.size(), 2u);
  EXPECT_EQ(root.object[0].first, "displayTimeUnit");
  EXPECT_EQ(root.object[0].second.str, "ms");
  EXPECT_EQ(root.object[1].first, "traceEvents");
  ASSERT_EQ(root.object[1].second.kind, JsonValue::kArray);

  const std::vector<std::string> kEventKeys{"name", "cat",  "ph",  "ts",
                                            "dur",  "pid",  "tid", "args"};
  const std::vector<std::string> kArgKeys{
      "job",     "task_kind", "task",  "attempt",     "node", "peer",
      "bytes",   "records",   "faulted", "speculative", "note"};

  std::map<std::pair<double, double>, double> last_ts;  // (pid,tid) lane
  for (const JsonValue& event : root.object[1].second.array) {
    ASSERT_EQ(event.kind, JsonValue::kObject);
    ASSERT_EQ(event.object.size(), kEventKeys.size());
    for (std::size_t i = 0; i < kEventKeys.size(); ++i) {
      EXPECT_EQ(event.object[i].first, kEventKeys[i])
          << "unstable event field set";
    }
    EXPECT_EQ(event.find("ph")->str, "X");
    EXPECT_TRUE(known_categories().count(event.find("cat")->str))
        << "unknown category " << event.find("cat")->str;
    const double ts = event.find("ts")->number;
    EXPECT_GE(ts, 0.0);
    EXPECT_GE(event.find("dur")->number, 0.0);

    const JsonValue& args = *event.find("args");
    ASSERT_EQ(args.kind, JsonValue::kObject);
    ASSERT_EQ(args.object.size(), kArgKeys.size());
    for (std::size_t i = 0; i < kArgKeys.size(); ++i) {
      EXPECT_EQ(args.object[i].first, kArgKeys[i])
          << "unstable args field set";
    }
    EXPECT_EQ(args.find("job")->kind, JsonValue::kString);
    EXPECT_EQ(args.find("faulted")->kind, JsonValue::kBool);
    EXPECT_EQ(args.find("speculative")->kind, JsonValue::kBool);
    EXPECT_EQ(args.find("note")->kind, JsonValue::kString);
    EXPECT_EQ(args.find("bytes")->kind, JsonValue::kNumber);

    // task/attempt are -1 exactly when the span is not task-scoped.
    const bool task_scoped = args.find("task_kind")->str != "none";
    EXPECT_EQ(args.find("task")->number >= 0, task_scoped);
    EXPECT_EQ(args.find("attempt")->number >= 0, task_scoped);

    const auto lane = std::make_pair(event.find("pid")->number,
                                     event.find("tid")->number);
    const auto it = last_ts.find(lane);
    if (it != last_ts.end()) {
      EXPECT_GE(ts, it->second) << "ts not monotone within a lane";
    }
    last_ts[lane] = ts;
  }
}

// --- Tests ----------------------------------------------------------------

TEST(TraceSchemaTest, EngineExportSatisfiesSchema) {
  expect_valid_trace(traced_word_count_json(/*worker_threads=*/4));
}

TEST(TraceSchemaTest, ExportIsDeterministicWithInjectedClock) {
  PAIRMR_SKIP_UNDER_FORK(
      "the injected counter clock lives in this process; worker-recorded "
      "spans carry each worker process's own timestamps");
  const std::string a = traced_word_count_json(/*worker_threads=*/1);
  const std::string b = traced_word_count_json(/*worker_threads=*/1);
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
  expect_valid_trace(a);
}

// Literal golden for a hand-built trace: pins the exact serialization
// (field order, number formatting, lane sort) so viewer compatibility
// cannot silently drift.
TEST(TraceSchemaTest, HandBuiltTraceMatchesGoldenLiteral) {
  Tracer tracer(counter_clock());
  const SpanId job = tracer.begin_job("wc");               // tick 1
  const SpanId phase = tracer.begin_phase(job, "map");     // tick 2
  const SpanId att =
      tracer.begin_task(phase, TaskKind::kMap, 0, 0, /*node=*/1);  // tick 3
  tracer.record_transfer(att, SpanKind::kInputRead, /*src=*/0, /*dst=*/1,
                         64, "recovery-reread");           // tick 4
  tracer.end(att, 128, 2);                                 // tick 5
  tracer.end(phase);                                       // tick 6
  tracer.end(job);                                         // tick 7

  std::ostringstream out;
  tracer.write_chrome_trace(out);

  const std::string expected =
      "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"
      "{\"name\":\"wc\",\"cat\":\"job\",\"ph\":\"X\",\"ts\":1.000,"
      "\"dur\":6.000,\"pid\":0,\"tid\":0,\"args\":{\"job\":\"wc\","
      "\"task_kind\":\"none\",\"task\":-1,\"attempt\":-1,\"node\":0,"
      "\"peer\":0,\"bytes\":0,\"records\":0,\"faulted\":false,"
      "\"speculative\":false,\"note\":\"\"}},\n"
      "{\"name\":\"map\",\"cat\":\"phase\",\"ph\":\"X\",\"ts\":2.000,"
      "\"dur\":4.000,\"pid\":0,\"tid\":0,\"args\":{\"job\":\"wc\","
      "\"task_kind\":\"none\",\"task\":-1,\"attempt\":-1,\"node\":0,"
      "\"peer\":0,\"bytes\":0,\"records\":0,\"faulted\":false,"
      "\"speculative\":false,\"note\":\"\"}},\n"
      "{\"name\":\"map 0/0\",\"cat\":\"map-attempt\",\"ph\":\"X\","
      "\"ts\":3.000,\"dur\":2.000,\"pid\":0,\"tid\":1,\"args\":{"
      "\"job\":\"wc\",\"task_kind\":\"map\",\"task\":0,\"attempt\":0,"
      "\"node\":1,\"peer\":1,\"bytes\":128,\"records\":2,"
      "\"faulted\":false,\"speculative\":false,\"note\":\"\"}},\n"
      "{\"name\":\"input-read 0->1\",\"cat\":\"input-read\",\"ph\":\"X\","
      "\"ts\":4.000,\"dur\":0.000,\"pid\":0,\"tid\":1,\"args\":{"
      "\"job\":\"wc\",\"task_kind\":\"map\",\"task\":0,\"attempt\":0,"
      "\"node\":1,\"peer\":0,\"bytes\":64,\"records\":0,"
      "\"faulted\":false,\"speculative\":false,\"note\":"
      "\"recovery-reread\"}}\n"
      "]}\n";
  EXPECT_EQ(out.str(), expected);
  expect_valid_trace(out.str());
}

// Labels with JSON metacharacters must be escaped, never break the export.
TEST(TraceSchemaTest, EscapesMetacharactersInLabelsAndNotes) {
  Tracer tracer(counter_clock());
  const SpanId job = tracer.begin_job("quote\" slash\\ tab\t nl\n");
  tracer.annotate(job, "note with \"quotes\" and \x01 control");
  tracer.end(job);

  std::ostringstream out;
  tracer.write_chrome_trace(out);
  expect_valid_trace(out.str());
  EXPECT_NE(out.str().find("\\u0001"), std::string::npos);
}

}  // namespace
}  // namespace pairmr::mr
