// Chrome trace_event export schema: the JSON is valid, every event carries
// the exact stable field set, timestamps are monotone within each
// (pid, tid) lane, and the export is deterministic — an injected clock and
// one worker thread reproduce it byte-for-byte, including a literal golden
// for a hand-built trace.
#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "mr/cluster.hpp"
#include "mr/context.hpp"
#include "mr/engine.hpp"
#include "mr/trace.hpp"

namespace pairmr::mr {
namespace {

// --- Minimal JSON DOM parser (enough to validate the export) -------------

struct JsonValue {
  enum Kind { kNull, kBool, kNumber, kString, kObject, kArray };
  Kind kind = kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<std::pair<std::string, JsonValue>> object;  // order-preserving
  std::vector<JsonValue> array;

  const JsonValue* find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  // Parses the whole input as one value; fails on trailing garbage.
  bool parse(JsonValue& out) {
    pos_ = 0;
    if (!parse_value(out)) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool parse_literal(const char* lit) {
    const std::size_t n = std::string(lit).size();
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  bool parse_string(std::string& out) {
    if (!consume('"')) return false;
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return false;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'n': out.push_back('\n'); break;
        case 't': out.push_back('\t'); break;
        case 'r': out.push_back('\r'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return false;
          for (int i = 0; i < 4; ++i) {
            if (!std::isxdigit(static_cast<unsigned char>(text_[pos_ + i]))) {
              return false;
            }
          }
          out.push_back('?');  // exact code point irrelevant for the schema
          pos_ += 4;
          break;
        }
        default:
          return false;
      }
    }
    return false;  // unterminated
  }

  bool parse_number(double& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    std::size_t digits = 0;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
      ++digits;
    }
    if (digits == 0) return false;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      std::size_t frac = 0;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
        ++frac;
      }
      if (frac == 0) return false;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      std::size_t exp = 0;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
        ++exp;
      }
      if (exp == 0) return false;
    }
    out = std::stod(text_.substr(start, pos_ - start));
    return true;
  }

  bool parse_value(JsonValue& out) {
    skip_ws();
    if (pos_ >= text_.size()) return false;
    const char c = text_[pos_];
    if (c == '{') {
      ++pos_;
      out.kind = JsonValue::kObject;
      skip_ws();
      if (consume('}')) return true;
      while (true) {
        std::string key;
        skip_ws();
        if (!parse_string(key)) return false;
        if (!consume(':')) return false;
        JsonValue value;
        if (!parse_value(value)) return false;
        out.object.emplace_back(std::move(key), std::move(value));
        if (consume(',')) continue;
        return consume('}');
      }
    }
    if (c == '[') {
      ++pos_;
      out.kind = JsonValue::kArray;
      skip_ws();
      if (consume(']')) return true;
      while (true) {
        JsonValue value;
        if (!parse_value(value)) return false;
        out.array.push_back(std::move(value));
        if (consume(',')) continue;
        return consume(']');
      }
    }
    if (c == '"') {
      out.kind = JsonValue::kString;
      return parse_string(out.str);
    }
    if (c == 't') {
      out.kind = JsonValue::kBool;
      out.boolean = true;
      return parse_literal("true");
    }
    if (c == 'f') {
      out.kind = JsonValue::kBool;
      out.boolean = false;
      return parse_literal("false");
    }
    if (c == 'n') {
      out.kind = JsonValue::kNull;
      return parse_literal("null");
    }
    out.kind = JsonValue::kNumber;
    return parse_number(out.number);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

// --- Test fixtures --------------------------------------------------------

Tracer::Clock counter_clock() {
  auto ticks = std::make_shared<std::atomic<std::uint64_t>>(0);
  return [ticks] {
    return static_cast<double>(ticks->fetch_add(1) + 1) * 1e-6;
  };
}

class TokenizeMapper final : public Mapper {
 public:
  void map(const Bytes& /*key*/, const Bytes& value,
           MapContext& ctx) override {
    std::istringstream is(value);
    std::string word;
    while (is >> word) ctx.emit(word, "1");
  }
};

class SumReducer final : public Reducer {
 public:
  void reduce(const Bytes& key, const std::vector<Bytes>& values,
              ReduceContext& ctx) override {
    std::uint64_t total = 0;
    for (const auto& v : values) total += std::stoull(v);
    ctx.emit(key, std::to_string(total));
  }
};

// Small traced word count; deterministic clock, no faults.
std::string traced_word_count_json(std::uint32_t worker_threads) {
  Cluster cluster({.num_nodes = 2, .worker_threads = worker_threads});
  std::vector<Record> records;
  for (int i = 0; i < 6; ++i) {
    records.push_back(Record{std::to_string(i),
                             "alpha beta gamma w" + std::to_string(i)});
  }
  const auto inputs = cluster.scatter_records("/in", std::move(records));

  Tracer tracer(counter_clock());
  JobSpec spec;
  spec.name = "wordcount";
  spec.input_paths = inputs;
  spec.output_dir = "/out";
  spec.mapper_factory = [] { return std::make_unique<TokenizeMapper>(); };
  spec.reducer_factory = [] { return std::make_unique<SumReducer>(); };
  spec.num_reduce_tasks = 2;
  spec.tracer = &tracer;
  Engine(cluster).run(spec);

  std::ostringstream out;
  tracer.write_chrome_trace(out);
  return out.str();
}

const std::set<std::string>& known_categories() {
  static const std::set<std::string> kCategories{
      "job",           "phase",        "map-attempt", "map-exec",
      "spill",         "combine",      "reduce-attempt",
      "shuffle-fetch", "reduce-exec",  "input-read",
      "cache-broadcast", "output-write"};
  return kCategories;
}

// Asserts the full schema on an export: top-level shape, per-event stable
// field set (names and order), arg types, and monotone ts per lane.
void expect_valid_trace(const std::string& json) {
  JsonValue root;
  ASSERT_TRUE(JsonParser(json).parse(root)) << "export is not valid JSON";
  ASSERT_EQ(root.kind, JsonValue::kObject);
  ASSERT_EQ(root.object.size(), 2u);
  EXPECT_EQ(root.object[0].first, "displayTimeUnit");
  EXPECT_EQ(root.object[0].second.str, "ms");
  EXPECT_EQ(root.object[1].first, "traceEvents");
  ASSERT_EQ(root.object[1].second.kind, JsonValue::kArray);

  const std::vector<std::string> kEventKeys{"name", "cat",  "ph",  "ts",
                                            "dur",  "pid",  "tid", "args"};
  const std::vector<std::string> kArgKeys{
      "job",     "task_kind", "task",  "attempt",     "node", "peer",
      "bytes",   "records",   "faulted", "speculative", "note"};

  std::map<std::pair<double, double>, double> last_ts;  // (pid,tid) lane
  for (const JsonValue& event : root.object[1].second.array) {
    ASSERT_EQ(event.kind, JsonValue::kObject);
    ASSERT_EQ(event.object.size(), kEventKeys.size());
    for (std::size_t i = 0; i < kEventKeys.size(); ++i) {
      EXPECT_EQ(event.object[i].first, kEventKeys[i])
          << "unstable event field set";
    }
    EXPECT_EQ(event.find("ph")->str, "X");
    EXPECT_TRUE(known_categories().count(event.find("cat")->str))
        << "unknown category " << event.find("cat")->str;
    const double ts = event.find("ts")->number;
    EXPECT_GE(ts, 0.0);
    EXPECT_GE(event.find("dur")->number, 0.0);

    const JsonValue& args = *event.find("args");
    ASSERT_EQ(args.kind, JsonValue::kObject);
    ASSERT_EQ(args.object.size(), kArgKeys.size());
    for (std::size_t i = 0; i < kArgKeys.size(); ++i) {
      EXPECT_EQ(args.object[i].first, kArgKeys[i])
          << "unstable args field set";
    }
    EXPECT_EQ(args.find("job")->kind, JsonValue::kString);
    EXPECT_EQ(args.find("faulted")->kind, JsonValue::kBool);
    EXPECT_EQ(args.find("speculative")->kind, JsonValue::kBool);
    EXPECT_EQ(args.find("note")->kind, JsonValue::kString);
    EXPECT_EQ(args.find("bytes")->kind, JsonValue::kNumber);

    // task/attempt are -1 exactly when the span is not task-scoped.
    const bool task_scoped = args.find("task_kind")->str != "none";
    EXPECT_EQ(args.find("task")->number >= 0, task_scoped);
    EXPECT_EQ(args.find("attempt")->number >= 0, task_scoped);

    const auto lane = std::make_pair(event.find("pid")->number,
                                     event.find("tid")->number);
    const auto it = last_ts.find(lane);
    if (it != last_ts.end()) {
      EXPECT_GE(ts, it->second) << "ts not monotone within a lane";
    }
    last_ts[lane] = ts;
  }
}

// --- Tests ----------------------------------------------------------------

TEST(TraceSchemaTest, EngineExportSatisfiesSchema) {
  expect_valid_trace(traced_word_count_json(/*worker_threads=*/4));
}

TEST(TraceSchemaTest, ExportIsDeterministicWithInjectedClock) {
  const std::string a = traced_word_count_json(/*worker_threads=*/1);
  const std::string b = traced_word_count_json(/*worker_threads=*/1);
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
  expect_valid_trace(a);
}

// Literal golden for a hand-built trace: pins the exact serialization
// (field order, number formatting, lane sort) so viewer compatibility
// cannot silently drift.
TEST(TraceSchemaTest, HandBuiltTraceMatchesGoldenLiteral) {
  Tracer tracer(counter_clock());
  const SpanId job = tracer.begin_job("wc");               // tick 1
  const SpanId phase = tracer.begin_phase(job, "map");     // tick 2
  const SpanId att =
      tracer.begin_task(phase, TaskKind::kMap, 0, 0, /*node=*/1);  // tick 3
  tracer.record_transfer(att, SpanKind::kInputRead, /*src=*/0, /*dst=*/1,
                         64, "recovery-reread");           // tick 4
  tracer.end(att, 128, 2);                                 // tick 5
  tracer.end(phase);                                       // tick 6
  tracer.end(job);                                         // tick 7

  std::ostringstream out;
  tracer.write_chrome_trace(out);

  const std::string expected =
      "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"
      "{\"name\":\"wc\",\"cat\":\"job\",\"ph\":\"X\",\"ts\":1.000,"
      "\"dur\":6.000,\"pid\":0,\"tid\":0,\"args\":{\"job\":\"wc\","
      "\"task_kind\":\"none\",\"task\":-1,\"attempt\":-1,\"node\":0,"
      "\"peer\":0,\"bytes\":0,\"records\":0,\"faulted\":false,"
      "\"speculative\":false,\"note\":\"\"}},\n"
      "{\"name\":\"map\",\"cat\":\"phase\",\"ph\":\"X\",\"ts\":2.000,"
      "\"dur\":4.000,\"pid\":0,\"tid\":0,\"args\":{\"job\":\"wc\","
      "\"task_kind\":\"none\",\"task\":-1,\"attempt\":-1,\"node\":0,"
      "\"peer\":0,\"bytes\":0,\"records\":0,\"faulted\":false,"
      "\"speculative\":false,\"note\":\"\"}},\n"
      "{\"name\":\"map 0/0\",\"cat\":\"map-attempt\",\"ph\":\"X\","
      "\"ts\":3.000,\"dur\":2.000,\"pid\":0,\"tid\":1,\"args\":{"
      "\"job\":\"wc\",\"task_kind\":\"map\",\"task\":0,\"attempt\":0,"
      "\"node\":1,\"peer\":1,\"bytes\":128,\"records\":2,"
      "\"faulted\":false,\"speculative\":false,\"note\":\"\"}},\n"
      "{\"name\":\"input-read 0->1\",\"cat\":\"input-read\",\"ph\":\"X\","
      "\"ts\":4.000,\"dur\":0.000,\"pid\":0,\"tid\":1,\"args\":{"
      "\"job\":\"wc\",\"task_kind\":\"map\",\"task\":0,\"attempt\":0,"
      "\"node\":1,\"peer\":0,\"bytes\":64,\"records\":0,"
      "\"faulted\":false,\"speculative\":false,\"note\":"
      "\"recovery-reread\"}}\n"
      "]}\n";
  EXPECT_EQ(out.str(), expected);
  expect_valid_trace(out.str());
}

// Labels with JSON metacharacters must be escaped, never break the export.
TEST(TraceSchemaTest, EscapesMetacharactersInLabelsAndNotes) {
  Tracer tracer(counter_clock());
  const SpanId job = tracer.begin_job("quote\" slash\\ tab\t nl\n");
  tracer.annotate(job, "note with \"quotes\" and \x01 control");
  tracer.end(job);

  std::ostringstream out;
  tracer.write_chrome_trace(out);
  expect_valid_trace(out.str());
  EXPECT_NE(out.str().find("\\u0001"), std::string::npos);
}

}  // namespace
}  // namespace pairmr::mr
