// Schema and golden tests for the BENCH_frontier.json document emitted by
// bench/bench_frontier: the exact field set and ordering of every point,
// the golden rendering of a hand-built point, and the frontier facts the
// document is supposed to certify (every scheme on or above the
// Afrati/Ullman bound; quorum == design at exact plane orders).
#include "pairwise/frontier.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "../support/mini_json.hpp"
#include "pairwise/quorum_scheme.hpp"

namespace pairmr {
namespace {

using minijson::JsonParser;
using minijson::JsonValue;

const std::vector<std::string> kPointKeys = {
    "scheme", "params",           "v",           "num_tasks", "reducer_size",
    "replication_rate", "lower_bound", "ratio",     "ok"};

JsonValue parse_or_die(const std::string& json) {
  JsonValue doc;
  JsonParser parser(json);
  EXPECT_TRUE(parser.parse(doc)) << json;
  return doc;
}

TEST(FrontierSchemaTest, SweepDocumentMatchesSchema) {
  const auto points = frontier_sweep({57, 96});
  // Per v: broadcast, block h=4, block h=⌊√v⌋, quorum, design,
  // cyclic-design (both sizes admit it), hierarchical.
  ASSERT_EQ(points.size(), 14u);

  const JsonValue doc = parse_or_die(frontier_to_json(points));
  ASSERT_EQ(doc.kind, JsonValue::kObject);
  ASSERT_EQ(doc.object.size(), 3u);
  EXPECT_EQ(doc.object[0].first, "bench");
  EXPECT_EQ(doc.object[1].first, "points");
  EXPECT_EQ(doc.object[2].first, "passed");

  ASSERT_EQ(doc.object[0].second.kind, JsonValue::kString);
  EXPECT_EQ(doc.object[0].second.str, "frontier");
  ASSERT_EQ(doc.object[2].second.kind, JsonValue::kBool);
  EXPECT_TRUE(doc.object[2].second.boolean);

  const JsonValue& array = doc.object[1].second;
  ASSERT_EQ(array.kind, JsonValue::kArray);
  ASSERT_EQ(array.array.size(), points.size());
  for (std::size_t i = 0; i < array.array.size(); ++i) {
    const JsonValue& point = array.array[i];
    ASSERT_EQ(point.kind, JsonValue::kObject) << "point " << i;
    ASSERT_EQ(point.object.size(), kPointKeys.size()) << "point " << i;
    for (std::size_t k = 0; k < kPointKeys.size(); ++k) {
      EXPECT_EQ(point.object[k].first, kPointKeys[k])
          << "point " << i << " key " << k;
    }
    EXPECT_EQ(point.find("scheme")->kind, JsonValue::kString);
    EXPECT_EQ(point.find("params")->kind, JsonValue::kString);
    EXPECT_EQ(point.find("v")->kind, JsonValue::kNumber);
    EXPECT_EQ(point.find("num_tasks")->kind, JsonValue::kNumber);
    EXPECT_EQ(point.find("reducer_size")->kind, JsonValue::kNumber);
    EXPECT_EQ(point.find("replication_rate")->kind, JsonValue::kNumber);
    EXPECT_EQ(point.find("lower_bound")->kind, JsonValue::kNumber);
    EXPECT_EQ(point.find("ratio")->kind, JsonValue::kNumber);
    EXPECT_EQ(point.find("ok")->kind, JsonValue::kBool);

    // Round-trip the values the bench asserts on. Doubles are rendered
    // at ostream's default 6 significant digits, so compare at that
    // precision.
    EXPECT_EQ(point.find("v")->number,
              static_cast<double>(points[i].v));
    EXPECT_NEAR(point.find("replication_rate")->number,
                points[i].replication_rate,
                1e-4 * (1.0 + points[i].replication_rate));
    EXPECT_TRUE(point.find("ok")->boolean) << points[i].scheme;
    EXPECT_GE(point.find("replication_rate")->number * (1.0 + 1e-5) + 1e-9,
              point.find("lower_bound")->number)
        << points[i].scheme << " v=" << points[i].v;
  }
}

TEST(FrontierSchemaTest, GoldenRenderingOfHandBuiltPoint) {
  FrontierPoint p;
  p.scheme = "quorum";
  p.params = "|D|=8";
  p.v = 57;
  p.num_tasks = 57;
  p.reducer_size = 8;
  p.replication_rate = 8.0;
  p.lower_bound = 8.0;
  p.ratio = 1.0;
  p.ok = true;
  const std::string expected =
      "{\n"
      "  \"bench\": \"frontier\",\n"
      "  \"points\": [\n"
      "    {\"scheme\": \"quorum\", \"params\": \"|D|=8\", \"v\": 57,"
      " \"num_tasks\": 57, \"reducer_size\": 8, \"replication_rate\": 8,"
      " \"lower_bound\": 8, \"ratio\": 1, \"ok\": true}\n"
      "  ],\n"
      "  \"passed\": true\n"
      "}\n";
  EXPECT_EQ(frontier_to_json({p}), expected);
}

TEST(FrontierSchemaTest, QuorumSitsOnTheBoundAtExactPlaneOrders) {
  // v = 57 = 7²+7+1: the difference cover degrades to the planar
  // difference set, so quorum and design occupy the same frontier point —
  // reducer size 8, replication 8, exactly on (v−1)/(q−1) = 56/7 = 8.
  const auto points = frontier_sweep({57});
  const FrontierPoint* quorum = nullptr;
  const FrontierPoint* design = nullptr;
  for (const auto& p : points) {
    if (p.scheme == "quorum") quorum = &p;
    if (p.scheme == "design") design = &p;
  }
  ASSERT_NE(quorum, nullptr);
  ASSERT_NE(design, nullptr);
  EXPECT_EQ(quorum->reducer_size, 8u);
  EXPECT_EQ(quorum->reducer_size, design->reducer_size);
  EXPECT_DOUBLE_EQ(quorum->replication_rate, 8.0);
  EXPECT_DOUBLE_EQ(quorum->replication_rate, design->replication_rate);
  EXPECT_DOUBLE_EQ(quorum->lower_bound, 8.0);
  EXPECT_DOUBLE_EQ(quorum->ratio, 1.0);
  EXPECT_TRUE(quorum->ok);
}

TEST(FrontierSchemaTest, FrontierPointMeasuresTheQuorumCover) {
  const QuorumScheme scheme(30);
  const FrontierPoint p = frontier_point(scheme, "|D|=...");
  EXPECT_EQ(p.scheme, "quorum");
  EXPECT_EQ(p.v, 30u);
  EXPECT_EQ(p.num_tasks, 30u);
  // Perfect balance: the max working set IS the cover size, and the
  // measured replication rate equals it exactly.
  EXPECT_EQ(p.reducer_size, scheme.cover().size());
  EXPECT_DOUBLE_EQ(p.replication_rate,
                   static_cast<double>(scheme.cover().size()));
  EXPECT_TRUE(p.ok);
}

TEST(FrontierSchemaTest, PassedReflectsEveryPointFlag) {
  EXPECT_TRUE(frontier_all_ok({}));
  auto points = frontier_sweep({57});
  EXPECT_TRUE(frontier_all_ok(points));
  points.front().ok = false;
  EXPECT_FALSE(frontier_all_ok(points));
  const JsonValue doc = parse_or_die(frontier_to_json(points));
  EXPECT_FALSE(doc.find("passed")->boolean);
}

}  // namespace
}  // namespace pairmr
