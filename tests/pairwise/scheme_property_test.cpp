// Cross-scheme property tests: every DistributionScheme implementation
// must satisfy the paper's two formal demands (§5) —
//   (a) balanced work, and
//   (b) every unordered pair evaluated exactly once —
// plus the structural invariants the pipeline relies on. Parameterized
// over scheme factories × dataset sizes, including awkward non-dividing
// and truncated-design cases.
#include <gtest/gtest.h>

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>

#include "common/intmath.hpp"
#include "pairwise/block_scheme.hpp"
#include "pairwise/broadcast_scheme.hpp"
#include "pairwise/cyclic_design_scheme.hpp"
#include "pairwise/design_scheme.hpp"
#include "pairwise/quorum_scheme.hpp"
#include "pairwise/scheme.hpp"

namespace pairmr {
namespace {

struct SchemeCase {
  std::string label;
  std::function<std::unique_ptr<DistributionScheme>()> make;
  std::uint64_t v;
};

std::vector<SchemeCase> all_cases() {
  std::vector<SchemeCase> cases;
  for (const std::uint64_t v : {2ull, 7ull, 10ull, 23ull, 57ull, 64ull}) {
    for (const std::uint64_t p : {1ull, 3ull, 8ull}) {
      cases.push_back({"broadcast_v" + std::to_string(v) + "_p" +
                           std::to_string(p),
                       [v, p] { return std::make_unique<BroadcastScheme>(v, p); },
                       v});
    }
    for (const std::uint64_t h : {1ull, 2ull, 4ull, 7ull}) {
      if (h > v) continue;
      cases.push_back({"block_v" + std::to_string(v) + "_h" +
                           std::to_string(h),
                       [v, h] { return std::make_unique<BlockScheme>(v, h); },
                       v});
    }
    cases.push_back(
        {"design_v" + std::to_string(v),
         [v] { return std::make_unique<DesignScheme>(v); }, v});
    cases.push_back({"designPP_v" + std::to_string(v),
                     [v] {
                       return std::make_unique<DesignScheme>(
                           v, PlaneConstruction::kPG2PrimePower);
                     },
                     v});
    cases.push_back({"cyclic_v" + std::to_string(v),
                     [v] { return std::make_unique<CyclicDesignScheme>(v); },
                     v});
    cases.push_back({"quorum_v" + std::to_string(v),
                     [v] { return std::make_unique<QuorumScheme>(v); }, v});
  }
  // Quorum has no plane-order lattice: exercise non-prime-power sizes the
  // design constructions can only reach by truncation.
  for (const std::uint64_t v : {6ull, 12ull, 50ull, 97ull, 200ull}) {
    cases.push_back({"quorum_v" + std::to_string(v),
                     [v] { return std::make_unique<QuorumScheme>(v); }, v});
  }
  return cases;
}

class SchemeProperties : public ::testing::TestWithParam<SchemeCase> {};

TEST_P(SchemeProperties, EveryPairExactlyOnce) {
  const auto scheme = GetParam().make();
  const std::uint64_t v = GetParam().v;
  std::set<std::pair<ElementId, ElementId>> seen;
  for (TaskId t = 0; t < scheme->num_tasks(); ++t) {
    for (const auto [lo, hi] : scheme->pairs_in(t)) {
      ASSERT_LT(lo, hi);
      ASSERT_LT(hi, v);
      const bool inserted = seen.insert({lo, hi}).second;
      EXPECT_TRUE(inserted) << "pair {" << lo << "," << hi
                            << "} covered twice (task " << t << ")";
    }
  }
  EXPECT_EQ(seen.size(), pair_count(v));
}

TEST_P(SchemeProperties, PairsStayInsideWorkingSets) {
  const auto scheme = GetParam().make();
  for (TaskId t = 0; t < scheme->num_tasks(); ++t) {
    const auto ws = scheme->working_set(t);
    const std::set<ElementId> members(ws.begin(), ws.end());
    for (const auto [lo, hi] : scheme->pairs_in(t)) {
      EXPECT_TRUE(members.contains(lo));
      EXPECT_TRUE(members.contains(hi));
    }
  }
}

TEST_P(SchemeProperties, SubsetsOfMatchesWorkingSets) {
  // getSubsets (map side) and working sets (reduce side) must be two
  // views of the same relation, or the pipeline loses elements.
  const auto scheme = GetParam().make();
  const std::uint64_t v = GetParam().v;
  std::map<TaskId, std::set<ElementId>> from_subsets;
  for (ElementId id = 0; id < v; ++id) {
    const auto tasks = scheme->subsets_of(id);
    EXPECT_TRUE(std::is_sorted(tasks.begin(), tasks.end()));
    EXPECT_GE(tasks.size(), 1u) << "element " << id << " unreachable";
    for (const TaskId t : tasks) from_subsets[t].insert(id);
  }
  for (TaskId t = 0; t < scheme->num_tasks(); ++t) {
    const auto ws = scheme->working_set(t);
    const std::set<ElementId> members(ws.begin(), ws.end());
    EXPECT_EQ(members.size(), ws.size()) << "duplicate in working set";
    const auto it = from_subsets.find(t);
    const std::set<ElementId> empty;
    EXPECT_EQ(members, it == from_subsets.end() ? empty : it->second)
        << "task " << t;
  }
}

TEST_P(SchemeProperties, StreamingIterationMatchesMaterialized) {
  // for_each_pair must visit exactly pairs_in's pairs, in order — the
  // pipeline consumes the streaming form.
  const auto scheme = GetParam().make();
  for (TaskId t = 0; t < scheme->num_tasks(); ++t) {
    const auto materialized = scheme->pairs_in(t);
    std::vector<ElementPair> streamed;
    scheme->for_each_pair(t, [&streamed](ElementPair pair) {
      streamed.push_back(pair);
    });
    EXPECT_EQ(streamed, materialized) << "task " << t;
  }
}

TEST_P(SchemeProperties, TotalPairsShortcutAgreesWithEnumeration) {
  const auto scheme = GetParam().make();
  std::uint64_t enumerated = 0;
  for (TaskId t = 0; t < scheme->num_tasks(); ++t) {
    enumerated += scheme->pairs_in(t).size();
  }
  EXPECT_EQ(scheme->total_pairs(), enumerated);
}

TEST_P(SchemeProperties, WorkBalancedWithinTable1Bound) {
  // The paper's demand (a): working sets "similar in size" and the
  // per-task evaluations within the Table 1 per-task bound.
  const auto scheme = GetParam().make();
  const double bound = scheme->metrics().evaluations_per_task;
  for (TaskId t = 0; t < scheme->num_tasks(); ++t) {
    EXPECT_LE(static_cast<double>(scheme->pairs_in(t).size()), bound + 0.5)
        << "task " << t << " overloaded";
  }
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, SchemeProperties,
                         ::testing::ValuesIn(all_cases()),
                         [](const auto& info) { return info.param.label; });

}  // namespace
}  // namespace pairmr
