// Boundary conditions of the pipeline: minimal datasets, single-node
// clusters, empty payloads, error paths, and option combinations.
#include <gtest/gtest.h>

#include "../support/run_pairwise.hpp"

#include <memory>

#include "common/check.hpp"
#include "common/serde.hpp"
#include "pairwise/block_scheme.hpp"
#include "pairwise/broadcast_scheme.hpp"
#include "pairwise/dataset.hpp"
#include "pairwise/design_scheme.hpp"
#include "pairwise/pipeline.hpp"
#include "pairwise/simple.hpp"
#include "workloads/kernels.hpp"

namespace pairmr {
namespace {

PairwiseJob len_job() {
  PairwiseJob job;
  job.compute = [](const Element& a, const Element& b) {
    return workloads::encode_result(
        static_cast<double>(a.payload.size() + b.payload.size()));
  };
  return job;
}

TEST(EdgeCaseTest, TwoElementsAllSchemes) {
  // The smallest legal dataset: one pair.
  const std::vector<std::string> payloads = {"x", "yy"};
  for (int kind = 0; kind < 3; ++kind) {
    mr::Cluster cluster({.num_nodes = 2, .worker_threads = 1});
    const auto inputs = write_dataset(cluster, "/data", payloads);
    std::unique_ptr<DistributionScheme> scheme;
    if (kind == 0) scheme = std::make_unique<BroadcastScheme>(2, 3);
    if (kind == 1) scheme = std::make_unique<BlockScheme>(2, 1);
    if (kind == 2) scheme = std::make_unique<DesignScheme>(2);
    const RunReport stats =
        pairmr::testing::run_two_job(cluster, inputs, *scheme, len_job());
    EXPECT_EQ(stats.evaluations, 1u) << scheme->name();
    const auto elements = read_elements(cluster, stats.output_dir);
    ASSERT_EQ(elements.size(), 2u);
    EXPECT_DOUBLE_EQ(
        workloads::decode_result(elements[0].results[0].result), 3.0);
  }
}

TEST(EdgeCaseTest, DegenerateDatasetsAreRejected) {
  // v ∈ {0, 1}: no pairs exist; every scheme and the simple API refuse.
  for (const std::uint64_t v : {0u, 1u}) {
    EXPECT_THROW(BroadcastScheme(v, 1), PreconditionError) << "v=" << v;
    EXPECT_THROW(BlockScheme(v, 1), PreconditionError) << "v=" << v;
    EXPECT_THROW(DesignScheme{v}, PreconditionError) << "v=" << v;
  }
  EXPECT_THROW(compute_all_pairs({}, len_job()), PreconditionError);
  EXPECT_THROW(compute_all_pairs({"solo"}, len_job()), PreconditionError);
}

TEST(EdgeCaseTest, TinyDatasetsThroughSimpleApi) {
  // v = 2 and v = 3 through each scheme kind end-to-end.
  for (const std::uint64_t v : {2u, 3u}) {
    std::vector<std::string> payloads;
    for (std::uint64_t i = 0; i < v; ++i) {
      payloads.push_back(std::string(i + 1, 'a'));
    }
    for (const SchemeKind kind :
         {SchemeKind::kBroadcast, SchemeKind::kBlock, SchemeKind::kDesign}) {
      SimpleOptions options;
      options.cluster = {.num_nodes = 2, .worker_threads = 1};
      options.scheme = kind;
      const auto elements = compute_all_pairs(payloads, len_job(), options);
      ASSERT_EQ(elements.size(), v);
      for (const auto& e : elements) {
        EXPECT_EQ(e.results.size(), v - 1)
            << "v=" << v << " kind=" << static_cast<int>(kind);
      }
    }
  }
}

TEST(EdgeCaseTest, BlockFactorExtremes) {
  // h = 1 degenerates to a single task holding every pair; h = v is the
  // other legal extreme. Both must still enumerate all pairs exactly once.
  const std::vector<std::string> payloads = {"a", "bb", "ccc", "dddd",
                                             "eeeee"};
  for (const std::uint64_t h : {1u, 5u}) {
    mr::Cluster cluster({.num_nodes = 2, .worker_threads = 2});
    const auto inputs = write_dataset(cluster, "/data", payloads);
    const BlockScheme scheme(5, h);
    if (h == 1) {
      EXPECT_EQ(scheme.num_tasks(), 1u);
    }
    const RunReport stats =
        pairmr::testing::run_two_job(cluster, inputs, scheme, len_job());
    EXPECT_EQ(stats.evaluations, 10u) << "h=" << h;
    if (h == 1) {
      // One working set containing the whole dataset, no replication.
      EXPECT_DOUBLE_EQ(stats.replication_factor, 1.0);
      EXPECT_EQ(stats.max_working_set_records, 5u);
    }
    const auto elements = read_elements(cluster, stats.output_dir);
    ASSERT_EQ(elements.size(), 5u);
    for (const auto& e : elements) EXPECT_EQ(e.results.size(), 4u);
  }
}

TEST(EdgeCaseTest, DesignPlaneOrderAtBoundaries) {
  // v = q² + q + 1 exactly: the plane is used untruncated.
  EXPECT_EQ(DesignScheme(7).plane_order(), 2u);  // 2² + 2 + 1 = 7
  // One past the boundary forces the next order up.
  EXPECT_EQ(DesignScheme(8).plane_order(), 3u);  // 3² + 3 + 1 = 13 ≥ 8
  // Prime-power construction admits q = 8 = 2³ where the prime-only
  // Theorem 2 construction must jump to q = 11.
  EXPECT_EQ(DesignScheme(73, PlaneConstruction::kPG2PrimePower).plane_order(),
            8u);  // 8² + 8 + 1 = 73
  EXPECT_EQ(DesignScheme(73, PlaneConstruction::kTheorem2Prime).plane_order(),
            11u);

  // The exact-boundary plane runs end-to-end and covers each pair once.
  const std::vector<std::string> payloads(7, "p");
  mr::Cluster cluster({.num_nodes = 2, .worker_threads = 2});
  const auto inputs = write_dataset(cluster, "/data", payloads);
  const DesignScheme scheme(7);
  const RunReport stats =
      pairmr::testing::run_two_job(cluster, inputs, scheme, len_job());
  EXPECT_EQ(stats.evaluations, 21u);
  for (const auto& e : read_elements(cluster, stats.output_dir)) {
    EXPECT_EQ(e.results.size(), 6u);
  }
}

TEST(EdgeCaseTest, SingleNodeCluster) {
  const std::vector<std::string> payloads = {"a", "bb", "ccc", "dddd"};
  mr::Cluster cluster({.num_nodes = 1, .worker_threads = 1});
  const auto inputs = write_dataset(cluster, "/data", payloads);
  const BlockScheme scheme(4, 2);
  const RunReport stats =
      pairmr::testing::run_two_job(cluster, inputs, scheme, len_job());
  EXPECT_EQ(stats.evaluations, 6u);
  // Everything local: no remote shuffle possible on one node.
  EXPECT_EQ(stats.shuffle_remote_bytes, 0u);
}

TEST(EdgeCaseTest, EmptyPayloadsAreLegal) {
  const std::vector<std::string> payloads = {"", "", ""};
  mr::Cluster cluster({.num_nodes = 2, .worker_threads = 1});
  const auto inputs = write_dataset(cluster, "/data", payloads);
  const DesignScheme scheme(3);
  const RunReport stats =
      pairmr::testing::run_two_job(cluster, inputs, scheme, len_job());
  const auto elements = read_elements(cluster, stats.output_dir);
  ASSERT_EQ(elements.size(), 3u);
  for (const auto& e : elements) {
    EXPECT_TRUE(e.payload.empty());
    EXPECT_EQ(e.results.size(), 2u);
  }
}

TEST(EdgeCaseTest, BroadcastOneJobRejectsNonDenseIds) {
  mr::Cluster cluster({.num_nodes = 2, .worker_threads = 1});
  // Ids 0 and 5: not dense.
  cluster.dfs().write_file("/data/bad", 0,
                           {{encode_u64_key(0), "a"},
                            {encode_u64_key(5), "b"}});
  EXPECT_THROW(
      pairmr::testing::run_broadcast(cluster, {"/data/bad"}, 2, 2, len_job()),
      PreconditionError);
}

TEST(EdgeCaseTest, PruneEverythingStillKeepsElements) {
  const std::vector<std::string> payloads = {"a", "bb", "ccc"};
  mr::Cluster cluster({.num_nodes = 2, .worker_threads = 1});
  const auto inputs = write_dataset(cluster, "/data", payloads);
  PairwiseJob job = len_job();
  job.keep = [](const Element&, const Element&, std::string_view) {
    return false;  // drop every result
  };
  const BlockScheme scheme(3, 2);
  const RunReport stats = pairmr::testing::run_two_job(cluster, inputs, scheme, job);
  EXPECT_EQ(stats.results_kept, 0u);
  const auto elements = read_elements(cluster, stats.output_dir);
  ASSERT_EQ(elements.size(), 3u);  // elements survive with empty results
  for (const auto& e : elements) EXPECT_TRUE(e.results.empty());
}

TEST(EdgeCaseTest, AggregationCombinerPreservesResults) {
  const std::vector<std::string> payloads = {"a", "bb", "ccc", "dddd",
                                             "eeeee", "f"};
  std::vector<std::vector<Element>> outputs;
  for (const bool combiner : {false, true}) {
    mr::Cluster cluster({.num_nodes = 3, .worker_threads = 2});
    const auto inputs = write_dataset(cluster, "/data", payloads);
    const BroadcastScheme scheme(6, 4);
    PairwiseOptions options;
    options.aggregation_combiner = combiner;
    const RunReport stats =
        pairmr::testing::run_two_job(cluster, inputs, scheme, len_job(), options);
    outputs.push_back(read_elements(cluster, stats.output_dir));
  }
  EXPECT_EQ(outputs[0], outputs[1]);
}

TEST(EdgeCaseTest, WorkDirIsReusableAcrossRuns) {
  const std::vector<std::string> payloads = {"a", "bb", "ccc"};
  mr::Cluster cluster({.num_nodes = 2, .worker_threads = 1});
  const auto inputs = write_dataset(cluster, "/data", payloads);
  const BlockScheme scheme(3, 2);
  // Same work_dir twice: the pipeline must clear stale outputs itself.
  const RunReport first =
      pairmr::testing::run_two_job(cluster, inputs, scheme, len_job());
  const RunReport second =
      pairmr::testing::run_two_job(cluster, inputs, scheme, len_job());
  EXPECT_EQ(read_elements(cluster, first.output_dir),
            read_elements(cluster, second.output_dir));
}

TEST(EdgeCaseTest, NonSymmetricWithPruning) {
  const std::vector<std::string> payloads = {"a", "bb", "ccc", "dddd"};
  mr::Cluster cluster({.num_nodes = 2, .worker_threads = 1});
  const auto inputs = write_dataset(cluster, "/data", payloads);
  PairwiseJob job;
  job.symmetry = Symmetry::kNonSymmetric;
  // comp(a,b) = |a| (directional); keep only results > 1.
  job.compute = [](const Element& a, const Element&) {
    return workloads::encode_result(static_cast<double>(a.payload.size()));
  };
  job.keep = workloads::keep_above(1.5);
  const BlockScheme scheme(4, 2);
  const RunReport stats = pairmr::testing::run_two_job(cluster, inputs, scheme, job);
  EXPECT_EQ(stats.evaluations, 12u);  // both directions of 6 pairs
  for (const Element& e : read_elements(cluster, stats.output_dir)) {
    // Element 0 ("a", length 1) keeps nothing; others keep all 3.
    EXPECT_EQ(e.results.size(), e.id == 0 ? 0u : 3u);
  }
}

// A scheme whose pair relation references an element it never routed to
// the task. The compute reducer must catch the inconsistency — the
// "working set is missing a pair member" invariant — rather than compute
// garbage, regardless of whether the lookup index is a hash map (seed) or
// the dense sorted vector (current).
class BrokenScheme final : public DistributionScheme {
 public:
  std::string name() const override { return "broken"; }
  std::uint64_t num_elements() const override { return 3; }
  std::uint64_t num_tasks() const override { return 1; }
  std::vector<TaskId> subsets_of(ElementId id) const override {
    // Element 2 is never shipped to task 0...
    return id == 2 ? std::vector<TaskId>{} : std::vector<TaskId>{0};
  }
  std::vector<ElementPair> pairs_in(TaskId) const override {
    // ...yet the pair relation demands it.
    return {{0, 1}, {1, 2}};
  }
  SchemeMetrics metrics() const override { return {.scheme = "broken"}; }
};

TEST(EdgeCaseTest, MissingPairMemberIsDetected) {
  mr::Cluster cluster({.num_nodes = 2, .worker_threads = 1});
  const auto inputs = write_dataset(cluster, "/data", {"a", "bb", "ccc"});
  const BrokenScheme scheme;
  EXPECT_THROW(pairmr::testing::run_two_job(cluster, inputs, scheme, len_job()),
               InternalError);
}

}  // namespace
}  // namespace pairmr
