#include "pairwise/aggregate.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace pairmr {
namespace {

Element copy_with(ElementId id, std::string payload,
                  std::vector<ResultEntry> results) {
  Element e;
  e.id = id;
  e.payload = std::move(payload);
  e.results = std::move(results);
  return e;
}

TEST(MergeCopiesTest, ConcatenatesAndSortsByPartner) {
  const Element merged = merge_copies({
      copy_with(5, "data", {{9, "r9"}, {2, "r2"}}),
      copy_with(5, "data", {{7, "r7"}}),
      copy_with(5, "data", {{1, "r1"}}),
  });
  EXPECT_EQ(merged.id, 5u);
  EXPECT_EQ(merged.payload, "data");
  ASSERT_EQ(merged.results.size(), 4u);
  EXPECT_EQ(merged.results[0].other, 1u);
  EXPECT_EQ(merged.results[1].other, 2u);
  EXPECT_EQ(merged.results[2].other, 7u);
  EXPECT_EQ(merged.results[3].other, 9u);
}

TEST(MergeCopiesTest, TakesPayloadFromAnyCarryingCopy) {
  // One-job broadcast partials carry no payload; merging still works.
  const Element merged = merge_copies({
      copy_with(3, "", {{1, "a"}}),
      copy_with(3, "the-payload", {{2, "b"}}),
  });
  EXPECT_EQ(merged.payload, "the-payload");
}

TEST(MergeCopiesTest, SingleCopyPassesThrough) {
  const Element merged = merge_copies({copy_with(1, "x", {{0, "r"}})});
  EXPECT_EQ(merged.id, 1u);
  EXPECT_EQ(merged.results.size(), 1u);
}

TEST(MergeCopiesTest, DuplicatePartnerSignalsDoubleEvaluation) {
  // The exactly-once invariant: the same partner appearing twice means a
  // scheme evaluated one pair in two tasks.
  EXPECT_THROW(merge_copies({
                   copy_with(4, "p", {{8, "first"}}),
                   copy_with(4, "p", {{8, "second"}}),
               }),
               InternalError);
}

TEST(MergeCopiesTest, MixedIdsRejected) {
  EXPECT_THROW(merge_copies({copy_with(1, "a", {}), copy_with(2, "b", {})}),
               InternalError);
}

TEST(MergeCopiesTest, EmptyInputRejected) {
  EXPECT_THROW(merge_copies({}), PreconditionError);
}

}  // namespace
}  // namespace pairmr
