#include "pairwise/cyclic_design_scheme.hpp"

#include <gtest/gtest.h>

#include "../support/run_pairwise.hpp"

#include <set>

#include "common/check.hpp"
#include "common/intmath.hpp"
#include "pairwise/dataset.hpp"
#include "pairwise/design_scheme.hpp"
#include "pairwise/pipeline.hpp"
#include "workloads/kernels.hpp"

namespace pairmr {
namespace {

class CyclicCoverage : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CyclicCoverage, EveryPairExactlyOnce) {
  const std::uint64_t v = GetParam();
  const CyclicDesignScheme scheme(v);
  std::set<std::pair<ElementId, ElementId>> seen;
  for (TaskId t = 0; t < scheme.num_tasks(); ++t) {
    for (const auto [lo, hi] : scheme.pairs_in(t)) {
      EXPECT_TRUE(seen.insert({lo, hi}).second);
    }
  }
  EXPECT_EQ(seen.size(), pair_count(v));
}

// Exact plane sizes, truncated sizes, prime and prime-power orders.
INSTANTIATE_TEST_SUITE_P(Sizes, CyclicCoverage,
                         ::testing::Values(2, 7, 13, 14, 21, 40, 57, 100,
                                           133, 200),
                         [](const auto& info) {
                           return "v" + std::to_string(info.param);
                         });

TEST(CyclicDesignSchemeTest, MembershipIsOqArithmetic) {
  const CyclicDesignScheme scheme(100);
  // q+1 translates per element, filtered to active blocks.
  for (ElementId id = 0; id < 100; ++id) {
    const auto tasks = scheme.subsets_of(id);
    EXPECT_LE(tasks.size(), scheme.plane_order() + 1);
    EXPECT_GE(tasks.size(), 1u);
    for (const TaskId t : tasks) {
      const auto ws = scheme.working_set(t);
      EXPECT_TRUE(std::binary_search(ws.begin(), ws.end(), id));
    }
  }
}

TEST(CyclicDesignSchemeTest, AgreesWithExplicitDesignTotals) {
  for (const std::uint64_t v : {31ull, 64ull}) {
    const CyclicDesignScheme cyclic(v);
    const DesignScheme explicit_scheme(v,
                                       PlaneConstruction::kPG2PrimePower);
    EXPECT_EQ(cyclic.plane_order(), explicit_scheme.plane_order());
    EXPECT_EQ(cyclic.total_pairs(), explicit_scheme.total_pairs());
  }
}

TEST(CyclicDesignSchemeTest, PipelineEndToEnd) {
  const std::uint64_t v = 19;
  std::vector<std::string> payloads;
  for (std::uint64_t i = 0; i < v; ++i) {
    payloads.push_back(std::string(3 + i % 5, 'x'));
  }
  mr::Cluster cluster({.num_nodes = 3, .worker_threads = 2});
  const auto inputs = write_dataset(cluster, "/data", payloads);
  const CyclicDesignScheme scheme(v);

  PairwiseJob job;
  job.compute = workloads::edit_distance_kernel();
  const RunReport stats = pairmr::testing::run_two_job(cluster, inputs, scheme, job);
  EXPECT_EQ(stats.evaluations, pair_count(v));
  for (const Element& e : read_elements(cluster, stats.output_dir)) {
    EXPECT_EQ(e.results.size(), v - 1);
  }
}

TEST(CyclicDesignSchemeTest, TooLargeVThrows) {
  EXPECT_THROW(CyclicDesignScheme(2000), PreconditionError);
  EXPECT_THROW(CyclicDesignScheme(1), PreconditionError);
}

}  // namespace
}  // namespace pairmr
