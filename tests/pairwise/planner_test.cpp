#include "pairwise/planner.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "common/intmath.hpp"
#include "common/units.hpp"
#include "pairwise/block_scheme.hpp"
#include "pairwise/broadcast_scheme.hpp"

namespace pairmr {
namespace {

constexpr Limits kPaperLimits{
    .max_working_set_bytes = 200 * kMiB,
    .max_intermediate_bytes = kTiB,
};

PlanRequest request(std::uint64_t v, std::uint64_t s, std::uint64_t n,
                    Limits limits = kPaperLimits) {
  return PlanRequest{.v = v, .element_bytes = s, .num_nodes = n,
                     .limits = limits};
}

TEST(PlannerTest, SmallDatasetPicksBroadcast) {
  // 1000 × 100 KiB ≈ 98 MiB < 200 MiB working-set limit.
  const Plan plan = plan_scheme(request(1000, 100 * kKiB, 8));
  EXPECT_TRUE(plan.feasible);
  EXPECT_EQ(plan.kind, SchemeKind::kBroadcast);
  EXPECT_EQ(plan.broadcast_tasks, 8u);
  EXPECT_TRUE(plan.broadcast_feasible);
}

TEST(PlannerTest, MediumDatasetPicksBlock) {
  // 40,000 × 100 KiB ≈ 3.8 GiB: too big for memory, valid h exists.
  const Plan plan = plan_scheme(request(40000, 100 * kKiB, 8));
  EXPECT_TRUE(plan.feasible);
  EXPECT_EQ(plan.kind, SchemeKind::kBlock);
  EXPECT_FALSE(plan.broadcast_feasible);
  EXPECT_TRUE(plan.block_feasible);
  EXPECT_GE(plan.block_h, plan.block_h_bounds.lo);
  EXPECT_LE(plan.block_h, plan.block_h_bounds.hi);
  // h must give at least n tasks.
  EXPECT_GE(triangular(plan.block_h), 8u);
}

TEST(PlannerTest, HugeDatasetFallsBackToDesign) {
  // 6000 × 2 MiB ≈ 11.7 GiB exceeds the block feasibility limit (10 GiB
  // under the paper's limits), but design fits: working set (√v+1)·s ≈
  // 156 MiB < 200 MiB and intermediate v^1.5·s ≈ 0.9 TiB < 1 TiB.
  const Plan plan = plan_scheme(request(6000, 2 * kMiB, 8));
  EXPECT_FALSE(plan.broadcast_feasible);
  EXPECT_FALSE(plan.block_feasible);
  // Quorum budgets 2(√v+1)·s ≈ 312 MiB of working set — over the 200 MiB
  // limit — so the tight-storage fallback is the design scheme.
  EXPECT_FALSE(plan.quorum_feasible);
  EXPECT_TRUE(plan.design_feasible);
  EXPECT_TRUE(plan.feasible);
  EXPECT_EQ(plan.kind, SchemeKind::kDesign);
}

TEST(PlannerTest, ManyNodesPickQuorumOverBlock) {
  // 100 × 1 MiB on 400 nodes with a 60 MiB working-set limit: broadcast
  // does not fit, and block must inflate to h = 28 (triangular(28) = 406
  // >= n) to occupy the nodes — replication 28. The quorum cover budget
  // is 2(√100+1) = 22 < 28, so cyclic quorums ship less data at exactly
  // v = 100 perfectly balanced tasks.
  const Limits limits{.max_working_set_bytes = 60 * kMiB,
                      .max_intermediate_bytes = 100 * kGiB};
  const Plan plan = plan_scheme(request(100, kMiB, 400, limits));
  EXPECT_FALSE(plan.broadcast_feasible);
  EXPECT_TRUE(plan.block_feasible);
  EXPECT_TRUE(plan.quorum_feasible);
  EXPECT_TRUE(plan.feasible);
  EXPECT_EQ(plan.kind, SchemeKind::kQuorum);
  EXPECT_EQ(plan.predicted.scheme, "quorum");
  EXPECT_EQ(plan.predicted.num_tasks, 100u);
  EXPECT_NE(plan.rationale.find("quorum"), std::string::npos);
}

TEST(PlannerTest, FewNodesKeepBlockOverQuorum) {
  // Same dataset and limits, but only 8 nodes: block's minimal valid h
  // stays far below the quorum cover budget, so block keeps its
  // least-communication win.
  const Limits limits{.max_working_set_bytes = 60 * kMiB,
                      .max_intermediate_bytes = 100 * kGiB};
  const Plan plan = plan_scheme(request(100, kMiB, 8, limits));
  EXPECT_TRUE(plan.block_feasible);
  EXPECT_TRUE(plan.quorum_feasible);
  EXPECT_EQ(plan.kind, SchemeKind::kBlock);
}

TEST(PlannerTest, QuorumPlanRoundTripsThroughMakeScheme) {
  const Limits limits{.max_working_set_bytes = 60 * kMiB,
                      .max_intermediate_bytes = 100 * kGiB};
  const Plan plan = plan_scheme(request(100, kMiB, 400, limits));
  ASSERT_EQ(plan.kind, SchemeKind::kQuorum);
  EXPECT_STREQ(to_string(plan.kind), "quorum");
  const auto scheme = make_scheme(plan, 100);
  EXPECT_EQ(scheme->name(), "quorum");
  EXPECT_EQ(scheme->num_tasks(), 100u);
  EXPECT_EQ(scheme->num_elements(), 100u);
  // The realized cover respects the feasibility budget the planner used.
  EXPECT_LE(scheme->metrics().replication_factor, 22.0);
}

TEST(PlannerTest, NothingFitsRecommendsHierarchical) {
  // Tiny limits: nothing fits.
  const Limits tiny{.max_working_set_bytes = kKiB,
                    .max_intermediate_bytes = 4 * kKiB};
  const Plan plan = plan_scheme(request(10000, kKiB, 4, tiny));
  EXPECT_FALSE(plan.feasible);
  EXPECT_NE(plan.rationale.find("hierarchical"), std::string::npos);
  EXPECT_THROW(make_scheme(plan, 10000), PreconditionError);
}

TEST(PlannerTest, RationaleIsPopulated) {
  const Plan plan = plan_scheme(request(1000, 100 * kKiB, 8));
  EXPECT_FALSE(plan.rationale.empty());
  EXPECT_NE(plan.rationale.find("broadcast"), std::string::npos);
}

TEST(PlannerTest, MakeSchemeInstantiatesPlannedKind) {
  const Plan broadcast = plan_scheme(request(100, kKiB, 4));
  const auto s1 = make_scheme(broadcast, 100);
  EXPECT_EQ(s1->name(), "broadcast");
  EXPECT_EQ(s1->num_tasks(), 4u);

  const Plan block = plan_scheme(request(40000, 100 * kKiB, 8));
  const auto s2 = make_scheme(block, 40000);
  EXPECT_EQ(s2->name(), "block");
  EXPECT_EQ(dynamic_cast<const BlockScheme&>(*s2).blocking_factor(),
            block.block_h);

  const Plan design = plan_scheme(request(6000, 2 * kMiB, 8));
  const auto s3 = make_scheme(design, 1000);
  EXPECT_EQ(s3->name(), "design");
}

TEST(PlannerTest, PredictedMetricsMatchChosenScheme) {
  const Plan plan = plan_scheme(request(40000, 100 * kKiB, 8));
  EXPECT_EQ(plan.predicted.scheme, "block");
  EXPECT_DOUBLE_EQ(plan.predicted.replication_factor,
                   static_cast<double>(plan.block_h));
}

TEST(PlannerTest, InvalidRequestsThrow) {
  EXPECT_THROW(plan_scheme(request(1, kKiB, 4)), PreconditionError);
  EXPECT_THROW(plan_scheme(request(10, 0, 4)), PreconditionError);
  EXPECT_THROW(plan_scheme(request(10, kKiB, 0)), PreconditionError);
}

TEST(PlannerTest, CandidateFractionScalesPredictedEvaluationsOnly) {
  // A similarity join prunes kernel work, not shipping: the plan's
  // feasibility and communication predictions are unchanged, only the
  // predicted evaluations shrink.
  PlanRequest full = request(40000, 100 * kKiB, 8);
  const Plan baseline = plan_scheme(full);
  ASSERT_TRUE(baseline.feasible);

  PlanRequest pruned = full;
  pruned.candidate_fraction = 0.1;
  const Plan plan = plan_scheme(pruned);
  ASSERT_TRUE(plan.feasible);
  EXPECT_EQ(plan.kind, baseline.kind);
  EXPECT_DOUBLE_EQ(plan.predicted.evaluations_per_task,
                   baseline.predicted.evaluations_per_task * 0.1);
  EXPECT_DOUBLE_EQ(plan.predicted.communication_elements,
                   baseline.predicted.communication_elements);
  EXPECT_DOUBLE_EQ(plan.predicted.working_set_elements,
                   baseline.predicted.working_set_elements);
  EXPECT_NE(plan.rationale.find("candidate filter"), std::string::npos)
      << plan.rationale;
}

TEST(PlannerTest, CandidateFractionOneIsTheDefaultNoOp) {
  PlanRequest req = request(40000, 100 * kKiB, 8);
  EXPECT_DOUBLE_EQ(req.candidate_fraction, 1.0);
  const Plan a = plan_scheme(req);
  req.candidate_fraction = 1.0;
  const Plan b = plan_scheme(req);
  EXPECT_EQ(a.rationale, b.rationale);
  EXPECT_DOUBLE_EQ(a.predicted.evaluations_per_task,
                   b.predicted.evaluations_per_task);
}

TEST(PlannerTest, CandidateFractionOutsideUnitIntervalThrows) {
  PlanRequest req = request(40000, 100 * kKiB, 8);
  req.candidate_fraction = -0.1;
  EXPECT_THROW(plan_scheme(req), PreconditionError);
  req.candidate_fraction = 1.5;
  EXPECT_THROW(plan_scheme(req), PreconditionError);
}

}  // namespace
}  // namespace pairmr
