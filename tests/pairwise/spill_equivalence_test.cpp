// Spill-on/off equivalence property: every pipeline driver (two-job,
// one-job broadcast, rounds) over every scheme family, fault-free and
// under fault chaos, must produce aggregated output byte-identical with
// and without a memory budget — even at budgets tiny enough to force
// multi-run spills and multi-pass merges. Spilling changes cost counters
// only, never results (mr/spill.hpp's equivalence argument, checked
// end to end).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "common/rng.hpp"
#include "mr/cluster.hpp"
#include "mr/fault.hpp"
#include "pairwise/block_scheme.hpp"
#include "pairwise/broadcast_scheme.hpp"
#include "pairwise/dataset.hpp"
#include "pairwise/design_scheme.hpp"
#include "pairwise/quorum_scheme.hpp"
#include "pairwise/runner.hpp"
#include "workloads/kernels.hpp"

namespace pairmr {
namespace {

using mr::FaultPlan;
using mr::MemoryBudget;
using mr::TaskKind;

std::vector<std::string> random_payloads(std::uint64_t v,
                                         std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::string> payloads;
  for (std::uint64_t i = 0; i < v; ++i) {
    std::string p;
    const std::uint64_t len = 1 + rng.next_below(32);
    for (std::uint64_t k = 0; k < len; ++k) {
      p.push_back(static_cast<char>('a' + rng.next_below(26)));
    }
    payloads.push_back(std::move(p));
  }
  return payloads;
}

PairwiseJob test_job() {
  PairwiseJob job;
  job.compute = [](const Element& a, const Element& b) {
    const double la = static_cast<double>(a.payload.size());
    const double lb = static_cast<double>(b.payload.size());
    return workloads::encode_result(
        std::abs(la - lb) + 0.001 * static_cast<double>(a.id + b.id));
  };
  return job;
}

FaultPlan make_chaos_plan(std::uint64_t seed) {
  FaultPlan plan(seed);
  plan.with_task_kill_rate(0.2, 2)
      .with_fetch_drop_rate(0.15)
      .with_straggler_rate(0.15)
      .kill_task(TaskKind::kMap, 0)
      .kill_task(TaskKind::kReduce, 0)
      .drop_fetch(/*reduce_task=*/0, /*map_task=*/0)
      .mark_straggler(TaskKind::kMap, 1);
  return plan;
}

// One driver execution on a fresh cluster; returns the aggregated output
// re-encoded to wire bytes plus the report for metering assertions.
struct Execution {
  std::vector<std::string> encoded;
  RunReport report;
};

Execution execute(RunMode mode, const std::string& scheme_label,
                  const std::vector<std::string>& payloads,
                  const MemoryBudget& budget, const FaultPlan* plan) {
  mr::Cluster cluster({.num_nodes = 4, .worker_threads = 2});
  const auto inputs = write_dataset(cluster, "/data", payloads);
  const std::uint64_t v = payloads.size();

  std::unique_ptr<DistributionScheme> scheme;
  RunSpec spec;
  spec.input_paths = inputs;
  spec.job = test_job();
  spec.options.fault_plan = plan;
  spec.options.memory_budget = budget;
  spec.mode = mode;

  if (mode == RunMode::kBroadcast) {
    spec.broadcast = BroadcastTarget{.v = v, .num_tasks = 6};
  } else {
    if (scheme_label == "block") {
      scheme = std::make_unique<BlockScheme>(v, 4);
    } else if (scheme_label == "design") {
      scheme = std::make_unique<DesignScheme>(v);
    } else if (scheme_label == "quorum") {
      scheme = std::make_unique<QuorumScheme>(v);
    } else {
      scheme = std::make_unique<BroadcastScheme>(v, 5);
    }
    spec.scheme = borrow_scheme(*scheme);
    if (mode == RunMode::kRounds) {
      spec.rounds.resize(2);
      for (TaskId t = 0; t < scheme->num_tasks(); ++t) {
        spec.rounds[t % 2].push_back(t);
      }
    }
  }

  Execution ex;
  ex.report = PairwiseRunner(cluster).run(spec);
  for (const Element& e : read_elements(cluster, ex.report.output_dir)) {
    ex.encoded.push_back(encode_element(e));
  }
  return ex;
}

struct Case {
  RunMode mode;
  std::string scheme;
  bool chaos;
};

std::string case_name(const Case& c) {
  std::string name = std::string(to_string(c.mode)) + "_" + c.scheme +
                     (c.chaos ? "_chaos" : "_faultfree");
  for (char& ch : name) {
    if (ch == '-') ch = '_';  // gtest param names are [A-Za-z0-9_]
  }
  return name;
}

class SpillEquivalence : public ::testing::TestWithParam<Case> {};

TEST_P(SpillEquivalence, TinyBudgetOutputMatchesUnbudgeted) {
  const Case& c = GetParam();
  const std::uint64_t seed = 7001 + static_cast<std::uint64_t>(c.mode);
  const auto payloads = random_payloads(18 + seed % 7, seed);
  const FaultPlan plan = make_chaos_plan(seed);
  const FaultPlan* fp = c.chaos ? &plan : nullptr;

  const Execution reference =
      execute(c.mode, c.scheme, payloads, MemoryBudget{}, fp);
  if (std::getenv("PAIRMR_TEST_MEMORY_BUDGET") == nullptr) {
    EXPECT_EQ(reference.report.spill_runs, 0u);
  }

  // Budgets small enough to force several spill runs per map task and,
  // at fan_in=2, multi-pass reduce merges.
  for (const std::uint64_t bytes : {256ull, 1024ull}) {
    const Execution budgeted = execute(
        c.mode, c.scheme, payloads,
        MemoryBudget{.bytes = bytes, .merge_fan_in = 2}, fp);
    ASSERT_EQ(budgeted.encoded.size(), reference.encoded.size())
        << case_name(c) << " budget=" << bytes;
    for (std::size_t i = 0; i < budgeted.encoded.size(); ++i) {
      EXPECT_EQ(budgeted.encoded[i], reference.encoded[i])
          << case_name(c) << " budget=" << bytes << " element " << i;
    }
    // The tracked peak respects the budget whenever no single record
    // exceeds it (the engine enforces the exact invariant internally).
    EXPECT_GT(budgeted.report.max_tracked_bytes, 0u)
        << case_name(c) << " budget=" << bytes;
    if (bytes == 256) {
      // The tight budget actually exercised the spill machinery.
      EXPECT_GT(budgeted.report.spill_runs, 0u) << case_name(c);
      EXPECT_GT(budgeted.report.spill_bytes, 0u) << case_name(c);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    DriversTimesSchemesTimesFaults, SpillEquivalence,
    ::testing::Values(
        Case{RunMode::kTwoJob, "broadcast", false},
        Case{RunMode::kTwoJob, "block", false},
        Case{RunMode::kTwoJob, "design", false},
        Case{RunMode::kTwoJob, "quorum", false},
        Case{RunMode::kTwoJob, "block", true},
        Case{RunMode::kTwoJob, "design", true},
        Case{RunMode::kTwoJob, "quorum", true},
        Case{RunMode::kBroadcast, "onejob", false},
        Case{RunMode::kBroadcast, "onejob", true},
        Case{RunMode::kRounds, "block", false},
        Case{RunMode::kRounds, "block", true}),
    [](const auto& info) { return case_name(info.param); });

}  // namespace
}  // namespace pairmr
