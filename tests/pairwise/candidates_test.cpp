// Unit tests for the similarity-join building blocks (DESIGN.md §14):
// token-set codec + filter math (pairwise/tokenset.hpp), CandidateSet
// membership, and CandidateScheme's filtered pair relations / scaled
// Table 1 metrics. End-to-end candidate generation is covered by
// simjoin_property_test.cpp and similarity_join_equivalence_test.cpp.
#include "pairwise/candidates.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/check.hpp"
#include "pairwise/block_scheme.hpp"
#include "pairwise/cost_model.hpp"
#include "pairwise/tokenset.hpp"

namespace pairmr {
namespace {

// --- tokenset codec ------------------------------------------------------

TEST(TokenSetCodecTest, RoundTripsIncludingEmpty) {
  const std::vector<std::vector<std::uint32_t>> sets = {
      {}, {0}, {1, 2, 3}, {0, 7, 9, 4000000000u}};
  for (const auto& s : sets) {
    EXPECT_EQ(decode_token_set(encode_token_set(s)), s);
  }
}

TEST(TokenSetCodecTest, EncodedSizeIsCountPlusTokens) {
  EXPECT_EQ(encode_token_set({}).size(), 4u);
  EXPECT_EQ(encode_token_set({1, 2, 3}).size(), 4u + 3 * 4u);
}

// --- jaccard -------------------------------------------------------------

TEST(JaccardTest, KnownValues) {
  EXPECT_DOUBLE_EQ(jaccard_similarity({1, 2, 3}, {2, 3, 4}), 0.5);
  EXPECT_DOUBLE_EQ(jaccard_similarity({1, 2}, {1, 2}), 1.0);
  EXPECT_DOUBLE_EQ(jaccard_similarity({1, 2}, {3, 4}), 0.0);
  EXPECT_DOUBLE_EQ(jaccard_similarity({1}, {1, 2, 3, 4}), 0.25);
}

TEST(JaccardTest, EmptySetsAreIdentical) {
  EXPECT_DOUBLE_EQ(jaccard_similarity({}, {}), 1.0);
  EXPECT_DOUBLE_EQ(jaccard_similarity({}, {1}), 0.0);
}

// --- prefix_length -------------------------------------------------------

TEST(PrefixLengthTest, FormulaAndClamps) {
  // p = size − ⌈t·size⌉ + 1.
  EXPECT_EQ(prefix_length(10, 0.5), 6u);   // 10 − 5 + 1
  EXPECT_EQ(prefix_length(10, 0.9), 2u);   // 10 − 9 + 1
  EXPECT_EQ(prefix_length(10, 1.0), 1u);   // identical sets: first token
  EXPECT_EQ(prefix_length(10, 0.75), 3u);  // ⌈7.5⌉ = 8 → 3
  EXPECT_EQ(prefix_length(1, 1.0), 1u);
  EXPECT_EQ(prefix_length(1, 0.5), 1u);
  EXPECT_EQ(prefix_length(0, 0.5), 0u);  // empty set: no prefix tokens
}

TEST(PrefixLengthTest, EpsilonKeepsExactProductsExact) {
  // t·size that lands exactly on an integer must not be rounded up by
  // floating-point noise: 0.5 · 10 = 5 exactly, and (1/3)·3 = 1.
  EXPECT_EQ(prefix_length(10, 0.5), 6u);
  EXPECT_EQ(prefix_length(3, 1.0 / 3.0), 3u);
  EXPECT_EQ(prefix_length(4, 0.25), 4u);
}

TEST(PrefixLengthTest, ThresholdZeroKeepsWholeSet) {
  EXPECT_EQ(prefix_length(7, 0.0), 7u);
}

TEST(PrefixLengthTest, RejectsOutOfRangeThreshold) {
  EXPECT_THROW(prefix_length(10, -0.1), PreconditionError);
  EXPECT_THROW(prefix_length(10, 1.5), PreconditionError);
}

// The defining property: if J(a,b) ≥ t > 0 then the rank-ordered prefixes
// share a token — exhaustively checked over small universes.
TEST(PrefixLengthTest, NoFalseNegativesExhaustiveSmallUniverse) {
  // All subsets of {0..5} as token sets, identity token order.
  std::vector<std::vector<std::uint32_t>> sets;
  for (std::uint32_t mask = 1; mask < 64; ++mask) {
    std::vector<std::uint32_t> s;
    for (std::uint32_t b = 0; b < 6; ++b) {
      if (mask & (1u << b)) s.push_back(b);
    }
    sets.push_back(std::move(s));
  }
  for (const double t : {0.25, 0.5, 0.75, 1.0}) {
    for (std::size_t i = 0; i < sets.size(); ++i) {
      for (std::size_t j = i + 1; j < sets.size(); ++j) {
        if (jaccard_similarity(sets[i], sets[j]) < t) continue;
        const auto pa = prefix_length(sets[i].size(), t);
        const auto pb = prefix_length(sets[j].size(), t);
        bool share = false;
        for (std::size_t x = 0; x < pa && !share; ++x) {
          for (std::size_t y = 0; y < pb && !share; ++y) {
            share = sets[i][x] == sets[j][y];
          }
        }
        EXPECT_TRUE(share) << "t=" << t << " i=" << i << " j=" << j;
      }
    }
  }
}

// --- length_filter_passes ------------------------------------------------

TEST(LengthFilterTest, BoundAndTies) {
  // J ≥ t ⟹ t·max ≤ min. t = 0.5, sizes (2, 4): 0.5·4 = 2 ≤ 2 — a tie
  // must pass (over-inclusive direction).
  EXPECT_TRUE(length_filter_passes(2, 4, 0.5));
  EXPECT_TRUE(length_filter_passes(4, 2, 0.5));  // symmetric
  EXPECT_FALSE(length_filter_passes(1, 4, 0.5));
  EXPECT_TRUE(length_filter_passes(3, 3, 1.0));
  EXPECT_FALSE(length_filter_passes(3, 4, 1.0));
  EXPECT_TRUE(length_filter_passes(1, 100, 0.0));
}

TEST(LengthFilterTest, NeverPrunesAPairAboveThreshold) {
  for (std::uint64_t sa = 0; sa <= 12; ++sa) {
    for (std::uint64_t sb = 0; sb <= 12; ++sb) {
      for (const double t : {0.25, 0.5, 1.0 / 3.0, 0.9, 1.0}) {
        // Best case: the smaller set is contained in the larger one,
        // J = min / max — if even that cannot reach t, pruning is safe.
        const double best =
            (sa == 0 && sb == 0)
                ? 1.0
                : static_cast<double>(std::min(sa, sb)) /
                      static_cast<double>(std::max(sa, sb));
        if (best >= t) {
          EXPECT_TRUE(length_filter_passes(sa, sb, t))
              << sa << "," << sb << " t=" << t;
        }
      }
    }
  }
}

// --- minhash -------------------------------------------------------------

TEST(MinhashTest, DeterministicAndSeedSensitive) {
  const std::vector<std::uint32_t> tokens = {3, 14, 15, 92, 65};
  const auto a = minhash_signature(tokens, 8, 42);
  const auto b = minhash_signature(tokens, 8, 42);
  const auto c = minhash_signature(tokens, 8, 43);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(a.size(), 8u);
}

TEST(MinhashTest, EmptySetGetsSentinelSignature) {
  const auto sig = minhash_signature({}, 4, 42);
  ASSERT_EQ(sig.size(), 4u);
  for (const auto h : sig) EXPECT_EQ(h, kEmptySetMinhash);
}

TEST(MinhashTest, IdenticalSetsCollideSupersetsOverlap) {
  const std::vector<std::uint32_t> x = {1, 2, 3, 4, 5, 6, 7, 8};
  EXPECT_EQ(minhash_signature(x, 16, 7), minhash_signature(x, 16, 7));
  // A superset's minimum per slot is ≤ the subset's: slots where they
  // agree witness the shared tokens.
  auto y = x;
  y.push_back(9);
  const auto sx = minhash_signature(x, 16, 7);
  const auto sy = minhash_signature(y, 16, 7);
  std::size_t agree = 0;
  for (std::size_t i = 0; i < sx.size(); ++i) {
    EXPECT_LE(sy[i], sx[i]);
    agree += sy[i] == sx[i];
  }
  EXPECT_GT(agree, 0u);  // J(x,y) = 8/9 — near-certain agreement somewhere
}

// --- CandidateSet --------------------------------------------------------

TEST(CandidateSetTest, SortsDedupsAndAnswersMembership) {
  const CandidateSet set({{3, 5}, {0, 1}, {3, 5}, {2, 9}});
  EXPECT_EQ(set.size(), 3u);
  EXPECT_FALSE(set.empty());
  EXPECT_TRUE(set.contains({0, 1}));
  EXPECT_TRUE(set.contains({3, 5}));
  EXPECT_TRUE(set.contains({2, 9}));
  EXPECT_FALSE(set.contains({1, 2}));
  EXPECT_FALSE(set.contains({5, 3}));  // unordered pairs are stored lo<hi
  const std::vector<ElementPair> expected = {{0, 1}, {2, 9}, {3, 5}};
  EXPECT_EQ(set.pairs(), expected);
}

TEST(CandidateSetTest, DefaultIsEmpty) {
  const CandidateSet set;
  EXPECT_TRUE(set.empty());
  EXPECT_EQ(set.size(), 0u);
  EXPECT_FALSE(set.contains({0, 1}));
}

TEST(CandidateSetTest, RejectsUnorderedPair) {
  EXPECT_THROW(CandidateSet({{5, 3}}), PreconditionError);
  EXPECT_THROW(CandidateSet({{4, 4}}), PreconditionError);
}

// --- CandidateScheme -----------------------------------------------------

TEST(CandidateSchemeTest, FiltersPairsPreservingBaseOrderAndShipping) {
  const BlockScheme base(10, 3);
  const CandidateSet candidates({{0, 1}, {2, 7}, {4, 9}, {8, 9}});
  const CandidateScheme scheme(base, candidates);

  EXPECT_EQ(scheme.name(), base.name() + "+candidates");
  EXPECT_EQ(scheme.num_elements(), base.num_elements());
  EXPECT_EQ(scheme.num_tasks(), base.num_tasks());
  EXPECT_EQ(scheme.total_pairs(), 4u);

  std::uint64_t filtered_total = 0;
  for (TaskId t = 0; t < scheme.num_tasks(); ++t) {
    // Shipping is untouched.
    EXPECT_EQ(scheme.working_set(t), base.working_set(t));

    // pairs_in is exactly the base relation ∩ candidates, in base order.
    std::vector<ElementPair> expected;
    base.for_each_pair(t, [&](ElementPair p) {
      if (candidates.contains(p)) expected.push_back(p);
    });
    EXPECT_EQ(scheme.pairs_in(t), expected) << "task " << t;

    std::vector<ElementPair> visited;
    scheme.for_each_pair(t, [&](ElementPair p) { visited.push_back(p); });
    EXPECT_EQ(visited, expected) << "task " << t;
    filtered_total += visited.size();
  }
  // Block covers every pair at least once; with replication a candidate
  // may be enumerated by several tasks, never zero.
  EXPECT_GE(filtered_total, scheme.total_pairs());

  for (ElementId id = 0; id < 10; ++id) {
    EXPECT_EQ(scheme.subsets_of(id), base.subsets_of(id));
  }
}

TEST(CandidateSchemeTest, MetricsScaleEvaluationsOnly) {
  const BlockScheme base(10, 3);
  const CandidateSet candidates({{0, 1}, {2, 7}, {4, 9}});  // 3 of C(10,2)=45
  const CandidateScheme scheme(base, candidates);

  const SchemeMetrics b = base.metrics();
  const SchemeMetrics m = scheme.metrics();
  EXPECT_EQ(m.scheme, scheme.name());
  EXPECT_EQ(m.num_tasks, b.num_tasks);
  EXPECT_DOUBLE_EQ(m.communication_elements, b.communication_elements);
  EXPECT_DOUBLE_EQ(m.replication_factor, b.replication_factor);
  EXPECT_DOUBLE_EQ(m.working_set_elements, b.working_set_elements);
  EXPECT_DOUBLE_EQ(m.evaluations_per_task,
                   b.evaluations_per_task * (3.0 / 45.0));
}

TEST(CandidateSchemeTest, EmptyCandidateSetYieldsNoPairs) {
  const BlockScheme base(6, 2);
  const CandidateScheme scheme(base, CandidateSet{});
  EXPECT_EQ(scheme.total_pairs(), 0u);
  for (TaskId t = 0; t < scheme.num_tasks(); ++t) {
    EXPECT_TRUE(scheme.pairs_in(t).empty());
  }
  EXPECT_DOUBLE_EQ(scheme.metrics().evaluations_per_task, 0.0);
}

TEST(CandidateSchemeTest, RejectsOutOfRangePair) {
  const BlockScheme base(6, 2);
  EXPECT_THROW(CandidateScheme(base, CandidateSet({{0, 6}})),
               PreconditionError);
}

// --- with_candidate_fraction ---------------------------------------------

TEST(WithCandidateFractionTest, ScalesEvaluationsRejectsBadFraction) {
  const SchemeMetrics base = block_metrics(10000, 10);
  const SchemeMetrics scaled = with_candidate_fraction(base, 0.25);
  EXPECT_DOUBLE_EQ(scaled.evaluations_per_task,
                   base.evaluations_per_task * 0.25);
  EXPECT_DOUBLE_EQ(scaled.communication_elements, base.communication_elements);
  EXPECT_DOUBLE_EQ(scaled.working_set_elements, base.working_set_elements);
  EXPECT_DOUBLE_EQ(scaled.replication_factor, base.replication_factor);
  EXPECT_THROW(with_candidate_fraction(base, -0.1), PreconditionError);
  EXPECT_THROW(with_candidate_fraction(base, 1.1), PreconditionError);
}

}  // namespace
}  // namespace pairmr
