// Randomized stress tests: seed sweeps across schemes, payload shapes,
// and cluster geometries, validating the pipeline's global invariants on
// every combination — each element ends with exactly v-1 results, the
// stored relation is symmetric, and all schemes agree bit-for-bit.
#include <gtest/gtest.h>

#include "../support/run_pairwise.hpp"

#include <map>
#include <memory>

#include "common/intmath.hpp"
#include "common/rng.hpp"
#include "pairwise/block_scheme.hpp"
#include "pairwise/broadcast_scheme.hpp"
#include "pairwise/dataset.hpp"
#include "pairwise/design_scheme.hpp"
#include "pairwise/pipeline.hpp"
#include "workloads/kernels.hpp"

namespace pairmr {
namespace {

// Variable-size random payloads (1..60 bytes).
std::vector<std::string> random_payloads(std::uint64_t v,
                                         std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::string> out;
  out.reserve(v);
  for (std::uint64_t i = 0; i < v; ++i) {
    Rng item = rng.fork(i);
    std::string p(1 + item.next_below(60), '\0');
    for (auto& c : p) c = static_cast<char>('a' + item.next_below(26));
    out.push_back(std::move(p));
  }
  return out;
}

PairwiseJob edit_job() {
  PairwiseJob job;
  job.compute = workloads::edit_distance_kernel();
  return job;
}

class PipelineSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PipelineSeedSweep, InvariantsHoldAndSchemesAgree) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed * 7919 + 1);
  const std::uint64_t v = 12 + rng.next_below(30);
  const auto payloads = random_payloads(v, seed);

  std::vector<std::unique_ptr<DistributionScheme>> schemes;
  schemes.push_back(
      std::make_unique<BroadcastScheme>(v, 1 + rng.next_below(9)));
  schemes.push_back(
      std::make_unique<BlockScheme>(v, 1 + rng.next_below(v / 2)));
  schemes.push_back(std::make_unique<DesignScheme>(v));

  std::vector<std::vector<Element>> outputs;
  for (const auto& scheme : schemes) {
    mr::Cluster cluster(
        {.num_nodes = static_cast<std::uint32_t>(2 + seed % 4),
         .worker_threads = 2});
    const auto inputs = write_dataset(cluster, "/data", payloads);
    const RunReport stats =
        pairmr::testing::run_two_job(cluster, inputs, *scheme, edit_job());
    ASSERT_EQ(stats.evaluations, pair_count(v)) << scheme->name();
    outputs.push_back(read_elements(cluster, stats.output_dir));
  }

  // Invariants on the first output.
  const auto& elements = outputs.front();
  ASSERT_EQ(elements.size(), v);
  std::map<std::pair<ElementId, ElementId>, double> matrix;
  for (const Element& e : elements) {
    ASSERT_EQ(e.results.size(), v - 1) << "element " << e.id;
    for (const auto& r : e.results) {
      matrix[{e.id, r.other}] = workloads::decode_result(r.result);
    }
  }
  for (ElementId i = 0; i < v; ++i) {
    for (ElementId j = i + 1; j < v; ++j) {
      const auto key_ij = std::make_pair(i, j);
      const auto key_ji = std::make_pair(j, i);
      ASSERT_TRUE(matrix.contains(key_ij));
      // Symmetric storage: both directions hold the same value.
      EXPECT_DOUBLE_EQ(matrix[key_ij], matrix[key_ji]);
      // And it is the actual edit distance.
      const double expected = static_cast<double>(
          workloads::edit_distance(payloads[i], payloads[j]));
      EXPECT_DOUBLE_EQ(matrix[key_ij], expected);
    }
  }

  // Cross-scheme agreement, bit-for-bit.
  EXPECT_EQ(outputs[0], outputs[1]);
  EXPECT_EQ(outputs[0], outputs[2]);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineSeedSweep,
                         ::testing::Range<std::uint64_t>(0, 8),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

TEST(PipelineStressTest, MediumDatasetDesignScheme) {
  // A bigger single run: v = 211 (prime, so q̂ lands close), confirms the
  // pipeline at a scale where the design has ~15-element blocks.
  const std::uint64_t v = 211;
  std::vector<std::string> payloads;
  for (std::uint64_t i = 0; i < v; ++i) {
    payloads.push_back(std::to_string(i * 2654435761u));
  }
  mr::Cluster cluster({.num_nodes = 4, .worker_threads = 0});
  const auto inputs = write_dataset(cluster, "/data", payloads);
  const DesignScheme scheme(v);

  PairwiseJob job;
  job.compute = [](const Element& a, const Element& b) {
    return workloads::encode_result(
        static_cast<double>(a.payload.size() * b.payload.size()));
  };
  const RunReport stats = pairmr::testing::run_two_job(cluster, inputs, scheme, job);
  EXPECT_EQ(stats.evaluations, pair_count(v));
  std::uint64_t total_results = 0;
  for (const Element& e : read_elements(cluster, stats.output_dir)) {
    total_results += e.results.size();
  }
  EXPECT_EQ(total_results, 2 * pair_count(v));
}

TEST(PipelineStressTest, ManySplitsManyReducersDeterministic) {
  const std::uint64_t v = 40;
  const auto payloads = random_payloads(v, 99);
  std::vector<std::vector<Element>> outputs;
  for (const std::uint32_t threads : {1u, 4u}) {
    mr::Cluster cluster({.num_nodes = 5, .worker_threads = threads});
    const auto inputs = write_dataset(cluster, "/data", payloads);
    const BlockScheme scheme(v, 6);
    PairwiseOptions options;
    options.max_records_per_split = 2;  // many map tasks
    options.num_reduce_tasks = 13;      // more reducers than nodes
    const RunReport stats =
        pairmr::testing::run_two_job(cluster, inputs, scheme, edit_job(), options);
    outputs.push_back(read_elements(cluster, stats.output_dir));
  }
  EXPECT_EQ(outputs[0], outputs[1]);
}

}  // namespace
}  // namespace pairmr
