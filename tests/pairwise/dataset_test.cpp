#include "pairwise/dataset.hpp"

#include <gtest/gtest.h>

#include "common/serde.hpp"
#include "pairwise/element.hpp"

namespace pairmr {
namespace {

TEST(DatasetTest, RecordsCarryIndexKeysAndRawPayloads) {
  const auto records = to_dataset_records({"alpha", "beta"});
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(decode_u64_key(records[0].key), 0u);
  EXPECT_EQ(decode_u64_key(records[1].key), 1u);
  EXPECT_EQ(records[0].value, "alpha");
  EXPECT_EQ(records[1].value, "beta");
}

TEST(DatasetTest, WriteDatasetSpreadsAcrossNodes) {
  mr::Cluster cluster({.num_nodes = 3, .worker_threads = 1});
  const std::vector<std::string> payloads(9, "x");
  const auto paths = write_dataset(cluster, "/d", payloads);
  EXPECT_EQ(paths.size(), 3u);
  std::size_t total = 0;
  for (const auto& p : paths) {
    total += cluster.dfs().open(p)->records.size();
  }
  EXPECT_EQ(total, 9u);
}

TEST(DatasetTest, ReadElementsSortsById) {
  mr::Cluster cluster({.num_nodes = 2, .worker_threads = 1});
  // Write element records out of order across two files.
  Element e2{2, "c", {}};
  Element e0{0, "a", {{1, "r"}}};
  Element e1{1, "b", {}};
  cluster.dfs().write_file("/out/part-r-00001", 1,
                           {{encode_u64_key(2), encode_element(e2)}});
  cluster.dfs().write_file("/out/part-r-00000", 0,
                           {{encode_u64_key(0), encode_element(e0)},
                            {encode_u64_key(1), encode_element(e1)}});
  const auto elements = read_elements(cluster, "/out");
  ASSERT_EQ(elements.size(), 3u);
  EXPECT_EQ(elements[0], e0);
  EXPECT_EQ(elements[1], e1);
  EXPECT_EQ(elements[2], e2);
}

TEST(DatasetTest, EmptyPrefixYieldsNoElements) {
  mr::Cluster cluster({.num_nodes = 1, .worker_threads = 1});
  EXPECT_TRUE(read_elements(cluster, "/nothing").empty());
}

}  // namespace
}  // namespace pairmr
