// End-to-end tests of the two-job pipeline (Algorithms 1+2) and the
// one-job broadcast variant: results must equal a serial all-pairs
// reference for every scheme, and the measured Table 1 metrics must match
// the schemes' predictions.
#include "pairwise/pipeline.hpp"

#include <gtest/gtest.h>

#include "../support/run_pairwise.hpp"

#include <cmath>
#include <map>
#include <memory>
#include <string>

#include "common/intmath.hpp"
#include "common/serde.hpp"
#include "pairwise/block_scheme.hpp"
#include "pairwise/broadcast_scheme.hpp"
#include "pairwise/dataset.hpp"
#include "pairwise/design_scheme.hpp"
#include "workloads/generators.hpp"
#include "workloads/kernels.hpp"

namespace pairmr {
namespace {

using workloads::decode_result;
using workloads::encode_result;

// Serial reference: comp = |len(a) - len(b)| + first-byte delta, chosen so
// results depend asymmetrically enough to catch id mix-ups.
std::string ref_compute(const Element& a, const Element& b) {
  const double la = static_cast<double>(a.payload.size());
  const double lb = static_cast<double>(b.payload.size());
  return encode_result(std::abs(la - lb) +
                       0.001 * static_cast<double>(a.id + b.id));
}

std::vector<std::string> make_payloads(std::uint64_t v) {
  std::vector<std::string> payloads;
  for (std::uint64_t i = 0; i < v; ++i) {
    payloads.push_back(std::string(1 + (i * 7) % 23, 'a' + i % 26));
  }
  return payloads;
}

// Full reference result matrix keyed (id, other).
std::map<std::pair<ElementId, ElementId>, double> reference_results(
    const std::vector<std::string>& payloads) {
  std::map<std::pair<ElementId, ElementId>, double> out;
  for (ElementId i = 0; i < payloads.size(); ++i) {
    for (ElementId j = i + 1; j < payloads.size(); ++j) {
      Element a{i, payloads[i], {}};
      Element b{j, payloads[j], {}};
      const double r = decode_result(ref_compute(a, b));
      out[{i, j}] = r;
      out[{j, i}] = r;
    }
  }
  return out;
}

void expect_matches_reference(const std::vector<Element>& elements,
                              const std::vector<std::string>& payloads) {
  const auto ref = reference_results(payloads);
  const std::uint64_t v = payloads.size();
  ASSERT_EQ(elements.size(), v);
  for (ElementId i = 0; i < v; ++i) {
    const Element& e = elements[i];
    EXPECT_EQ(e.id, i);
    EXPECT_EQ(e.payload, payloads[i]);
    ASSERT_EQ(e.results.size(), v - 1) << "element " << i;
    for (const auto& entry : e.results) {
      const auto it = ref.find({i, entry.other});
      ASSERT_NE(it, ref.end());
      EXPECT_DOUBLE_EQ(decode_result(entry.result), it->second)
          << "comp(" << i << "," << entry.other << ")";
    }
  }
}

PairwiseJob ref_job() {
  PairwiseJob job;
  job.compute = ref_compute;
  return job;
}

struct PipelineCase {
  std::string label;
  std::function<std::unique_ptr<DistributionScheme>(std::uint64_t)> make;
};

class PipelineSchemes : public ::testing::TestWithParam<PipelineCase> {};

TEST_P(PipelineSchemes, MatchesSerialReference) {
  const std::uint64_t v = 23;
  const auto payloads = make_payloads(v);
  mr::Cluster cluster({.num_nodes = 4, .worker_threads = 2});
  const auto inputs = write_dataset(cluster, "/data", payloads);
  const auto scheme = GetParam().make(v);

  const RunReport stats =
      pairmr::testing::run_two_job(cluster, inputs, *scheme, ref_job());

  EXPECT_EQ(stats.evaluations, 23u * 22 / 2);
  EXPECT_EQ(stats.results_kept, stats.evaluations);
  expect_matches_reference(read_elements(cluster, stats.output_dir),
                           payloads);
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, PipelineSchemes,
    ::testing::Values(
        PipelineCase{"broadcast",
                     [](std::uint64_t v) {
                       return std::make_unique<BroadcastScheme>(v, 5);
                     }},
        PipelineCase{"block",
                     [](std::uint64_t v) {
                       return std::make_unique<BlockScheme>(v, 4);
                     }},
        PipelineCase{"design",
                     [](std::uint64_t v) {
                       return std::make_unique<DesignScheme>(v);
                     }},
        PipelineCase{"designPP",
                     [](std::uint64_t v) {
                       return std::make_unique<DesignScheme>(
                           v, PlaneConstruction::kPG2PrimePower);
                     }}),
    [](const auto& info) { return info.param.label; });

TEST(PipelineTest, MeasuredReplicationMatchesBlockPrediction) {
  const std::uint64_t v = 24, h = 4;
  const auto payloads = make_payloads(v);
  mr::Cluster cluster({.num_nodes = 4, .worker_threads = 2});
  const auto inputs = write_dataset(cluster, "/data", payloads);
  const BlockScheme scheme(v, h);

  const RunReport stats =
      pairmr::testing::run_two_job(cluster, inputs, scheme, ref_job());

  // v divisible by h: every element is in exactly h working sets.
  EXPECT_DOUBLE_EQ(stats.replication_factor, static_cast<double>(h));
  // Largest working set is 2e = 12 element copies.
  EXPECT_EQ(stats.max_working_set_records, 2 * scheme.edge());
}

TEST(PipelineTest, MeasuredReplicationMatchesBroadcastPrediction) {
  const std::uint64_t v = 16, p = 6;
  const auto payloads = make_payloads(v);
  mr::Cluster cluster({.num_nodes = 4, .worker_threads = 2});
  const auto inputs = write_dataset(cluster, "/data", payloads);
  const BroadcastScheme scheme(v, p);

  const RunReport stats =
      pairmr::testing::run_two_job(cluster, inputs, scheme, ref_job());
  EXPECT_DOUBLE_EQ(stats.replication_factor, static_cast<double>(p));
  EXPECT_EQ(stats.max_working_set_records, v);
}

TEST(PipelineTest, PruningDropsResultsButNotElements) {
  const std::uint64_t v = 12;
  const auto payloads = make_payloads(v);
  mr::Cluster cluster({.num_nodes = 2, .worker_threads = 2});
  const auto inputs = write_dataset(cluster, "/data", payloads);
  const BlockScheme scheme(v, 3);

  PairwiseJob job = ref_job();
  job.keep = workloads::keep_below(5.0);  // drop large "distances"
  const RunReport stats = pairmr::testing::run_two_job(cluster, inputs, scheme, job);

  EXPECT_EQ(stats.evaluations, 12u * 11 / 2);
  EXPECT_LT(stats.results_kept, stats.evaluations);
  EXPECT_GT(stats.results_kept, 0u);

  const auto elements = read_elements(cluster, stats.output_dir);
  ASSERT_EQ(elements.size(), v);  // pruning never loses elements
  std::uint64_t attached = 0;
  for (const auto& e : elements) {
    for (const auto& r : e.results) {
      EXPECT_LE(decode_result(r.result), 5.0);
      ++attached;
    }
  }
  EXPECT_EQ(attached, 2 * stats.results_kept);  // stored on both sides
}

TEST(PipelineTest, NonSymmetricEvaluatesBothDirections) {
  const std::uint64_t v = 8;
  const auto payloads = make_payloads(v);
  mr::Cluster cluster({.num_nodes = 2, .worker_threads = 1});
  const auto inputs = write_dataset(cluster, "/data", payloads);
  const BlockScheme scheme(v, 2);

  PairwiseJob job;
  job.symmetry = Symmetry::kNonSymmetric;
  // Directional compute: result depends on argument order.
  job.compute = [](const Element& a, const Element& b) {
    return encode_result(static_cast<double>(a.id) * 1000 +
                         static_cast<double>(b.id));
  };
  const RunReport stats = pairmr::testing::run_two_job(cluster, inputs, scheme, job);
  EXPECT_EQ(stats.evaluations, 2 * pair_count(v));

  const auto elements = read_elements(cluster, stats.output_dir);
  for (const auto& e : elements) {
    for (const auto& r : e.results) {
      // Element e holds comp(e, other) — first argument is e itself.
      EXPECT_DOUBLE_EQ(decode_result(r.result),
                       static_cast<double>(e.id) * 1000 +
                           static_cast<double>(r.other));
    }
  }
}

TEST(PipelineTest, FinalizeHookRunsOncePerElement) {
  const std::uint64_t v = 10;
  const auto payloads = make_payloads(v);
  mr::Cluster cluster({.num_nodes = 2, .worker_threads = 2});
  const auto inputs = write_dataset(cluster, "/data", payloads);
  const DesignScheme scheme(v);

  PairwiseJob job = ref_job();
  job.finalize = [](Element& e) {
    // Keep only the single nearest partner.
    auto best = e.results.front();
    for (const auto& r : e.results) {
      if (decode_result(r.result) < decode_result(best.result)) best = r;
    }
    e.results = {best};
  };
  const RunReport stats = pairmr::testing::run_two_job(cluster, inputs, scheme, job);
  for (const auto& e : read_elements(cluster, stats.output_dir)) {
    EXPECT_EQ(e.results.size(), 1u);
  }
}

TEST(PipelineTest, SkippingAggregationLeavesCopies) {
  const std::uint64_t v = 10;
  const auto payloads = make_payloads(v);
  mr::Cluster cluster({.num_nodes = 2, .worker_threads = 1});
  const auto inputs = write_dataset(cluster, "/data", payloads);
  const BlockScheme scheme(v, 3);

  PairwiseOptions options;
  options.run_aggregation = false;
  const RunReport stats =
      pairmr::testing::run_two_job(cluster, inputs, scheme, ref_job(), options);
  EXPECT_FALSE(stats.aggregated);
  // Without Job 2 the output holds one record per element *copy*.
  const auto records = cluster.gather_records(stats.output_dir);
  EXPECT_GT(records.size(), v);
}

TEST(PipelineTest, IntermediateCleanupRemovesJob1Output) {
  const std::uint64_t v = 10;
  const auto payloads = make_payloads(v);
  mr::Cluster cluster({.num_nodes = 2, .worker_threads = 1});
  const auto inputs = write_dataset(cluster, "/data", payloads);
  const BlockScheme scheme(v, 3);

  PairwiseOptions options;
  options.work_dir = "/job";
  const RunReport stats =
      pairmr::testing::run_two_job(cluster, inputs, scheme, ref_job(), options);
  EXPECT_GT(stats.intermediate_bytes, 0u);
  EXPECT_TRUE(cluster.dfs().list("/job/intermediate").empty());
  EXPECT_FALSE(cluster.dfs().list("/job/output").empty());
}

TEST(BroadcastOneJobTest, MatchesSerialReference) {
  const std::uint64_t v = 19;
  const auto payloads = make_payloads(v);
  mr::Cluster cluster({.num_nodes = 3, .worker_threads = 2});
  const auto inputs = write_dataset(cluster, "/data", payloads);

  const RunReport stats =
      pairmr::testing::run_broadcast(cluster, inputs, v, /*num_tasks=*/6, ref_job());
  EXPECT_EQ(stats.evaluations, 19u * 18 / 2);
  expect_matches_reference(read_elements(cluster, stats.output_dir),
                           payloads);
}

TEST(BroadcastOneJobTest, ShipsDatasetOnceNotPerTask) {
  // The §5.1 point: the cache broadcasts the dataset n times (once per
  // node), not p times as the generic two-job pipeline would.
  const std::uint64_t v = 16;
  const auto payloads = make_payloads(v);
  mr::Cluster cluster({.num_nodes = 3, .worker_threads = 2});
  const auto inputs = write_dataset(cluster, "/data", payloads);
  std::uint64_t dataset_bytes = 0;
  for (const auto& p : inputs) dataset_bytes += cluster.dfs().open(p)->bytes;

  const RunReport stats = pairmr::testing::run_broadcast(
      cluster, inputs, v, /*num_tasks=*/12, ref_job());
  // Broadcast to the two non-home replicas of each input file — bounded
  // by (n-1) dataset copies, far below p copies.
  EXPECT_LE(stats.cache_broadcast_bytes, 2 * dataset_bytes);
  EXPECT_GT(stats.cache_broadcast_bytes, 0u);
}

TEST(BroadcastOneJobTest, PruningWorks) {
  const std::uint64_t v = 12;
  const auto payloads = make_payloads(v);
  mr::Cluster cluster({.num_nodes = 2, .worker_threads = 1});
  const auto inputs = write_dataset(cluster, "/data", payloads);

  PairwiseJob job = ref_job();
  job.keep = workloads::keep_below(4.0);
  const RunReport stats =
      pairmr::testing::run_broadcast(cluster, inputs, v, 4, job);
  EXPECT_LT(stats.results_kept, stats.evaluations);
  for (const auto& e : read_elements(cluster, stats.output_dir)) {
    for (const auto& r : e.results) {
      EXPECT_LE(decode_result(r.result), 4.0);
    }
  }
}

TEST(PipelineTest, MissingComputeThrows) {
  mr::Cluster cluster({.num_nodes = 1});
  const BlockScheme scheme(4, 2);
  EXPECT_THROW(pairmr::testing::run_two_job(cluster, {"/x"}, scheme, PairwiseJob{}),
               PreconditionError);
}


// --- Deprecated-shim parity ---------------------------------------------
//
// The pipeline.hpp free functions are [[deprecated]] wrappers over
// PairwiseRunner. These are the ONLY in-repo callers left; each case
// proves a wrapper's output is byte-identical to driving the runner
// directly (same DFS files, same records, same counter totals), so the
// shims can delegate forever without their own test surface.

// Relative file name -> records, the full bytes of an output directory.
std::vector<std::pair<std::string, std::vector<mr::Record>>> snapshot(
    const mr::Cluster& cluster, const std::string& dir) {
  std::vector<std::pair<std::string, std::vector<mr::Record>>> snap;
  for (const auto& path : cluster.dfs().list(dir)) {
    snap.emplace_back(path.substr(dir.size()),
                      cluster.dfs().open(path)->records);
  }
  return snap;
}

#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

TEST(DeprecatedShimTest, RunPairwiseDelegatesToRunner) {
  const std::uint64_t v = 14;
  const auto payloads = make_payloads(v);
  const BlockScheme scheme(v, 3);

  mr::Cluster legacy_cluster({.num_nodes = 3, .worker_threads = 2});
  const auto legacy_inputs =
      write_dataset(legacy_cluster, "/data", payloads);
  const PairwiseRunStats legacy =
      run_pairwise(legacy_cluster, legacy_inputs, scheme, ref_job());

  mr::Cluster cluster({.num_nodes = 3, .worker_threads = 2});
  const auto inputs = write_dataset(cluster, "/data", payloads);
  const RunReport direct =
      pairmr::testing::run_two_job(cluster, inputs, scheme, ref_job());

  EXPECT_EQ(legacy.evaluations, direct.evaluations);
  EXPECT_EQ(legacy.distribute_job.counters,
            direct.compute_jobs.front().counters);
  EXPECT_EQ(legacy.aggregate_job.counters,
            direct.merge_jobs.front().counters);
  EXPECT_EQ(legacy.output_dir, direct.output_dir);
  EXPECT_EQ(snapshot(legacy_cluster, legacy.output_dir),
            snapshot(cluster, direct.output_dir));
}

TEST(DeprecatedShimTest, RunPairwiseBroadcastDelegatesToRunner) {
  const std::uint64_t v = 13;
  const auto payloads = make_payloads(v);

  mr::Cluster legacy_cluster({.num_nodes = 3, .worker_threads = 2});
  const auto legacy_inputs =
      write_dataset(legacy_cluster, "/data", payloads);
  const PairwiseRunStats legacy = run_pairwise_broadcast(
      legacy_cluster, legacy_inputs, v, /*num_tasks=*/5, ref_job());

  mr::Cluster cluster({.num_nodes = 3, .worker_threads = 2});
  const auto inputs = write_dataset(cluster, "/data", payloads);
  const RunReport direct = pairmr::testing::run_broadcast(
      cluster, inputs, v, /*num_tasks=*/5, ref_job());

  EXPECT_EQ(legacy.evaluations, direct.evaluations);
  EXPECT_EQ(legacy.cache_broadcast_bytes, direct.cache_broadcast_bytes);
  EXPECT_EQ(legacy.distribute_job.counters,
            direct.compute_jobs.front().counters);
  EXPECT_EQ(snapshot(legacy_cluster, legacy.output_dir),
            snapshot(cluster, direct.output_dir));
}

TEST(DeprecatedShimTest, RunPairwiseRoundsDelegatesToRunner) {
  const std::uint64_t v = 15;
  const auto payloads = make_payloads(v);
  const DesignScheme scheme(v);
  std::vector<std::vector<TaskId>> rounds(2);
  for (TaskId t = 0; t < scheme.num_tasks(); ++t) {
    rounds[t % 2].push_back(t);
  }

  mr::Cluster legacy_cluster({.num_nodes = 3, .worker_threads = 2});
  const auto legacy_inputs =
      write_dataset(legacy_cluster, "/data", payloads);
  const HierarchicalRunStats legacy = run_pairwise_rounds(
      legacy_cluster, legacy_inputs, scheme, rounds, ref_job());

  mr::Cluster cluster({.num_nodes = 3, .worker_threads = 2});
  const auto inputs = write_dataset(cluster, "/data", payloads);
  const RunReport direct = pairmr::testing::run_rounds(
      cluster, inputs, scheme, rounds, ref_job());

  EXPECT_EQ(legacy.evaluations, direct.evaluations);
  EXPECT_EQ(legacy.round_jobs.size(), direct.compute_jobs.size());
  EXPECT_EQ(legacy.peak_intermediate_bytes, direct.intermediate_bytes);
  EXPECT_EQ(snapshot(legacy_cluster, legacy.output_dir),
            snapshot(cluster, direct.output_dir));
}

#pragma GCC diagnostic pop

}  // namespace
}  // namespace pairmr
