// Tests for the two-set generalization (paper §1's "elements of one set
// paired with elements of another"): every A×B cross pair exactly once,
// no intra-set pairs, and end-to-end pipeline integration.
#include "pairwise/bipartite_scheme.hpp"

#include <gtest/gtest.h>

#include "../support/run_pairwise.hpp"

#include <set>

#include "common/check.hpp"
#include "common/serde.hpp"
#include "pairwise/dataset.hpp"
#include "pairwise/pipeline.hpp"
#include "workloads/kernels.hpp"

namespace pairmr {
namespace {

class BipartiteCoverage
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::uint64_t,
                                                 std::uint64_t,
                                                 std::uint64_t>> {};

TEST_P(BipartiteCoverage, EveryCrossPairExactlyOnce) {
  const auto [va, vb, ha, hb] = GetParam();
  const BipartiteBlockScheme scheme(va, vb, ha, hb);
  std::set<std::pair<ElementId, ElementId>> seen;
  for (TaskId t = 0; t < scheme.num_tasks(); ++t) {
    for (const auto [lo, hi] : scheme.pairs_in(t)) {
      EXPECT_TRUE(scheme.is_a(lo));   // never two A's or two B's
      EXPECT_FALSE(scheme.is_a(hi));
      EXPECT_TRUE(seen.insert({lo, hi}).second)
          << "pair {" << lo << "," << hi << "} twice";
    }
  }
  EXPECT_EQ(seen.size(), va * vb);
  EXPECT_EQ(scheme.total_pairs(), va * vb);
}

INSTANTIATE_TEST_SUITE_P(
    GridSweep, BipartiteCoverage,
    ::testing::Values(std::make_tuple(6, 9, 2, 3),
                      std::make_tuple(7, 5, 3, 2),    // non-dividing
                      std::make_tuple(1, 10, 1, 4),   // degenerate A
                      std::make_tuple(16, 16, 4, 4),
                      std::make_tuple(13, 4, 5, 1)),
    [](const auto& info) {
      return "va" + std::to_string(std::get<0>(info.param)) + "_vb" +
             std::to_string(std::get<1>(info.param)) + "_ha" +
             std::to_string(std::get<2>(info.param)) + "_hb" +
             std::to_string(std::get<3>(info.param));
    });

TEST(BipartiteSchemeTest, SubsetsMatchWorkingSets) {
  const BipartiteBlockScheme scheme(7, 5, 3, 2);
  for (ElementId id = 0; id < scheme.num_elements(); ++id) {
    for (const TaskId t : scheme.subsets_of(id)) {
      const auto ws = scheme.working_set(t);
      EXPECT_TRUE(std::find(ws.begin(), ws.end(), id) != ws.end());
    }
  }
}

TEST(BipartiteSchemeTest, ReplicationAsymmetry) {
  // A elements land in hb working sets, B elements in ha.
  const BipartiteBlockScheme scheme(12, 12, 3, 4);
  EXPECT_EQ(scheme.subsets_of(0).size(), 4u);    // A side: hb
  EXPECT_EQ(scheme.subsets_of(12).size(), 3u);   // B side: ha
}

TEST(BipartiteSchemeTest, MetricsAreRectangular) {
  const BipartiteBlockScheme scheme(100, 40, 5, 4);
  const SchemeMetrics m = scheme.metrics();
  EXPECT_EQ(m.num_tasks, 20u);
  EXPECT_DOUBLE_EQ(m.working_set_elements, 20.0 + 10.0);  // ea + eb
  EXPECT_DOUBLE_EQ(m.evaluations_per_task, 200.0);        // ea * eb
  EXPECT_DOUBLE_EQ(m.communication_elements,
                   2.0 * (100.0 * 4 + 40.0 * 5));
}

TEST(BipartiteSchemeTest, PipelineEndToEnd) {
  // A: 4 query vectors, B: 6 item vectors; comp = inner product.
  const std::uint64_t va = 4, vb = 6;
  std::vector<std::string> payloads;
  std::vector<std::vector<double>> vecs;
  for (std::uint64_t i = 0; i < va + vb; ++i) {
    vecs.push_back({static_cast<double>(i + 1), 2.0});
    payloads.push_back(encode_f64_vec(vecs.back()));
  }

  mr::Cluster cluster({.num_nodes = 2, .worker_threads = 2});
  const auto inputs = write_dataset(cluster, "/data", payloads);
  const BipartiteBlockScheme scheme(va, vb, 2, 3);

  PairwiseJob job;
  job.compute = workloads::inner_product_kernel();
  const RunReport stats = pairmr::testing::run_two_job(cluster, inputs, scheme, job);
  EXPECT_EQ(stats.evaluations, va * vb);

  const auto elements = read_elements(cluster, stats.output_dir);
  ASSERT_EQ(elements.size(), va + vb);
  // Every A element holds exactly vb results (one per B partner), with
  // the right values; symmetric for B.
  for (const Element& e : elements) {
    const bool a_side = e.id < va;
    EXPECT_EQ(e.results.size(), a_side ? vb : va);
    for (const auto& r : e.results) {
      EXPECT_NE(a_side, r.other < va);  // partners always cross the sets
      EXPECT_DOUBLE_EQ(
          workloads::decode_result(r.result),
          workloads::inner_product(vecs[e.id], vecs[r.other]));
    }
  }
}

TEST(BipartiteSchemeTest, InvalidParametersThrow) {
  EXPECT_THROW(BipartiteBlockScheme(0, 5, 1, 1), PreconditionError);
  EXPECT_THROW(BipartiteBlockScheme(5, 5, 6, 1), PreconditionError);
  EXPECT_THROW(BipartiteBlockScheme(5, 5, 1, 0), PreconditionError);
  const BipartiteBlockScheme scheme(4, 4, 2, 2);
  EXPECT_THROW(scheme.subsets_of(8), PreconditionError);
  EXPECT_THROW(scheme.pairs_in(4), PreconditionError);
}

}  // namespace
}  // namespace pairmr
