// Tests for the Figure 5 pair enumeration and Figure 6 block enumeration,
// including the exact tables printed in the paper.
#include "pairwise/triangular.hpp"

#include <gtest/gtest.h>

namespace pairmr {
namespace {

TEST(PairLabelTest, MatchesPaperFigure5) {
  // Figure 5 labels column-by-column down the upper triangle:
  //   (2,1)=1, (3,1)=2, (3,2)=3, (4,1)=4, ..., (7,6)=21.
  EXPECT_EQ(pair_label(2, 1), 1u);
  EXPECT_EQ(pair_label(3, 1), 2u);
  EXPECT_EQ(pair_label(3, 2), 3u);
  EXPECT_EQ(pair_label(4, 1), 4u);
  EXPECT_EQ(pair_label(4, 2), 5u);
  EXPECT_EQ(pair_label(4, 3), 6u);
  EXPECT_EQ(pair_label(5, 1), 7u);
  EXPECT_EQ(pair_label(6, 1), 11u);
  EXPECT_EQ(pair_label(7, 1), 16u);
  EXPECT_EQ(pair_label(7, 6), 21u);
}

TEST(PairLabelTest, InversionMatchesPaperExamples) {
  EXPECT_EQ(label_to_pair(1), (PairIndex{2, 1}));
  EXPECT_EQ(label_to_pair(6), (PairIndex{4, 3}));
  EXPECT_EQ(label_to_pair(7), (PairIndex{5, 1}));
  EXPECT_EQ(label_to_pair(21), (PairIndex{7, 6}));
}

TEST(PairLabelTest, RoundTripSweep) {
  // Every label in a v=120 triangle inverts back exactly.
  std::uint64_t expected = 1;
  for (std::uint64_t i = 2; i <= 120; ++i) {
    for (std::uint64_t j = 1; j < i; ++j) {
      const std::uint64_t p = pair_label(i, j);
      EXPECT_EQ(p, expected);
      const PairIndex inv = label_to_pair(p);
      EXPECT_EQ(inv.i, i);
      EXPECT_EQ(inv.j, j);
      ++expected;
    }
  }
}

TEST(PairLabelTest, LargeLabelsExact) {
  // Near v = 2^21 the labels exceed 2^41; inversion must stay exact.
  const std::uint64_t i = (1ull << 21) + 7;
  const std::uint64_t j = 12345;
  const PairIndex inv = label_to_pair(pair_label(i, j));
  EXPECT_EQ(inv.i, i);
  EXPECT_EQ(inv.j, j);
}

TEST(PairLabelTest, ZeroLabelRejected) {
  EXPECT_THROW(label_to_pair(0), PreconditionError);
}

TEST(BlockLabelTest, MatchesPaperFigure6) {
  // Figure 6 (h = 3): p=1 -> (1,1), p=2 -> (2,1), p=3 -> (2,2),
  // p=4 -> (3,1), p=5 -> (3,2), p=6 -> (3,3).
  EXPECT_EQ(block_label(1, 1), 1u);
  EXPECT_EQ(block_label(2, 1), 2u);
  EXPECT_EQ(block_label(2, 2), 3u);
  EXPECT_EQ(block_label(3, 1), 4u);
  EXPECT_EQ(block_label(3, 2), 5u);
  EXPECT_EQ(block_label(3, 3), 6u);

  EXPECT_EQ(label_to_block(1), (BlockIndex{1, 1}));
  EXPECT_EQ(label_to_block(2), (BlockIndex{2, 1}));
  EXPECT_EQ(label_to_block(3), (BlockIndex{2, 2}));
  EXPECT_EQ(label_to_block(4), (BlockIndex{3, 1}));
  EXPECT_EQ(label_to_block(5), (BlockIndex{3, 2}));
  EXPECT_EQ(label_to_block(6), (BlockIndex{3, 3}));
}

TEST(BlockLabelTest, RoundTripSweep) {
  std::uint64_t expected = 1;
  for (std::uint64_t I = 1; I <= 100; ++I) {
    for (std::uint64_t J = 1; J <= I; ++J) {
      const std::uint64_t p = block_label(I, J);
      EXPECT_EQ(p, expected);
      EXPECT_EQ(label_to_block(p), (BlockIndex{I, J}));
      ++expected;
    }
  }
}

}  // namespace
}  // namespace pairmr
