// Schema and golden tests for the BENCH_churn.json document emitted by
// bench/bench_churn: exact field set and ordering of every point, the
// golden rendering of a hand-built point, and the passed-flag
// aggregation (every point passed, and an empty sweep never passes).
#include "pairwise/churn_report.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "../support/mini_json.hpp"

namespace pairmr {
namespace {

using minijson::JsonParser;
using minijson::JsonValue;

const std::vector<std::string> kPointKeys = {
    "base_v",        "delta_k",         "batch_pairs",
    "delta_pairs",   "reused_pairs",    "batch_seconds",
    "update_seconds", "speedup",        "analytic_factor",
    "gap_gate",      "identical",       "passed"};

JsonValue parse_or_die(const std::string& json) {
  JsonValue doc;
  JsonParser parser(json);
  EXPECT_TRUE(parser.parse(doc)) << json;
  return doc;
}

ChurnPoint sample_point() {
  ChurnPoint p;
  p.base_v = 100;
  p.delta_k = 10;
  p.batch_pairs = 5995;   // C(110, 2)
  p.delta_pairs = 1045;   // 100·10 + C(10, 2)
  p.reused_pairs = 4950;  // C(100, 2)
  p.batch_seconds = 2.0;
  p.update_seconds = 0.5;
  p.speedup = 4.0;
  p.analytic_factor = 5.5;
  p.gap_gate = 0.5;
  p.identical = true;
  p.passed = true;
  return p;
}

TEST(ChurnSchemaTest, DocumentMatchesSchema) {
  auto big = sample_point();
  big.base_v = 110;
  big.delta_k = 100;
  const std::vector<ChurnPoint> points = {sample_point(), big};

  const JsonValue doc = parse_or_die(churn_to_json(points));
  ASSERT_EQ(doc.kind, JsonValue::kObject);
  ASSERT_EQ(doc.object.size(), 3u);
  EXPECT_EQ(doc.object[0].first, "bench");
  EXPECT_EQ(doc.object[1].first, "points");
  EXPECT_EQ(doc.object[2].first, "passed");

  ASSERT_EQ(doc.object[0].second.kind, JsonValue::kString);
  EXPECT_EQ(doc.object[0].second.str, "churn");
  ASSERT_EQ(doc.object[2].second.kind, JsonValue::kBool);
  EXPECT_TRUE(doc.object[2].second.boolean);

  const JsonValue& array = doc.object[1].second;
  ASSERT_EQ(array.kind, JsonValue::kArray);
  ASSERT_EQ(array.array.size(), points.size());
  for (std::size_t i = 0; i < array.array.size(); ++i) {
    const JsonValue& point = array.array[i];
    ASSERT_EQ(point.kind, JsonValue::kObject) << "point " << i;
    ASSERT_EQ(point.object.size(), kPointKeys.size()) << "point " << i;
    for (std::size_t k = 0; k < kPointKeys.size(); ++k) {
      EXPECT_EQ(point.object[k].first, kPointKeys[k])
          << "point " << i << " key " << k;
    }
    EXPECT_EQ(point.find("base_v")->kind, JsonValue::kNumber);
    EXPECT_EQ(point.find("delta_k")->kind, JsonValue::kNumber);
    EXPECT_EQ(point.find("batch_pairs")->kind, JsonValue::kNumber);
    EXPECT_EQ(point.find("delta_pairs")->kind, JsonValue::kNumber);
    EXPECT_EQ(point.find("reused_pairs")->kind, JsonValue::kNumber);
    EXPECT_EQ(point.find("batch_seconds")->kind, JsonValue::kNumber);
    EXPECT_EQ(point.find("update_seconds")->kind, JsonValue::kNumber);
    EXPECT_EQ(point.find("speedup")->kind, JsonValue::kNumber);
    EXPECT_EQ(point.find("analytic_factor")->kind, JsonValue::kNumber);
    EXPECT_EQ(point.find("gap_gate")->kind, JsonValue::kNumber);
    EXPECT_EQ(point.find("identical")->kind, JsonValue::kBool);
    EXPECT_EQ(point.find("passed")->kind, JsonValue::kBool);

    EXPECT_EQ(point.find("base_v")->number,
              static_cast<double>(points[i].base_v));
    EXPECT_EQ(point.find("delta_pairs")->number,
              static_cast<double>(points[i].delta_pairs));
    EXPECT_TRUE(point.find("identical")->boolean);
  }
  EXPECT_EQ(array.array[1].find("delta_k")->number, 100.0);
}

TEST(ChurnSchemaTest, GoldenRenderingOfHandBuiltPoint) {
  const std::string expected =
      "{\n"
      "  \"bench\": \"churn\",\n"
      "  \"points\": [\n"
      "    {\"base_v\": 100, \"delta_k\": 10, \"batch_pairs\": 5995,"
      " \"delta_pairs\": 1045, \"reused_pairs\": 4950,"
      " \"batch_seconds\": 2, \"update_seconds\": 0.5,"
      " \"speedup\": 4, \"analytic_factor\": 5.5, \"gap_gate\": 0.5,"
      " \"identical\": true, \"passed\": true}\n"
      "  ],\n"
      "  \"passed\": true\n"
      "}\n";
  EXPECT_EQ(churn_to_json({sample_point()}), expected);
}

TEST(ChurnSchemaTest, PassedRequiresEveryPointAndRejectsEmptySweeps) {
  // An empty sweep measured nothing — it must not read as a pass.
  EXPECT_FALSE(churn_all_ok({}));
  EXPECT_TRUE(churn_all_ok({sample_point()}));

  auto failed = sample_point();
  failed.identical = false;
  failed.passed = false;
  EXPECT_FALSE(churn_all_ok({sample_point(), failed}));
  const JsonValue doc = parse_or_die(churn_to_json({sample_point(), failed}));
  EXPECT_FALSE(doc.find("passed")->boolean);
  EXPECT_FALSE(doc.object[1].second.array[1].find("identical")->boolean);
}

}  // namespace
}  // namespace pairmr
