// Schema and golden tests for the BENCH_simjoin.json document emitted by
// bench/bench_simjoin: exact field set and ordering of every point, the
// golden rendering of a hand-built point, and the passed-flag semantics
// (byte-identity AND the candidate == survivor + pruned invariant).
#include "pairwise/simjoin_report.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "../support/mini_json.hpp"

namespace pairmr {
namespace {

using minijson::JsonParser;
using minijson::JsonValue;

const std::vector<std::string> kPointKeys = {
    "filter",         "threshold",      "v",
    "total_pairs",    "candidate_pairs", "survivor_pairs",
    "pruned_pairs",   "exhaustive_seconds", "join_seconds",
    "exhaustive_pairs_per_s", "join_pairs_per_s", "speedup",
    "identical"};

JsonValue parse_or_die(const std::string& json) {
  JsonValue doc;
  JsonParser parser(json);
  EXPECT_TRUE(parser.parse(doc)) << json;
  return doc;
}

SimjoinPoint sample_point() {
  SimjoinPoint p;
  p.filter = "prefix";
  p.threshold = 0.5;
  p.v = 64;
  p.total_pairs = 2016;
  p.candidate_pairs = 500;
  p.survivor_pairs = 120;
  p.pruned_pairs = 380;
  p.exhaustive_seconds = 2.0;
  p.join_seconds = 0.5;
  p.exhaustive_pairs_per_s = 1008.0;
  p.join_pairs_per_s = 4032.0;
  p.speedup = 4.0;
  p.identical = true;
  return p;
}

TEST(SimjoinSchemaTest, DocumentMatchesSchema) {
  auto lsh = sample_point();
  lsh.filter = "lsh-banding";
  lsh.threshold = 0.9;
  const std::vector<SimjoinPoint> points = {sample_point(), lsh};

  const JsonValue doc = parse_or_die(simjoin_to_json(points));
  ASSERT_EQ(doc.kind, JsonValue::kObject);
  ASSERT_EQ(doc.object.size(), 3u);
  EXPECT_EQ(doc.object[0].first, "bench");
  EXPECT_EQ(doc.object[1].first, "points");
  EXPECT_EQ(doc.object[2].first, "passed");

  ASSERT_EQ(doc.object[0].second.kind, JsonValue::kString);
  EXPECT_EQ(doc.object[0].second.str, "simjoin");
  ASSERT_EQ(doc.object[2].second.kind, JsonValue::kBool);
  EXPECT_TRUE(doc.object[2].second.boolean);

  const JsonValue& array = doc.object[1].second;
  ASSERT_EQ(array.kind, JsonValue::kArray);
  ASSERT_EQ(array.array.size(), points.size());
  for (std::size_t i = 0; i < array.array.size(); ++i) {
    const JsonValue& point = array.array[i];
    ASSERT_EQ(point.kind, JsonValue::kObject) << "point " << i;
    ASSERT_EQ(point.object.size(), kPointKeys.size()) << "point " << i;
    for (std::size_t k = 0; k < kPointKeys.size(); ++k) {
      EXPECT_EQ(point.object[k].first, kPointKeys[k])
          << "point " << i << " key " << k;
    }
    EXPECT_EQ(point.find("filter")->kind, JsonValue::kString);
    EXPECT_EQ(point.find("threshold")->kind, JsonValue::kNumber);
    EXPECT_EQ(point.find("v")->kind, JsonValue::kNumber);
    EXPECT_EQ(point.find("total_pairs")->kind, JsonValue::kNumber);
    EXPECT_EQ(point.find("candidate_pairs")->kind, JsonValue::kNumber);
    EXPECT_EQ(point.find("survivor_pairs")->kind, JsonValue::kNumber);
    EXPECT_EQ(point.find("pruned_pairs")->kind, JsonValue::kNumber);
    EXPECT_EQ(point.find("exhaustive_seconds")->kind, JsonValue::kNumber);
    EXPECT_EQ(point.find("join_seconds")->kind, JsonValue::kNumber);
    EXPECT_EQ(point.find("exhaustive_pairs_per_s")->kind, JsonValue::kNumber);
    EXPECT_EQ(point.find("join_pairs_per_s")->kind, JsonValue::kNumber);
    EXPECT_EQ(point.find("speedup")->kind, JsonValue::kNumber);
    EXPECT_EQ(point.find("identical")->kind, JsonValue::kBool);

    EXPECT_EQ(point.find("v")->number, static_cast<double>(points[i].v));
    EXPECT_EQ(point.find("candidate_pairs")->number,
              static_cast<double>(points[i].candidate_pairs));
    EXPECT_TRUE(point.find("identical")->boolean);
  }
  EXPECT_EQ(array.array[1].find("filter")->str, "lsh-banding");
}

TEST(SimjoinSchemaTest, GoldenRenderingOfHandBuiltPoint) {
  const std::string expected =
      "{\n"
      "  \"bench\": \"simjoin\",\n"
      "  \"points\": [\n"
      "    {\"filter\": \"prefix\", \"threshold\": 0.5, \"v\": 64,"
      " \"total_pairs\": 2016, \"candidate_pairs\": 500,"
      " \"survivor_pairs\": 120, \"pruned_pairs\": 380,"
      " \"exhaustive_seconds\": 2, \"join_seconds\": 0.5,"
      " \"exhaustive_pairs_per_s\": 1008, \"join_pairs_per_s\": 4032,"
      " \"speedup\": 4, \"identical\": true}\n"
      "  ],\n"
      "  \"passed\": true\n"
      "}\n";
  EXPECT_EQ(simjoin_to_json({sample_point()}), expected);
}

TEST(SimjoinSchemaTest, PassedRequiresIdentityAndCounterInvariant) {
  EXPECT_TRUE(simjoin_all_ok({}));
  EXPECT_TRUE(simjoin_all_ok({sample_point()}));

  auto mismatch = sample_point();
  mismatch.identical = false;
  EXPECT_FALSE(simjoin_all_ok({sample_point(), mismatch}));
  const JsonValue doc1 = parse_or_die(simjoin_to_json({mismatch}));
  EXPECT_FALSE(doc1.find("passed")->boolean);

  auto bad_counters = sample_point();
  bad_counters.pruned_pairs += 1;  // candidate != survivor + pruned
  EXPECT_FALSE(simjoin_all_ok({bad_counters}));
  const JsonValue doc2 = parse_or_die(simjoin_to_json({bad_counters}));
  EXPECT_FALSE(doc2.find("passed")->boolean);
}

}  // namespace
}  // namespace pairmr
