#include "pairwise/element.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace pairmr {
namespace {

TEST(ElementCodecTest, RoundTripEmpty) {
  Element e;
  e.id = 42;
  EXPECT_EQ(decode_element(encode_element(e)), e);
}

TEST(ElementCodecTest, RoundTripWithPayloadAndResults) {
  Element e;
  e.id = 7;
  e.payload = std::string("binary\0payload", 14);
  e.results = {{3, "r3"}, {9, std::string("\0\0", 2)}, {100, ""}};
  const Element back = decode_element(encode_element(e));
  EXPECT_EQ(back, e);
  EXPECT_EQ(back.payload.size(), 14u);
  EXPECT_EQ(back.results[1].result.size(), 2u);
}

TEST(ElementCodecTest, EncodedSizeMatchesActual) {
  Element e;
  e.id = 1;
  e.payload = "0123456789";
  e.results = {{2, "abc"}, {3, ""}};
  EXPECT_EQ(encoded_element_size(e), encode_element(e).size());
}

TEST(ElementCodecTest, TruncatedBytesThrow) {
  Element e;
  e.id = 5;
  e.payload = "data";
  const std::string bytes = encode_element(e);
  EXPECT_THROW(decode_element(std::string_view(bytes).substr(0, 6)),
               PreconditionError);
}

TEST(ElementCodecTest, LargePayloadRoundTrip) {
  Element e;
  e.id = 0;
  e.payload.assign(1 << 20, 'x');  // 1 MiB
  const Element back = decode_element(encode_element(e));
  EXPECT_EQ(back.payload.size(), e.payload.size());
}

}  // namespace
}  // namespace pairmr
