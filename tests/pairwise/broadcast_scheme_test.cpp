#include "pairwise/broadcast_scheme.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "common/intmath.hpp"

namespace pairmr {
namespace {

TEST(BroadcastSchemeTest, EveryWorkingSetIsTheWholeDataset) {
  const BroadcastScheme scheme(10, 4);
  for (TaskId t = 0; t < 4; ++t) {
    EXPECT_EQ(scheme.working_set(t).size(), 10u);
  }
  // Every element is in every working set.
  for (ElementId id = 0; id < 10; ++id) {
    EXPECT_EQ(scheme.subsets_of(id).size(), 4u);
  }
}

TEST(BroadcastSchemeTest, LabelRangesTileThePairSpace) {
  const BroadcastScheme scheme(10, 4);  // 45 pairs / 4 tasks = chunks of 12
  EXPECT_EQ(scheme.labels_per_task(), 12u);
  std::uint64_t expected_first = 1;
  for (TaskId t = 0; t < 4; ++t) {
    const auto range = scheme.label_range(t);
    EXPECT_EQ(range.first, expected_first);
    expected_first = range.last + 1;
  }
  EXPECT_EQ(scheme.label_range(3).last, 45u);
}

TEST(BroadcastSchemeTest, TasksBeyondPairCountAreEmpty) {
  const BroadcastScheme scheme(3, 10);  // only 3 pairs for 10 tasks
  std::uint64_t nonempty = 0;
  for (TaskId t = 0; t < 10; ++t) {
    if (!scheme.pairs_in(t).empty()) ++nonempty;
  }
  EXPECT_EQ(nonempty, 3u);
  EXPECT_EQ(scheme.total_pairs(), 3u);
  // Elements are only replicated into non-empty subsets.
  EXPECT_EQ(scheme.subsets_of(0).size(), 3u);
}

TEST(BroadcastSchemeTest, SingleTaskGetsEverything) {
  const BroadcastScheme scheme(7, 1);
  const auto pairs = scheme.pairs_in(0);
  EXPECT_EQ(pairs.size(), 21u);
}

TEST(BroadcastSchemeTest, PairsAreCanonicalAndInRange) {
  const BroadcastScheme scheme(13, 5);
  for (TaskId t = 0; t < 5; ++t) {
    for (const auto [lo, hi] : scheme.pairs_in(t)) {
      EXPECT_LT(lo, hi);
      EXPECT_LT(hi, 13u);
    }
  }
}

TEST(BroadcastSchemeTest, BalanceWithinOneChunk) {
  // Evaluations per task differ by at most the rounding of one chunk.
  const BroadcastScheme scheme(50, 7);
  std::uint64_t min_work = ~0ull, max_work = 0;
  for (TaskId t = 0; t < 7; ++t) {
    const std::uint64_t w = scheme.pairs_in(t).size();
    min_work = std::min(min_work, w);
    max_work = std::max(max_work, w);
  }
  EXPECT_LE(max_work - min_work, scheme.labels_per_task());
  EXPECT_EQ(max_work, scheme.labels_per_task());
}

TEST(BroadcastSchemeTest, MetricsMatchTable1) {
  const BroadcastScheme scheme(100, 8);
  const SchemeMetrics m = scheme.metrics();
  EXPECT_EQ(m.num_tasks, 8u);
  EXPECT_DOUBLE_EQ(m.communication_elements, 2.0 * 100 * 8);  // 2vp
  EXPECT_DOUBLE_EQ(m.replication_factor, 8.0);                // p
  EXPECT_DOUBLE_EQ(m.working_set_elements, 100.0);            // v
  // v(v-1)/2p = 4950/8 -> ceil = 619 labels per task.
  EXPECT_DOUBLE_EQ(m.evaluations_per_task, 619.0);
}

TEST(BroadcastSchemeTest, InvalidParametersThrow) {
  EXPECT_THROW(BroadcastScheme(1, 1), PreconditionError);
  EXPECT_THROW(BroadcastScheme(10, 0), PreconditionError);
  const BroadcastScheme scheme(5, 2);
  EXPECT_THROW(scheme.subsets_of(5), PreconditionError);
  EXPECT_THROW(scheme.pairs_in(2), PreconditionError);
}

}  // namespace
}  // namespace pairmr
