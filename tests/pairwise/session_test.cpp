// PairwiseSession serving-loop behaviour: submit/update/query/top_k,
// cache accounting and per-element invalidation, precondition screens,
// failed updates leaving the persisted state untouched, and crash
// recovery — a fork-backend worker SIGKILLed mid-update() must never
// tear the state (DESIGN.md §16). The cross-scheme × backend × chaos ×
// spill differential oracle lives in churn_equivalence_test.cpp.
#include <gtest/gtest.h>

#include <sys/wait.h>

#include <cerrno>
#include <cmath>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "../support/backend_matrix.hpp"
#include "common/check.hpp"
#include "common/intmath.hpp"
#include "mr/cluster.hpp"
#include "mr/fault.hpp"
#include "pairwise/block_scheme.hpp"
#include "pairwise/dataset.hpp"
#include "pairwise/runner.hpp"
#include "pairwise/session.hpp"
#include "workloads/kernels.hpp"

namespace pairmr {
namespace {

using mr::FaultPlan;
using mr::TaskKind;

std::vector<std::string> letter_payloads(std::uint64_t v) {
  std::vector<std::string> payloads;
  for (std::uint64_t i = 0; i < v; ++i) {
    payloads.push_back(std::string(1 + i % 7, static_cast<char>('a' + i % 26)));
  }
  return payloads;
}

// Symmetric, id-sensitive kernel (the fault_equivalence_test job): the
// result bytes pin down exactly which pair was evaluated.
PairwiseJob id_job() {
  PairwiseJob job;
  job.compute = [](const Element& a, const Element& b) {
    const double la = static_cast<double>(a.payload.size());
    const double lb = static_cast<double>(b.payload.size());
    return workloads::encode_result(
        std::abs(la - lb) + 0.001 * static_cast<double>(a.id + b.id));
  };
  return job;
}

// Kernel whose score is just the partner-id sum — makes top_k ordering
// a pure function of ids.
PairwiseJob sum_job() {
  PairwiseJob job;
  job.compute = [](const Element& a, const Element& b) {
    return workloads::encode_result(static_cast<double>(a.id + b.id));
  };
  return job;
}

SessionOptions scored_options() {
  SessionOptions options;
  options.score = [](std::string_view bytes) {
    return workloads::decode_result(bytes);
  };
  return options;
}

TEST(SessionTest, SubmitThenQueryServesFullAggregates) {
  const std::uint64_t v = 10;
  const auto payloads = letter_payloads(v);
  mr::Cluster cluster({.num_nodes = 4, .worker_threads = 2});
  PairwiseSession session(cluster, sum_job(), scored_options());

  const RunReport report = session.submit(payloads);
  EXPECT_EQ(report.evaluations, pair_count(v));
  EXPECT_EQ(session.num_elements(), v);
  EXPECT_EQ(session.epoch(), 0u);
  EXPECT_FALSE(session.state_paths().empty());

  for (ElementId id = 0; id < v; ++id) {
    const Element& e = session.query(id);
    EXPECT_EQ(e.id, id);
    EXPECT_EQ(e.payload, payloads[id]);
    ASSERT_EQ(e.results.size(), v - 1) << "element " << id;
    for (const ResultEntry& r : e.results) {
      EXPECT_NE(r.other, id);
      EXPECT_DOUBLE_EQ(workloads::decode_result(r.result),
                       static_cast<double>(id + r.other));
    }
  }
}

TEST(SessionTest, TopKRanksByScoreWithAscendingIdTies) {
  const std::uint64_t v = 10;
  mr::Cluster cluster({.num_nodes = 2, .worker_threads = 1});
  PairwiseSession session(cluster, sum_job(), scored_options());
  session.submit(letter_payloads(v));

  // Element 0's score against partner j is exactly j: the top 3 are the
  // three largest ids.
  const auto top = session.top_k(0, 3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].other, 9u);
  EXPECT_EQ(top[1].other, 8u);
  EXPECT_EQ(top[2].other, 7u);

  // k past the result count returns everything.
  EXPECT_EQ(session.top_k(0, 64).size(), v - 1);

  // Constant scores fall back to ascending partner id.
  PairwiseJob constant;
  constant.compute = [](const Element&, const Element&) {
    return workloads::encode_result(1.0);
  };
  mr::Cluster cluster2({.num_nodes = 2, .worker_threads = 1});
  PairwiseSession ties(cluster2, constant, scored_options());
  ties.submit(letter_payloads(6));
  const auto tied = ties.top_k(5, 4);
  ASSERT_EQ(tied.size(), 4u);
  for (std::size_t i = 0; i < tied.size(); ++i) {
    EXPECT_EQ(tied[i].other, i);
  }
}

TEST(SessionTest, CacheCountsHitsMissesAndInvalidation) {
  const std::uint64_t v = 6;
  mr::Cluster cluster({.num_nodes = 2, .worker_threads = 1});
  PairwiseSession session(cluster, id_job());
  session.submit(letter_payloads(v));

  for (ElementId id = 0; id < v; ++id) session.query(id);
  EXPECT_EQ(session.cache_stats().misses, v);
  EXPECT_EQ(session.cache_stats().hits, 0u);

  session.query(2);
  EXPECT_EQ(session.cache_stats().hits, 1u);
  EXPECT_EQ(session.cache_stats().misses, v);

  // No keep filter: every base element gains results from the delta, so
  // every cached aggregate is stale and must be dropped.
  session.update(letter_payloads(2));
  EXPECT_EQ(session.cache_stats().invalidated, v);

  // Re-reading a base element faults the merged aggregate back in.
  const Element& e = session.query(2);
  EXPECT_EQ(session.cache_stats().misses, v + 1);
  EXPECT_EQ(e.results.size(), v + 2 - 1);
}

TEST(SessionTest, UpdatesTileTheUnionExactlyOnce) {
  const std::uint64_t v = 8;
  mr::Cluster cluster({.num_nodes = 4, .worker_threads = 2});
  PairwiseSession session(cluster, id_job());
  session.submit(letter_payloads(v));
  EXPECT_EQ(session.cumulative_evaluations(), pair_count(8));

  const RunReport first = session.update({"xx", "yy", "zz"});
  EXPECT_EQ(first.pairs_delta, 8 * 3 + pair_count(3));
  EXPECT_EQ(first.pairs_reused, pair_count(8));
  EXPECT_EQ(first.pairs_delta + first.pairs_reused, pair_count(11));
  EXPECT_EQ(first.evaluations, first.pairs_delta);
  EXPECT_TRUE(first.aggregated);
  EXPECT_FALSE(first.merge_jobs.empty());
  EXPECT_EQ(session.num_elements(), 11u);
  EXPECT_EQ(session.epoch(), 1u);
  EXPECT_EQ(session.cumulative_evaluations(), pair_count(11));

  const RunReport second = session.update({"qq", "rr"});
  EXPECT_EQ(second.pairs_delta, 11 * 2 + pair_count(2));
  EXPECT_EQ(second.pairs_reused, pair_count(11));
  EXPECT_EQ(session.num_elements(), 13u);
  EXPECT_EQ(session.epoch(), 2u);
  // The session never re-evaluates a pair: cumulatively it paid exactly
  // the batch cost of its final union.
  EXPECT_EQ(session.cumulative_evaluations(), pair_count(13));

  const Element& added = session.query(12);
  EXPECT_EQ(added.payload, "rr");
  EXPECT_EQ(added.results.size(), 12u);
}

TEST(SessionTest, PreconditionScreens) {
  mr::Cluster cluster({.num_nodes = 2, .worker_threads = 1});

  // Finalize hooks would run once per epoch instead of once per element.
  PairwiseJob finalized = id_job();
  finalized.finalize = [](Element&) {};
  EXPECT_THROW(PairwiseSession(cluster, finalized), PreconditionError);

  // Custom distribute partitioners cannot route the synthesized delta
  // task space.
  SessionOptions partitioned;
  partitioned.run.num_reduce_tasks = 4;
  partitioned.run.distribute_partitioner =
      std::make_shared<mr::RangePartitioner>(4);
  EXPECT_THROW(PairwiseSession(cluster, id_job(), partitioned),
               PreconditionError);

  SessionOptions rootless;
  rootless.work_dir = "";
  EXPECT_THROW(PairwiseSession(cluster, id_job(), rootless),
               PreconditionError);

  PairwiseSession session(cluster, id_job());
  EXPECT_THROW(session.update({"a"}), PreconditionError);   // before submit
  EXPECT_THROW(session.query(0), PreconditionError);        // before submit
  EXPECT_THROW(session.submit({"solo"}), PreconditionError);

  session.submit(letter_payloads(4));
  EXPECT_THROW(session.submit(letter_payloads(4)), PreconditionError);
  EXPECT_THROW(session.update({}), PreconditionError);
  EXPECT_THROW(session.query(4), PreconditionError);  // out of range
  EXPECT_THROW(session.top_k(0, 2), PreconditionError);  // no score hook
}

// A failing update must be invisible: the merge lands in a fresh epoch
// directory and the state pointer flips only on success, so the session
// keeps serving its pre-update aggregates.
TEST(SessionTest, FailedUpdatePreservesServingState) {
  const std::uint64_t v = 6;
  mr::Cluster cluster({.num_nodes = 2, .worker_threads = 1});

  // The kernel detonates on any delta pair (an id past the base set) —
  // submit succeeds, update's compute job fails after max attempts. The
  // throw crosses the engine, so pin the in-process backend: a forked
  // worker would turn it into a worker loss and recover instead.
  PairwiseJob poisoned;
  poisoned.compute = [v](const Element& a, const Element& b) {
    if (a.id >= v || b.id >= v) {
      throw std::runtime_error("poisoned delta pair");
    }
    return workloads::encode_result(static_cast<double>(a.id + b.id));
  };
  SessionOptions options = scored_options();
  options.run.backend = mr::BackendKind::kInProcess;
  PairwiseSession session(cluster, poisoned, options);
  session.submit(letter_payloads(v));
  const std::string state_before = session.state_dir();
  const Element baseline = session.query(0);

  EXPECT_THROW(session.update({"new"}), std::runtime_error);

  EXPECT_EQ(session.num_elements(), v);
  EXPECT_EQ(session.epoch(), 0u);
  EXPECT_EQ(session.state_dir(), state_before);
  EXPECT_EQ(session.cumulative_evaluations(), pair_count(v));
  // Still serving: same bytes as before the failed update.
  EXPECT_EQ(session.query(0), baseline);
  EXPECT_EQ(session.top_k(0, 2).size(), 2u);
}

// True when this process has no child processes at all — a leaked fork
// worker (or a zombie) would show up as a waitable child.
bool no_children_remain() {
  const pid_t r = waitpid(-1, nullptr, WNOHANG);
  return r == -1 && errno == ECHILD;
}

// Crash recovery: SIGKILL the fork-backend workers hosting the first
// map and reduce attempts mid-update(). The engine reschedules onto
// fresh workers; the committed state must be byte-identical to a
// fault-free from-scratch batch run over the union — never torn.
TEST(SessionCrashRecoveryTest, WorkerSigkillMidUpdateNeverTearsState) {
  PAIRMR_SKIP_WITHOUT_FORK_SUPPORT();

  const std::uint64_t base_v = 9;
  const std::uint64_t delta_k = 4;
  auto payloads = letter_payloads(base_v + delta_k);
  const std::vector<std::string> base(payloads.begin(),
                                      payloads.begin() + base_v);
  const std::vector<std::string> delta(payloads.begin() + base_v,
                                       payloads.end());

  // The plan starts empty: submit runs clean, then the kills are armed
  // so they land inside update()'s delta and merge jobs.
  FaultPlan plan(4242);
  mr::Cluster cluster({.num_nodes = 4, .worker_threads = 2});
  std::string state_dir;
  std::vector<std::pair<std::string, std::vector<mr::Record>>> state;
  std::uint64_t retried = 0;
  {
    SessionOptions options;
    options.run.backend = mr::BackendKind::kFork;
    options.run.fault_plan = &plan;
    PairwiseSession session(cluster, id_job(), options);
    session.submit(base);

    plan.kill_worker(TaskKind::kMap, 0).kill_worker(TaskKind::kReduce, 0);
    const RunReport report = session.update(delta);
    retried = report.counter(mr::counter::kTasksRetried);
    EXPECT_EQ(session.num_elements(), base_v + delta_k);

    state_dir = session.state_dir();
    for (const std::string& path : cluster.dfs().list(state_dir)) {
      state.emplace_back(path.substr(state_dir.size()),
                         cluster.dfs().open(path)->records);
    }
    const Element& probe = session.query(base_v);
    EXPECT_EQ(probe.results.size(), base_v + delta_k - 1);
  }
  // The injected worker kills actually happened during update().
  EXPECT_GT(retried, 0u);
  // Session destroyed: its persistent worker pool must be fully reaped.
  EXPECT_TRUE(no_children_remain());

  // Fault-free from-scratch reference over the union, identical scheme
  // construction, on a pristine cluster.
  mr::Cluster reference({.num_nodes = 4, .worker_threads = 2});
  RunSpec spec;
  spec.input_paths = write_dataset(reference, "/data", payloads);
  spec.scheme = PairwiseSession::batch_scheme(
      SchemeKind::kBlock, base_v + delta_k, reference.num_nodes(), 0,
      PlaneConstruction::kTheorem2Prime);
  spec.job = id_job();
  const RunReport batch = PairwiseRunner(reference).run(spec);

  std::vector<std::pair<std::string, std::vector<mr::Record>>> expected;
  for (const std::string& path : reference.dfs().list(batch.output_dir)) {
    expected.emplace_back(path.substr(batch.output_dir.size()),
                          reference.dfs().open(path)->records);
  }
  EXPECT_EQ(state, expected);
}

}  // namespace
}  // namespace pairmr
