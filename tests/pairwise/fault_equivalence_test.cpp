// Cross-scheme fault-equivalence harness: for randomized datasets, the
// broadcast, block, and design pipelines running under injected faults
// (task kills, a node loss, dropped shuffle fetches, stragglers with
// speculative backups) must produce aggregated output byte-identical to
// the fault-free simple-API reference. Faults may only change cost —
// retries, recovery traffic — never results (paper §2: "tasks may get
// aborted and restarted at any time").
#include <gtest/gtest.h>

#include "../support/run_pairwise.hpp"

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "mr/cluster.hpp"
#include "mr/fault.hpp"
#include "pairwise/block_scheme.hpp"
#include "pairwise/broadcast_scheme.hpp"
#include "pairwise/dataset.hpp"
#include "pairwise/design_scheme.hpp"
#include "pairwise/pipeline.hpp"
#include "pairwise/quorum_scheme.hpp"
#include "pairwise/simple.hpp"
#include "common/rng.hpp"
#include "workloads/kernels.hpp"

namespace pairmr {
namespace {

using mr::FaultPlan;
using mr::TaskKind;

std::vector<std::string> random_payloads(std::uint64_t v,
                                         std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::string> payloads;
  for (std::uint64_t i = 0; i < v; ++i) {
    std::string p;
    const std::uint64_t len = 1 + rng.next_below(32);
    for (std::uint64_t k = 0; k < len; ++k) {
      p.push_back(static_cast<char>('a' + rng.next_below(26)));
    }
    payloads.push_back(std::move(p));
  }
  return payloads;
}

PairwiseJob test_job() {
  PairwiseJob job;
  job.compute = [](const Element& a, const Element& b) {
    const double la = static_cast<double>(a.payload.size());
    const double lb = static_cast<double>(b.payload.size());
    return workloads::encode_result(
        std::abs(la - lb) + 0.001 * static_cast<double>(a.id + b.id));
  };
  return job;
}

// The acceptance-criteria chaos: >=1 task kill, a node loss, >=1 dropped
// fetch, and >=1 straggler with a winning speculative backup — plus
// rate-based background noise derived from the dataset seed.
FaultPlan make_chaos_plan(std::uint64_t seed) {
  FaultPlan plan(seed);
  plan.with_task_kill_rate(0.25, 2)
      .with_fetch_drop_rate(0.2)
      .with_straggler_rate(0.2)
      .kill_task(TaskKind::kMap, 0)
      .kill_task(TaskKind::kReduce, 0)
      .fail_node(1)
      .drop_fetch(/*reduce_task=*/0, /*map_task=*/0)
      .mark_straggler(TaskKind::kMap, 1)
      .mark_straggler(TaskKind::kReduce, 1);
  return plan;
}

// Byte-identical comparison of aggregated outputs via the wire codec.
void expect_identical_elements(const std::vector<Element>& got,
                               const std::vector<Element>& want,
                               const std::string& label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(encode_element(got[i]), encode_element(want[i]))
        << label << " element " << i;
  }
}

std::uint64_t recovery_counters(const mr::JobResult& job,
                                const char* name) {
  return job.counter(name);
}

struct SchemeCase {
  std::string label;
  std::function<std::unique_ptr<DistributionScheme>(std::uint64_t)> make;
};

class FaultEquivalence
    : public ::testing::TestWithParam<std::tuple<SchemeCase, std::uint64_t>> {
};

TEST_P(FaultEquivalence, FaultedPipelineMatchesFaultFreeReference) {
  const auto& [scheme_case, seed] = GetParam();
  const std::uint64_t v = 16 + seed % 13;  // 3 distinct sizes
  const auto payloads = random_payloads(v, seed);

  // Fault-free reference via the simple API on its own pristine cluster.
  const std::vector<Element> reference =
      compute_all_pairs(payloads, test_job(), {.cluster = {.num_nodes = 4}});

  mr::Cluster cluster({.num_nodes = 4, .worker_threads = 2});
  const auto inputs = write_dataset(cluster, "/data", payloads);
  const auto scheme = scheme_case.make(v);
  const FaultPlan plan = make_chaos_plan(seed);
  PairwiseOptions options;
  options.fault_plan = &plan;

  const RunReport stats =
      pairmr::testing::run_two_job(cluster, inputs, *scheme, test_job(), options);

  expect_identical_elements(read_elements(cluster, stats.output_dir),
                            reference, scheme_case.label);

  // The injected chaos actually happened and is visible in JobResult.
  const std::uint64_t retried =
      recovery_counters(stats.compute_jobs.front(), mr::counter::kTasksRetried) +
      recovery_counters(stats.merge_jobs.front(), mr::counter::kTasksRetried);
  EXPECT_GT(retried, 0u);
  const std::uint64_t speculative =
      recovery_counters(stats.compute_jobs.front(),
                        mr::counter::kTasksSpeculative) +
      recovery_counters(stats.merge_jobs.front(), mr::counter::kTasksSpeculative);
  EXPECT_GT(speculative, 0u);
  EXPECT_FALSE(cluster.is_alive(1));  // the node loss stuck

  // Recovery accounting closes across both jobs: all remote traffic is
  // logical shuffle + cache broadcast + attributed recovery overhead.
  std::uint64_t accounted = 0;
  for (const mr::JobResult* job :
       {&stats.compute_jobs.front(), &stats.merge_jobs.front()}) {
    accounted += job->counter(mr::counter::kShuffleBytesRemote) +
                 job->counter(mr::counter::kCacheBroadcastBytes) +
                 job->counter(mr::counter::kRecoveryBytes);
  }
  EXPECT_EQ(cluster.network().remote_bytes(), accounted);
}

std::vector<SchemeCase> scheme_cases() {
  return {
      {"broadcast",
       [](std::uint64_t v) {
         return std::make_unique<BroadcastScheme>(v, 5);
       }},
      {"block",
       [](std::uint64_t v) { return std::make_unique<BlockScheme>(v, 4); }},
      {"design",
       [](std::uint64_t v) { return std::make_unique<DesignScheme>(v); }},
      {"quorum",
       [](std::uint64_t v) { return std::make_unique<QuorumScheme>(v); }},
  };
}

INSTANTIATE_TEST_SUITE_P(
    SchemesTimesDatasets, FaultEquivalence,
    ::testing::Combine(::testing::ValuesIn(scheme_cases()),
                       ::testing::Values(101u, 202u, 303u)),
    [](const auto& info) {
      return std::get<0>(info.param).label + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

// The one-job broadcast variant (§5.1) exercises the distributed-cache
// path under the same chaos: cache broadcast must skip the dead node and
// the output must still match.
TEST(FaultEquivalenceTest, BroadcastOneJobVariantUnderFaults) {
  const std::uint64_t v = 19;
  const auto payloads = random_payloads(v, 404);
  const std::vector<Element> reference =
      compute_all_pairs(payloads, test_job(), {.cluster = {.num_nodes = 4}});

  mr::Cluster cluster({.num_nodes = 4, .worker_threads = 2});
  const auto inputs = write_dataset(cluster, "/data", payloads);
  const FaultPlan plan = make_chaos_plan(404);
  PairwiseOptions options;
  options.fault_plan = &plan;

  const RunReport stats = pairmr::testing::run_broadcast(
      cluster, inputs, v, /*num_tasks=*/6, test_job(), options);

  expect_identical_elements(read_elements(cluster, stats.output_dir),
                            reference, "broadcast-one-job");
  EXPECT_GT(stats.compute_jobs.front().counter(mr::counter::kTasksRetried), 0u);
  EXPECT_FALSE(cluster.is_alive(1));
}

// The round-based driver (§7) aggregates after every round; chaos in any
// round or merge job must not corrupt the accumulated output.
TEST(FaultEquivalenceTest, RoundBasedExecutionUnderFaults) {
  const std::uint64_t v = 20;
  const auto payloads = random_payloads(v, 505);
  const std::vector<Element> reference =
      compute_all_pairs(payloads, test_job(), {.cluster = {.num_nodes = 4}});

  mr::Cluster cluster({.num_nodes = 4, .worker_threads = 2});
  const auto inputs = write_dataset(cluster, "/data", payloads);
  const BlockScheme scheme(v, 4);
  std::vector<std::vector<TaskId>> rounds(2);
  for (TaskId t = 0; t < scheme.num_tasks(); ++t) {
    rounds[t % 2].push_back(t);
  }
  const FaultPlan plan = make_chaos_plan(505);
  PairwiseOptions options;
  options.fault_plan = &plan;

  const RunReport stats =
      pairmr::testing::run_rounds(cluster, inputs, scheme, rounds, test_job(),
                          options);

  expect_identical_elements(read_elements(cluster, stats.output_dir),
                            reference, "rounds");
  std::uint64_t retried = 0;
  for (const auto& job : stats.compute_jobs) {
    retried += job.counter(mr::counter::kTasksRetried);
  }
  for (const auto& job : stats.merge_jobs) {
    retried += job.counter(mr::counter::kTasksRetried);
  }
  EXPECT_GT(retried, 0u);
}

}  // namespace
}  // namespace pairmr
