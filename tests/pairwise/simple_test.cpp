#include "pairwise/simple.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "workloads/generators.hpp"
#include "workloads/kernels.hpp"

namespace pairmr {
namespace {

PairwiseJob euclid_job() {
  PairwiseJob job;
  job.compute = workloads::euclidean_kernel();
  return job;
}

TEST(SimpleApiTest, ComputesAllPairsWithDefaults) {
  const auto points = workloads::clustered_points(12, 3, 2, 20.0, 7);
  const auto payloads = workloads::vector_payloads(points);
  const auto elements = compute_all_pairs(payloads, euclid_job());
  ASSERT_EQ(elements.size(), 12u);
  for (const auto& e : elements) {
    EXPECT_EQ(e.results.size(), 11u);
  }
  // Spot-check one distance against direct math.
  const double expected =
      workloads::euclidean_distance(points[0], points[5]);
  for (const auto& r : elements[0].results) {
    if (r.other == 5) {
      EXPECT_DOUBLE_EQ(workloads::decode_result(r.result), expected);
    }
  }
}

TEST(SimpleApiTest, AllSchemesAgree) {
  const auto payloads = workloads::vector_payloads(
      workloads::clustered_points(10, 2, 2, 10.0, 3));
  SimpleOptions broadcast;
  broadcast.scheme = SchemeKind::kBroadcast;
  SimpleOptions block;
  block.scheme = SchemeKind::kBlock;
  SimpleOptions design;
  design.scheme = SchemeKind::kDesign;
  const auto a = compute_all_pairs(payloads, euclid_job(), broadcast);
  const auto b = compute_all_pairs(payloads, euclid_job(), block);
  const auto c = compute_all_pairs(payloads, euclid_job(), design);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, c);
}

TEST(SimpleApiTest, ExplicitBlockFactorHonored) {
  const auto payloads = workloads::vector_payloads(
      workloads::clustered_points(9, 2, 1, 1.0, 3));
  SimpleOptions options;
  options.scheme = SchemeKind::kBlock;
  options.block_h = 3;
  const auto elements = compute_all_pairs(payloads, euclid_job(), options);
  EXPECT_EQ(elements.size(), 9u);
}

TEST(SimpleApiTest, TooFewElementsThrow) {
  EXPECT_THROW(compute_all_pairs({"only-one"}, euclid_job()),
               PreconditionError);
}

}  // namespace
}  // namespace pairmr
