// Property tests for similarity-join candidate generation (DESIGN.md §14):
// across thresholds {0, 0.25, 0.5, 0.75, 0.9, 1.0} × seeds, the prefix
// filter's candidate set is a SUPERSET of the true survivors (zero false
// negatives — the guarantee the differential oracle's byte-identity rests
// on), and every join run satisfies the Table 1 counter invariant
// pairs.candidate == pairs.survivor + pairs.pruned.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/intmath.hpp"
#include "mr/cluster.hpp"
#include "pairwise/block_scheme.hpp"
#include "pairwise/candidates.hpp"
#include "pairwise/dataset.hpp"
#include "pairwise/runner.hpp"
#include "pairwise/tokenset.hpp"
#include "workloads/generators.hpp"

namespace pairmr {
namespace {

constexpr std::uint64_t kV = 18;

std::vector<std::string> payloads_for(std::uint64_t seed) {
  return workloads::document_payloads(
      workloads::token_documents(kV, /*vocabulary=*/40, /*tokens_per_doc=*/8,
                                 seed));
}

// Ground truth straight from the definition: decode every payload and
// test all C(v,2) pairs with the exact kernel.
std::vector<ElementPair> true_survivors(const std::vector<std::string>& payloads,
                                        double threshold) {
  std::vector<std::vector<std::uint32_t>> sets;
  sets.reserve(payloads.size());
  for (const auto& p : payloads) sets.push_back(decode_token_set(p));
  std::vector<ElementPair> out;
  for (std::uint64_t i = 0; i < sets.size(); ++i) {
    for (std::uint64_t j = i + 1; j < sets.size(); ++j) {
      if (jaccard_similarity(sets[i], sets[j]) >= threshold) {
        out.push_back({i, j});
      }
    }
  }
  return out;
}

CandidatePhase run_candidate_phase(const std::vector<std::string>& payloads,
                                   double threshold, CandidateFilter filter) {
  mr::Cluster cluster({.num_nodes = 4, .worker_threads = 2});
  const auto inputs = write_dataset(cluster, "/data", payloads);
  PairwiseOptions options;
  options.similarity_join.threshold = threshold;
  options.similarity_join.filter = filter;
  mr::backend::BackendSession session(cluster, options.backend);
  return generate_candidates(cluster, session, inputs, payloads.size(),
                             options);
}

struct Sweep {
  double threshold;
  std::uint64_t seed;
};

std::string sweep_name(const Sweep& s) {
  std::string t = std::to_string(s.threshold);
  std::replace(t.begin(), t.end(), '.', '_');
  while (!t.empty() && t.back() == '0') t.pop_back();
  if (!t.empty() && t.back() == '_') t.push_back('0');
  return "t" + t + "_seed" + std::to_string(s.seed);
}

class SimjoinProperty : public ::testing::TestWithParam<Sweep> {};

TEST_P(SimjoinProperty, PrefixCandidatesAreSupersetOfTrueSurvivors) {
  const auto [threshold, seed] = GetParam();
  const auto payloads = payloads_for(seed);
  const auto truth = true_survivors(payloads, threshold);
  const CandidatePhase phase =
      run_candidate_phase(payloads, threshold, CandidateFilter::kPrefix);

  if (threshold <= 0.0) {
    // J ≥ 0 holds for every pair, including fully disjoint sets that
    // share no prefix token — the phase must bail out to exhaustive
    // rather than filter.
    EXPECT_TRUE(phase.exhaustive);
    EXPECT_TRUE(phase.candidates.empty());
    EXPECT_TRUE(phase.jobs.empty());
    EXPECT_EQ(truth.size(), pair_count(payloads.size()));
    return;
  }

  EXPECT_FALSE(phase.exhaustive);
  // Zero false negatives: every true survivor is a candidate.
  for (const ElementPair& p : truth) {
    EXPECT_TRUE(phase.candidates.contains(p))
        << "lost survivor (" << p.lo << ", " << p.hi << ") at t="
        << threshold;
  }
  EXPECT_GE(phase.candidates.size(), truth.size());
  // Candidates stay in range and strictly below the exhaustive count for
  // thresholds with real pruning power on this dataset.
  for (const ElementPair& p : phase.candidates.pairs()) {
    EXPECT_LT(p.lo, p.hi);
    EXPECT_LT(p.hi, payloads.size());
  }
  if (threshold >= 0.5) {
    EXPECT_LT(phase.candidates.size(), pair_count(payloads.size()));
  }
}

TEST_P(SimjoinProperty, JoinRunHoldsCounterInvariantAndMatchesTruth) {
  const auto [threshold, seed] = GetParam();
  const auto payloads = payloads_for(seed);
  const auto truth = true_survivors(payloads, threshold);

  mr::Cluster cluster({.num_nodes = 4, .worker_threads = 2});
  const auto inputs = write_dataset(cluster, "/data", payloads);
  const BlockScheme scheme(payloads.size(), 3);

  RunSpec spec;
  spec.input_paths = inputs;
  spec.mode = RunMode::kSimilarityJoin;
  spec.scheme = borrow_scheme(scheme);
  spec.options.similarity_join.threshold = threshold;
  const RunReport report = PairwiseRunner(cluster).run(spec);

  // Table 1 invariant, per run, at every threshold.
  EXPECT_EQ(report.candidate_pairs,
            report.survivor_pairs + report.pruned_pairs);
  EXPECT_EQ(report.candidate_pairs, report.evaluations);
  // The exact kernel settles every candidate, so survivors == truth even
  // though the candidate set is over-inclusive.
  EXPECT_EQ(report.survivor_pairs, truth.size());
  EXPECT_LE(report.survivor_pairs, report.candidate_pairs);
  EXPECT_LE(report.candidate_pairs, pair_count(payloads.size()));
}

INSTANTIATE_TEST_SUITE_P(
    ThresholdsTimesSeeds, SimjoinProperty,
    ::testing::Values(Sweep{0.0, 1}, Sweep{0.0, 2}, Sweep{0.0, 3},
                      Sweep{0.25, 1}, Sweep{0.25, 2}, Sweep{0.25, 3},
                      Sweep{0.5, 1}, Sweep{0.5, 2}, Sweep{0.5, 3},
                      Sweep{0.75, 1}, Sweep{0.75, 2}, Sweep{0.75, 3},
                      Sweep{0.9, 1}, Sweep{0.9, 2}, Sweep{0.9, 3},
                      Sweep{1.0, 1}, Sweep{1.0, 2}, Sweep{1.0, 3}),
    [](const auto& info) { return sweep_name(info.param); });

// --- LSH banding ---------------------------------------------------------

TEST(SimjoinLshProperty, DeterministicForFixedSeed) {
  const auto payloads = payloads_for(11);
  const CandidatePhase a =
      run_candidate_phase(payloads, 0.5, CandidateFilter::kLshBanding);
  const CandidatePhase b =
      run_candidate_phase(payloads, 0.5, CandidateFilter::kLshBanding);
  EXPECT_EQ(a.candidates.pairs(), b.candidates.pairs());
  EXPECT_FALSE(a.exhaustive);
}

TEST(SimjoinLshProperty, IdenticalDocumentsAlwaysCollide) {
  // Identical sets produce identical signatures, hence share every band
  // bucket; the same holds for two empty documents via the sentinel.
  auto payloads = payloads_for(12);
  payloads[3] = payloads[7];                  // force an identical pair
  payloads[1] = encode_token_set({});         // and two empty documents
  payloads[5] = encode_token_set({});
  const CandidatePhase phase =
      run_candidate_phase(payloads, 0.9, CandidateFilter::kLshBanding);
  EXPECT_TRUE(phase.candidates.contains({3, 7}));
  EXPECT_TRUE(phase.candidates.contains({1, 5}));
}

TEST(SimjoinLshProperty, SurvivorsAreExactDespiteProbabilisticCandidates) {
  // LSH may miss borderline pairs (false negatives are allowed) but every
  // pair it does evaluate is settled by the exact kernel: survivors must
  // be a subset of the ground truth with matching similarities.
  const auto payloads = payloads_for(13);
  const auto truth = true_survivors(payloads, 0.5);

  mr::Cluster cluster({.num_nodes = 4, .worker_threads = 2});
  const auto inputs = write_dataset(cluster, "/data", payloads);
  const BlockScheme scheme(payloads.size(), 3);

  RunSpec spec;
  spec.input_paths = inputs;
  spec.mode = RunMode::kSimilarityJoin;
  spec.scheme = borrow_scheme(scheme);
  spec.options.similarity_join.threshold = 0.5;
  spec.options.similarity_join.filter = CandidateFilter::kLshBanding;
  const RunReport report = PairwiseRunner(cluster).run(spec);

  EXPECT_EQ(report.candidate_pairs,
            report.survivor_pairs + report.pruned_pairs);
  EXPECT_LE(report.survivor_pairs, truth.size());
}

}  // namespace
}  // namespace pairmr
