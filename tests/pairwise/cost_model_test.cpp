// Cost-model tests: Table 1 instantiations, the Figure 8 dataset-size
// ceilings, and the Figure 9 blocking-factor analysis — including the
// paper's 4 GB ⇒ h ∈ [39, 263] spot check.
#include "pairwise/cost_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.hpp"
#include "common/units.hpp"

namespace pairmr {
namespace {

constexpr Limits kPaperLimits{
    .max_working_set_bytes = 200 * kMiB,
    .max_intermediate_bytes = kTiB,
};

TEST(Table1Test, BroadcastColumn) {
  const SchemeMetrics m = broadcast_metrics(10000, 16);
  EXPECT_EQ(m.num_tasks, 16u);
  EXPECT_DOUBLE_EQ(m.communication_elements, 2.0 * 10000 * 16);
  EXPECT_DOUBLE_EQ(m.replication_factor, 16.0);
  EXPECT_DOUBLE_EQ(m.working_set_elements, 10000.0);
  EXPECT_DOUBLE_EQ(m.evaluations_per_task, 10000.0 * 9999 / 2 / 16);
}

TEST(Table1Test, BlockColumn) {
  const SchemeMetrics m = block_metrics(10000, 10);
  EXPECT_EQ(m.num_tasks, 55u);  // h(h+1)/2
  EXPECT_DOUBLE_EQ(m.communication_elements, 2.0 * 10000 * 10);
  EXPECT_DOUBLE_EQ(m.replication_factor, 10.0);
  EXPECT_DOUBLE_EQ(m.working_set_elements, 2000.0);
  EXPECT_DOUBLE_EQ(m.evaluations_per_task, 1000.0 * 1000);
}

TEST(Table1Test, DesignColumnWithCommunicationCap) {
  // Communication ≈ 2v√v but capped at 2vn ("sending to all nodes").
  const SchemeMetrics uncapped = design_metrics_approx(10000, 1000);
  EXPECT_DOUBLE_EQ(uncapped.communication_elements, 2.0 * 10000 * 100);
  const SchemeMetrics capped = design_metrics_approx(10000, 16);
  EXPECT_DOUBLE_EQ(capped.communication_elements, 2.0 * 10000 * 16);
  EXPECT_DOUBLE_EQ(capped.replication_factor, 100.0);
  EXPECT_DOUBLE_EQ(capped.working_set_elements, 100.0);
  EXPECT_DOUBLE_EQ(capped.evaluations_per_task, 9999.0 / 2);
}

TEST(Fig8aTest, BroadcastCeilingIsMaxwsOverS) {
  // 10,000 × 500 KB elements = ~5 GB dataset (paper §3 example):
  // broadcast needs the whole 5 GB in memory — infeasible at 200 MB.
  EXPECT_EQ(broadcast_max_v(500 * kKiB, 200 * kMiB), 409u);
  EXPECT_EQ(broadcast_max_v(10 * kKiB, 200 * kMiB), 20480u);
  EXPECT_EQ(broadcast_max_v(10 * kKiB, kGiB), 104857u);
  // Doubling memory doubles the ceiling (the Fig 8a series are parallel
  // lines in log-log space).
  EXPECT_EQ(broadcast_max_v(10 * kKiB, 400 * kMiB),
            2 * broadcast_max_v(10 * kKiB, 200 * kMiB));
}

TEST(Fig8bTest, DesignStorageCeiling) {
  // v^1.5 · s <= maxis  =>  v <= (maxis/s)^(2/3); exact integer floor.
  const std::uint64_t v = design_max_v_by_storage(kMiB, kTiB);
  const double check = static_cast<double>(v);
  EXPECT_LE(check * std::sqrt(check) * static_cast<double>(kMiB),
            static_cast<double>(kTiB) * 1.0000001);
  const double above = static_cast<double>(v + 1);
  EXPECT_GT(above * std::sqrt(above) * static_cast<double>(kMiB),
            static_cast<double>(kTiB));
  // 1 TiB / 1 MiB = 2^20  =>  v = 2^(40/3) ≈ 10321.
  EXPECT_EQ(v, 10321u);
}

TEST(Fig8bTest, StorageCeilingScalesWithMaxis) {
  // 10× storage shifts the design line up by 10^(2/3) ≈ 4.64.
  const std::uint64_t v1 = design_max_v_by_storage(100 * kKiB, kTiB);
  const std::uint64_t v10 = design_max_v_by_storage(100 * kKiB, 10 * kTiB);
  const double ratio = static_cast<double>(v10) / static_cast<double>(v1);
  EXPECT_NEAR(ratio, std::pow(10.0, 2.0 / 3.0), 0.01);
}

TEST(Fig9aTest, PaperSpotCheck4GB) {
  // Paper: "Having, e.g., a dataset of size 4GB, it follows that h can be
  // chosen arbitrarily between 39 and 263" (maxws 200MB, maxis 1TB).
  // With our binary units: lower bound ceil(2·4e9/200MiB) = 39 matches;
  // the upper bound floor(1TiB/4e9) = 274 brackets the paper's 263
  // (the paper's exact unit base is unstated).
  const HRange r = block_h_range(4'000'000'000ull, kPaperLimits);
  EXPECT_EQ(r.lo, 39u);
  EXPECT_EQ(r.hi, 274u);
  EXPECT_TRUE(r.valid());
}

TEST(Fig9aTest, BoundsCrossAtTheFeasibilityLimit) {
  // vs_max = sqrt(maxws·maxis/2), the continuous intersection of the two
  // bounds. At the exact boundary the real-valued bounds coincide at a
  // non-integer h, so the integer range can be empty right at vs_max —
  // check validity just inside and invalidity just outside instead.
  const std::uint64_t vs_max = block_max_dataset_bytes(kPaperLimits);
  EXPECT_TRUE(block_h_range(vs_max - vs_max / 100, kPaperLimits).valid());
  EXPECT_FALSE(block_h_range(vs_max + vs_max / 100, kPaperLimits).valid());
  // sqrt(200MiB · 1TiB / 2) = sqrt(100 · 2^60) = exactly 10 GiB.
  EXPECT_EQ(vs_max, 10 * kGiB);
}

TEST(Fig9aTest, LowerBoundRisesUpperFallsWithDatasetSize) {
  const HRange small = block_h_range(kGiB, kPaperLimits);
  const HRange large = block_h_range(4 * kGiB, kPaperLimits);
  EXPECT_LE(small.lo, large.lo);
  EXPECT_GE(small.hi, large.hi);
}

TEST(Fig9bTest, BroadcastOnlyReasonableForSmallDatasets) {
  // The paper's chart: broadcast's ceiling sits far below the others for
  // every element size.
  for (const std::uint64_t s : {10 * kKiB, 100 * kKiB, kMiB, 10 * kMiB}) {
    EXPECT_LT(broadcast_max_v(s, kPaperLimits), block_max_v(s, kPaperLimits));
    EXPECT_LT(broadcast_max_v(s, kPaperLimits),
              design_max_v(s, kPaperLimits));
  }
}

TEST(Fig9bTest, BlockDesignCrossOverNearOneMB) {
  // Paper: "for large elements (> 1MB) the design approach allows a few
  // more elements in the dataset than the block approach does."
  EXPECT_GT(block_max_v(10 * kKiB, kPaperLimits),
            design_max_v(10 * kKiB, kPaperLimits));
  EXPECT_GT(block_max_v(100 * kKiB, kPaperLimits),
            design_max_v(100 * kKiB, kPaperLimits));
  EXPECT_LT(block_max_v(4 * kMiB, kPaperLimits),
            design_max_v(4 * kMiB, kPaperLimits));
  EXPECT_LT(block_max_v(10 * kMiB, kPaperLimits),
            design_max_v(10 * kMiB, kPaperLimits));
}

TEST(Fig9bTest, DesignMemoryBoundExposedSeparately) {
  // √v·s <= maxws  =>  v <= (maxws/s)². Figure 9b does not apply this
  // bound to the design curve, but the planner does.
  EXPECT_EQ(design_max_v_by_memory(kMiB, 10 * kMiB), 100u);
  EXPECT_EQ(design_max_v_by_memory(kKiB, kMiB), 1024u * 1024u);
}

TEST(CostModelTest, WorkingSetByteFunctions) {
  EXPECT_EQ(broadcast_working_set_bytes(1000, 2 * kKiB), 2000 * kKiB);
  EXPECT_EQ(block_working_set_bytes(1000, 10, kKiB), 200 * kKiB);
  // √1000 ≈ 31.6 -> isqrt + 1 = 32 elements.
  EXPECT_EQ(design_working_set_bytes(1000, kKiB), 32 * kKiB);
}

TEST(CostModelTest, IntermediateByteFunctions) {
  EXPECT_EQ(broadcast_intermediate_bytes(100, 4, kKiB), 400 * kKiB);
  EXPECT_EQ(block_intermediate_bytes(100, 4, kKiB), 400 * kKiB);
  EXPECT_EQ(design_intermediate_bytes(100, kKiB), 100 * 11 * kKiB);
}

TEST(CostModelTest, InvalidInputsThrow) {
  EXPECT_THROW(broadcast_metrics(1, 1), PreconditionError);
  EXPECT_THROW(block_metrics(10, 0), PreconditionError);
  EXPECT_THROW(broadcast_max_v(0, kMiB), PreconditionError);
  EXPECT_THROW(block_h_range(0, kPaperLimits), PreconditionError);
  EXPECT_THROW(block_h_range(kGiB, Limits{}), PreconditionError);
}

}  // namespace
}  // namespace pairmr
