// Prepared-kernel equivalence: a job carrying a decode-once
// PreparedKernel must be byte-identical — output files AND counters — to
// the same job with the kernel stripped (the seed ComputeFn path). The
// optimization may change only where decoding happens, never a single
// observable byte. Covered: the two-job pipeline across broadcast, block,
// and design schemes, the one-job broadcast variant, and the round-based
// driver, each fault-free and under the fault-equivalence chaos fixture.
#include <gtest/gtest.h>

#include "../support/run_pairwise.hpp"

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "mr/cluster.hpp"
#include "mr/fault.hpp"
#include "pairwise/block_scheme.hpp"
#include "pairwise/broadcast_scheme.hpp"
#include "pairwise/dataset.hpp"
#include "pairwise/design_scheme.hpp"
#include "pairwise/pipeline.hpp"
#include "pairwise/quorum_scheme.hpp"
#include "workloads/generators.hpp"
#include "workloads/kernels.hpp"

namespace pairmr {
namespace {

using mr::FaultPlan;
using mr::TaskKind;

// The fault_equivalence_test chaos fixture: task kills, a node loss,
// dropped fetches, and stragglers with winning backups.
FaultPlan make_chaos_plan(std::uint64_t seed) {
  FaultPlan plan(seed);
  plan.with_task_kill_rate(0.25, 2)
      .with_fetch_drop_rate(0.2)
      .with_straggler_rate(0.2)
      .kill_task(TaskKind::kMap, 0)
      .kill_task(TaskKind::kReduce, 0)
      .fail_node(1)
      .drop_fetch(/*reduce_task=*/0, /*map_task=*/0)
      .mark_straggler(TaskKind::kMap, 1)
      .mark_straggler(TaskKind::kReduce, 1);
  return plan;
}

struct KernelCase {
  std::string label;
  std::vector<std::string> payloads;
  PairwiseJob plain;     // ComputeFn only (the seed path)
  PairwiseJob prepared;  // same compute + the decode-once kernel
};

std::vector<KernelCase> kernel_cases(std::uint64_t v) {
  std::vector<KernelCase> cases(2);

  cases[0].label = "euclidean";
  cases[0].payloads = workloads::vector_payloads(
      workloads::clustered_points(v, /*dim=*/4, /*num_clusters=*/3,
                                  /*spread=*/10.0, /*seed=*/11));
  cases[0].plain.compute = workloads::euclidean_kernel();
  cases[0].prepared.compute = workloads::euclidean_kernel();
  cases[0].prepared.prepared = workloads::euclidean_prepared();

  cases[1].label = "jaccard";
  cases[1].payloads = workloads::document_payloads(workloads::token_documents(
      v, /*vocabulary=*/64, /*tokens_per_doc=*/12, /*seed=*/22));
  cases[1].plain.compute = workloads::jaccard_kernel();
  // A keep-filter exercises the (a, b, result) hook on both paths.
  cases[1].plain.keep = workloads::keep_above(0.05);
  cases[1].prepared = cases[1].plain;
  cases[1].prepared.prepared = workloads::jaccard_prepared();

  return cases;
}

using RunFn = std::function<RunReport(
    mr::Cluster&, const std::vector<std::string>&, const PairwiseJob&,
    const PairwiseOptions&)>;

// Run both jobs on identical fresh clusters and demand byte-identical
// output files and identical counter maps for every MR job involved.
void expect_equivalent(const RunFn& run, const KernelCase& kernel,
                       const FaultPlan* plan, const std::string& label) {
  RunReport stats[2];
  std::vector<mr::Record> outputs[2];
  std::vector<std::string> paths[2];
  const PairwiseJob* jobs[2] = {&kernel.plain, &kernel.prepared};
  for (int i = 0; i < 2; ++i) {
    mr::Cluster cluster({.num_nodes = 4, .worker_threads = 2});
    const auto inputs = write_dataset(cluster, "/data", kernel.payloads);
    PairwiseOptions options;
    options.fault_plan = plan;
    stats[i] = run(cluster, inputs, *jobs[i], options);
    paths[i] = cluster.dfs().list(stats[i].output_dir);
    outputs[i] = cluster.gather_records(stats[i].output_dir);
  }
  EXPECT_EQ(paths[0], paths[1]) << label;
  EXPECT_EQ(outputs[0], outputs[1]) << label;
  ASSERT_EQ(stats[0].compute_jobs.size(), stats[1].compute_jobs.size())
      << label;
  for (std::size_t j = 0; j < stats[0].compute_jobs.size(); ++j) {
    EXPECT_EQ(stats[0].compute_jobs[j].counters,
              stats[1].compute_jobs[j].counters)
        << label << " compute counters, job " << j;
  }
  ASSERT_EQ(stats[0].merge_jobs.size(), stats[1].merge_jobs.size()) << label;
  for (std::size_t j = 0; j < stats[0].merge_jobs.size(); ++j) {
    EXPECT_EQ(stats[0].merge_jobs[j].counters, stats[1].merge_jobs[j].counters)
        << label << " merge counters, job " << j;
  }
  EXPECT_EQ(stats[0].evaluations, stats[1].evaluations) << label;
  EXPECT_EQ(stats[0].results_kept, stats[1].results_kept) << label;
}

RunFn scheme_runner(
    std::function<std::unique_ptr<DistributionScheme>(std::uint64_t)> make,
    std::uint64_t v) {
  return [make, v](mr::Cluster& cluster,
                   const std::vector<std::string>& inputs,
                   const PairwiseJob& job, const PairwiseOptions& options) {
    const auto scheme = make(v);
    return pairmr::testing::run_two_job(cluster, inputs, *scheme, job, options);
  };
}

TEST(PreparedEquivalenceTest, TwoJobPipelineAcrossSchemes) {
  const std::uint64_t v = 18;
  const FaultPlan chaos = make_chaos_plan(77);
  const std::vector<
      std::pair<std::string,
                std::function<std::unique_ptr<DistributionScheme>(
                    std::uint64_t)>>>
      schemes = {
          {"broadcast",
           [](std::uint64_t n) {
             return std::make_unique<BroadcastScheme>(n, 5);
           }},
          {"block",
           [](std::uint64_t n) { return std::make_unique<BlockScheme>(n, 4); }},
          {"design",
           [](std::uint64_t n) { return std::make_unique<DesignScheme>(n); }},
          {"quorum",
           [](std::uint64_t n) { return std::make_unique<QuorumScheme>(n); }},
      };
  for (const auto& kernel : kernel_cases(v)) {
    for (const auto& [name, make] : schemes) {
      expect_equivalent(scheme_runner(make, v), kernel, nullptr,
                        kernel.label + "/" + name + "/fault-free");
      expect_equivalent(scheme_runner(make, v), kernel, &chaos,
                        kernel.label + "/" + name + "/chaos");
    }
  }
}

TEST(PreparedEquivalenceTest, OneJobBroadcastVariant) {
  const std::uint64_t v = 17;
  const FaultPlan chaos = make_chaos_plan(88);
  const RunFn run = [v](mr::Cluster& cluster,
                        const std::vector<std::string>& inputs,
                        const PairwiseJob& job,
                        const PairwiseOptions& options) {
    return pairmr::testing::run_broadcast(cluster, inputs, v, /*num_tasks=*/6, job,
                                  options);
  };
  for (const auto& kernel : kernel_cases(v)) {
    expect_equivalent(run, kernel, nullptr, kernel.label + "/onejob");
    expect_equivalent(run, kernel, &chaos, kernel.label + "/onejob-chaos");
  }
}

TEST(PreparedEquivalenceTest, RoundBasedDriver) {
  const std::uint64_t v = 16;
  const FaultPlan chaos = make_chaos_plan(99);
  const RunFn run = [v](mr::Cluster& cluster,
                        const std::vector<std::string>& inputs,
                        const PairwiseJob& job,
                        const PairwiseOptions& options) {
    const BlockScheme scheme(v, 4);
    std::vector<std::vector<TaskId>> rounds(2);
    for (TaskId t = 0; t < scheme.num_tasks(); ++t) {
      rounds[t % 2].push_back(t);
    }
    return pairmr::testing::run_rounds(cluster, inputs, scheme, rounds, job,
                                       options);
  };
  for (const auto& kernel : kernel_cases(v)) {
    expect_equivalent(run, kernel, nullptr, kernel.label + "/rounds");
    expect_equivalent(run, kernel, &chaos, kernel.label + "/rounds-chaos");
  }
}

// The symmetry mode drives a different evaluate() shape; the non-symmetric
// path must also be identical between the two kernels.
TEST(PreparedEquivalenceTest, NonSymmetricJobs) {
  const std::uint64_t v = 14;
  for (auto kernel : kernel_cases(v)) {
    kernel.plain.symmetry = Symmetry::kNonSymmetric;
    kernel.prepared.symmetry = Symmetry::kNonSymmetric;
    expect_equivalent(scheme_runner(
                          [](std::uint64_t n) {
                            return std::make_unique<BlockScheme>(n, 3);
                          },
                          v),
                      kernel, nullptr, kernel.label + "/non-symmetric");
  }
}

}  // namespace
}  // namespace pairmr
