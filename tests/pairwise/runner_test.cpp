// PairwiseRunner facade tests: cross-mode output equivalence (two-job vs
// broadcast vs rounds), scheme-handle ownership, the delta driver's pair
// tiling, run_planned's plan→scheme→execute chaining (including the §7
// rounds fallback when nothing is feasible), and the up-front option
// validation's actionable failures.
#include "pairwise/runner.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/intmath.hpp"
#include "mr/cluster.hpp"
#include "pairwise/block_scheme.hpp"
#include "pairwise/dataset.hpp"
#include "pairwise/design_scheme.hpp"
#include "pairwise/pipeline.hpp"
#include "pairwise/quorum_scheme.hpp"
#include "workloads/kernels.hpp"

namespace pairmr {
namespace {

std::vector<std::string> payloads_for(std::uint64_t v) {
  std::vector<std::string> payloads;
  for (std::uint64_t i = 0; i < v; ++i) {
    payloads.push_back("payload-" + std::to_string(i * 31 % 17));
  }
  return payloads;
}

PairwiseJob test_job() {
  PairwiseJob job;
  job.compute = [](const Element& a, const Element& b) {
    return workloads::encode_result(static_cast<double>(
        a.payload.size() * 3 + b.payload.size() + a.id + b.id));
  };
  return job;
}

std::vector<std::string> encoded_output(mr::Cluster& cluster,
                                        const std::string& dir) {
  std::vector<std::string> out;
  for (const Element& e : read_elements(cluster, dir)) {
    out.push_back(encode_element(e));
  }
  return out;
}

TEST(PairwiseRunnerTest, TwoJobModeIsDeterministicAcrossClusters) {
  const std::uint64_t v = 14;
  const auto payloads = payloads_for(v);
  const BlockScheme scheme(v, 4);

  auto run_once = [&](mr::Cluster& cluster) {
    RunSpec spec;
    spec.input_paths = write_dataset(cluster, "/data", payloads);
    spec.mode = RunMode::kTwoJob;
    spec.scheme = borrow_scheme(scheme);
    spec.job = test_job();
    return PairwiseRunner(cluster).run(spec);
  };

  mr::Cluster a({.num_nodes = 3, .worker_threads = 2});
  mr::Cluster b({.num_nodes = 3, .worker_threads = 2});
  const RunReport first = run_once(a);
  const RunReport second = run_once(b);

  EXPECT_EQ(first.mode, RunMode::kTwoJob);
  ASSERT_EQ(first.compute_jobs.size(), 1u);
  ASSERT_EQ(first.merge_jobs.size(), 1u);
  EXPECT_TRUE(first.aggregated);
  EXPECT_EQ(first.evaluations, pair_count(v));
  EXPECT_EQ(first.evaluations, second.evaluations);
  EXPECT_EQ(first.results_kept, second.results_kept);
  EXPECT_DOUBLE_EQ(first.replication_factor, second.replication_factor);
  EXPECT_EQ(first.intermediate_bytes, second.intermediate_bytes);
  EXPECT_EQ(first.shuffle_remote_bytes, second.shuffle_remote_bytes);
  EXPECT_EQ(first.output_dir, second.output_dir);
  EXPECT_EQ(encoded_output(a, first.output_dir),
            encoded_output(b, second.output_dir));
  EXPECT_FALSE(first.planned);
  if (std::getenv("PAIRMR_TEST_MEMORY_BUDGET") == nullptr) {
    EXPECT_EQ(first.spill_runs, 0u);  // no budget configured
  }
}

TEST(PairwiseRunnerTest, BroadcastModeMatchesTwoJobOutput) {
  const std::uint64_t v = 13;
  const auto payloads = payloads_for(v);

  mr::Cluster ref_cluster({.num_nodes = 3, .worker_threads = 2});
  RunSpec ref_spec;
  ref_spec.input_paths = write_dataset(ref_cluster, "/data", payloads);
  ref_spec.scheme = std::make_shared<BlockScheme>(v, 4);
  ref_spec.job = test_job();
  const RunReport ref = PairwiseRunner(ref_cluster).run(ref_spec);

  mr::Cluster cluster({.num_nodes = 3, .worker_threads = 2});
  RunSpec spec;
  spec.input_paths = write_dataset(cluster, "/data", payloads);
  spec.mode = RunMode::kBroadcast;
  spec.broadcast = BroadcastTarget{.v = v, .num_tasks = 5};
  spec.job = test_job();
  const RunReport report = PairwiseRunner(cluster).run(spec);

  ASSERT_EQ(report.compute_jobs.size(), 1u);
  EXPECT_TRUE(report.merge_jobs.empty());
  EXPECT_TRUE(report.aggregated);
  EXPECT_EQ(report.evaluations, pair_count(v));
  EXPECT_GT(report.cache_broadcast_bytes, 0u);
  // The one-job §5.1 variant computes the same aggregated elements as
  // the generic two-job pipeline over any exact scheme.
  EXPECT_EQ(encoded_output(cluster, report.output_dir),
            encoded_output(ref_cluster, ref.output_dir));
}

TEST(PairwiseRunnerTest, RoundsModeMatchesTwoJobOutput) {
  const std::uint64_t v = 15;
  const auto payloads = payloads_for(v);
  const BlockScheme scheme(v, 4);
  std::vector<std::vector<TaskId>> rounds(3);
  for (TaskId t = 0; t < scheme.num_tasks(); ++t) rounds[t % 3].push_back(t);

  mr::Cluster ref_cluster({.num_nodes = 3, .worker_threads = 2});
  RunSpec ref_spec;
  ref_spec.input_paths = write_dataset(ref_cluster, "/data", payloads);
  ref_spec.scheme = borrow_scheme(scheme);
  ref_spec.job = test_job();
  const RunReport ref = PairwiseRunner(ref_cluster).run(ref_spec);

  mr::Cluster cluster({.num_nodes = 3, .worker_threads = 2});
  RunSpec spec;
  spec.input_paths = write_dataset(cluster, "/data", payloads);
  spec.mode = RunMode::kRounds;
  spec.scheme = borrow_scheme(scheme);
  spec.rounds = rounds;
  spec.job = test_job();
  const RunReport report = PairwiseRunner(cluster).run(spec);

  EXPECT_EQ(report.compute_jobs.size(), rounds.size());
  EXPECT_EQ(report.merge_jobs.size(), rounds.size());
  EXPECT_EQ(report.evaluations, ref.evaluations);
  // Per-round aggregation bounds intermediate volume by the largest
  // single round, never above the flat run's full materialization.
  EXPECT_LE(report.intermediate_bytes, ref.intermediate_bytes);
  EXPECT_EQ(encoded_output(cluster, report.output_dir),
            encoded_output(ref_cluster, ref.output_dir));
}

TEST(PairwiseRunnerTest, CounterSumsAcrossJobsAndMaxMergesPeaks) {
  const auto payloads = payloads_for(12);
  const BlockScheme scheme(12, 3);
  mr::Cluster cluster({.num_nodes = 3, .worker_threads = 2});
  RunSpec spec;
  spec.input_paths = write_dataset(cluster, "/data", payloads);
  spec.scheme = borrow_scheme(scheme);
  spec.job = test_job();
  const RunReport report = PairwiseRunner(cluster).run(spec);

  std::uint64_t manual_sum = 0;
  std::uint64_t manual_max = 0;
  for (const auto* jobs : {&report.compute_jobs, &report.merge_jobs}) {
    for (const auto& job : *jobs) {
      manual_sum += job.counter(mr::counter::kMapInputRecords);
      manual_max = std::max(
          manual_max, job.counter(mr::counter::kReduceMaxGroupRecords));
    }
  }
  EXPECT_EQ(report.counter(mr::counter::kMapInputRecords), manual_sum);
  EXPECT_EQ(report.counter(mr::counter::kReduceMaxGroupRecords), manual_max);
}

// --- run_planned ---------------------------------------------------------

PlanRequest planned_request(std::uint64_t v, std::uint64_t num_nodes) {
  PlanRequest request;
  request.v = v;
  request.element_bytes = 16;
  request.num_nodes = num_nodes;
  request.limits.max_working_set_bytes = 1ull << 30;
  request.limits.max_intermediate_bytes = 1ull << 30;
  return request;
}

TEST(RunPlannedTest, FeasiblePlanExecutesChosenScheme) {
  const std::uint64_t v = 16;
  const auto payloads = payloads_for(v);
  mr::Cluster cluster({.num_nodes = 4, .worker_threads = 2});
  const auto inputs = write_dataset(cluster, "/data", payloads);

  const RunReport report = PairwiseRunner(cluster).run_planned(
      planned_request(v, 4), inputs, test_job());

  EXPECT_TRUE(report.planned);
  EXPECT_TRUE(report.plan.feasible);
  EXPECT_FALSE(report.fell_back_to_rounds);
  EXPECT_GT(report.evaluations, 0u);
  EXPECT_FALSE(encoded_output(cluster, report.output_dir).empty());
}

TEST(RunPlannedTest, ManyNodeRegimeSelectsAndExecutesQuorum) {
  // v = 30 at 16 B/element on 100 planner nodes with a 256 B working-set
  // limit: broadcast (480 B) does not fit, and block would need h = 14
  // (triangular(14) = 105 >= n) — replication 14, past the quorum cover
  // budget 2(√30+1) = 12. run_planned must pick quorum and the report's
  // measured Table 1 row must match the scheme's analytic one exactly.
  const std::uint64_t v = 30;
  const auto payloads = payloads_for(v);
  mr::Cluster cluster({.num_nodes = 4, .worker_threads = 2});
  const auto inputs = write_dataset(cluster, "/data", payloads);

  PlanRequest request;
  request.v = v;
  request.element_bytes = 16;
  request.num_nodes = 100;
  request.limits.max_working_set_bytes = 256;
  request.limits.max_intermediate_bytes = 1ull << 20;

  const RunReport report = PairwiseRunner(cluster).run_planned(
      request, inputs, test_job());

  EXPECT_TRUE(report.planned);
  EXPECT_TRUE(report.plan.feasible);
  EXPECT_EQ(report.plan.kind, SchemeKind::kQuorum);
  EXPECT_FALSE(report.fell_back_to_rounds);

  const QuorumScheme scheme(v);
  const SchemeMetrics metrics = scheme.metrics();
  EXPECT_EQ(report.evaluations, pair_count(v));
  // Measured replication = map output records / v = |D| exactly: every
  // element is shipped to precisely the cover's worth of tasks.
  EXPECT_DOUBLE_EQ(report.replication_factor, metrics.replication_factor);
  // Perfect balance: the largest working set IS the Table 1 entry.
  EXPECT_EQ(report.max_working_set_records,
            static_cast<std::uint64_t>(metrics.working_set_elements));

  // Output matches a design-scheme reference byte for byte.
  mr::Cluster ref_cluster({.num_nodes = 4, .worker_threads = 2});
  RunSpec ref_spec;
  ref_spec.input_paths = write_dataset(ref_cluster, "/data", payloads);
  ref_spec.scheme = std::make_shared<DesignScheme>(v);
  ref_spec.job = test_job();
  const RunReport ref = PairwiseRunner(ref_cluster).run(ref_spec);
  EXPECT_EQ(encoded_output(cluster, report.output_dir),
            encoded_output(ref_cluster, ref.output_dir));
}

TEST(RunPlannedTest, InfeasiblePlanFallsBackToRounds) {
  const std::uint64_t v = 16;
  const auto payloads = payloads_for(v);
  mr::Cluster cluster({.num_nodes = 4, .worker_threads = 2});
  const auto inputs = write_dataset(cluster, "/data", payloads);

  // Limits no scheme can satisfy: a one-byte working set.
  PlanRequest request = planned_request(v, 4);
  request.limits.max_working_set_bytes = 1;
  request.limits.max_intermediate_bytes = 1;

  const RunReport report = PairwiseRunner(cluster).run_planned(
      request, inputs, test_job());

  EXPECT_TRUE(report.planned);
  EXPECT_FALSE(report.plan.feasible);
  EXPECT_TRUE(report.fell_back_to_rounds);
  EXPECT_EQ(report.mode, RunMode::kRounds);

  // The fallback still computes the complete all-pairs result.
  mr::Cluster ref_cluster({.num_nodes = 4, .worker_threads = 2});
  RunSpec ref_spec;
  ref_spec.input_paths = write_dataset(ref_cluster, "/data", payloads);
  ref_spec.scheme = std::make_shared<DesignScheme>(v);
  ref_spec.job = test_job();
  const RunReport ref = PairwiseRunner(ref_cluster).run(ref_spec);
  EXPECT_EQ(encoded_output(cluster, report.output_dir),
            encoded_output(ref_cluster, ref.output_dir));
}

// --- validation ----------------------------------------------------------

TEST(ValidateOptionsTest, PartitionerWithoutReduceTaskCountIsRejected) {
  mr::Cluster cluster({.num_nodes = 2});
  PairwiseOptions options;
  options.distribute_partitioner =
      std::make_shared<mr::RangePartitioner>(8);
  // num_reduce_tasks left at 0 — the partitioner's task-id routing would
  // silently degrade; the runner must reject it up front.
  try {
    validate_pairwise_options(cluster, options);
    FAIL() << "expected PreconditionError";
  } catch (const PreconditionError& e) {
    EXPECT_NE(std::string(e.what()).find("num_reduce_tasks"),
              std::string::npos);
  }
}

TEST(ValidateOptionsTest, EmptyWorkDirIsRejected) {
  mr::Cluster cluster({.num_nodes = 2});
  PairwiseOptions options;
  options.work_dir = "";
  EXPECT_THROW(validate_pairwise_options(cluster, options),
               PreconditionError);
}

TEST(ValidateOptionsTest, OneWayMergeFanInIsRejected) {
  mr::Cluster cluster({.num_nodes = 2});
  PairwiseOptions options;
  options.memory_budget = mr::MemoryBudget{.bytes = 1024, .merge_fan_in = 1};
  try {
    validate_pairwise_options(cluster, options);
    FAIL() << "expected PreconditionError";
  } catch (const PreconditionError& e) {
    EXPECT_NE(std::string(e.what()).find("merge_fan_in"), std::string::npos);
  }
}

TEST(ValidateOptionsTest, RunRejectsStructurallyInvalidSpecs) {
  mr::Cluster cluster({.num_nodes = 2});
  PairwiseRunner runner(cluster);

  RunSpec no_inputs;
  no_inputs.mode = RunMode::kBroadcast;
  no_inputs.broadcast = BroadcastTarget{.v = 4, .num_tasks = 2};
  no_inputs.job = test_job();
  EXPECT_THROW(runner.run(no_inputs), PreconditionError);

  RunSpec no_scheme;
  no_scheme.input_paths = {"/data/part-0"};
  no_scheme.mode = RunMode::kTwoJob;
  no_scheme.job = test_job();
  EXPECT_THROW(runner.run(no_scheme), PreconditionError);

  RunSpec no_target;
  no_target.input_paths = {"/data/part-0"};
  no_target.mode = RunMode::kBroadcast;
  no_target.job = test_job();
  EXPECT_THROW(runner.run(no_target), PreconditionError);

  const BlockScheme scheme(8, 2);
  RunSpec no_rounds;
  no_rounds.input_paths = {"/data/part-0"};
  no_rounds.mode = RunMode::kRounds;
  no_rounds.scheme = borrow_scheme(scheme);
  no_rounds.job = test_job();
  EXPECT_THROW(runner.run(no_rounds), PreconditionError);
}

// --- similarity-join validation ------------------------------------------

TEST(ValidateOptionsTest, JoinThresholdOutsideUnitIntervalIsRejected) {
  mr::Cluster cluster({.num_nodes = 2});
  for (const double bad : {-0.1, 1.5}) {
    PairwiseOptions options;
    options.similarity_join.threshold = bad;
    try {
      validate_pairwise_options(cluster, options,
                                RunMode::kSimilarityJoin);
      FAIL() << "expected PreconditionError for threshold " << bad;
    } catch (const PreconditionError& e) {
      EXPECT_NE(std::string(e.what()).find("[0, 1]"), std::string::npos)
          << e.what();
    }
  }
  PairwiseOptions nan_options;
  nan_options.similarity_join.threshold =
      std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(validate_pairwise_options(cluster, nan_options,
                                         RunMode::kSimilarityJoin),
               PreconditionError);
}

TEST(ValidateOptionsTest, JoinWithVectorKernelIsRejected) {
  // Prefix/length bounds are set-overlap math; vector kernels must use
  // the exhaustive two-job mode with a KeepFn instead.
  mr::Cluster cluster({.num_nodes = 2});
  for (const SimilarityKernel kernel :
       {SimilarityKernel::kCosineVector, SimilarityKernel::kEuclideanVector}) {
    PairwiseOptions options;
    options.similarity_join.kernel = kernel;
    try {
      validate_pairwise_options(cluster, options,
                                RunMode::kSimilarityJoin);
      FAIL() << "expected PreconditionError for " << to_string(kernel);
    } catch (const PreconditionError& e) {
      EXPECT_NE(std::string(e.what()).find("set kernels"), std::string::npos)
          << e.what();
    }
  }
}

TEST(ValidateOptionsTest, JoinLshGeometryMustBePositive) {
  mr::Cluster cluster({.num_nodes = 2});
  PairwiseOptions options;
  options.similarity_join.filter = CandidateFilter::kLshBanding;
  options.similarity_join.lsh_bands = 0;
  EXPECT_THROW(validate_pairwise_options(cluster, options,
                                         RunMode::kSimilarityJoin),
               PreconditionError);
  options.similarity_join.lsh_bands = 16;
  options.similarity_join.lsh_rows = 0;
  EXPECT_THROW(validate_pairwise_options(cluster, options,
                                         RunMode::kSimilarityJoin),
               PreconditionError);
}

TEST(ValidateOptionsTest, JoinOptionsAreIgnoredOutsideJoinMode) {
  // A two-job run never consults similarity_join; a garbage threshold
  // there must not reject an unrelated exhaustive run.
  mr::Cluster cluster({.num_nodes = 2});
  PairwiseOptions options;
  options.similarity_join.threshold = 42.0;
  validate_pairwise_options(cluster, options);  // no throw
  validate_pairwise_options(cluster, options, RunMode::kRounds);
}

TEST(ValidateOptionsTest, JoinModeRejectsUserSuppliedComputeFn) {
  // The join synthesizes its own kernel; a caller-provided one would be
  // silently ignored, so the runner rejects it loudly.
  mr::Cluster cluster({.num_nodes = 2});
  PairwiseRunner runner(cluster);
  const BlockScheme scheme(8, 2);
  RunSpec spec;
  spec.input_paths = {"/data/part-0"};
  spec.mode = RunMode::kSimilarityJoin;
  spec.scheme = borrow_scheme(scheme);
  spec.job = test_job();  // compute set — not allowed in join mode
  EXPECT_THROW(runner.run(spec), PreconditionError);

  RunSpec no_scheme;
  no_scheme.input_paths = {"/data/part-0"};
  no_scheme.mode = RunMode::kSimilarityJoin;
  EXPECT_THROW(runner.run(no_scheme), PreconditionError);
}

// --- scheme ownership ----------------------------------------------------

TEST(SchemeOwnershipTest, RunSucceedsAfterCallerDropsSchemeHandle) {
  // RunSpec::scheme is owning: the caller may release its handle before
  // run() — the spec's shared_ptr keeps the scheme alive.
  const std::uint64_t v = 10;
  const auto payloads = payloads_for(v);
  mr::Cluster cluster({.num_nodes = 2, .worker_threads = 2});

  RunSpec spec;
  spec.input_paths = write_dataset(cluster, "/data", payloads);
  std::shared_ptr<DistributionScheme> handle =
      std::make_shared<BlockScheme>(v, 3);
  spec.scheme = handle;
  handle.reset();  // destroy the caller's handle before the run
  spec.job = test_job();

  const RunReport report = PairwiseRunner(cluster).run(spec);
  EXPECT_EQ(report.evaluations, pair_count(v));
  EXPECT_EQ(read_elements(cluster, report.output_dir).size(), v);
}

TEST(SchemeOwnershipTest, DeprecatedRawSetterBorrowsWithoutOwning) {
  const std::uint64_t v = 10;
  const auto payloads = payloads_for(v);
  const BlockScheme scheme(v, 3);
  mr::Cluster cluster({.num_nodes = 2, .worker_threads = 2});

  RunSpec raw_spec;
  raw_spec.input_paths = write_dataset(cluster, "/data", payloads);
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  raw_spec.set_scheme(&scheme);
#pragma GCC diagnostic pop
  raw_spec.job = test_job();
  const RunReport raw = PairwiseRunner(cluster).run(raw_spec);

  mr::Cluster ref_cluster({.num_nodes = 2, .worker_threads = 2});
  RunSpec spec;
  spec.input_paths = write_dataset(ref_cluster, "/data", payloads);
  spec.scheme = borrow_scheme(scheme);
  spec.job = test_job();
  const RunReport ref = PairwiseRunner(ref_cluster).run(spec);

  EXPECT_EQ(encoded_output(cluster, raw.output_dir),
            encoded_output(ref_cluster, ref.output_dir));
}

// --- delta mode ----------------------------------------------------------

TEST(DeltaModeTest, TilesTheUnionPairSetExactly) {
  const std::uint64_t base_v = 9, delta_v = 4;
  const auto payloads = payloads_for(base_v + delta_v);
  mr::Cluster cluster({.num_nodes = 3, .worker_threads = 2});

  RunSpec spec;
  spec.input_paths = write_dataset(cluster, "/data", payloads);
  spec.mode = RunMode::kDelta;
  spec.delta = DeltaTarget{.base_v = base_v, .delta_v = delta_v};
  spec.job = test_job();
  const RunReport report = PairwiseRunner(cluster).run(spec);

  EXPECT_EQ(report.mode, RunMode::kDelta);
  EXPECT_EQ(report.pairs_delta,
            base_v * delta_v + delta_v * (delta_v - 1) / 2);
  EXPECT_EQ(report.pairs_reused, base_v * (base_v - 1) / 2);
  EXPECT_EQ(report.pairs_delta + report.pairs_reused,
            pair_count(base_v + delta_v));
  EXPECT_EQ(report.evaluations, report.pairs_delta);
}

TEST(DeltaModeTest, RejectsEmptyBaseOrDelta) {
  mr::Cluster cluster({.num_nodes = 2});
  PairwiseRunner runner(cluster);
  RunSpec spec;
  spec.input_paths = {"/data/part-0"};
  spec.mode = RunMode::kDelta;
  spec.job = test_job();

  spec.delta = DeltaTarget{.base_v = 0, .delta_v = 3};
  EXPECT_THROW(runner.run(spec), PreconditionError);
  spec.delta = DeltaTarget{.base_v = 3, .delta_v = 0};
  EXPECT_THROW(runner.run(spec), PreconditionError);
}

TEST(ValidateOptionsTest, DeltaModeRejectsCustomDistributePartitioner) {
  // The delta driver synthesizes its own task space; a caller-tuned
  // partitioner over some other scheme's task ids would silently
  // misroute, so validation rejects the combination loudly.
  mr::Cluster cluster({.num_nodes = 2});
  PairwiseOptions options;
  options.num_reduce_tasks = 8;
  options.distribute_partitioner =
      std::make_shared<mr::RangePartitioner>(8);
  try {
    validate_pairwise_options(cluster, options, RunMode::kDelta);
    FAIL() << "expected PreconditionError";
  } catch (const PreconditionError& e) {
    EXPECT_NE(std::string(e.what()).find("delta"), std::string::npos)
        << e.what();
  }
  // The same options are fine in two-job mode.
  validate_pairwise_options(cluster, options, RunMode::kTwoJob);
}

TEST(RunModeTest, ToStringNamesEveryMode) {
  EXPECT_STREQ(to_string(RunMode::kTwoJob), "two-job");
  EXPECT_STREQ(to_string(RunMode::kBroadcast), "broadcast");
  EXPECT_STREQ(to_string(RunMode::kRounds), "rounds");
  EXPECT_STREQ(to_string(RunMode::kSimilarityJoin), "similarity-join");
  EXPECT_STREQ(to_string(RunMode::kDelta), "delta");
}

}  // namespace
}  // namespace pairmr
