#include "pairwise/filtered_scheme.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/check.hpp"
#include "common/intmath.hpp"
#include "pairwise/block_scheme.hpp"

namespace pairmr {
namespace {

TEST(FilteredSchemeTest, InactiveTasksAreEmpty) {
  const BlockScheme base(12, 3);  // 6 tasks
  const FilteredScheme filtered(base, {0, 2});
  EXPECT_EQ(filtered.pairs_in(0), base.pairs_in(0));
  EXPECT_TRUE(filtered.pairs_in(1).empty());
  EXPECT_EQ(filtered.pairs_in(2), base.pairs_in(2));
  EXPECT_TRUE(filtered.working_set(1).empty());
}

TEST(FilteredSchemeTest, SubsetsDropInactiveTasks) {
  const BlockScheme base(12, 3);
  const FilteredScheme filtered(base, {0, 2});
  for (ElementId id = 0; id < 12; ++id) {
    for (const TaskId t : filtered.subsets_of(id)) {
      EXPECT_TRUE(t == 0 || t == 2);
    }
  }
}

TEST(FilteredSchemeTest, PartitioningFiltersCoverEverything) {
  // A family of filters that partitions the task ids covers every pair
  // exactly once overall — the §7 hierarchical correctness argument.
  const BlockScheme base(20, 4);  // 10 tasks
  const std::vector<std::vector<TaskId>> rounds = {
      {0, 1, 2}, {3, 4, 5, 6}, {7, 8, 9}};
  std::set<std::pair<ElementId, ElementId>> seen;
  for (const auto& round : rounds) {
    const FilteredScheme filtered(base, round);
    for (TaskId t = 0; t < filtered.num_tasks(); ++t) {
      for (const auto [lo, hi] : filtered.pairs_in(t)) {
        EXPECT_TRUE(seen.insert({lo, hi}).second);
      }
    }
  }
  EXPECT_EQ(seen.size(), pair_count(20));
}

TEST(FilteredSchemeTest, MetricsDelegateToBase) {
  const BlockScheme base(12, 3);
  const FilteredScheme filtered(base, {1});
  EXPECT_EQ(filtered.metrics().replication_factor,
            base.metrics().replication_factor);
  EXPECT_EQ(filtered.num_tasks(), base.num_tasks());
  EXPECT_EQ(filtered.name(), "block/filtered");
}

TEST(FilteredSchemeTest, InvalidFiltersThrow) {
  const BlockScheme base(12, 3);
  EXPECT_THROW(FilteredScheme(base, {99}), PreconditionError);
  EXPECT_THROW(FilteredScheme(base, {1, 1}), PreconditionError);
}

}  // namespace
}  // namespace pairmr
