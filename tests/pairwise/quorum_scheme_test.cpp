// QuorumScheme unit tests: difference-cover construction (perfect Singer
// sizes at plane orders, ≤ 2√v+2 generic sizes at arbitrary v), the tiny
// and degenerate edge cases, canonical pair ownership, and the perfect
// working-set balance the cyclic-quorum construction guarantees.
#include "pairwise/quorum_scheme.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "common/check.hpp"
#include "common/intmath.hpp"
#include "design/difference_set.hpp"
#include "design/primes.hpp"

namespace pairmr {
namespace {

// --- design::is_difference_cover / design::difference_cover --------------

TEST(DifferenceCoverTest, RecognizesCoversAndNonCovers) {
  // Planar difference sets are covers (every residue exactly once).
  EXPECT_TRUE(design::is_difference_cover({0, 1, 3}, 7));
  // Relaxed: repeats allowed, every residue just needs one representation.
  EXPECT_TRUE(design::is_difference_cover({0, 1, 2, 4}, 8));
  // {0,1} mod 6 only reaches differences {0, 1, 5}.
  EXPECT_FALSE(design::is_difference_cover({0, 1}, 6));
  EXPECT_FALSE(design::is_difference_cover({}, 5));
  // The whole group trivially covers itself.
  EXPECT_TRUE(design::is_difference_cover({0, 1, 2, 3, 4, 5}, 6));
  EXPECT_TRUE(design::is_difference_cover({0}, 1));
  EXPECT_THROW(design::is_difference_cover({3}, 3), PreconditionError);
  EXPECT_THROW(design::is_difference_cover({0}, 0), PreconditionError);
}

TEST(DifferenceCoverTest, ConstructionCoversEverySizeUpTo300) {
  for (std::uint64_t v = 1; v <= 300; ++v) {
    const auto cover = design::difference_cover(v);
    EXPECT_TRUE(design::is_difference_cover(cover, v)) << "v=" << v;
    // The two-scale bound (units + multiples of ⌈√v⌉); the perfect path
    // and the greedy prune can only be smaller.
    EXPECT_LE(cover.size(), 2 * (isqrt(v) + 1)) << "v=" << v;
    const std::set<std::uint64_t> unique(cover.begin(), cover.end());
    EXPECT_EQ(unique.size(), cover.size()) << "v=" << v;
  }
  EXPECT_THROW(design::difference_cover(0), PreconditionError);
}

TEST(DifferenceCoverTest, PlaneOrdersGetPerfectSingerCovers) {
  // At v = q²+q+1 for a prime power q the cover is the planar difference
  // set itself: exactly q+1 elements, the theoretical optimum.
  for (const std::uint64_t q : {2ull, 3ull, 4ull, 5ull, 7ull, 8ull, 9ull}) {
    const std::uint64_t v = design::q_hat(q);
    const auto cover = design::difference_cover(v);
    EXPECT_EQ(cover.size(), q + 1) << "v=" << v;
    EXPECT_TRUE(design::is_planar_difference_set(cover, v)) << "v=" << v;
  }
}

// --- QuorumScheme edge cases ---------------------------------------------

TEST(QuorumSchemeTest, TinySizesAreDegenerateButConsistent) {
  const QuorumScheme empty(0);
  EXPECT_EQ(empty.num_tasks(), 0u);
  EXPECT_EQ(empty.total_pairs(), 0u);

  const QuorumScheme one(1);
  EXPECT_EQ(one.num_tasks(), 1u);
  EXPECT_EQ(one.total_pairs(), 0u);
  EXPECT_EQ(one.working_set(0), (std::vector<ElementId>{0}));
  EXPECT_TRUE(one.pairs_in(0).empty());

  const QuorumScheme two(2);
  EXPECT_EQ(two.total_pairs(), 1u);
  std::uint64_t found = 0;
  for (TaskId t = 0; t < two.num_tasks(); ++t) {
    found += two.pairs_in(t).size();
  }
  EXPECT_EQ(found, 1u);

  const QuorumScheme three(3);
  EXPECT_EQ(three.cover().size(), 2u);
  EXPECT_EQ(three.total_pairs(), 3u);
}

TEST(QuorumSchemeTest, DegenerateFullCoverStillTilesAllPairs) {
  // D = Z_6: one pair per (task, difference) — max ownership v−1 = 5,
  // twice the (v−1)/2 average, and every working set is the whole set.
  const std::uint64_t v = 6;
  QuorumScheme scheme(v, {0, 1, 2, 3, 4, 5});
  EXPECT_EQ(scheme.max_owned_pairs(), v - 1);
  EXPECT_DOUBLE_EQ(scheme.metrics().replication_factor, 6.0);
  std::set<std::pair<ElementId, ElementId>> seen;
  for (TaskId t = 0; t < scheme.num_tasks(); ++t) {
    EXPECT_EQ(scheme.working_set(t).size(), v);
    for (const auto [lo, hi] : scheme.pairs_in(t)) {
      EXPECT_TRUE(seen.insert({lo, hi}).second);
    }
  }
  EXPECT_EQ(seen.size(), pair_count(v));
}

TEST(QuorumSchemeTest, ExplicitCoverIsValidatedAndDeduplicated) {
  EXPECT_THROW(QuorumScheme(6, {0, 1}), PreconditionError);
  EXPECT_THROW(QuorumScheme(5, {0, 7}), PreconditionError);
  QuorumScheme deduped(7, {3, 0, 1, 1, 3, 0});
  EXPECT_EQ(deduped.cover(), (std::vector<std::uint64_t>{0, 1, 3}));
}

// --- Balance and ownership -----------------------------------------------

TEST(QuorumSchemeTest, WorkingSetsArePerfectlyBalanced) {
  for (const std::uint64_t v : {10ull, 50ull, 97ull}) {
    const QuorumScheme scheme(v);
    const std::uint64_t k = scheme.cover().size();
    std::uint64_t owned_total = 0;
    for (TaskId t = 0; t < scheme.num_tasks(); ++t) {
      EXPECT_EQ(scheme.working_set(t).size(), k) << "v=" << v << " t=" << t;
      owned_total += scheme.pairs_in(t).size();
    }
    EXPECT_EQ(owned_total, pair_count(v)) << "v=" << v;
    EXPECT_LE(scheme.max_owned_pairs(), v - 1) << "v=" << v;
    EXPECT_LE(scheme.min_owned_pairs(), scheme.max_owned_pairs());
    EXPECT_DOUBLE_EQ(scheme.metrics().evaluations_per_task,
                     static_cast<double>(scheme.max_owned_pairs()));
    EXPECT_DOUBLE_EQ(scheme.metrics().working_set_elements,
                     static_cast<double>(k));
  }
}

TEST(QuorumSchemeTest, SubsetsOfMatchesTranslateMembership) {
  // The O(|D|) arithmetic membership must agree with brute-force scanning
  // of every translate.
  const std::uint64_t v = 50;
  const QuorumScheme scheme(v);
  for (ElementId e = 0; e < v; ++e) {
    std::vector<TaskId> brute;
    for (TaskId t = 0; t < scheme.num_tasks(); ++t) {
      const auto ws = scheme.working_set(t);
      if (std::find(ws.begin(), ws.end(), e) != ws.end()) {
        brute.push_back(t);
      }
    }
    EXPECT_EQ(scheme.subsets_of(e), brute) << "element " << e;
  }
}

TEST(QuorumSchemeTest, MetricsReportTable1Row) {
  const std::uint64_t v = 57;  // exact plane order: |D| = 8
  const QuorumScheme scheme(v);
  const SchemeMetrics m = scheme.metrics();
  EXPECT_EQ(m.scheme, "quorum");
  EXPECT_EQ(m.num_tasks, v);
  EXPECT_DOUBLE_EQ(m.replication_factor, 8.0);
  EXPECT_DOUBLE_EQ(m.communication_elements, 2.0 * 57.0 * 8.0);
  EXPECT_DOUBLE_EQ(m.working_set_elements, 8.0);
  EXPECT_EQ(scheme.total_pairs(), pair_count(v));
}

}  // namespace
}  // namespace pairmr
