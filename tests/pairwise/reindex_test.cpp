#include "pairwise/reindex.hpp"

#include <gtest/gtest.h>

#include "../support/run_pairwise.hpp"

#include <set>

#include "common/check.hpp"
#include "common/serde.hpp"
#include "pairwise/block_scheme.hpp"
#include "pairwise/dataset.hpp"
#include "pairwise/pipeline.hpp"
#include "workloads/kernels.hpp"

namespace pairmr {
namespace {

std::vector<std::string> string_keys() {
  return {"doc:alpha", "doc:bravo", "doc:charlie", "doc:delta",
          "doc:echo",  "doc:foxtrot", "doc:golf"};
}

std::vector<std::string> write_keyed_input(mr::Cluster& cluster) {
  std::vector<mr::Record> records;
  for (const auto& key : string_keys()) {
    records.push_back(mr::Record{key, "payload-of-" + key});
  }
  return cluster.scatter_records("/raw", std::move(records));
}

TEST(ReindexTest, AssignsDenseUniqueIds) {
  mr::Cluster cluster({.num_nodes = 3, .worker_threads = 2});
  const auto inputs = write_keyed_input(cluster);
  const ReindexResult result = reindex(cluster, inputs);

  EXPECT_EQ(result.v, 7u);
  std::set<std::uint64_t> ids;
  for (const auto& path : result.dataset_paths) {
    for (const auto& rec : cluster.dfs().open(path)->records) {
      ids.insert(decode_u64_key(rec.key));
    }
  }
  ASSERT_EQ(ids.size(), 7u);  // unique
  EXPECT_EQ(*ids.begin(), 0u);
  EXPECT_EQ(*ids.rbegin(), 6u);  // dense
}

TEST(ReindexTest, DictionaryInvertsTheAssignment) {
  mr::Cluster cluster({.num_nodes = 3, .worker_threads = 2});
  const auto inputs = write_keyed_input(cluster);
  const ReindexResult result = reindex(cluster, inputs);
  const auto dict = load_dictionary(cluster, result);

  // Every original key appears exactly once, and the dataset payload for
  // id i is the payload of dict[i].
  std::set<std::string> keys(dict.begin(), dict.end());
  const auto originals = string_keys();
  EXPECT_EQ(keys, std::set<std::string>(originals.begin(), originals.end()));

  for (const auto& path : result.dataset_paths) {
    for (const auto& rec : cluster.dfs().open(path)->records) {
      const std::uint64_t id = decode_u64_key(rec.key);
      EXPECT_EQ(rec.value, "payload-of-" + dict[id]);
    }
  }
}

TEST(ReindexTest, DuplicateKeysRejected) {
  mr::Cluster cluster({.num_nodes = 2, .worker_threads = 1});
  cluster.dfs().write_file("/raw/a", 0,
                           {mr::Record{"same-key", "v1"},
                            mr::Record{"same-key", "v2"}});
  EXPECT_THROW(reindex(cluster, {"/raw/a"}), PreconditionError);
}

TEST(ReindexTest, FeedsThePipelineEndToEnd) {
  // Full realistic flow: arbitrary keys -> reindex -> pairwise -> join
  // results back to the original keys via the dictionary.
  mr::Cluster cluster({.num_nodes = 3, .worker_threads = 2});
  const auto inputs = write_keyed_input(cluster);
  const ReindexResult result = reindex(cluster, inputs);
  const auto dict = load_dictionary(cluster, result);

  PairwiseJob job;
  job.compute = [](const Element& a, const Element& b) {
    return workloads::encode_result(
        static_cast<double>(a.payload.size() + b.payload.size()));
  };
  const BlockScheme scheme(result.v, 2);
  const RunReport stats =
      pairmr::testing::run_two_job(cluster, result.dataset_paths, scheme, job);
  const auto elements = read_elements(cluster, stats.output_dir);
  ASSERT_EQ(elements.size(), 7u);
  for (const Element& e : elements) {
    EXPECT_EQ(e.results.size(), 6u);
    EXPECT_FALSE(dict[e.id].empty());
    EXPECT_EQ(e.payload, "payload-of-" + dict[e.id]);
  }
}

TEST(ReindexTest, TooFewElementsThrow) {
  mr::Cluster cluster({.num_nodes = 1, .worker_threads = 1});
  cluster.dfs().write_file("/raw/one", 0, {mr::Record{"k", "v"}});
  EXPECT_THROW(reindex(cluster, {"/raw/one"}), PreconditionError);
}

}  // namespace
}  // namespace pairmr
