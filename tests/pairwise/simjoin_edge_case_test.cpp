// Similarity-join edge cases: degenerate dataset sizes (v ∈ {0, 1, 2}),
// all-identical elements, fully disjoint shingle sets (zero candidates),
// empty documents, and a threshold sitting exactly on a similarity tie.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/intmath.hpp"
#include "mr/cluster.hpp"
#include "pairwise/block_scheme.hpp"
#include "pairwise/broadcast_scheme.hpp"
#include "pairwise/candidates.hpp"
#include "pairwise/dataset.hpp"
#include "pairwise/runner.hpp"
#include "pairwise/tokenset.hpp"

namespace pairmr {
namespace {

RunReport run_join(mr::Cluster& cluster, const std::vector<std::string>& inputs,
                   const DistributionScheme& scheme, double threshold) {
  RunSpec spec;
  spec.input_paths = inputs;
  spec.mode = RunMode::kSimilarityJoin;
  spec.scheme = borrow_scheme(scheme);
  spec.options.similarity_join.threshold = threshold;
  return PairwiseRunner(cluster).run(spec);
}

std::vector<Element> output_of(mr::Cluster& cluster, const RunReport& report) {
  return read_elements(cluster, report.output_dir);
}

TEST(SimjoinEdgeCaseTest, DegenerateDatasetsAreRejectedLikeTwoJob) {
  // v ∈ {0, 1}: no pairs exist. Scheme construction refuses exactly as in
  // the exhaustive pipeline, so join mode cannot even be configured.
  for (const std::uint64_t v : {0u, 1u}) {
    EXPECT_THROW(BroadcastScheme(v, 2), PreconditionError) << "v=" << v;
    EXPECT_THROW(BlockScheme(v, 2), PreconditionError) << "v=" << v;
  }
}

TEST(SimjoinEdgeCaseTest, SingleElementCandidatePhaseIsEmpty) {
  // The candidate phase itself handles v = 1 gracefully: postings exist
  // but no pair can form.
  mr::Cluster cluster({.num_nodes = 2, .worker_threads = 1});
  const auto inputs =
      write_dataset(cluster, "/data", {encode_token_set({1, 2, 3})});
  PairwiseOptions options;
  options.similarity_join.threshold = 0.5;
  mr::backend::BackendSession session(cluster, options.backend);
  const CandidatePhase phase =
      generate_candidates(cluster, session, inputs, 1, options);
  EXPECT_FALSE(phase.exhaustive);
  EXPECT_TRUE(phase.candidates.empty());
}

TEST(SimjoinEdgeCaseTest, TwoIdenticalElementsSurviveThresholdOne) {
  mr::Cluster cluster({.num_nodes = 2, .worker_threads = 1});
  const std::string doc = encode_token_set({4, 8, 15});
  const auto inputs = write_dataset(cluster, "/data", {doc, doc});
  const BroadcastScheme scheme(2, 2);
  const RunReport report = run_join(cluster, inputs, scheme, 1.0);
  EXPECT_EQ(report.candidate_pairs, 1u);
  EXPECT_EQ(report.survivor_pairs, 1u);
  EXPECT_EQ(report.pruned_pairs, 0u);
  const auto out = output_of(cluster, report);
  ASSERT_EQ(out.size(), 2u);
  ASSERT_EQ(out[0].results.size(), 1u);
  EXPECT_EQ(out[0].results[0].other, 1u);
  ASSERT_EQ(out[1].results.size(), 1u);
  EXPECT_EQ(out[1].results[0].other, 0u);
}

TEST(SimjoinEdgeCaseTest, TwoDisjointElementsYieldZeroCandidates) {
  mr::Cluster cluster({.num_nodes = 2, .worker_threads = 1});
  const auto inputs = write_dataset(
      cluster, "/data", {encode_token_set({1, 2}), encode_token_set({3, 4})});
  const BroadcastScheme scheme(2, 2);
  const RunReport report = run_join(cluster, inputs, scheme, 0.5);
  // Disjoint same-size sets pass the length filter but share no prefix
  // token: pruned before any kernel evaluation.
  EXPECT_EQ(report.candidate_pairs, 0u);
  EXPECT_EQ(report.evaluations, 0u);
  const auto out = output_of(cluster, report);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_TRUE(out[0].results.empty());
  EXPECT_TRUE(out[1].results.empty());
}

TEST(SimjoinEdgeCaseTest, AllIdenticalElementsEveryPairSurvives) {
  constexpr std::uint64_t kV = 8;
  mr::Cluster cluster({.num_nodes = 4, .worker_threads = 2});
  const std::vector<std::string> payloads(kV, encode_token_set({7, 9, 11}));
  const auto inputs = write_dataset(cluster, "/data", payloads);
  const BlockScheme scheme(kV, 3);
  const RunReport report = run_join(cluster, inputs, scheme, 1.0);
  EXPECT_EQ(report.candidate_pairs, pair_count(kV));
  EXPECT_EQ(report.survivor_pairs, pair_count(kV));
  EXPECT_EQ(report.pruned_pairs, 0u);
  const auto out = output_of(cluster, report);
  ASSERT_EQ(out.size(), kV);
  for (const Element& e : out) {
    EXPECT_EQ(e.results.size(), kV - 1);  // every partner survived
  }
}

TEST(SimjoinEdgeCaseTest, AllDisjointShingleSetsZeroCandidates) {
  constexpr std::uint64_t kV = 10;
  mr::Cluster cluster({.num_nodes = 4, .worker_threads = 2});
  std::vector<std::string> payloads;
  for (std::uint64_t i = 0; i < kV; ++i) {
    // Pairwise-disjoint 3-token shingle sets.
    const auto base = static_cast<std::uint32_t>(3 * i);
    payloads.push_back(encode_token_set({base, base + 1, base + 2}));
  }
  const auto inputs = write_dataset(cluster, "/data", payloads);
  const BlockScheme scheme(kV, 3);
  const RunReport report = run_join(cluster, inputs, scheme, 0.25);
  EXPECT_EQ(report.candidate_pairs, 0u);
  EXPECT_EQ(report.survivor_pairs, 0u);
  EXPECT_EQ(report.pruned_pairs, 0u);
  EXPECT_EQ(report.evaluations, 0u);
  for (const Element& e : output_of(cluster, report)) {
    EXPECT_TRUE(e.results.empty());
  }
}

TEST(SimjoinEdgeCaseTest, ThresholdExactlyAtTieBoundaryKeepsThePair) {
  // J({1,2,3}, {2,3,4}) = 2/4 = 0.5 exactly; keep is ≥, so t = 0.5 must
  // keep the pair — and the prefix filter must have admitted it.
  mr::Cluster cluster({.num_nodes = 2, .worker_threads = 1});
  const auto inputs = write_dataset(
      cluster, "/data",
      {encode_token_set({1, 2, 3}), encode_token_set({2, 3, 4})});
  const BroadcastScheme scheme(2, 2);
  const RunReport at = run_join(cluster, inputs, scheme, 0.5);
  EXPECT_EQ(at.candidate_pairs, 1u);
  EXPECT_EQ(at.survivor_pairs, 1u);
  EXPECT_EQ(at.pruned_pairs, 0u);

  // Just above the tie the pair is evaluated-and-dropped or pruned
  // outright; either way it never survives.
  mr::Cluster cluster2({.num_nodes = 2, .worker_threads = 1});
  const auto inputs2 = write_dataset(
      cluster2, "/data",
      {encode_token_set({1, 2, 3}), encode_token_set({2, 3, 4})});
  const RunReport above = run_join(cluster2, inputs2, scheme, 0.75);
  EXPECT_EQ(above.survivor_pairs, 0u);
  EXPECT_EQ(above.candidate_pairs, above.pruned_pairs);
}

TEST(SimjoinEdgeCaseTest, EmptyDocumentsAreIdenticalToEachOther) {
  // J(∅,∅) = 1: the two empty documents must pair up (sentinel posting),
  // while an empty vs non-empty document is pruned by the length filter.
  mr::Cluster cluster({.num_nodes = 2, .worker_threads = 1});
  const auto inputs = write_dataset(
      cluster, "/data",
      {encode_token_set({}), encode_token_set({}), encode_token_set({5})});
  const BroadcastScheme scheme(3, 2);
  const RunReport report = run_join(cluster, inputs, scheme, 1.0);
  EXPECT_EQ(report.survivor_pairs, 1u);
  const auto out = output_of(cluster, report);
  ASSERT_EQ(out.size(), 3u);
  ASSERT_EQ(out[0].results.size(), 1u);
  EXPECT_EQ(out[0].results[0].other, 1u);
  ASSERT_EQ(out[1].results.size(), 1u);
  EXPECT_EQ(out[1].results[0].other, 0u);
  EXPECT_TRUE(out[2].results.empty());
}

TEST(SimjoinEdgeCaseTest, EmptyDatasetIsRejectedLikeTwoJob) {
  // v = 0 has no elements to distribute; the runner rejects it the same
  // way the exhaustive pipeline does rather than inventing an empty run.
  mr::Cluster cluster({.num_nodes = 2, .worker_threads = 1});
  const std::vector<std::string> no_inputs;
  EXPECT_THROW(
      {
        const BroadcastScheme scheme(0, 2);
        RunSpec spec;
        spec.input_paths = no_inputs;
        spec.mode = RunMode::kSimilarityJoin;
        spec.scheme = borrow_scheme(scheme);
        spec.options.similarity_join.threshold = 0.5;
        PairwiseRunner(cluster).run(spec);
      },
      PreconditionError);
}

TEST(SimjoinEdgeCaseTest, ThresholdZeroKeepsEveryPairIncludingDisjoint) {
  // The regression the exhaustive fallback exists for: at t = 0 disjoint
  // sets survive (J = 0 ≥ 0) yet share no token — a prefix filter would
  // silently drop them.
  mr::Cluster cluster({.num_nodes = 2, .worker_threads = 1});
  const auto inputs = write_dataset(
      cluster, "/data", {encode_token_set({1, 2}), encode_token_set({3, 4})});
  const BroadcastScheme scheme(2, 2);
  const RunReport report = run_join(cluster, inputs, scheme, 0.0);
  EXPECT_EQ(report.survivor_pairs, 1u);
  EXPECT_EQ(report.candidate_pairs, 1u);
  EXPECT_EQ(report.pruned_pairs, 0u);
  EXPECT_TRUE(report.candidate_jobs.empty());  // no candidate phase ran
  const auto out = output_of(cluster, report);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].results.size(), 1u);
}

}  // namespace
}  // namespace pairmr
