// Trace-on/trace-off equivalence: attaching a Tracer is pure observation.
// For randomized datasets under the chaos fault plan, the broadcast, block,
// and design pipelines must produce byte-identical aggregated output and
// identical job counters whether or not a tracer is recording — the
// engine's "zero cost when off" guarantee read from the other side: tracing
// on must not perturb execution either.
#include <gtest/gtest.h>

#include "../support/run_pairwise.hpp"

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "mr/cluster.hpp"
#include "mr/fault.hpp"
#include "mr/trace.hpp"
#include "pairwise/block_scheme.hpp"
#include "pairwise/broadcast_scheme.hpp"
#include "pairwise/dataset.hpp"
#include "pairwise/design_scheme.hpp"
#include "pairwise/pipeline.hpp"
#include "workloads/kernels.hpp"

namespace pairmr {
namespace {

using mr::FaultPlan;
using mr::TaskKind;

std::vector<std::string> random_payloads(std::uint64_t v,
                                         std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::string> payloads;
  for (std::uint64_t i = 0; i < v; ++i) {
    std::string p;
    const std::uint64_t len = 1 + rng.next_below(32);
    for (std::uint64_t k = 0; k < len; ++k) {
      p.push_back(static_cast<char>('a' + rng.next_below(26)));
    }
    payloads.push_back(std::move(p));
  }
  return payloads;
}

PairwiseJob test_job() {
  PairwiseJob job;
  job.compute = [](const Element& a, const Element& b) {
    const double la = static_cast<double>(a.payload.size());
    const double lb = static_cast<double>(b.payload.size());
    return workloads::encode_result(
        std::abs(la - lb) + 0.001 * static_cast<double>(a.id + b.id));
  };
  return job;
}

// Same chaos as the fault-equivalence harness: kills, a node loss, dropped
// fetches, stragglers with speculative backups, plus rate noise.
FaultPlan make_chaos_plan(std::uint64_t seed) {
  FaultPlan plan(seed);
  plan.with_task_kill_rate(0.25, 2)
      .with_fetch_drop_rate(0.2)
      .with_straggler_rate(0.2)
      .kill_task(TaskKind::kMap, 0)
      .kill_task(TaskKind::kReduce, 0)
      .fail_node(1)
      .drop_fetch(/*reduce_task=*/0, /*map_task=*/0)
      .mark_straggler(TaskKind::kMap, 1)
      .mark_straggler(TaskKind::kReduce, 1);
  return plan;
}

struct RunOutcome {
  std::vector<Element> elements;
  std::map<std::string, std::uint64_t> distribute_counters;
  std::map<std::string, std::uint64_t> aggregate_counters;
  std::uint64_t remote_bytes = 0;
};

struct SchemeCase {
  std::string label;
  std::function<std::unique_ptr<DistributionScheme>(std::uint64_t)> make;
};

// One full pipeline run on a fresh cluster, optionally traced.
RunOutcome run_once(const SchemeCase& scheme_case, std::uint64_t v,
                    std::uint64_t seed,
                    const std::vector<std::string>& payloads,
                    mr::Tracer* tracer) {
  mr::Cluster cluster({.num_nodes = 4, .worker_threads = 2});
  if (tracer != nullptr) cluster.set_tracer(tracer);
  const auto inputs = write_dataset(cluster, "/data", payloads);
  const auto scheme = scheme_case.make(v);
  const FaultPlan plan = make_chaos_plan(seed);
  PairwiseOptions options;
  options.fault_plan = &plan;

  const RunReport stats =
      pairmr::testing::run_two_job(cluster, inputs, *scheme, test_job(), options);

  RunOutcome out;
  out.elements = read_elements(cluster, stats.output_dir);
  out.distribute_counters = stats.compute_jobs.front().counters;
  out.aggregate_counters = stats.merge_jobs.front().counters;
  out.remote_bytes = cluster.network().remote_bytes();
  return out;
}

class TraceEquivalence
    : public ::testing::TestWithParam<std::tuple<SchemeCase, std::uint64_t>> {
};

TEST_P(TraceEquivalence, TracedRunMatchesUntracedRunUnderChaos) {
  const auto& [scheme_case, seed] = GetParam();
  const std::uint64_t v = 16 + seed % 13;  // 3 distinct sizes
  const auto payloads = random_payloads(v, seed);

  const RunOutcome untraced =
      run_once(scheme_case, v, seed, payloads, nullptr);
  mr::Tracer tracer;
  const RunOutcome traced =
      run_once(scheme_case, v, seed, payloads, &tracer);

  // The tracer actually observed the run (no silent no-op).
  EXPECT_GT(tracer.span_count(), 0u);
  EXPECT_FALSE(tracer.job_names().empty());

  // Byte-identical output through the wire codec.
  ASSERT_EQ(traced.elements.size(), untraced.elements.size());
  for (std::size_t i = 0; i < traced.elements.size(); ++i) {
    EXPECT_EQ(encode_element(traced.elements[i]),
              encode_element(untraced.elements[i]))
        << scheme_case.label << " element " << i;
  }

  // Identical counters for both jobs — including the recovery counters, so
  // the injected chaos unfolded identically — and identical wire traffic.
  EXPECT_EQ(traced.distribute_counters, untraced.distribute_counters);
  EXPECT_EQ(traced.aggregate_counters, untraced.aggregate_counters);
  EXPECT_EQ(traced.remote_bytes, untraced.remote_bytes);

  // The chaos plan really fired in both runs.
  EXPECT_GT(untraced.distribute_counters.at(mr::counter::kTasksRetried), 0u);
}

std::vector<SchemeCase> scheme_cases() {
  return {
      {"broadcast",
       [](std::uint64_t v) {
         return std::make_unique<BroadcastScheme>(v, 5);
       }},
      {"block",
       [](std::uint64_t v) { return std::make_unique<BlockScheme>(v, 4); }},
      {"design",
       [](std::uint64_t v) { return std::make_unique<DesignScheme>(v); }},
  };
}

INSTANTIATE_TEST_SUITE_P(
    SchemesTimesDatasets, TraceEquivalence,
    ::testing::Combine(::testing::ValuesIn(scheme_cases()),
                       ::testing::Values(111u, 222u, 333u)),
    [](const auto& info) {
      return std::get<0>(info.param).label + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace pairmr
