// The session differential oracle (DESIGN.md §16): a PairwiseSession
// absorbing churn batches of k ∈ {1, 10, 100} must hold its persisted
// state byte-identical — part file by part file — to a from-scratch
// batch run over the union, across every scheme family × fault-free and
// chaos. The backend.*, shmplane.* and spill.* ctest suites re-run this
// binary under the fork backend, the shared-memory shuffle plane and a
// 1 KiB spill budget, completing the ISSUE's scheme × backend × chaos ×
// budget matrix. Each update must also tile exactly: pairs_delta +
// pairs_reused == C(v+k, 2), cumulatively C(v_final, 2) evaluations.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "common/intmath.hpp"
#include "mr/cluster.hpp"
#include "mr/fault.hpp"
#include "pairwise/dataset.hpp"
#include "pairwise/runner.hpp"
#include "pairwise/session.hpp"
#include "workloads/kernels.hpp"

namespace pairmr {
namespace {

using mr::FaultPlan;
using mr::TaskKind;

// Symmetric, id- and payload-sensitive kernel: result bytes pin down
// exactly which pair was evaluated, so any mis-tiled or re-evaluated
// pair breaks byte identity.
PairwiseJob churn_job() {
  PairwiseJob job;
  job.compute = [](const Element& a, const Element& b) {
    const double la = static_cast<double>(a.payload.size());
    const double lb = static_cast<double>(b.payload.size());
    return workloads::encode_result(
        std::abs(la - lb) + 0.001 * static_cast<double>(a.id + b.id));
  };
  return job;
}

// Deterministic payload for element id — slicing one id space keeps the
// session inputs and the from-scratch union inputs trivially equal.
std::string payload_for(std::uint64_t id) {
  return std::string(1 + (id * 7) % 11, static_cast<char>('a' + id % 26));
}

std::vector<std::string> payload_range(std::uint64_t first,
                                       std::uint64_t count) {
  std::vector<std::string> payloads;
  payloads.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    payloads.push_back(payload_for(first + i));
  }
  return payloads;
}

// The acceptance-criteria chaos used by fault_equivalence_test.cpp.
FaultPlan make_chaos_plan(std::uint64_t seed) {
  FaultPlan plan(seed);
  plan.with_task_kill_rate(0.25, 2)
      .with_fetch_drop_rate(0.2)
      .with_straggler_rate(0.2)
      .kill_task(TaskKind::kMap, 0)
      .kill_task(TaskKind::kReduce, 0)
      .fail_node(1)
      .drop_fetch(/*reduce_task=*/0, /*map_task=*/0)
      .mark_straggler(TaskKind::kMap, 1)
      .mark_straggler(TaskKind::kReduce, 1);
  return plan;
}

// Relative part-file name → records, the byte-level unit of comparison.
std::vector<std::pair<std::string, std::vector<mr::Record>>> snapshot(
    const mr::Cluster& cluster, const std::string& dir) {
  std::vector<std::pair<std::string, std::vector<mr::Record>>> out;
  for (const std::string& path : cluster.dfs().list(dir)) {
    out.emplace_back(path.substr(dir.size()),
                     cluster.dfs().open(path)->records);
  }
  return out;
}

// From-scratch batch over `v` elements with the construction the
// session itself uses (PairwiseSession::batch_scheme is public exactly
// for this).
RunReport run_batch(mr::Cluster& cluster, SchemeKind kind, std::uint64_t v) {
  RunSpec spec;
  spec.input_paths = write_dataset(cluster, "/batch", payload_range(0, v));
  spec.job = churn_job();
  if (kind == SchemeKind::kBroadcast) {
    spec.mode = RunMode::kBroadcast;
    spec.broadcast = BroadcastTarget{.v = v, .num_tasks = cluster.num_nodes()};
  } else {
    spec.scheme = PairwiseSession::batch_scheme(
        kind, v, cluster.num_nodes(), 0, PlaneConstruction::kTheorem2Prime);
  }
  return PairwiseRunner(cluster).run(spec);
}

class ChurnEquivalence
    : public ::testing::TestWithParam<std::tuple<SchemeKind, bool>> {};

TEST_P(ChurnEquivalence, IncrementalStateMatchesFromScratchBatch) {
  const auto& [kind, chaos] = GetParam();
  const std::uint64_t base_v = 12;

  const FaultPlan plan = make_chaos_plan(909);
  mr::Cluster cluster({.num_nodes = 4, .worker_threads = 2});
  SessionOptions options;
  options.batch_scheme = kind;
  if (chaos) options.run.fault_plan = &plan;
  PairwiseSession session(cluster, churn_job(), options);
  session.submit(payload_range(0, base_v));

  std::uint64_t v = base_v;
  for (const std::uint64_t k : {1ull, 10ull, 100ull}) {
    const std::string label = std::string(to_string(kind)) +
                              (chaos ? "/chaos" : "/fault-free") + "/k=" +
                              std::to_string(k);
    const RunReport report = session.update(payload_range(v, k));

    // Exact tiling: the update evaluated the v·k cross pairs plus the
    // C(k,2) intra-delta triangle and reused everything else.
    EXPECT_EQ(report.pairs_delta, v * k + pair_count(k)) << label;
    EXPECT_EQ(report.pairs_reused, pair_count(v)) << label;
    EXPECT_EQ(report.pairs_delta + report.pairs_reused, pair_count(v + k))
        << label;
    EXPECT_EQ(report.evaluations, report.pairs_delta) << label;

    v += k;
    EXPECT_EQ(session.num_elements(), v) << label;
    EXPECT_EQ(session.cumulative_evaluations(), pair_count(v)) << label;

    // Fault-free from-scratch reference over the union on a pristine
    // cluster: the persisted state must match byte for byte, per part
    // file — same file names, same record order, same record bytes.
    mr::Cluster reference({.num_nodes = 4, .worker_threads = 2});
    const RunReport batch = run_batch(reference, kind, v);
    EXPECT_EQ(snapshot(cluster, session.state_dir()),
              snapshot(reference, batch.output_dir))
        << label;
  }
}

INSTANTIATE_TEST_SUITE_P(
    SchemesTimesFaults, ChurnEquivalence,
    ::testing::Combine(::testing::Values(SchemeKind::kBroadcast,
                                         SchemeKind::kBlock,
                                         SchemeKind::kDesign,
                                         SchemeKind::kQuorum),
                       ::testing::Bool()),
    [](const auto& info) {
      return std::string(to_string(std::get<0>(info.param))) +
             (std::get<1>(info.param) ? "_chaos" : "_faultfree");
    });

}  // namespace
}  // namespace pairmr
