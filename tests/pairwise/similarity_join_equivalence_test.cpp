// Differential oracle for the thresholded similarity join
// (RunMode::kSimilarityJoin, DESIGN.md §14): the pruned run's surviving
// pairs AND fully aggregated elements must be byte-identical to a
// threshold-filtered exhaustive reference — the plain two-job pipeline
// with workloads::jaccard_kernel + keep_above on the same inner scheme —
// across schemes (broadcast/block/design/quorum) × backends
// (in-process/fork) × fault chaos × memory budgets, mirroring
// backend_equivalence_test.cpp. Candidate pruning must change cost
// counters only, never results.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "../support/backend_matrix.hpp"
#include "common/intmath.hpp"
#include "mr/cluster.hpp"
#include "mr/fault.hpp"
#include "mr/trace.hpp"
#include "pairwise/block_scheme.hpp"
#include "pairwise/broadcast_scheme.hpp"
#include "pairwise/dataset.hpp"
#include "pairwise/design_scheme.hpp"
#include "pairwise/quorum_scheme.hpp"
#include "pairwise/runner.hpp"
#include "workloads/generators.hpp"
#include "workloads/kernels.hpp"

namespace pairmr {
namespace {

using mr::FaultPlan;
using mr::MemoryBudget;
using mr::TaskKind;

constexpr double kThreshold = 0.5;

std::vector<std::string> join_payloads(std::uint64_t v, std::uint64_t seed) {
  // Zipf-like token sets: some near-duplicate pairs survive 0.5, most are
  // pruned — both branches of the filter see traffic.
  return workloads::document_payloads(
      workloads::token_documents(v, /*vocabulary=*/48, /*tokens_per_doc=*/10,
                                 seed));
}

std::unique_ptr<DistributionScheme> make_scheme(const std::string& label,
                                                std::uint64_t v) {
  if (label == "block") return std::make_unique<BlockScheme>(v, 4);
  if (label == "design") return std::make_unique<DesignScheme>(v);
  if (label == "quorum") return std::make_unique<QuorumScheme>(v);
  return std::make_unique<BroadcastScheme>(v, 5);
}

FaultPlan make_chaos_plan(std::uint64_t seed) {
  FaultPlan plan(seed);
  plan.with_task_kill_rate(0.2, 2)
      .with_fetch_drop_rate(0.15)
      .with_straggler_rate(0.15)
      .kill_task(TaskKind::kMap, 0)
      .kill_task(TaskKind::kReduce, 0)
      .drop_fetch(/*reduce_task=*/0, /*map_task=*/0)
      .mark_straggler(TaskKind::kMap, 1);
  return plan;
}

struct Execution {
  std::vector<std::string> encoded;
  RunReport report;
};

// The reference: exhaustive two-job run with the stock workloads jaccard
// kernel and a keep-filter at the same threshold — a fully independent
// code path from the join driver's synthesized job.
Execution exhaustive_reference(const std::string& scheme_label,
                               const std::vector<std::string>& payloads,
                               const FaultPlan* plan) {
  mr::Cluster cluster({.num_nodes = 4, .worker_threads = 2});
  const auto inputs = write_dataset(cluster, "/data", payloads);
  const auto scheme = make_scheme(scheme_label, payloads.size());

  RunSpec spec;
  spec.input_paths = inputs;
  spec.mode = RunMode::kTwoJob;
  spec.scheme = borrow_scheme(*scheme);
  spec.job.compute = workloads::jaccard_kernel();
  spec.job.prepared = workloads::jaccard_prepared();
  spec.job.keep = workloads::keep_above(kThreshold);
  spec.options.fault_plan = plan;

  Execution ex;
  ex.report = PairwiseRunner(cluster).run(spec);
  for (const Element& e : read_elements(cluster, ex.report.output_dir)) {
    ex.encoded.push_back(encode_element(e));
  }
  return ex;
}

Execution join_run(const std::string& scheme_label,
                   const std::vector<std::string>& payloads,
                   const FaultPlan* plan, mr::BackendKind backend,
                   const MemoryBudget& budget) {
  mr::Cluster cluster({.num_nodes = 4, .worker_threads = 2});
  const auto inputs = write_dataset(cluster, "/data", payloads);
  const auto scheme = make_scheme(scheme_label, payloads.size());

  RunSpec spec;
  spec.input_paths = inputs;
  spec.mode = RunMode::kSimilarityJoin;
  spec.scheme = borrow_scheme(*scheme);
  spec.options.similarity_join.threshold = kThreshold;
  spec.options.fault_plan = plan;
  spec.options.backend = backend;
  spec.options.memory_budget = budget;

  Execution ex;
  ex.report = PairwiseRunner(cluster).run(spec);
  for (const Element& e : read_elements(cluster, ex.report.output_dir)) {
    ex.encoded.push_back(encode_element(e));
  }
  return ex;
}

void expect_identical(const Execution& join, const Execution& ref,
                      const std::string& label) {
  ASSERT_EQ(join.encoded.size(), ref.encoded.size()) << label;
  for (std::size_t i = 0; i < join.encoded.size(); ++i) {
    ASSERT_EQ(join.encoded[i], ref.encoded[i]) << label << " element " << i;
  }
}

void expect_join_invariants(const Execution& join, const Execution& ref,
                            std::uint64_t v, const std::string& label) {
  // Table 1 extension: candidate = survivor + pruned, one source of truth.
  EXPECT_EQ(join.report.candidate_pairs,
            join.report.survivor_pairs + join.report.pruned_pairs)
      << label;
  // Every candidate was evaluated by the exact kernel exactly once, and
  // it is the same set the dedup job counted.
  EXPECT_EQ(join.report.candidate_pairs, join.report.evaluations) << label;
  EXPECT_EQ(join.report.candidate_pairs,
            join.report.counter(counter::kCandidateDistinct))
      << label;
  // Survivors agree with the exhaustive run's kept results.
  EXPECT_EQ(join.report.survivor_pairs, ref.report.results_kept) << label;
  // Pruning actually happened: the filter evaluated strictly fewer pairs
  // than the exhaustive C(v,2), yet never lost a survivor (byte-identity
  // above proves that direction).
  EXPECT_LT(join.report.candidate_pairs, pair_count(v)) << label;
  EXPECT_LT(join.report.evaluations, ref.report.evaluations) << label;
  EXPECT_EQ(join.report.candidate_jobs.size(), 3u) << label;
  EXPECT_EQ(join.report.mode, RunMode::kSimilarityJoin) << label;
}

struct Case {
  std::string scheme;
  bool chaos;
};

std::string case_name(const Case& c) {
  return c.scheme + (c.chaos ? "_chaos" : "_faultfree");
}

class SimilarityJoinEquivalence : public ::testing::TestWithParam<Case> {};

TEST_P(SimilarityJoinEquivalence,
       PrunedMatchesExhaustiveAcrossBackendsAndBudgets) {
  const Case& c = GetParam();
  const std::uint64_t seed = 9100 + (c.chaos ? 1 : 0);
  const auto payloads = join_payloads(24, seed);
  const FaultPlan plan = make_chaos_plan(seed);
  const FaultPlan* fp = c.chaos ? &plan : nullptr;

  const Execution ref = exhaustive_reference(c.scheme, payloads, fp);

  for (const mr::BackendKind backend : testing::kBackendMatrix) {
    if (backend == mr::BackendKind::kFork &&
        !testing::fork_backend_supported()) {
      continue;  // TSan build: the fork half of the matrix cannot run
    }
    for (const std::uint64_t budget_bytes : {0ull, 1024ull}) {
      const MemoryBudget budget =
          budget_bytes == 0
              ? MemoryBudget{}
              : MemoryBudget{.bytes = budget_bytes, .merge_fan_in = 2};
      const std::string label =
          case_name(c) + " backend=" +
          (backend == mr::BackendKind::kFork ? "fork" : "inprocess") +
          " budget=" + std::to_string(budget_bytes);
      const Execution join =
          join_run(c.scheme, payloads, fp, backend, budget);
      expect_identical(join, ref, label);
      expect_join_invariants(join, ref, payloads.size(), label);
    }
  }
}

TEST_P(SimilarityJoinEquivalence, TinySpillBudgetForcesSpillsSameOutput) {
  const Case& c = GetParam();
  if (c.chaos) GTEST_SKIP() << "spill-pressure variant runs fault-free";
  const auto payloads = join_payloads(24, 9100);
  const Execution ref = exhaustive_reference(c.scheme, payloads, nullptr);
  const Execution join =
      join_run(c.scheme, payloads, nullptr, mr::BackendKind::kInProcess,
               MemoryBudget{.bytes = 256, .merge_fan_in = 2});
  expect_identical(join, ref, case_name(c) + " budget=256");
  expect_join_invariants(join, ref, payloads.size(),
                         case_name(c) + " budget=256");
  EXPECT_GT(join.report.spill_runs, 0u);
  EXPECT_GT(join.report.spill_bytes, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    SchemesTimesFaults, SimilarityJoinEquivalence,
    ::testing::Values(Case{"broadcast", false}, Case{"block", false},
                      Case{"design", false}, Case{"quorum", false},
                      Case{"broadcast", true}, Case{"block", true},
                      Case{"design", true}, Case{"quorum", true}),
    [](const auto& info) { return case_name(info.param); });

// The candidate phase is traced like any other engine work: its jobs
// appear as job spans named simjoin-* alongside the pairwise jobs.
TEST(SimilarityJoinTrace, CandidatePhaseJobsCarrySpans) {
  const auto payloads = join_payloads(16, 9200);
  mr::Cluster cluster({.num_nodes = 4, .worker_threads = 2});
  mr::Tracer tracer;
  cluster.set_tracer(&tracer);
  const auto inputs = write_dataset(cluster, "/data", payloads);
  const BlockScheme scheme(payloads.size(), 4);

  RunSpec spec;
  spec.input_paths = inputs;
  spec.mode = RunMode::kSimilarityJoin;
  spec.scheme = borrow_scheme(scheme);
  spec.options.similarity_join.threshold = kThreshold;
  PairwiseRunner(cluster).run(spec);

  const auto names = tracer.job_names();
  const auto has = [&names](const std::string& name) {
    for (const auto& n : names) {
      if (n == name) return true;
    }
    return false;
  };
  EXPECT_TRUE(has("simjoin-tokenfreq"));
  EXPECT_TRUE(has("simjoin-candidates[prefix]"));
  EXPECT_TRUE(has("simjoin-dedup"));
  EXPECT_TRUE(has("pairwise-distribute[block(h=4,v=16)+candidates]") ||
              [&names] {
                for (const auto& n : names) {
                  if (n.rfind("pairwise-distribute[", 0) == 0) return true;
                }
                return false;
              }());
}

}  // namespace
}  // namespace pairmr
