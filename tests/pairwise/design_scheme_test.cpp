#include "pairwise/design_scheme.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/check.hpp"
#include "common/intmath.hpp"

namespace pairmr {
namespace {

TEST(DesignSchemeTest, PaperFigure4Shape) {
  // v = 7: projective plane of order 2 — 7 tasks of 3 elements, 3 pairs
  // each, 21 pairs total, exactly the Figure 4 solution.
  const DesignScheme scheme(7);
  EXPECT_EQ(scheme.plane_order(), 2u);
  EXPECT_EQ(scheme.num_tasks(), 7u);
  for (TaskId t = 0; t < 7; ++t) {
    EXPECT_EQ(scheme.working_set(t).size(), 3u);
    EXPECT_EQ(scheme.pairs_in(t).size(), 3u);
  }
  EXPECT_EQ(scheme.total_pairs(), 21u);
}

TEST(DesignSchemeTest, PaperSection53OrderChoice) {
  // "If, e.g., v = 10,000, then q = 101" — and the first q+1 = 102
  // working sets are dominated by the following 10,201.
  const DesignScheme scheme(10000);
  EXPECT_EQ(scheme.plane_order(), 101u);
  EXPECT_EQ(scheme.plane_points(), 10303u);
}

TEST(DesignSchemeTest, SubsetsAndBlocksAgree) {
  const DesignScheme scheme(31);
  for (ElementId id = 0; id < 31; ++id) {
    for (const TaskId t : scheme.subsets_of(id)) {
      const auto ws = scheme.working_set(t);
      EXPECT_TRUE(std::binary_search(ws.begin(), ws.end(), id));
    }
  }
  for (TaskId t = 0; t < scheme.num_tasks(); ++t) {
    for (const ElementId id : scheme.working_set(t)) {
      const auto tasks = scheme.subsets_of(id);
      EXPECT_TRUE(std::binary_search(tasks.begin(), tasks.end(), t));
    }
  }
}

TEST(DesignSchemeTest, WorkingSetsNearSqrtV) {
  const DesignScheme scheme(100);  // q = 11, blocks of <= 12
  for (TaskId t = 0; t < scheme.num_tasks(); ++t) {
    const auto ws = scheme.working_set(t);
    EXPECT_GE(ws.size(), 2u);
    EXPECT_LE(ws.size(), scheme.plane_order() + 1);
  }
}

TEST(DesignSchemeTest, ReplicationNearSqrtV) {
  const DesignScheme scheme(100);
  for (ElementId id = 0; id < 100; ++id) {
    // Untruncated membership is exactly q+1; truncation only removes.
    EXPECT_LE(scheme.subsets_of(id).size(), scheme.plane_order() + 1);
    EXPECT_GE(scheme.subsets_of(id).size(), 1u);
  }
}

TEST(DesignSchemeTest, PrimePowerConstructionUsesSmallerOrder) {
  // v = 14: prime search gives q = 5 (q̂ = 31); prime powers allow
  // q = 4 (q̂ = 21) — less replication, smaller working sets.
  const DesignScheme prime(14, PlaneConstruction::kTheorem2Prime);
  const DesignScheme power(14, PlaneConstruction::kPG2PrimePower);
  EXPECT_EQ(prime.plane_order(), 5u);
  EXPECT_EQ(power.plane_order(), 4u);
  EXPECT_EQ(prime.total_pairs(), power.total_pairs());
}

TEST(DesignSchemeTest, PairsAreCanonical) {
  const DesignScheme scheme(50);
  for (TaskId t = 0; t < scheme.num_tasks(); ++t) {
    for (const auto [lo, hi] : scheme.pairs_in(t)) {
      EXPECT_LT(lo, hi);
      EXPECT_LT(hi, 50u);
    }
  }
}

TEST(DesignSchemeTest, MetricsUseSqrtVApproximation) {
  const DesignScheme scheme(10000);
  const SchemeMetrics m = scheme.metrics();
  EXPECT_DOUBLE_EQ(m.replication_factor, 100.0);         // √v
  EXPECT_DOUBLE_EQ(m.working_set_elements, 100.0);       // √v
  // C(q+1,2) = 101·102/2; the paper's ≈(v-1)/2 = 4999.5 for v = q̂.
  EXPECT_DOUBLE_EQ(m.evaluations_per_task, 5151.0);
  EXPECT_DOUBLE_EQ(m.communication_elements, 2e4 * 100); // 2v√v
}

TEST(DesignSchemeTest, InvalidParametersThrow) {
  EXPECT_THROW(DesignScheme(1), PreconditionError);
  const DesignScheme scheme(7);
  EXPECT_THROW(scheme.subsets_of(7), PreconditionError);
  EXPECT_THROW(scheme.pairs_in(99), PreconditionError);
}

}  // namespace
}  // namespace pairmr
