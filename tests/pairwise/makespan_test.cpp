#include "pairwise/makespan.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "common/units.hpp"
#include "pairwise/cost_model.hpp"

namespace pairmr {
namespace {

const CostRates kDefault{};

TEST(MakespanTest, BreakdownComponentsArePositive) {
  const MakespanBreakdown m = estimate_makespan(
      broadcast_metrics(1000, 8), 1000, 10 * kKiB, 8, kDefault);
  EXPECT_GT(m.ship_seconds, 0.0);
  EXPECT_GT(m.compute_seconds, 0.0);
  EXPECT_GT(m.aggregate_seconds, 0.0);
  EXPECT_GT(m.overhead_seconds, 0.0);
  EXPECT_DOUBLE_EQ(m.total(), m.ship_seconds + m.compute_seconds +
                                  m.aggregate_seconds + m.overhead_seconds);
}

TEST(MakespanTest, ExpensiveComputeFavorsBroadcast) {
  // Expensive comp(), tiny dataset: compute dominates; broadcast with
  // p = n has the fewest waves and minimal overhead.
  CostRates rates;
  rates.compute_seconds_per_eval = 1e-2;
  rates.network_seconds_per_byte = 1e-9;
  const SchemeComparison c =
      compare_makespans(500, 4 * kKiB, 16, /*block_h=*/8, rates);
  EXPECT_EQ(c.winner, "broadcast");
  EXPECT_LT(c.broadcast.total(), c.design.total());
}

TEST(MakespanTest, CheapComputeBigElementsFavorsBlock) {
  // Shipping dominates: block's 2vh with small h beats broadcast's 2vn
  // and design's 2v√v.
  CostRates rates;
  rates.compute_seconds_per_eval = 1e-9;
  rates.network_seconds_per_byte = 1e-7;
  rates.task_overhead_seconds = 0.0;
  const SchemeComparison c =
      compare_makespans(10000, kMiB, 16, /*block_h=*/6, rates);
  EXPECT_EQ(c.winner, "block");
  EXPECT_LT(c.block.ship_seconds, c.broadcast.ship_seconds);
  EXPECT_LT(c.block.ship_seconds, c.design.ship_seconds);
}

TEST(MakespanTest, MoreNodesShrinkComputePhase) {
  CostRates rates;
  rates.compute_seconds_per_eval = 1e-5;
  const MakespanBreakdown few = estimate_makespan(
      broadcast_metrics(2000, 4), 2000, kKiB, 4, rates);
  const MakespanBreakdown many = estimate_makespan(
      broadcast_metrics(2000, 16), 2000, kKiB, 16, rates);
  EXPECT_GT(few.compute_seconds, many.compute_seconds);
}

TEST(MakespanTest, DesignShipGrowsWithSqrtV) {
  const MakespanBreakdown small = estimate_makespan(
      design_metrics_approx(100, 1000), 100, kKiB, 1000, kDefault);
  const MakespanBreakdown large = estimate_makespan(
      design_metrics_approx(10000, 1000), 10000, kKiB, 1000, kDefault);
  // 100x elements and 10x replication: ship grows ~1000x.
  const double ratio = large.ship_seconds / small.ship_seconds;
  EXPECT_NEAR(ratio, 1000.0, 50.0);
}

TEST(MakespanTest, InvalidInputsThrow) {
  EXPECT_THROW(estimate_makespan(broadcast_metrics(10, 2), 1, kKiB, 2,
                                 kDefault),
               PreconditionError);
  EXPECT_THROW(compare_makespans(100, kKiB, 4, 0, kDefault),
               PreconditionError);
}

}  // namespace
}  // namespace pairmr
