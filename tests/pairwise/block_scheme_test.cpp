#include "pairwise/block_scheme.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/check.hpp"
#include "common/intmath.hpp"

namespace pairmr {
namespace {

TEST(BlockSchemeTest, PaperFigure6Example) {
  // v = 15, h = 3, e = 5: six blocks. Block p=2 is (I,J) = (2,1):
  // C2 = rows 6..10 (ids 5..9), R2 = rows 1..5 (ids 0..4).
  const BlockScheme scheme(15, 3);
  EXPECT_EQ(scheme.edge(), 5u);
  EXPECT_EQ(scheme.num_tasks(), 6u);

  const auto ws = scheme.working_set(1);  // task index 1 == label p=2
  ASSERT_EQ(ws.size(), 10u);
  EXPECT_EQ(ws.front(), 0u);
  EXPECT_EQ(ws.back(), 9u);

  const auto pairs = scheme.pairs_in(1);
  EXPECT_EQ(pairs.size(), 25u);  // full 5×5 cross product
  for (const auto [lo, hi] : pairs) {
    EXPECT_LT(lo, 5u);             // row element
    EXPECT_GE(hi, 5u);             // column element
    EXPECT_LT(hi, 10u);
  }
}

TEST(BlockSchemeTest, DiagonalBlocksEvaluateTriangles) {
  const BlockScheme scheme(15, 3);
  // Task 0 is block (1,1): ids 0..4, C(5,2) = 10 pairs.
  const auto pairs = scheme.pairs_in(0);
  EXPECT_EQ(pairs.size(), 10u);
  for (const auto [lo, hi] : pairs) {
    EXPECT_LT(lo, hi);
    EXPECT_LT(hi, 5u);
  }
  // Diagonal working set holds only one stripe (e elements, not 2e).
  EXPECT_EQ(scheme.working_set(0).size(), 5u);
}

TEST(BlockSchemeTest, ReplicationFactorIsExactlyH) {
  // Paper §5.2: "Each element is used in h different blocks."
  const BlockScheme scheme(15, 3);
  for (ElementId id = 0; id < 15; ++id) {
    EXPECT_EQ(scheme.subsets_of(id).size(), 3u) << "id=" << id;
  }
}

TEST(BlockSchemeTest, SubsetsAndWorkingSetsAgree) {
  const BlockScheme scheme(23, 4);  // v not divisible by h
  for (ElementId id = 0; id < 23; ++id) {
    for (const TaskId t : scheme.subsets_of(id)) {
      const auto ws = scheme.working_set(t);
      EXPECT_TRUE(std::find(ws.begin(), ws.end(), id) != ws.end())
          << "element " << id << " missing from task " << t;
    }
  }
}

TEST(BlockSchemeTest, EmptyTrailingStripeHandled) {
  // v = 9, h = 4 -> e = 3 and stripe 4 is empty ([9, 9)). Elements must
  // not be shipped to the empty blocks.
  const BlockScheme scheme(9, 4);
  EXPECT_TRUE(scheme.stripe(4).empty());
  for (ElementId id = 0; id < 9; ++id) {
    for (const TaskId t : scheme.subsets_of(id)) {
      EXPECT_FALSE(scheme.working_set(t).empty());
    }
    // Only 3 stripes hold data, so replication drops below h here.
    EXPECT_EQ(scheme.subsets_of(id).size(), 3u);
  }
  EXPECT_EQ(scheme.total_pairs(), pair_count(9));
}

TEST(BlockSchemeTest, WorkingSetBoundedBy2E) {
  for (const std::uint64_t v : {10ull, 16ull, 31ull, 100ull}) {
    for (const std::uint64_t h : {2ull, 3ull, 5ull}) {
      const BlockScheme scheme(v, h);
      for (TaskId t = 0; t < scheme.num_tasks(); ++t) {
        EXPECT_LE(scheme.working_set(t).size(), 2 * scheme.edge());
      }
    }
  }
}

TEST(BlockSchemeTest, EvaluationsBoundedByESquared) {
  const BlockScheme scheme(31, 4);
  const std::uint64_t e = scheme.edge();
  for (TaskId t = 0; t < scheme.num_tasks(); ++t) {
    EXPECT_LE(scheme.pairs_in(t).size(), e * e);
  }
}

TEST(BlockSchemeTest, MetricsMatchTable1) {
  const BlockScheme scheme(100, 5);
  const SchemeMetrics m = scheme.metrics();
  EXPECT_EQ(m.num_tasks, 15u);  // h(h+1)/2
  EXPECT_DOUBLE_EQ(m.communication_elements, 2.0 * 100 * 5);  // 2vh
  EXPECT_DOUBLE_EQ(m.replication_factor, 5.0);                // h
  EXPECT_DOUBLE_EQ(m.working_set_elements, 40.0);             // 2⌈v/h⌉
  EXPECT_DOUBLE_EQ(m.evaluations_per_task, 400.0);            // ⌈v/h⌉²
}

TEST(BlockSchemeTest, HEqualsOneIsTheTrivialSolution) {
  const BlockScheme scheme(8, 1);
  EXPECT_EQ(scheme.num_tasks(), 1u);
  EXPECT_EQ(scheme.pairs_in(0).size(), pair_count(8));
}

TEST(BlockSchemeTest, InvalidParametersThrow) {
  EXPECT_THROW(BlockScheme(1, 1), PreconditionError);
  EXPECT_THROW(BlockScheme(10, 0), PreconditionError);
  EXPECT_THROW(BlockScheme(10, 11), PreconditionError);
  const BlockScheme scheme(10, 2);
  EXPECT_THROW(scheme.pairs_in(3), PreconditionError);
  EXPECT_THROW(scheme.stripe(0), PreconditionError);
}

}  // namespace
}  // namespace pairmr
