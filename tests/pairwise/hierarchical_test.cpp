// Hierarchical (§7) tests: round groupings partition the task space, the
// round driver reproduces the flat pipeline's results exactly, and —
// the point of the section — peak intermediate storage drops.
#include "pairwise/hierarchical.hpp"

#include <gtest/gtest.h>

#include "../support/run_pairwise.hpp"

#include <set>

#include "common/check.hpp"
#include "common/intmath.hpp"
#include "pairwise/dataset.hpp"
#include "pairwise/design_scheme.hpp"
#include "pairwise/pipeline.hpp"
#include "workloads/kernels.hpp"

namespace pairmr {
namespace {

std::vector<std::string> make_payloads(std::uint64_t v,
                                       std::size_t bytes = 64) {
  std::vector<std::string> payloads;
  for (std::uint64_t i = 0; i < v; ++i) {
    payloads.push_back(std::string(bytes, static_cast<char>('a' + i % 26)));
  }
  return payloads;
}

PairwiseJob id_sum_job() {
  PairwiseJob job;
  job.compute = [](const Element& a, const Element& b) {
    return workloads::encode_result(static_cast<double>(a.id + b.id));
  };
  return job;
}

TEST(CoarseRoundsTest, PartitionTaskIds) {
  const BlockScheme fine(24, 6);  // 21 fine tasks
  const auto rounds = coarse_block_rounds(fine, 2);
  EXPECT_EQ(rounds.size(), 3u);  // T(2) coarse blocks
  std::set<TaskId> seen;
  std::size_t total = 0;
  for (const auto& round : rounds) {
    for (const TaskId t : round) {
      EXPECT_TRUE(seen.insert(t).second) << "task in two rounds";
    }
    total += round.size();
  }
  EXPECT_EQ(total, fine.num_tasks());
}

TEST(CoarseRoundsTest, DiagonalCoarseBlocksHoldTriangles) {
  // H=2, f=3: coarse diagonal rounds hold T(3)=6 fine tasks; the
  // off-diagonal round holds 3×3 = 9.
  const BlockScheme fine(24, 6);
  const auto rounds = coarse_block_rounds(fine, 2);
  EXPECT_EQ(rounds[0].size(), 6u);  // coarse (1,1)
  EXPECT_EQ(rounds[1].size(), 9u);  // coarse (2,1)
  EXPECT_EQ(rounds[2].size(), 6u);  // coarse (2,2)
}

TEST(CoarseRoundsTest, InvalidFactorsThrow) {
  const BlockScheme fine(24, 6);
  EXPECT_THROW(coarse_block_rounds(fine, 4), PreconditionError);  // 4 ∤ 6
  EXPECT_THROW(coarse_block_rounds(fine, 0), PreconditionError);
  EXPECT_THROW(coarse_block_rounds(fine, 7), PreconditionError);
}

TEST(ChunkedRoundsTest, ChunksAllTasks) {
  const DesignScheme scheme(13);
  const auto rounds = chunked_rounds(scheme, 4);
  std::size_t total = 0;
  for (const auto& round : rounds) {
    EXPECT_LE(round.size(), 4u);
    total += round.size();
  }
  EXPECT_EQ(total, scheme.num_tasks());
  EXPECT_EQ(rounds.size(), ceil_div(scheme.num_tasks(), 4));
}

TEST(HierarchicalRunTest, MatchesFlatBlockResults) {
  const std::uint64_t v = 24;
  const auto payloads = make_payloads(v);

  // Flat run.
  mr::Cluster flat_cluster({.num_nodes = 3, .worker_threads = 2});
  const auto flat_inputs = write_dataset(flat_cluster, "/data", payloads);
  const BlockScheme flat(v, 6);
  const RunReport flat_stats =
      pairmr::testing::run_two_job(flat_cluster, flat_inputs, flat, id_sum_job());
  const auto flat_elements =
      read_elements(flat_cluster, flat_stats.output_dir);

  // Hierarchical run over the same fine scheme, coarse factor 2.
  mr::Cluster h_cluster({.num_nodes = 3, .worker_threads = 2});
  const auto h_inputs = write_dataset(h_cluster, "/data", payloads);
  const BlockScheme fine(v, 6);
  const auto rounds = coarse_block_rounds(fine, 2);
  const RunReport h_stats =
      pairmr::testing::run_rounds(h_cluster, h_inputs, fine, rounds, id_sum_job());
  const auto h_elements = read_elements(h_cluster, h_stats.output_dir);

  EXPECT_EQ(h_stats.evaluations, flat_stats.evaluations);
  EXPECT_EQ(h_elements, flat_elements);
}

TEST(HierarchicalRunTest, PeakIntermediateBelowFlat) {
  // §7's claim: sequential coarse rounds bound the materialized
  // intermediate data to one round's volume.
  const std::uint64_t v = 30;
  const auto payloads = make_payloads(v, 256);

  mr::Cluster flat_cluster({.num_nodes = 2, .worker_threads = 2});
  const auto flat_inputs = write_dataset(flat_cluster, "/data", payloads);
  const BlockScheme flat(v, 6);
  const RunReport flat_stats =
      pairmr::testing::run_two_job(flat_cluster, flat_inputs, flat, id_sum_job());

  mr::Cluster h_cluster({.num_nodes = 2, .worker_threads = 2});
  const auto h_inputs = write_dataset(h_cluster, "/data", payloads);
  const BlockScheme fine(v, 6);
  const RunReport h_stats = pairmr::testing::run_rounds(
      h_cluster, h_inputs, fine, coarse_block_rounds(fine, 3), id_sum_job());

  EXPECT_LT(h_stats.intermediate_bytes, flat_stats.intermediate_bytes);
  EXPECT_GT(h_stats.intermediate_bytes, 0u);
}

TEST(HierarchicalRunTest, DesignChunksMatchFlatDesign) {
  const std::uint64_t v = 13;
  const auto payloads = make_payloads(v);

  mr::Cluster flat_cluster({.num_nodes = 2, .worker_threads = 1});
  const auto flat_inputs = write_dataset(flat_cluster, "/data", payloads);
  const DesignScheme flat(v);
  const RunReport flat_stats =
      pairmr::testing::run_two_job(flat_cluster, flat_inputs, flat, id_sum_job());
  const auto flat_elements =
      read_elements(flat_cluster, flat_stats.output_dir);

  mr::Cluster h_cluster({.num_nodes = 2, .worker_threads = 1});
  const auto h_inputs = write_dataset(h_cluster, "/data", payloads);
  const DesignScheme scheme(v);
  const RunReport h_stats = pairmr::testing::run_rounds(
      h_cluster, h_inputs, scheme, chunked_rounds(scheme, 3), id_sum_job());

  EXPECT_EQ(read_elements(h_cluster, h_stats.output_dir), flat_elements);
}

TEST(HierarchicalRunTest, SingleRoundEqualsFlat) {
  const std::uint64_t v = 12;
  const auto payloads = make_payloads(v);
  mr::Cluster cluster({.num_nodes = 2, .worker_threads = 1});
  const auto inputs = write_dataset(cluster, "/data", payloads);
  const BlockScheme scheme(v, 3);

  std::vector<TaskId> all_tasks;
  for (TaskId t = 0; t < scheme.num_tasks(); ++t) all_tasks.push_back(t);
  const RunReport stats = pairmr::testing::run_rounds(
      cluster, inputs, scheme, {all_tasks}, id_sum_job());
  EXPECT_EQ(stats.evaluations, pair_count(v));
  EXPECT_EQ(read_elements(cluster, stats.output_dir).size(), v);
}

TEST(HierarchicalRunTest, EmptyRoundListThrows) {
  mr::Cluster cluster({.num_nodes = 1});
  const BlockScheme scheme(4, 2);
  EXPECT_THROW(
      pairmr::testing::run_rounds(cluster, {"/x"}, scheme, {}, id_sum_job()),
      PreconditionError);
}

}  // namespace
}  // namespace pairmr
