#include "common/serde.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <vector>

#include "common/check.hpp"

namespace pairmr {
namespace {

TEST(SerdeTest, ScalarRoundTrip) {
  BufWriter w;
  w.put_u8(0xAB);
  w.put_u32(0xDEADBEEF);
  w.put_u64(0x0123456789ABCDEFull);
  w.put_f64(-3.14159);
  const std::string bytes = std::move(w).str();

  BufReader r(bytes);
  EXPECT_EQ(r.get_u8(), 0xAB);
  EXPECT_EQ(r.get_u32(), 0xDEADBEEF);
  EXPECT_EQ(r.get_u64(), 0x0123456789ABCDEFull);
  EXPECT_DOUBLE_EQ(r.get_f64(), -3.14159);
  EXPECT_TRUE(r.exhausted());
}

TEST(SerdeTest, BytesRoundTrip) {
  BufWriter w;
  w.put_bytes("hello");
  w.put_bytes("");
  w.put_bytes(std::string("\0\x01\x02", 3));  // embedded NULs survive
  const std::string bytes = std::move(w).str();

  BufReader r(bytes);
  EXPECT_EQ(r.get_bytes(), "hello");
  EXPECT_EQ(r.get_bytes(), "");
  EXPECT_EQ(r.get_bytes(), std::string_view("\0\x01\x02", 3));
  EXPECT_TRUE(r.exhausted());
}

TEST(SerdeTest, UnderflowThrows) {
  BufWriter w;
  w.put_u8(1);
  const std::string bytes = std::move(w).str();
  BufReader r(bytes);
  r.get_u8();
  EXPECT_THROW(r.get_u8(), PreconditionError);
  BufReader r2(bytes);
  EXPECT_THROW(r2.get_u64(), PreconditionError);
}

TEST(SerdeTest, TruncatedLengthPrefixThrows) {
  BufWriter w;
  w.put_u32(100);  // claims 100 payload bytes but provides none
  const std::string bytes = std::move(w).str();
  BufReader r(bytes);
  EXPECT_THROW(r.get_bytes(), PreconditionError);
}

TEST(SerdeTest, OrderedKeysSortNumerically) {
  // The big-endian u64 encoding must make byte-lexicographic order equal
  // numeric order — the engine's sort/shuffle relies on it.
  const std::vector<std::uint64_t> values = {
      0, 1, 255, 256, 65535, 65536, 1ull << 32,
      (1ull << 32) + 1, std::numeric_limits<std::uint64_t>::max()};
  std::vector<std::string> keys;
  for (const auto x : values) keys.push_back(encode_u64_key(x));
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
  for (std::size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(decode_u64_key(keys[i]), values[i]);
  }
}

TEST(SerdeTest, OrderedKeyPairwiseComparisonSweep) {
  // Property: for random pairs, byte order == numeric order.
  std::uint64_t a = 0x9e3779b97f4a7c15ull;
  for (int i = 0; i < 500; ++i) {
    a ^= a << 13;
    a ^= a >> 7;
    a ^= a << 17;
    const std::uint64_t b = a * 0x2545F4914F6CDD1Dull;
    EXPECT_EQ(encode_u64_key(a) < encode_u64_key(b), a < b);
  }
}

TEST(SerdeTest, F64VecRoundTrip) {
  const std::vector<double> xs = {0.0, -1.5, 3.25, 1e300, -1e-300};
  EXPECT_EQ(decode_f64_vec(encode_f64_vec(xs)), xs);
  EXPECT_TRUE(decode_f64_vec(encode_f64_vec({})).empty());
}

TEST(SerdeTest, RawAppendHasNoFraming) {
  BufWriter w;
  w.put_raw("abc");
  w.put_raw("def");
  EXPECT_EQ(w.str(), "abcdef");
}

}  // namespace
}  // namespace pairmr
