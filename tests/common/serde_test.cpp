#include "common/serde.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <vector>

#include "common/check.hpp"

namespace pairmr {
namespace {

TEST(SerdeTest, ScalarRoundTrip) {
  BufWriter w;
  w.put_u8(0xAB);
  w.put_u32(0xDEADBEEF);
  w.put_u64(0x0123456789ABCDEFull);
  w.put_f64(-3.14159);
  const std::string bytes = std::move(w).str();

  BufReader r(bytes);
  EXPECT_EQ(r.get_u8(), 0xAB);
  EXPECT_EQ(r.get_u32(), 0xDEADBEEF);
  EXPECT_EQ(r.get_u64(), 0x0123456789ABCDEFull);
  EXPECT_DOUBLE_EQ(r.get_f64(), -3.14159);
  EXPECT_TRUE(r.exhausted());
}

TEST(SerdeTest, BytesRoundTrip) {
  BufWriter w;
  w.put_bytes("hello");
  w.put_bytes("");
  w.put_bytes(std::string("\0\x01\x02", 3));  // embedded NULs survive
  const std::string bytes = std::move(w).str();

  BufReader r(bytes);
  EXPECT_EQ(r.get_bytes(), "hello");
  EXPECT_EQ(r.get_bytes(), "");
  EXPECT_EQ(r.get_bytes(), std::string_view("\0\x01\x02", 3));
  EXPECT_TRUE(r.exhausted());
}

TEST(SerdeTest, UnderflowThrows) {
  BufWriter w;
  w.put_u8(1);
  const std::string bytes = std::move(w).str();
  BufReader r(bytes);
  r.get_u8();
  EXPECT_THROW(r.get_u8(), PreconditionError);
  BufReader r2(bytes);
  EXPECT_THROW(r2.get_u64(), PreconditionError);
}

TEST(SerdeTest, TruncatedLengthPrefixThrows) {
  BufWriter w;
  w.put_u32(100);  // claims 100 payload bytes but provides none
  const std::string bytes = std::move(w).str();
  BufReader r(bytes);
  EXPECT_THROW(r.get_bytes(), PreconditionError);
}

TEST(SerdeTest, OrderedKeysSortNumerically) {
  // The big-endian u64 encoding must make byte-lexicographic order equal
  // numeric order — the engine's sort/shuffle relies on it.
  const std::vector<std::uint64_t> values = {
      0, 1, 255, 256, 65535, 65536, 1ull << 32,
      (1ull << 32) + 1, std::numeric_limits<std::uint64_t>::max()};
  std::vector<std::string> keys;
  for (const auto x : values) keys.push_back(encode_u64_key(x));
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
  for (std::size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(decode_u64_key(keys[i]), values[i]);
  }
}

TEST(SerdeTest, OrderedKeyPairwiseComparisonSweep) {
  // Property: for random pairs, byte order == numeric order.
  std::uint64_t a = 0x9e3779b97f4a7c15ull;
  for (int i = 0; i < 500; ++i) {
    a ^= a << 13;
    a ^= a >> 7;
    a ^= a << 17;
    const std::uint64_t b = a * 0x2545F4914F6CDD1Dull;
    EXPECT_EQ(encode_u64_key(a) < encode_u64_key(b), a < b);
  }
}

TEST(SerdeTest, WordWritesHaveExactByteLayout) {
  // put_u32/put_u64 append whole words (memcpy-style bulk append); the
  // wire layout must stay byte-for-byte what the per-byte seed encoder
  // produced: little-endian for plain integers, big-endian for ordered
  // keys.
  BufWriter w;
  w.put_u32(0x01020304u);
  w.put_u64(0x0102030405060708ull);
  w.put_u64_ordered(0x0102030405060708ull);
  const std::string bytes = std::move(w).str();
  ASSERT_EQ(bytes.size(), 20u);
  EXPECT_EQ(bytes.substr(0, 4), std::string("\x04\x03\x02\x01", 4));
  EXPECT_EQ(bytes.substr(4, 8),
            std::string("\x08\x07\x06\x05\x04\x03\x02\x01", 8));
  EXPECT_EQ(bytes.substr(12, 8),
            std::string("\x01\x02\x03\x04\x05\x06\x07\x08", 8));
}

TEST(SerdeTest, WordRoundTripSweep) {
  // Random + boundary round trips through the bulk-write/bulk-read pair,
  // including values with all-zero and all-ones bytes.
  std::vector<std::uint64_t> values = {0, 1, 0xFF, 0xFF00, 0x8000000000000000ull,
                                       std::numeric_limits<std::uint64_t>::max()};
  std::uint64_t x = 0x243F6A8885A308D3ull;
  for (int i = 0; i < 200; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    values.push_back(x);
  }
  for (const std::uint64_t v : values) {
    BufWriter w;
    w.put_u32(static_cast<std::uint32_t>(v));
    w.put_u64(v);
    w.put_u64_ordered(v);
    const std::string bytes = std::move(w).str();
    BufReader r(bytes);
    EXPECT_EQ(r.get_u32(), static_cast<std::uint32_t>(v));
    EXPECT_EQ(r.get_u64(), v);
    EXPECT_EQ(r.get_u64_ordered(), v);
    EXPECT_TRUE(r.exhausted());
  }
}

TEST(SerdeTest, ReserveDoesNotAffectContents) {
  BufWriter w;
  w.reserve(1024);
  w.put_u32(7);
  w.put_bytes("payload");
  BufWriter plain;
  plain.put_u32(7);
  plain.put_bytes("payload");
  EXPECT_EQ(w.str(), plain.str());
}

TEST(SerdeTest, F64VecRoundTrip) {
  const std::vector<double> xs = {0.0, -1.5, 3.25, 1e300, -1e-300};
  EXPECT_EQ(decode_f64_vec(encode_f64_vec(xs)), xs);
  EXPECT_TRUE(decode_f64_vec(encode_f64_vec({})).empty());
}

TEST(SerdeTest, RawAppendHasNoFraming) {
  BufWriter w;
  w.put_raw("abc");
  w.put_raw("def");
  EXPECT_EQ(w.str(), "abcdef");
}

}  // namespace
}  // namespace pairmr
