#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace pairmr {
namespace {

TEST(RngTest, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, NextBelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, NextDoubleRangeRespectsBounds) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.next_double(-5.0, 3.0);
    EXPECT_GE(x, -5.0);
    EXPECT_LT(x, 3.0);
  }
}

TEST(RngTest, GaussianMomentsRoughlyStandard) {
  Rng rng(123);
  const int n = 20000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.next_gaussian();
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(RngTest, ForkedStreamsAreIndependentAndStable) {
  Rng base(99);
  Rng f1 = base.fork(1);
  Rng f2 = base.fork(2);
  Rng f1_again = base.fork(1);
  EXPECT_NE(f1.next_u64(), f2.next_u64());
  // Forking must not consume base state, and the same salt reproduces.
  EXPECT_EQ(base.fork(1).next_u64(), f1_again.next_u64());
}

TEST(RngTest, OutputSpreadsOverBuckets) {
  Rng rng(5);
  std::set<std::uint64_t> buckets;
  for (int i = 0; i < 256; ++i) buckets.insert(rng.next_u64() >> 56);
  // 256 draws over 256 top-byte buckets should hit a healthy spread.
  EXPECT_GT(buckets.size(), 120u);
}

}  // namespace
}  // namespace pairmr
