#include "common/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/check.hpp"

namespace pairmr {
namespace {

TEST(TableTest, RendersAlignedColumns) {
  TablePrinter t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "12345"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| name  | value |"), std::string::npos);
  EXPECT_NE(out.find("| alpha | 1     |"), std::string::npos);
  EXPECT_NE(out.find("| b     | 12345 |"), std::string::npos);
}

TEST(TableTest, CaptionPrintsFirst) {
  TablePrinter t({"x"});
  t.set_caption("Table 1: demo");
  std::ostringstream os;
  t.print(os);
  EXPECT_EQ(os.str().rfind("Table 1: demo\n", 0), 0u);
}

TEST(TableTest, RowWidthMismatchThrows) {
  TablePrinter t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), PreconditionError);
}

TEST(TableTest, EmptyHeadersThrow) {
  EXPECT_THROW(TablePrinter({}), PreconditionError);
}

TEST(TableTest, NumberFormatting) {
  EXPECT_EQ(TablePrinter::num(std::uint64_t{42}), "42");
  EXPECT_EQ(TablePrinter::num(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::sci(12345.0, 2), "1.23e+04");
}

TEST(TableTest, NumRowsTracksAdds) {
  TablePrinter t({"x"});
  EXPECT_EQ(t.num_rows(), 0u);
  t.add_row({"1"});
  t.add_row({"2"});
  EXPECT_EQ(t.num_rows(), 2u);
}

}  // namespace
}  // namespace pairmr
