#include "common/intmath.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

namespace pairmr {
namespace {

TEST(IsqrtTest, SmallValues) {
  EXPECT_EQ(isqrt(0), 0u);
  EXPECT_EQ(isqrt(1), 1u);
  EXPECT_EQ(isqrt(2), 1u);
  EXPECT_EQ(isqrt(3), 1u);
  EXPECT_EQ(isqrt(4), 2u);
  EXPECT_EQ(isqrt(8), 2u);
  EXPECT_EQ(isqrt(9), 3u);
  EXPECT_EQ(isqrt(99), 9u);
  EXPECT_EQ(isqrt(100), 10u);
}

TEST(IsqrtTest, PerfectSquaresRoundTrip) {
  for (std::uint64_t r = 97; r < 100000; r += 97) {
    EXPECT_EQ(isqrt(r * r), r);
    EXPECT_EQ(isqrt(r * r - 1), r - 1);
    EXPECT_EQ(isqrt(r * r + 1), r);
  }
}

TEST(IsqrtTest, LargeValuesExact) {
  // Above 2^52, double-based sqrt can be off by one; ours must be exact.
  const std::uint64_t big = (1ull << 31) + 12345;
  EXPECT_EQ(isqrt(big * big), big);
  EXPECT_EQ(isqrt(big * big - 1), big - 1);
  EXPECT_EQ(isqrt(std::numeric_limits<std::uint64_t>::max()),
            0xFFFFFFFFull);
}

TEST(CeilDivTest, Basics) {
  EXPECT_EQ(ceil_div(0, 5), 0u);
  EXPECT_EQ(ceil_div(1, 5), 1u);
  EXPECT_EQ(ceil_div(5, 5), 1u);
  EXPECT_EQ(ceil_div(6, 5), 2u);
  EXPECT_EQ(ceil_div(10, 1), 10u);
}

TEST(TriangularTest, KnownValues) {
  EXPECT_EQ(triangular(0), 0u);
  EXPECT_EQ(triangular(1), 1u);
  EXPECT_EQ(triangular(2), 3u);
  EXPECT_EQ(triangular(3), 6u);
  EXPECT_EQ(triangular(7), 28u);
  EXPECT_EQ(triangular(100), 5050u);
}

TEST(TriangularTest, PairCount) {
  EXPECT_EQ(pair_count(0), 0u);
  EXPECT_EQ(pair_count(1), 0u);
  EXPECT_EQ(pair_count(2), 1u);
  EXPECT_EQ(pair_count(7), 21u);       // the paper's Figure 4 example
  EXPECT_EQ(pair_count(10000), 49995000u);  // paper §3 example dataset
}

TEST(TriangularTest, NoIntermediateOverflow) {
  // T(n) for n near 2^32: n(n+1)/2 fits in 64 bits and must not overflow
  // mid-computation.
  const std::uint64_t n = (1ull << 32) - 1;
  EXPECT_EQ(triangular(n), n / 2 * (n + 1) + (n % 2) * ((n + 1) / 2) * 1);
}

TEST(InvTriangularTest, RoundTripSweep) {
  for (std::uint64_t n = 0; n < 3000; ++n) {
    const std::uint64_t t = triangular(n);
    EXPECT_EQ(inv_triangular(t), n) << "at n=" << n;
    if (t > 0) {
      EXPECT_EQ(inv_triangular(t - 1), n - 1) << "at n=" << n;
    }
    EXPECT_EQ(inv_triangular(t + n), n) << "just below T(n+1)";
  }
}

TEST(CheckedMathTest, MulOverflowThrows) {
  EXPECT_EQ(checked_mul(1ull << 31, 1ull << 31), 1ull << 62);
  EXPECT_THROW(checked_mul(1ull << 33, 1ull << 33), InternalError);
  EXPECT_EQ(checked_mul(0, std::numeric_limits<std::uint64_t>::max()), 0u);
}

TEST(CheckedMathTest, AddOverflowThrows) {
  const auto max = std::numeric_limits<std::uint64_t>::max();
  EXPECT_EQ(checked_add(max - 1, 1), max);
  EXPECT_THROW(checked_add(max, 1), InternalError);
}

}  // namespace
}  // namespace pairmr
