#include "common/units.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace pairmr {
namespace {

TEST(UnitsTest, Constants) {
  EXPECT_EQ(kKiB, 1024u);
  EXPECT_EQ(kMiB, 1024u * 1024u);
  EXPECT_EQ(kGiB, 1024ull * 1024 * 1024);
  EXPECT_EQ(kTiB, 1024ull * 1024 * 1024 * 1024);
}

TEST(UnitsTest, FormatPicksLargestUnit) {
  EXPECT_EQ(format_bytes(0), "0 B");
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(kKiB), "1.00 KiB");
  EXPECT_EQ(format_bytes(1536), "1.50 KiB");
  EXPECT_EQ(format_bytes(200 * kMiB), "200.00 MiB");
  EXPECT_EQ(format_bytes(kTiB), "1.00 TiB");
}

TEST(UnitsTest, ParseSuffixes) {
  EXPECT_EQ(parse_bytes("512"), 512u);
  EXPECT_EQ(parse_bytes("512B"), 512u);
  EXPECT_EQ(parse_bytes("1KiB"), kKiB);
  EXPECT_EQ(parse_bytes("1 KiB"), kKiB);
  EXPECT_EQ(parse_bytes("200MiB"), 200 * kMiB);
  EXPECT_EQ(parse_bytes("200MB"), 200 * kMiB);  // MB treated as binary
  EXPECT_EQ(parse_bytes("1.5G"), kGiB + kGiB / 2);
  EXPECT_EQ(parse_bytes("10TiB"), 10 * kTiB);
}

TEST(UnitsTest, ParseRejectsJunk) {
  EXPECT_THROW(parse_bytes(""), PreconditionError);
  EXPECT_THROW(parse_bytes("MiB"), PreconditionError);
  EXPECT_THROW(parse_bytes("12XB"), PreconditionError);
}

TEST(UnitsTest, FormatParseRoundTrip) {
  for (const std::uint64_t x :
       {kKiB, 3 * kMiB, 7 * kGiB, 2 * kTiB, 200 * kMiB}) {
    EXPECT_EQ(parse_bytes(format_bytes(x)), x);
  }
}

}  // namespace
}  // namespace pairmr
