// Minimal JSON DOM parser for schema tests — just enough to validate the
// repo's JSON exports (Chrome traces, BENCH_*.json) without an external
// dependency. Order-preserving objects so field-set stability can be
// asserted; \uXXXX escapes are checked for shape but decoded as '?'
// (exact code points are irrelevant to schemas). Shared by
// tests/mr/trace_schema_test.cpp and tests/pairwise/frontier_schema_test.cpp.
#pragma once

#include <cctype>
#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace pairmr::minijson {

struct JsonValue {
  enum Kind { kNull, kBool, kNumber, kString, kObject, kArray };
  Kind kind = kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<std::pair<std::string, JsonValue>> object;  // order-preserving
  std::vector<JsonValue> array;

  const JsonValue* find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  // Parses the whole input as one value; fails on trailing garbage.
  bool parse(JsonValue& out) {
    pos_ = 0;
    if (!parse_value(out)) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool parse_literal(const char* lit) {
    const std::size_t n = std::string(lit).size();
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  bool parse_string(std::string& out) {
    if (!consume('"')) return false;
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return false;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'n': out.push_back('\n'); break;
        case 't': out.push_back('\t'); break;
        case 'r': out.push_back('\r'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return false;
          for (int i = 0; i < 4; ++i) {
            if (!std::isxdigit(static_cast<unsigned char>(text_[pos_ + i]))) {
              return false;
            }
          }
          out.push_back('?');  // exact code point irrelevant for schemas
          pos_ += 4;
          break;
        }
        default:
          return false;
      }
    }
    return false;  // unterminated
  }

  bool parse_number(double& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    std::size_t digits = 0;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
      ++digits;
    }
    if (digits == 0) return false;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      std::size_t frac = 0;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
        ++frac;
      }
      if (frac == 0) return false;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      std::size_t exp = 0;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
        ++exp;
      }
      if (exp == 0) return false;
    }
    out = std::stod(text_.substr(start, pos_ - start));
    return true;
  }

  bool parse_value(JsonValue& out) {
    skip_ws();
    if (pos_ >= text_.size()) return false;
    const char c = text_[pos_];
    if (c == '{') {
      ++pos_;
      out.kind = JsonValue::kObject;
      skip_ws();
      if (consume('}')) return true;
      while (true) {
        std::string key;
        skip_ws();
        if (!parse_string(key)) return false;
        if (!consume(':')) return false;
        JsonValue value;
        if (!parse_value(value)) return false;
        out.object.emplace_back(std::move(key), std::move(value));
        if (consume(',')) continue;
        return consume('}');
      }
    }
    if (c == '[') {
      ++pos_;
      out.kind = JsonValue::kArray;
      skip_ws();
      if (consume(']')) return true;
      while (true) {
        JsonValue value;
        if (!parse_value(value)) return false;
        out.array.push_back(std::move(value));
        if (consume(',')) continue;
        return consume(']');
      }
    }
    if (c == '"') {
      out.kind = JsonValue::kString;
      return parse_string(out.str);
    }
    if (c == 't') {
      out.kind = JsonValue::kBool;
      out.boolean = true;
      return parse_literal("true");
    }
    if (c == 'f') {
      out.kind = JsonValue::kBool;
      out.boolean = false;
      return parse_literal("false");
    }
    if (c == 'n') {
      out.kind = JsonValue::kNull;
      return parse_literal("null");
    }
    out.kind = JsonValue::kNumber;
    return parse_number(out.number);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace pairmr::minijson
