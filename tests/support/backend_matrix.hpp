// Cross-backend test support.
//
// The differential oracle (tests/mr/backend_equivalence_test.cpp) and the
// backend.* ctest suite run the same jobs on every execution substrate
// behind mr::backend::Backend and hold the results byte-identical. This
// header centralises the three things those tests share:
//
//   * the backend matrix to iterate (in-process, fork),
//   * detection of "this binary was re-launched under the fork backend"
//     (the backend.* ctest suite sets PAIRMR_TEST_BACKEND=fork), and
//   * skip guards for the few tests whose *instrumentation* — not the
//     engine — is inherently single-process. Flaky mappers/reducers that
//     coordinate "fail once, then succeed" through process-global atomics
//     cannot see a prior attempt's state from a fresh worker process
//     (exactly as on a real shared-nothing cluster), and an injected
//     tracer clock cannot tick across a process boundary. Skipping keeps
//     the suite honest: the guarded behaviour is meaningless under fork,
//     not broken.
//
// ThreadSanitizer interposes on fork in a way that deadlocks the fork
// backend's worker handshake, so ForkBackend refuses to start under TSan
// (mr/backend/fork.cpp) and fork-matrix tests skip themselves via
// fork_backend_supported().
#pragma once

#include <gtest/gtest.h>

#include <array>
#include <cstdlib>
#include <cstring>

#include "mr/job.hpp"

#if defined(__SANITIZE_THREAD__)
#define PAIRMR_TEST_HAS_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define PAIRMR_TEST_HAS_TSAN 1
#endif
#endif

namespace pairmr::testing {

// The substrates every differential test must agree across.
inline constexpr std::array<mr::BackendKind, 2> kBackendMatrix = {
    mr::BackendKind::kInProcess, mr::BackendKind::kFork};

// True when this test binary is being re-run under the fork backend
// (PAIRMR_TEST_BACKEND=fork, as the backend.* ctest suite does).
inline bool fork_backend_selected() {
  const char* env = std::getenv("PAIRMR_TEST_BACKEND");
  return env != nullptr && std::strcmp(env, "fork") == 0;
}

// True when the re-run also forces the shared-memory shuffle plane
// (PAIRMR_SHUFFLE_PLANE=shm, as the shmplane.* ctest suite does). Only
// meaningful together with fork_backend_selected(): the in-process
// backend has no shuffle transport to swap.
inline bool shm_plane_selected() {
  const char* env = std::getenv("PAIRMR_SHUFFLE_PLANE");
  return env != nullptr && std::strcmp(env, "shm") == 0;
}

// False when the build cannot fork worker processes at all (TSan).
inline constexpr bool fork_backend_supported() {
#if defined(PAIRMR_TEST_HAS_TSAN)
  return false;
#else
  return true;
#endif
}

}  // namespace pairmr::testing

// Skip a test whose injection/observation mechanism lives in process
// memory and therefore cannot work across forked workers. `why` should
// name that mechanism.
#define PAIRMR_SKIP_UNDER_FORK(why)                                     \
  do {                                                                  \
    if (::pairmr::testing::fork_backend_selected()) {                   \
      GTEST_SKIP() << "in-process-only instrumentation under the fork " \
                      "backend: " why;                                  \
    }                                                                   \
  } while (0)

// Skip a test that *requires* the fork backend on builds where it cannot
// run (TSan interposes on fork).
#define PAIRMR_SKIP_WITHOUT_FORK_SUPPORT()                              \
  do {                                                                  \
    if (!::pairmr::testing::fork_backend_supported()) {                 \
      GTEST_SKIP() << "fork backend unavailable under ThreadSanitizer"; \
    }                                                                   \
  } while (0)
