// Thin RunSpec builders for tests migrated off the deprecated
// pipeline.hpp free functions: same call shape, but through the owning
// PairwiseRunner API (the shims' delegation itself is certified by the
// shim-parity cases in tests/pairwise/pipeline_test.cpp).
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "pairwise/runner.hpp"

namespace pairmr::testing {

inline RunReport run_two_job(
    mr::Cluster& cluster, const std::vector<std::string>& input_paths,
    std::shared_ptr<const DistributionScheme> scheme, const PairwiseJob& job,
    const PairwiseOptions& options = {}) {
  RunSpec spec;
  spec.input_paths = input_paths;
  spec.mode = RunMode::kTwoJob;
  spec.scheme = std::move(scheme);
  spec.job = job;
  spec.options = options;
  return PairwiseRunner(cluster).run(spec);
}

inline RunReport run_two_job(
    mr::Cluster& cluster, const std::vector<std::string>& input_paths,
    const DistributionScheme& scheme, const PairwiseJob& job,
    const PairwiseOptions& options = {}) {
  return run_two_job(cluster, input_paths, borrow_scheme(scheme), job,
                     options);
}

inline RunReport run_broadcast(
    mr::Cluster& cluster, const std::vector<std::string>& input_paths,
    std::uint64_t v, std::uint64_t num_tasks, const PairwiseJob& job,
    const PairwiseOptions& options = {}) {
  RunSpec spec;
  spec.input_paths = input_paths;
  spec.mode = RunMode::kBroadcast;
  spec.broadcast = BroadcastTarget{.v = v, .num_tasks = num_tasks};
  spec.job = job;
  spec.options = options;
  return PairwiseRunner(cluster).run(spec);
}

inline RunReport run_rounds(
    mr::Cluster& cluster, const std::vector<std::string>& input_paths,
    const DistributionScheme& scheme,
    const std::vector<std::vector<TaskId>>& rounds, const PairwiseJob& job,
    const PairwiseOptions& options = {}) {
  RunSpec spec;
  spec.input_paths = input_paths;
  spec.mode = RunMode::kRounds;
  spec.scheme = borrow_scheme(scheme);
  spec.rounds = rounds;
  spec.job = job;
  spec.options = options;
  return PairwiseRunner(cluster).run(spec);
}

}  // namespace pairmr::testing
