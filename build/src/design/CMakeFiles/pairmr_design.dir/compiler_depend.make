# Empty compiler generated dependencies file for pairmr_design.
# This may be replaced when dependencies are built.
