file(REMOVE_RECURSE
  "CMakeFiles/pairmr_design.dir/design_check.cpp.o"
  "CMakeFiles/pairmr_design.dir/design_check.cpp.o.d"
  "CMakeFiles/pairmr_design.dir/difference_set.cpp.o"
  "CMakeFiles/pairmr_design.dir/difference_set.cpp.o.d"
  "CMakeFiles/pairmr_design.dir/gf.cpp.o"
  "CMakeFiles/pairmr_design.dir/gf.cpp.o.d"
  "CMakeFiles/pairmr_design.dir/primes.cpp.o"
  "CMakeFiles/pairmr_design.dir/primes.cpp.o.d"
  "CMakeFiles/pairmr_design.dir/projective_plane.cpp.o"
  "CMakeFiles/pairmr_design.dir/projective_plane.cpp.o.d"
  "libpairmr_design.a"
  "libpairmr_design.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pairmr_design.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
