
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/design/design_check.cpp" "src/design/CMakeFiles/pairmr_design.dir/design_check.cpp.o" "gcc" "src/design/CMakeFiles/pairmr_design.dir/design_check.cpp.o.d"
  "/root/repo/src/design/difference_set.cpp" "src/design/CMakeFiles/pairmr_design.dir/difference_set.cpp.o" "gcc" "src/design/CMakeFiles/pairmr_design.dir/difference_set.cpp.o.d"
  "/root/repo/src/design/gf.cpp" "src/design/CMakeFiles/pairmr_design.dir/gf.cpp.o" "gcc" "src/design/CMakeFiles/pairmr_design.dir/gf.cpp.o.d"
  "/root/repo/src/design/primes.cpp" "src/design/CMakeFiles/pairmr_design.dir/primes.cpp.o" "gcc" "src/design/CMakeFiles/pairmr_design.dir/primes.cpp.o.d"
  "/root/repo/src/design/projective_plane.cpp" "src/design/CMakeFiles/pairmr_design.dir/projective_plane.cpp.o" "gcc" "src/design/CMakeFiles/pairmr_design.dir/projective_plane.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pairmr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
