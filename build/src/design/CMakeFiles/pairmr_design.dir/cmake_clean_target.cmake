file(REMOVE_RECURSE
  "libpairmr_design.a"
)
