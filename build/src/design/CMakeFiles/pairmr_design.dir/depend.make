# Empty dependencies file for pairmr_design.
# This may be replaced when dependencies are built.
