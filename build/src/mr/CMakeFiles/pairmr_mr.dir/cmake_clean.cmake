file(REMOVE_RECURSE
  "CMakeFiles/pairmr_mr.dir/cluster.cpp.o"
  "CMakeFiles/pairmr_mr.dir/cluster.cpp.o.d"
  "CMakeFiles/pairmr_mr.dir/counters.cpp.o"
  "CMakeFiles/pairmr_mr.dir/counters.cpp.o.d"
  "CMakeFiles/pairmr_mr.dir/engine.cpp.o"
  "CMakeFiles/pairmr_mr.dir/engine.cpp.o.d"
  "CMakeFiles/pairmr_mr.dir/fs.cpp.o"
  "CMakeFiles/pairmr_mr.dir/fs.cpp.o.d"
  "CMakeFiles/pairmr_mr.dir/job.cpp.o"
  "CMakeFiles/pairmr_mr.dir/job.cpp.o.d"
  "CMakeFiles/pairmr_mr.dir/network.cpp.o"
  "CMakeFiles/pairmr_mr.dir/network.cpp.o.d"
  "CMakeFiles/pairmr_mr.dir/text_io.cpp.o"
  "CMakeFiles/pairmr_mr.dir/text_io.cpp.o.d"
  "CMakeFiles/pairmr_mr.dir/thread_pool.cpp.o"
  "CMakeFiles/pairmr_mr.dir/thread_pool.cpp.o.d"
  "libpairmr_mr.a"
  "libpairmr_mr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pairmr_mr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
