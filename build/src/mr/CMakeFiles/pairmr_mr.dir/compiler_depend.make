# Empty compiler generated dependencies file for pairmr_mr.
# This may be replaced when dependencies are built.
