file(REMOVE_RECURSE
  "libpairmr_mr.a"
)
