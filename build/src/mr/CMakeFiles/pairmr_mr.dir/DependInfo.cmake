
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mr/cluster.cpp" "src/mr/CMakeFiles/pairmr_mr.dir/cluster.cpp.o" "gcc" "src/mr/CMakeFiles/pairmr_mr.dir/cluster.cpp.o.d"
  "/root/repo/src/mr/counters.cpp" "src/mr/CMakeFiles/pairmr_mr.dir/counters.cpp.o" "gcc" "src/mr/CMakeFiles/pairmr_mr.dir/counters.cpp.o.d"
  "/root/repo/src/mr/engine.cpp" "src/mr/CMakeFiles/pairmr_mr.dir/engine.cpp.o" "gcc" "src/mr/CMakeFiles/pairmr_mr.dir/engine.cpp.o.d"
  "/root/repo/src/mr/fs.cpp" "src/mr/CMakeFiles/pairmr_mr.dir/fs.cpp.o" "gcc" "src/mr/CMakeFiles/pairmr_mr.dir/fs.cpp.o.d"
  "/root/repo/src/mr/job.cpp" "src/mr/CMakeFiles/pairmr_mr.dir/job.cpp.o" "gcc" "src/mr/CMakeFiles/pairmr_mr.dir/job.cpp.o.d"
  "/root/repo/src/mr/network.cpp" "src/mr/CMakeFiles/pairmr_mr.dir/network.cpp.o" "gcc" "src/mr/CMakeFiles/pairmr_mr.dir/network.cpp.o.d"
  "/root/repo/src/mr/text_io.cpp" "src/mr/CMakeFiles/pairmr_mr.dir/text_io.cpp.o" "gcc" "src/mr/CMakeFiles/pairmr_mr.dir/text_io.cpp.o.d"
  "/root/repo/src/mr/thread_pool.cpp" "src/mr/CMakeFiles/pairmr_mr.dir/thread_pool.cpp.o" "gcc" "src/mr/CMakeFiles/pairmr_mr.dir/thread_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pairmr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
