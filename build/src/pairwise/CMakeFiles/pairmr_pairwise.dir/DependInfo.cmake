
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pairwise/aggregate.cpp" "src/pairwise/CMakeFiles/pairmr_pairwise.dir/aggregate.cpp.o" "gcc" "src/pairwise/CMakeFiles/pairmr_pairwise.dir/aggregate.cpp.o.d"
  "/root/repo/src/pairwise/bipartite_scheme.cpp" "src/pairwise/CMakeFiles/pairmr_pairwise.dir/bipartite_scheme.cpp.o" "gcc" "src/pairwise/CMakeFiles/pairmr_pairwise.dir/bipartite_scheme.cpp.o.d"
  "/root/repo/src/pairwise/block_scheme.cpp" "src/pairwise/CMakeFiles/pairmr_pairwise.dir/block_scheme.cpp.o" "gcc" "src/pairwise/CMakeFiles/pairmr_pairwise.dir/block_scheme.cpp.o.d"
  "/root/repo/src/pairwise/broadcast_scheme.cpp" "src/pairwise/CMakeFiles/pairmr_pairwise.dir/broadcast_scheme.cpp.o" "gcc" "src/pairwise/CMakeFiles/pairmr_pairwise.dir/broadcast_scheme.cpp.o.d"
  "/root/repo/src/pairwise/cost_model.cpp" "src/pairwise/CMakeFiles/pairmr_pairwise.dir/cost_model.cpp.o" "gcc" "src/pairwise/CMakeFiles/pairmr_pairwise.dir/cost_model.cpp.o.d"
  "/root/repo/src/pairwise/cyclic_design_scheme.cpp" "src/pairwise/CMakeFiles/pairmr_pairwise.dir/cyclic_design_scheme.cpp.o" "gcc" "src/pairwise/CMakeFiles/pairmr_pairwise.dir/cyclic_design_scheme.cpp.o.d"
  "/root/repo/src/pairwise/dataset.cpp" "src/pairwise/CMakeFiles/pairmr_pairwise.dir/dataset.cpp.o" "gcc" "src/pairwise/CMakeFiles/pairmr_pairwise.dir/dataset.cpp.o.d"
  "/root/repo/src/pairwise/design_scheme.cpp" "src/pairwise/CMakeFiles/pairmr_pairwise.dir/design_scheme.cpp.o" "gcc" "src/pairwise/CMakeFiles/pairmr_pairwise.dir/design_scheme.cpp.o.d"
  "/root/repo/src/pairwise/element.cpp" "src/pairwise/CMakeFiles/pairmr_pairwise.dir/element.cpp.o" "gcc" "src/pairwise/CMakeFiles/pairmr_pairwise.dir/element.cpp.o.d"
  "/root/repo/src/pairwise/filtered_scheme.cpp" "src/pairwise/CMakeFiles/pairmr_pairwise.dir/filtered_scheme.cpp.o" "gcc" "src/pairwise/CMakeFiles/pairmr_pairwise.dir/filtered_scheme.cpp.o.d"
  "/root/repo/src/pairwise/hierarchical.cpp" "src/pairwise/CMakeFiles/pairmr_pairwise.dir/hierarchical.cpp.o" "gcc" "src/pairwise/CMakeFiles/pairmr_pairwise.dir/hierarchical.cpp.o.d"
  "/root/repo/src/pairwise/makespan.cpp" "src/pairwise/CMakeFiles/pairmr_pairwise.dir/makespan.cpp.o" "gcc" "src/pairwise/CMakeFiles/pairmr_pairwise.dir/makespan.cpp.o.d"
  "/root/repo/src/pairwise/pipeline.cpp" "src/pairwise/CMakeFiles/pairmr_pairwise.dir/pipeline.cpp.o" "gcc" "src/pairwise/CMakeFiles/pairmr_pairwise.dir/pipeline.cpp.o.d"
  "/root/repo/src/pairwise/planner.cpp" "src/pairwise/CMakeFiles/pairmr_pairwise.dir/planner.cpp.o" "gcc" "src/pairwise/CMakeFiles/pairmr_pairwise.dir/planner.cpp.o.d"
  "/root/repo/src/pairwise/reindex.cpp" "src/pairwise/CMakeFiles/pairmr_pairwise.dir/reindex.cpp.o" "gcc" "src/pairwise/CMakeFiles/pairmr_pairwise.dir/reindex.cpp.o.d"
  "/root/repo/src/pairwise/scheme.cpp" "src/pairwise/CMakeFiles/pairmr_pairwise.dir/scheme.cpp.o" "gcc" "src/pairwise/CMakeFiles/pairmr_pairwise.dir/scheme.cpp.o.d"
  "/root/repo/src/pairwise/simple.cpp" "src/pairwise/CMakeFiles/pairmr_pairwise.dir/simple.cpp.o" "gcc" "src/pairwise/CMakeFiles/pairmr_pairwise.dir/simple.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pairmr_common.dir/DependInfo.cmake"
  "/root/repo/build/src/mr/CMakeFiles/pairmr_mr.dir/DependInfo.cmake"
  "/root/repo/build/src/design/CMakeFiles/pairmr_design.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
