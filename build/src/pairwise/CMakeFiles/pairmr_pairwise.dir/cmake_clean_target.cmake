file(REMOVE_RECURSE
  "libpairmr_pairwise.a"
)
