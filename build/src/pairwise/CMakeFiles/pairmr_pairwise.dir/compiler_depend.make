# Empty compiler generated dependencies file for pairmr_pairwise.
# This may be replaced when dependencies are built.
