file(REMOVE_RECURSE
  "libpairmr_workloads.a"
)
