# Empty dependencies file for pairmr_workloads.
# This may be replaced when dependencies are built.
