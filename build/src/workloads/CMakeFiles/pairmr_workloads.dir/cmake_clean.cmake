file(REMOVE_RECURSE
  "CMakeFiles/pairmr_workloads.dir/generators.cpp.o"
  "CMakeFiles/pairmr_workloads.dir/generators.cpp.o.d"
  "CMakeFiles/pairmr_workloads.dir/inverted_index.cpp.o"
  "CMakeFiles/pairmr_workloads.dir/inverted_index.cpp.o.d"
  "CMakeFiles/pairmr_workloads.dir/kernels.cpp.o"
  "CMakeFiles/pairmr_workloads.dir/kernels.cpp.o.d"
  "libpairmr_workloads.a"
  "libpairmr_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pairmr_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
