file(REMOVE_RECURSE
  "CMakeFiles/pairmr_common.dir/log.cpp.o"
  "CMakeFiles/pairmr_common.dir/log.cpp.o.d"
  "CMakeFiles/pairmr_common.dir/table.cpp.o"
  "CMakeFiles/pairmr_common.dir/table.cpp.o.d"
  "CMakeFiles/pairmr_common.dir/units.cpp.o"
  "CMakeFiles/pairmr_common.dir/units.cpp.o.d"
  "libpairmr_common.a"
  "libpairmr_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pairmr_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
