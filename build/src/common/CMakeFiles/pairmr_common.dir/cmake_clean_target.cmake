file(REMOVE_RECURSE
  "libpairmr_common.a"
)
