# Empty dependencies file for pairmr_common.
# This may be replaced when dependencies are built.
