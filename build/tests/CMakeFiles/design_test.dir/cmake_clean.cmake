file(REMOVE_RECURSE
  "CMakeFiles/design_test.dir/design/design_check_test.cpp.o"
  "CMakeFiles/design_test.dir/design/design_check_test.cpp.o.d"
  "CMakeFiles/design_test.dir/design/difference_set_test.cpp.o"
  "CMakeFiles/design_test.dir/design/difference_set_test.cpp.o.d"
  "CMakeFiles/design_test.dir/design/gf_test.cpp.o"
  "CMakeFiles/design_test.dir/design/gf_test.cpp.o.d"
  "CMakeFiles/design_test.dir/design/plane_test.cpp.o"
  "CMakeFiles/design_test.dir/design/plane_test.cpp.o.d"
  "CMakeFiles/design_test.dir/design/primes_test.cpp.o"
  "CMakeFiles/design_test.dir/design/primes_test.cpp.o.d"
  "design_test"
  "design_test.pdb"
  "design_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/design_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
