
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/design/design_check_test.cpp" "tests/CMakeFiles/design_test.dir/design/design_check_test.cpp.o" "gcc" "tests/CMakeFiles/design_test.dir/design/design_check_test.cpp.o.d"
  "/root/repo/tests/design/difference_set_test.cpp" "tests/CMakeFiles/design_test.dir/design/difference_set_test.cpp.o" "gcc" "tests/CMakeFiles/design_test.dir/design/difference_set_test.cpp.o.d"
  "/root/repo/tests/design/gf_test.cpp" "tests/CMakeFiles/design_test.dir/design/gf_test.cpp.o" "gcc" "tests/CMakeFiles/design_test.dir/design/gf_test.cpp.o.d"
  "/root/repo/tests/design/plane_test.cpp" "tests/CMakeFiles/design_test.dir/design/plane_test.cpp.o" "gcc" "tests/CMakeFiles/design_test.dir/design/plane_test.cpp.o.d"
  "/root/repo/tests/design/primes_test.cpp" "tests/CMakeFiles/design_test.dir/design/primes_test.cpp.o" "gcc" "tests/CMakeFiles/design_test.dir/design/primes_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/pairmr_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/pairwise/CMakeFiles/pairmr_pairwise.dir/DependInfo.cmake"
  "/root/repo/build/src/design/CMakeFiles/pairmr_design.dir/DependInfo.cmake"
  "/root/repo/build/src/mr/CMakeFiles/pairmr_mr.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pairmr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
