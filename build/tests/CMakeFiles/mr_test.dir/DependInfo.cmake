
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/mr/cluster_test.cpp" "tests/CMakeFiles/mr_test.dir/mr/cluster_test.cpp.o" "gcc" "tests/CMakeFiles/mr_test.dir/mr/cluster_test.cpp.o.d"
  "/root/repo/tests/mr/counters_test.cpp" "tests/CMakeFiles/mr_test.dir/mr/counters_test.cpp.o" "gcc" "tests/CMakeFiles/mr_test.dir/mr/counters_test.cpp.o.d"
  "/root/repo/tests/mr/engine_test.cpp" "tests/CMakeFiles/mr_test.dir/mr/engine_test.cpp.o" "gcc" "tests/CMakeFiles/mr_test.dir/mr/engine_test.cpp.o.d"
  "/root/repo/tests/mr/fs_test.cpp" "tests/CMakeFiles/mr_test.dir/mr/fs_test.cpp.o" "gcc" "tests/CMakeFiles/mr_test.dir/mr/fs_test.cpp.o.d"
  "/root/repo/tests/mr/network_test.cpp" "tests/CMakeFiles/mr_test.dir/mr/network_test.cpp.o" "gcc" "tests/CMakeFiles/mr_test.dir/mr/network_test.cpp.o.d"
  "/root/repo/tests/mr/text_io_test.cpp" "tests/CMakeFiles/mr_test.dir/mr/text_io_test.cpp.o" "gcc" "tests/CMakeFiles/mr_test.dir/mr/text_io_test.cpp.o.d"
  "/root/repo/tests/mr/thread_pool_test.cpp" "tests/CMakeFiles/mr_test.dir/mr/thread_pool_test.cpp.o" "gcc" "tests/CMakeFiles/mr_test.dir/mr/thread_pool_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/pairmr_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/pairwise/CMakeFiles/pairmr_pairwise.dir/DependInfo.cmake"
  "/root/repo/build/src/design/CMakeFiles/pairmr_design.dir/DependInfo.cmake"
  "/root/repo/build/src/mr/CMakeFiles/pairmr_mr.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pairmr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
