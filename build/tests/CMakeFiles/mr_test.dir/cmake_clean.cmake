file(REMOVE_RECURSE
  "CMakeFiles/mr_test.dir/mr/cluster_test.cpp.o"
  "CMakeFiles/mr_test.dir/mr/cluster_test.cpp.o.d"
  "CMakeFiles/mr_test.dir/mr/counters_test.cpp.o"
  "CMakeFiles/mr_test.dir/mr/counters_test.cpp.o.d"
  "CMakeFiles/mr_test.dir/mr/engine_test.cpp.o"
  "CMakeFiles/mr_test.dir/mr/engine_test.cpp.o.d"
  "CMakeFiles/mr_test.dir/mr/fs_test.cpp.o"
  "CMakeFiles/mr_test.dir/mr/fs_test.cpp.o.d"
  "CMakeFiles/mr_test.dir/mr/network_test.cpp.o"
  "CMakeFiles/mr_test.dir/mr/network_test.cpp.o.d"
  "CMakeFiles/mr_test.dir/mr/text_io_test.cpp.o"
  "CMakeFiles/mr_test.dir/mr/text_io_test.cpp.o.d"
  "CMakeFiles/mr_test.dir/mr/thread_pool_test.cpp.o"
  "CMakeFiles/mr_test.dir/mr/thread_pool_test.cpp.o.d"
  "mr_test"
  "mr_test.pdb"
  "mr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
