
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/pairwise/aggregate_test.cpp" "tests/CMakeFiles/pairwise_test.dir/pairwise/aggregate_test.cpp.o" "gcc" "tests/CMakeFiles/pairwise_test.dir/pairwise/aggregate_test.cpp.o.d"
  "/root/repo/tests/pairwise/block_scheme_test.cpp" "tests/CMakeFiles/pairwise_test.dir/pairwise/block_scheme_test.cpp.o" "gcc" "tests/CMakeFiles/pairwise_test.dir/pairwise/block_scheme_test.cpp.o.d"
  "/root/repo/tests/pairwise/broadcast_scheme_test.cpp" "tests/CMakeFiles/pairwise_test.dir/pairwise/broadcast_scheme_test.cpp.o" "gcc" "tests/CMakeFiles/pairwise_test.dir/pairwise/broadcast_scheme_test.cpp.o.d"
  "/root/repo/tests/pairwise/cost_model_test.cpp" "tests/CMakeFiles/pairwise_test.dir/pairwise/cost_model_test.cpp.o" "gcc" "tests/CMakeFiles/pairwise_test.dir/pairwise/cost_model_test.cpp.o.d"
  "/root/repo/tests/pairwise/dataset_test.cpp" "tests/CMakeFiles/pairwise_test.dir/pairwise/dataset_test.cpp.o" "gcc" "tests/CMakeFiles/pairwise_test.dir/pairwise/dataset_test.cpp.o.d"
  "/root/repo/tests/pairwise/design_scheme_test.cpp" "tests/CMakeFiles/pairwise_test.dir/pairwise/design_scheme_test.cpp.o" "gcc" "tests/CMakeFiles/pairwise_test.dir/pairwise/design_scheme_test.cpp.o.d"
  "/root/repo/tests/pairwise/element_test.cpp" "tests/CMakeFiles/pairwise_test.dir/pairwise/element_test.cpp.o" "gcc" "tests/CMakeFiles/pairwise_test.dir/pairwise/element_test.cpp.o.d"
  "/root/repo/tests/pairwise/filtered_scheme_test.cpp" "tests/CMakeFiles/pairwise_test.dir/pairwise/filtered_scheme_test.cpp.o" "gcc" "tests/CMakeFiles/pairwise_test.dir/pairwise/filtered_scheme_test.cpp.o.d"
  "/root/repo/tests/pairwise/makespan_test.cpp" "tests/CMakeFiles/pairwise_test.dir/pairwise/makespan_test.cpp.o" "gcc" "tests/CMakeFiles/pairwise_test.dir/pairwise/makespan_test.cpp.o.d"
  "/root/repo/tests/pairwise/planner_test.cpp" "tests/CMakeFiles/pairwise_test.dir/pairwise/planner_test.cpp.o" "gcc" "tests/CMakeFiles/pairwise_test.dir/pairwise/planner_test.cpp.o.d"
  "/root/repo/tests/pairwise/scheme_property_test.cpp" "tests/CMakeFiles/pairwise_test.dir/pairwise/scheme_property_test.cpp.o" "gcc" "tests/CMakeFiles/pairwise_test.dir/pairwise/scheme_property_test.cpp.o.d"
  "/root/repo/tests/pairwise/triangular_test.cpp" "tests/CMakeFiles/pairwise_test.dir/pairwise/triangular_test.cpp.o" "gcc" "tests/CMakeFiles/pairwise_test.dir/pairwise/triangular_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/pairmr_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/pairwise/CMakeFiles/pairmr_pairwise.dir/DependInfo.cmake"
  "/root/repo/build/src/design/CMakeFiles/pairmr_design.dir/DependInfo.cmake"
  "/root/repo/build/src/mr/CMakeFiles/pairmr_mr.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pairmr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
