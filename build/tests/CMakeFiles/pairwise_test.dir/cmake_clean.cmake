file(REMOVE_RECURSE
  "CMakeFiles/pairwise_test.dir/pairwise/aggregate_test.cpp.o"
  "CMakeFiles/pairwise_test.dir/pairwise/aggregate_test.cpp.o.d"
  "CMakeFiles/pairwise_test.dir/pairwise/block_scheme_test.cpp.o"
  "CMakeFiles/pairwise_test.dir/pairwise/block_scheme_test.cpp.o.d"
  "CMakeFiles/pairwise_test.dir/pairwise/broadcast_scheme_test.cpp.o"
  "CMakeFiles/pairwise_test.dir/pairwise/broadcast_scheme_test.cpp.o.d"
  "CMakeFiles/pairwise_test.dir/pairwise/cost_model_test.cpp.o"
  "CMakeFiles/pairwise_test.dir/pairwise/cost_model_test.cpp.o.d"
  "CMakeFiles/pairwise_test.dir/pairwise/dataset_test.cpp.o"
  "CMakeFiles/pairwise_test.dir/pairwise/dataset_test.cpp.o.d"
  "CMakeFiles/pairwise_test.dir/pairwise/design_scheme_test.cpp.o"
  "CMakeFiles/pairwise_test.dir/pairwise/design_scheme_test.cpp.o.d"
  "CMakeFiles/pairwise_test.dir/pairwise/element_test.cpp.o"
  "CMakeFiles/pairwise_test.dir/pairwise/element_test.cpp.o.d"
  "CMakeFiles/pairwise_test.dir/pairwise/filtered_scheme_test.cpp.o"
  "CMakeFiles/pairwise_test.dir/pairwise/filtered_scheme_test.cpp.o.d"
  "CMakeFiles/pairwise_test.dir/pairwise/makespan_test.cpp.o"
  "CMakeFiles/pairwise_test.dir/pairwise/makespan_test.cpp.o.d"
  "CMakeFiles/pairwise_test.dir/pairwise/planner_test.cpp.o"
  "CMakeFiles/pairwise_test.dir/pairwise/planner_test.cpp.o.d"
  "CMakeFiles/pairwise_test.dir/pairwise/scheme_property_test.cpp.o"
  "CMakeFiles/pairwise_test.dir/pairwise/scheme_property_test.cpp.o.d"
  "CMakeFiles/pairwise_test.dir/pairwise/triangular_test.cpp.o"
  "CMakeFiles/pairwise_test.dir/pairwise/triangular_test.cpp.o.d"
  "pairwise_test"
  "pairwise_test.pdb"
  "pairwise_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pairwise_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
