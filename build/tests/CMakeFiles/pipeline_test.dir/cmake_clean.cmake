file(REMOVE_RECURSE
  "CMakeFiles/pipeline_test.dir/pairwise/bipartite_scheme_test.cpp.o"
  "CMakeFiles/pipeline_test.dir/pairwise/bipartite_scheme_test.cpp.o.d"
  "CMakeFiles/pipeline_test.dir/pairwise/cyclic_design_scheme_test.cpp.o"
  "CMakeFiles/pipeline_test.dir/pairwise/cyclic_design_scheme_test.cpp.o.d"
  "CMakeFiles/pipeline_test.dir/pairwise/edge_case_test.cpp.o"
  "CMakeFiles/pipeline_test.dir/pairwise/edge_case_test.cpp.o.d"
  "CMakeFiles/pipeline_test.dir/pairwise/hierarchical_test.cpp.o"
  "CMakeFiles/pipeline_test.dir/pairwise/hierarchical_test.cpp.o.d"
  "CMakeFiles/pipeline_test.dir/pairwise/pipeline_test.cpp.o"
  "CMakeFiles/pipeline_test.dir/pairwise/pipeline_test.cpp.o.d"
  "CMakeFiles/pipeline_test.dir/pairwise/reindex_test.cpp.o"
  "CMakeFiles/pipeline_test.dir/pairwise/reindex_test.cpp.o.d"
  "CMakeFiles/pipeline_test.dir/pairwise/simple_test.cpp.o"
  "CMakeFiles/pipeline_test.dir/pairwise/simple_test.cpp.o.d"
  "CMakeFiles/pipeline_test.dir/pairwise/stress_test.cpp.o"
  "CMakeFiles/pipeline_test.dir/pairwise/stress_test.cpp.o.d"
  "pipeline_test"
  "pipeline_test.pdb"
  "pipeline_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipeline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
