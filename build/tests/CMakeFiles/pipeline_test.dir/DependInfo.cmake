
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/pairwise/bipartite_scheme_test.cpp" "tests/CMakeFiles/pipeline_test.dir/pairwise/bipartite_scheme_test.cpp.o" "gcc" "tests/CMakeFiles/pipeline_test.dir/pairwise/bipartite_scheme_test.cpp.o.d"
  "/root/repo/tests/pairwise/cyclic_design_scheme_test.cpp" "tests/CMakeFiles/pipeline_test.dir/pairwise/cyclic_design_scheme_test.cpp.o" "gcc" "tests/CMakeFiles/pipeline_test.dir/pairwise/cyclic_design_scheme_test.cpp.o.d"
  "/root/repo/tests/pairwise/edge_case_test.cpp" "tests/CMakeFiles/pipeline_test.dir/pairwise/edge_case_test.cpp.o" "gcc" "tests/CMakeFiles/pipeline_test.dir/pairwise/edge_case_test.cpp.o.d"
  "/root/repo/tests/pairwise/hierarchical_test.cpp" "tests/CMakeFiles/pipeline_test.dir/pairwise/hierarchical_test.cpp.o" "gcc" "tests/CMakeFiles/pipeline_test.dir/pairwise/hierarchical_test.cpp.o.d"
  "/root/repo/tests/pairwise/pipeline_test.cpp" "tests/CMakeFiles/pipeline_test.dir/pairwise/pipeline_test.cpp.o" "gcc" "tests/CMakeFiles/pipeline_test.dir/pairwise/pipeline_test.cpp.o.d"
  "/root/repo/tests/pairwise/reindex_test.cpp" "tests/CMakeFiles/pipeline_test.dir/pairwise/reindex_test.cpp.o" "gcc" "tests/CMakeFiles/pipeline_test.dir/pairwise/reindex_test.cpp.o.d"
  "/root/repo/tests/pairwise/simple_test.cpp" "tests/CMakeFiles/pipeline_test.dir/pairwise/simple_test.cpp.o" "gcc" "tests/CMakeFiles/pipeline_test.dir/pairwise/simple_test.cpp.o.d"
  "/root/repo/tests/pairwise/stress_test.cpp" "tests/CMakeFiles/pipeline_test.dir/pairwise/stress_test.cpp.o" "gcc" "tests/CMakeFiles/pipeline_test.dir/pairwise/stress_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/pairmr_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/pairwise/CMakeFiles/pairmr_pairwise.dir/DependInfo.cmake"
  "/root/repo/build/src/design/CMakeFiles/pairmr_design.dir/DependInfo.cmake"
  "/root/repo/build/src/mr/CMakeFiles/pairmr_mr.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pairmr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
