# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/mr_test[1]_include.cmake")
include("/root/repo/build/tests/design_test[1]_include.cmake")
include("/root/repo/build/tests/pairwise_test[1]_include.cmake")
include("/root/repo/build/tests/pipeline_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
