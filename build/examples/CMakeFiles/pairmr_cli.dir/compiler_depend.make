# Empty compiler generated dependencies file for pairmr_cli.
# This may be replaced when dependencies are built.
