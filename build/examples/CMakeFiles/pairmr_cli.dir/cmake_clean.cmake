file(REMOVE_RECURSE
  "CMakeFiles/pairmr_cli.dir/pairmr_cli.cpp.o"
  "CMakeFiles/pairmr_cli.dir/pairmr_cli.cpp.o.d"
  "pairmr_cli"
  "pairmr_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pairmr_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
