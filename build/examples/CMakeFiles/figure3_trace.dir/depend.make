# Empty dependencies file for figure3_trace.
# This may be replaced when dependencies are built.
