file(REMOVE_RECURSE
  "CMakeFiles/figure3_trace.dir/figure3_trace.cpp.o"
  "CMakeFiles/figure3_trace.dir/figure3_trace.cpp.o.d"
  "figure3_trace"
  "figure3_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure3_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
