file(REMOVE_RECURSE
  "CMakeFiles/gene_network.dir/gene_network.cpp.o"
  "CMakeFiles/gene_network.dir/gene_network.cpp.o.d"
  "gene_network"
  "gene_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gene_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
