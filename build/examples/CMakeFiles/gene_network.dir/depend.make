# Empty dependencies file for gene_network.
# This may be replaced when dependencies are built.
