# Empty dependencies file for covariance_pca.
# This may be replaced when dependencies are built.
