file(REMOVE_RECURSE
  "CMakeFiles/covariance_pca.dir/covariance_pca.cpp.o"
  "CMakeFiles/covariance_pca.dir/covariance_pca.cpp.o.d"
  "covariance_pca"
  "covariance_pca.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/covariance_pca.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
