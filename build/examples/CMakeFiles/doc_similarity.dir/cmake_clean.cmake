file(REMOVE_RECURSE
  "CMakeFiles/doc_similarity.dir/doc_similarity.cpp.o"
  "CMakeFiles/doc_similarity.dir/doc_similarity.cpp.o.d"
  "doc_similarity"
  "doc_similarity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/doc_similarity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
