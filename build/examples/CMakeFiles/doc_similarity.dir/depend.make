# Empty dependencies file for doc_similarity.
# This may be replaced when dependencies are built.
