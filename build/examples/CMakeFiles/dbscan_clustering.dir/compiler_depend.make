# Empty compiler generated dependencies file for dbscan_clustering.
# This may be replaced when dependencies are built.
