file(REMOVE_RECURSE
  "CMakeFiles/dbscan_clustering.dir/dbscan_clustering.cpp.o"
  "CMakeFiles/dbscan_clustering.dir/dbscan_clustering.cpp.o.d"
  "dbscan_clustering"
  "dbscan_clustering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbscan_clustering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
