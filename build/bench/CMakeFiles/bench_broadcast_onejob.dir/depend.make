# Empty dependencies file for bench_broadcast_onejob.
# This may be replaced when dependencies are built.
