file(REMOVE_RECURSE
  "CMakeFiles/bench_broadcast_onejob.dir/bench_broadcast_onejob.cpp.o"
  "CMakeFiles/bench_broadcast_onejob.dir/bench_broadcast_onejob.cpp.o.d"
  "bench_broadcast_onejob"
  "bench_broadcast_onejob.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_broadcast_onejob.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
