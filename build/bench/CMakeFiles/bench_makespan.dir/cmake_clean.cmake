file(REMOVE_RECURSE
  "CMakeFiles/bench_makespan.dir/bench_makespan.cpp.o"
  "CMakeFiles/bench_makespan.dir/bench_makespan.cpp.o.d"
  "bench_makespan"
  "bench_makespan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_makespan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
