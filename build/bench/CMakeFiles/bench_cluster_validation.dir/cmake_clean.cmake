file(REMOVE_RECURSE
  "CMakeFiles/bench_cluster_validation.dir/bench_cluster_validation.cpp.o"
  "CMakeFiles/bench_cluster_validation.dir/bench_cluster_validation.cpp.o.d"
  "bench_cluster_validation"
  "bench_cluster_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cluster_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
