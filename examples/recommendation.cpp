// Two-set pairwise computation (the §1 generalization): score every
// (user, item) pair of a small recommendation problem with the bipartite
// block scheme — users and items live in disjoint id spaces, and only
// cross pairs are evaluated.
#include <algorithm>
#include <iostream>
#include <vector>

#include "common/serde.hpp"
#include "pairwise/pairmr.hpp"
#include "workloads/generators.hpp"
#include "workloads/kernels.hpp"

int main() {
  using namespace pairmr;

  // 6 user taste vectors and 10 item feature vectors in a shared
  // 4-dimensional latent space; score = cosine similarity.
  const std::uint64_t users = 6, items = 10, dim = 4;
  const auto all = workloads::clustered_points(users + items, dim,
                                               /*clusters=*/3,
                                               /*spread=*/6.0, /*seed=*/321);
  std::vector<std::string> payloads;
  for (const auto& p : all) payloads.push_back(encode_f64_vec(p));

  mr::Cluster cluster({.num_nodes = 3});
  const auto inputs = write_dataset(cluster, "/vectors", payloads);

  // 2×2 grid of cross blocks: each task scores 3 users × 5 items.
  const BipartiteBlockScheme scheme(users, items, 2, 2);

  RunSpec spec;
  spec.input_paths = inputs;
  spec.scheme = borrow_scheme(scheme);
  spec.job.compute = workloads::cosine_kernel();
  const RunReport report = PairwiseRunner(cluster).run(spec);

  std::cout << "=== recommendation: users × items via the bipartite block "
               "scheme ===\n\n"
            << "evaluated " << report.evaluations << " (user, item) pairs ("
            << users << "x" << items << "; no intra-set pairs)\n\n";

  for (const Element& e : read_elements(cluster, report.output_dir)) {
    if (e.id >= users) continue;  // print the user side only
    auto scored = e.results;
    std::sort(scored.begin(), scored.end(),
              [](const ResultEntry& a, const ResultEntry& b) {
                return workloads::decode_result(a.result) >
                       workloads::decode_result(b.result);
              });
    std::cout << "user " << e.id << " top items:";
    for (std::size_t r = 0; r < 3 && r < scored.size(); ++r) {
      std::cout << "  item" << scored[r].other - users << " ("
                << workloads::decode_result(scored[r].result) << ")";
    }
    std::cout << "\n";
  }
  std::cout << "\nEvery user was scored against every item exactly once; "
               "items hold the mirror lists.\n";
  return 0;
}
