// pairmr_cli — run a pairwise computation from the command line.
//
//   pairmr_cli [--scheme broadcast|block|design|plan] [--v N]
//              [--elem-bytes B] [--nodes N] [--tasks P] [--h H]
//              [--kernel mix|euclid] [--maxws BYTES] [--maxis BYTES]
//              [--seed S] [--combiner] [--no-aggregate] [--trace PATH]
//              [--backend inprocess|fork] [--shuffle-plane socket|shm]
//
// With --scheme plan, the planner picks the scheme from the cost model
// (Figure 9 logic) and explains its choice. Prints the measured run
// statistics that the paper's Table 1 predicts.
//
// --trace PATH records a task-level execution trace of every job the run
// executes and writes it as Chrome trace_event JSON (open in
// chrome://tracing or https://ui.perfetto.dev), plus a per-job measured
// phase breakdown on stdout.
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "mr/trace.hpp"

#include "common/table.hpp"
#include "common/units.hpp"
#include "pairwise/pairmr.hpp"
#include "workloads/generators.hpp"
#include "workloads/kernels.hpp"

namespace {

using namespace pairmr;

struct Args {
  std::string scheme = "block";
  std::uint64_t v = 200;
  std::uint64_t elem_bytes = 1024;
  std::uint32_t nodes = 4;
  std::uint64_t tasks = 0;  // broadcast p; 0 = nodes
  std::uint64_t h = 0;      // block factor; 0 = smallest with >= n tasks
  std::string kernel = "mix";
  std::uint64_t maxws = 200 * kMiB;
  std::uint64_t maxis = kTiB;
  std::uint64_t seed = 42;
  bool combiner = false;
  bool aggregate = true;
  std::string trace_path;  // empty: tracing off
  std::string backend;     // empty: engine default (env, then in-process)
  std::string shuffle_plane;  // empty: env, then socket (fork backend only)
};

[[noreturn]] void usage() {
  std::cerr << "usage: pairmr_cli [--scheme broadcast|block|design|plan] "
               "[--v N] [--elem-bytes B] [--nodes N] [--tasks P] [--h H] "
               "[--kernel mix|euclid] [--maxws BYTES] [--maxis BYTES] "
               "[--seed S] [--combiner] [--no-aggregate] [--trace PATH] "
               "[--backend inprocess|fork] [--shuffle-plane socket|shm]\n";
  std::exit(2);
}

Args parse(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> std::string {
      if (++i >= argc) usage();
      return argv[i];
    };
    if (flag == "--scheme") {
      args.scheme = next();
    } else if (flag == "--v") {
      args.v = std::stoull(next());
    } else if (flag == "--elem-bytes") {
      args.elem_bytes = parse_bytes(next());
    } else if (flag == "--nodes") {
      args.nodes = static_cast<std::uint32_t>(std::stoul(next()));
    } else if (flag == "--tasks") {
      args.tasks = std::stoull(next());
    } else if (flag == "--h") {
      args.h = std::stoull(next());
    } else if (flag == "--kernel") {
      args.kernel = next();
    } else if (flag == "--maxws") {
      args.maxws = parse_bytes(next());
    } else if (flag == "--maxis") {
      args.maxis = parse_bytes(next());
    } else if (flag == "--seed") {
      args.seed = std::stoull(next());
    } else if (flag == "--combiner") {
      args.combiner = true;
    } else if (flag == "--no-aggregate") {
      args.aggregate = false;
    } else if (flag == "--trace") {
      args.trace_path = next();
    } else if (flag == "--backend") {
      args.backend = next();
    } else if (flag == "--shuffle-plane") {
      args.shuffle_plane = next();
    } else {
      usage();
    }
  }
  return args;
}

std::shared_ptr<DistributionScheme> build_scheme(const Args& args) {
  if (args.scheme == "broadcast") {
    return std::make_shared<BroadcastScheme>(
        args.v, args.tasks == 0 ? args.nodes : args.tasks);
  }
  if (args.scheme == "block") {
    std::uint64_t h = args.h;
    if (h == 0) {
      h = 1;
      while (triangular(h) < args.nodes) ++h;
    }
    return std::make_shared<BlockScheme>(args.v, h);
  }
  if (args.scheme == "design") {
    return std::make_shared<DesignScheme>(args.v);
  }
  if (args.scheme == "plan") {
    const Plan plan = plan_scheme({.v = args.v,
                                   .element_bytes = args.elem_bytes,
                                   .num_nodes = args.nodes,
                                   .limits = {args.maxws, args.maxis}});
    std::cout << "planner: " << plan.rationale << "\n";
    if (!plan.feasible) {
      std::cerr << "no feasible scheme under the given limits\n";
      std::exit(1);
    }
    std::cout << "planner chose: " << to_string(plan.kind) << "\n\n";
    return make_scheme(plan, args.v);
  }
  usage();
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse(argc, argv);

  std::cout << "dataset: v = " << args.v << " x "
            << format_bytes(args.elem_bytes) << " ("
            << format_bytes(args.v * args.elem_bytes) << "), nodes = "
            << args.nodes << "\n";

  mr::Cluster cluster({.num_nodes = args.nodes, .worker_threads = 0});
  std::unique_ptr<mr::Tracer> tracer;
  if (!args.trace_path.empty()) {
    tracer = std::make_unique<mr::Tracer>();
    cluster.set_tracer(tracer.get());
  }
  std::vector<std::string> payloads;
  PairwiseJob job;
  if (args.kernel == "euclid") {
    // Interpret --elem-bytes as dimensions*8 for the numeric kernel.
    const auto dim = static_cast<std::uint32_t>(
        std::max<std::uint64_t>(1, args.elem_bytes / 8));
    payloads = workloads::vector_payloads(workloads::clustered_points(
        args.v, dim, 4, 10.0, args.seed));
    job.compute = workloads::euclidean_kernel();
  } else if (args.kernel == "mix") {
    payloads = workloads::blob_payloads(args.v, args.elem_bytes, args.seed);
    job.compute = workloads::expensive_blob_kernel(4);
  } else {
    usage();
  }

  const auto inputs = write_dataset(cluster, "/data", payloads);
  const auto scheme = build_scheme(args);

  PairwiseOptions options;
  options.run_aggregation = args.aggregate;
  options.aggregation_combiner = args.combiner;
  if (args.backend == "inprocess") {
    options.backend = mr::BackendKind::kInProcess;
  } else if (args.backend == "fork") {
    options.backend = mr::BackendKind::kFork;
  } else if (!args.backend.empty()) {
    usage();
  }
  if (args.shuffle_plane == "socket") {
    options.shuffle_plane = mr::ShufflePlane::kSocket;
  } else if (args.shuffle_plane == "shm") {
    options.shuffle_plane = mr::ShufflePlane::kShm;
  } else if (!args.shuffle_plane.empty()) {
    usage();
  }
  RunSpec spec;
  spec.input_paths = inputs;
  spec.scheme = scheme;
  spec.job = job;
  spec.options = options;
  const RunReport stats = PairwiseRunner(cluster).run(spec);

  const SchemeMetrics predicted = scheme->metrics();
  TablePrinter t({"metric", "predicted (Table 1)", "measured"});
  t.set_caption("\nrun statistics — scheme: " + scheme->name());
  t.add_row({"tasks", TablePrinter::num(predicted.num_tasks),
             TablePrinter::num(scheme->num_tasks())});
  t.add_row({"replication factor",
             TablePrinter::num(predicted.replication_factor, 2),
             TablePrinter::num(stats.replication_factor, 2)});
  t.add_row({"max working set (records)",
             TablePrinter::num(predicted.working_set_elements, 1),
             TablePrinter::num(stats.max_working_set_records)});
  t.add_row({"evaluations", TablePrinter::num(pair_count(args.v)),
             TablePrinter::num(stats.evaluations)});
  t.add_row({"intermediate bytes", "-",
             format_bytes(stats.intermediate_bytes)});
  t.add_row({"shuffle remote bytes", "-",
             format_bytes(stats.shuffle_remote_bytes)});
  t.print(std::cout);

  std::cout << "output: " << stats.output_dir << " ("
            << (stats.aggregated ? "aggregated" : "per-copy") << ")\n";

  if (tracer != nullptr) {
    std::ofstream out(args.trace_path);
    if (!out) {
      std::cerr << "cannot write trace file: " << args.trace_path << "\n";
      return 1;
    }
    tracer->write_chrome_trace(out);
    std::cout << "\ntrace: " << args.trace_path << " ("
              << tracer->span_count()
              << " spans; open in chrome://tracing or ui.perfetto.dev)\n";

    TablePrinter pt({"job", "ship", "compute", "aggregate", "overhead",
                     "waves"});
    pt.set_caption("\nmeasured phase breakdown (seconds)");
    for (const auto& name : tracer->job_names()) {
      const mr::PhaseBreakdown b =
          tracer->phase_breakdown(name, args.nodes);
      pt.add_row({name, TablePrinter::num(b.ship_seconds, 4),
                  TablePrinter::num(b.compute_seconds, 4),
                  TablePrinter::num(b.aggregate_seconds, 4),
                  TablePrinter::num(b.overhead_seconds, 4),
                  TablePrinter::num(b.compute_waves)});
    }
    pt.print(std::cout);
  }
  return 0;
}
