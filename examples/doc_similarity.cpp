// Cross-document similarity — the paper's second motivating application
// (§1, cross-document co-referencing): Jaccard similarity over token
// sets for all document pairs, keeping only near-duplicates.
//
// Unlike Elsayed et al.'s inverted-index trick (related work the paper
// contrasts against), this treats the comparison as irreducibly
// quadratic, which is exactly the regime the paper's schemes target.
#include <cstdint>
#include <iostream>
#include <vector>

#include "pairwise/pairmr.hpp"
#include "workloads/generators.hpp"
#include "workloads/kernels.hpp"

namespace {
using namespace pairmr;
constexpr double kThreshold = 0.35;
}  // namespace

int main() {
  std::cout << "=== doc_similarity: all-pairs Jaccard over token sets "
               "===\n\n";

  // 40 synthetic documents + 5 planted near-duplicates of document 0.
  auto docs = workloads::token_documents(40, /*vocabulary=*/2000,
                                         /*tokens_per_doc=*/120, /*seed=*/31);
  for (int copy = 0; copy < 5; ++copy) {
    auto dup = docs[0];
    // Perturb ~10% of the tokens to make "near" duplicates.
    for (std::size_t i = copy; i < dup.size(); i += 10) {
      dup[i] = static_cast<std::uint32_t>((dup[i] * 31 + copy) % 2000);
    }
    std::sort(dup.begin(), dup.end());
    dup.erase(std::unique(dup.begin(), dup.end()), dup.end());
    docs.push_back(std::move(dup));
  }
  const std::uint64_t v = docs.size();

  mr::Cluster cluster({.num_nodes = 4});
  const auto inputs =
      write_dataset(cluster, "/docs", workloads::document_payloads(docs));

  // Broadcast scheme: the corpus is small, Jaccard over 120-token sets is
  // the expensive part — the paper's §5.1 sweet spot. One-job variant.
  RunSpec spec;
  spec.input_paths = inputs;
  spec.mode = RunMode::kBroadcast;
  spec.broadcast = BroadcastTarget{.v = v, .num_tasks = 8};
  spec.job.compute = workloads::jaccard_kernel();
  spec.job.keep = workloads::keep_above(kThreshold);
  const RunReport report = PairwiseRunner(cluster).run(spec);

  std::cout << "evaluated " << report.evaluations << " document pairs, "
            << report.results_kept << " above similarity " << kThreshold
            << "\n\n";

  std::cout << "near-duplicate pairs found:\n";
  std::uint64_t found = 0;
  for (const Element& e : read_elements(cluster, report.output_dir)) {
    for (const auto& r : e.results) {
      if (r.other > e.id) {  // print each pair once
        std::cout << "  doc" << e.id << " ~ doc" << r.other
                  << "  (jaccard = " << workloads::decode_result(r.result)
                  << ")\n";
        ++found;
      }
    }
  }
  std::cout << "\nplanted 5 perturbed copies of doc0 (ids 40-44); the "
               "reported pairs should connect {0, 40..44}.\n"
            << "pairs reported: " << found << "\n";
  return 0;
}
