// Reproduces the paper's Figure 3 ("Flow of elements through MR jobs")
// as a textual trace: a tiny dataset runs through the two-job pipeline
// with aggregation disabled, and the intermediate files are decoded to
// show exactly which element copies traveled where and which pairs each
// working set evaluated.
#include <iostream>
#include <map>

#include "common/serde.hpp"
#include "pairwise/pairmr.hpp"
#include "workloads/kernels.hpp"

int main() {
  using namespace pairmr;

  // Figure 3 uses four elements s1..s4; the design scheme over v=4 picks
  // the plane of order 2 truncated to 4 points, giving the same flavor of
  // overlapping working sets as the figure's D1..D3.
  const std::vector<std::string> payloads = {"aaaa", "bbbb", "cccc", "dddd"};
  const std::uint64_t v = payloads.size();

  mr::Cluster cluster({.num_nodes = 2, .worker_threads = 1});
  const auto inputs = write_dataset(cluster, "/data", payloads);
  const DesignScheme scheme(v);

  std::cout << "=== figure3_trace: flow of elements through the two MR "
               "jobs ===\n\n";
  std::cout << "scheme: " << scheme.name() << " (plane order q = "
            << scheme.plane_order() << ", truncated to v = " << v << ")\n\n";

  // --- Job 1 map phase: getSubsets --------------------------------------
  std::cout << "Job 1 map — getSubsets replicates each element into its "
               "working sets:\n";
  for (ElementId id = 0; id < v; ++id) {
    std::cout << "  s" << id + 1 << " -> {";
    for (const TaskId t : scheme.subsets_of(id)) std::cout << " D" << t + 1;
    std::cout << " }\n";
  }

  // --- Job 1 reduce phase: getPairs --------------------------------------
  std::cout << "\nJob 1 reduce — each working set evaluates getPairs:\n";
  for (TaskId t = 0; t < scheme.num_tasks(); ++t) {
    std::cout << "  D" << t + 1 << " receives {";
    for (const ElementId id : scheme.working_set(t)) {
      std::cout << " s" << id + 1;
    }
    std::cout << " }, evaluates {";
    for (const auto [lo, hi] : scheme.pairs_in(t)) {
      std::cout << " comp(s" << hi + 1 << ",s" << lo + 1 << ")";
    }
    std::cout << " }\n";
  }

  // --- Run Job 1 for real, keep the intermediate output ------------------
  PairwiseJob job;
  job.compute = [](const Element& a, const Element& b) {
    return workloads::encode_result(static_cast<double>(a.id * 10 + b.id));
  };
  RunSpec spec;
  spec.input_paths = inputs;
  spec.scheme = borrow_scheme(scheme);
  spec.job = job;
  spec.options.run_aggregation = false;
  const RunReport report = PairwiseRunner(cluster).run(spec);

  std::cout << "\nBetween the jobs — element copies with partial results "
               "(the figure's middle column):\n";
  std::map<ElementId, int> copies;
  for (const auto& rec : cluster.gather_records(report.output_dir)) {
    const Element e = decode_element(rec.value);
    ++copies[e.id];
    std::cout << "  copy of s" << e.id + 1 << " carrying {";
    for (const auto& r : e.results) std::cout << " (s" << r.other + 1 << ")";
    std::cout << " }\n";
  }

  // --- Job 2: aggregate by id --------------------------------------------
  std::cout << "\nJob 2 reduce — sort/shuffle groups all copies of an id; "
               "aggregateResults merges them:\n";
  RunSpec full = spec;
  full.options.run_aggregation = true;
  full.options.work_dir = "/pairwise2";
  const RunReport agg = PairwiseRunner(cluster).run(full);
  for (const Element& e : read_elements(cluster, agg.output_dir)) {
    std::cout << "  s" << e.id + 1 << " (" << copies[e.id]
              << " copies in) -> results with {";
    for (const auto& r : e.results) std::cout << " s" << r.other + 1;
    std::cout << " }\n";
  }

  std::cout << "\nEvery element ends with exactly v-1 = " << v - 1
            << " results — each pair was evaluated exactly once across "
               "all working sets.\n";
  return 0;
}
