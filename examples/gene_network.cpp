// Gene-regulatory-network reconstruction — the paper's third motivating
// application (§1, citing Qiu et al.): mutual information between all
// pairs of gene expression profiles; high-MI pairs become network edges.
//
// Ground truth is known (the generator co-regulates genes in groups), so
// the example reports precision/recall of the recovered edges.
#include <cstdint>
#include <iostream>
#include <vector>

#include "pairwise/pairmr.hpp"
#include "workloads/generators.hpp"
#include "workloads/kernels.hpp"

namespace {
using namespace pairmr;
constexpr std::uint32_t kGroupSize = 5;
constexpr double kEdgeThreshold = 0.35;  // nats
}  // namespace

int main() {
  std::cout << "=== gene_network: pairwise mutual information on "
               "expression profiles ===\n\n";

  const std::uint64_t v = 40;  // genes, in co-regulated groups of 5
  const std::uint32_t samples = 400;
  const auto profiles =
      workloads::expression_profiles(v, samples, kGroupSize, /*seed=*/77);

  mr::Cluster cluster({.num_nodes = 4});
  const auto inputs = write_dataset(cluster, "/genes",
                                    workloads::vector_payloads(profiles));

  // MI estimation over 400 samples is compute-heavy; profiles are small.
  // The block scheme balances replication against working-set size.
  RunSpec spec;
  spec.input_paths = inputs;
  spec.scheme = std::make_shared<BlockScheme>(v, 4);
  spec.job.compute = workloads::mutual_information_kernel(/*bins=*/10);
  spec.job.keep = workloads::keep_above(kEdgeThreshold);

  const RunReport report = PairwiseRunner(cluster).run(spec);
  std::cout << "pairwise phase: " << report.evaluations
            << " MI estimates, " << report.results_kept
            << " edges above " << kEdgeThreshold << " nats\n\n";

  // Score against the generator's ground truth (same group <=> edge).
  std::uint64_t tp = 0, fp = 0, fn = 0;
  std::vector<std::vector<bool>> predicted(v, std::vector<bool>(v, false));
  for (const Element& e : read_elements(cluster, report.output_dir)) {
    for (const auto& r : e.results) predicted[e.id][r.other] = true;
  }
  for (ElementId i = 0; i < v; ++i) {
    for (ElementId j = i + 1; j < v; ++j) {
      const bool truth = i / kGroupSize == j / kGroupSize;
      const bool pred = predicted[i][j];
      tp += truth && pred;
      fp += !truth && pred;
      fn += truth && !pred;
    }
  }
  const double precision =
      tp + fp == 0 ? 0.0 : static_cast<double>(tp) / (tp + fp);
  const double recall =
      tp + fn == 0 ? 0.0 : static_cast<double>(tp) / (tp + fn);
  std::cout << "network recovery vs ground truth (" << v / kGroupSize
            << " groups of " << kGroupSize << "):\n"
            << "  true edges: " << tp + fn << ", predicted: " << tp + fp
            << "\n  precision = " << precision << ", recall = " << recall
            << "\n";
  std::cout << "\nCo-regulated genes share a latent signal, so precision "
               "and recall should both be near 1.0.\n";
  return 0;
}
