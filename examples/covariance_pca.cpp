// Covariance-matrix computation A·Aᵀ as a pairwise inner product on the
// rows of A — the paper's fourth motivating application (§1), feeding a
// small principal-component analysis (power iteration).
#include <cmath>
#include <cstdint>
#include <iostream>
#include <vector>

#include "pairwise/pairmr.hpp"
#include "workloads/generators.hpp"
#include "workloads/kernels.hpp"

namespace {

using namespace pairmr;

// Dominant eigenpair of a symmetric matrix by power iteration.
std::pair<double, std::vector<double>> power_iteration(
    const std::vector<std::vector<double>>& m) {
  const std::size_t n = m.size();
  std::vector<double> x(n, 1.0 / std::sqrt(static_cast<double>(n)));
  double lambda = 0.0;
  for (int iter = 0; iter < 200; ++iter) {
    std::vector<double> y(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) y[i] += m[i][j] * x[j];
    }
    double norm = 0.0;
    for (const double v : y) norm += v * v;
    norm = std::sqrt(norm);
    if (norm == 0.0) break;
    for (auto& v : y) v /= norm;
    lambda = norm;
    x = std::move(y);
  }
  return {lambda, x};
}

}  // namespace

int main() {
  std::cout << "=== covariance_pca: A*A^T via pairwise inner products "
               "===\n\n";

  // 24 variables observed over 300 samples; variables come in correlated
  // groups of 8, so PCA should find ~3 strong components.
  const std::uint64_t v = 24;
  const std::uint32_t samples = 300;
  auto rows = workloads::expression_profiles(v, samples, /*group=*/8,
                                             /*seed=*/5);

  // Center each row (covariance needs mean-free data).
  for (auto& row : rows) {
    double mean = 0.0;
    for (const double x : row) mean += x;
    mean /= static_cast<double>(row.size());
    for (auto& x : row) x -= mean;
  }

  // Off-diagonal entries via the distributed pairwise pipeline.
  mr::Cluster cluster({.num_nodes = 4});
  const auto inputs =
      write_dataset(cluster, "/rows", workloads::vector_payloads(rows));
  const DesignScheme scheme(v);  // small working sets: √v rows per task

  RunSpec spec;
  spec.input_paths = inputs;
  spec.scheme = borrow_scheme(scheme);
  spec.job.compute = workloads::inner_product_kernel();
  const RunReport report = PairwiseRunner(cluster).run(spec);

  // Assemble the symmetric covariance matrix; the diagonal (self inner
  // products) is a local O(v) pass, not a pairwise computation.
  std::vector<std::vector<double>> cov(v, std::vector<double>(v, 0.0));
  const double denom = static_cast<double>(samples - 1);
  for (ElementId i = 0; i < v; ++i) {
    cov[i][i] = workloads::inner_product(rows[i], rows[i]) / denom;
  }
  for (const Element& e : read_elements(cluster, report.output_dir)) {
    for (const auto& r : e.results) {
      cov[e.id][r.other] = workloads::decode_result(r.result) / denom;
    }
  }

  std::cout << "pairwise phase: " << report.evaluations
            << " inner products over " << scheme.num_tasks()
            << " design-scheme tasks (plane order q = "
            << scheme.plane_order() << ")\n";

  // Verify symmetry came out intact.
  double max_asym = 0.0;
  for (std::size_t i = 0; i < v; ++i) {
    for (std::size_t j = 0; j < v; ++j) {
      max_asym = std::max(max_asym, std::abs(cov[i][j] - cov[j][i]));
    }
  }
  std::cout << "max |cov - cov^T| = " << max_asym << " (exactly 0 expected: "
            << "each pair evaluated once, stored to both rows)\n\n";

  const auto [lambda, pc1] = power_iteration(cov);
  std::cout << "top eigenvalue (power iteration): " << lambda << "\n";
  std::cout << "first principal component loadings:\n  ";
  for (std::size_t i = 0; i < v; ++i) {
    std::cout << (pc1[i] >= 0 ? "+" : "-")
              << (std::abs(pc1[i]) > 0.25 ? "#" : ".");
    if (i % 8 == 7) std::cout << " ";
  }
  std::cout << "\n(8-variable correlated groups: loadings should "
               "concentrate on one group)\n";
  return 0;
}
