// Quickstart: evaluate a function on all pairs of a small dataset with
// the one-call API, then peek under the hood at the working-set systems
// (D, P) each distribution scheme builds — including the paper's
// Figure 4/7 projective-plane example for v = 7.
#include <iostream>

#include "common/serde.hpp"
#include "pairwise/pairmr.hpp"
#include "workloads/kernels.hpp"

int main() {
  using namespace pairmr;

  // --- 1. The five-line version -----------------------------------------
  // Seven 2-D points; comp = Euclidean distance.
  const std::vector<std::vector<double>> points = {
      {0, 0}, {1, 0}, {0, 1}, {5, 5}, {6, 5}, {5, 6}, {10, 0}};
  std::vector<std::string> payloads;
  for (const auto& p : points) payloads.push_back(encode_f64_vec(p));

  PairwiseJob job;
  job.compute = workloads::euclidean_kernel();

  const std::vector<Element> elements = compute_all_pairs(payloads, job);

  std::cout << "=== quickstart: pairwise Euclidean distances (v = 7) ===\n";
  for (const Element& e : elements) {
    std::cout << "element s" << e.id + 1 << ": ";
    for (const auto& r : e.results) {
      std::cout << "(s" << r.other + 1 << ", "
                << workloads::decode_result(r.result) << ") ";
    }
    std::cout << "\n";
  }

  // --- 2. The (D, P) systems of the three schemes ------------------------
  std::cout << "\n=== working-set systems for v = 7 (paper Figures 4-7) "
               "===\n";
  const BroadcastScheme broadcast(7, 3);
  const BlockScheme block(7, 2);
  const DesignScheme design(7);  // the Fano plane, order q = 2

  for (const DistributionScheme* scheme :
       {static_cast<const DistributionScheme*>(&broadcast),
        static_cast<const DistributionScheme*>(&block),
        static_cast<const DistributionScheme*>(&design)}) {
    std::cout << "\n" << scheme->name() << " scheme, " << scheme->num_tasks()
              << " task(s):\n";
    for (TaskId t = 0; t < scheme->num_tasks(); ++t) {
      std::cout << "  D" << t + 1 << " = {";
      for (const ElementId id : scheme->working_set(t)) {
        std::cout << " s" << id + 1;
      }
      std::cout << " }, P" << t + 1 << " = {";
      for (const auto [lo, hi] : scheme->pairs_in(t)) {
        std::cout << " (s" << hi + 1 << ",s" << lo + 1 << ")";
      }
      std::cout << " }\n";
    }
  }

  std::cout << "\nThe design scheme's 7 blocks of 3 form a (7,3,1)-design "
               "(projective plane of order 2): every pair appears in "
               "exactly one block.\n";
  return 0;
}
