// DBSCAN clustering on top of the pairwise pipeline — the paper's first
// motivating application (§1, citing Ester et al.).
//
// Phase 1 (distributed): evaluate Euclidean distance on all pairs with
// the block scheme, pruning results above eps (the paper's §3 remark that
// applications like DBSCAN can prune uninteresting evaluations). Each
// element then carries exactly its eps-neighborhood.
// Phase 2 (local): standard DBSCAN over the neighbor lists.
#include <cstdint>
#include <deque>
#include <iostream>
#include <map>
#include <vector>

#include "pairwise/pairmr.hpp"
#include "workloads/generators.hpp"
#include "workloads/kernels.hpp"

namespace {

using namespace pairmr;

constexpr double kEps = 4.0;
constexpr std::size_t kMinPts = 4;  // neighbors (excluding self) + self

// Classic DBSCAN given each point's eps-neighborhood.
std::vector<int> dbscan(const std::vector<std::vector<ElementId>>& neighbors) {
  const int kUnvisited = -2, kNoise = -1;
  std::vector<int> label(neighbors.size(), kUnvisited);
  int cluster = 0;
  for (ElementId p = 0; p < neighbors.size(); ++p) {
    if (label[p] != kUnvisited) continue;
    if (neighbors[p].size() + 1 < kMinPts) {
      label[p] = kNoise;
      continue;
    }
    label[p] = cluster;
    std::deque<ElementId> frontier(neighbors[p].begin(), neighbors[p].end());
    while (!frontier.empty()) {
      const ElementId q = frontier.front();
      frontier.pop_front();
      if (label[q] == kNoise) label[q] = cluster;  // border point
      if (label[q] != kUnvisited) continue;
      label[q] = cluster;
      if (neighbors[q].size() + 1 >= kMinPts) {
        frontier.insert(frontier.end(), neighbors[q].begin(),
                        neighbors[q].end());
      }
    }
    ++cluster;
  }
  return label;
}

}  // namespace

int main() {
  std::cout << "=== dbscan_clustering: density clustering via pairwise "
               "distances ===\n\n";

  // 60 points from 3 well-separated Gaussian blobs + generator noise.
  const std::uint64_t v = 60;
  const auto points = workloads::clustered_points(v, /*dim=*/2,
                                                  /*clusters=*/3,
                                                  /*spread=*/40.0,
                                                  /*seed=*/2026);
  const auto payloads = workloads::vector_payloads(points);

  // Distributed phase: all-pairs distances, pruned at eps.
  mr::Cluster cluster({.num_nodes = 4});
  const auto inputs = write_dataset(cluster, "/points", payloads);
  RunSpec spec;
  spec.input_paths = inputs;
  spec.scheme = std::make_shared<BlockScheme>(v, 4);
  spec.job.compute = workloads::euclidean_kernel();
  spec.job.keep = workloads::keep_below(kEps);

  const RunReport report = PairwiseRunner(cluster).run(spec);
  std::cout << "pairwise phase: " << report.evaluations << " evaluations, "
            << report.results_kept << " neighbor pairs kept (eps = " << kEps
            << ") — " << 100.0 * static_cast<double>(report.results_kept) /
                             static_cast<double>(report.evaluations)
            << "% of the distance matrix materialized\n";

  // Local phase: neighbor lists -> DBSCAN.
  std::vector<std::vector<ElementId>> neighbors(v);
  for (const Element& e : read_elements(cluster, report.output_dir)) {
    for (const auto& r : e.results) neighbors[e.id].push_back(r.other);
  }
  const std::vector<int> labels = dbscan(neighbors);

  std::map<int, std::size_t> sizes;
  for (const int l : labels) ++sizes[l];
  std::cout << "\nDBSCAN result (minPts = " << kMinPts << "):\n";
  for (const auto& [label, size] : sizes) {
    if (label < 0) {
      std::cout << "  noise: " << size << " point(s)\n";
    } else {
      std::cout << "  cluster " << label << ": " << size << " point(s)\n";
    }
  }
  std::cout << "\nGenerated 3 blobs of 20; DBSCAN should recover three "
               "clusters of ~20 with little noise.\n";

  // Sanity: points generated round-robin, so i and i+3 share a blob.
  std::size_t agree = 0, total = 0;
  for (ElementId i = 0; i + 3 < v; ++i) {
    if (labels[i] >= 0 && labels[i + 3] >= 0) {
      agree += labels[i] == labels[i + 3];
      ++total;
    }
  }
  std::cout << "same-blob agreement: " << agree << "/" << total << "\n";
  return 0;
}
