// Named job counters, mirroring Hadoop's counter facility.
//
// The pairwise cost-model validation (bench_cluster_validation) reads these
// to compare measured replication factor, working-set size, and shuffle
// volume against Table 1's analytic predictions.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace pairmr::mr {

// Canonical counter names used by the engine. User code may add its own.
namespace counter {
inline constexpr const char* kMapInputRecords = "map.input.records";
inline constexpr const char* kMapOutputRecords = "map.output.records";
inline constexpr const char* kMapOutputBytes = "map.output.bytes";
inline constexpr const char* kCombineInputRecords = "combine.input.records";
inline constexpr const char* kCombineOutputRecords = "combine.output.records";
inline constexpr const char* kShuffleBytesLocal = "shuffle.bytes.local";
inline constexpr const char* kShuffleBytesRemote = "shuffle.bytes.remote";
inline constexpr const char* kReduceInputGroups = "reduce.input.groups";
inline constexpr const char* kReduceInputRecords = "reduce.input.records";
inline constexpr const char* kReduceOutputRecords = "reduce.output.records";
inline constexpr const char* kReduceOutputBytes = "reduce.output.bytes";
inline constexpr const char* kReduceMaxGroupRecords =
    "reduce.max.group.records";
inline constexpr const char* kReduceMaxGroupBytes = "reduce.max.group.bytes";
inline constexpr const char* kCacheBroadcastBytes = "cache.broadcast.bytes";
// Fault-recovery accounting (mr/fault.hpp): task attempts that were
// re-executed after a failure, speculative backups launched / adopted,
// shuffle fetches retried after a drop, and the network bytes a fault-free
// run would not have moved (wasted fetches, re-fetches, remote input
// re-reads of rescheduled or speculative attempts).
inline constexpr const char* kTasksRetried = "tasks.retried";
inline constexpr const char* kTasksSpeculative = "tasks.speculative";
inline constexpr const char* kSpeculativeWins = "speculative.wins";
inline constexpr const char* kShuffleFetchRetries = "shuffle.fetch.retries";
inline constexpr const char* kRecoveryBytes = "recovery.bytes";
// Shm shuffle plane (mr/backend/fork.hpp): bytes of remote partitions a
// reducer consumed straight from mmap'd memfd arenas instead of socket
// streams. Counted in the partitions' meta bytes — the same unit as
// shuffle.bytes.remote — so a fallback-free shm run satisfies
// shuffle.shm.bytes == shuffle.bytes.remote exactly. Absent on the
// socket plane and the in-process backend; differential tests comparing
// counters across planes/backends strip it (like Span::os_pid).
inline constexpr const char* kShuffleShmBytes = "shuffle.shm.bytes";
// Memory-budgeted execution (mr/spill.hpp): sorted runs spilled from map
// output buffers and their bytes, intermediate reduce-side merge rounds
// when a partition has more runs than the merge fan-in, and the largest
// byte count the engine ever held in tracked task buffers (a running
// maximum — stays <= the budget, modulo a single oversized record).
inline constexpr const char* kSpillRuns = "spill.runs";
inline constexpr const char* kSpillBytes = "spill.bytes";
inline constexpr const char* kMergePasses = "merge.passes";
inline constexpr const char* kMemoryMaxTrackedBytes =
    "memory.max.tracked.bytes";
}  // namespace counter

// Thread-safe counter bag. `add` accumulates, `note_max` keeps a running
// maximum (used for peak working-set metrics).
class Counters {
 public:
  void add(const std::string& name, std::uint64_t delta);
  void note_max(const std::string& name, std::uint64_t candidate);

  // 0 when the counter was never touched.
  std::uint64_t get(const std::string& name) const;

  std::map<std::string, std::uint64_t> snapshot() const;

  // Accumulate `other` into this (maxima merged with max, sums with +).
  // Names listed in `max_names` merge with max.
  void merge(const Counters& other);

 private:
  static bool is_max_counter(const std::string& name);

  mutable std::mutex mutex_;
  std::map<std::string, std::uint64_t> values_;
};

}  // namespace pairmr::mr
