#include "mr/spill.hpp"

#include <algorithm>
#include <utility>

#include "common/check.hpp"

namespace pairmr::mr {

namespace {

// Heap entry: the head record of one source. Min-heap by (key, source
// index) — the source index tie-break is what keeps the merge stable
// across runs, reproducing the in-memory stable sort's value order.
struct Head {
  const Bytes* key;
  std::size_t source;
};

struct HeadGreater {
  bool operator()(const Head& a, const Head& b) const {
    if (*a.key != *b.key) return *a.key > *b.key;
    return a.source > b.source;
  }
};

}  // namespace

GroupIterator::GroupIterator(std::vector<RunSource> sources)
    : sources_(std::move(sources)), heads_(sources_.size(), 0) {}

bool GroupIterator::next() {
  // Find the smallest head key; ties resolve to the lowest source index
  // because we scan sources in order and only replace on strictly
  // smaller keys. Fan-in is bounded by the budget's merge_fan_in, so a
  // linear scan beats heap bookkeeping at realistic widths.
  const Bytes* min_key = nullptr;
  std::uint64_t head_bytes = 0;
  for (std::size_t s = 0; s < sources_.size(); ++s) {
    const auto& recs = sources_[s].view();
    if (heads_[s] >= recs.size()) continue;
    const Record& r = recs[heads_[s]];
    head_bytes += r.size_bytes();
    if (min_key == nullptr || r.key < *min_key) min_key = &r.key;
  }
  max_head_bytes_ = std::max(max_head_bytes_, head_bytes);
  if (min_key == nullptr) return false;

  key_ = *min_key;  // copy before any move invalidates the pointee's run
  values_.clear();
  for (std::size_t s = 0; s < sources_.size(); ++s) {
    auto& src = sources_[s];
    const auto& recs = src.view();
    while (heads_[s] < recs.size() && recs[heads_[s]].key == key_) {
      if (src.owned()) {
        values_.push_back(std::move(src.records[heads_[s]].value));
      } else {
        values_.push_back(recs[heads_[s]].value);
      }
      ++heads_[s];
      ++records_consumed_;
    }
  }
  return true;
}

std::vector<Record> merge_runs(std::vector<RunSource> sources) {
  std::size_t total = 0;
  for (const auto& s : sources) total += s.view().size();
  std::vector<Record> out;
  out.reserve(total);

  std::vector<std::size_t> heads(sources.size(), 0);
  std::vector<Head> heap;
  heap.reserve(sources.size());
  for (std::size_t s = 0; s < sources.size(); ++s) {
    if (!sources[s].view().empty()) {
      heap.push_back(Head{&sources[s].view()[0].key, s});
    }
  }
  const HeadGreater greater;
  std::make_heap(heap.begin(), heap.end(), greater);

  while (!heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), greater);
    const std::size_t s = heap.back().source;
    heap.pop_back();
    auto& src = sources[s];
    const auto& recs = src.view();
    if (src.owned()) {
      out.push_back(std::move(src.records[heads[s]]));
    } else {
      out.push_back(recs[heads[s]]);
    }
    if (++heads[s] < recs.size()) {
      heap.push_back(Head{&recs[heads[s]].key, s});
      std::push_heap(heap.begin(), heap.end(), greater);
    }
  }
  return out;
}

std::vector<RunSource> merge_to_fan_in(SimDfs& dfs,
                                       const std::string& scratch_prefix,
                                       NodeId node,
                                       std::vector<RunSource> sources,
                                       std::uint32_t fan_in,
                                       MergeStats& stats) {
  PAIRMR_REQUIRE(fan_in >= 2, "merge fan-in must be at least 2");
  while (sources.size() > fan_in) {
    ++stats.passes;
    std::vector<RunSource> next;
    next.reserve((sources.size() + fan_in - 1) / fan_in);
    for (std::size_t begin = 0; begin < sources.size(); begin += fan_in) {
      const std::size_t end = std::min(sources.size(), begin + fan_in);
      if (end - begin == 1) {
        // A lone tail run passes through unmerged; rewriting it would
        // change no order and only burn scratch bytes.
        next.push_back(std::move(sources[begin]));
        continue;
      }
      std::vector<RunSource> batch(
          std::make_move_iterator(sources.begin() + begin),
          std::make_move_iterator(sources.begin() + end));
      std::vector<Record> merged = merge_runs(std::move(batch));
      const std::string path = scratch_prefix + "pass-" +
                               std::to_string(stats.passes) + "-run-" +
                               std::to_string(next.size());
      dfs.write_file(path, node, std::move(merged));
      auto file = dfs.open(path);
      stats.runs_written += 1;
      stats.bytes_written += file->bytes;
      next.push_back(RunSource::from_file(std::move(file)));
    }
    sources = std::move(next);
  }
  return sources;
}

}  // namespace pairmr::mr
