#include "mr/trace.hpp"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <map>
#include <ostream>
#include <unordered_map>
#include <utility>

#include "common/check.hpp"

namespace pairmr::mr {

namespace {

Tracer::Clock steady_clock_since_now() {
  const auto epoch = std::chrono::steady_clock::now();
  return [epoch] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         epoch)
        .count();
  };
}

void append_json_escaped(std::string& out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

const char* to_string(SpanKind kind) {
  switch (kind) {
    case SpanKind::kJob:
      return "job";
    case SpanKind::kPhase:
      return "phase";
    case SpanKind::kMapAttempt:
      return "map-attempt";
    case SpanKind::kMapExec:
      return "map-exec";
    case SpanKind::kSpill:
      return "spill";
    case SpanKind::kCombine:
      return "combine";
    case SpanKind::kReduceAttempt:
      return "reduce-attempt";
    case SpanKind::kShuffleFetch:
      return "shuffle-fetch";
    case SpanKind::kReduceExec:
      return "reduce-exec";
    case SpanKind::kInputRead:
      return "input-read";
    case SpanKind::kCacheBroadcast:
      return "cache-broadcast";
    case SpanKind::kOutputWrite:
      return "output-write";
    case SpanKind::kSpillWrite:
      return "spill-write";
    case SpanKind::kMergePass:
      return "merge-pass";
    case SpanKind::kShmArena:
      return "shm-arena";
  }
  return "unknown";
}

Tracer::Tracer()
    : clock_(steady_clock_since_now()),
      pid_(static_cast<std::uint32_t>(::getpid())) {}

Tracer::Tracer(Clock clock)
    : clock_(std::move(clock)), pid_(static_cast<std::uint32_t>(::getpid())) {
  PAIRMR_REQUIRE(clock_ != nullptr, "tracer needs a clock");
}

SpanId Tracer::open_locked(Span span) {
  span.id = spans_.size() + 1;
  if (span.os_pid == 0) span.os_pid = pid_;
  spans_.push_back(std::move(span));
  return spans_.back().id;
}

SpanId Tracer::begin_job(const std::string& name) {
  const double t = now();
  Span s;
  s.kind = SpanKind::kJob;
  s.job = name;
  s.label = name;
  s.start_seconds = t;
  s.end_seconds = t;
  const std::lock_guard<std::mutex> lock(mutex_);
  s.job_seq = next_job_seq_++;
  return open_locked(std::move(s));
}

SpanId Tracer::begin_phase(SpanId job, const std::string& label) {
  const double t = now();
  const std::lock_guard<std::mutex> lock(mutex_);
  PAIRMR_REQUIRE(job >= 1 && job <= spans_.size(), "unknown job span");
  const Span& parent = spans_[job - 1];
  Span s;
  s.kind = SpanKind::kPhase;
  s.parent = job;
  s.job_seq = parent.job_seq;
  s.job = parent.job;
  s.label = label;
  s.start_seconds = t;
  s.end_seconds = t;
  return open_locked(std::move(s));
}

SpanId Tracer::begin_task(SpanId job, TaskKind kind, TaskIndex task,
                          std::uint32_t attempt, NodeId node,
                          bool speculative) {
  const double t = now();
  const std::lock_guard<std::mutex> lock(mutex_);
  PAIRMR_REQUIRE(job >= 1 && job <= spans_.size(), "unknown job span");
  const Span& parent = spans_[job - 1];
  Span s;
  s.kind = kind == TaskKind::kMap ? SpanKind::kMapAttempt
                                  : SpanKind::kReduceAttempt;
  s.parent = job;
  s.job_seq = parent.job_seq;
  s.job = parent.job;
  s.label = std::string(to_string(kind)) + " " + std::to_string(task) +
            "/" + std::to_string(attempt) +
            (speculative ? " (backup)" : "");
  s.task_scoped = true;
  s.task_kind = kind;
  s.task = task;
  s.attempt = attempt;
  s.node = node;
  s.peer = node;
  s.speculative = speculative;
  s.start_seconds = t;
  s.end_seconds = t;
  return open_locked(std::move(s));
}

SpanId Tracer::begin_op(SpanId parent, SpanKind kind, NodeId node,
                        const std::string& label) {
  const double t = now();
  const std::lock_guard<std::mutex> lock(mutex_);
  PAIRMR_REQUIRE(parent >= 1 && parent <= spans_.size(),
                 "unknown parent span");
  const Span& p = spans_[parent - 1];
  Span s;
  s.kind = kind;
  s.parent = parent;
  s.job_seq = p.job_seq;
  s.job = p.job;
  s.label = label.empty() ? to_string(kind) : label;
  s.task_scoped = p.task_scoped;
  s.task_kind = p.task_kind;
  s.task = p.task;
  s.attempt = p.attempt;
  s.node = node;
  s.peer = node;
  s.speculative = p.speculative;
  s.start_seconds = t;
  s.end_seconds = t;
  return open_locked(std::move(s));
}

SpanId Tracer::begin_transfer(SpanId parent, SpanKind kind, NodeId src,
                              NodeId dst, const std::string& note) {
  const double t = now();
  const std::lock_guard<std::mutex> lock(mutex_);
  PAIRMR_REQUIRE(parent >= 1 && parent <= spans_.size(),
                 "unknown parent span");
  const Span& p = spans_[parent - 1];
  Span s;
  s.kind = kind;
  s.parent = parent;
  s.job_seq = p.job_seq;
  s.job = p.job;
  s.label = std::string(to_string(kind)) + " " + std::to_string(src) +
            "->" + std::to_string(dst);
  s.task_scoped = p.task_scoped;
  s.task_kind = p.task_kind;
  s.task = p.task;
  s.attempt = p.attempt;
  s.node = dst;
  s.peer = src;
  s.speculative = p.speculative;
  s.note = note;
  s.start_seconds = t;
  s.end_seconds = t;
  return open_locked(std::move(s));
}

void Tracer::end(SpanId id) { end(id, 0, 0); }

void Tracer::end(SpanId id, std::uint64_t bytes, std::uint64_t records) {
  const double t = now();
  const std::lock_guard<std::mutex> lock(mutex_);
  PAIRMR_REQUIRE(id >= 1 && id <= spans_.size(), "unknown span");
  Span& s = spans_[id - 1];
  s.end_seconds = t;
  if (bytes != 0) s.bytes = bytes;
  if (records != 0) s.records = records;
}

SpanId Tracer::record_transfer(SpanId parent, SpanKind kind, NodeId src,
                               NodeId dst, std::uint64_t bytes,
                               const std::string& note) {
  const double t = now();
  const std::lock_guard<std::mutex> lock(mutex_);
  PAIRMR_REQUIRE(parent >= 1 && parent <= spans_.size(),
                 "unknown parent span");
  const Span& p = spans_[parent - 1];
  Span s;
  s.kind = kind;
  s.parent = parent;
  s.job_seq = p.job_seq;
  s.job = p.job;
  s.label = std::string(to_string(kind)) + " " + std::to_string(src) +
            "->" + std::to_string(dst);
  s.task_scoped = p.task_scoped;
  s.task_kind = p.task_kind;
  s.task = p.task;
  s.attempt = p.attempt;
  s.node = dst;
  s.peer = src;
  s.bytes = bytes;
  s.speculative = p.speculative;
  s.note = note;
  s.start_seconds = t;
  s.end_seconds = t;
  return open_locked(std::move(s));
}

SpanId Tracer::import_span(SpanId parent, const Span& span) {
  const std::lock_guard<std::mutex> lock(mutex_);
  PAIRMR_REQUIRE(parent >= 1 && parent <= spans_.size(),
                 "unknown parent span");
  const Span& p = spans_[parent - 1];
  Span s = span;
  s.id = 0;
  s.parent = parent;
  s.job_seq = p.job_seq;
  s.job = p.job;
  s.task_scoped = p.task_scoped;
  s.task_kind = p.task_kind;
  s.task = p.task;
  s.attempt = p.attempt;
  s.speculative = p.speculative;
  return open_locked(std::move(s));
}

void Tracer::annotate(SpanId id, const std::string& note) {
  const std::lock_guard<std::mutex> lock(mutex_);
  PAIRMR_REQUIRE(id >= 1 && id <= spans_.size(), "unknown span");
  Span& s = spans_[id - 1];
  if (!s.note.empty()) s.note += ";";
  s.note += note;
}

void Tracer::mark_faulted(SpanId id, const std::string& note) {
  const std::lock_guard<std::mutex> lock(mutex_);
  PAIRMR_REQUIRE(id >= 1 && id <= spans_.size(), "unknown span");
  Span& s = spans_[id - 1];
  s.faulted = true;
  if (!s.note.empty()) s.note += ";";
  s.note += note;
}

std::vector<Span> Tracer::spans() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return spans_;
}

std::size_t Tracer::span_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return spans_.size();
}

std::vector<std::string> Tracer::job_names() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  for (const Span& s : spans_) {
    if (s.kind == SpanKind::kJob) names.push_back(s.job);
  }
  return names;
}

void Tracer::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  spans_.clear();
  next_job_seq_ = 0;
}

std::string Tracer::structure_signature() const {
  const std::vector<Span> snapshot = spans();
  // Canonical per-span line: every structural field, no ids, no times.
  // Parent chains are folded in by prefixing the parent's canonical line —
  // parents always have smaller ids, so one ascending pass suffices.
  std::vector<std::string> canon(snapshot.size());
  for (std::size_t i = 0; i < snapshot.size(); ++i) {
    const Span& s = snapshot[i];
    std::string line = to_string(s.kind);
    line += "|j";
    line += std::to_string(s.job_seq);
    line += ":";
    line += s.job;
    line += "|";
    line += s.label;
    if (s.task_scoped) {
      line += "|";
      line += to_string(s.task_kind);
      line += " t";
      line += std::to_string(s.task);
      line += " a";
      line += std::to_string(s.attempt);
    }
    line += "|n";
    line += std::to_string(s.node);
    line += "<-";
    line += std::to_string(s.peer);
    line += "|b";
    line += std::to_string(s.bytes);
    line += "|r";
    line += std::to_string(s.records);
    if (s.faulted) line += "|faulted";
    if (s.speculative) line += "|speculative";
    if (!s.note.empty()) {
      line += "|";
      line += s.note;
    }
    if (s.parent != 0) {
      PAIRMR_CHECK(s.parent < s.id, "span parent must precede child");
      line += "  <~  ";
      line += canon[s.parent - 1];
    }
    canon[i] = std::move(line);
  }
  // Shm-arena spans are a transport artifact of one shuffle plane: they
  // exist on kShm and not on kSocket, while everything else is identical.
  // Dropping them (always leaves) keeps signatures comparable across
  // planes, exactly as os_pid keeps them comparable across backends.
  std::vector<std::string> lines;
  lines.reserve(canon.size());
  for (std::size_t i = 0; i < snapshot.size(); ++i) {
    if (snapshot[i].kind == SpanKind::kShmArena) continue;
    lines.push_back(std::move(canon[i]));
  }
  std::sort(lines.begin(), lines.end());
  std::string out;
  for (const std::string& line : lines) {
    out += line;
    out += '\n';
  }
  return out;
}

void Tracer::write_chrome_trace(std::ostream& out) const {
  std::vector<Span> snapshot = spans();
  // One lane per (job, node); within a lane, events sorted by timestamp so
  // ts is monotone (viewers and the schema test rely on it).
  std::sort(snapshot.begin(), snapshot.end(),
            [](const Span& a, const Span& b) {
              if (a.job_seq != b.job_seq) return a.job_seq < b.job_seq;
              if (a.node != b.node) return a.node < b.node;
              if (a.start_seconds != b.start_seconds) {
                return a.start_seconds < b.start_seconds;
              }
              return a.id < b.id;
            });
  std::string buf;
  buf += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  char num[64];
  for (const Span& s : snapshot) {
    if (!first) buf += ",";
    first = false;
    buf += "\n{\"name\":\"";
    append_json_escaped(buf, s.label);
    buf += "\",\"cat\":\"";
    buf += to_string(s.kind);
    buf += "\",\"ph\":\"X\",\"ts\":";
    std::snprintf(num, sizeof(num), "%.3f", s.start_seconds * 1e6);
    buf += num;
    buf += ",\"dur\":";
    std::snprintf(num, sizeof(num), "%.3f", s.duration_seconds() * 1e6);
    buf += num;
    buf += ",\"pid\":";
    buf += std::to_string(s.job_seq);
    buf += ",\"tid\":";
    buf += std::to_string(s.node);
    buf += ",\"args\":{\"job\":\"";
    append_json_escaped(buf, s.job);
    buf += "\",\"task_kind\":\"";
    buf += s.task_scoped ? to_string(s.task_kind) : "none";
    buf += "\",\"task\":";
    buf += s.task_scoped ? std::to_string(s.task) : "-1";
    buf += ",\"attempt\":";
    buf += s.task_scoped ? std::to_string(s.attempt) : "-1";
    buf += ",\"node\":";
    buf += std::to_string(s.node);
    buf += ",\"peer\":";
    buf += std::to_string(s.peer);
    buf += ",\"bytes\":";
    buf += std::to_string(s.bytes);
    buf += ",\"records\":";
    buf += std::to_string(s.records);
    buf += ",\"faulted\":";
    buf += s.faulted ? "true" : "false";
    buf += ",\"speculative\":";
    buf += s.speculative ? "true" : "false";
    buf += ",\"note\":\"";
    append_json_escaped(buf, s.note);
    buf += "\"}}";
  }
  buf += "\n]}\n";
  out << buf;
}

PhaseBreakdown Tracer::phase_breakdown(const std::string& job,
                                       std::uint32_t num_nodes) const {
  PAIRMR_REQUIRE(num_nodes > 0, "phase breakdown needs a node count");
  const std::vector<Span> snapshot = spans();

  PhaseBreakdown out;
  out.job = job;

  // Direct-child duration per attempt span (for the overhead residue) and
  // per-attempt execution time (exec + spill; combine nests inside spill).
  std::unordered_map<SpanId, double> child_seconds;
  std::unordered_map<SpanId, double> exec_seconds;
  for (const Span& s : snapshot) {
    if (s.job != job || s.parent == 0) continue;
    const Span& p = snapshot[s.parent - 1];
    const bool parent_is_attempt = p.kind == SpanKind::kMapAttempt ||
                                   p.kind == SpanKind::kReduceAttempt;
    if (!parent_is_attempt) continue;
    child_seconds[s.parent] += s.duration_seconds();
    if (s.kind == SpanKind::kMapExec || s.kind == SpanKind::kReduceExec ||
        s.kind == SpanKind::kSpill) {
      exec_seconds[s.parent] += s.duration_seconds();
    }
  }

  // Per task: the slowest attempt's execution time (under speculation the
  // cluster waits for whichever copy is kept; max is the wave-safe bound).
  std::map<std::pair<int, TaskIndex>, double> task_exec;
  double overhead_sum = 0.0;
  for (const Span& s : snapshot) {
    if (s.job != job) continue;
    switch (s.kind) {
      case SpanKind::kShuffleFetch:
      case SpanKind::kInputRead:
      case SpanKind::kCacheBroadcast:
        out.ship_seconds += s.duration_seconds();
        out.ship_bytes += s.bytes;
        break;
      case SpanKind::kOutputWrite:
        out.aggregate_seconds += s.duration_seconds();
        out.aggregate_bytes += s.bytes;
        break;
      case SpanKind::kMapAttempt:
      case SpanKind::kReduceAttempt: {
        const auto it = exec_seconds.find(s.id);
        const double exec = it == exec_seconds.end() ? 0.0 : it->second;
        auto& slot = task_exec[{s.kind == SpanKind::kMapAttempt ? 0 : 1,
                                s.task}];
        slot = std::max(slot, exec);
        const auto covered = child_seconds.find(s.id);
        const double residue =
            s.duration_seconds() -
            (covered == child_seconds.end() ? 0.0 : covered->second);
        overhead_sum += std::max(0.0, residue);
        break;
      }
      default:
        break;
    }
  }

  // Pack each task kind's per-task times into waves of `num_nodes`, in
  // task-index order, charging each wave its slowest member — the measured
  // counterpart of the model's `ceil(tasks / n) * evals_per_task` term.
  for (const int kind : {0, 1}) {
    std::vector<double> times;  // task-index order (map iteration order)
    for (const auto& [key, seconds] : task_exec) {
      if (key.first == kind) times.push_back(seconds);
    }
    for (std::size_t begin = 0; begin < times.size(); begin += num_nodes) {
      const std::size_t end =
          std::min(times.size(), begin + static_cast<std::size_t>(num_nodes));
      out.compute_seconds +=
          *std::max_element(times.begin() + static_cast<std::ptrdiff_t>(begin),
                            times.begin() + static_cast<std::ptrdiff_t>(end));
      ++out.compute_waves;
    }
    for (const double t : times) out.compute_busy_seconds += t;
  }
  out.tasks = task_exec.size();
  out.overhead_seconds = overhead_sum / static_cast<double>(num_nodes);
  return out;
}

}  // namespace pairmr::mr
