#include "mr/thread_pool.hpp"

#include <algorithm>

namespace pairmr::mr {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (auto& t : workers_) t.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock,
                           [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    try {
      task();
    } catch (...) {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) batch_done_.notify_all();
    }
  }
}

void ThreadPool::run_all(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (auto& t : tasks) queue_.push_back(std::move(t));
  }
  work_available_.notify_all();
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    batch_done_.wait(lock,
                     [this] { return queue_.empty() && in_flight_ == 0; });
    error = first_error_;
    first_error_ = nullptr;
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace pairmr::mr
