// Fundamental types of the simulated MapReduce substrate.
//
// Keys and values are opaque byte strings, exactly as in Hadoop's raw
// (BytesWritable) layer; typed views live in common/serde.hpp.
#pragma once

#include <cstdint>
#include <string>

namespace pairmr::mr {

using Bytes = std::string;

// One key/value record, the unit of map input, shuffle, and reduce output.
struct Record {
  Bytes key;
  Bytes value;

  std::uint64_t size_bytes() const { return key.size() + value.size(); }

  friend bool operator==(const Record&, const Record&) = default;
};

// Identifies one simulated cluster node (0-based).
using NodeId = std::uint32_t;

// Index of a map or reduce task within a job (0-based).
using TaskIndex = std::uint32_t;

}  // namespace pairmr::mr
