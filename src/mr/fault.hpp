// Deterministic fault injection for the simulated MapReduce engine.
//
// The paper's execution model (§2) assumes tasks "may get aborted and
// restarted at any time"; a FaultPlan turns that assumption into an
// executable one. A plan decides — purely as a function of a seed and the
// task's identity, never of wall-clock time or thread scheduling — which
// task attempts are killed, which shuffle fetches are dropped mid-flight,
// which node is lost during the job, and which tasks straggle (triggering
// speculative re-execution). Because every decision is schedule-independent,
// a faulted job is exactly as deterministic as a fault-free one: same
// output files, same counters, same metered bytes, for any worker-thread
// count.
//
// Faults are environmental, not user-code bugs: the engine retries injected
// failures without consuming JobSpec::max_task_attempts, and a plan kills
// any given task only finitely often, so a faulted job always completes.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <utility>

#include "mr/types.hpp"

namespace pairmr::mr {

enum class TaskKind : std::uint8_t { kMap = 0, kReduce = 1 };

// "map" / "reduce" — used in logs and trace span attribution.
const char* to_string(TaskKind kind);

class FaultPlan {
 public:
  // An inert plan: injects nothing. Engine code can always consult one.
  FaultPlan() = default;

  explicit FaultPlan(std::uint64_t seed) : seed_(seed) {}

  // --- Seeded probabilistic injection ------------------------------------
  // Rates are per task (or per reduce/map fetch pair), evaluated by
  // hashing (seed, identity); rates must be in [0, 1].

  // Each task's first k attempts are killed, where k is drawn per task:
  // attempt a < max_kills is killed while hash(task, a) < rate.
  FaultPlan& with_task_kill_rate(double rate, std::uint32_t max_kills = 1);

  // A reduce task's fetch of one map output is dropped mid-transfer (and
  // immediately re-fetched, paying the wire twice). Fires at most once per
  // (reduce, map) pair per job.
  FaultPlan& with_fetch_drop_rate(double rate);

  // A straggling task gets a speculative backup execution on another node.
  FaultPlan& with_straggler_rate(double rate);

  // The worker *process* hosting a task attempt is killed mid-task
  // (SIGKILL under the fork backend; indistinguishable from a task kill
  // under the in-process backend, where there is no separate process to
  // kill). Each task's first k attempts die this way, like
  // with_task_kill_rate. The engine retries on another attempt and, under
  // the fork backend, respawns the worker and regenerates its published
  // map outputs.
  FaultPlan& with_worker_kill_rate(double rate, std::uint32_t max_kills = 1);

  // Probability the backup copy of a straggler finishes first (default 1:
  // the original is slow, that is why it was marked). The loser's work and
  // traffic are charged as recovery overhead either way.
  FaultPlan& with_speculative_win_rate(double rate);

  // --- Explicit injection -------------------------------------------------

  // Kill the first `kills` attempts of one specific task.
  FaultPlan& kill_task(TaskKind kind, TaskIndex index, std::uint32_t kills = 1);

  // Kill the worker process hosting the first `kills` attempts of one
  // specific task (see with_worker_kill_rate).
  FaultPlan& kill_worker(TaskKind kind, TaskIndex index,
                         std::uint32_t kills = 1);

  // Lose `node` during the job: every map attempt placed on it is aborted,
  // and the node is marked failed in the Cluster once the map phase ends,
  // so no later task (or job) runs there. Its DFS replicas stay readable —
  // the simulator assumes DFS replication — but reads become remote,
  // charged traffic.
  FaultPlan& fail_node(NodeId node);

  // Drop one specific reduce-side fetch (once).
  FaultPlan& drop_fetch(TaskIndex reduce_task, TaskIndex map_task);

  // Mark one specific task as a straggler.
  FaultPlan& mark_straggler(TaskKind kind, TaskIndex index);

  // --- Queries (used by the engine) ---------------------------------------

  // True if the plan can inject anything at all.
  bool active() const;

  // Is attempt `attempt` (0-based, counting every attempt of the task) of
  // this task killed?
  bool kills_task(TaskKind kind, TaskIndex index, std::uint32_t attempt) const;

  // Is the worker process hosting attempt `attempt` of this task killed?
  bool kills_worker(TaskKind kind, TaskIndex index,
                    std::uint32_t attempt) const;

  bool drops_fetch(TaskIndex reduce_task, TaskIndex map_task) const;

  bool is_straggler(TaskKind kind, TaskIndex index) const;

  // Does the speculative backup of this straggler win the race?
  bool backup_wins(TaskKind kind, TaskIndex index) const;

  std::optional<NodeId> failed_node() const { return failed_node_; }

 private:
  // Deterministic uniform in [0, 1) from (seed, stream, a, b).
  double unit(std::uint64_t stream, std::uint64_t a, std::uint64_t b) const;

  static std::uint64_t task_key(TaskKind kind, TaskIndex index) {
    return (static_cast<std::uint64_t>(kind) << 32) | index;
  }

  std::uint64_t seed_ = 0;
  double kill_rate_ = 0.0;
  std::uint32_t max_kills_ = 1;
  double drop_rate_ = 0.0;
  double straggler_rate_ = 0.0;
  double win_rate_ = 1.0;
  double worker_kill_rate_ = 0.0;
  std::uint32_t worker_max_kills_ = 1;
  std::optional<NodeId> failed_node_;
  std::map<std::uint64_t, std::uint32_t> explicit_kills_;  // task_key -> kills
  std::map<std::uint64_t, std::uint32_t> explicit_worker_kills_;
  std::set<std::pair<TaskIndex, TaskIndex>> explicit_drops_;
  std::set<std::uint64_t> explicit_stragglers_;  // task_key
};

}  // namespace pairmr::mr
