// Simulated distributed file system (DFS).
//
// Files are in-memory record sequences, each with a *home node* — the node
// holding the (single) replica. The engine uses home nodes for
// locality-aware map scheduling and charges the network meter when a task
// reads a file hosted elsewhere. Paths are plain strings with '/'
// separators; a directory is just a shared path prefix.
#pragma once

#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "mr/types.hpp"

namespace pairmr::mr {

// Immutable once written (files are write-once, like HDFS output).
struct DfsFile {
  std::string path;
  NodeId home;
  std::vector<Record> records;
  std::uint64_t bytes = 0;  // sum of record sizes, cached
};

class SimDfs {
 public:
  explicit SimDfs(std::uint32_t num_nodes);

  // Write a new file; fails if the path exists (write-once semantics).
  void write_file(const std::string& path, NodeId home,
                  std::vector<Record> records);

  // Read access; the file must exist. Returned pointer is stable for the
  // lifetime of the DFS (files are never mutated, only removed wholesale).
  std::shared_ptr<const DfsFile> open(const std::string& path) const;

  bool exists(const std::string& path) const;

  // Remove a single file (no-op if absent). Returns true if removed.
  bool remove(const std::string& path);

  // Remove every file under `prefix`. Returns the number removed.
  std::size_t remove_prefix(const std::string& prefix);

  // Sorted list of paths under `prefix` (sorted so consumers iterate
  // part-r-00000, part-r-00001, ... deterministically).
  std::vector<std::string> list(const std::string& prefix) const;

  // Total bytes currently stored on `node` / on all nodes. The pairwise
  // pipeline samples this between jobs to measure peak *intermediate
  // storage*, the paper's `maxis` quantity.
  std::uint64_t bytes_on_node(NodeId node) const;
  std::uint64_t total_bytes() const;

  std::uint32_t num_nodes() const { return num_nodes_; }

 private:
  std::uint32_t num_nodes_;
  mutable std::shared_mutex mutex_;
  std::unordered_map<std::string, std::shared_ptr<const DfsFile>> files_;
};

}  // namespace pairmr::mr
