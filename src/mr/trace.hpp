// Task-level execution tracing for the simulated MapReduce engine.
//
// A Tracer records one Span per task attempt and per engine phase — map
// execution, spill (bucket finalization + combine), combine per bucket,
// shuffle fetches (local/remote, including fault re-fetches and wasted
// copies), reduce execution, cache/broadcast distribution, output writes —
// plus job-level phase boundaries. Spans are keyed by (job, task, attempt,
// node); faulted attempts (killed by the fault plan, crashed, or lost
// speculative races) carry annotations, speculative backups are flagged.
//
// Guarantees:
//   * Zero cost when off. The engine consults a nullable Tracer*; every
//     recording site is guarded, so an untraced run performs no tracer
//     work at all and produces byte-identical output and counters.
//   * Deterministic structure. Span *timings* depend on the host, but the
//     span *structure* — counts, parentage, and attribution (kind, job,
//     task, attempt, node, peer, bytes, records, fault flags, notes) — is
//     a pure function of (cluster size, job spec, fault plan), identical
//     for any worker-thread count. `structure_signature()` canonicalizes
//     it for tests.
//   * Thread safety. All methods may be called concurrently; spans get
//     monotonically increasing ids under an internal mutex.
//
// Exports:
//   * write_chrome_trace — Chrome trace_event JSON ("X" complete events,
//     one lane per (job, node), timestamps sorted within each lane), load
//     in chrome://tracing or Perfetto.
//   * phase_breakdown — a compact per-job PhaseBreakdown whose fields map
//     one-to-one onto the analytic MakespanBreakdown (pairwise/makespan.hpp):
//     ship / compute waves / aggregate / overhead. bench_trace_validation
//     compares the two.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

#include "mr/fault.hpp"  // TaskKind
#include "mr/types.hpp"

namespace pairmr::mr {

// Identifies one recorded span; 0 means "no span" (tracing off or root).
using SpanId = std::uint64_t;

enum class SpanKind : std::uint8_t {
  kJob,            // one engine.run invocation
  kPhase,          // job-level phase: broadcast / map / reduce / write
  kMapAttempt,     // one attempt of one map task (incl. killed + backups)
  kMapExec,        // user map code of one attempt
  kSpill,          // map-output bucket finalization (sort/combine stand-in)
  kCombine,        // combiner over one partition bucket
  kReduceAttempt,  // one attempt of one reduce task
  kShuffleFetch,   // one reduce-side fetch of one map output bucket
  kReduceExec,     // sort/group + user reduce code of one attempt
  kInputRead,      // map split read (remote when rescheduled off-home)
  kCacheBroadcast, // distributed-cache copy to one node
  kOutputWrite,    // part-file write of a finished task
  kSpillWrite,     // one sorted run written to DFS scratch (memory budget)
  kMergePass,      // reduce-side intermediate merge round (fan-in limit)
  // Shm shuffle plane: a publishing worker serialized one map task's
  // partitions into a memfd arena (bytes = arena length). Always a leaf
  // under the publishing attempt. Excluded from structure_signature() —
  // the plane must not change the comparable trace structure — but kept
  // in the Chrome export.
  kShmArena,
};

const char* to_string(SpanKind kind);

struct Span {
  SpanId id = 0;
  SpanId parent = 0;       // enclosing span (0 = root)
  SpanKind kind = SpanKind::kJob;
  std::uint32_t job_seq = 0;  // per-tracer job ordinal (export lane group)
  std::string job;            // job name
  std::string label;          // human-readable name shown by trace viewers
  bool task_scoped = false;   // task/attempt fields are meaningful
  TaskKind task_kind = TaskKind::kMap;
  TaskIndex task = 0;
  std::uint32_t attempt = 0;
  NodeId node = 0;  // executing node / transfer destination
  NodeId peer = 0;  // transfer source (== node for local / non-transfers)
  std::uint64_t bytes = 0;
  std::uint64_t records = 0;
  bool faulted = false;      // killed, crashed, or otherwise discarded
  bool speculative = false;  // backup execution of a straggler
  std::string note;          // annotation, e.g. "killed-by-fault-plan"
  // OS process that recorded the span: the recording Tracer's pid, or, for
  // spans imported from a worker process (import_span), that worker's pid.
  // Excluded from structure_signature() and the Chrome export so traces
  // stay comparable across backends; the fork backend's tests read it to
  // prove task execution really crossed a process boundary.
  std::uint32_t os_pid = 0;
  double start_seconds = 0.0;  // since tracer epoch (monotonic clock)
  double end_seconds = 0.0;

  double duration_seconds() const { return end_seconds - start_seconds; }
  // Meaningful for data-movement spans (fetch/input/broadcast).
  bool remote() const { return peer != node; }
};

// Measured analog of pairwise/makespan.hpp's MakespanBreakdown, computed
// from one job's spans:
//   * ship      — data distribution: cache broadcasts, shuffle fetches,
//                 and (recovery) input re-reads; seconds are measured
//                 in-process copy time, ship_bytes the volume behind them
//                 (multiply by a wire rate for a simulated-network time);
//   * compute   — task execution packed into ceil(tasks / n) waves of n,
//                 summing each wave's slowest task (the model's "max-wave"
//                 term); compute_busy_seconds is the unpacked total;
//   * aggregate — output collection: part-file writes;
//   * overhead  — per-attempt framework cost (attempt span time not
//                 covered by nested work, plus faulted attempts), divided
//                 by n like the model's `tasks * overhead / n` term.
struct PhaseBreakdown {
  std::string job;
  double ship_seconds = 0.0;
  double compute_seconds = 0.0;
  double aggregate_seconds = 0.0;
  double overhead_seconds = 0.0;

  std::uint64_t ship_bytes = 0;
  std::uint64_t aggregate_bytes = 0;
  double compute_busy_seconds = 0.0;
  std::uint64_t compute_waves = 0;
  std::uint64_t tasks = 0;

  double total() const {
    return ship_seconds + compute_seconds + aggregate_seconds +
           overhead_seconds;
  }
};

class Tracer {
 public:
  // Seconds since an arbitrary epoch; must be monotonic and thread-safe.
  using Clock = std::function<double()>;

  // Default clock: std::chrono::steady_clock relative to construction.
  Tracer();
  // Injected clock for deterministic tests (golden trace files).
  explicit Tracer(Clock clock);

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  // --- Recording (all thread-safe) ---------------------------------------

  SpanId begin_job(const std::string& name);
  SpanId begin_phase(SpanId job, const std::string& label);
  // Task attempt span; `parent` is the enclosing job or phase span.
  // `speculative` marks a straggler's backup execution.
  SpanId begin_task(SpanId parent, TaskKind kind, TaskIndex task,
                    std::uint32_t attempt, NodeId node,
                    bool speculative = false);
  // Nested operation within a task attempt (exec/spill/combine/write).
  SpanId begin_op(SpanId parent, SpanKind kind, NodeId node,
                  const std::string& label = {});
  // Open data-movement span (src -> dst); close with end(id, bytes, ...).
  SpanId begin_transfer(SpanId parent, SpanKind kind, NodeId src, NodeId dst,
                        const std::string& note = {});

  void end(SpanId id);
  void end(SpanId id, std::uint64_t bytes, std::uint64_t records);

  // Completed zero-duration data-movement span (for transfers the
  // simulator performs by reference, with no copy time to measure).
  SpanId record_transfer(SpanId parent, SpanKind kind, NodeId src,
                         NodeId dst, std::uint64_t bytes,
                         const std::string& note = {});

  void annotate(SpanId id, const std::string& note);
  // Mark an attempt discarded (killed/crashed); annotation explains why.
  void mark_faulted(SpanId id, const std::string& note);

  // Replay a span recorded by another process's tracer under `parent`
  // (the fork backend ships worker-side spans back over the control
  // channel). Structural fields — kind, label, node, peer, bytes,
  // records, fault flags, note, os_pid — are kept from `span`; job and
  // task attribution (job_seq, job, task_scoped, task_kind, task,
  // attempt, speculative) are inherited from `parent`, exactly as
  // begin_op inherits them, so replayed structure matches what the same
  // code records in-process. Timestamps are taken from `span` verbatim;
  // the caller maps them onto this tracer's clock.
  SpanId import_span(SpanId parent, const Span& span);

  // --- Inspection ---------------------------------------------------------

  std::vector<Span> spans() const;  // snapshot, ordered by id
  std::size_t span_count() const;
  std::vector<std::string> job_names() const;  // in begin_job order
  void clear();

  // Canonical fingerprint of counts + parentage + attribution (no ids, no
  // timestamps): equal across worker-thread counts for the same job.
  std::string structure_signature() const;

  // Chrome trace_event JSON (complete "X" events; stable field set; events
  // sorted by (pid, tid, ts) so timestamps are monotone within a lane).
  void write_chrome_trace(std::ostream& out) const;

  // Measured phase breakdown of every span recorded under job name `job`
  // (jobs re-run under the same name aggregate). `num_nodes` sets the
  // compute wave width and the overhead normalization.
  PhaseBreakdown phase_breakdown(const std::string& job,
                                 std::uint32_t num_nodes) const;

 private:
  SpanId open_locked(Span span);
  double now() const { return clock_(); }

  Clock clock_;
  std::uint32_t pid_ = 0;  // cached at construction (fresh per fork)
  mutable std::mutex mutex_;
  std::vector<Span> spans_;  // spans_[id - 1]
  std::uint32_t next_job_seq_ = 0;
};

// RAII guard: ends the span on scope exit (exception-safe). Inert when
// constructed with a null tracer, so call sites stay zero-cost when off.
class ScopedSpan {
 public:
  ScopedSpan() = default;
  ScopedSpan(Tracer* tracer, SpanId id) : tracer_(tracer), id_(id) {}
  ScopedSpan(ScopedSpan&& other) noexcept
      : tracer_(other.tracer_), id_(other.id_) {
    other.tracer_ = nullptr;
    other.id_ = 0;
  }
  ScopedSpan& operator=(ScopedSpan&& other) noexcept {
    if (this != &other) {
      finish();
      tracer_ = other.tracer_;
      id_ = other.id_;
      other.tracer_ = nullptr;
      other.id_ = 0;
    }
    return *this;
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ~ScopedSpan() { finish(); }

  SpanId id() const { return id_; }

  // Attach payload size to record when the span ends.
  void set_payload(std::uint64_t bytes, std::uint64_t records) {
    bytes_ = bytes;
    records_ = records;
  }

  void finish() {
    if (tracer_ != nullptr && id_ != 0) {
      tracer_->end(id_, bytes_, records_);
    }
    tracer_ = nullptr;
    id_ = 0;
  }

 private:
  Tracer* tracer_ = nullptr;
  SpanId id_ = 0;
  std::uint64_t bytes_ = 0;
  std::uint64_t records_ = 0;
};

}  // namespace pairmr::mr
