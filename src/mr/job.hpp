// User-facing MapReduce job abstractions: Mapper, Reducer, Partitioner,
// contexts, and the JobSpec the engine executes.
//
// The programming contract matches Hadoop 0.20 (the version the paper
// used): map(key, value) emits intermediate records; the framework
// partitions, sorts, and groups them by key; reduce(key, values) emits
// output records. An optional combiner runs on map-side groups.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/hash.hpp"
#include "mr/counters.hpp"
#include "mr/types.hpp"

namespace pairmr::mr {

class MapContext;
class ReduceContext;
class FaultPlan;  // mr/fault.hpp
class Tracer;     // mr/trace.hpp

// Which execution substrate runs the job's task attempts
// (mr/backend/backend.hpp). The engine's orchestration — placement, fault
// decisions, metering, counter merging — is backend-independent, so the
// choice changes process topology and cost realism, never results.
enum class BackendKind : std::uint8_t {
  // Resolve from the PAIRMR_TEST_BACKEND environment variable
  // ("inprocess" / "fork"); in-process when unset.
  kAuto = 0,
  // Task attempts run on the cluster's thread pool in this process (the
  // seed behaviour).
  kInProcess = 1,
  // One forked worker process per simulated node: task descriptors travel
  // a Unix-domain-socket control channel, shuffle fetches cross real
  // sockets between workers, counters and trace spans ship back to the
  // coordinator for merging.
  kFork = 2,
};

// "auto" / "inprocess" / "fork".
const char* to_string(BackendKind kind);

// How the fork backend moves published map partitions to remote reducers
// (mr/backend/fork.hpp). The in-process backend accepts and ignores the
// choice (its partitions never leave coordinator memory). Like the
// backend itself, the plane changes cost only — output, counters (modulo
// the plane-specific shuffle.shm.bytes meter), and traffic totals are
// byte-identical across planes by construction.
enum class ShufflePlane : std::uint8_t {
  // Resolve from the PAIRMR_SHUFFLE_PLANE environment variable
  // ("socket" / "shm"); socket when unset.
  kAuto = 0,
  // Streamed over per-worker Unix-domain shuffle sockets: every remote
  // fetch is a connect + request + re-serialized response.
  kSocket = 1,
  // Zero-copy shared memory: the publishing worker writes its encoded
  // partitions into one memfd arena per map task, the fd travels to the
  // coordinator over SCM_RIGHTS, and fetching reducers mmap it read-only
  // — no socket streaming, no second copy. Falls back to the socket plane
  // per partition when memfd/fd-passing is unavailable.
  kShm = 2,
};

// "auto" / "socket" / "shm".
const char* to_string(ShufflePlane plane);

// One map task's user logic. A fresh instance is created per task
// (factory in JobSpec), so implementations may keep per-task state.
class Mapper {
 public:
  virtual ~Mapper() = default;

  // Called once before the first record of the task.
  virtual void setup(MapContext& /*ctx*/) {}

  virtual void map(const Bytes& key, const Bytes& value, MapContext& ctx) = 0;

  // Called once after the last record of the task.
  virtual void cleanup(MapContext& /*ctx*/) {}
};

// One reduce task's user logic; also the combiner interface (a combiner is
// a reducer whose output feeds the shuffle instead of the job output).
class Reducer {
 public:
  virtual ~Reducer() = default;

  virtual void setup(ReduceContext& /*ctx*/) {}

  virtual void reduce(const Bytes& key, const std::vector<Bytes>& values,
                      ReduceContext& ctx) = 0;

  virtual void cleanup(ReduceContext& /*ctx*/) {}
};

// Maps an intermediate key to one of `num_partitions` reduce tasks.
class Partitioner {
 public:
  virtual ~Partitioner() = default;
  virtual std::uint32_t partition(const Bytes& key,
                                  std::uint32_t num_partitions) const = 0;
};

// Default: FNV-1a hash of the key bytes (deterministic across platforms).
class HashPartitioner final : public Partitioner {
 public:
  std::uint32_t partition(const Bytes& key,
                          std::uint32_t num_partitions) const override {
    return static_cast<std::uint32_t>(fnv1a(key) % num_partitions);
  }
};

// Routes big-endian u64 keys to contiguous ranges, so reduce task t gets
// keys [t*ceil(K/R), ...). Used when reduce-side locality matters.
class RangePartitioner final : public Partitioner {
 public:
  // `key_space` is the exclusive upper bound of the u64 key domain.
  explicit RangePartitioner(std::uint64_t key_space) : key_space_(key_space) {}

  std::uint32_t partition(const Bytes& key,
                          std::uint32_t num_partitions) const override;

 private:
  std::uint64_t key_space_;
};

using MapperFactory = std::function<std::unique_ptr<Mapper>()>;
using ReducerFactory = std::function<std::unique_ptr<Reducer>()>;

// Per-task memory budget for the out-of-core execution path
// (mr/spill.hpp). When `bytes` is non-zero, map tasks spill sorted runs
// to DFS scratch instead of letting output buffers grow past the budget,
// and reduce tasks stream their input through a k-way merge instead of
// materializing the whole partition. Output is byte-identical either
// way; only cost (spill.* / merge.* counters, scratch I/O) changes.
struct MemoryBudget {
  // Tracked buffer ceiling per task, in bytes. 0 disables the spill path
  // (fully in-memory, the seed behaviour). A single record larger than
  // the budget is buffered alone and spilled immediately — the tracked
  // peak is then that record's size, the only way the ceiling can be
  // exceeded.
  std::uint64_t bytes = 0;
  // Maximum runs merged at once on the reduce side (Hadoop's
  // io.sort.factor). Partitions with more runs pay intermediate merge
  // passes. Must be >= 2 when the budget is enabled.
  std::uint32_t merge_fan_in = 16;

  bool enabled() const { return bytes != 0; }
};

// Full description of one MapReduce job.
struct JobSpec {
  std::string name = "job";

  // DFS input files. Each file yields one or more map tasks (splits).
  std::vector<std::string> input_paths;

  // Output directory; the engine writes `<output_dir>/part-r-NNNNN`.
  std::string output_dir;

  MapperFactory mapper_factory;
  // Required unless map_only is set.
  ReducerFactory reducer_factory;

  // Map-only job (Hadoop's numReduceTasks = 0): no shuffle, no sort; each
  // map task writes its emissions directly to `<output_dir>/part-m-NNNNN`
  // on its own node, in emission order.
  bool map_only = false;

  // Optional map-side combiner (same contract as Reducer).
  ReducerFactory combiner_factory;

  // Defaults to HashPartitioner.
  std::shared_ptr<const Partitioner> partitioner;

  // Number of reduce tasks; 0 means "one per cluster node".
  std::uint32_t num_reduce_tasks = 0;

  // Split each input file into map tasks of at most this many records.
  // 0 disables splitting (one map task per file).
  std::uint64_t max_records_per_split = 0;

  // Out-of-core execution budget (see MemoryBudget). Disabled by default.
  // Ignored for map-only jobs, whose output must preserve emission order.
  // When disabled, the PAIRMR_TEST_MEMORY_BUDGET environment variable (a
  // byte count) force-enables it — the CI spill suite runs every test
  // through the spill path this way, relying on byte-identical output.
  MemoryBudget memory_budget;

  // DFS paths broadcast to every node before the job starts (Hadoop's
  // distributed cache). Mappers read them through MapContext::cache_file.
  std::vector<std::string> cache_paths;

  // Times a failing task is attempted before the job fails (Hadoop's
  // mapred.map.max.attempts). Each retry gets a fresh Mapper/Reducer and
  // context; counters of failed attempts are discarded, so retried jobs
  // produce byte-identical output and counts. Bounds user-code failures
  // only: faults injected by `fault_plan` are environmental and retried
  // without consuming attempts.
  std::uint32_t max_task_attempts = 1;

  // Optional deterministic fault-injection plan (mr/fault.hpp): the engine
  // consults it to kill attempts, lose a node mid-job, drop shuffle
  // fetches, and pick stragglers. Non-owning — must outlive the run.
  // nullptr runs fault-free.
  const FaultPlan* fault_plan = nullptr;

  // Run a backup copy of every task the fault plan marks as a straggler
  // and keep the race winner (Hadoop's speculative execution). The loser's
  // work and traffic are charged as recovery overhead.
  bool speculative_execution = true;

  // Per-job tracer override (mr/trace.hpp). Non-owning — must outlive the
  // run. nullptr falls back to the cluster-attached tracer; if that is
  // also null, the job runs untraced at zero tracing cost.
  Tracer* tracer = nullptr;

  // Execution substrate (see BackendKind). kAuto defers to the
  // PAIRMR_TEST_BACKEND environment variable, then in-process.
  BackendKind backend = BackendKind::kAuto;

  // Shuffle transport of the fork backend (see ShufflePlane). kAuto
  // defers to the PAIRMR_SHUFFLE_PLANE environment variable, then the
  // socket plane. Ignored by the in-process backend.
  ShufflePlane shuffle_plane = ShufflePlane::kAuto;

  // Structural sanity of the spec (factories present, output dir set, …).
  // The engine calls this before running; throws on violations.
  void validate() const;
};

// Helper for tests/benches and identity phases.
class IdentityMapper final : public Mapper {
 public:
  void map(const Bytes& key, const Bytes& value, MapContext& ctx) override;
};

class IdentityReducer final : public Reducer {
 public:
  void reduce(const Bytes& key, const std::vector<Bytes>& values,
              ReduceContext& ctx) override;
};

}  // namespace pairmr::mr
