#include "mr/fault.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace pairmr::mr {

namespace {

// Decision streams keep the hash spaces of the different fault kinds
// independent, so e.g. raising the kill rate never changes which tasks
// straggle under the same seed.
enum Stream : std::uint64_t {
  kKillStream = 0x51,
  kDropStream = 0x52,
  kStragglerStream = 0x53,
  kWinStream = 0x54,
  kWorkerKillStream = 0x55,
};

void require_rate(double rate) {
  PAIRMR_REQUIRE(rate >= 0.0 && rate <= 1.0, "fault rate must be in [0, 1]");
}

}  // namespace

const char* to_string(TaskKind kind) {
  return kind == TaskKind::kMap ? "map" : "reduce";
}

double FaultPlan::unit(std::uint64_t stream, std::uint64_t a,
                       std::uint64_t b) const {
  // splitmix64 finalizer over the mixed identity; identical on every
  // platform and independent of evaluation order.
  std::uint64_t z = seed_ ^ (stream * 0x9e3779b97f4a7c15ull);
  z += a * 0xbf58476d1ce4e5b9ull;
  z += (b + 1) * 0x94d049bb133111ebull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  z ^= z >> 31;
  return static_cast<double>(z >> 11) * 0x1.0p-53;
}

FaultPlan& FaultPlan::with_task_kill_rate(double rate,
                                          std::uint32_t max_kills) {
  require_rate(rate);
  PAIRMR_REQUIRE(max_kills >= 1, "max_kills must be at least 1");
  kill_rate_ = rate;
  max_kills_ = max_kills;
  return *this;
}

FaultPlan& FaultPlan::with_fetch_drop_rate(double rate) {
  require_rate(rate);
  drop_rate_ = rate;
  return *this;
}

FaultPlan& FaultPlan::with_straggler_rate(double rate) {
  require_rate(rate);
  straggler_rate_ = rate;
  return *this;
}

FaultPlan& FaultPlan::with_worker_kill_rate(double rate,
                                            std::uint32_t max_kills) {
  require_rate(rate);
  PAIRMR_REQUIRE(max_kills >= 1, "max_kills must be at least 1");
  worker_kill_rate_ = rate;
  worker_max_kills_ = max_kills;
  return *this;
}

FaultPlan& FaultPlan::with_speculative_win_rate(double rate) {
  require_rate(rate);
  win_rate_ = rate;
  return *this;
}

FaultPlan& FaultPlan::kill_task(TaskKind kind, TaskIndex index,
                                std::uint32_t kills) {
  auto& slot = explicit_kills_[task_key(kind, index)];
  slot = std::max(slot, kills);
  return *this;
}

FaultPlan& FaultPlan::kill_worker(TaskKind kind, TaskIndex index,
                                  std::uint32_t kills) {
  auto& slot = explicit_worker_kills_[task_key(kind, index)];
  slot = std::max(slot, kills);
  return *this;
}

FaultPlan& FaultPlan::fail_node(NodeId node) {
  failed_node_ = node;
  return *this;
}

FaultPlan& FaultPlan::drop_fetch(TaskIndex reduce_task, TaskIndex map_task) {
  explicit_drops_.emplace(reduce_task, map_task);
  return *this;
}

FaultPlan& FaultPlan::mark_straggler(TaskKind kind, TaskIndex index) {
  explicit_stragglers_.insert(task_key(kind, index));
  return *this;
}

bool FaultPlan::active() const {
  return kill_rate_ > 0.0 || drop_rate_ > 0.0 || straggler_rate_ > 0.0 ||
         worker_kill_rate_ > 0.0 || failed_node_.has_value() ||
         !explicit_kills_.empty() || !explicit_worker_kills_.empty() ||
         !explicit_drops_.empty() || !explicit_stragglers_.empty();
}

bool FaultPlan::kills_task(TaskKind kind, TaskIndex index,
                           std::uint32_t attempt) const {
  std::uint32_t kills = 0;
  const auto it = explicit_kills_.find(task_key(kind, index));
  if (it != explicit_kills_.end()) kills = it->second;
  if (kill_rate_ > 0.0) {
    // Consecutive per-attempt draws: the task dies on its first k attempts.
    std::uint32_t drawn = 0;
    while (drawn < max_kills_ &&
           unit(kKillStream, task_key(kind, index), drawn) < kill_rate_) {
      ++drawn;
    }
    kills = std::max(kills, drawn);
  }
  return attempt < kills;
}

bool FaultPlan::kills_worker(TaskKind kind, TaskIndex index,
                             std::uint32_t attempt) const {
  std::uint32_t kills = 0;
  const auto it = explicit_worker_kills_.find(task_key(kind, index));
  if (it != explicit_worker_kills_.end()) kills = it->second;
  if (worker_kill_rate_ > 0.0) {
    std::uint32_t drawn = 0;
    while (drawn < worker_max_kills_ &&
           unit(kWorkerKillStream, task_key(kind, index), drawn) <
               worker_kill_rate_) {
      ++drawn;
    }
    kills = std::max(kills, drawn);
  }
  return attempt < kills;
}

bool FaultPlan::drops_fetch(TaskIndex reduce_task, TaskIndex map_task) const {
  if (explicit_drops_.count({reduce_task, map_task}) > 0) return true;
  return drop_rate_ > 0.0 &&
         unit(kDropStream, reduce_task, map_task) < drop_rate_;
}

bool FaultPlan::is_straggler(TaskKind kind, TaskIndex index) const {
  if (explicit_stragglers_.count(task_key(kind, index)) > 0) return true;
  return straggler_rate_ > 0.0 &&
         unit(kStragglerStream, task_key(kind, index), 0) < straggler_rate_;
}

bool FaultPlan::backup_wins(TaskKind kind, TaskIndex index) const {
  // unit() < 1.0 always, so the default rate of 1 means the backup always
  // wins the race.
  return unit(kWinStream, task_key(kind, index), 0) < win_rate_;
}

}  // namespace pairmr::mr
