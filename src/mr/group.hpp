// Shuffle-side sort-and-group.
//
// The engine groups intermediate records by key under a stable,
// byte-lexicographic ordering (Hadoop's sort/shuffle contract). For the
// dominant case — every key exactly 8 bytes, as with the big-endian u64
// keys all pairwise jobs emit — the ordering is computed by an LSD radix
// sort over the decoded integers, skipping digit positions on which all
// keys agree, instead of a comparison sort over byte strings. Arbitrary
// keys fall back to std::stable_sort. Both paths produce identical
// groups and identical within-group value order (property-tested against
// each other in tests/mr/group_test.cpp).
//
// Neither path physically permutes the records: grouping walks an index
// permutation and *moves* each value into the per-group vector, so a
// record's bytes are touched exactly once. The record vector is consumed.
#pragma once

#include <functional>
#include <vector>

#include "mr/types.hpp"

namespace pairmr::mr {

using GroupFn = std::function<void(const Bytes&, const std::vector<Bytes>&)>;

// Stable sort-and-group of `records` by key; invokes `fn(key, values)`
// per group in ascending byte-lexicographic key order. Record values are
// moved out; the vector's contents are unspecified afterwards.
void group_by_key(std::vector<Record>& records, const GroupFn& fn);

// The index permutation behind group_by_key: order[i] is the position of
// the i-th record under a stable byte-lexicographic key sort (radix for
// uniform 8-byte keys, std::stable_sort otherwise). Exposed so the
// spill path (mr/spill.hpp) sorts map-side runs with the same ordering
// the shuffle uses — a spilled run merges byte-identically with the
// in-memory path's grouping.
std::vector<std::uint32_t> sorted_order(const std::vector<Record>& records);

// Physically reorder `records` into stable key order (applies
// sorted_order). Used to turn a raw map-output bucket into a sorted run.
void sort_records_stable(std::vector<Record>& records);

// Forces the comparison-sort path regardless of key shape. Exposed as
// the reference implementation for the grouping property test and
// bench_hotpath; the engine never calls it directly.
void group_by_key_stable_sort(std::vector<Record>& records, const GroupFn& fn);

}  // namespace pairmr::mr
