// The MapReduce engine: executes a JobSpec on a Cluster.
//
// Phases (matching Hadoop's dataflow, which the paper's Figure 3 depicts):
//   1. broadcast distributed-cache files to every node (metered);
//   2. split inputs into map tasks, scheduled data-locally;
//   3. run map tasks (parallel), partitioning output into per-reducer
//      buckets, optionally combining;
//   4. shuffle: each reduce task fetches its bucket from every map task —
//      cross-node fetches are charged to the network meter. Fault-free
//      runs move the records instead of copying (buckets only need to
//      survive for possible re-fetch when a fault plan is attached);
//   5. sort/group by key (stable, byte-lexicographic; mr/group.hpp —
//      radix grouping for fixed-width u64 keys) and run reduce;
//   6. write `part-r-NNNNN` output files, one per reduce task, stored on
//      the reducer's node.
//
// Failure handling (the paper's §2 "tasks may get aborted and restarted at
// any time"): a JobSpec may carry a FaultPlan (mr/fault.hpp) that kills
// task attempts, loses a node mid-job, drops shuffle fetches, and marks
// stragglers. Killed attempts are discarded wholesale and re-executed with
// bounded re-fetch; stragglers get a speculative backup execution whose
// race the plan decides. Every re-run's traffic — wasted shuffles,
// re-fetches, and remote input re-reads of rescheduled attempts — is
// charged to the NetworkMeter and tallied under the recovery counters
// (counter::kTasksRetried, kTasksSpeculative, kSpeculativeWins,
// kShuffleFetchRetries, kRecoveryBytes).
//
// Execution is deterministic: for a given cluster size, job spec, and
// fault plan, the output files, counters, and metered byte counts are
// identical regardless of worker-thread count. Faults never change the
// job's output — only its cost — because fault decisions are pure
// functions of the plan's seed and the task identity.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "mr/cluster.hpp"
#include "mr/job.hpp"

namespace pairmr::mr {

namespace backend {
class Backend;  // mr/backend/backend.hpp
}  // namespace backend

// Per-task accounting, exposed for tests and the §6 validation bench.
struct TaskStats {
  TaskIndex index = 0;
  NodeId node = 0;
  std::uint64_t input_records = 0;
  std::uint64_t output_records = 0;
  std::uint64_t output_bytes = 0;
  // Reduce only: largest key group seen by this task.
  std::uint64_t max_group_records = 0;
  std::uint64_t max_group_bytes = 0;
};

struct JobResult {
  std::string job_name;
  std::string output_dir;
  std::vector<std::string> output_paths;
  std::map<std::string, std::uint64_t> counters;
  std::vector<TaskStats> map_tasks;
  std::vector<TaskStats> reduce_tasks;
  double elapsed_seconds = 0.0;

  std::uint64_t counter(const std::string& name) const {
    const auto it = counters.find(name);
    return it == counters.end() ? 0 : it->second;
  }
};

class Engine {
 public:
  explicit Engine(Cluster& cluster) : cluster_(cluster) {}

  // Runs the job to completion. Throws if the spec is invalid or any task
  // throws (first task error is propagated). The execution substrate is
  // chosen by JobSpec::backend (kAuto → PAIRMR_TEST_BACKEND → in-process);
  // results are backend-independent, only process topology and cost
  // realism change.
  JobResult run(const JobSpec& spec);

  // Same, on an explicit backend (mr/backend/backend.hpp). The engine
  // remains the coordinator either way: placement, fault decisions,
  // metering, counter merging, and span attribution all happen here, so
  // output files, counters, and NetworkMeter totals are identical across
  // backends by construction.
  JobResult run(const JobSpec& spec, backend::Backend& backend);

 private:
  Cluster& cluster_;
};

}  // namespace pairmr::mr
