// Task-side contexts handed to Mapper/Reducer implementations.
//
// A MapContext partitions emissions into per-reducer buckets as they are
// produced (Hadoop's in-memory map-output buffer); a ReduceContext appends
// to the task's output file. Both expose the shared job counters and the
// identity of the simulated node executing the task.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/check.hpp"
#include "mr/counters.hpp"
#include "mr/fs.hpp"
#include "mr/job.hpp"
#include "mr/trace.hpp"
#include "mr/types.hpp"

namespace pairmr::mr {

class MapContext {
 public:
  // Engine-installed spill hook (mr/spill.hpp): sorts, optionally
  // combines, and drains every bucket to DFS scratch. Called by emit()
  // with the live bucket vector; must leave the buckets empty.
  using SpillFn = std::function<void(std::vector<std::vector<Record>>&)>;

  MapContext(NodeId node, TaskIndex task, const Partitioner& partitioner,
             std::uint32_t num_partitions, Counters& counters,
             const std::unordered_map<std::string,
                                      std::shared_ptr<const DfsFile>>& cache,
             std::string input_path = {}, Tracer* tracer = nullptr,
             SpanId trace_span = 0)
      : node_(node),
        task_(task),
        partitioner_(partitioner),
        counters_(counters),
        cache_(cache),
        input_path_(std::move(input_path)),
        tracer_(tracer),
        trace_span_(trace_span),
        buckets_(num_partitions) {}

  // Attach a memory budget (JobSpec::memory_budget): emit() then tracks
  // buffered bucket bytes and invokes `spill` before a record would push
  // the total past `budget_bytes`. A record larger than the whole budget
  // is buffered alone and spilled on the next emission — the only way
  // the tracked peak can exceed the ceiling.
  void attach_budget(std::uint64_t budget_bytes, SpillFn spill) {
    PAIRMR_CHECK(budget_bytes != 0 && spill != nullptr,
                 "attach_budget needs a non-zero budget and a spill fn");
    budget_bytes_ = budget_bytes;
    spill_ = std::move(spill);
  }

  // Emit one intermediate record; it lands in the bucket of the reduce
  // task the partitioner assigns.
  void emit(Bytes key, Bytes value) {
    const std::uint32_t p = partitioner_.partition(
        key, static_cast<std::uint32_t>(buckets_.size()));
    PAIRMR_CHECK(p < buckets_.size(), "partitioner returned out-of-range id");
    const std::uint64_t rec_bytes = key.size() + value.size();
    if (budget_bytes_ != 0 && tracked_bytes_ != 0 &&
        tracked_bytes_ + rec_bytes > budget_bytes_) {
      spill_(buckets_);
      tracked_bytes_ = 0;
    }
    tracked_bytes_ += rec_bytes;
    if (tracked_bytes_ > max_tracked_bytes_) {
      max_tracked_bytes_ = tracked_bytes_;
    }
    if (rec_bytes > max_record_bytes_) max_record_bytes_ = rec_bytes;
    bytes_emitted_ += rec_bytes;
    ++records_emitted_;
    buckets_[p].push_back(Record{std::move(key), std::move(value)});
  }

  // Records of a distributed-cache file (broadcast before the job).
  const std::vector<Record>& cache_file(const std::string& path) const {
    const auto it = cache_.find(path);
    PAIRMR_REQUIRE(it != cache_.end(),
                   "path not in distributed cache: " + path);
    return it->second->records;
  }

  NodeId node() const { return node_; }
  TaskIndex task_index() const { return task_; }
  Counters& counters() { return counters_; }

  // DFS path of the file this task's split reads (Hadoop's InputSplit
  // path). Empty for synthetic contexts.
  const std::string& input_path() const { return input_path_; }

  // Execution tracer and the span of this task attempt's execution, for
  // user code that wants to attach its own sub-spans. tracer() is nullptr
  // when tracing is off (trace_span() is then 0).
  Tracer* tracer() const { return tracer_; }
  SpanId trace_span() const { return trace_span_; }

  // Engine-side accessors (after the task ran).
  std::vector<std::vector<Record>>& buckets() { return buckets_; }
  std::uint64_t records_emitted() const { return records_emitted_; }
  std::uint64_t bytes_emitted() const { return bytes_emitted_; }

  // Budget accounting (zero unless attach_budget was called).
  std::uint64_t tracked_bytes() const { return tracked_bytes_; }
  std::uint64_t max_tracked_bytes() const { return max_tracked_bytes_; }
  std::uint64_t max_record_bytes() const { return max_record_bytes_; }

 private:
  NodeId node_;
  TaskIndex task_;
  const Partitioner& partitioner_;
  Counters& counters_;
  const std::unordered_map<std::string, std::shared_ptr<const DfsFile>>&
      cache_;
  std::string input_path_;
  Tracer* tracer_ = nullptr;
  SpanId trace_span_ = 0;
  std::vector<std::vector<Record>> buckets_;
  std::uint64_t records_emitted_ = 0;
  std::uint64_t bytes_emitted_ = 0;
  std::uint64_t budget_bytes_ = 0;  // 0 = no budget attached
  SpillFn spill_;
  std::uint64_t tracked_bytes_ = 0;
  std::uint64_t max_tracked_bytes_ = 0;
  std::uint64_t max_record_bytes_ = 0;
};

class ReduceContext {
 public:
  using CacheMap =
      std::unordered_map<std::string, std::shared_ptr<const DfsFile>>;

  ReduceContext(NodeId node, TaskIndex task, Counters& counters,
                const CacheMap* cache = nullptr, Tracer* tracer = nullptr,
                SpanId trace_span = 0)
      : node_(node),
        task_(task),
        counters_(counters),
        cache_(cache),
        tracer_(tracer),
        trace_span_(trace_span) {}

  // Records of a distributed-cache file (Hadoop's cache is visible to
  // reducers too). Requires the job to have declared cache_paths.
  const std::vector<Record>& cache_file(const std::string& path) const {
    PAIRMR_REQUIRE(cache_ != nullptr, "job has no distributed cache");
    const auto it = cache_->find(path);
    PAIRMR_REQUIRE(it != cache_->end(),
                   "path not in distributed cache: " + path);
    return it->second->records;
  }

  void emit(Bytes key, Bytes value) {
    bytes_emitted_ += key.size() + value.size();
    output_.push_back(Record{std::move(key), std::move(value)});
  }

  NodeId node() const { return node_; }
  TaskIndex task_index() const { return task_; }
  Counters& counters() { return counters_; }

  // See MapContext::tracer.
  Tracer* tracer() const { return tracer_; }
  SpanId trace_span() const { return trace_span_; }

  std::vector<Record>& output() { return output_; }
  std::uint64_t bytes_emitted() const { return bytes_emitted_; }

 private:
  NodeId node_;
  TaskIndex task_;
  Counters& counters_;
  const CacheMap* cache_ = nullptr;
  Tracer* tracer_ = nullptr;
  SpanId trace_span_ = 0;
  std::vector<Record> output_;
  std::uint64_t bytes_emitted_ = 0;
};

}  // namespace pairmr::mr
