// TSV import/export for DFS records.
//
// Bridges the binary record world to line-oriented tooling (cut, awk,
// spreadsheets): one record per line, `key<TAB>value`, with tabs,
// newlines, carriage returns, and backslashes escaped so arbitrary bytes
// round-trip.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "mr/types.hpp"

namespace pairmr::mr {

// Escape/unescape one field (\t, \n, \r, \\ sequences).
std::string escape_field(std::string_view raw);
std::string unescape_field(std::string_view escaped);

// Records -> TSV text (trailing newline included when records exist).
std::string records_to_tsv(const std::vector<Record>& records);

// TSV text -> records. Lines without a tab become records with an empty
// value. Empty lines are skipped. Throws on malformed escapes.
std::vector<Record> records_from_tsv(std::string_view text);

}  // namespace pairmr::mr
