#include "mr/fs.hpp"

#include <algorithm>
#include <mutex>

#include "common/check.hpp"

namespace pairmr::mr {

SimDfs::SimDfs(std::uint32_t num_nodes) : num_nodes_(num_nodes) {
  PAIRMR_REQUIRE(num_nodes > 0, "DFS needs at least one node");
}

void SimDfs::write_file(const std::string& path, NodeId home,
                        std::vector<Record> records) {
  PAIRMR_REQUIRE(home < num_nodes_, "home node out of range");
  PAIRMR_REQUIRE(!path.empty(), "empty DFS path");
  auto file = std::make_shared<DfsFile>();
  file->path = path;
  file->home = home;
  file->records = std::move(records);
  for (const auto& r : file->records) file->bytes += r.size_bytes();

  const std::unique_lock<std::shared_mutex> lock(mutex_);
  const auto [it, inserted] = files_.emplace(path, std::move(file));
  (void)it;
  PAIRMR_REQUIRE(inserted, "DFS path already exists (write-once): " + path);
}

std::shared_ptr<const DfsFile> SimDfs::open(const std::string& path) const {
  const std::shared_lock<std::shared_mutex> lock(mutex_);
  const auto it = files_.find(path);
  PAIRMR_REQUIRE(it != files_.end(), "DFS file not found: " + path);
  return it->second;
}

bool SimDfs::exists(const std::string& path) const {
  const std::shared_lock<std::shared_mutex> lock(mutex_);
  return files_.contains(path);
}

bool SimDfs::remove(const std::string& path) {
  const std::unique_lock<std::shared_mutex> lock(mutex_);
  return files_.erase(path) > 0;
}

std::size_t SimDfs::remove_prefix(const std::string& prefix) {
  const std::unique_lock<std::shared_mutex> lock(mutex_);
  std::size_t removed = 0;
  for (auto it = files_.begin(); it != files_.end();) {
    if (it->first.starts_with(prefix)) {
      it = files_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  return removed;
}

std::vector<std::string> SimDfs::list(const std::string& prefix) const {
  std::vector<std::string> out;
  {
    const std::shared_lock<std::shared_mutex> lock(mutex_);
    for (const auto& [path, file] : files_) {
      if (path.starts_with(prefix)) out.push_back(path);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::uint64_t SimDfs::bytes_on_node(NodeId node) const {
  const std::shared_lock<std::shared_mutex> lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& [path, file] : files_) {
    if (file->home == node) total += file->bytes;
  }
  return total;
}

std::uint64_t SimDfs::total_bytes() const {
  const std::shared_lock<std::shared_mutex> lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& [path, file] : files_) total += file->bytes;
  return total;
}

}  // namespace pairmr::mr
