#include "mr/job.hpp"

#include "common/check.hpp"
#include "common/intmath.hpp"
#include "common/serde.hpp"
#include "mr/context.hpp"

namespace pairmr::mr {

const char* to_string(BackendKind kind) {
  switch (kind) {
    case BackendKind::kAuto:
      return "auto";
    case BackendKind::kInProcess:
      return "inprocess";
    case BackendKind::kFork:
      return "fork";
  }
  return "unknown";
}

const char* to_string(ShufflePlane plane) {
  switch (plane) {
    case ShufflePlane::kAuto:
      return "auto";
    case ShufflePlane::kSocket:
      return "socket";
    case ShufflePlane::kShm:
      return "shm";
  }
  return "unknown";
}

void JobSpec::validate() const {
  PAIRMR_REQUIRE(mapper_factory != nullptr, "job needs a mapper");
  PAIRMR_REQUIRE(map_only || reducer_factory != nullptr,
                 "job needs a reducer (or map_only)");
  PAIRMR_REQUIRE(!(map_only && combiner_factory),
                 "map-only jobs cannot combine");
  PAIRMR_REQUIRE(!output_dir.empty(), "job needs an output dir");
  PAIRMR_REQUIRE(!input_paths.empty(), "job needs input paths");
  PAIRMR_REQUIRE(!memory_budget.enabled() || memory_budget.merge_fan_in >= 2,
                 "memory budget merge_fan_in must be >= 2 (got " +
                     std::to_string(memory_budget.merge_fan_in) +
                     "); a 1-way merge cannot make progress");
}

std::uint32_t RangePartitioner::partition(
    const Bytes& key, std::uint32_t num_partitions) const {
  const std::uint64_t k = decode_u64_key(key);
  const std::uint64_t span = ceil_div(key_space_, num_partitions);
  const std::uint64_t p = span == 0 ? 0 : k / span;
  return static_cast<std::uint32_t>(
      p >= num_partitions ? num_partitions - 1 : p);
}

void IdentityMapper::map(const Bytes& key, const Bytes& value,
                         MapContext& ctx) {
  ctx.emit(key, value);
}

void IdentityReducer::reduce(const Bytes& key, const std::vector<Bytes>& values,
                             ReduceContext& ctx) {
  for (const auto& v : values) ctx.emit(key, v);
}

}  // namespace pairmr::mr
