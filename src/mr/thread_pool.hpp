// Fixed-size worker pool used to execute map/reduce tasks concurrently.
//
// The pool models the cluster's compute parallelism; it is sized
// independently of the simulated node count so an n-node cluster can be
// simulated faithfully on any host. `run_all` is a barrier: it returns
// after every task ran, rethrowing the first captured exception.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace pairmr::mr {

class ThreadPool {
 public:
  // threads == 0 picks hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  // Run all tasks to completion. Rethrows the first task exception after
  // every task finished (so no task is abandoned mid-flight).
  void run_all(std::vector<std::function<void()>> tasks);

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable batch_done_;
  std::deque<std::function<void()>> queue_;
  std::size_t in_flight_ = 0;
  bool shutting_down_ = false;
  std::exception_ptr first_error_;
  std::vector<std::thread> workers_;
};

}  // namespace pairmr::mr
