#include "mr/counters.hpp"

#include <algorithm>
#include <string_view>

namespace pairmr::mr {

void Counters::add(const std::string& name, std::uint64_t delta) {
  const std::lock_guard<std::mutex> lock(mutex_);
  values_[name] += delta;
}

void Counters::note_max(const std::string& name, std::uint64_t candidate) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = values_[name];
  slot = std::max(slot, candidate);
}

std::uint64_t Counters::get(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = values_.find(name);
  return it == values_.end() ? 0 : it->second;
}

std::map<std::string, std::uint64_t> Counters::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return values_;
}

bool Counters::is_max_counter(const std::string& name) {
  // Convention: counters holding running maxima contain ".max." in the name.
  return name.find(".max.") != std::string::npos;
}

void Counters::merge(const Counters& other) {
  const auto theirs = other.snapshot();
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, value] : theirs) {
    auto& slot = values_[name];
    slot = is_max_counter(name) ? std::max(slot, value) : slot + value;
  }
}

}  // namespace pairmr::mr
