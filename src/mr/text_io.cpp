#include "mr/text_io.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace pairmr::mr {

std::string escape_field(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    switch (c) {
      case '\t':
        out += "\\t";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\\':
        out += "\\\\";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

std::string unescape_field(std::string_view escaped) {
  // Fast path: most fields contain no escapes and copy through verbatim.
  if (escaped.find('\\') == std::string_view::npos) {
    return std::string(escaped);
  }
  std::string out;
  out.reserve(escaped.size());
  for (std::size_t i = 0; i < escaped.size(); ++i) {
    if (escaped[i] != '\\') {
      out.push_back(escaped[i]);
      continue;
    }
    PAIRMR_REQUIRE(i + 1 < escaped.size(), "dangling escape in TSV field");
    switch (escaped[++i]) {
      case 't':
        out.push_back('\t');
        break;
      case 'n':
        out.push_back('\n');
        break;
      case 'r':
        out.push_back('\r');
        break;
      case '\\':
        out.push_back('\\');
        break;
      default:
        PAIRMR_REQUIRE(false, "unknown escape sequence in TSV field");
    }
  }
  return out;
}

std::string records_to_tsv(const std::vector<Record>& records) {
  std::string out;
  std::size_t bytes = 0;
  for (const auto& rec : records) bytes += rec.size_bytes() + 2;
  out.reserve(bytes);  // exact unless a field needs escaping
  for (const auto& rec : records) {
    out += escape_field(rec.key);
    out.push_back('\t');
    out += escape_field(rec.value);
    out.push_back('\n');
  }
  return out;
}

std::vector<Record> records_from_tsv(std::string_view text) {
  std::vector<Record> out;
  out.reserve(static_cast<std::size_t>(
      std::count(text.begin(), text.end(), '\n') +
      (!text.empty() && text.back() != '\n' ? 1 : 0)));
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    const std::string_view line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) continue;
    const std::size_t tab = line.find('\t');
    Record rec;
    if (tab == std::string_view::npos) {
      rec.key = unescape_field(line);
    } else {
      rec.key = unescape_field(line.substr(0, tab));
      rec.value = unescape_field(line.substr(tab + 1));
    }
    out.push_back(std::move(rec));
  }
  return out;
}

}  // namespace pairmr::mr
