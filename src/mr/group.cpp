#include "mr/group.hpp"

#include <algorithm>
#include <cstdint>
#include <cstring>

namespace pairmr::mr {

namespace {

// Scratch reused across group_by_key calls on one worker thread. Grouping
// runs once per reduce task and once per combined map bucket, so reusing
// the index/key arrays keeps the shuffle free of per-task reallocation.
struct GroupScratch {
  std::vector<std::uint64_t> keys;
  std::vector<std::uint32_t> order;
  std::vector<std::uint32_t> tmp;
};

GroupScratch& scratch() {
  thread_local GroupScratch s;
  return s;
}

bool all_keys_are_u64(const std::vector<Record>& records) {
  return std::all_of(records.begin(), records.end(),
                     [](const Record& r) { return r.key.size() == 8; });
}

// Walk the sorted index permutation, moving values into per-group
// vectors. Shared by both orderings.
void emit_groups(std::vector<Record>& records,
                 const std::vector<std::uint32_t>& order, const GroupFn& fn) {
  const std::size_t n = records.size();
  std::size_t i = 0;
  std::vector<Bytes> values;
  while (i < n) {
    const Bytes& key = records[order[i]].key;
    std::size_t j = i;
    values.clear();
    while (j < n && records[order[j]].key == key) {
      values.push_back(std::move(records[order[j]].value));
      ++j;
    }
    fn(key, values);
    i = j;
  }
}

std::vector<std::uint32_t> comparison_order(
    const std::vector<Record>& records) {
  std::vector<std::uint32_t> order(records.size());
  for (std::uint32_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&records](std::uint32_t a, std::uint32_t b) {
                     return records[a].key < records[b].key;
                   });
  return order;
}

// Fixed-width path: byte-lexicographic order of 8-byte keys equals
// numeric order of their big-endian decoding, so sort the integers.
// Leaves the permutation in s.order.
void radix_order(const std::vector<Record>& records, GroupScratch& s) {
  const std::size_t n = records.size();
  s.keys.resize(n);
  s.order.resize(n);
  s.tmp.resize(n);
  std::uint64_t all_or = 0;
  std::uint64_t all_and = ~std::uint64_t{0};
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t k = 0;
    const char* p = records[i].key.data();
    for (int b = 0; b < 8; ++b) {
      k = (k << 8) | static_cast<std::uint8_t>(p[b]);
    }
    s.keys[i] = k;
    all_or |= k;
    all_and &= k;
    s.order[i] = static_cast<std::uint32_t>(i);
  }

  // LSD radix over 8-bit digits: each pass is a stable counting sort, so
  // the final permutation is stable. Digits on which every key agrees
  // (the common case — shuffle keys are small dense ids) cost nothing.
  const std::uint64_t varying = all_or ^ all_and;
  for (int shift = 0; shift < 64; shift += 8) {
    if (((varying >> shift) & 0xff) == 0) continue;
    std::uint32_t count[256];
    std::memset(count, 0, sizeof(count));
    for (std::size_t i = 0; i < n; ++i) {
      ++count[(s.keys[s.order[i]] >> shift) & 0xff];
    }
    std::uint32_t offset = 0;
    for (std::uint32_t& c : count) {
      const std::uint32_t next = offset + c;
      c = offset;
      offset = next;
    }
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint32_t rec = s.order[i];
      s.tmp[count[(s.keys[rec] >> shift) & 0xff]++] = rec;
    }
    std::swap(s.order, s.tmp);
  }
}

}  // namespace

void group_by_key_stable_sort(std::vector<Record>& records,
                              const GroupFn& fn) {
  emit_groups(records, comparison_order(records), fn);
}

void group_by_key(std::vector<Record>& records, const GroupFn& fn) {
  if (records.empty()) return;
  if (!all_keys_are_u64(records)) {
    group_by_key_stable_sort(records, fn);
    return;
  }
  auto& s = scratch();
  radix_order(records, s);
  emit_groups(records, s.order, fn);
}

std::vector<std::uint32_t> sorted_order(const std::vector<Record>& records) {
  if (records.empty()) return {};
  if (!all_keys_are_u64(records)) return comparison_order(records);
  auto& s = scratch();
  radix_order(records, s);
  return s.order;
}

void sort_records_stable(std::vector<Record>& records) {
  const std::vector<std::uint32_t> order = sorted_order(records);
  std::vector<Record> sorted;
  sorted.reserve(records.size());
  for (const std::uint32_t i : order) sorted.push_back(std::move(records[i]));
  records = std::move(sorted);
}

}  // namespace pairmr::mr
