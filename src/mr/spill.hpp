// Memory-budgeted out-of-core execution: sorted runs, k-way merging, and
// pull-based grouping (the engine's spill path).
//
// The paper chooses among broadcast/block/design because of the memory
// limit `m` (§6, Table 1 "Limits") — but a real engine also has to
// survive the moments *between* the planner's guarantees: map-output
// buffers, shuffle buckets, and reduce inputs all compete for task
// memory. A JobSpec may therefore carry a MemoryBudget (mr/job.hpp).
// When it does:
//
//   * map side — MapContext tracks buffered bucket bytes; before a record
//     would push the total over the budget, every non-empty bucket is
//     sorted (mr/group.hpp's radix ordering — the same ordering the
//     shuffle uses), optionally combined, and written to DFS scratch as a
//     *sorted run*. The final leftover buffer becomes one more in-memory
//     sorted run, so buffered bytes never exceed the budget.
//   * reduce side — instead of concatenating every fetched bucket and
//     sorting the whole partition, the task k-way-merges the sorted runs
//     and streams one key group at a time into reduce via GroupIterator;
//     the full partition is never materialized. When a partition has more
//     runs than the budget's merge fan-in, intermediate merge passes
//     (counter::kMergePasses) fold consecutive runs into wider scratch
//     runs first, exactly like Hadoop's io.sort.factor.
//
// Equivalence: a spilled run holds records emitted *before* any later
// run's records, and every run is sorted with the stable shuffle
// ordering. Merging runs in (map task, run age) order with ties broken by
// source index therefore reproduces, byte for byte, the value order of
// the in-memory path's stable sort — spill on/off changes only cost,
// never output (property-tested across schemes, drivers, and fault
// chaos in tests/pairwise/spill_equivalence_test.cpp).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "mr/fs.hpp"
#include "mr/types.hpp"

namespace pairmr::mr {

// One sorted run: either a DFS scratch file (spilled, records borrowed
// and copied out on read) or an in-memory record vector (owned, records
// moved out on read). Records must be in stable byte-lexicographic key
// order (mr/group.hpp's sorted_order).
struct RunSource {
  std::shared_ptr<const DfsFile> file;  // set when spilled
  std::vector<Record> records;          // set when in-memory

  static RunSource from_file(std::shared_ptr<const DfsFile> f) {
    RunSource r;
    r.file = std::move(f);
    return r;
  }
  static RunSource from_records(std::vector<Record> recs) {
    RunSource r;
    r.records = std::move(recs);
    return r;
  }

  bool owned() const { return file == nullptr; }
  const std::vector<Record>& view() const {
    return file ? file->records : records;
  }
  std::uint64_t record_count() const { return view().size(); }
};

// Pull-based grouped merge over sorted runs — the reduce side of the
// spill path. Each next() advances to the following key group, merging
// across runs with ties broken by source index (lower index first), so
// the (key, values) stream is byte-identical to group_by_key over the
// concatenation of the sources in index order. Values of owned sources
// are moved, file-backed values copied. Empty sources are legal.
class GroupIterator {
 public:
  explicit GroupIterator(std::vector<RunSource> sources);

  // Advance to the next group; false once all runs are exhausted. The
  // previous group's key/values are invalidated.
  bool next();

  const Bytes& key() const { return key_; }
  const std::vector<Bytes>& values() const { return values_; }

  std::uint64_t records_consumed() const { return records_consumed_; }
  // Largest byte size any merge head buffer reached (one record per
  // source at a time) — the merge's tracked memory, excluding the
  // current group handed to user code.
  std::uint64_t max_head_bytes() const { return max_head_bytes_; }

 private:
  struct Cursor {
    std::size_t source = 0;
    std::size_t pos = 0;
  };
  const Record& record_at(const Cursor& c) const {
    return sources_[c.source].view()[c.pos];
  }

  std::vector<RunSource> sources_;
  std::vector<std::size_t> heads_;  // per-source next position
  Bytes key_;
  std::vector<Bytes> values_;
  std::uint64_t records_consumed_ = 0;
  std::uint64_t max_head_bytes_ = 0;
};

// Record-level k-way merge of `sources` (same ordering contract as
// GroupIterator) into one flat sorted run. Owned sources are consumed.
std::vector<Record> merge_runs(std::vector<RunSource> sources);

struct MergeStats {
  std::uint64_t passes = 0;        // intermediate merge rounds
  std::uint64_t runs_written = 0;  // scratch runs produced by those rounds
  std::uint64_t bytes_written = 0;
};

// Reduce at most `fan_in`-way: while more than `fan_in` runs remain,
// merge consecutive batches of `fan_in` runs into scratch files under
// `scratch_prefix` (home `node`), preserving global source order so the
// final merge stays byte-identical to a single wide merge. Each round is
// one MergeStats::passes. Requires fan_in >= 2.
std::vector<RunSource> merge_to_fan_in(SimDfs& dfs,
                                       const std::string& scratch_prefix,
                                       NodeId node,
                                       std::vector<RunSource> sources,
                                       std::uint32_t fan_in,
                                       MergeStats& stats);

}  // namespace pairmr::mr
