#include "mr/backend/bench_report.hpp"

#include <algorithm>
#include <sstream>

namespace pairmr::mr::backend {

std::string bench_to_json(const std::vector<BenchPoint>& points) {
  std::ostringstream os;
  os << "{\n  \"bench\": \"backend\",\n  \"points\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const BenchPoint& p = points[i];
    os << "    {\"regime\": \"" << p.regime << "\", \"backend\": \""
       << p.backend << "\", \"shuffle_plane\": \"" << p.shuffle_plane
       << "\", \"v\": " << p.v
       << ", \"element_bytes\": " << p.element_bytes
       << ", \"evaluations\": " << p.evaluations << ", \"jobs\": " << p.jobs
       << ", \"wall_seconds\": " << p.wall_seconds
       << ", \"shuffle_remote_bytes\": " << p.shuffle_remote_bytes
       << ", \"shuffle_mib_per_second\": " << p.shuffle_mib_per_second
       << ", \"workers_forked\": " << p.workers_forked
       << ", \"workers_reused\": " << p.workers_reused
       << ", \"identical\": " << (p.identical ? "true" : "false") << "}"
       << (i + 1 < points.size() ? "," : "") << "\n";
  }
  os << "  ],\n  \"passed\": " << (bench_all_ok(points) ? "true" : "false")
     << "\n}\n";
  return os.str();
}

bool bench_all_ok(const std::vector<BenchPoint>& points) {
  return std::all_of(points.begin(), points.end(),
                     [](const BenchPoint& p) { return p.identical; });
}

}  // namespace pairmr::mr::backend
