#include "mr/backend/fork.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include <poll.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>
#ifdef __linux__
#include <sys/mman.h>
#include <sys/prctl.h>
#endif

#include "common/check.hpp"
#include "common/log.hpp"

#if defined(__SANITIZE_THREAD__)
#define PAIRMR_HAS_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define PAIRMR_HAS_TSAN 1
#endif
#endif

namespace pairmr::mr::backend {

namespace {

std::string ctrl_sock_path(const std::string& dir) { return dir + "/ctrl.sock"; }

std::string shuffle_sock_path(const std::string& dir, NodeId node) {
  return dir + "/shuf-" + std::to_string(node) + ".sock";
}

// Die alongside the parent even if it is SIGKILLed (coordinator -> forker
// -> worker chain), so a crashed test never strands worker processes.
void die_with_parent() {
#ifdef __linux__
  ::prctl(PR_SET_PDEATHSIG, SIGKILL);
#endif
}

bool write_exact(int fd, const void* buf, std::size_t len) {
  const char* p = static_cast<const char*>(buf);
  std::size_t done = 0;
  while (done < len) {
    const ssize_t n = ::write(fd, p + done, len - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<std::size_t>(n);
  }
  return true;
}

bool read_exact(int fd, void* buf, std::size_t len) {
  char* p = static_cast<char*>(buf);
  std::size_t done = 0;
  while (done < len) {
    const ssize_t n = ::read(fd, p + done, len - done);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    done += static_cast<std::size_t>(n);
  }
  return true;
}

struct FdCloser {
  int fd = -1;
  ~FdCloser() {
    if (fd >= 0) ::close(fd);
  }
};

void put_meta(BufWriter& w, const std::vector<PartitionMeta>& meta) {
  w.put_u32(static_cast<std::uint32_t>(meta.size()));
  for (const PartitionMeta& m : meta) {
    w.put_u64(m.bytes);
    w.put_u64(m.records);
  }
}

std::vector<PartitionMeta> get_meta(BufReader& r) {
  const std::uint32_t n = r.get_u32();
  std::vector<PartitionMeta> meta(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    meta[i].bytes = r.get_u64();
    meta[i].records = r.get_u64();
  }
  return meta;
}

// One stored partition on the wire, mirroring fetch_from_partition: spill
// mode ships every sorted run in (run age, final last) order, the
// in-memory path ships the raw bucket. Serving never moves records out of
// the store — the serialized copy crosses the socket either way, and the
// store must stay fetchable for re-execution.
void put_partition(BufWriter& w, const MapOutputPartition& part,
                   bool spill_mode) {
  if (spill_mode) {
    w.put_u8(1);
    const auto n = static_cast<std::uint32_t>(part.runs.size() +
                                              (part.final_run.empty() ? 0 : 1));
    w.put_u32(n);
    for (const auto& run : part.runs) put_records(w, run->records);
    if (!part.final_run.empty()) put_records(w, part.final_run);
  } else {
    w.put_u8(0);
    put_records(w, part.final_run);
  }
}

FetchedPartition get_partition(BufReader& r) {
  FetchedPartition out;
  if (r.get_u8() != 0) {
    const std::uint32_t n = r.get_u32();
    out.sources.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      out.sources.push_back(RunSource::from_records(get_records(r)));
    }
  } else {
    out.raw = get_records(r);
  }
  return out;
}

// ==================== shm arena layout ================================
//
// One memfd per published map task, holding every reduce partition the
// task produced, encoded exactly as the socket plane would stream it:
//
//   u32 magic 'PMRA'
//   u32 nparts                      (== the job's reducer count)
//   (u64 offset, u64 length) * nparts
//   ...partition bodies (put_partition encoding)...
//
// Fetching reducers mmap the arena read-only and decode partition r
// straight from its slice — no socket roundtrip, no second serialization.

inline constexpr std::uint32_t kArenaMagic = 0x41524d50;  // 'PMRA'

struct ArenaBuild {
  int fd = -1;  // -1 = arena unavailable, caller stays on the socket plane
  std::uint64_t len = 0;
  std::uint64_t records = 0;
};

ArenaBuild build_arena(const std::vector<MapOutputPartition>& parts,
                       bool spill_mode) {
  ArenaBuild out;
#ifdef __linux__
  std::vector<std::string> bodies;
  bodies.reserve(parts.size());
  std::uint64_t total = 0;
  for (const MapOutputPartition& part : parts) {
    BufWriter b;
    put_partition(b, part, spill_mode);
    total += b.size();
    bodies.push_back(std::move(b).str());
    out.records += part.records;
  }
  BufWriter h;
  h.put_u32(kArenaMagic);
  h.put_u32(static_cast<std::uint32_t>(parts.size()));
  std::uint64_t off = 8 + 16ull * parts.size();
  for (const std::string& b : bodies) {
    h.put_u64(off);
    h.put_u64(b.size());
    off += b.size();
  }
  const int fd = static_cast<int>(::memfd_create("pairmr-arena", MFD_CLOEXEC));
  if (fd < 0) return out;  // kernel without memfd support: socket fallback
  bool ok = write_exact(fd, h.str().data(), h.size());
  for (const std::string& b : bodies) {
    if (!ok) break;
    ok = write_exact(fd, b.data(), b.size());
  }
  if (!ok) {
    ::close(fd);
    return out;
  }
  out.fd = fd;
  out.len = h.size() + total;
#else
  (void)parts;
  (void)spill_mode;
#endif
  return out;
}

// One received arena, mapped and validated. An empty `map` means the
// arena was unavailable or garbled; the fetch falls back to the socket.
struct ArenaView {
  std::shared_ptr<const ShmMapping> map;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> table;  // off, len
};

ArenaView open_arena(int fd, std::uint64_t len, std::uint32_t num_reducers) {
  ArenaView out;
  auto mapping = ShmMapping::map_fd(fd, len);
  if (mapping == nullptr) return out;
  const std::string_view v = mapping->view();
  const std::uint64_t header = 8 + 16ull * num_reducers;
  if (v.size() < header) return out;
  BufReader r(v);
  if (r.get_u32() != kArenaMagic) return out;
  if (r.get_u32() != num_reducers) return out;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> table(num_reducers);
  for (std::uint32_t i = 0; i < num_reducers; ++i) {
    const std::uint64_t off = r.get_u64();
    const std::uint64_t plen = r.get_u64();
    if (off < header || off + plen > v.size() || off + plen < off) {
      return out;  // offsets escape the mapping: garbled arena
    }
    table[i] = {off, plen};
  }
  out.map = std::move(mapping);
  out.table = std::move(table);
  return out;
}

// ======================= worker process ===============================

// One staged map execution. The per-request tracer stays alive with the
// execution: the MapContext holds a pointer to it, and publish reads the
// context's buckets after the request that created them has returned.
struct WorkerStaged {
  MapExecution ex;
  std::unique_ptr<Tracer> tracer;
};

// Everything one job means to a pooled worker. Built entirely from the
// kBeginJob frame — nothing here depends on coordinator stack frames that
// post-date the pool's fork. The one cross-process pointer is `spec`,
// whose copy-on-write validity the coordinator guarantees (fork.hpp).
struct WorkerJob {
  const JobSpec* spec = nullptr;
  TaskEnv env;                      // env.tracer stays null; see `traced`
  std::unique_ptr<SimDfs> scratch;  // job-local spill scratch
  ReduceContext::CacheMap cache;
  HashPartitioner default_partitioner;
  bool traced = false;
  ShufflePlane plane = ShufflePlane::kSocket;
  std::uint32_t num_splits = 0;
};

struct WorkerState {
  NodeId node = 0;
  std::string session_dir;
  // Guards job/staged/published against the shuffle server thread.
  std::mutex mutex;
  std::unique_ptr<WorkerJob> job;
  std::vector<std::unordered_map<std::string, WorkerStaged>> staged;
  std::vector<std::vector<MapOutputPartition>> published;
  std::vector<std::uint8_t> has_published;
};

WorkerJob& require_job(WorkerState& st) {
  if (st.job == nullptr) {
    throw ProtocolError(
        "task frame for worker " + std::to_string(st.node) +
        " with no job in progress (kBeginJob never arrived, or arrived "
        "after kEndJob)");
  }
  return *st.job;
}

// Worker-side tracing of one request: a fresh Tracer whose root span
// (local id 1) stands in for the coordinator-side attempt span. The
// coordinator maps id 1 back onto the real span when it replays the
// shipped spans (ForkBackend::replay_spans).
struct TraceSession {
  std::unique_ptr<Tracer> tracer;
  SpanId root = 0;

  explicit TraceSession(bool enabled) {
    if (enabled) {
      tracer = std::make_unique<Tracer>();
      root = tracer->begin_job("worker");
    }
  }

  void ship(BufWriter& w) const {
    if (tracer == nullptr) {
      put_spans(w, {});
      return;
    }
    const std::vector<Span> spans = tracer->spans();
    put_spans(w, std::vector<Span>(spans.begin() + 1, spans.end()));
  }
};

void handle_begin_job(WorkerState& st, BufReader& r) {
  const std::lock_guard<std::mutex> lock(st.mutex);
  if (st.job != nullptr) {
    throw ProtocolError(
        "stale kBeginJob: worker " + std::to_string(st.node) +
        " already has a job in progress (the coordinator skipped kEndJob)");
  }
  auto job = std::make_unique<WorkerJob>();
  job->spec = reinterpret_cast<const JobSpec*>(
      static_cast<std::uintptr_t>(r.get_u64()));
  job->num_splits = r.get_u32();
  const std::uint32_t num_reducers = r.get_u32();
  const std::uint32_t num_nodes = r.get_u32();
  MemoryBudget budget;
  budget.bytes = r.get_u64();
  budget.merge_fan_in = r.get_u32();
  const bool spill_mode = r.get_u8() != 0;
  const bool movable = r.get_u8() != 0;
  job->traced = r.get_u8() != 0;
  job->plane = static_cast<ShufflePlane>(r.get_u8());
  const std::string scratch_root(r.get_bytes());
  const std::uint32_t ncache = r.get_u32();
  for (std::uint32_t i = 0; i < ncache; ++i) {
    auto file = std::make_shared<DfsFile>();
    file->path = std::string(r.get_bytes());
    file->home = r.get_u32();
    file->records = get_records(r);
    for (const Record& rec : file->records) {
      file->bytes += rec.key.size() + rec.value.size();
    }
    job->cache.emplace(file->path, std::move(file));
  }
  job->scratch = std::make_unique<SimDfs>(num_nodes);
  job->env.spec = job->spec;
  job->env.partitioner = job->spec->partitioner != nullptr
                             ? job->spec->partitioner.get()
                             : &job->default_partitioner;
  job->env.num_reducers = num_reducers;
  job->env.budget = budget;
  job->env.spill_mode = spill_mode;
  job->env.movable_shuffle = movable;
  job->env.scratch_root = scratch_root;
  job->env.dfs = job->scratch.get();
  job->env.cache = &job->cache;
  job->env.tracer = nullptr;
  st.staged.clear();
  st.staged.resize(job->num_splits);
  st.published.clear();
  st.published.resize(job->num_splits);
  st.has_published.assign(job->num_splits, 0);
  st.job = std::move(job);
}

void handle_end_job(WorkerState& st) {
  const std::lock_guard<std::mutex> lock(st.mutex);
  if (st.job == nullptr) {
    throw ProtocolError("kEndJob for worker " + std::to_string(st.node) +
                        " with no job in progress");
  }
  st.job.reset();
  st.staged.clear();
  st.published.clear();
  st.has_published.clear();
}

// Decode the split section of a kMapTask frame into a synthetic
// whole-file split (begin = 0, end = n): execute_map_attempt only reads
// `file->path` and the [begin, end) record slice, so a shipped slice is
// observationally identical to the coordinator's original.
Split read_split(BufReader& r, NodeId node) {
  auto file = std::make_shared<DfsFile>();
  file->path = std::string(r.get_bytes());
  file->home = node;
  file->records = get_records(r);
  for (const Record& rec : file->records) {
    file->bytes += rec.key.size() + rec.value.size();
  }
  Split split;
  split.begin = 0;
  split.end = file->records.size();
  split.node = node;
  split.file = std::move(file);
  return split;
}

std::string handle_map_task(WorkerState& st, BufReader& r) {
  WorkerJob& job = require_job(st);
  const TaskIndex task = r.get_u32();
  r.get_u32();  // attempt: part of the message for logging symmetry only
  const NodeId node = r.get_u32();
  const std::string tag(r.get_bytes());
  const bool regen = r.get_u8() != 0;
  const Split split = read_split(r, node);
  PAIRMR_CHECK(task < job.num_splits, "map task index out of range");

  WorkerStaged staged;
  TaskEnv env = job.env;
  SpanId root = 0;
  // Regenerated executions are deterministic replays of already-accounted
  // work: they run untraced and their counters are dropped coordinator-side.
  if (!regen && job.traced) {
    staged.tracer = std::make_unique<Tracer>();
    root = staged.tracer->begin_job("worker");
    env.tracer = staged.tracer.get();
  }
  staged.ex = execute_map_attempt(env, split, task, node, root, tag);

  BufWriter w;
  w.put_u64(staged.ex.ctx->records_emitted());
  w.put_u64(staged.ex.ctx->bytes_emitted());
  if (staged.tracer != nullptr) {
    const std::vector<Span> spans = staged.tracer->spans();
    put_spans(w, std::vector<Span>(spans.begin() + 1, spans.end()));
  } else {
    put_spans(w, {});
  }
  {
    const std::lock_guard<std::mutex> lock(st.mutex);
    st.staged[task].insert_or_assign(tag, std::move(staged));
  }
  return std::move(w).str();
}

// Publish sends its own response frame: the shm plane replies with
// kPublishDoneShm carrying the arena fd in SCM_RIGHTS, which plain
// send_frame cannot express. Every failure before the send throws (the
// dispatcher's kErr path still holds); arena build failures are not
// errors — they downgrade the reply to a socket-plane kPublishDone.
void handle_publish(WorkerState& st, BufReader& r, int ctrl) {
  WorkerJob& job = require_job(st);
  const TaskIndex task = r.get_u32();
  const std::string tag(r.get_bytes());
  const NodeId node = r.get_u32();
  const bool regen = r.get_u8() != 0;

  WorkerStaged staged;
  {
    const std::lock_guard<std::mutex> lock(st.mutex);
    const auto it = st.staged[task].find(tag);
    PAIRMR_CHECK(it != st.staged[task].end(),
                 "publish of a map execution that was never staged");
    staged = std::move(it->second);
    st.staged[task].erase(it);
  }
  TaskEnv env = job.env;
  TraceSession ts(!regen && job.traced);
  if (ts.tracer != nullptr) env.tracer = ts.tracer.get();
  FinalizedMapOutput fin =
      finalize_map_output(env, staged.ex, task, node, ts.root);

  BufWriter w;
  put_meta(w, fin.meta);
  put_counters(w, *staged.ex.counters);
  ArenaBuild arena;
  if (job.spec->map_only) {
    put_records(w, fin.partitions.empty() ? std::vector<Record>{}
                                          : fin.partitions[0].final_run);
  } else {
    put_records(w, {});
    if (job.plane == ShufflePlane::kShm) {
      arena = build_arena(fin.partitions, job.env.spill_mode);
      if (arena.fd >= 0 && ts.tracer != nullptr) {
        const SpanId sp = ts.tracer->begin_op(ts.root, SpanKind::kShmArena,
                                              node, "shm-arena");
        ts.tracer->end(sp, arena.len, arena.records);
      }
    }
    const std::lock_guard<std::mutex> lock(st.mutex);
    st.published[task] = std::move(fin.partitions);
    st.has_published[task] = 1;
  }
  ts.ship(w);
  if (arena.fd >= 0) {
    FdCloser closer{arena.fd};  // the kernel dup()s into the coordinator
    w.put_u64(arena.len);
    w.put_u32(1);  // declared fd count, checked against SCM_RIGHTS
    send_frame_with_fds(ctrl, FrameType::kPublishDoneShm, w.str(),
                        {arena.fd});
  } else {
    send_frame(ctrl, FrameType::kPublishDone, w.str());
  }
}

// Serves reduce fetches from an mmap'd arena (shm plane), the worker's
// own store, or a peer worker's shuffle socket. Peer fetches retry
// through crash windows: a connect failure, a mid-serve death, or a
// kNotReady from a respawned peer whose regeneration is still pending
// all back off and try again.
class WorkerSource final : public PartitionSource {
 public:
  WorkerSource(WorkerState& st, const WorkerJob& job,
               const std::vector<NodeId>& map_nodes,
               const std::vector<PartitionMeta>& meta,
               const std::vector<ArenaView>& arenas)
      : st_(st),
        job_(job),
        map_nodes_(map_nodes),
        meta_(meta),
        arenas_(arenas) {}

  FetchedPartition fetch(TaskIndex m, TaskIndex r) override {
    const NodeId peer = map_nodes_[m];
    if (peer == st_.node) {
      const std::lock_guard<std::mutex> lock(st_.mutex);
      PAIRMR_CHECK(st_.has_published[m] != 0,
                   "reduce fetch of a local map output that is not published");
      return fetch_from_partition(st_.published[m][r], job_.env.spill_mode,
                                  job_.env.movable_shuffle);
    }
    if (arenas_[m].map != nullptr) {
      const ArenaView& a = arenas_[m];
      const auto [off, len] = a.table[r];
      BufReader rd(a.map->view().substr(off, len));
      FetchedPartition out = get_partition(rd);
      out.backing = a.map;  // pin the mapping for the records' lifetime
      shm_bytes_ += meta_[m].bytes;
      return out;
    }
    return remote_fetch(peer, m, r);
  }

  // Remote bytes consumed straight from mmap'd arenas, in the same unit
  // the coordinator meters (the partitions' settled meta bytes).
  std::uint64_t shm_bytes() const { return shm_bytes_; }

 private:
  FetchedPartition remote_fetch(NodeId peer, TaskIndex m, TaskIndex r) {
    const std::string path = shuffle_sock_path(st_.session_dir, peer);
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    for (;;) {
      FdCloser fd{uds_connect(path)};
      if (fd.fd >= 0) {
        try {
          set_recv_timeout(fd.fd, 30);
          BufWriter w;
          w.put_u32(m);
          w.put_u32(r);
          send_frame(fd.fd, FrameType::kFetch, w.str());
          std::string payload;
          const FrameType t = recv_frame(fd.fd, payload, "shuffle peer");
          if (t == FrameType::kPartition) {
            BufReader rd(payload);
            return get_partition(rd);
          }
          // kNotReady: the peer respawned and its regeneration is pending.
        } catch (const ProtocolError&) {
          // The peer died mid-serve (crash window); its replacement will
          // serve the regenerated partition.
        }
      }
      if (std::chrono::steady_clock::now() >= deadline) {
        throw ProtocolError("shuffle fetch of map " + std::to_string(m) +
                            " partition " + std::to_string(r) +
                            " from node " + std::to_string(peer) +
                            " timed out (peer worker gone for good?)");
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }

  WorkerState& st_;
  const WorkerJob& job_;
  const std::vector<NodeId>& map_nodes_;
  const std::vector<PartitionMeta>& meta_;
  const std::vector<ArenaView>& arenas_;
  std::uint64_t shm_bytes_ = 0;
};

std::string handle_reduce_task(WorkerState& st, BufReader& r,
                               std::vector<int>& fds) {
  WorkerJob& job = require_job(st);
  const TaskIndex task = r.get_u32();
  r.get_u32();  // attempt
  const NodeId node = r.get_u32();
  const std::string tag(r.get_bytes());
  const std::uint32_t num_map_tasks = r.get_u32();
  std::vector<NodeId> map_nodes(num_map_tasks);
  for (std::uint32_t m = 0; m < num_map_tasks; ++m) {
    map_nodes[m] = r.get_u32();
  }
  const std::vector<PartitionMeta> meta = get_meta(r);
  const std::uint32_t num_drops = r.get_u32();
  std::vector<std::uint8_t> drop_now(num_drops);
  for (std::uint32_t m = 0; m < num_drops; ++m) drop_now[m] = r.get_u8();
  PAIRMR_CHECK(meta.size() == num_map_tasks && num_drops == num_map_tasks,
               "reduce task descriptor is inconsistent");

  // Shm section: which map tasks shipped an arena fd with this frame.
  // Every fd is mapped (or rejected as garbled, falling back to the
  // socket plane for that map task) and closed here — the mapping alone
  // pins the memfd.
  std::vector<ArenaView> arenas(num_map_tasks);
  const bool shm = r.get_u8() != 0;
  if (shm) {
    const std::uint32_t nfds = r.get_u32();
    require_fd_count(fds, nfds, "kReduceTask", "coordinator");
    std::size_t next = 0;
    for (std::uint32_t m = 0; m < num_map_tasks; ++m) {
      if (r.get_u8() == 0) continue;
      const std::uint64_t alen = r.get_u64();
      if (next >= fds.size()) {
        close_fds(fds);
        throw ProtocolError(
            "kReduceTask arena flags outnumber the shipped fds");
      }
      arenas[m] = open_arena(fds[next++], alen, job.env.num_reducers);
    }
    close_fds(fds);
  } else {
    require_fd_count(fds, 0, "kReduceTask", "coordinator");
  }

  TaskEnv env = job.env;
  TraceSession ts(job.traced);
  if (ts.tracer != nullptr) env.tracer = ts.tracer.get();
  WorkerSource source(st, job, map_nodes, meta, arenas);
  ReduceExecution ex = execute_reduce_attempt(env, task, node, ts.root, tag,
                                              source, map_nodes, meta,
                                              drop_now);
  if (source.shm_bytes() > 0) {
    ex.counters->add(counter::kShuffleShmBytes, source.shm_bytes());
  }

  BufWriter w;
  w.put_u64(ex.groups);
  w.put_u64(ex.max_group_records);
  w.put_u64(ex.max_group_bytes);
  w.put_u64(ex.ctx->bytes_emitted());
  put_counters(w, *ex.counters);
  put_records(w, ex.ctx->output());
  ts.ship(w);
  return std::move(w).str();
}

void serve_shuffle_connection(WorkerState& st, int fd) {
  set_recv_timeout(fd, 10);
  std::string payload;
  const FrameType t = recv_frame(fd, payload, "shuffle peer");
  if (t != FrameType::kFetch) {
    throw ProtocolError("shuffle server expected a fetch frame");
  }
  BufReader r(payload);
  const TaskIndex m = r.get_u32();
  const TaskIndex red = r.get_u32();
  BufWriter w;
  {
    const std::lock_guard<std::mutex> lock(st.mutex);
    if (st.job == nullptr || m >= st.has_published.size() ||
        st.has_published[m] == 0) {
      send_frame(fd, FrameType::kNotReady, std::string());
      return;
    }
    PAIRMR_CHECK(red < st.published[m].size(),
                 "shuffle fetch of an out-of-range partition");
    put_partition(w, st.published[m][red], st.job->env.spill_mode);
  }
  send_frame(fd, FrameType::kPartition, w.str());
}

void shuffle_server_main(WorkerState* st, int listen_fd) {
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;
    }
    try {
      serve_shuffle_connection(*st, fd);
    } catch (...) {
      // A garbled or abandoned fetch poisons only its own connection.
    }
    ::close(fd);
  }
}

void send_err(int ctrl, ErrKind kind, const char* what) {
  send_frame(ctrl, FrameType::kErr, make_err_payload(kind, what));
}

void worker_main(NodeId node, const std::string& session_dir) {
  die_with_parent();
  std::signal(SIGPIPE, SIG_IGN);

  // Workers start jobless; every job arrives as a kBeginJob frame.
  WorkerState st;
  st.node = node;
  st.session_dir = session_dir;

  // Shuffle plane first, so peers retrying a fetch find the socket as
  // soon as the coordinator learns this worker exists.
  const int shuffle_fd = uds_listen(shuffle_sock_path(session_dir, node));
  std::thread server(
      [&st, shuffle_fd] { shuffle_server_main(&st, shuffle_fd); });
  server.detach();

  int ctrl = -1;
  for (int i = 0; i < 5000 && ctrl < 0; ++i) {
    ctrl = uds_connect(ctrl_sock_path(session_dir));
    if (ctrl < 0) std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  if (ctrl < 0) std::_Exit(1);
  {
    BufWriter w;
    w.put_u32(node);
    w.put_u32(static_cast<std::uint32_t>(::getpid()));
    send_frame(ctrl, FrameType::kHello, w.str());
  }

  for (;;) {
    std::string payload;
    std::vector<int> fds;
    FrameType t;
    try {
      t = recv_frame_with_fds(ctrl, payload, fds, "coordinator");
    } catch (const ProtocolError&) {
      std::_Exit(1);  // coordinator gone; PDEATHSIG normally beat us here
    }
    try {
      BufReader r(payload);
      switch (t) {
        case FrameType::kBeginJob:
          handle_begin_job(st, r);
          send_frame(ctrl, FrameType::kOk, std::string());
          break;
        case FrameType::kEndJob:
          handle_end_job(st);
          send_frame(ctrl, FrameType::kOk, std::string());
          break;
        case FrameType::kMapTask:
          send_frame(ctrl, FrameType::kMapDone, handle_map_task(st, r));
          break;
        case FrameType::kPublish:
          handle_publish(st, r, ctrl);
          break;
        case FrameType::kReduceTask:
          send_frame(ctrl, FrameType::kReduceDone,
                     handle_reduce_task(st, r, fds));
          break;
        case FrameType::kDiscardMap: {
          WorkerJob& job = require_job(st);
          const TaskIndex task = r.get_u32();
          const std::string tag(r.get_bytes());
          {
            const std::lock_guard<std::mutex> lock(st.mutex);
            st.staged[task].erase(tag);
          }
          if (job.env.spill_mode) {
            job.env.dfs->remove_prefix(job.env.scratch_root + tag + "/");
          }
          send_frame(ctrl, FrameType::kOk, std::string());
          break;
        }
        case FrameType::kDiscardReduce: {
          WorkerJob& job = require_job(st);
          const std::string tag(r.get_bytes());
          if (job.env.spill_mode) {
            job.env.dfs->remove_prefix(job.env.scratch_root + tag + "/");
          }
          send_frame(ctrl, FrameType::kOk, std::string());
          break;
        }
        case FrameType::kRelease: {
          require_job(st);
          const TaskIndex red = r.get_u32();
          const std::lock_guard<std::mutex> lock(st.mutex);
          for (auto& parts : st.published) {
            if (red < parts.size()) parts[red].release();
          }
          send_frame(ctrl, FrameType::kOk, std::string());
          break;
        }
        case FrameType::kDie: {
          const auto kind = static_cast<TaskKind>(r.get_u8());
          const TaskIndex task = r.get_u32();
          PAIRMR_LOG(kWarn)
              << "worker " << node << " (pid " << ::getpid()
              << ") killed by fault plan mid-"
              << (kind == TaskKind::kMap ? "map" : "reduce") << " task "
              << task;
          ::raise(SIGKILL);
          std::_Exit(1);  // unreachable
        }
        case FrameType::kShutdown:
          send_frame(ctrl, FrameType::kOk, std::string());
          std::_Exit(0);
        default:
          throw ProtocolError("worker received unexpected frame type " +
                              std::to_string(static_cast<std::uint32_t>(t)));
      }
      close_fds(fds);  // fds riding an unexpected frame must not leak
    } catch (const ProtocolError& e) {
      close_fds(fds);
      send_err(ctrl, ErrKind::kProtocol, e.what());
    } catch (const PreconditionError& e) {
      close_fds(fds);
      send_err(ctrl, ErrKind::kPrecondition, e.what());
    } catch (const InternalError& e) {
      close_fds(fds);
      send_err(ctrl, ErrKind::kInternal, e.what());
    } catch (const std::exception& e) {
      close_fds(fds);
      send_err(ctrl, ErrKind::kRuntime, e.what());
    }
  }
}

// ======================= forker process ===============================

// Single-threaded fork server: forked from the coordinator when the pool
// starts (pool threads idle — a fork-safe point), so every worker it
// forks sees the address space frozen at that moment, including respawns
// long after the coordinator's threads went back to work. Job context
// never rides the fork image — workers receive it over the control
// channel (kBeginJob) — so one forker serves every job of a persistent
// pool. Reaps every worker it forked; the coordinator reaps only the
// forker, so no zombie can outlive the backend.
[[noreturn]] void forker_main(const std::string& session_dir,
                              std::uint32_t num_nodes, int cmd_fd, int ack_fd,
                              int ctrl_listen_fd) {
  die_with_parent();
  std::signal(SIGPIPE, SIG_IGN);
  ::close(ctrl_listen_fd);

  std::vector<pid_t> pids(num_nodes, -1);
  for (;;) {
    char cmd = 0;
    if (!read_exact(cmd_fd, &cmd, 1) || cmd == 'Q') break;
    std::uint32_t node = 0;
    if (cmd != 'S' || !read_exact(cmd_fd, &node, sizeof(node)) ||
        node >= num_nodes) {
      break;
    }
    if (pids[node] > 0) {
      // Respawn: the previous worker was SIGKILLed; reap it first.
      int status = 0;
      ::waitpid(pids[node], &status, 0);
      pids[node] = -1;
    }
    const pid_t pid = ::fork();
    if (pid == 0) {
      ::close(cmd_fd);
      ::close(ack_fd);
      worker_main(node, session_dir);
      std::_Exit(1);  // unreachable: worker_main only leaves via _Exit
    }
    if (pid < 0) break;
    pids[node] = pid;
    const auto upid = static_cast<std::uint32_t>(pid);
    char ack = 'A';
    if (!write_exact(ack_fd, &ack, 1) ||
        !write_exact(ack_fd, &upid, sizeof(upid))) {
      break;
    }
  }
  for (std::uint32_t nd = 0; nd < num_nodes; ++nd) {
    if (pids[nd] > 0) {
      ::kill(pids[nd], SIGKILL);
      int status = 0;
      ::waitpid(pids[nd], &status, 0);
    }
  }
  std::_Exit(0);
}

}  // namespace

// ======================= coordinator side =============================

ForkBackend::~ForkBackend() {
  end_job();   // non-persistent: full teardown; persistent: soft end
  teardown();  // persistent pool (or a failed soft end): everything down
}

void ForkBackend::begin_job(const JobContext& jc) {
#ifdef PAIRMR_HAS_TSAN
  PAIRMR_REQUIRE(false,
                 "the fork backend is incompatible with ThreadSanitizer "
                 "(forking a multithreaded sanitized process deadlocks); "
                 "use the in-process backend");
#endif
  PAIRMR_CHECK(jc_ == nullptr, "fork backend already has a job in progress");
  // Writes to the forker command pipe must surface as errors, not a
  // process-killing SIGPIPE (socket sends already use MSG_NOSIGNAL).
  std::signal(SIGPIPE, SIG_IGN);
  jc_ = &jc;
  published_meta_.assign(jc.splits->size(), {});
  {
    const std::lock_guard<std::mutex> lock(arenas_mutex_);
    for (ArenaRef& a : arenas_) {
      if (a.fd >= 0) ::close(a.fd);
    }
    arenas_.assign(jc.splits->size(), ArenaRef{});
  }

  if (!session_dir_.empty()) {
    // Persistent pool: the processes are already up. Ship the new job
    // context instead of re-forking; retire workers on nodes that died
    // in an earlier job; respawn any slot that lost its process.
    PAIRMR_CHECK(slots_.size() == jc.num_nodes,
                 "persistent fork pool reused across clusters of "
                 "different sizes");
    const std::string payload = begin_job_payload();
    for (NodeId nd = 0; nd < jc.num_nodes; ++nd) {
      WorkerSlot& slot = *slots_[nd];
      const std::lock_guard<std::mutex> lock(slot.mutex);
      slot.published.clear();
      if (jc.node_alive[nd] == 0) {
        if (slot.alive && slot.fd >= 0) {
          // The simulated node is gone for good; its worker follows.
          try {
            send_frame(slot.fd, FrameType::kShutdown, std::string());
            std::string resp;
            recv_frame(slot.fd, resp, "worker");
          } catch (const ProtocolError&) {
          }
          ::close(slot.fd);
          slot.fd = -1;
          slot.alive = false;
          slot.pid = 0;
        }
        continue;
      }
      if (!slot.alive) {
        spawn_worker_locked(slot, nd);  // ships kBeginJob itself
        continue;
      }
      std::string resp;
      const FrameType t =
          roundtrip_locked(slot, nd, FrameType::kBeginJob, payload, resp);
      PAIRMR_CHECK(t == FrameType::kOk, "unexpected reply to a job begin");
      ++workers_reused_;
    }
    return;
  }

  // Cold start. Sockets live under a fresh tmpdir: sun_path caps UDS
  // paths at ~100 chars, so the build tree is not a safe home for them.
  char tmpl[] = "/tmp/pairmr-XXXXXX";
  PAIRMR_CHECK(::mkdtemp(tmpl) != nullptr,
               std::string("mkdtemp failed: ") + std::strerror(errno));
  session_dir_ = tmpl;
  ctrl_listen_fd_ = uds_listen(ctrl_sock_path(session_dir_));

  int cmd[2];
  int ack[2];
  PAIRMR_CHECK(::pipe(cmd) == 0 && ::pipe(ack) == 0,
               std::string("pipe failed: ") + std::strerror(errno));
  const pid_t pid = ::fork();
  PAIRMR_CHECK(pid >= 0, std::string("fork failed: ") + std::strerror(errno));
  if (pid == 0) {
    ::close(cmd[1]);
    ::close(ack[0]);
    forker_main(session_dir_, jc.num_nodes, cmd[0], ack[1], ctrl_listen_fd_);
  }
  ::close(cmd[0]);
  ::close(ack[1]);
  forker_pid_ = pid;
  forker_cmd_fd_ = cmd[1];
  forker_ack_fd_ = ack[0];

  slots_.clear();
  for (std::uint32_t nd = 0; nd < jc.num_nodes; ++nd) {
    slots_.push_back(std::make_unique<WorkerSlot>());
  }
  for (NodeId nd = 0; nd < jc.num_nodes; ++nd) {
    if (jc.node_alive[nd] == 0) continue;  // lost in an earlier job
    const std::lock_guard<std::mutex> lock(slots_[nd]->mutex);
    spawn_worker_locked(*slots_[nd], nd);
  }
}

void ForkBackend::end_job() {
  if (jc_ == nullptr) return;
  if (!persistent_) {
    teardown();
    return;
  }
  // Soft end: workers drop their job state and stay warm for the next
  // begin_job. A worker that cannot acknowledge poisons the pool — fall
  // back to a full teardown so the next job gets a fresh fork.
  bool poisoned = false;
  for (auto& slot_ptr : slots_) {
    WorkerSlot& slot = *slot_ptr;
    const std::lock_guard<std::mutex> lock(slot.mutex);
    slot.published.clear();
    if (!slot.alive || slot.fd < 0) continue;
    try {
      send_frame(slot.fd, FrameType::kEndJob, std::string());
      std::string resp;
      if (recv_frame(slot.fd, resp, "worker") != FrameType::kOk) {
        poisoned = true;
      }
    } catch (const ProtocolError&) {
      poisoned = true;
    }
  }
  close_arenas();
  published_meta_.clear();
  jc_ = nullptr;
  if (poisoned) teardown();
}

void ForkBackend::teardown() {
  close_arenas();
  for (auto& slot_ptr : slots_) {
    WorkerSlot& slot = *slot_ptr;
    const std::lock_guard<std::mutex> lock(slot.mutex);
    if (slot.fd >= 0) {
      try {
        send_frame(slot.fd, FrameType::kShutdown, std::string());
        std::string resp;
        recv_frame(slot.fd, resp, "worker");
      } catch (const ProtocolError&) {
        // Already dead; the forker reaps it regardless.
      }
      ::close(slot.fd);
      slot.fd = -1;
    }
    slot.alive = false;
  }
  {
    const std::lock_guard<std::mutex> lock(accept_mutex_);
    for (auto& [node, entry] : hello_stash_) ::close(entry.first);
    hello_stash_.clear();
  }
  {
    const std::lock_guard<std::mutex> lock(forker_mutex_);
    if (forker_cmd_fd_ >= 0) {
      const char quit = 'Q';
      (void)write_exact(forker_cmd_fd_, &quit, 1);
      ::close(forker_cmd_fd_);
      forker_cmd_fd_ = -1;
    }
    if (forker_ack_fd_ >= 0) {
      ::close(forker_ack_fd_);
      forker_ack_fd_ = -1;
    }
    if (forker_pid_ > 0) {
      // The forker SIGKILLs and reaps every worker before exiting, so
      // this single wait leaves no child process behind.
      int status = 0;
      ::waitpid(forker_pid_, &status, 0);
      forker_pid_ = -1;
    }
  }
  if (ctrl_listen_fd_ >= 0) {
    ::close(ctrl_listen_fd_);
    ctrl_listen_fd_ = -1;
  }
  if (!session_dir_.empty()) {
    ::unlink(ctrl_sock_path(session_dir_).c_str());
    for (std::uint32_t nd = 0; nd < slots_.size(); ++nd) {
      ::unlink(shuffle_sock_path(session_dir_, nd).c_str());
    }
    ::rmdir(session_dir_.c_str());
    session_dir_.clear();
  }
  slots_.clear();
  published_meta_.clear();
  jc_ = nullptr;
}

void ForkBackend::close_arenas() {
  const std::lock_guard<std::mutex> lock(arenas_mutex_);
  for (ArenaRef& a : arenas_) {
    if (a.fd >= 0) ::close(a.fd);
    a = ArenaRef{};
  }
}

std::size_t ForkBackend::open_arena_count() const {
  const std::lock_guard<std::mutex> lock(arenas_mutex_);
  std::size_t n = 0;
  for (const ArenaRef& a : arenas_) {
    if (a.fd >= 0) ++n;
  }
  return n;
}

std::string ForkBackend::begin_job_payload() const {
  const JobContext& jc = *jc_;
  BufWriter w;
  // The one by-address field: valid in the worker iff the spec predates
  // the pool's fork (the copy-on-write contract in fork.hpp).
  w.put_u64(
      static_cast<std::uint64_t>(reinterpret_cast<std::uintptr_t>(jc.spec)));
  w.put_u32(static_cast<std::uint32_t>(jc.splits->size()));
  w.put_u32(jc.env.num_reducers);
  w.put_u32(jc.num_nodes);
  w.put_u64(jc.env.budget.bytes);
  w.put_u32(jc.env.budget.merge_fan_in);
  w.put_u8(jc.env.spill_mode ? 1 : 0);
  w.put_u8(jc.env.movable_shuffle ? 1 : 0);
  w.put_u8(jc.env.tracer != nullptr ? 1 : 0);
  w.put_u8(static_cast<std::uint8_t>(jc.shuffle_plane));
  w.put_bytes(jc.env.scratch_root);
  // Distributed cache, shipped by value in sorted-path order (the
  // coordinator's map iterates in unspecified order).
  std::vector<std::string> paths;
  paths.reserve(jc.env.cache->size());
  for (const auto& [path, file] : *jc.env.cache) paths.push_back(path);
  std::sort(paths.begin(), paths.end());
  w.put_u32(static_cast<std::uint32_t>(paths.size()));
  for (const std::string& path : paths) {
    const auto& file = jc.env.cache->at(path);
    w.put_bytes(path);
    w.put_u32(file->home);
    put_records(w, file->records);
  }
  return std::move(w).str();
}

void ForkBackend::append_split(BufWriter& w, TaskIndex task) const {
  const Split& split = (*jc_->splits)[task];
  w.put_bytes(split.file->path);
  w.put_u32(static_cast<std::uint32_t>(split.end - split.begin));
  for (std::size_t i = split.begin; i < split.end; ++i) {
    const Record& rec = split.file->records[i];
    w.put_bytes(rec.key);
    w.put_bytes(rec.value);
  }
}

void ForkBackend::spawn_worker_locked(WorkerSlot& slot, NodeId node) {
  {
    const std::lock_guard<std::mutex> lock(forker_mutex_);
    const char spawn = 'S';
    PAIRMR_CHECK(write_exact(forker_cmd_fd_, &spawn, 1) &&
                     write_exact(forker_cmd_fd_, &node, sizeof(node)),
                 "fork server is gone; cannot spawn worker " +
                     std::to_string(node));
    char ack = 0;
    std::uint32_t pid = 0;
    PAIRMR_CHECK(read_exact(forker_ack_fd_, &ack, 1) && ack == 'A' &&
                     read_exact(forker_ack_fd_, &pid, sizeof(pid)),
                 "fork server failed to spawn worker " + std::to_string(node));
  }
  accept_worker(node, slot);
  slot.alive = true;
  ++workers_forked_;
  if (jc_ != nullptr) {
    // Fresh process, current job: ship the context it did not inherit.
    std::string resp;
    const FrameType t = roundtrip_locked(slot, node, FrameType::kBeginJob,
                                         begin_job_payload(), resp);
    PAIRMR_CHECK(t == FrameType::kOk, "unexpected reply to a job begin");
  }
}

void ForkBackend::accept_worker(NodeId node, WorkerSlot& slot) {
  const std::lock_guard<std::mutex> lock(accept_mutex_);
  const auto it = hello_stash_.find(node);
  if (it != hello_stash_.end()) {
    slot.fd = it->second.first;
    slot.pid = it->second.second;
    hello_stash_.erase(it);
    return;
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  for (;;) {
    PAIRMR_CHECK(std::chrono::steady_clock::now() < deadline,
                 "timed out waiting for worker " + std::to_string(node) +
                     " to say hello");
    pollfd p{ctrl_listen_fd_, POLLIN, 0};
    const int pr = ::poll(&p, 1, 1000);
    if (pr <= 0) continue;
    const int fd = ::accept(ctrl_listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    // Generous ceiling: a wedged worker surfaces as a ProtocolError on
    // the coordinator, never a hang.
    set_recv_timeout(fd, 120);
    std::string payload;
    FrameType t;
    try {
      t = recv_frame(fd, payload, "worker");
    } catch (const ProtocolError&) {
      ::close(fd);
      continue;
    }
    if (t != FrameType::kHello) {
      ::close(fd);
      continue;
    }
    BufReader r(payload);
    const std::uint32_t who = r.get_u32();
    const std::uint32_t wpid = r.get_u32();
    if (who == node) {
      slot.fd = fd;
      slot.pid = wpid;
      return;
    }
    hello_stash_[who] = {fd, wpid};
  }
}

FrameType ForkBackend::roundtrip(NodeId node, FrameType type,
                                 const std::string& payload,
                                 std::string& response,
                                 const std::vector<int>* send_fds,
                                 std::vector<int>* recv_fds) {
  PAIRMR_CHECK(node < slots_.size(), "task dispatched to an unknown node");
  WorkerSlot& slot = *slots_[node];
  const std::lock_guard<std::mutex> lock(slot.mutex);
  return roundtrip_locked(slot, node, type, payload, response, send_fds,
                          recv_fds);
}

FrameType ForkBackend::roundtrip_locked(WorkerSlot& slot, NodeId node,
                                        FrameType type,
                                        const std::string& payload,
                                        std::string& response,
                                        const std::vector<int>* send_fds,
                                        std::vector<int>* recv_fds) {
  PAIRMR_CHECK(slot.alive && slot.fd >= 0,
               "no live worker process for node " + std::to_string(node));
  const std::string who = "worker " + std::to_string(node);
  if (send_fds != nullptr && !send_fds->empty()) {
    send_frame_with_fds(slot.fd, type, payload, *send_fds);
  } else {
    send_frame(slot.fd, type, payload);
  }
  const FrameType t =
      recv_fds != nullptr
          ? recv_frame_with_fds(slot.fd, response, *recv_fds, who.c_str())
          : recv_frame(slot.fd, response, who.c_str());
  if (t == FrameType::kErr) {
    if (recv_fds != nullptr) close_fds(*recv_fds);
    throw_worker_error(response, node);
  }
  return t;
}

void ForkBackend::throw_worker_error(const std::string& payload, NodeId node) {
  rethrow_shipped_error(payload, "worker " + std::to_string(node));
}

void ForkBackend::replay_spans(SpanId root, const std::vector<Span>& spans) {
  Tracer* const tracer = jc_->env.tracer;
  if (tracer == nullptr || root == 0 || spans.empty()) return;
  // Shipped in id order, so a span's parent always precedes it; the
  // worker's local root span (id 1) maps onto the coordinator-side span.
  std::unordered_map<std::uint64_t, SpanId> ids;
  ids.emplace(1, root);
  for (const Span& s : spans) {
    const auto it = ids.find(s.parent);
    PAIRMR_CHECK(it != ids.end(), "worker span arrived before its parent");
    ids.emplace(s.id, tracer->import_span(it->second, s));
  }
}

MapAttemptOutcome ForkBackend::run_map_attempt(const MapAttemptDesc& desc) {
  BufWriter w;
  w.put_u32(desc.task);
  w.put_u32(desc.attempt);
  w.put_u32(desc.node);
  w.put_bytes(desc.tag);
  w.put_u8(0);  // not a regeneration
  append_split(w, desc.task);
  std::string resp;
  const FrameType t = roundtrip(desc.node, FrameType::kMapTask, w.str(), resp);
  PAIRMR_CHECK(t == FrameType::kMapDone, "unexpected reply to a map task");
  BufReader r(resp);
  MapAttemptOutcome out;
  out.records_emitted = r.get_u64();
  out.bytes_emitted = r.get_u64();
  replay_spans(desc.attempt_span, get_spans(r));
  return out;
}

void ForkBackend::settle_publish(TaskIndex task, FrameType type,
                                 const std::string& resp,
                                 std::vector<int>& fds, SpanId kept_span,
                                 MapPublishOutcome& out) {
  BufReader r(resp);
  out.meta = get_meta(r);
  out.counters = std::make_unique<Counters>();
  get_counters(r, *out.counters);
  out.map_only_output = get_records(r);
  const std::vector<Span> spans = get_spans(r);
  if (type == FrameType::kPublishDoneShm) {
    const std::uint64_t len = r.get_u64();
    const std::uint32_t nfds = r.get_u32();
    require_fd_count(fds, nfds, "kPublishDoneShm", "worker");
    if (nfds != 1) {
      close_fds(fds);
      throw ProtocolError(
          "kPublishDoneShm must carry exactly one arena fd, got " +
          std::to_string(nfds));
    }
    // A regenerated publish replaces the dead worker's arena; reducers
    // still mapping the old one keep it alive through the kernel.
    const std::lock_guard<std::mutex> lock(arenas_mutex_);
    ArenaRef& a = arenas_[task];
    if (a.fd >= 0) ::close(a.fd);
    a.fd = fds[0];
    a.len = len;
    fds.clear();
  } else {
    require_fd_count(fds, 0, "kPublishDone", "worker");
  }
  replay_spans(kept_span, spans);
}

MapPublishOutcome ForkBackend::publish_map_output(TaskIndex task,
                                                  const std::string& tag,
                                                  NodeId node,
                                                  SpanId kept_span) {
  BufWriter w;
  w.put_u32(task);
  w.put_bytes(tag);
  w.put_u32(node);
  w.put_u8(0);  // not a regeneration
  std::string resp;
  std::vector<int> fds;
  FrameType t;
  WorkerSlot& slot = *slots_[node];
  {
    const std::lock_guard<std::mutex> lock(slot.mutex);
    t = roundtrip_locked(slot, node, FrameType::kPublish, w.str(), resp,
                         nullptr, &fds);
    PAIRMR_CHECK(
        t == FrameType::kPublishDone || t == FrameType::kPublishDoneShm,
        "unexpected reply to a map publish");
    // Record what this worker now serves, for regeneration after a crash
    // (map-only outputs live coordinator-side; nothing to re-serve).
    if (!jc_->spec->map_only) slot.published.emplace_back(task, tag);
  }
  MapPublishOutcome out;
  settle_publish(task, t, resp, fds, kept_span, out);
  if (!jc_->spec->map_only) {
    const std::lock_guard<std::mutex> lock(published_meta_mutex_);
    published_meta_[task] = out.meta;
  }
  return out;
}

void ForkBackend::discard_map_attempt(TaskIndex task, const std::string& tag,
                                      NodeId node) {
  BufWriter w;
  w.put_u32(task);
  w.put_bytes(tag);
  std::string resp;
  const FrameType t = roundtrip(node, FrameType::kDiscardMap, w.str(), resp);
  PAIRMR_CHECK(t == FrameType::kOk, "unexpected reply to a map discard");
}

ReduceAttemptOutcome ForkBackend::run_reduce_attempt(
    const ReduceAttemptDesc& desc) {
  BufWriter w;
  w.put_u32(desc.task);
  w.put_u32(desc.attempt);
  w.put_u32(desc.node);
  w.put_bytes(desc.tag);
  w.put_u32(static_cast<std::uint32_t>(desc.map_nodes.size()));
  for (const NodeId nd : desc.map_nodes) w.put_u32(nd);
  put_meta(w, desc.meta);
  w.put_u32(static_cast<std::uint32_t>(desc.drop_now.size()));
  for (const std::uint8_t d : desc.drop_now) w.put_u8(d);

  // Shm section: ship the arena fd of every *remote* published map task,
  // in ascending map order, capped at kMaxFdsPerFrame per frame (excess
  // partitions ride the socket plane — deterministically, since arenas
  // settle before the reduce phase starts). The fds are dup()ed under
  // the arenas lock so a concurrent regeneration swap cannot close them
  // mid-send.
  std::vector<int> dup_fds;
  struct DupCloser {
    std::vector<int>& fds;
    ~DupCloser() { close_fds(fds); }
  } dup_closer{dup_fds};
  const bool shm =
      jc_->shuffle_plane == ShufflePlane::kShm && !jc_->spec->map_only;
  w.put_u8(shm ? 1 : 0);
  if (shm) {
    std::vector<std::pair<std::uint8_t, std::uint64_t>> flags(
        desc.map_nodes.size(), {0, 0});
    {
      const std::lock_guard<std::mutex> lock(arenas_mutex_);
      for (std::size_t m = 0; m < desc.map_nodes.size(); ++m) {
        if (desc.map_nodes[m] == desc.node) continue;  // local fetch
        const ArenaRef& a = arenas_[m];
        if (a.fd < 0) continue;  // never published via shm: socket plane
        if (dup_fds.size() >= kMaxFdsPerFrame) break;
        const int dup = ::dup(a.fd);
        if (dup < 0) continue;
        dup_fds.push_back(dup);
        flags[m] = {1, a.len};
      }
    }
    w.put_u32(static_cast<std::uint32_t>(dup_fds.size()));
    for (const auto& [has, len] : flags) {
      w.put_u8(has);
      if (has != 0) w.put_u64(len);
    }
  }

  std::string resp;
  const FrameType t = roundtrip(desc.node, FrameType::kReduceTask, w.str(),
                                resp, dup_fds.empty() ? nullptr : &dup_fds);
  PAIRMR_CHECK(t == FrameType::kReduceDone,
               "unexpected reply to a reduce task");
  BufReader r(resp);
  ReduceAttemptOutcome out;
  out.groups = r.get_u64();
  out.max_group_records = r.get_u64();
  out.max_group_bytes = r.get_u64();
  out.bytes_emitted = r.get_u64();
  out.counters = std::make_unique<Counters>();
  get_counters(r, *out.counters);
  out.output = get_records(r);
  replay_spans(desc.attempt_span, get_spans(r));
  return out;
}

void ForkBackend::discard_reduce_scratch(const std::string& tag, NodeId node) {
  BufWriter w;
  w.put_bytes(tag);
  std::string resp;
  const FrameType t = roundtrip(node, FrameType::kDiscardReduce, w.str(), resp);
  PAIRMR_CHECK(t == FrameType::kOk, "unexpected reply to a reduce discard");
}

void ForkBackend::release_reduce_input(TaskIndex reduce_task) {
  BufWriter w;
  w.put_u32(reduce_task);
  for (std::uint32_t nd = 0; nd < slots_.size(); ++nd) {
    WorkerSlot& slot = *slots_[nd];
    const std::lock_guard<std::mutex> lock(slot.mutex);
    if (!slot.alive) continue;  // node lost before this job started
    std::string resp;
    const FrameType t =
        roundtrip_locked(slot, nd, FrameType::kRelease, w.str(), resp);
    PAIRMR_CHECK(t == FrameType::kOk, "unexpected reply to a release");
  }
}

void ForkBackend::crash_worker(NodeId node, TaskKind kind, TaskIndex task) {
  WorkerSlot& slot = *slots_[node];
  // The slot mutex waits out any in-flight control exchange, so the kill
  // lands between requests and no other task's roundtrip is cut short;
  // in-flight *shuffle* fetches from this worker ride the peers' retry
  // loops until the respawned worker serves the regenerated partitions.
  const std::lock_guard<std::mutex> lock(slot.mutex);
  PAIRMR_CHECK(slot.alive && slot.fd >= 0,
               "fault plan kills a worker that is not running");
  BufWriter w;
  w.put_u8(static_cast<std::uint8_t>(kind));
  w.put_u32(task);
  bool died = false;
  try {
    send_frame(slot.fd, FrameType::kDie, w.str());
    std::string resp;
    recv_frame(slot.fd, resp, "dying worker");
  } catch (const ProtocolError&) {
    died = true;  // SIGKILL closed the control socket — the expected end
  }
  PAIRMR_CHECK(died, "worker survived a kill order");
  ::close(slot.fd);
  slot.fd = -1;
  slot.alive = false;
  slot.pid = 0;
  spawn_worker_locked(slot, node);
  regenerate_published_locked(slot, node);
}

void ForkBackend::regenerate_published_locked(WorkerSlot& slot, NodeId node) {
  for (const auto& [task, tag] : slot.published) {
    {
      BufWriter w;
      w.put_u32(task);
      w.put_u32(0);  // attempt: unused by regeneration
      w.put_u32(node);
      w.put_bytes(tag);
      w.put_u8(1);  // regeneration: untraced, counters dropped
      append_split(w, task);
      std::string resp;
      const FrameType t =
          roundtrip_locked(slot, node, FrameType::kMapTask, w.str(), resp);
      PAIRMR_CHECK(t == FrameType::kMapDone,
                   "unexpected reply to a regeneration map task");
    }
    {
      BufWriter w;
      w.put_u32(task);
      w.put_bytes(tag);
      w.put_u32(node);
      w.put_u8(1);
      std::string resp;
      std::vector<int> fds;
      const FrameType t = roundtrip_locked(slot, node, FrameType::kPublish,
                                           w.str(), resp, nullptr, &fds);
      PAIRMR_CHECK(
          t == FrameType::kPublishDone || t == FrameType::kPublishDoneShm,
          "unexpected reply to a regeneration publish");
      MapPublishOutcome out;
      settle_publish(task, t, resp, fds, /*kept_span=*/0, out);
      const std::lock_guard<std::mutex> lock(published_meta_mutex_);
      PAIRMR_CHECK(out.meta == published_meta_[task],
                   "regenerated map output diverged from the original "
                   "publish");
    }
  }
  if (!slot.published.empty()) {
    PAIRMR_LOG(kWarn) << "respawned worker " << node << " (pid " << slot.pid
                      << ") regenerated " << slot.published.size()
                      << " published map output(s)";
  }
}

}  // namespace pairmr::mr::backend
