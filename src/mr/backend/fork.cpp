#include "mr/backend/fork.hpp"

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include <poll.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>
#ifdef __linux__
#include <sys/prctl.h>
#endif

#include "common/check.hpp"
#include "common/log.hpp"

#if defined(__SANITIZE_THREAD__)
#define PAIRMR_HAS_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define PAIRMR_HAS_TSAN 1
#endif
#endif

namespace pairmr::mr::backend {

namespace {

std::string ctrl_sock_path(const std::string& dir) { return dir + "/ctrl.sock"; }

std::string shuffle_sock_path(const std::string& dir, NodeId node) {
  return dir + "/shuf-" + std::to_string(node) + ".sock";
}

// Die alongside the parent even if it is SIGKILLed (coordinator -> forker
// -> worker chain), so a crashed test never strands worker processes.
void die_with_parent() {
#ifdef __linux__
  ::prctl(PR_SET_PDEATHSIG, SIGKILL);
#endif
}

bool write_exact(int fd, const void* buf, std::size_t len) {
  const char* p = static_cast<const char*>(buf);
  std::size_t done = 0;
  while (done < len) {
    const ssize_t n = ::write(fd, p + done, len - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<std::size_t>(n);
  }
  return true;
}

bool read_exact(int fd, void* buf, std::size_t len) {
  char* p = static_cast<char*>(buf);
  std::size_t done = 0;
  while (done < len) {
    const ssize_t n = ::read(fd, p + done, len - done);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    done += static_cast<std::size_t>(n);
  }
  return true;
}

struct FdCloser {
  int fd = -1;
  ~FdCloser() {
    if (fd >= 0) ::close(fd);
  }
};

void put_meta(BufWriter& w, const std::vector<PartitionMeta>& meta) {
  w.put_u32(static_cast<std::uint32_t>(meta.size()));
  for (const PartitionMeta& m : meta) {
    w.put_u64(m.bytes);
    w.put_u64(m.records);
  }
}

std::vector<PartitionMeta> get_meta(BufReader& r) {
  const std::uint32_t n = r.get_u32();
  std::vector<PartitionMeta> meta(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    meta[i].bytes = r.get_u64();
    meta[i].records = r.get_u64();
  }
  return meta;
}

// One stored partition on the wire, mirroring fetch_from_partition: spill
// mode ships every sorted run in (run age, final last) order, the
// in-memory path ships the raw bucket. Serving never moves records out of
// the store — the serialized copy crosses the socket either way, and the
// store must stay fetchable for re-execution.
void put_partition(BufWriter& w, const MapOutputPartition& part,
                   bool spill_mode) {
  if (spill_mode) {
    w.put_u8(1);
    const auto n = static_cast<std::uint32_t>(part.runs.size() +
                                              (part.final_run.empty() ? 0 : 1));
    w.put_u32(n);
    for (const auto& run : part.runs) put_records(w, run->records);
    if (!part.final_run.empty()) put_records(w, part.final_run);
  } else {
    w.put_u8(0);
    put_records(w, part.final_run);
  }
}

FetchedPartition get_partition(BufReader& r) {
  FetchedPartition out;
  if (r.get_u8() != 0) {
    const std::uint32_t n = r.get_u32();
    out.sources.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      out.sources.push_back(RunSource::from_records(get_records(r)));
    }
  } else {
    out.raw = get_records(r);
  }
  return out;
}

// ======================= worker process ===============================

// One staged map execution. The per-request tracer stays alive with the
// execution: the MapContext holds a pointer to it, and publish reads the
// context's buckets after the request that created them has returned.
struct WorkerStaged {
  MapExecution ex;
  std::unique_ptr<Tracer> tracer;
};

struct WorkerState {
  const JobContext* jc = nullptr;
  NodeId node = 0;
  std::string session_dir;
  // Guards staged/published against the shuffle server thread.
  std::mutex mutex;
  std::vector<std::unordered_map<std::string, WorkerStaged>> staged;
  std::vector<std::vector<MapOutputPartition>> published;
  std::vector<std::uint8_t> has_published;
};

// Worker-side tracing of one request: a fresh Tracer whose root span
// (local id 1) stands in for the coordinator-side attempt span. The
// coordinator maps id 1 back onto the real span when it replays the
// shipped spans (ForkBackend::replay_spans).
struct TraceSession {
  std::unique_ptr<Tracer> tracer;
  SpanId root = 0;

  explicit TraceSession(bool enabled) {
    if (enabled) {
      tracer = std::make_unique<Tracer>();
      root = tracer->begin_job("worker");
    }
  }

  void ship(BufWriter& w) const {
    if (tracer == nullptr) {
      put_spans(w, {});
      return;
    }
    const std::vector<Span> spans = tracer->spans();
    put_spans(w, std::vector<Span>(spans.begin() + 1, spans.end()));
  }
};

std::string handle_map_task(WorkerState& st, BufReader& r) {
  const TaskIndex task = r.get_u32();
  r.get_u32();  // attempt: part of the message for logging symmetry only
  const NodeId node = r.get_u32();
  const std::string tag(r.get_bytes());
  const bool regen = r.get_u8() != 0;
  PAIRMR_CHECK(task < st.jc->splits->size(), "map task index out of range");

  WorkerStaged staged;
  TaskEnv env = st.jc->env;
  env.tracer = nullptr;
  SpanId root = 0;
  // Regenerated executions are deterministic replays of already-accounted
  // work: they run untraced and their counters are dropped coordinator-side.
  if (!regen && st.jc->env.tracer != nullptr) {
    staged.tracer = std::make_unique<Tracer>();
    root = staged.tracer->begin_job("worker");
    env.tracer = staged.tracer.get();
  }
  staged.ex =
      execute_map_attempt(env, (*st.jc->splits)[task], task, node, root, tag);

  BufWriter w;
  w.put_u64(staged.ex.ctx->records_emitted());
  w.put_u64(staged.ex.ctx->bytes_emitted());
  if (staged.tracer != nullptr) {
    const std::vector<Span> spans = staged.tracer->spans();
    put_spans(w, std::vector<Span>(spans.begin() + 1, spans.end()));
  } else {
    put_spans(w, {});
  }
  {
    const std::lock_guard<std::mutex> lock(st.mutex);
    st.staged[task].insert_or_assign(tag, std::move(staged));
  }
  return w.str();
}

std::string handle_publish(WorkerState& st, BufReader& r) {
  const TaskIndex task = r.get_u32();
  const std::string tag(r.get_bytes());
  const NodeId node = r.get_u32();
  const bool regen = r.get_u8() != 0;

  WorkerStaged staged;
  {
    const std::lock_guard<std::mutex> lock(st.mutex);
    const auto it = st.staged[task].find(tag);
    PAIRMR_CHECK(it != st.staged[task].end(),
                 "publish of a map execution that was never staged");
    staged = std::move(it->second);
    st.staged[task].erase(it);
  }
  TaskEnv env = st.jc->env;
  env.tracer = nullptr;
  TraceSession ts(!regen && st.jc->env.tracer != nullptr);
  if (ts.tracer != nullptr) env.tracer = ts.tracer.get();
  FinalizedMapOutput fin =
      finalize_map_output(env, staged.ex, task, node, ts.root);

  BufWriter w;
  put_meta(w, fin.meta);
  put_counters(w, *staged.ex.counters);
  if (st.jc->spec->map_only) {
    PAIRMR_CHECK(fin.partitions.size() == 1 && fin.partitions[0].runs.empty(),
                 "map-only job must have one unspilled bucket");
    put_records(w, fin.partitions[0].final_run);
  } else {
    put_records(w, {});
    const std::lock_guard<std::mutex> lock(st.mutex);
    st.published[task] = std::move(fin.partitions);
    st.has_published[task] = 1;
  }
  ts.ship(w);
  return w.str();
}

// Serves reduce fetches from the worker's own store, or a peer worker's
// shuffle socket. Peer fetches retry through crash windows: a connect
// failure, a mid-serve death, or a kNotReady from a respawned peer whose
// regeneration is still pending all back off and try again.
class WorkerSource final : public PartitionSource {
 public:
  WorkerSource(WorkerState& st, const std::vector<NodeId>& map_nodes)
      : st_(st), map_nodes_(map_nodes) {}

  FetchedPartition fetch(TaskIndex m, TaskIndex r) override {
    const NodeId peer = map_nodes_[m];
    if (peer == st_.node) {
      const std::lock_guard<std::mutex> lock(st_.mutex);
      PAIRMR_CHECK(st_.has_published[m] != 0,
                   "reduce fetch of a local map output that is not published");
      return fetch_from_partition(st_.published[m][r],
                                  st_.jc->env.spill_mode,
                                  st_.jc->env.movable_shuffle);
    }
    return remote_fetch(peer, m, r);
  }

 private:
  FetchedPartition remote_fetch(NodeId peer, TaskIndex m, TaskIndex r) {
    const std::string path = shuffle_sock_path(st_.session_dir, peer);
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    for (;;) {
      FdCloser fd{uds_connect(path)};
      if (fd.fd >= 0) {
        try {
          set_recv_timeout(fd.fd, 30);
          BufWriter w;
          w.put_u32(m);
          w.put_u32(r);
          send_frame(fd.fd, FrameType::kFetch, w.str());
          std::string payload;
          const FrameType t = recv_frame(fd.fd, payload, "shuffle peer");
          if (t == FrameType::kPartition) {
            BufReader rd(payload);
            return get_partition(rd);
          }
          // kNotReady: the peer respawned and its regeneration is pending.
        } catch (const ProtocolError&) {
          // The peer died mid-serve (crash window); its replacement will
          // serve the regenerated partition.
        }
      }
      if (std::chrono::steady_clock::now() >= deadline) {
        throw ProtocolError("shuffle fetch of map " + std::to_string(m) +
                            " partition " + std::to_string(r) +
                            " from node " + std::to_string(peer) +
                            " timed out (peer worker gone for good?)");
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }

  WorkerState& st_;
  const std::vector<NodeId>& map_nodes_;
};

std::string handle_reduce_task(WorkerState& st, BufReader& r) {
  const TaskIndex task = r.get_u32();
  r.get_u32();  // attempt
  const NodeId node = r.get_u32();
  const std::string tag(r.get_bytes());
  const std::uint32_t num_map_tasks = r.get_u32();
  std::vector<NodeId> map_nodes(num_map_tasks);
  for (std::uint32_t m = 0; m < num_map_tasks; ++m) {
    map_nodes[m] = r.get_u32();
  }
  const std::vector<PartitionMeta> meta = get_meta(r);
  const std::uint32_t num_drops = r.get_u32();
  std::vector<std::uint8_t> drop_now(num_drops);
  for (std::uint32_t m = 0; m < num_drops; ++m) drop_now[m] = r.get_u8();
  PAIRMR_CHECK(meta.size() == num_map_tasks && num_drops == num_map_tasks,
               "reduce task descriptor is inconsistent");

  TaskEnv env = st.jc->env;
  env.tracer = nullptr;
  TraceSession ts(st.jc->env.tracer != nullptr);
  if (ts.tracer != nullptr) env.tracer = ts.tracer.get();
  WorkerSource source(st, map_nodes);
  ReduceExecution ex = execute_reduce_attempt(env, task, node, ts.root, tag,
                                              source, map_nodes, meta,
                                              drop_now);

  BufWriter w;
  w.put_u64(ex.groups);
  w.put_u64(ex.max_group_records);
  w.put_u64(ex.max_group_bytes);
  w.put_u64(ex.ctx->bytes_emitted());
  put_counters(w, *ex.counters);
  put_records(w, ex.ctx->output());
  ts.ship(w);
  return w.str();
}

void serve_shuffle_connection(WorkerState& st, int fd) {
  set_recv_timeout(fd, 10);
  std::string payload;
  const FrameType t = recv_frame(fd, payload, "shuffle peer");
  if (t != FrameType::kFetch) {
    throw ProtocolError("shuffle server expected a fetch frame");
  }
  BufReader r(payload);
  const TaskIndex m = r.get_u32();
  const TaskIndex red = r.get_u32();
  BufWriter w;
  {
    const std::lock_guard<std::mutex> lock(st.mutex);
    if (m >= st.has_published.size() || st.has_published[m] == 0) {
      send_frame(fd, FrameType::kNotReady, std::string());
      return;
    }
    PAIRMR_CHECK(red < st.published[m].size(),
                 "shuffle fetch of an out-of-range partition");
    put_partition(w, st.published[m][red], st.jc->env.spill_mode);
  }
  send_frame(fd, FrameType::kPartition, w.str());
}

void shuffle_server_main(WorkerState* st, int listen_fd) {
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;
    }
    try {
      serve_shuffle_connection(*st, fd);
    } catch (...) {
      // A garbled or abandoned fetch poisons only its own connection.
    }
    ::close(fd);
  }
}

void send_err(int ctrl, ErrKind kind, const char* what) {
  BufWriter w;
  w.put_u8(static_cast<std::uint8_t>(kind));
  w.put_bytes(what);
  send_frame(ctrl, FrameType::kErr, w.str());
}

void worker_main(const JobContext* jc, NodeId node,
                 const std::string& session_dir) {
  die_with_parent();
  std::signal(SIGPIPE, SIG_IGN);

  WorkerState st;
  st.jc = jc;
  st.node = node;
  st.session_dir = session_dir;
  st.staged.resize(jc->splits->size());
  st.published.resize(jc->splits->size());
  st.has_published.assign(jc->splits->size(), 0);

  // Shuffle plane first, so peers retrying a fetch find the socket as
  // soon as the coordinator learns this worker exists.
  const int shuffle_fd = uds_listen(shuffle_sock_path(session_dir, node));
  std::thread server([&st, shuffle_fd] { shuffle_server_main(&st, shuffle_fd); });
  server.detach();

  int ctrl = -1;
  for (int i = 0; i < 5000 && ctrl < 0; ++i) {
    ctrl = uds_connect(ctrl_sock_path(session_dir));
    if (ctrl < 0) std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  if (ctrl < 0) std::_Exit(1);
  {
    BufWriter w;
    w.put_u32(node);
    w.put_u32(static_cast<std::uint32_t>(::getpid()));
    send_frame(ctrl, FrameType::kHello, w.str());
  }

  for (;;) {
    std::string payload;
    FrameType t;
    try {
      t = recv_frame(ctrl, payload, "coordinator");
    } catch (const ProtocolError&) {
      std::_Exit(1);  // coordinator gone; PDEATHSIG normally beat us here
    }
    try {
      BufReader r(payload);
      switch (t) {
        case FrameType::kMapTask:
          send_frame(ctrl, FrameType::kMapDone, handle_map_task(st, r));
          break;
        case FrameType::kPublish:
          send_frame(ctrl, FrameType::kPublishDone, handle_publish(st, r));
          break;
        case FrameType::kReduceTask:
          send_frame(ctrl, FrameType::kReduceDone, handle_reduce_task(st, r));
          break;
        case FrameType::kDiscardMap: {
          const TaskIndex task = r.get_u32();
          const std::string tag(r.get_bytes());
          {
            const std::lock_guard<std::mutex> lock(st.mutex);
            st.staged[task].erase(tag);
          }
          if (jc->env.spill_mode) {
            jc->env.dfs->remove_prefix(jc->env.scratch_root + tag + "/");
          }
          send_frame(ctrl, FrameType::kOk, std::string());
          break;
        }
        case FrameType::kDiscardReduce: {
          const std::string tag(r.get_bytes());
          if (jc->env.spill_mode) {
            jc->env.dfs->remove_prefix(jc->env.scratch_root + tag + "/");
          }
          send_frame(ctrl, FrameType::kOk, std::string());
          break;
        }
        case FrameType::kRelease: {
          const TaskIndex red = r.get_u32();
          const std::lock_guard<std::mutex> lock(st.mutex);
          for (auto& parts : st.published) {
            if (red < parts.size()) parts[red].release();
          }
          send_frame(ctrl, FrameType::kOk, std::string());
          break;
        }
        case FrameType::kDie: {
          const auto kind = static_cast<TaskKind>(r.get_u8());
          const TaskIndex task = r.get_u32();
          PAIRMR_LOG(kWarn)
              << "worker " << node << " (pid " << ::getpid()
              << ") killed by fault plan mid-"
              << (kind == TaskKind::kMap ? "map" : "reduce") << " task "
              << task;
          ::raise(SIGKILL);
          std::_Exit(1);  // unreachable
        }
        case FrameType::kShutdown:
          send_frame(ctrl, FrameType::kOk, std::string());
          std::_Exit(0);
        default:
          throw ProtocolError("worker received unexpected frame type " +
                              std::to_string(static_cast<std::uint32_t>(t)));
      }
    } catch (const PreconditionError& e) {
      send_err(ctrl, ErrKind::kPrecondition, e.what());
    } catch (const InternalError& e) {
      send_err(ctrl, ErrKind::kInternal, e.what());
    } catch (const std::exception& e) {
      send_err(ctrl, ErrKind::kRuntime, e.what());
    }
  }
}

// ======================= forker process ===============================

// Single-threaded fork server: forked from the coordinator at begin_job
// (pool threads idle — a fork-safe point), so every worker it forks sees
// the job snapshot frozen at that moment, including respawns long after
// the coordinator's threads went back to work. Reaps every worker it
// forked; the coordinator reaps only the forker, so no zombie can
// outlive a job.
[[noreturn]] void forker_main(const JobContext* jc,
                              const std::string& session_dir,
                              std::uint32_t num_nodes, int cmd_fd, int ack_fd,
                              int ctrl_listen_fd) {
  die_with_parent();
  std::signal(SIGPIPE, SIG_IGN);
  ::close(ctrl_listen_fd);

  std::vector<pid_t> pids(num_nodes, -1);
  for (;;) {
    char cmd = 0;
    if (!read_exact(cmd_fd, &cmd, 1) || cmd == 'Q') break;
    std::uint32_t node = 0;
    if (cmd != 'S' || !read_exact(cmd_fd, &node, sizeof(node)) ||
        node >= num_nodes) {
      break;
    }
    if (pids[node] > 0) {
      // Respawn: the previous worker was SIGKILLed; reap it first.
      int status = 0;
      ::waitpid(pids[node], &status, 0);
      pids[node] = -1;
    }
    const pid_t pid = ::fork();
    if (pid == 0) {
      ::close(cmd_fd);
      ::close(ack_fd);
      worker_main(jc, node, session_dir);
      std::_Exit(1);  // unreachable: worker_main only leaves via _Exit
    }
    if (pid < 0) break;
    pids[node] = pid;
    const auto upid = static_cast<std::uint32_t>(pid);
    char ack = 'A';
    if (!write_exact(ack_fd, &ack, 1) ||
        !write_exact(ack_fd, &upid, sizeof(upid))) {
      break;
    }
  }
  for (std::uint32_t nd = 0; nd < num_nodes; ++nd) {
    if (pids[nd] > 0) {
      ::kill(pids[nd], SIGKILL);
      int status = 0;
      ::waitpid(pids[nd], &status, 0);
    }
  }
  std::_Exit(0);
}

}  // namespace

// ======================= coordinator side =============================

ForkBackend::~ForkBackend() { end_job(); }

void ForkBackend::begin_job(const JobContext& jc) {
#ifdef PAIRMR_HAS_TSAN
  PAIRMR_REQUIRE(false,
                 "the fork backend is incompatible with ThreadSanitizer "
                 "(forking a multithreaded sanitized process deadlocks); "
                 "use the in-process backend");
#endif
  PAIRMR_CHECK(jc_ == nullptr, "fork backend already has a job in progress");
  // Writes to the forker command pipe must surface as errors, not a
  // process-killing SIGPIPE (socket sends already use MSG_NOSIGNAL).
  std::signal(SIGPIPE, SIG_IGN);
  jc_ = &jc;
  published_meta_.assign(jc.splits->size(), {});

  // Sockets live under a fresh tmpdir: sun_path caps UDS paths at ~100
  // chars, so the build tree is not a safe home for them.
  char tmpl[] = "/tmp/pairmr-XXXXXX";
  PAIRMR_CHECK(::mkdtemp(tmpl) != nullptr,
               std::string("mkdtemp failed: ") + std::strerror(errno));
  session_dir_ = tmpl;
  ctrl_listen_fd_ = uds_listen(ctrl_sock_path(session_dir_));

  int cmd[2];
  int ack[2];
  PAIRMR_CHECK(::pipe(cmd) == 0 && ::pipe(ack) == 0,
               std::string("pipe failed: ") + std::strerror(errno));
  const pid_t pid = ::fork();
  PAIRMR_CHECK(pid >= 0, std::string("fork failed: ") + std::strerror(errno));
  if (pid == 0) {
    ::close(cmd[1]);
    ::close(ack[0]);
    forker_main(&jc, session_dir_, jc.num_nodes, cmd[0], ack[1],
                ctrl_listen_fd_);
  }
  ::close(cmd[0]);
  ::close(ack[1]);
  forker_pid_ = pid;
  forker_cmd_fd_ = cmd[1];
  forker_ack_fd_ = ack[0];

  slots_.clear();
  for (std::uint32_t nd = 0; nd < jc.num_nodes; ++nd) {
    slots_.push_back(std::make_unique<WorkerSlot>());
  }
  for (NodeId nd = 0; nd < jc.num_nodes; ++nd) {
    if (jc.node_alive[nd] == 0) continue;  // lost in an earlier job
    const std::lock_guard<std::mutex> lock(slots_[nd]->mutex);
    spawn_worker_locked(*slots_[nd], nd);
  }
}

void ForkBackend::end_job() {
  if (jc_ == nullptr) return;
  for (auto& slot_ptr : slots_) {
    WorkerSlot& slot = *slot_ptr;
    const std::lock_guard<std::mutex> lock(slot.mutex);
    if (slot.fd >= 0) {
      try {
        send_frame(slot.fd, FrameType::kShutdown, std::string());
        std::string resp;
        recv_frame(slot.fd, resp, "worker");
      } catch (const ProtocolError&) {
        // Already dead; the forker reaps it regardless.
      }
      ::close(slot.fd);
      slot.fd = -1;
    }
    slot.alive = false;
  }
  {
    const std::lock_guard<std::mutex> lock(accept_mutex_);
    for (auto& [node, entry] : hello_stash_) ::close(entry.first);
    hello_stash_.clear();
  }
  {
    const std::lock_guard<std::mutex> lock(forker_mutex_);
    if (forker_cmd_fd_ >= 0) {
      const char quit = 'Q';
      (void)write_exact(forker_cmd_fd_, &quit, 1);
      ::close(forker_cmd_fd_);
      forker_cmd_fd_ = -1;
    }
    if (forker_ack_fd_ >= 0) {
      ::close(forker_ack_fd_);
      forker_ack_fd_ = -1;
    }
    if (forker_pid_ > 0) {
      // The forker SIGKILLs and reaps every worker before exiting, so
      // this single wait leaves no child process behind.
      int status = 0;
      ::waitpid(forker_pid_, &status, 0);
      forker_pid_ = -1;
    }
  }
  if (ctrl_listen_fd_ >= 0) {
    ::close(ctrl_listen_fd_);
    ctrl_listen_fd_ = -1;
  }
  if (!session_dir_.empty()) {
    ::unlink(ctrl_sock_path(session_dir_).c_str());
    for (std::uint32_t nd = 0; nd < slots_.size(); ++nd) {
      ::unlink(shuffle_sock_path(session_dir_, nd).c_str());
    }
    ::rmdir(session_dir_.c_str());
    session_dir_.clear();
  }
  slots_.clear();
  published_meta_.clear();
  jc_ = nullptr;
}

void ForkBackend::spawn_worker_locked(WorkerSlot& slot, NodeId node) {
  {
    const std::lock_guard<std::mutex> lock(forker_mutex_);
    const char spawn = 'S';
    PAIRMR_CHECK(write_exact(forker_cmd_fd_, &spawn, 1) &&
                     write_exact(forker_cmd_fd_, &node, sizeof(node)),
                 "fork server is gone; cannot spawn worker " +
                     std::to_string(node));
    char ack = 0;
    std::uint32_t pid = 0;
    PAIRMR_CHECK(read_exact(forker_ack_fd_, &ack, 1) && ack == 'A' &&
                     read_exact(forker_ack_fd_, &pid, sizeof(pid)),
                 "fork server failed to spawn worker " + std::to_string(node));
  }
  accept_worker(node, slot);
  slot.alive = true;
}

void ForkBackend::accept_worker(NodeId node, WorkerSlot& slot) {
  const std::lock_guard<std::mutex> lock(accept_mutex_);
  const auto it = hello_stash_.find(node);
  if (it != hello_stash_.end()) {
    slot.fd = it->second.first;
    slot.pid = it->second.second;
    hello_stash_.erase(it);
    return;
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  for (;;) {
    PAIRMR_CHECK(std::chrono::steady_clock::now() < deadline,
                 "timed out waiting for worker " + std::to_string(node) +
                     " to say hello");
    pollfd p{ctrl_listen_fd_, POLLIN, 0};
    const int pr = ::poll(&p, 1, 1000);
    if (pr <= 0) continue;
    const int fd = ::accept(ctrl_listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    // Generous ceiling: a wedged worker surfaces as a ProtocolError on
    // the coordinator, never a hang.
    set_recv_timeout(fd, 120);
    std::string payload;
    FrameType t;
    try {
      t = recv_frame(fd, payload, "worker");
    } catch (const ProtocolError&) {
      ::close(fd);
      continue;
    }
    if (t != FrameType::kHello) {
      ::close(fd);
      continue;
    }
    BufReader r(payload);
    const std::uint32_t who = r.get_u32();
    const std::uint32_t wpid = r.get_u32();
    if (who == node) {
      slot.fd = fd;
      slot.pid = wpid;
      return;
    }
    hello_stash_[who] = {fd, wpid};
  }
}

FrameType ForkBackend::roundtrip(NodeId node, FrameType type,
                                 const std::string& payload,
                                 std::string& response) {
  PAIRMR_CHECK(node < slots_.size(), "task dispatched to an unknown node");
  WorkerSlot& slot = *slots_[node];
  const std::lock_guard<std::mutex> lock(slot.mutex);
  return roundtrip_locked(slot, node, type, payload, response);
}

FrameType ForkBackend::roundtrip_locked(WorkerSlot& slot, NodeId node,
                                        FrameType type,
                                        const std::string& payload,
                                        std::string& response) {
  PAIRMR_CHECK(slot.alive && slot.fd >= 0,
               "no live worker process for node " + std::to_string(node));
  const std::string who = "worker " + std::to_string(node);
  send_frame(slot.fd, type, payload);
  const FrameType t = recv_frame(slot.fd, response, who.c_str());
  if (t == FrameType::kErr) throw_worker_error(response, node);
  return t;
}

void ForkBackend::throw_worker_error(const std::string& payload, NodeId node) {
  BufReader r(payload);
  const auto kind = static_cast<ErrKind>(r.get_u8());
  const std::string msg =
      std::string(r.get_bytes()) + " [worker " + std::to_string(node) + "]";
  switch (kind) {
    case ErrKind::kPrecondition:
      throw PreconditionError(msg);
    case ErrKind::kInternal:
      throw InternalError(msg);
    case ErrKind::kRuntime:
      break;
  }
  throw std::runtime_error(msg);
}

void ForkBackend::replay_spans(SpanId root, const std::vector<Span>& spans) {
  Tracer* const tracer = jc_->env.tracer;
  if (tracer == nullptr || root == 0 || spans.empty()) return;
  // Shipped in id order, so a span's parent always precedes it; the
  // worker's local root span (id 1) maps onto the coordinator-side span.
  std::unordered_map<std::uint64_t, SpanId> ids;
  ids.emplace(1, root);
  for (const Span& s : spans) {
    const auto it = ids.find(s.parent);
    PAIRMR_CHECK(it != ids.end(), "worker span arrived before its parent");
    ids.emplace(s.id, tracer->import_span(it->second, s));
  }
}

MapAttemptOutcome ForkBackend::run_map_attempt(const MapAttemptDesc& desc) {
  BufWriter w;
  w.put_u32(desc.task);
  w.put_u32(desc.attempt);
  w.put_u32(desc.node);
  w.put_bytes(desc.tag);
  w.put_u8(0);  // not a regeneration
  std::string resp;
  const FrameType t =
      roundtrip(desc.node, FrameType::kMapTask, w.str(), resp);
  PAIRMR_CHECK(t == FrameType::kMapDone, "unexpected reply to a map task");
  BufReader r(resp);
  MapAttemptOutcome out;
  out.records_emitted = r.get_u64();
  out.bytes_emitted = r.get_u64();
  replay_spans(desc.attempt_span, get_spans(r));
  return out;
}

MapPublishOutcome ForkBackend::publish_map_output(TaskIndex task,
                                                  const std::string& tag,
                                                  NodeId node,
                                                  SpanId kept_span) {
  BufWriter w;
  w.put_u32(task);
  w.put_bytes(tag);
  w.put_u32(node);
  w.put_u8(0);  // not a regeneration
  std::string resp;
  WorkerSlot& slot = *slots_[node];
  {
    const std::lock_guard<std::mutex> lock(slot.mutex);
    const FrameType t =
        roundtrip_locked(slot, node, FrameType::kPublish, w.str(), resp);
    PAIRMR_CHECK(t == FrameType::kPublishDone,
                 "unexpected reply to a map publish");
    // Record what this worker now serves, for regeneration after a crash.
    if (!jc_->spec->map_only) slot.published.emplace_back(task, tag);
  }
  BufReader r(resp);
  MapPublishOutcome out;
  out.meta = get_meta(r);
  out.counters = std::make_unique<Counters>();
  get_counters(r, *out.counters);
  out.map_only_output = get_records(r);
  replay_spans(kept_span, get_spans(r));
  if (!jc_->spec->map_only) {
    const std::lock_guard<std::mutex> lock(published_meta_mutex_);
    published_meta_[task] = out.meta;
  }
  return out;
}

void ForkBackend::discard_map_attempt(TaskIndex task, const std::string& tag,
                                      NodeId node) {
  BufWriter w;
  w.put_u32(task);
  w.put_bytes(tag);
  std::string resp;
  const FrameType t = roundtrip(node, FrameType::kDiscardMap, w.str(), resp);
  PAIRMR_CHECK(t == FrameType::kOk, "unexpected reply to a map discard");
}

ReduceAttemptOutcome ForkBackend::run_reduce_attempt(
    const ReduceAttemptDesc& desc) {
  BufWriter w;
  w.put_u32(desc.task);
  w.put_u32(desc.attempt);
  w.put_u32(desc.node);
  w.put_bytes(desc.tag);
  w.put_u32(static_cast<std::uint32_t>(desc.map_nodes.size()));
  for (const NodeId nd : desc.map_nodes) w.put_u32(nd);
  put_meta(w, desc.meta);
  w.put_u32(static_cast<std::uint32_t>(desc.drop_now.size()));
  for (const std::uint8_t d : desc.drop_now) w.put_u8(d);
  std::string resp;
  const FrameType t =
      roundtrip(desc.node, FrameType::kReduceTask, w.str(), resp);
  PAIRMR_CHECK(t == FrameType::kReduceDone,
               "unexpected reply to a reduce task");
  BufReader r(resp);
  ReduceAttemptOutcome out;
  out.groups = r.get_u64();
  out.max_group_records = r.get_u64();
  out.max_group_bytes = r.get_u64();
  out.bytes_emitted = r.get_u64();
  out.counters = std::make_unique<Counters>();
  get_counters(r, *out.counters);
  out.output = get_records(r);
  replay_spans(desc.attempt_span, get_spans(r));
  return out;
}

void ForkBackend::discard_reduce_scratch(const std::string& tag, NodeId node) {
  BufWriter w;
  w.put_bytes(tag);
  std::string resp;
  const FrameType t =
      roundtrip(node, FrameType::kDiscardReduce, w.str(), resp);
  PAIRMR_CHECK(t == FrameType::kOk, "unexpected reply to a reduce discard");
}

void ForkBackend::release_reduce_input(TaskIndex reduce_task) {
  BufWriter w;
  w.put_u32(reduce_task);
  for (std::uint32_t nd = 0; nd < slots_.size(); ++nd) {
    WorkerSlot& slot = *slots_[nd];
    const std::lock_guard<std::mutex> lock(slot.mutex);
    if (!slot.alive) continue;  // node lost before this job started
    std::string resp;
    const FrameType t =
        roundtrip_locked(slot, nd, FrameType::kRelease, w.str(), resp);
    PAIRMR_CHECK(t == FrameType::kOk, "unexpected reply to a release");
  }
}

void ForkBackend::crash_worker(NodeId node, TaskKind kind, TaskIndex task) {
  WorkerSlot& slot = *slots_[node];
  // The slot mutex waits out any in-flight control exchange, so the kill
  // lands between requests and no other task's roundtrip is cut short;
  // in-flight *shuffle* fetches from this worker ride the peers' retry
  // loops until the respawned worker serves the regenerated partitions.
  const std::lock_guard<std::mutex> lock(slot.mutex);
  PAIRMR_CHECK(slot.alive && slot.fd >= 0,
               "fault plan kills a worker that is not running");
  BufWriter w;
  w.put_u8(static_cast<std::uint8_t>(kind));
  w.put_u32(task);
  bool died = false;
  try {
    send_frame(slot.fd, FrameType::kDie, w.str());
    std::string resp;
    recv_frame(slot.fd, resp, "dying worker");
  } catch (const ProtocolError&) {
    died = true;  // SIGKILL closed the control socket — the expected end
  }
  PAIRMR_CHECK(died, "worker survived a kill order");
  ::close(slot.fd);
  slot.fd = -1;
  slot.alive = false;
  slot.pid = 0;
  spawn_worker_locked(slot, node);
  regenerate_published_locked(slot, node);
}

void ForkBackend::regenerate_published_locked(WorkerSlot& slot, NodeId node) {
  for (const auto& [task, tag] : slot.published) {
    {
      BufWriter w;
      w.put_u32(task);
      w.put_u32(0);  // attempt: unused by regeneration
      w.put_u32(node);
      w.put_bytes(tag);
      w.put_u8(1);  // regeneration: untraced, counters dropped
      std::string resp;
      const FrameType t =
          roundtrip_locked(slot, node, FrameType::kMapTask, w.str(), resp);
      PAIRMR_CHECK(t == FrameType::kMapDone,
                   "unexpected reply to a regeneration map task");
    }
    {
      BufWriter w;
      w.put_u32(task);
      w.put_bytes(tag);
      w.put_u32(node);
      w.put_u8(1);
      std::string resp;
      const FrameType t =
          roundtrip_locked(slot, node, FrameType::kPublish, w.str(), resp);
      PAIRMR_CHECK(t == FrameType::kPublishDone,
                   "unexpected reply to a regeneration publish");
      BufReader r(resp);
      const std::vector<PartitionMeta> meta = get_meta(r);
      const std::lock_guard<std::mutex> lock(published_meta_mutex_);
      PAIRMR_CHECK(meta == published_meta_[task],
                   "regenerated map output diverged from the original "
                   "publish");
    }
  }
  if (!slot.published.empty()) {
    PAIRMR_LOG(kWarn) << "respawned worker " << node << " (pid " << slot.pid
                      << ") regenerated " << slot.published.size()
                      << " published map output(s)";
  }
}

}  // namespace pairmr::mr::backend
