#include "mr/backend/session.hpp"

#include "mr/backend/backend.hpp"
#include "mr/backend/fork.hpp"

namespace pairmr::mr::backend {

BackendSession::BackendSession(Cluster& cluster, BackendKind kind)
    : cluster_(cluster),
      kind_(kind == BackendKind::kAuto ? backend_kind_from_env() : kind) {}

BackendSession::~BackendSession() = default;

void BackendSession::declare(const JobSpec& spec) {
  declared_[&spec] = ++seq_;
}

const char* BackendSession::backend_name() const {
  return kind_ == BackendKind::kFork ? "fork" : "inprocess";
}

std::uint64_t BackendSession::workers_forked() const {
  return forked_total_ + (fork_ != nullptr ? fork_->workers_forked() : 0);
}

std::uint64_t BackendSession::workers_reused() const {
  return reused_total_ + (fork_ != nullptr ? fork_->workers_reused() : 0);
}

JobResult BackendSession::run(Engine& engine, const JobSpec& spec) {
  if (kind_ != BackendKind::kFork) {
    // Pin the resolved kind: kAuto in the spec would re-consult the
    // environment per job and could straddle backends mid-session.
    if (spec.backend == BackendKind::kAuto) {
      JobSpec pinned = spec;
      pinned.backend = kind_;
      return engine.run(pinned);
    }
    return engine.run(spec);
  }
  auto it = declared_.find(&spec);
  if (it == declared_.end()) {
    declare(spec);
    it = declared_.find(&spec);
  }
  const std::uint64_t stamp = it->second;
  if (fork_ != nullptr && fork_->has_forked() && stamp > fork_seq_) {
    // The spec post-dates the pool's fork image: its address would be
    // garbage in the workers. Retire the pool; the next fork sees it.
    forked_total_ += fork_->workers_forked();
    reused_total_ += fork_->workers_reused();
    fork_.reset();
  }
  if (fork_ == nullptr) {
    fork_ = std::make_unique<ForkBackend>(cluster_, /*persistent=*/true);
  }
  if (!fork_->has_forked()) {
    // This run's begin_job forks the pool; everything declared so far is
    // in its copy-on-write image.
    fork_seq_ = seq_;
  }
  return engine.run(spec, *fork_);
}

}  // namespace pairmr::mr::backend
