#include "mr/backend/protocol.hpp"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/check.hpp"

namespace pairmr::mr::backend {

namespace {

std::string errno_text() { return std::strerror(errno); }

// Send all of `data`, riding out EINTR and partial writes. MSG_NOSIGNAL:
// a dead peer surfaces as EPIPE, not a process-killing SIGPIPE.
void send_all(int fd, const char* data, std::size_t len) {
  std::size_t sent = 0;
  while (sent < len) {
    const ssize_t n = ::send(fd, data + sent, len - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EPIPE || errno == ECONNRESET) {
        throw PeerClosedError("peer closed while sending a frame");
      }
      throw ProtocolError(std::string("frame send failed: ") + errno_text());
    }
    sent += static_cast<std::size_t>(n);
  }
}

// Drains one recvmsg() worth of SCM_RIGHTS ancillary data into `fds_out`.
// MSG_CTRUNC means the kernel dropped fds the cmsg buffer could not hold:
// everything collected so far is closed and the stream declared garbled —
// stray kernel-owned fds must never leak silently.
void collect_cmsg_fds(msghdr& msg, std::vector<int>& fds_out,
                      const char* who) {
  for (cmsghdr* c = CMSG_FIRSTHDR(&msg); c != nullptr;
       c = CMSG_NXTHDR(&msg, c)) {
    if (c->cmsg_level != SOL_SOCKET || c->cmsg_type != SCM_RIGHTS) continue;
    const std::size_t bytes = c->cmsg_len - CMSG_LEN(0);
    const std::size_t n = bytes / sizeof(int);
    std::vector<int> incoming(n);
    std::memcpy(incoming.data(), CMSG_DATA(c), n * sizeof(int));
    fds_out.insert(fds_out.end(), incoming.begin(), incoming.end());
  }
  if ((msg.msg_flags & MSG_CTRUNC) != 0) {
    for (const int f : fds_out) ::close(f);
    fds_out.clear();
    throw ProtocolError(
        std::string("truncated SCM_RIGHTS ancillary data from ") + who +
        ": the kernel dropped passed file descriptors (fd count exceeds "
        "the receive buffer); the frame's descriptors were closed");
  }
}

// Receive exactly `len` bytes. `header_byte_seen` distinguishes a clean
// EOF between frames (PeerClosedError) from one mid-frame (truncation).
// When `fds_out` is non-null, SCM_RIGHTS fds arriving with the data are
// collected (CLOEXEC) — up to `max_fds` per recvmsg call.
void recv_all(int fd, char* data, std::size_t len, const char* who,
              bool header_byte_seen, std::vector<int>* fds_out = nullptr,
              std::size_t max_fds = 0) {
  std::size_t got = 0;
  while (got < len) {
    ssize_t n = 0;
    if (fds_out != nullptr) {
      iovec iov{};
      iov.iov_base = data + got;
      iov.iov_len = len - got;
      std::vector<char> ctrl(CMSG_SPACE(max_fds * sizeof(int)));
      msghdr msg{};
      msg.msg_iov = &iov;
      msg.msg_iovlen = 1;
      msg.msg_control = ctrl.data();
      msg.msg_controllen = ctrl.size();
      n = ::recvmsg(fd, &msg, MSG_CMSG_CLOEXEC);
      if (n > 0) collect_cmsg_fds(msg, *fds_out, who);
    } else {
      n = ::recv(fd, data + got, len - got, 0);
    }
    if (n == 0) {
      if (!header_byte_seen && got == 0) {
        throw PeerClosedError(std::string(who) +
                              " closed the connection (clean EOF)");
      }
      throw ProtocolError(std::string("truncated frame from ") + who +
                          ": connection closed after " + std::to_string(got) +
                          " of " + std::to_string(len) + " expected bytes");
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        throw ProtocolError(std::string("timed out waiting for a frame from ") +
                            who + " (peer wedged or dead?)");
      }
      if (errno == ECONNRESET) {
        if (!header_byte_seen && got == 0) {
          throw PeerClosedError(std::string(who) + " reset the connection");
        }
        throw ProtocolError(std::string("connection to ") + who +
                            " reset mid-frame");
      }
      throw ProtocolError(std::string("frame receive from ") + who +
                          " failed: " + errno_text());
    }
    got += static_cast<std::size_t>(n);
    header_byte_seen = true;
  }
}

// Shared body of recv_frame / recv_frame_with_fds. Any fds collected
// before a framing error are closed — a garbled stream must not leak
// kernel-owned descriptors into the process.
FrameType recv_frame_impl(int fd, std::string& payload, const char* who,
                          std::vector<int>* fds_out, std::size_t max_fds) {
  try {
    char header[16];
    recv_all(fd, header, sizeof(header), who, /*header_byte_seen=*/false,
             fds_out, max_fds);
    BufReader r(std::string_view(header, sizeof(header)));
    const std::uint32_t magic = r.get_u32();
    if (magic != kFrameMagic) {
      throw ProtocolError(std::string("garbled frame from ") + who +
                          ": bad magic 0x" + std::to_string(magic) +
                          " (expected 'PMRB'); the control stream is corrupt");
    }
    const std::uint32_t type = r.get_u32();
    if (type < static_cast<std::uint32_t>(FrameType::kHello) ||
        type > static_cast<std::uint32_t>(FrameType::kPublishDoneShm)) {
      throw ProtocolError(std::string("garbled frame from ") + who +
                          ": unknown frame type " + std::to_string(type));
    }
    const std::uint64_t len = r.get_u64();
    if (len > kMaxFrameBytes) {
      throw ProtocolError(
          std::string("garbled frame from ") + who +
          ": implausible payload length " + std::to_string(len) + " (cap " +
          std::to_string(kMaxFrameBytes) + ")");
    }
    payload.resize(static_cast<std::size_t>(len));
    if (len != 0) {
      recv_all(fd, payload.data(), payload.size(), who,
               /*header_byte_seen=*/true, fds_out, max_fds);
    }
    return static_cast<FrameType>(type);
  } catch (...) {
    if (fds_out != nullptr) close_fds(*fds_out);
    throw;
  }
}

}  // namespace

void send_frame(int fd, FrameType type, const std::string& payload) {
  BufWriter header;
  header.put_u32(kFrameMagic);
  header.put_u32(static_cast<std::uint32_t>(type));
  header.put_u64(payload.size());
  send_all(fd, header.str().data(), header.size());
  send_all(fd, payload.data(), payload.size());
}

FrameType recv_frame(int fd, std::string& payload, const char* who) {
  return recv_frame_impl(fd, payload, who, nullptr, 0);
}

void send_frame_with_fds(int fd, FrameType type, const std::string& payload,
                         const std::vector<int>& fds) {
  if (fds.empty()) {
    send_frame(fd, type, payload);
    return;
  }
  PAIRMR_CHECK(fds.size() <= kMaxFdsPerFrame,
               "send_frame_with_fds: " + std::to_string(fds.size()) +
                   " fds exceeds the per-frame cap of " +
                   std::to_string(kMaxFdsPerFrame));
  BufWriter header;
  header.put_u32(kFrameMagic);
  header.put_u32(static_cast<std::uint32_t>(type));
  header.put_u64(payload.size());
  const std::string head = std::move(header).str();

  // The fds ride on the first byte; SOCK_STREAM delivers the ancillary
  // data with whatever recv call consumes that byte.
  iovec iov{};
  iov.iov_base = const_cast<char*>(head.data());
  iov.iov_len = head.size();
  std::vector<char> ctrl(CMSG_SPACE(fds.size() * sizeof(int)));
  msghdr msg{};
  msg.msg_iov = &iov;
  msg.msg_iovlen = 1;
  msg.msg_control = ctrl.data();
  msg.msg_controllen = ctrl.size();
  cmsghdr* c = CMSG_FIRSTHDR(&msg);
  c->cmsg_level = SOL_SOCKET;
  c->cmsg_type = SCM_RIGHTS;
  c->cmsg_len = CMSG_LEN(fds.size() * sizeof(int));
  std::memcpy(CMSG_DATA(c), fds.data(), fds.size() * sizeof(int));

  std::size_t sent = 0;
  while (sent == 0) {
    const ssize_t n = ::sendmsg(fd, &msg, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EPIPE || errno == ECONNRESET) {
        throw PeerClosedError("peer closed while sending an fd-bearing frame");
      }
      throw ProtocolError(std::string("fd-bearing frame send failed: ") +
                          errno_text());
    }
    sent = static_cast<std::size_t>(n);
  }
  if (sent < head.size()) {
    send_all(fd, head.data() + sent, head.size() - sent);
  }
  send_all(fd, payload.data(), payload.size());
}

FrameType recv_frame_with_fds(int fd, std::string& payload,
                              std::vector<int>& fds_out, const char* who,
                              std::size_t max_fds) {
  return recv_frame_impl(fd, payload, who, &fds_out, max_fds);
}

void require_fd_count(std::vector<int>& fds, std::size_t declared,
                      const char* frame, const char* who) {
  if (fds.size() == declared) return;
  const std::size_t got = fds.size();
  close_fds(fds);
  throw ProtocolError(std::string("fd count mismatch on ") + frame +
                      " from " + who + ": payload declares " +
                      std::to_string(declared) +
                      " passed descriptor(s) but SCM_RIGHTS delivered " +
                      std::to_string(got) +
                      "; the frame's descriptors were closed");
}

void close_fds(std::vector<int>& fds) {
  for (const int f : fds) {
    if (f >= 0) ::close(f);
  }
  fds.clear();
}

std::string make_err_payload(ErrKind kind, const std::string& what) {
  BufWriter w;
  w.put_u8(static_cast<std::uint8_t>(kind));
  w.put_bytes(what);
  return std::move(w).str();
}

void rethrow_shipped_error(const std::string& payload, const std::string& who) {
  BufReader r(payload);
  const auto kind = static_cast<ErrKind>(r.get_u8());
  const std::string msg = std::string(r.get_bytes()) + " [" + who + "]";
  switch (kind) {
    case ErrKind::kPrecondition:
      throw PreconditionError(msg);
    case ErrKind::kInternal:
      throw InternalError(msg);
    case ErrKind::kProtocol:
      throw ProtocolError(msg);
    case ErrKind::kRuntime:
      break;
  }
  throw std::runtime_error(msg);
}

void set_recv_timeout(int fd, std::uint32_t seconds) {
  timeval tv{};
  tv.tv_sec = seconds;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

int uds_listen(const std::string& path) {
  PAIRMR_REQUIRE(path.size() < sizeof(sockaddr_un{}.sun_path),
                 "unix socket path too long: " + path);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  PAIRMR_CHECK(fd >= 0, "socket() failed: " + errno_text());
  ::unlink(path.c_str());
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string err = errno_text();
    ::close(fd);
    PAIRMR_CHECK(false, "bind(" + path + ") failed: " + err);
  }
  if (::listen(fd, 64) != 0) {
    const std::string err = errno_text();
    ::close(fd);
    PAIRMR_CHECK(false, "listen(" + path + ") failed: " + err);
  }
  return fd;
}

int uds_connect(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

void put_records(BufWriter& w, const std::vector<Record>& records) {
  w.put_u32(static_cast<std::uint32_t>(records.size()));
  for (const Record& rec : records) {
    w.put_bytes(rec.key);
    w.put_bytes(rec.value);
  }
}

std::vector<Record> get_records(BufReader& r) {
  const std::uint32_t n = r.get_u32();
  std::vector<Record> out;
  out.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    Record rec;
    rec.key = std::string(r.get_bytes());
    rec.value = std::string(r.get_bytes());
    out.push_back(std::move(rec));
  }
  return out;
}

void put_counters(BufWriter& w, const Counters& counters) {
  const auto snap = counters.snapshot();
  w.put_u32(static_cast<std::uint32_t>(snap.size()));
  for (const auto& [name, value] : snap) {
    w.put_bytes(name);
    w.put_u64(value);
  }
}

void get_counters(BufReader& r, Counters& out) {
  const std::uint32_t n = r.get_u32();
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::string name(r.get_bytes());
    out.add(name, r.get_u64());
  }
}

void put_spans(BufWriter& w, const std::vector<Span>& spans) {
  w.put_u32(static_cast<std::uint32_t>(spans.size()));
  for (const Span& s : spans) {
    w.put_u64(s.id);
    w.put_u64(s.parent);
    w.put_u8(static_cast<std::uint8_t>(s.kind));
    w.put_bytes(s.label);
    w.put_u32(s.node);
    w.put_u32(s.peer);
    w.put_u64(s.bytes);
    w.put_u64(s.records);
    w.put_u8(s.faulted ? 1 : 0);
    w.put_u8(s.speculative ? 1 : 0);
    w.put_bytes(s.note);
    w.put_u32(s.os_pid);
    w.put_f64(s.start_seconds);
    w.put_f64(s.end_seconds);
  }
}

std::vector<Span> get_spans(BufReader& r) {
  const std::uint32_t n = r.get_u32();
  std::vector<Span> out;
  out.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    Span s;
    s.id = r.get_u64();
    s.parent = r.get_u64();
    s.kind = static_cast<SpanKind>(r.get_u8());
    s.label = std::string(r.get_bytes());
    s.node = r.get_u32();
    s.peer = r.get_u32();
    s.bytes = r.get_u64();
    s.records = r.get_u64();
    s.faulted = r.get_u8() != 0;
    s.speculative = r.get_u8() != 0;
    s.note = std::string(r.get_bytes());
    s.os_pid = r.get_u32();
    s.start_seconds = r.get_f64();
    s.end_seconds = r.get_f64();
    out.push_back(std::move(s));
  }
  return out;
}

}  // namespace pairmr::mr::backend
