// The execution substrate behind mr::Engine.
//
// Engine::run is a coordinator: it decides placement, consults the fault
// plan, meters traffic, merges counters, and records attempt/phase spans.
// Everything that actually *runs* a task attempt or stores a shuffle
// partition sits behind this Backend interface:
//
//   * InProcessBackend (mr/backend/inprocess.hpp) — attempts run on the
//     calling pool thread, partitions live in coordinator memory. This is
//     the seed engine's behaviour, extracted verbatim.
//   * ForkBackend (mr/backend/fork.hpp) — one forked worker process per
//     simulated node; attempts travel a Unix-domain-socket control
//     channel, shuffle partitions cross real sockets between workers, and
//     counters/spans ship back for merging.
//
// Because all orchestration state stays in the coordinator, a job's
// output files, counters, and NetworkMeter totals are identical across
// backends by construction — tests/mr/backend_equivalence_test.cpp holds
// every pairwise scheme × fault chaos × spill budget to that bar.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "mr/backend/task_exec.hpp"
#include "mr/counters.hpp"
#include "mr/fault.hpp"
#include "mr/job.hpp"
#include "mr/trace.hpp"
#include "mr/types.hpp"

namespace pairmr::mr::backend {

// Resolve BackendKind::kAuto from the PAIRMR_TEST_BACKEND environment
// variable: "fork" / "inprocess" (or unset → in-process). Any other value
// throws an actionable PreconditionError. Parsed per call, so tests may
// setenv between jobs.
BackendKind backend_kind_from_env();

// Resolve ShufflePlane::kAuto from the PAIRMR_SHUFFLE_PLANE environment
// variable: "socket" / "shm" (or unset → socket). Any other value throws
// an actionable PreconditionError. Parsed per call, like the backend.
ShufflePlane shuffle_plane_from_env();

// spec-level plane → the effective plane (kAuto resolved via env).
ShufflePlane resolve_shuffle_plane(ShufflePlane requested);

// Everything a backend needs to start a job. Pointers are non-owning and
// engine-owned; they outlive the job (fork inherits them by address).
struct JobContext {
  const JobSpec* spec = nullptr;
  TaskEnv env;
  const std::vector<Split>* splits = nullptr;
  std::uint32_t num_nodes = 0;
  // Nodes alive at job start (fork spawns one worker per usable node; a
  // node lost in an earlier job gets none).
  std::vector<std::uint8_t> node_alive;
  // Effective shuffle transport (kAuto already resolved by the engine).
  // The in-process backend accepts and ignores it.
  ShufflePlane shuffle_plane = ShufflePlane::kSocket;
};

struct MapAttemptDesc {
  TaskIndex task = 0;
  std::uint32_t attempt = 0;
  NodeId node = 0;
  SpanId attempt_span = 0;  // coordinator-side attempt span (0 untraced)
  std::string tag;          // unique per execution: "m<task>-a<attempt>[-b]"
};

struct MapAttemptOutcome {
  std::uint64_t records_emitted = 0;
  std::uint64_t bytes_emitted = 0;
};

struct MapPublishOutcome {
  std::vector<PartitionMeta> meta;     // per reduce partition
  std::unique_ptr<Counters> counters;  // the kept execution's task counters
  // Map-only jobs: the task's emissions in emission order (the engine
  // writes part-m files coordinator-side). Empty otherwise.
  std::vector<Record> map_only_output;
};

struct ReduceAttemptDesc {
  TaskIndex task = 0;
  std::uint32_t attempt = 0;
  NodeId node = 0;
  SpanId attempt_span = 0;
  std::string tag;  // "r<task>-a<attempt>[-b]"
  std::vector<NodeId> map_nodes;    // kept-attempt node per map task
  std::vector<PartitionMeta> meta;  // this reducer's partition per map task
  // Fetches the fault plan drops mid-transfer during this execution, per
  // map task (decided by the coordinator so both backends agree).
  std::vector<std::uint8_t> drop_now;
};

struct ReduceAttemptOutcome {
  std::uint64_t groups = 0;
  std::uint64_t max_group_records = 0;
  std::uint64_t max_group_bytes = 0;
  std::uint64_t bytes_emitted = 0;
  std::unique_ptr<Counters> counters;  // the execution's task counters
  std::vector<Record> output;          // reduce emissions, in order
};

class Backend {
 public:
  virtual ~Backend() = default;

  virtual const char* name() const = 0;
  // True when task attempts execute outside the coordinator process.
  virtual bool out_of_process() const = 0;

  // Called once per job, after the engine settled splits, cache, and the
  // effective TaskEnv, before any attempt is dispatched. `jc` (and the
  // engine state it points to) stays valid until end_job.
  virtual void begin_job(const JobContext& jc) = 0;
  // Called on every exit path (success or propagated task error). Must
  // leave no worker processes behind.
  virtual void end_job() = 0;

  // Run one map attempt's user code; the execution stays staged under
  // (task, tag) until published or discarded. Throws what user code threw.
  virtual MapAttemptOutcome run_map_attempt(const MapAttemptDesc& desc) = 0;

  // Settle the race winner staged under (task, tag): combine (in-memory
  // path), compute partition metadata, and make the partitions fetchable
  // by reduce attempts. `kept_span` parents the combine spans.
  virtual MapPublishOutcome publish_map_output(TaskIndex task,
                                               const std::string& tag,
                                               NodeId node,
                                               SpanId kept_span) = 0;

  // Drop a discarded execution's staged state and scratch runs (lost
  // race, or user error mid-run — safe when nothing was staged).
  virtual void discard_map_attempt(TaskIndex task, const std::string& tag,
                                   NodeId node) = 0;

  virtual ReduceAttemptOutcome run_reduce_attempt(
      const ReduceAttemptDesc& desc) = 0;

  // Drop a failed or losing reduce execution's merge-pass scratch.
  virtual void discard_reduce_scratch(const std::string& tag, NodeId node) = 0;

  // The reduce task settled; its input partitions may be freed.
  virtual void release_reduce_input(TaskIndex reduce_task) = 0;

  // Fault injection (FaultPlan::kills_worker): the worker process hosting
  // `node` is killed mid-task and replaced; its published map outputs are
  // regenerated so the job can finish. In-process there is no separate
  // process — the attempt is simply never executed, which is
  // observationally identical (the coordinator accounts the retry either
  // way). `kind`/`task` identify the doomed attempt for logging.
  virtual void crash_worker(NodeId node, TaskKind kind, TaskIndex task) = 0;
};

}  // namespace pairmr::mr::backend
