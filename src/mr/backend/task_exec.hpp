// Task-attempt execution shared by every Backend (mr/backend/backend.hpp).
//
// The engine's orchestration — placement, fault decisions, retry loops,
// metering, counter merging — is backend-independent; what differs between
// backends is *where* a task attempt's user code runs and how its shuffle
// partitions travel. This header is the code that runs in both places: the
// InProcessBackend calls these functions on a pool thread, the fork
// backend's worker processes call the very same compiled functions after
// fork. Keeping one implementation is what makes cross-backend output,
// counter, and trace-structure equivalence hold by construction.
//
// Everything here was extracted verbatim from the seed engine's map/reduce
// execution lambdas; the in-process path is byte-identical to the
// pre-refactor engine.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "mr/context.hpp"
#include "mr/counters.hpp"
#include "mr/fs.hpp"
#include "mr/job.hpp"
#include "mr/spill.hpp"
#include "mr/trace.hpp"
#include "mr/types.hpp"

namespace pairmr::mr::backend {

// One map task's input: a contiguous slice of a DFS file.
struct Split {
  std::shared_ptr<const DfsFile> file;
  std::size_t begin = 0;
  std::size_t end = 0;  // exclusive
  NodeId node = 0;      // where the task runs (data-local)
};

std::vector<Split> build_splits(SimDfs& dfs, const JobSpec& spec);

// The per-job execution environment a task attempt runs against. All
// pointers are non-owning and must outlive the job; under the fork
// backend they are inherited across fork() and stay valid in the worker
// because the coordinator's Engine::run frame outlives every attempt.
struct TaskEnv {
  const JobSpec* spec = nullptr;
  const Partitioner* partitioner = nullptr;
  std::uint32_t num_reducers = 0;
  MemoryBudget budget;           // effective (test override applied)
  bool spill_mode = false;       // budget.enabled()
  bool movable_shuffle = false;  // no retry possible: move, don't copy
  std::string scratch_root;      // "<output_dir>.spill/"
  SimDfs* dfs = nullptr;         // spill scratch home (process-local)
  const ReduceContext::CacheMap* cache = nullptr;
  Tracer* tracer = nullptr;  // nullptr = untraced
};

// One full execution of a map task's user code. Each execution gets a
// fresh context and counter bag; only the execution that is ultimately
// kept merges into the job.
struct MapExecution {
  std::unique_ptr<MapContext> ctx;
  std::unique_ptr<Counters> counters;
  // Per-partition scratch runs, oldest first (spill mode only).
  std::vector<std::vector<std::shared_ptr<const DfsFile>>> spilled;
};

// Run the user map code of one attempt on `node`. `tag` names the
// execution's scratch directory (spill mode), so discarded attempts never
// collide with kept ones. Throws whatever the user code throws; the
// caller sweeps `scratch_root + tag + "/"` on failure.
MapExecution execute_map_attempt(const TaskEnv& env, const Split& split,
                                 TaskIndex task, NodeId node,
                                 SpanId attempt_span, const std::string& tag);

// One (map task, reduce task) shuffle partition. The in-memory path
// keeps everything in `final_run` (unsorted; the reduce side sorts).
// Spill mode adds the task's DFS scratch runs, oldest first, and
// `final_run` becomes the last, sorted, in-memory run. `bytes` and
// `records` are settled once when the map task's winning attempt
// publishes, then reused for every fetch metering of the partition.
struct MapOutputPartition {
  std::vector<std::shared_ptr<const DfsFile>> runs;
  std::vector<Record> final_run;
  std::uint64_t bytes = 0;
  std::uint64_t records = 0;

  void release() {
    runs.clear();
    runs.shrink_to_fit();
    final_run.clear();
    final_run.shrink_to_fit();
  }
};

// Size of one published partition, as the coordinator meters it.
struct PartitionMeta {
  std::uint64_t bytes = 0;
  std::uint64_t records = 0;

  friend bool operator==(const PartitionMeta&, const PartitionMeta&) = default;
};

struct FinalizedMapOutput {
  std::vector<MapOutputPartition> partitions;  // per reduce partition
  std::vector<PartitionMeta> meta;             // per reduce partition
};

// Settle the kept execution's output: run the combiner over the full
// buckets (in-memory path; spill mode combined per run already), then
// assemble per-reducer partitions and their metadata. Combine counters
// accumulate into `ex.counters`. `kept_span` parents the combine spans.
FinalizedMapOutput finalize_map_output(const TaskEnv& env, MapExecution& ex,
                                       TaskIndex task, NodeId node,
                                       SpanId kept_span);

// Read-only mmap of one shm-plane shuffle arena (a memfd the publishing
// worker filled and passed by fd). The mapping is unmapped on
// destruction; holders share ownership so a fetched partition can never
// outlive the bytes it was decoded from. The kernel keeps the memfd's
// pages alive while any mapping or fd exists, so a publisher dying —
// even SIGKILLed mid-job — never invalidates a consumer's view.
class ShmMapping {
 public:
  // mmap(PROT_READ, MAP_SHARED) over `len` bytes of `fd`. Returns null on
  // mmap failure (caller falls back to the socket plane). Does NOT take
  // ownership of `fd`; the caller may close it right after (the mapping
  // pins the memfd independently).
  static std::shared_ptr<const ShmMapping> map_fd(int fd, std::uint64_t len);

  ShmMapping(const ShmMapping&) = delete;
  ShmMapping& operator=(const ShmMapping&) = delete;
  ~ShmMapping();

  std::string_view view() const {
    return std::string_view(static_cast<const char*>(addr_), len_);
  }

 private:
  ShmMapping(void* addr, std::size_t len) : addr_(addr), len_(len) {}

  void* addr_ = nullptr;
  std::size_t len_ = 0;
};

// One fetched shuffle partition, however it travelled. Exactly one of
// `sources` (spill mode: sorted runs in (run age, final last) order) and
// `raw` (in-memory mode: the unsorted bucket) is populated. `backing`
// pins the shm arena a zero-copy fetch decoded from (null for local,
// socket-plane, and in-process fetches).
struct FetchedPartition {
  std::vector<RunSource> sources;
  std::vector<Record> raw;
  std::shared_ptr<const ShmMapping> backing;
};

// Turn one stored partition into reduce input, exactly as the seed engine
// did: spill mode yields the scratch runs (oldest first) plus the final
// in-memory run last; the in-memory path yields the raw bucket. When the
// shuffle is movable the partition surrenders its in-memory records
// (moved); otherwise they are copied so re-execution can re-fetch. Shared
// by the in-process store and the fork backend's worker-local fetches.
FetchedPartition fetch_from_partition(MapOutputPartition& part,
                                      bool spill_mode, bool movable);

// Where a reduce execution gets its input partitions from: the in-process
// store, the worker's local store, or a peer worker's shuffle socket.
class PartitionSource {
 public:
  virtual ~PartitionSource() = default;
  // Fetch map task `m`'s partition for reduce task `r`. When the job's
  // shuffle is movable the source may surrender its copy; otherwise it
  // must keep the partition fetchable for re-execution.
  virtual FetchedPartition fetch(TaskIndex m, TaskIndex r) = 0;
};

// One full execution of reduce task r: shuffle + sort + reduce. Fetch
// volumes are metered by the coordinator, which knows whether the
// execution's traffic was useful or wasted.
struct ReduceExecution {
  std::uint64_t groups = 0;
  std::uint64_t max_group_records = 0;
  std::uint64_t max_group_bytes = 0;
  std::unique_ptr<Counters> counters;
  std::unique_ptr<ReduceContext> ctx;
};

// Run one reduce attempt on `node`: fetch this reducer's partition from
// every map task in map-task order (deterministic), then sort/group and
// run the user reduce code. `map_nodes[m]` is the node map task m's kept
// attempt ran on (fetch span attribution), `meta[m]` that partition's
// settled size, and `drop_now[m]` marks fetches the fault plan drops
// mid-transfer during this execution (the re-fetch is the one that
// counts; the coordinator meters both).
ReduceExecution execute_reduce_attempt(const TaskEnv& env, TaskIndex r,
                                       NodeId node, SpanId attempt_span,
                                       const std::string& tag,
                                       PartitionSource& source,
                                       const std::vector<NodeId>& map_nodes,
                                       const std::vector<PartitionMeta>& meta,
                                       const std::vector<std::uint8_t>& drop_now);

}  // namespace pairmr::mr::backend
