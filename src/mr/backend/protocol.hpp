// Wire protocol of the fork backend (mr/backend/fork.hpp).
//
// Two planes share one frame format:
//   * control — coordinator <-> worker, strict request/response over the
//     worker's Unix-domain control connection;
//   * shuffle — worker <-> worker, one fetch per connection to the serving
//     worker's `shuf-<node>.sock`.
//
// Frame layout (all integers little-endian):
//
//   u32 magic   'PMRB' (0x42524d50)
//   u32 type    FrameType below
//   u64 length  payload bytes that follow (sanity-capped)
//   ...payload  BufWriter/BufReader-encoded fields (common/serde.hpp)
//
// Control messages and their payloads:
//
//   | frame          | direction | payload                                  |
//   |----------------|-----------|------------------------------------------|
//   | kHello         | w -> c    | node, pid                                |
//   | kMapTask       | c -> w    | task, attempt, node, tag, regen          |
//   | kMapDone       | w -> c    | records, bytes, spans                    |
//   | kPublish       | c -> w    | task, tag, node, regen                   |
//   | kPublishDone   | w -> c    | meta[], counters, map-only recs, spans   |
//   | kReduceTask    | c -> w    | task, attempt, node, tag, map_nodes[],   |
//   |                |           | meta[], drop_now[]                       |
//   | kReduceDone    | w -> c    | groups, max group recs/bytes, emitted    |
//   |                |           | bytes, counters, output recs, spans      |
//   | kDiscardMap    | c -> w    | task, tag                                |
//   | kDiscardReduce | c -> w    | tag                                      |
//   | kRelease       | c -> w    | reduce task                              |
//   | kDie           | c -> w    | task kind, task (worker SIGKILLs itself) |
//   | kShutdown      | c -> w    | (empty; worker exits)                    |
//   | kOk            | w -> c    | (empty ack)                              |
//   | kErr           | w -> c    | error kind, message                      |
//   | kBeginJob      | c -> w    | job context: spec ptr, split count,      |
//   |                |           | reducers, nodes, budget, spill mode,     |
//   |                |           | movable, traced, shuffle plane, scratch  |
//   |                |           | root, cache files (persistent pool:      |
//   |                |           | re-ships the job instead of re-forking)  |
//   | kEndJob        | c -> w    | (empty; worker drops its job state)      |
//   | kPublishDoneShm| w -> c    | kPublishDone payload + arena length +    |
//   |                |           | declared fd count; the memfd arena fd    |
//   |                |           | rides in SCM_RIGHTS ancillary data       |
//
// Shuffle messages:
//
//   | kFetch         | w -> w    | map task, reduce task                    |
//   | kPartition     | w -> w    | encoded partition (runs or raw bucket)   |
//   | kNotReady      | w -> w    | (respawned server, regen still pending)  |
//
// fd passing (shm shuffle plane): kPublishDoneShm and kReduceTask may
// carry open file descriptors as SCM_RIGHTS ancillary data attached to
// the first byte of the frame (send_frame_with_fds / recv_frame_with_fds
// below). Each such frame declares its fd count in the payload; a
// mismatch between declared and received fds, or kernel-truncated
// ancillary data (MSG_CTRUNC), raises ProtocolError.
//
// Malformed input — bad magic, unknown type, oversized or truncated
// frames, or a receive timeout — raises ProtocolError with an actionable
// message; the coordinator never hangs on a wedged or garbled peer.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/serde.hpp"
#include "mr/counters.hpp"
#include "mr/trace.hpp"
#include "mr/types.hpp"

namespace pairmr::mr::backend {

inline constexpr std::uint32_t kFrameMagic = 0x42524d50;  // 'PMRB'
// Backstop against garbled length fields; generous for test-scale data.
inline constexpr std::uint64_t kMaxFrameBytes = 1ull << 31;

enum class FrameType : std::uint32_t {
  kHello = 1,
  kMapTask = 2,
  kMapDone = 3,
  kPublish = 4,
  kPublishDone = 5,
  kReduceTask = 6,
  kReduceDone = 7,
  kDiscardMap = 8,
  kDiscardReduce = 9,
  kRelease = 10,
  kDie = 11,
  kShutdown = 12,
  kOk = 13,
  kErr = 14,
  kFetch = 15,
  kPartition = 16,
  kNotReady = 17,
  kBeginJob = 18,
  kEndJob = 19,
  kPublishDoneShm = 20,
};

// Error kind shipped in kErr frames, so the coordinator can rethrow the
// same exception type the worker's user/engine code threw.
enum class ErrKind : std::uint8_t {
  kRuntime = 0,       // std::exception -> std::runtime_error
  kPrecondition = 1,  // pairmr::PreconditionError
  kInternal = 2,      // pairmr::InternalError
  kProtocol = 3,      // backend::ProtocolError (stale/garbled frame)
};

// A control- or shuffle-plane failure: truncated/garbled frame, receive
// timeout, or an unexpectedly closed peer.
class ProtocolError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// Peer closed the connection cleanly (EOF) where a frame was expected.
// Distinct from ProtocolError because the fork backend *expects* it right
// after a kDie, and treats it as fatal anywhere else.
class PeerClosedError : public ProtocolError {
 public:
  using ProtocolError::ProtocolError;
};

// --- Framing ------------------------------------------------------------

// Writes one frame; retries short writes, uses MSG_NOSIGNAL. Throws
// ProtocolError (or PeerClosedError on EPIPE) on failure.
void send_frame(int fd, FrameType type, const std::string& payload);

// Reads one frame, validating magic, type, and length. `who` names the
// peer in error messages. Respects the socket's SO_RCVTIMEO (see
// set_recv_timeout): a stalled peer raises ProtocolError, never a hang.
// Throws PeerClosedError on clean EOF before any byte of the frame.
FrameType recv_frame(int fd, std::string& payload, const char* who);

// SO_RCVTIMEO in whole seconds (0 = never time out).
void set_recv_timeout(int fd, std::uint32_t seconds);

// --- fd passing (shm shuffle plane) --------------------------------------

// One sendmsg() cmsg buffer tops out well below this; the shm plane caps
// how many arena fds ride on one kReduceTask and falls back to the socket
// plane for the rest (Linux caps SCM_RIGHTS at 253 fds per message).
inline constexpr std::size_t kMaxFdsPerFrame = 128;

// Like send_frame, but attaches `fds` as SCM_RIGHTS ancillary data to the
// first byte of the frame. The kernel dup()s each fd into the receiver;
// the caller keeps ownership of its copies. Empty `fds` == send_frame.
void send_frame_with_fds(int fd, FrameType type, const std::string& payload,
                         const std::vector<int>& fds);

// Like recv_frame, but collects any SCM_RIGHTS fds (received CLOEXEC)
// that arrive with the frame into `fds_out` (appended in arrival order).
// Truncated ancillary data (MSG_CTRUNC, i.e. more than `max_fds` in
// flight) closes everything collected and raises ProtocolError. Callers
// that expect a specific count must check with require_fd_count.
FrameType recv_frame_with_fds(int fd, std::string& payload,
                              std::vector<int>& fds_out, const char* who,
                              std::size_t max_fds = kMaxFdsPerFrame);

// Validates a frame's declared-vs-received fd count; on mismatch closes
// every fd in `fds` and raises ProtocolError naming `who` and the frame.
void require_fd_count(std::vector<int>& fds, std::size_t declared,
                      const char* frame, const char* who);

// Close every fd in `fds` and clear it (error-path cleanup).
void close_fds(std::vector<int>& fds);

// --- kErr payloads -------------------------------------------------------

// Encodes a worker-side failure for a kErr frame (the worker's dispatch
// loop ships every caught exception this way, including the ProtocolError
// a stale kBeginJob raises on a worker already in a job).
std::string make_err_payload(ErrKind kind, const std::string& what);

// Decodes a kErr payload and rethrows it as the exception type the
// worker originally threw, with " [<who>]" appended so the error names
// the peer. The coordinator calls this on every kErr response.
[[noreturn]] void rethrow_shipped_error(const std::string& payload,
                                        const std::string& who);

// --- Unix-domain socket helpers -----------------------------------------

// Bind + listen on `path` (unlinking any stale socket first).
int uds_listen(const std::string& path);

// Connect to `path`; returns -1 on connect failure (caller may retry —
// the fork backend polls a respawning peer's shuffle socket).
int uds_connect(const std::string& path);

// --- Field codecs --------------------------------------------------------

void put_records(BufWriter& w, const std::vector<Record>& records);
std::vector<Record> get_records(BufReader& r);

void put_counters(BufWriter& w, const Counters& counters);
// Reconstructs an exact copy of the worker-side bag.
void get_counters(BufReader& r, Counters& out);

void put_spans(BufWriter& w, const std::vector<Span>& spans);
std::vector<Span> get_spans(BufReader& r);

}  // namespace pairmr::mr::backend
