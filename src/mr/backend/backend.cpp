#include "mr/backend/backend.hpp"

#include <cstdlib>
#include <cstring>

#include "common/check.hpp"

namespace pairmr::mr::backend {

BackendKind backend_kind_from_env() {
  const char* env = std::getenv("PAIRMR_TEST_BACKEND");
  if (env == nullptr || *env == '\0') return BackendKind::kInProcess;
  if (std::strcmp(env, "inprocess") == 0) return BackendKind::kInProcess;
  if (std::strcmp(env, "fork") == 0) return BackendKind::kFork;
  PAIRMR_REQUIRE(false, std::string("PAIRMR_TEST_BACKEND must be unset, "
                                    "\"inprocess\", or \"fork\"; got \"") +
                            env + "\"");
  return BackendKind::kInProcess;  // unreachable
}

ShufflePlane shuffle_plane_from_env() {
  const char* env = std::getenv("PAIRMR_SHUFFLE_PLANE");
  if (env == nullptr || *env == '\0') return ShufflePlane::kSocket;
  if (std::strcmp(env, "socket") == 0) return ShufflePlane::kSocket;
  if (std::strcmp(env, "shm") == 0) return ShufflePlane::kShm;
  PAIRMR_REQUIRE(false, std::string("PAIRMR_SHUFFLE_PLANE must be unset, "
                                    "\"socket\", or \"shm\"; got \"") +
                            env + "\"");
  return ShufflePlane::kSocket;  // unreachable
}

ShufflePlane resolve_shuffle_plane(ShufflePlane requested) {
  return requested == ShufflePlane::kAuto ? shuffle_plane_from_env()
                                          : requested;
}

}  // namespace pairmr::mr::backend
