// BackendSession — one persistent fork-backend pool shared by the jobs of
// a multi-job run (mr/backend/fork.hpp's `persistent` mode, with the
// copy-on-write bookkeeping that makes it safe).
//
// The fork backend ships each job's JobSpec to its pooled workers *by
// address*: the spec holds unserializable mapper/reducer factories, so a
// worker can only use it if the object was already fully constructed in
// the coordinator's address space when the pool forked — then the fork's
// copy-on-write image carries it. A spec constructed *after* the fork
// (say, on a stack frame the coordinator has since reused) would be
// garbage in the worker.
//
// BackendSession enforces that contract with declaration epochs: every
// spec is declared (explicitly via declare(), or implicitly by the first
// run()) and stamped with a monotonically increasing sequence number; the
// pool records the sequence at the moment it forks. Running a spec whose
// stamp post-dates the fork retires the current pool and forks a fresh
// one — correct for any call pattern, and callers that declare all their
// specs up front (PairwiseRunner does) pay exactly one fork per epoch,
// with every later job reusing the warm workers (kBeginJob re-ship
// instead of n fresh processes).
//
// Sequence numbers — not addresses — are the identity: a stack-allocated
// spec that dies and a new spec reusing the same address get different
// stamps, so the stale address can never masquerade as declared.
//
// Non-fork backends have no processes to reuse; run() simply delegates to
// Engine::run(spec) and the tallies stay zero.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "mr/engine.hpp"
#include "mr/job.hpp"

namespace pairmr::mr::backend {

class ForkBackend;

class BackendSession {
 public:
  // `kind` may be kAuto (resolved against PAIRMR_TEST_BACKEND once, at
  // construction, so one session never straddles backends).
  BackendSession(Cluster& cluster, BackendKind kind);
  ~BackendSession();

  BackendSession(const BackendSession&) = delete;
  BackendSession& operator=(const BackendSession&) = delete;

  // Stamp `spec` into the current declaration epoch. Idempotent per spec
  // object; re-declaring (the object was reconstructed) moves it to a new
  // epoch and the next run() restarts the pool.
  void declare(const JobSpec& spec);

  // Run `spec` on this session's backend. Fork: reuses the warm pool when
  // the spec's epoch allows it, restarts the pool otherwise.
  JobResult run(Engine& engine, const JobSpec& spec);

  BackendKind kind() const { return kind_; }
  const char* backend_name() const;

  // Lifetime tallies across every pool this session owned (fork only;
  // zero for the in-process backend). forked counts initial spawns and
  // crash respawns; reused counts kBeginJob re-ships to warm workers.
  std::uint64_t workers_forked() const;
  std::uint64_t workers_reused() const;

 private:
  Cluster& cluster_;
  const BackendKind kind_;
  std::unique_ptr<ForkBackend> fork_;
  // Declaration stamp per spec object; a reconstructed spec re-stamps.
  std::unordered_map<const JobSpec*, std::uint64_t> declared_;
  std::uint64_t seq_ = 0;
  std::uint64_t fork_seq_ = 0;  // highest stamp the live pool may run
  // Tallies of retired pools (the live pool's are read directly).
  std::uint64_t forked_total_ = 0;
  std::uint64_t reused_total_ = 0;
};

}  // namespace pairmr::mr::backend
