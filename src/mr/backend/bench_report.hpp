// Measurement rows for bench/bench_backend: the same pairwise run
// executed on the in-process and fork backends, timed and metered. One
// point per (regime, backend) cell; the JSON renderer is shared with the
// schema/golden test so BENCH_backend.json cannot silently drift.
//
// A point's `identical` flag records whether the run's aggregated output
// was byte-identical to the in-process reference for its regime — the
// bench doubles as a coarse cross-backend equivalence check at sizes the
// unit oracle does not reach.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace pairmr::mr::backend {

struct BenchPoint {
  std::string regime;   // "compute-heavy" | "shipping-heavy" | "simjoin-pipeline"
  std::string backend;  // "inprocess" | "fork"
  // Effective shuffle plane: "socket", or "shm" when the fork backend ran
  // the memfd/SCM_RIGHTS plane (always "socket" for in-process — it has
  // no shuffle transport to swap).
  std::string shuffle_plane = "socket";
  std::uint64_t v = 0;
  std::uint64_t element_bytes = 0;
  std::uint64_t evaluations = 0;
  std::uint64_t jobs = 0;               // engine jobs the run executed
  double wall_seconds = 0.0;  // makespan of the whole run
  std::uint64_t shuffle_remote_bytes = 0;
  // Transport rate: remote bytes / seconds spent inside remote shuffle
  // fetches (summed over the run's kShuffleFetch trace spans — fetch-busy
  // time, not wall). This isolates the plane: socket-plane fetches pay
  // connect + peer-side serialization + two socket copies + decode, shm
  // fetches decode straight from the arena mapping.
  double shuffle_mib_per_second = 0.0;
  // Worker-pool tallies (0/0 on the in-process backend): forked counts
  // real fork() calls, reused counts jobs served by warm pool workers
  // via kBeginJob re-ships. A pipeline point amortizing startup shows
  // workers_forked < jobs * nodes with workers_reused > 0.
  std::uint64_t workers_forked = 0;
  std::uint64_t workers_reused = 0;
  bool identical = false;               // output == in-process reference
};

// JSON document in the BENCH_frontier.json idiom:
// {"bench": "backend", "points": [...], "passed": bool}.
std::string bench_to_json(const std::vector<BenchPoint>& points);

// True when every point's output matched the reference.
bool bench_all_ok(const std::vector<BenchPoint>& points);

}  // namespace pairmr::mr::backend
