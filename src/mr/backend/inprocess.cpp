#include "mr/backend/inprocess.hpp"

#include <utility>

#include "common/check.hpp"
#include "mr/cluster.hpp"

namespace pairmr::mr::backend {

void InProcessBackend::begin_job(const JobContext& jc) {
  jc_ = &jc;
  staged_.clear();
  staged_.resize(jc.splits->size());
  published_.clear();
  published_.resize(jc.splits->size());
}

void InProcessBackend::end_job() {
  staged_.clear();
  published_.clear();
  jc_ = nullptr;
}

MapAttemptOutcome InProcessBackend::run_map_attempt(
    const MapAttemptDesc& desc) {
  const TaskEnv& env = jc_->env;
  MapExecution ex = execute_map_attempt(env, (*jc_->splits)[desc.task],
                                        desc.task, desc.node,
                                        desc.attempt_span, desc.tag);
  MapAttemptOutcome out;
  out.records_emitted = ex.ctx->records_emitted();
  out.bytes_emitted = ex.ctx->bytes_emitted();
  staged_[desc.task].insert_or_assign(desc.tag, std::move(ex));
  return out;
}

MapPublishOutcome InProcessBackend::publish_map_output(TaskIndex task,
                                                       const std::string& tag,
                                                       NodeId node,
                                                       SpanId kept_span) {
  const auto it = staged_[task].find(tag);
  PAIRMR_CHECK(it != staged_[task].end(),
               "publish of a map execution that was never staged");
  MapExecution ex = std::move(it->second);
  staged_[task].erase(it);
  FinalizedMapOutput fin =
      finalize_map_output(jc_->env, ex, task, node, kept_span);
  MapPublishOutcome out;
  out.meta = std::move(fin.meta);
  out.counters = std::move(ex.counters);
  if (jc_->spec->map_only) {
    PAIRMR_CHECK(fin.partitions.size() == 1 && fin.partitions[0].runs.empty(),
                 "map-only job must have one unspilled bucket");
    out.map_only_output = std::move(fin.partitions[0].final_run);
  } else {
    published_[task] = std::move(fin.partitions);
  }
  return out;
}

void InProcessBackend::discard_map_attempt(TaskIndex task,
                                           const std::string& tag,
                                           NodeId /*node*/) {
  staged_[task].erase(tag);
  // A failed attempt may have spilled before dying; its scratch runs are
  // garbage now.
  if (jc_->env.spill_mode) {
    jc_->env.dfs->remove_prefix(jc_->env.scratch_root + tag + "/");
  }
}

namespace {

// Serves reduce fetches straight from the published partition store.
class StoreSource final : public PartitionSource {
 public:
  StoreSource(std::vector<std::vector<MapOutputPartition>>& published,
              bool spill_mode, bool movable)
      : published_(published), spill_mode_(spill_mode), movable_(movable) {}

  FetchedPartition fetch(TaskIndex m, TaskIndex r) override {
    return fetch_from_partition(published_[m][r], spill_mode_, movable_);
  }

 private:
  std::vector<std::vector<MapOutputPartition>>& published_;
  bool spill_mode_;
  bool movable_;
};

}  // namespace

ReduceAttemptOutcome InProcessBackend::run_reduce_attempt(
    const ReduceAttemptDesc& desc) {
  const TaskEnv& env = jc_->env;
  StoreSource source(published_, env.spill_mode, env.movable_shuffle);
  ReduceExecution ex = execute_reduce_attempt(
      env, desc.task, desc.node, desc.attempt_span, desc.tag, source,
      desc.map_nodes, desc.meta, desc.drop_now);
  ReduceAttemptOutcome out;
  out.groups = ex.groups;
  out.max_group_records = ex.max_group_records;
  out.max_group_bytes = ex.max_group_bytes;
  out.bytes_emitted = ex.ctx->bytes_emitted();
  out.counters = std::move(ex.counters);
  out.output = std::move(ex.ctx->output());
  return out;
}

void InProcessBackend::discard_reduce_scratch(const std::string& tag,
                                              NodeId /*node*/) {
  // Merge-pass scratch of the failed/losing attempt is garbage now.
  if (jc_->env.spill_mode) {
    jc_->env.dfs->remove_prefix(jc_->env.scratch_root + tag + "/");
  }
}

void InProcessBackend::release_reduce_input(TaskIndex reduce_task) {
  for (auto& parts : published_) {
    if (reduce_task < parts.size()) parts[reduce_task].release();
  }
}

void InProcessBackend::crash_worker(NodeId /*node*/, TaskKind /*kind*/,
                                    TaskIndex /*task*/) {}

}  // namespace pairmr::mr::backend
