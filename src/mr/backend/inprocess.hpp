// The seed engine's execution substrate, behind the Backend interface:
// task attempts run on the calling pool thread, staged executions and
// published shuffle partitions live in coordinator memory. Extracted
// verbatim from the pre-refactor engine — byte-identical output,
// counters, meter totals, and trace structure.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "mr/backend/backend.hpp"

namespace pairmr::mr {
class Cluster;
}  // namespace pairmr::mr

namespace pairmr::mr::backend {

class InProcessBackend final : public Backend {
 public:
  explicit InProcessBackend(Cluster& cluster) : cluster_(cluster) {}

  const char* name() const override { return "inprocess"; }
  bool out_of_process() const override { return false; }

  void begin_job(const JobContext& jc) override;
  void end_job() override;

  MapAttemptOutcome run_map_attempt(const MapAttemptDesc& desc) override;
  MapPublishOutcome publish_map_output(TaskIndex task, const std::string& tag,
                                       NodeId node, SpanId kept_span) override;
  void discard_map_attempt(TaskIndex task, const std::string& tag,
                           NodeId node) override;

  ReduceAttemptOutcome run_reduce_attempt(
      const ReduceAttemptDesc& desc) override;
  void discard_reduce_scratch(const std::string& tag, NodeId node) override;
  void release_reduce_input(TaskIndex reduce_task) override;

  // No separate process to kill: the coordinator never dispatches the
  // doomed attempt, which is observationally identical (it accounts the
  // retry and the wasted traffic either way).
  void crash_worker(NodeId node, TaskKind kind, TaskIndex task) override;

 private:
  Cluster& cluster_;
  const JobContext* jc_ = nullptr;
  // Executions staged between run_map_attempt and publish/discard. Only
  // the pool thread that owns map task m touches staged_[m]; published_
  // partitions are written by that thread and read by reduce-phase
  // threads after the engine's phase barrier.
  std::vector<std::unordered_map<std::string, MapExecution>> staged_;
  std::vector<std::vector<MapOutputPartition>> published_;
};

}  // namespace pairmr::mr::backend
