// Multi-process shared-nothing execution: one forked worker process per
// simulated node, behind the Backend interface (mr/backend/backend.hpp).
//
// Topology per job:
//
//   coordinator ──ctrl UDS──> worker(node 0..n-1)   task dispatch, publish,
//        │                        │   ▲             discard, release, spans
//        │ pipe                   └shuffle UDS┘     and counters shipped back
//        ▼                                          worker <-> worker fetches
//     forker (fork server)
//
// Workers are forked without exec: they inherit the coordinator's job
// snapshot — JobSpec (including the unserializable mapper/reducer/scheme
// factories), splits, distributed cache, and a copy-on-write SimDfs for
// spill scratch — by address, which is what makes arbitrary user code
// runnable in a separate process. The *forker* is a tiny single-threaded
// fork server spawned at begin_job (while the coordinator's pool threads
// are idle, i.e. at a fork-safe point); it forks every worker, respawns
// crashed ones on request, and reaps them all, so the coordinator only
// ever waits on the forker and no zombie can outlive a job.
//
// Division of labour (see backend.hpp): the coordinator still decides
// placement, faults, metering, and counter merges; a worker only executes
// task attempts (the same task_exec code the in-process backend runs),
// stores/serves shuffle partitions, and ships counters + trace spans back
// over the control channel. Worker-recorded spans are replayed into the
// coordinator's tracer (Tracer::import_span) carrying the worker's
// os_pid — the differential tests' proof that execution really crossed a
// process boundary.
//
// Worker crash-kill (FaultPlan::kills_worker): crash_worker SIGKILLs the
// node's worker mid-task, asks the forker for a replacement, and replays
// every map output the dead worker had published (deterministic
// re-execution, counters and spans discarded; the regenerated partition
// metadata is checked against the original). Reduce attempts fetching
// from the dying worker ride it out by retrying the peer's shuffle socket
// until the respawned worker serves the regenerated partition.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include <sys/types.h>

#include "mr/backend/backend.hpp"
#include "mr/backend/protocol.hpp"

namespace pairmr::mr {
class Cluster;
}  // namespace pairmr::mr

namespace pairmr::mr::backend {

class ForkBackend final : public Backend {
 public:
  explicit ForkBackend(Cluster& cluster) : cluster_(cluster) {}
  ~ForkBackend() override;

  const char* name() const override { return "fork"; }
  bool out_of_process() const override { return true; }

  void begin_job(const JobContext& jc) override;
  void end_job() override;

  MapAttemptOutcome run_map_attempt(const MapAttemptDesc& desc) override;
  MapPublishOutcome publish_map_output(TaskIndex task, const std::string& tag,
                                       NodeId node, SpanId kept_span) override;
  void discard_map_attempt(TaskIndex task, const std::string& tag,
                           NodeId node) override;

  ReduceAttemptOutcome run_reduce_attempt(
      const ReduceAttemptDesc& desc) override;
  void discard_reduce_scratch(const std::string& tag, NodeId node) override;
  void release_reduce_input(TaskIndex reduce_task) override;

  void crash_worker(NodeId node, TaskKind kind, TaskIndex task) override;

 private:
  // One worker process. `mutex` serializes every control-channel exchange
  // with it (requests are strict request/response); shuffle traffic rides
  // a separate per-worker socket served by a dedicated worker thread, so
  // peer fetches never wait on the control plane.
  struct WorkerSlot {
    std::mutex mutex;
    int fd = -1;             // control connection (coordinator side)
    std::uint32_t pid = 0;   // worker's os pid (from its Hello)
    bool alive = false;      // has a live worker process
    // Map outputs this worker published (task, tag, kept span untraced on
    // regen), in publish order — replayed into a respawned worker.
    std::vector<std::pair<TaskIndex, std::string>> published;
  };

  // Send `type`+`payload` to node's worker and return the response frame,
  // holding the slot mutex. Throws the worker-shipped error for kErr
  // responses; PeerClosedError if the worker died unexpectedly.
  FrameType roundtrip(NodeId node, FrameType type, const std::string& payload,
                      std::string& response);
  FrameType roundtrip_locked(WorkerSlot& slot, NodeId node, FrameType type,
                             const std::string& payload,
                             std::string& response);

  // Accept control connections until `node`'s worker says Hello (other
  // workers' Hellos are stashed for their own accept_worker calls).
  void accept_worker(NodeId node, WorkerSlot& slot);

  // Ask the forker to fork a worker for `node`, then handshake it. The
  // caller holds the slot mutex.
  void spawn_worker_locked(WorkerSlot& slot, NodeId node);

  // Re-execute and re-publish everything `slot.published` records, on the
  // freshly respawned worker; verifies the regenerated partition metadata
  // matches what the original publish returned. Slot mutex held.
  void regenerate_published_locked(WorkerSlot& slot, NodeId node);

  // Replay worker-recorded spans under `root` (the coordinator-side
  // attempt/kept span the worker's local root span stands in for).
  void replay_spans(SpanId root, const std::vector<Span>& spans);

  [[noreturn]] void throw_worker_error(const std::string& payload,
                                       NodeId node);

  Cluster& cluster_;
  const JobContext* jc_ = nullptr;
  std::string session_dir_;     // mkdtemp under /tmp (UDS 108-char limit)
  int ctrl_listen_fd_ = -1;
  int forker_cmd_fd_ = -1;      // coordinator -> forker commands
  int forker_ack_fd_ = -1;      // forker -> coordinator acks
  pid_t forker_pid_ = -1;
  std::mutex forker_mutex_;  // serializes forker command-pipe exchanges
  std::vector<std::unique_ptr<WorkerSlot>> slots_;  // per node
  std::mutex accept_mutex_;
  // node -> (ctrl fd, pid) of workers that said Hello out of turn.
  std::unordered_map<std::uint32_t, std::pair<int, std::uint32_t>>
      hello_stash_;
  // Regenerated publishes must reproduce these (task -> meta per reducer).
  std::vector<std::vector<PartitionMeta>> published_meta_;
  std::mutex published_meta_mutex_;
};

}  // namespace pairmr::mr::backend
