// Multi-process shared-nothing execution: one forked worker process per
// simulated node, behind the Backend interface (mr/backend/backend.hpp).
//
// Topology per job:
//
//   coordinator ──ctrl UDS──> worker(node 0..n-1)   task dispatch, publish,
//        │                        │   ▲             discard, release, spans
//        │ pipe                   └shuffle UDS┘     and counters shipped back
//        ▼                                          worker <-> worker fetches
//     forker (fork server)
//
// Workers are forked without exec and start *jobless*: every job's context
// — the JobSpec pointer (the one piece that crosses by address: the spec
// holds unserializable mapper/reducer factories, so it must already be in
// the worker's copy-on-write image when the pool forked), the effective
// TaskEnv scalars, the scratch root, and the distributed cache — ships
// over the control channel in a kBeginJob frame, and each map task's
// input split rides inside its kMapTask frame. The *forker* is a tiny
// single-threaded fork server spawned when the pool first starts (while
// the coordinator's pool threads are idle, i.e. at a fork-safe point); it
// forks every worker, respawns crashed ones on request, and reaps them
// all, so the coordinator only ever waits on the forker and no zombie can
// outlive the backend.
//
// Persistent worker pool: constructed with `persistent = true` (what
// mr::backend::BackendSession does), the backend survives end_job — the
// workers get a kEndJob frame that drops their job state and the next
// begin_job re-ships context with kBeginJob instead of re-forking. The
// caller owns the copy-on-write contract: every JobSpec run on a
// persistent backend must have been fully constructed *before* the pool
// forked (BackendSession tracks declaration order and restarts the pool
// when a spec is younger than the fork). Non-persistent backends (the
// default; what Engine::run(spec) creates per job) tear everything down
// at end_job, exactly as before.
//
// Shuffle planes (JobContext::shuffle_plane):
//   * kSocket — published partitions stream over per-worker Unix-domain
//     shuffle sockets, one connect + request + re-serialized response per
//     remote fetch.
//   * kShm — at publish, the worker serializes the map task's partitions
//     once into a memfd_create arena and passes the fd to the coordinator
//     over SCM_RIGHTS (kPublishDoneShm); the coordinator re-ships the fd
//     with each reduce task that needs it, and the fetching reducer mmaps
//     the arena read-only and decodes straight from the mapping — no
//     socket streaming, no second serialization. Remote bytes consumed
//     this way are tallied under counter::kShuffleShmBytes. Any failure —
//     memfd unavailable, arena too many fds for one frame, a garbled
//     arena header — falls back to the socket plane per partition, so the
//     job's results never depend on the plane.
//
// Division of labour (see backend.hpp): the coordinator still decides
// placement, faults, metering, and counter merges; a worker only executes
// task attempts (the same task_exec code the in-process backend runs),
// stores/serves shuffle partitions, and ships counters + trace spans back
// over the control channel. Worker-recorded spans are replayed into the
// coordinator's tracer (Tracer::import_span) carrying the worker's
// os_pid — the differential tests' proof that execution really crossed a
// process boundary.
//
// Worker crash-kill (FaultPlan::kills_worker): crash_worker SIGKILLs the
// node's worker mid-task, asks the forker for a replacement, re-ships the
// job with kBeginJob, and replays every map output the dead worker had
// published (deterministic re-execution, counters and spans discarded;
// the regenerated partition metadata is checked against the original, and
// on the shm plane the regenerated arena replaces the dead worker's —
// the kernel keeps the old memfd alive for any reducer still mapping it).
// Reduce attempts fetching from the dying worker ride it out by retrying
// the peer's shuffle socket until the respawned worker serves the
// regenerated partition. A worker SIGKILLed mid-publish leaks nothing:
// its memfd dies with its last fd unless the coordinator already holds
// the passed copy.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include <sys/types.h>

#include "mr/backend/backend.hpp"
#include "mr/backend/protocol.hpp"

namespace pairmr::mr {
class Cluster;
}  // namespace pairmr::mr

namespace pairmr::mr::backend {

class ForkBackend final : public Backend {
 public:
  // `persistent` keeps the worker pool alive across end_job so a later
  // begin_job reuses the processes (see the header comment's COW
  // contract). The destructor always tears the pool down.
  explicit ForkBackend(Cluster& cluster, bool persistent = false)
      : cluster_(cluster), persistent_(persistent) {}
  ~ForkBackend() override;

  const char* name() const override { return "fork"; }
  bool out_of_process() const override { return true; }

  void begin_job(const JobContext& jc) override;
  void end_job() override;

  MapAttemptOutcome run_map_attempt(const MapAttemptDesc& desc) override;
  MapPublishOutcome publish_map_output(TaskIndex task, const std::string& tag,
                                       NodeId node, SpanId kept_span) override;
  void discard_map_attempt(TaskIndex task, const std::string& tag,
                           NodeId node) override;

  ReduceAttemptOutcome run_reduce_attempt(
      const ReduceAttemptDesc& desc) override;
  void discard_reduce_scratch(const std::string& tag, NodeId node) override;
  void release_reduce_input(TaskIndex reduce_task) override;

  void crash_worker(NodeId node, TaskKind kind, TaskIndex task) override;

  // True once the pool processes exist (the first begin_job forked them).
  bool has_forked() const { return !session_dir_.empty(); }

  // Lifetime tallies: worker processes forked (initial spawns + crash
  // respawns) and kBeginJob re-ships to an already-live worker. A
  // persistent pool running j jobs on n nodes fault-free forks n and
  // reuses n * (j - 1).
  std::uint64_t workers_forked() const { return workers_forked_; }
  std::uint64_t workers_reused() const { return workers_reused_; }

  // Shm-plane arena fds the coordinator currently holds (test hook: after
  // end_job this must be 0 — arenas never outlive their job).
  std::size_t open_arena_count() const;

 private:
  // One worker process. `mutex` serializes every control-channel exchange
  // with it (requests are strict request/response); shuffle traffic rides
  // a separate per-worker socket served by a dedicated worker thread, so
  // peer fetches never wait on the control plane.
  struct WorkerSlot {
    std::mutex mutex;
    int fd = -1;             // control connection (coordinator side)
    std::uint32_t pid = 0;   // worker's os pid (from its Hello)
    bool alive = false;      // has a live worker process
    // Map outputs this worker published (task, tag, kept span untraced on
    // regen), in publish order — replayed into a respawned worker.
    std::vector<std::pair<TaskIndex, std::string>> published;
  };

  // One published map task's shm arena, held coordinator-side so the
  // memfd outlives its publisher (a SIGKILLed worker's arena stays
  // servable) and can be re-shipped to every reducer that needs it.
  struct ArenaRef {
    int fd = -1;
    std::uint64_t len = 0;
  };

  // Send `type`+`payload` to node's worker and return the response frame,
  // holding the slot mutex. `send_fds` attach as SCM_RIGHTS; `recv_fds`
  // collects any that arrive with the response. Throws the worker-shipped
  // error for kErr responses; PeerClosedError if the worker died
  // unexpectedly.
  FrameType roundtrip(NodeId node, FrameType type, const std::string& payload,
                      std::string& response,
                      const std::vector<int>* send_fds = nullptr,
                      std::vector<int>* recv_fds = nullptr);
  FrameType roundtrip_locked(WorkerSlot& slot, NodeId node, FrameType type,
                             const std::string& payload,
                             std::string& response,
                             const std::vector<int>* send_fds = nullptr,
                             std::vector<int>* recv_fds = nullptr);

  // Accept control connections until `node`'s worker says Hello (other
  // workers' Hellos are stashed for their own accept_worker calls).
  void accept_worker(NodeId node, WorkerSlot& slot);

  // Ask the forker to fork a worker for `node`, handshake it, and — when a
  // job is in progress — ship the job context with kBeginJob. The caller
  // holds the slot mutex.
  void spawn_worker_locked(WorkerSlot& slot, NodeId node);

  // The kBeginJob payload for the current job (spec pointer, env scalars,
  // shuffle plane, distributed cache).
  std::string begin_job_payload() const;

  // The split section of a kMapTask frame: the task's input slice,
  // serialized (pooled workers cannot rely on the coordinator's splits
  // vector being in their fork image).
  void append_split(BufWriter& w, TaskIndex task) const;

  // Parse a kPublishDone/kPublishDoneShm response: fills `out`, stores a
  // shipped arena fd under `task` (replacing — and closing — any previous
  // one), and verifies the declared fd count. `fds` arrived with the
  // response frame.
  void settle_publish(TaskIndex task, FrameType type, const std::string& resp,
                      std::vector<int>& fds, SpanId kept_span,
                      MapPublishOutcome& out);

  // Re-execute and re-publish everything `slot.published` records, on the
  // freshly respawned worker; verifies the regenerated partition metadata
  // matches what the original publish returned. Slot mutex held.
  void regenerate_published_locked(WorkerSlot& slot, NodeId node);

  // Replay worker-recorded spans under `root` (the coordinator-side
  // attempt/kept span the worker's local root span stands in for).
  void replay_spans(SpanId root, const std::vector<Span>& spans);

  [[noreturn]] void throw_worker_error(const std::string& payload,
                                       NodeId node);

  // Close every held arena fd (idempotent).
  void close_arenas();

  // Full pool shutdown: workers, forker, sockets, session dir, arenas.
  // Idempotent; the destructor and non-persistent end_job land here.
  void teardown();

  Cluster& cluster_;
  const bool persistent_;
  const JobContext* jc_ = nullptr;
  std::string session_dir_;     // mkdtemp under /tmp (UDS 108-char limit)
  int ctrl_listen_fd_ = -1;
  int forker_cmd_fd_ = -1;      // coordinator -> forker commands
  int forker_ack_fd_ = -1;      // forker -> coordinator acks
  pid_t forker_pid_ = -1;
  std::mutex forker_mutex_;  // serializes forker command-pipe exchanges
  std::vector<std::unique_ptr<WorkerSlot>> slots_;  // per node
  std::mutex accept_mutex_;
  // node -> (ctrl fd, pid) of workers that said Hello out of turn.
  std::unordered_map<std::uint32_t, std::pair<int, std::uint32_t>>
      hello_stash_;
  // Regenerated publishes must reproduce these (task -> meta per reducer).
  std::vector<std::vector<PartitionMeta>> published_meta_;
  std::mutex published_meta_mutex_;
  // Shm plane: one arena per map task ({-1, 0} = none published / socket
  // fallback). Guarded by arenas_mutex_ (publishes and reduce dispatches
  // run on different pool threads).
  std::vector<ArenaRef> arenas_;
  mutable std::mutex arenas_mutex_;
  std::uint64_t workers_forked_ = 0;
  std::uint64_t workers_reused_ = 0;
};

}  // namespace pairmr::mr::backend
