#include "mr/backend/task_exec.hpp"

#include <sys/mman.h>

#include <algorithm>
#include <iterator>
#include <utility>

#include "common/check.hpp"
#include "mr/group.hpp"

namespace pairmr::mr::backend {

std::shared_ptr<const ShmMapping> ShmMapping::map_fd(int fd,
                                                     std::uint64_t len) {
  if (fd < 0 || len == 0) return nullptr;
  void* addr = ::mmap(nullptr, static_cast<std::size_t>(len), PROT_READ,
                      MAP_SHARED, fd, 0);
  if (addr == MAP_FAILED) return nullptr;
  return std::shared_ptr<const ShmMapping>(
      new ShmMapping(addr, static_cast<std::size_t>(len)));
}

ShmMapping::~ShmMapping() {
  if (addr_ != nullptr) ::munmap(addr_, len_);
}

namespace {

// Run the combiner over one partition bucket, replacing its contents.
// `parent` is the spill span the combine nests under (0 when untraced).
void run_combiner(const JobSpec& spec, NodeId node, TaskIndex task,
                  Counters& counters, std::vector<Record>& bucket,
                  Tracer* tracer, SpanId parent) {
  ScopedSpan combine(
      tracer, tracer != nullptr
                  ? tracer->begin_op(parent, SpanKind::kCombine, node)
                  : 0);
  ReduceContext ctx(node, task, counters, nullptr, tracer, combine.id());
  auto combiner = spec.combiner_factory();
  combiner->setup(ctx);
  counters.add(counter::kCombineInputRecords, bucket.size());
  group_by_key(bucket, [&](const Bytes& key, const std::vector<Bytes>& vals) {
    combiner->reduce(key, vals, ctx);
  });
  combiner->cleanup(ctx);
  counters.add(counter::kCombineOutputRecords, ctx.output().size());
  if (tracer != nullptr) {
    std::uint64_t bytes = 0;
    for (const auto& rec : ctx.output()) bytes += rec.size_bytes();
    combine.set_payload(bytes, ctx.output().size());
  }
  bucket = std::move(ctx.output());
}

}  // namespace

std::vector<Split> build_splits(SimDfs& dfs, const JobSpec& spec) {
  std::vector<Split> splits;
  for (const auto& path : spec.input_paths) {
    auto file = dfs.open(path);
    const std::size_t n = file->records.size();
    const std::uint64_t chunk =
        spec.max_records_per_split == 0 ? n : spec.max_records_per_split;
    if (n == 0) {
      // Empty files still produce one (empty) task so setup/cleanup-only
      // mappers run — mirrors Hadoop behaviour with empty splits disabled;
      // we skip them instead to keep task counts meaningful.
      continue;
    }
    for (std::size_t begin = 0; begin < n;
         begin += static_cast<std::size_t>(chunk)) {
      const std::size_t end =
          std::min(n, begin + static_cast<std::size_t>(chunk));
      splits.push_back(Split{file, begin, end, file->home});
    }
  }
  return splits;
}

MapExecution execute_map_attempt(const TaskEnv& env, const Split& split,
                                 TaskIndex task, NodeId node,
                                 SpanId attempt_span, const std::string& tag) {
  const JobSpec& spec = *env.spec;
  Tracer* const tracer = env.tracer;
  SimDfs& dfs = *env.dfs;
  const TaskIndex m = task;
  MapExecution e;
  e.counters = std::make_unique<Counters>();
  e.spilled.resize(env.spill_mode ? env.num_reducers : 0);
  ScopedSpan exec(tracer,
                  tracer != nullptr
                      ? tracer->begin_op(attempt_span, SpanKind::kMapExec,
                                         node)
                      : 0);
  auto ctx = std::make_unique<MapContext>(node, m, *env.partitioner,
                                          env.num_reducers, *e.counters,
                                          *env.cache, split.file->path, tracer,
                                          exec.id());
  std::uint32_t spill_seq = 0;
  if (env.spill_mode) {
    // Installed spill hook: before an emission would push tracked
    // buffer bytes past the budget, every non-empty bucket is
    // combined (Hadoop combines per spill), sorted with the
    // shuffle ordering, and written to scratch as one sorted run.
    ctx->attach_budget(
        env.budget.bytes, [&](std::vector<std::vector<Record>>& buckets) {
          ScopedSpan sp(tracer,
                        tracer != nullptr
                            ? tracer->begin_op(exec.id(),
                                               SpanKind::kSpillWrite, node)
                            : 0);
          std::uint64_t sp_bytes = 0;
          std::uint64_t sp_records = 0;
          for (std::uint32_t p = 0; p < buckets.size(); ++p) {
            auto& bucket = buckets[p];
            if (bucket.empty()) continue;
            if (spec.combiner_factory) {
              run_combiner(spec, node, m, *e.counters, bucket, tracer,
                           sp.id());
            }
            sort_records_stable(bucket);
            const std::string path =
                env.scratch_root + tag + "/spill-" +
                std::to_string(spill_seq) + "-r" + std::to_string(p);
            dfs.write_file(path, node, std::move(bucket));
            bucket.clear();
            auto file = dfs.open(path);
            e.counters->add(counter::kSpillRuns, 1);
            e.counters->add(counter::kSpillBytes, file->bytes);
            sp_bytes += file->bytes;
            sp_records += file->records.size();
            e.spilled[p].push_back(std::move(file));
          }
          ++spill_seq;
          sp.set_payload(sp_bytes, sp_records);
        });
  }
  auto mapper = spec.mapper_factory();
  mapper->setup(*ctx);
  for (std::size_t i = split.begin; i < split.end; ++i) {
    const Record& rec = split.file->records[i];
    mapper->map(rec.key, rec.value, *ctx);
  }
  mapper->cleanup(*ctx);
  if (env.spill_mode) {
    // Finalize the leftover buffer into the task's last, in-memory
    // sorted run — combined and ordered exactly like a spilled one.
    ScopedSpan fin(tracer,
                   tracer != nullptr
                       ? tracer->begin_op(exec.id(), SpanKind::kSpill, node)
                       : 0);
    std::uint64_t fin_bytes = 0;
    std::uint64_t fin_records = 0;
    for (auto& bucket : ctx->buckets()) {
      if (bucket.empty()) continue;
      if (spec.combiner_factory) {
        run_combiner(spec, node, m, *e.counters, bucket, tracer, fin.id());
      }
      sort_records_stable(bucket);
      for (const auto& rec : bucket) fin_bytes += rec.size_bytes();
      fin_records += bucket.size();
    }
    fin.set_payload(fin_bytes, fin_records);
    // Tracked buffers never outgrow the budget; the single record
    // larger than the whole budget is the one allowed overshoot.
    PAIRMR_CHECK(ctx->max_tracked_bytes() <=
                     std::max(env.budget.bytes, ctx->max_record_bytes()),
                 "map task exceeded its memory budget");
    if (ctx->max_tracked_bytes() != 0) {
      e.counters->note_max(counter::kMemoryMaxTrackedBytes,
                           ctx->max_tracked_bytes());
    }
  }
  exec.set_payload(ctx->bytes_emitted(), ctx->records_emitted());
  e.ctx = std::move(ctx);
  return e;
}

FinalizedMapOutput finalize_map_output(const TaskEnv& env, MapExecution& ex,
                                       TaskIndex task, NodeId node,
                                       SpanId kept_span) {
  const JobSpec& spec = *env.spec;
  Tracer* const tracer = env.tracer;
  MapContext& ctx = *ex.ctx;

  // Spill mode combines per run inside execute_map_attempt(); the
  // in-memory path combines once here, over the full settled buckets.
  if (spec.combiner_factory && !env.spill_mode) {
    ScopedSpan spill(tracer,
                     tracer != nullptr
                         ? tracer->begin_op(kept_span, SpanKind::kSpill, node)
                         : 0);
    for (auto& bucket : ctx.buckets()) {
      if (!bucket.empty()) {
        run_combiner(spec, node, task, *ex.counters, bucket, tracer,
                     spill.id());
      }
    }
    if (tracer != nullptr) {
      std::uint64_t out_bytes = 0;
      std::uint64_t out_records = 0;
      for (const auto& bucket : ctx.buckets()) {
        out_records += bucket.size();
        for (const auto& rec : bucket) out_bytes += rec.size_bytes();
      }
      spill.set_payload(out_bytes, out_records);
    }
  }

  FinalizedMapOutput out;
  out.partitions.resize(env.num_reducers);
  out.meta.resize(env.num_reducers);
  for (std::uint32_t p = 0; p < env.num_reducers; ++p) {
    MapOutputPartition& part = out.partitions[p];
    if (env.spill_mode) part.runs = std::move(ex.spilled[p]);
    part.final_run = std::move(ctx.buckets()[p]);
    part.records = part.final_run.size();
    part.bytes = 0;
    for (const auto& rec : part.final_run) {
      part.bytes += rec.size_bytes();
    }
    for (const auto& run : part.runs) {
      part.bytes += run->bytes;
      part.records += run->records.size();
    }
    out.meta[p] = PartitionMeta{part.bytes, part.records};
  }
  return out;
}

FetchedPartition fetch_from_partition(MapOutputPartition& part,
                                      bool spill_mode, bool movable) {
  FetchedPartition out;
  if (spill_mode) {
    for (const auto& run : part.runs) {
      out.sources.push_back(RunSource::from_file(run));
    }
    if (!part.final_run.empty()) {
      if (movable) {
        out.sources.push_back(RunSource::from_records(std::move(part.final_run)));
      } else {
        auto copy = part.final_run;
        out.sources.push_back(RunSource::from_records(std::move(copy)));
      }
    }
  } else if (movable) {
    out.raw = std::move(part.final_run);
  } else {
    out.raw = part.final_run;
  }
  return out;
}

ReduceExecution execute_reduce_attempt(
    const TaskEnv& env, TaskIndex r, NodeId node, SpanId attempt_span,
    const std::string& tag, PartitionSource& source,
    const std::vector<NodeId>& map_nodes,
    const std::vector<PartitionMeta>& meta,
    const std::vector<std::uint8_t>& drop_now) {
  const JobSpec& spec = *env.spec;
  Tracer* const tracer = env.tracer;
  const auto num_map_tasks = static_cast<TaskIndex>(map_nodes.size());
  ReduceExecution e;
  e.counters = std::make_unique<Counters>();
  // Fetch this reducer's partition from every map task, in map-task order
  // (deterministic). Partitions stay in place until the task settles, so
  // any re-execution can re-fetch.
  std::vector<Record> input;       // in-memory path
  std::vector<RunSource> sources;  // spill path: sorted runs
  if (!env.spill_mode) {
    std::size_t total = 0;
    for (TaskIndex m = 0; m < num_map_tasks; ++m) {
      total += static_cast<std::size_t>(meta[m].records);
    }
    input.reserve(total);
  }
  for (TaskIndex m = 0; m < num_map_tasks; ++m) {
    const NodeId src = map_nodes[m];
    if (drop_now[m] != 0 && tracer != nullptr) {
      // The first copy died mid-transfer and is thrown away; the
      // immediate re-fetch below is the one that counts. (The coordinator
      // meters both transfers and the fetch-retry counter.)
      tracer->record_transfer(attempt_span, SpanKind::kShuffleFetch, src,
                              node, meta[m].bytes, "dropped-mid-transfer");
    }
    ScopedSpan fetch(
        tracer, tracer != nullptr
                    ? tracer->begin_transfer(attempt_span,
                                             SpanKind::kShuffleFetch, src,
                                             node)
                    : 0);
    FetchedPartition part = source.fetch(m, r);
    fetch.set_payload(meta[m].bytes, meta[m].records);
    if (env.spill_mode) {
      // Source order — (map task, run age), final run last — plus
      // GroupIterator's low-source-first tie-break reproduces the
      // in-memory path's stable sort byte for byte.
      for (auto& run : part.sources) {
        sources.push_back(std::move(run));
      }
    } else {
      input.insert(input.end(), std::make_move_iterator(part.raw.begin()),
                   std::make_move_iterator(part.raw.end()));
    }
  }

  ScopedSpan exec(tracer,
                  tracer != nullptr
                      ? tracer->begin_op(attempt_span, SpanKind::kReduceExec,
                                         node)
                      : 0);
  e.ctx = std::make_unique<ReduceContext>(node, r, *e.counters, env.cache,
                                          tracer, exec.id());
  auto reducer = spec.reducer_factory();
  reducer->setup(*e.ctx);
  const auto consume = [&](const Bytes& key, const std::vector<Bytes>& vals) {
    ++e.groups;
    std::uint64_t group_bytes = 0;
    for (const auto& v : vals) group_bytes += key.size() + v.size();
    e.max_group_records =
        std::max<std::uint64_t>(e.max_group_records, vals.size());
    e.max_group_bytes = std::max(e.max_group_bytes, group_bytes);
    reducer->reduce(key, vals, *e.ctx);
  };
  if (env.spill_mode) {
    // Too many runs for one merge: fold consecutive batches into
    // wider scratch runs first (Hadoop's io.sort.factor passes),
    // then stream groups without ever materializing the partition.
    if (sources.size() > env.budget.merge_fan_in) {
      ScopedSpan merge(tracer,
                       tracer != nullptr
                           ? tracer->begin_op(exec.id(), SpanKind::kMergePass,
                                              node)
                           : 0);
      MergeStats merge_stats;
      sources = merge_to_fan_in(*env.dfs, env.scratch_root + tag + "/", node,
                                std::move(sources), env.budget.merge_fan_in,
                                merge_stats);
      merge.set_payload(merge_stats.bytes_written, merge_stats.runs_written);
      e.counters->add(counter::kMergePasses, merge_stats.passes);
    }
    GroupIterator groups(std::move(sources));
    while (groups.next()) consume(groups.key(), groups.values());
    if (groups.max_head_bytes() != 0) {
      e.counters->note_max(counter::kMemoryMaxTrackedBytes,
                           groups.max_head_bytes());
    }
  } else {
    group_by_key(input, consume);
  }
  reducer->cleanup(*e.ctx);
  exec.set_payload(e.ctx->bytes_emitted(), e.ctx->output().size());
  return e;
}

}  // namespace pairmr::mr::backend
