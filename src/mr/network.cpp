#include "mr/network.hpp"

#include <mutex>
#include <shared_mutex>

#include "common/check.hpp"

namespace pairmr::mr {

NetworkMeter::NetworkMeter(std::uint32_t num_nodes)
    : sent_(num_nodes), received_(num_nodes) {
  PAIRMR_REQUIRE(num_nodes > 0, "cluster needs at least one node");
}

void NetworkMeter::transfer(NodeId src, NodeId dst, std::uint64_t bytes) {
  PAIRMR_REQUIRE(src < sent_.size() && dst < sent_.size(),
                 "node id out of range");
  // Shared: concurrent transfers still update the atomics in parallel; the
  // lock only forbids a reset() from landing between this transfer's
  // individual counter updates (which would tear the ledger).
  std::shared_lock<std::shared_mutex> lock(reset_mutex_);
  if (src == dst) {
    local_bytes_.fetch_add(bytes, std::memory_order_relaxed);
    return;
  }
  remote_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  remote_transfers_.fetch_add(1, std::memory_order_relaxed);
  sent_[src].fetch_add(bytes, std::memory_order_relaxed);
  received_[dst].fetch_add(bytes, std::memory_order_relaxed);
}

std::uint64_t NetworkMeter::sent_by(NodeId node) const {
  PAIRMR_REQUIRE(node < sent_.size(), "node id out of range");
  return sent_[node].load();
}

std::uint64_t NetworkMeter::received_at(NodeId node) const {
  PAIRMR_REQUIRE(node < received_.size(), "node id out of range");
  return received_[node].load();
}

void NetworkMeter::reset() {
  std::unique_lock<std::shared_mutex> lock(reset_mutex_);
  remote_bytes_.store(0);
  local_bytes_.store(0);
  remote_transfers_.store(0);
  for (auto& a : sent_) a.store(0);
  for (auto& a : received_) a.store(0);
}

}  // namespace pairmr::mr
