#include "mr/engine.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/log.hpp"
#include "common/stopwatch.hpp"
#include "mr/backend/backend.hpp"
#include "mr/backend/fork.hpp"
#include "mr/backend/inprocess.hpp"
#include "mr/fault.hpp"
#include "mr/trace.hpp"

namespace pairmr::mr {

namespace {

// Backstop against a runaway fault plan (a correct plan kills any task
// only finitely often, so this is never reached in practice).
constexpr std::uint32_t kAttemptCap = 1000;

// PAIRMR_TEST_MEMORY_BUDGET (a byte count) force-enables the spill path
// for jobs whose spec leaves it disabled — the CI spill suite runs the
// test battery out-of-core this way, relying on the spill path producing
// byte-identical output. Parsed per run, so tests may setenv between
// jobs, and forked workers (which inherit the environment) agree with
// the coordinator.
std::uint64_t test_memory_budget_bytes() {
  const char* env = std::getenv("PAIRMR_TEST_MEMORY_BUDGET");
  if (env == nullptr || *env == '\0') return 0;
  return static_cast<std::uint64_t>(std::strtoull(env, nullptr, 10));
}

// Scratch tag of one task execution: "m<task>-a<attempt>" / "r<task>-a<n>"
// (speculative backups append "-b"). Unique per execution, so discarded
// attempts never collide with kept ones on the write-once DFS.
std::string attempt_tag(char kind, TaskIndex task, std::uint32_t attempt) {
  std::string tag(1, kind);
  tag += std::to_string(task);
  tag += "-a";
  tag += std::to_string(attempt);
  return tag;
}

}  // namespace

JobResult Engine::run(const JobSpec& spec) {
  BackendKind kind = spec.backend;
  if (kind == BackendKind::kAuto) kind = backend::backend_kind_from_env();
  if (kind == BackendKind::kFork) {
    backend::ForkBackend fork_backend(cluster_);
    return run(spec, fork_backend);
  }
  backend::InProcessBackend inprocess_backend(cluster_);
  return run(spec, inprocess_backend);
}

JobResult Engine::run(const JobSpec& spec, backend::Backend& backend) {
  spec.validate();

  const Stopwatch timer;
  const std::uint32_t num_nodes = cluster_.num_nodes();
  // Map-only jobs use a single pass-through bucket so emission order is
  // preserved in the output.
  const std::uint32_t num_reducers =
      spec.map_only ? 1
      : spec.num_reduce_tasks == 0 ? num_nodes
                                   : spec.num_reduce_tasks;
  const HashPartitioner default_partitioner;
  const Partitioner& partitioner =
      spec.partitioner ? *spec.partitioner : default_partitioner;

  static const FaultPlan kNoFaults;
  const FaultPlan& plan = spec.fault_plan ? *spec.fault_plan : kNoFaults;

  // When no execution can ever be repeated — no fault plan (so no kills,
  // stragglers, or dropped fetches) and no user-error retries — every
  // reduce task settles on its first execution and the shuffle can *move*
  // map-output records into the reducer instead of copying them. Any
  // retry possibility forces copies, since re-execution re-fetches the
  // buckets.
  const bool movable_shuffle =
      spec.fault_plan == nullptr && spec.max_task_attempts <= 1;

  // Effective memory budget (mr/spill.hpp): the spec's, or the test
  // override when the spec leaves it disabled. Map-only jobs never spill —
  // their output contract is emission order, which a sorted run would
  // destroy.
  MemoryBudget budget = spec.memory_budget;
  const std::uint64_t test_budget = test_memory_budget_bytes();
  if (!budget.enabled() && test_budget != 0) {
    budget.bytes = test_budget;
    budget.merge_fan_in = std::max<std::uint32_t>(2, budget.merge_fan_in);
  }
  if (spec.map_only) budget = MemoryBudget{.bytes = 0};
  const bool spill_mode = budget.enabled();
  // Scratch runs live next to (not inside) the output dir, so output
  // listings stay clean. Tags below keep every task attempt's files
  // unique (the DFS is write-once).
  const std::string scratch_root = spec.output_dir + ".spill/";

  // Tracing is opt-in and nullable: every recording site below is guarded,
  // so an untraced run does no tracer work at all.
  Tracer* const tracer =
      spec.tracer != nullptr ? spec.tracer : cluster_.tracer();
  const SpanId job_span =
      tracer != nullptr ? tracer->begin_job(spec.name) : 0;

  // Node the plan loses during this job; a node that already failed in an
  // earlier job does not die twice (it is simply never scheduled).
  std::optional<NodeId> doomed;
  if (plan.failed_node()) {
    PAIRMR_REQUIRE(*plan.failed_node() < num_nodes,
                   "fault plan fails an out-of-range node");
    if (cluster_.is_alive(*plan.failed_node())) doomed = plan.failed_node();
  }

  // Nodes able to host (re)scheduled attempts for the rest of the job.
  std::vector<NodeId> usable;
  usable.reserve(num_nodes);
  for (NodeId nd = 0; nd < num_nodes; ++nd) {
    if (cluster_.is_alive(nd) && !(doomed && nd == *doomed)) {
      usable.push_back(nd);
    }
  }
  PAIRMR_REQUIRE(!usable.empty(), "fault plan leaves no usable node");

  Counters counters;
  SimDfs& dfs = cluster_.dfs();
  NetworkMeter& net = cluster_.network();

  // Scratch lifecycle: clear leftovers of any earlier run that shared the
  // output dir, and sweep our own files on every exit path (the guard
  // also fires when a failing job propagates an exception).
  struct ScratchSweep {
    SimDfs& dfs;
    const std::string& root;
    bool active;
    ~ScratchSweep() {
      if (active) dfs.remove_prefix(root);
    }
  } scratch_sweep{dfs, scratch_root, spill_mode};
  if (spill_mode) dfs.remove_prefix(scratch_root);

  // Deterministic placement for rescheduled and speculative attempts.
  const auto place = [&usable](std::uint64_t origin, std::uint64_t salt) {
    return usable[(origin + salt) % usable.size()];
  };

  // The node hosting the backup copy of a straggler: the next usable node
  // after the one the original ran on.
  const auto backup_node_for = [&usable](NodeId original) {
    const auto it = std::find(usable.begin(), usable.end(), original);
    const auto idx = static_cast<std::size_t>(it - usable.begin());
    return usable[(idx + 1) % usable.size()];
  };

  // Fault-attributable traffic: metered like any transfer and additionally
  // tallied as recovery overhead (a fault-free run never moves these bytes).
  const auto recovery_transfer = [&](NodeId src, NodeId dst,
                                     std::uint64_t bytes) {
    net.transfer(src, dst, bytes);
    if (src != dst) counters.add(counter::kRecoveryBytes, bytes);
  };

  // --- Distributed cache broadcast -------------------------------------
  ReduceContext::CacheMap cache;
  SpanId broadcast_phase = 0;
  if (tracer != nullptr && !spec.cache_paths.empty()) {
    broadcast_phase = tracer->begin_phase(job_span, "broadcast");
  }
  for (const auto& path : spec.cache_paths) {
    auto file = dfs.open(path);
    // Ship the file to every live node other than its home (its home reads
    // it from local disk). This is the paper's "distribute to all nodes".
    // A node doomed to die mid-job still receives its (wasted) copy.
    std::uint64_t shipped = 0;
    for (NodeId node = 0; node < num_nodes; ++node) {
      if (!cluster_.is_alive(node)) continue;
      net.transfer(file->home, node, file->bytes);
      if (tracer != nullptr) {
        tracer->record_transfer(broadcast_phase, SpanKind::kCacheBroadcast,
                                file->home, node, file->bytes, path);
      }
      if (node != file->home) shipped += file->bytes;
    }
    counters.add(counter::kCacheBroadcastBytes, shipped);
    cache.emplace(path, std::move(file));
  }
  if (broadcast_phase != 0) tracer->end(broadcast_phase);

  // --- Map phase --------------------------------------------------------
  const std::vector<backend::Split> splits = backend::build_splits(dfs, spec);
  PAIRMR_REQUIRE(!splits.empty(), "job has no input records");
  const auto num_map_tasks = static_cast<TaskIndex>(splits.size());

  PAIRMR_LOG(kInfo) << "job '" << spec.name << "': " << num_map_tasks
                    << " map task(s), " << num_reducers << " reduce task(s)"
                    << " [" << backend.name() << " backend]";

  // Hand the settled job environment to the backend. `jc` and everything
  // it points to outlive the job (the fork backend's workers inherit the
  // pointers across fork()).
  backend::JobContext jc;
  jc.spec = &spec;
  jc.env.spec = &spec;
  jc.env.partitioner = &partitioner;
  jc.env.num_reducers = num_reducers;
  jc.env.budget = budget;
  jc.env.spill_mode = spill_mode;
  jc.env.movable_shuffle = movable_shuffle;
  jc.env.scratch_root = scratch_root;
  jc.env.dfs = &dfs;
  jc.env.cache = &cache;
  jc.env.tracer = tracer;
  jc.splits = &splits;
  jc.shuffle_plane = backend::resolve_shuffle_plane(spec.shuffle_plane);
  jc.num_nodes = num_nodes;
  jc.node_alive.resize(num_nodes, 0);
  for (NodeId nd = 0; nd < num_nodes; ++nd) {
    jc.node_alive[nd] = cluster_.is_alive(nd) ? 1 : 0;
  }
  backend.begin_job(jc);
  // end_job on every exit path, before the scratch sweep above (declared
  // later → destroyed first), so no worker outlives the job.
  struct JobEnd {
    backend::Backend& b;
    ~JobEnd() { b.end_job(); }
  } job_end{backend};

  // Settled per-map-task state, written once by the pool thread that owns
  // task m, read by reduce tasks after the phase barrier.
  std::vector<NodeId> map_node(num_map_tasks, 0);
  std::vector<std::vector<backend::PartitionMeta>> partition_meta(
      num_map_tasks);
  std::vector<std::vector<Record>> map_only_out(
      spec.map_only ? num_map_tasks : 0);
  std::vector<TaskStats> map_stats(num_map_tasks);

  const std::uint32_t max_attempts = std::max(1u, spec.max_task_attempts);

  const SpanId map_phase =
      tracer != nullptr ? tracer->begin_phase(job_span, "map") : 0;
  {
    std::vector<std::function<void()>> tasks;
    tasks.reserve(num_map_tasks);
    for (TaskIndex m = 0; m < num_map_tasks; ++m) {
      tasks.push_back([&, m] {
        const backend::Split& split = splits[m];
        const NodeId home = split.file->home;
        std::uint64_t input_bytes = 0;
        for (std::size_t i = split.begin; i < split.end; ++i) {
          input_bytes += split.file->records[i].size_bytes();
        }

        // Attempt loop (Hadoop task retry): a failed attempt's emissions
        // and counters are discarded wholesale; only the kept attempt's
        // state merges into the job. Injected faults retry without
        // consuming max_task_attempts (they are environmental, not bugs).
        std::uint32_t user_failures = 0;
        for (std::uint32_t attempt = 0;; ++attempt) {
          PAIRMR_CHECK(attempt < kAttemptCap, "map task retried too often");
          // Attempt 0 runs data-local (even on a node about to die — that
          // is what makes its loss cost something); retries move on.
          const NodeId node = (attempt == 0 && cluster_.is_alive(home))
                                  ? home
                                  : place(home, attempt);
          const SpanId att =
              tracer != nullptr
                  ? tracer->begin_task(map_phase, TaskKind::kMap, m, attempt,
                                       node)
                  : 0;
          // Reading the split away from its home replica travels the wire;
          // only recovery from faults ever needs that.
          if (node != home) {
            recovery_transfer(home, node, input_bytes);
            if (tracer != nullptr) {
              tracer->record_transfer(att, SpanKind::kInputRead, home, node,
                                      input_bytes, "recovery-reread");
            }
          }

          if ((doomed && node == *doomed) ||
              plan.kills_task(TaskKind::kMap, m, attempt)) {
            counters.add(counter::kTasksRetried, 1);
            if (tracer != nullptr) {
              tracer->mark_faulted(att, doomed && node == *doomed
                                            ? "node-lost"
                                            : "killed-by-fault-plan");
              tracer->end(att);
            }
            PAIRMR_LOG(kWarn) << "map task " << m << " attempt " << attempt
                              << " killed by fault plan; retrying";
            continue;
          }

          if (plan.kills_worker(TaskKind::kMap, m, attempt)) {
            // The worker process hosting this attempt dies mid-task
            // (SIGKILL under the fork backend; the in-process backend has
            // no process, so nothing executes). Work already published on
            // that worker is regenerated backend-side; the attempt itself
            // is rescheduled like any killed attempt.
            backend.crash_worker(node, TaskKind::kMap, m);
            counters.add(counter::kTasksRetried, 1);
            if (tracer != nullptr) {
              tracer->mark_faulted(att, "worker-killed");
              tracer->end(att);
            }
            PAIRMR_LOG(kWarn) << "map task " << m << " attempt " << attempt
                              << " lost its worker process; retrying";
            continue;
          }

          const std::string tag = attempt_tag('m', m, attempt);
          backend::MapAttemptOutcome ex;
          try {
            ex = backend.run_map_attempt({m, attempt, node, att, tag});
          } catch (...) {
            const bool fatal = ++user_failures >= max_attempts;
            // A failed attempt may have spilled before dying; its scratch
            // runs are garbage now.
            backend.discard_map_attempt(m, tag, node);
            if (tracer != nullptr) {
              tracer->mark_faulted(att, "user-error");
              tracer->end(att);
            }
            if (fatal) throw;
            counters.add(counter::kTasksRetried, 1);
            PAIRMR_LOG(kWarn) << "map task " << m << " attempt " << attempt
                              << " failed; retrying";
            continue;
          }
          NodeId final_node = node;
          SpanId kept_span = att;
          std::string kept_tag = tag;

          // Speculative re-execution: a straggling task gets a backup copy
          // on another node; the plan decides the race. The loser's work
          // (and input re-read) is wasted, but the output is byte-identical
          // either way, so determinism survives.
          if (spec.speculative_execution && usable.size() > 1 &&
              plan.is_straggler(TaskKind::kMap, m)) {
            const NodeId backup = backup_node_for(node);
            const SpanId batt =
                tracer != nullptr
                    ? tracer->begin_task(map_phase, TaskKind::kMap, m,
                                         attempt, backup,
                                         /*speculative=*/true)
                    : 0;
            if (backup != home) {
              recovery_transfer(home, backup, input_bytes);
              if (tracer != nullptr) {
                tracer->record_transfer(batt, SpanKind::kInputRead, home,
                                        backup, input_bytes,
                                        "recovery-reread");
              }
            }
            backend::MapAttemptOutcome backup_ex =
                backend.run_map_attempt({m, attempt, backup, batt,
                                         tag + "-b"});
            counters.add(counter::kTasksSpeculative, 1);
            SpanId loser_span = batt;
            std::string loser_tag = tag + "-b";
            NodeId loser_node = backup;
            if (plan.backup_wins(TaskKind::kMap, m)) {
              counters.add(counter::kSpeculativeWins, 1);
              ex = backup_ex;
              final_node = backup;
              kept_span = batt;
              kept_tag = tag + "-b";
              loser_span = att;
              loser_tag = tag;
              loser_node = node;
            }
            // The losing copy's staged execution and scratch runs are
            // wasted work.
            backend.discard_map_attempt(m, loser_tag, loser_node);
            if (tracer != nullptr) {
              tracer->mark_faulted(loser_span, "lost-race");
              tracer->end(loser_span);
            }
          }

          // Settle the kept execution: combine (in-memory path) and make
          // its partitions fetchable. The backend returns the metadata the
          // coordinator meters every fetch of this task's output with.
          backend::MapPublishOutcome pub =
              backend.publish_map_output(m, kept_tag, final_node, kept_span);
          pub.counters->add(counter::kMapInputRecords,
                            split.end - split.begin);
          pub.counters->add(counter::kMapOutputRecords, ex.records_emitted);
          pub.counters->add(counter::kMapOutputBytes, ex.bytes_emitted);

          map_stats[m] = TaskStats{
              .index = m,
              .node = final_node,
              .input_records = split.end - split.begin,
              .output_records = ex.records_emitted,
              .output_bytes = ex.bytes_emitted,
          };
          map_node[m] = final_node;
          partition_meta[m] = std::move(pub.meta);
          if (spec.map_only) map_only_out[m] = std::move(pub.map_only_output);
          counters.merge(*pub.counters);
          if (tracer != nullptr) {
            tracer->end(kept_span, ex.bytes_emitted, ex.records_emitted);
          }
          break;
        }
      });
    }
    cluster_.pool().run_all(std::move(tasks));
  }
  if (map_phase != 0) tracer->end(map_phase);

  // The doomed node is gone for good once the map phase ends: reduce
  // placement and every later job schedule around it.
  if (doomed) {
    PAIRMR_LOG(kWarn) << "node " << *doomed << " lost during job '"
                      << spec.name << "'";
    cluster_.fail_node(*doomed);
  }

  // --- Map-only: write map outputs directly, no shuffle ------------------
  if (spec.map_only) {
    const SpanId write_phase =
        tracer != nullptr ? tracer->begin_phase(job_span, "write") : 0;
    std::vector<std::string> output_paths(num_map_tasks);
    for (TaskIndex m = 0; m < num_map_tasks; ++m) {
      char name[32];
      std::snprintf(name, sizeof(name), "part-m-%05u", m);
      const std::string path = spec.output_dir + "/" + name;
      {
        ScopedSpan write(tracer,
                         tracer != nullptr
                             ? tracer->begin_op(write_phase,
                                                SpanKind::kOutputWrite,
                                                map_stats[m].node, path)
                             : 0);
        write.set_payload(map_stats[m].output_bytes,
                          map_stats[m].output_records);
        dfs.write_file(path, map_stats[m].node, std::move(map_only_out[m]));
      }
      output_paths[m] = path;
    }
    if (tracer != nullptr) {
      tracer->end(write_phase);
      tracer->end(job_span);
    }
    JobResult result;
    result.job_name = spec.name;
    result.output_dir = spec.output_dir;
    result.output_paths = std::move(output_paths);
    result.counters = counters.snapshot();
    result.map_tasks = std::move(map_stats);
    result.elapsed_seconds = timer.elapsed_seconds();
    return result;
  }

  // --- Shuffle + reduce phase -------------------------------------------
  std::vector<TaskStats> reduce_stats(num_reducers);
  std::vector<std::string> output_paths(num_reducers);

  const SpanId reduce_phase =
      tracer != nullptr ? tracer->begin_phase(job_span, "reduce") : 0;
  {
    std::vector<std::function<void()>> tasks;
    tasks.reserve(num_reducers);
    for (TaskIndex r = 0; r < num_reducers; ++r) {
      tasks.push_back([&, r] {
        // An injected fetch drop fires once per (reduce, map) pair.
        std::vector<bool> dropped(num_map_tasks, false);

        // The shuffle traffic of an attempt that fetched its input but
        // never published output (killed, crashed, or lost the race).
        // `attempt_span` is set only when the attempt never executed (no
        // fetch spans exist yet); executions record their own.
        const auto charge_wasted_fetches = [&](NodeId node,
                                               SpanId attempt_span) {
          for (TaskIndex m = 0; m < num_map_tasks; ++m) {
            const std::uint64_t bytes = partition_meta[m][r].bytes;
            recovery_transfer(map_node[m], node, bytes);
            if (tracer != nullptr && attempt_span != 0) {
              tracer->record_transfer(attempt_span, SpanKind::kShuffleFetch,
                                      map_node[m], node, bytes, "wasted");
            }
          }
        };

        // One settled execution of reduce task r, as the coordinator sees
        // it after the backend ran shuffle + sort + reduce.
        struct Settled {
          NodeId node = 0;
          SpanId span = 0;  // attempt span (0 when untraced)
          backend::ReduceAttemptOutcome out;
        };

        const auto execute = [&](NodeId node, std::uint32_t attempt,
                                 SpanId attempt_span, const std::string& tag) {
          // Fetch drops fire once per (reduce, map) pair, on the first
          // execution that reaches its fetch phase. The coordinator both
          // decides and meters the wasted first copy — the immediate
          // re-fetch is the one that counts — so every backend accounts
          // it identically.
          std::vector<std::uint8_t> drop_now(num_map_tasks, 0);
          std::vector<backend::PartitionMeta> meta(num_map_tasks);
          for (TaskIndex m = 0; m < num_map_tasks; ++m) {
            meta[m] = partition_meta[m][r];
            if (!dropped[m] && plan.drops_fetch(r, m)) {
              dropped[m] = true;
              drop_now[m] = 1;
              recovery_transfer(map_node[m], node, meta[m].bytes);
              counters.add(counter::kShuffleFetchRetries, 1);
            }
          }
          backend::ReduceAttemptDesc desc;
          desc.task = r;
          desc.attempt = attempt;
          desc.node = node;
          desc.attempt_span = attempt_span;
          desc.tag = tag;
          desc.map_nodes = map_node;
          desc.meta = std::move(meta);
          desc.drop_now = std::move(drop_now);
          Settled s;
          s.node = node;
          s.span = attempt_span;
          s.out = backend.run_reduce_attempt(desc);
          return s;
        };

        std::uint32_t user_failures = 0;
        for (std::uint32_t attempt = 0;; ++attempt) {
          PAIRMR_CHECK(attempt < kAttemptCap, "reduce task retried too often");
          const NodeId node = place(r, attempt);
          const SpanId att =
              tracer != nullptr
                  ? tracer->begin_task(reduce_phase, TaskKind::kReduce, r,
                                       attempt, node)
                  : 0;

          if (plan.kills_task(TaskKind::kReduce, r, attempt)) {
            // Aborted mid-task: its shuffle happened and was for nothing.
            charge_wasted_fetches(node, att);
            counters.add(counter::kTasksRetried, 1);
            if (tracer != nullptr) {
              tracer->mark_faulted(att, "killed-by-fault-plan");
              tracer->end(att);
            }
            PAIRMR_LOG(kWarn) << "reduce task " << r << " attempt " << attempt
                              << " killed by fault plan; retrying";
            continue;
          }

          if (plan.kills_worker(TaskKind::kReduce, r, attempt)) {
            // The worker process hosting this attempt dies mid-task; its
            // shuffle happened and was for nothing, and any map output it
            // hosted is regenerated backend-side.
            backend.crash_worker(node, TaskKind::kReduce, r);
            charge_wasted_fetches(node, att);
            counters.add(counter::kTasksRetried, 1);
            if (tracer != nullptr) {
              tracer->mark_faulted(att, "worker-killed");
              tracer->end(att);
            }
            PAIRMR_LOG(kWarn) << "reduce task " << r << " attempt " << attempt
                              << " lost its worker process; retrying";
            continue;
          }

          const std::string tag = attempt_tag('r', r, attempt);
          Settled winner;
          try {
            winner = execute(node, attempt, att, tag);
          } catch (...) {
            const bool fatal = ++user_failures >= max_attempts;
            // Merge-pass scratch of the failed attempt is garbage now.
            backend.discard_reduce_scratch(tag, node);
            if (tracer != nullptr) {
              tracer->mark_faulted(att, "user-error");
              tracer->end(att);
            }
            if (fatal) throw;
            charge_wasted_fetches(node, 0);
            counters.add(counter::kTasksRetried, 1);
            PAIRMR_LOG(kWarn) << "reduce task " << r << " attempt "
                              << attempt << " failed; retrying";
            continue;
          }

          if (spec.speculative_execution && usable.size() > 1 &&
              plan.is_straggler(TaskKind::kReduce, r)) {
            const NodeId backup_node = backup_node_for(node);
            const SpanId batt =
                tracer != nullptr
                    ? tracer->begin_task(reduce_phase, TaskKind::kReduce, r,
                                         attempt, backup_node,
                                         /*speculative=*/true)
                    : 0;
            Settled backup = execute(backup_node, attempt, batt, tag + "-b");
            counters.add(counter::kTasksSpeculative, 1);
            std::string loser_tag = tag + "-b";
            if (plan.backup_wins(TaskKind::kReduce, r)) {
              counters.add(counter::kSpeculativeWins, 1);
              std::swap(winner, backup);
              loser_tag = tag;
            }
            // After the optional swap, `backup` holds the losing execution.
            backend.discard_reduce_scratch(loser_tag, backup.node);
            charge_wasted_fetches(backup.node, 0);
            if (tracer != nullptr) {
              tracer->mark_faulted(backup.span, "lost-race");
              tracer->end(backup.span);
            }
          }

          // Winning execution: release map outputs, meter its shuffle,
          // publish counters and output.
          backend.release_reduce_input(r);
          std::uint64_t local_bytes = 0;
          std::uint64_t remote_bytes = 0;
          std::uint64_t input_records = 0;
          for (TaskIndex m = 0; m < num_map_tasks; ++m) {
            const backend::PartitionMeta& pm = partition_meta[m][r];
            net.transfer(map_node[m], winner.node, pm.bytes);
            (map_node[m] == winner.node ? local_bytes : remote_bytes) +=
                pm.bytes;
            input_records += pm.records;
          }

          Counters& wc = *winner.out.counters;
          wc.add(counter::kShuffleBytesLocal, local_bytes);
          wc.add(counter::kShuffleBytesRemote, remote_bytes);
          wc.add(counter::kReduceInputGroups, winner.out.groups);
          wc.add(counter::kReduceInputRecords, input_records);
          wc.add(counter::kReduceOutputRecords, winner.out.output.size());
          wc.add(counter::kReduceOutputBytes, winner.out.bytes_emitted);
          wc.note_max(counter::kReduceMaxGroupRecords,
                      winner.out.max_group_records);
          wc.note_max(counter::kReduceMaxGroupBytes,
                      winner.out.max_group_bytes);
          counters.merge(wc);

          reduce_stats[r] = TaskStats{
              .index = r,
              .node = winner.node,
              .input_records = input_records,
              .output_records = winner.out.output.size(),
              .output_bytes = winner.out.bytes_emitted,
              .max_group_records = winner.out.max_group_records,
              .max_group_bytes = winner.out.max_group_bytes,
          };

          char name[32];
          std::snprintf(name, sizeof(name), "part-r-%05u", r);
          const std::string path = spec.output_dir + "/" + name;
          {
            ScopedSpan write(tracer,
                             tracer != nullptr
                                 ? tracer->begin_op(winner.span,
                                                    SpanKind::kOutputWrite,
                                                    winner.node, path)
                                 : 0);
            write.set_payload(reduce_stats[r].output_bytes,
                              reduce_stats[r].output_records);
            dfs.write_file(path, winner.node, std::move(winner.out.output));
          }
          output_paths[r] = path;
          if (tracer != nullptr) {
            tracer->end(winner.span, reduce_stats[r].output_bytes,
                        reduce_stats[r].output_records);
          }
          break;
        }
      });
    }
    cluster_.pool().run_all(std::move(tasks));
  }
  if (reduce_phase != 0) tracer->end(reduce_phase);
  if (tracer != nullptr) tracer->end(job_span);

  JobResult result;
  result.job_name = spec.name;
  result.output_dir = spec.output_dir;
  result.output_paths = std::move(output_paths);
  result.counters = counters.snapshot();
  result.map_tasks = std::move(map_stats);
  result.reduce_tasks = std::move(reduce_stats);
  result.elapsed_seconds = timer.elapsed_seconds();
  return result;
}

}  // namespace pairmr::mr
