#include "mr/engine.hpp"

#include <algorithm>
#include <cstdio>
#include <functional>
#include <memory>
#include <unordered_map>
#include <utility>

#include "common/check.hpp"
#include "common/log.hpp"
#include "common/stopwatch.hpp"
#include "mr/context.hpp"

namespace pairmr::mr {

namespace {

// One map task's input: a contiguous slice of a DFS file.
struct Split {
  std::shared_ptr<const DfsFile> file;
  std::size_t begin = 0;
  std::size_t end = 0;  // exclusive
  NodeId node = 0;      // where the task runs (data-local)
};

std::vector<Split> build_splits(SimDfs& dfs, const JobSpec& spec) {
  std::vector<Split> splits;
  for (const auto& path : spec.input_paths) {
    auto file = dfs.open(path);
    const std::size_t n = file->records.size();
    const std::uint64_t chunk =
        spec.max_records_per_split == 0 ? n : spec.max_records_per_split;
    if (n == 0) {
      // Empty files still produce one (empty) task so setup/cleanup-only
      // mappers run — mirrors Hadoop behaviour with empty splits disabled;
      // we skip them instead to keep task counts meaningful.
      continue;
    }
    for (std::size_t begin = 0; begin < n;
         begin += static_cast<std::size_t>(chunk)) {
      const std::size_t end =
          std::min(n, begin + static_cast<std::size_t>(chunk));
      splits.push_back(Split{file, begin, end, file->home});
    }
  }
  return splits;
}

// Stable sort-and-group of records by key; invokes `fn(key, values)` per
// group in ascending key order.
void group_by_key(
    std::vector<Record>& records,
    const std::function<void(const Bytes&, const std::vector<Bytes>&)>& fn) {
  std::stable_sort(records.begin(), records.end(),
                   [](const Record& a, const Record& b) {
                     return a.key < b.key;
                   });
  std::size_t i = 0;
  std::vector<Bytes> values;
  while (i < records.size()) {
    std::size_t j = i;
    values.clear();
    while (j < records.size() && records[j].key == records[i].key) {
      values.push_back(std::move(records[j].value));
      ++j;
    }
    fn(records[i].key, values);
    i = j;
  }
}

// Run the combiner over one partition bucket, replacing its contents.
void run_combiner(const JobSpec& spec, NodeId node, TaskIndex task,
                  Counters& counters, std::vector<Record>& bucket) {
  ReduceContext ctx(node, task, counters);
  auto combiner = spec.combiner_factory();
  combiner->setup(ctx);
  counters.add(counter::kCombineInputRecords, bucket.size());
  group_by_key(bucket, [&](const Bytes& key, const std::vector<Bytes>& vals) {
    combiner->reduce(key, vals, ctx);
  });
  combiner->cleanup(ctx);
  counters.add(counter::kCombineOutputRecords, ctx.output().size());
  bucket = std::move(ctx.output());
}

}  // namespace

JobResult Engine::run(const JobSpec& spec) {
  PAIRMR_REQUIRE(spec.mapper_factory != nullptr, "job needs a mapper");
  PAIRMR_REQUIRE(spec.map_only || spec.reducer_factory != nullptr,
                 "job needs a reducer (or map_only)");
  PAIRMR_REQUIRE(!(spec.map_only && spec.combiner_factory),
                 "map-only jobs cannot combine");
  PAIRMR_REQUIRE(!spec.output_dir.empty(), "job needs an output dir");
  PAIRMR_REQUIRE(!spec.input_paths.empty(), "job needs input paths");

  const Stopwatch timer;
  const std::uint32_t num_nodes = cluster_.num_nodes();
  // Map-only jobs use a single pass-through bucket so emission order is
  // preserved in the output.
  const std::uint32_t num_reducers =
      spec.map_only ? 1
      : spec.num_reduce_tasks == 0 ? num_nodes
                                   : spec.num_reduce_tasks;
  const HashPartitioner default_partitioner;
  const Partitioner& partitioner =
      spec.partitioner ? *spec.partitioner : default_partitioner;

  Counters counters;
  SimDfs& dfs = cluster_.dfs();
  NetworkMeter& net = cluster_.network();

  // --- Distributed cache broadcast -------------------------------------
  std::unordered_map<std::string, std::shared_ptr<const DfsFile>> cache;
  for (const auto& path : spec.cache_paths) {
    auto file = dfs.open(path);
    // Ship the file to every node other than its home (its home reads it
    // from local disk). This is the paper's "distribute to all nodes".
    for (NodeId node = 0; node < num_nodes; ++node) {
      net.transfer(file->home, node, file->bytes);
    }
    counters.add(counter::kCacheBroadcastBytes,
                 file->bytes * (num_nodes - 1));
    cache.emplace(path, std::move(file));
  }

  // --- Map phase --------------------------------------------------------
  const std::vector<Split> splits = build_splits(dfs, spec);
  PAIRMR_REQUIRE(!splits.empty(), "job has no input records");
  const auto num_map_tasks = static_cast<TaskIndex>(splits.size());

  PAIRMR_LOG(kInfo) << "job '" << spec.name << "': " << num_map_tasks
                    << " map task(s), " << num_reducers << " reduce task(s)";

  // map_outputs[m][r] = bucket destined for reduce task r from map task m.
  std::vector<std::vector<std::vector<Record>>> map_outputs(num_map_tasks);
  std::vector<TaskStats> map_stats(num_map_tasks);

  const std::uint32_t max_attempts = std::max(1u, spec.max_task_attempts);

  {
    std::vector<std::function<void()>> tasks;
    tasks.reserve(num_map_tasks);
    for (TaskIndex m = 0; m < num_map_tasks; ++m) {
      tasks.push_back([&, m] {
        // Attempt loop (Hadoop task retry): a failed attempt's emissions
        // and counters are discarded wholesale; only the successful
        // attempt's state merges into the job.
        for (std::uint32_t attempt = 0;; ++attempt) {
          const Split& split = splits[m];
          Counters attempt_counters;
          MapContext ctx(split.node, m, partitioner, num_reducers,
                         attempt_counters, cache, split.file->path);
          try {
            auto mapper = spec.mapper_factory();
            mapper->setup(ctx);
            for (std::size_t i = split.begin; i < split.end; ++i) {
              const Record& rec = split.file->records[i];
              mapper->map(rec.key, rec.value, ctx);
            }
            mapper->cleanup(ctx);
          } catch (...) {
            if (attempt + 1 >= max_attempts) throw;
            PAIRMR_LOG(kWarn) << "map task " << m << " attempt " << attempt
                              << " failed; retrying";
            continue;
          }

          attempt_counters.add(counter::kMapInputRecords,
                               split.end - split.begin);
          attempt_counters.add(counter::kMapOutputRecords,
                               ctx.records_emitted());
          attempt_counters.add(counter::kMapOutputBytes,
                               ctx.bytes_emitted());

          if (spec.combiner_factory) {
            for (auto& bucket : ctx.buckets()) {
              if (!bucket.empty()) {
                run_combiner(spec, split.node, m, attempt_counters, bucket);
              }
            }
          }

          map_stats[m] = TaskStats{
              .index = m,
              .node = split.node,
              .input_records = split.end - split.begin,
              .output_records = ctx.records_emitted(),
              .output_bytes = ctx.bytes_emitted(),
          };
          map_outputs[m] = std::move(ctx.buckets());
          counters.merge(attempt_counters);
          break;
        }
      });
    }
    cluster_.pool().run_all(std::move(tasks));
  }

  // --- Map-only: write map outputs directly, no shuffle ------------------
  if (spec.map_only) {
    std::vector<std::string> output_paths(num_map_tasks);
    for (TaskIndex m = 0; m < num_map_tasks; ++m) {
      char name[32];
      std::snprintf(name, sizeof(name), "part-m-%05u", m);
      const std::string path = spec.output_dir + "/" + name;
      PAIRMR_CHECK(map_outputs[m].size() == 1,
                   "map-only job must have one bucket");
      dfs.write_file(path, map_stats[m].node,
                     std::move(map_outputs[m][0]));
      output_paths[m] = path;
    }
    JobResult result;
    result.job_name = spec.name;
    result.output_dir = spec.output_dir;
    result.output_paths = std::move(output_paths);
    result.counters = counters.snapshot();
    result.map_tasks = std::move(map_stats);
    result.elapsed_seconds = timer.elapsed_seconds();
    return result;
  }

  // --- Shuffle + reduce phase -------------------------------------------
  std::vector<TaskStats> reduce_stats(num_reducers);
  std::vector<std::string> output_paths(num_reducers);

  {
    std::vector<std::function<void()>> tasks;
    tasks.reserve(num_reducers);
    for (TaskIndex r = 0; r < num_reducers; ++r) {
      tasks.push_back([&, r] {
        const NodeId node = r % num_nodes;

        for (std::uint32_t attempt = 0;; ++attempt) {
          // Fetch this reducer's bucket from every map task, in map-task
          // order (deterministic). Buckets stay in place until the
          // attempt succeeds so a retry can refetch; the network meter is
          // charged once per successful attempt.
          std::vector<Record> input;
          std::uint64_t input_records = 0;
          std::uint64_t local_bytes = 0;
          std::uint64_t remote_bytes = 0;
          std::vector<std::pair<NodeId, std::uint64_t>> fetches;
          fetches.reserve(num_map_tasks);
          for (TaskIndex m = 0; m < num_map_tasks; ++m) {
            const auto& bucket = map_outputs[m][r];
            std::uint64_t bucket_bytes = 0;
            for (const auto& rec : bucket) bucket_bytes += rec.size_bytes();
            (map_stats[m].node == node ? local_bytes : remote_bytes) +=
                bucket_bytes;
            fetches.emplace_back(map_stats[m].node, bucket_bytes);
            input_records += bucket.size();
            input.insert(input.end(), bucket.begin(), bucket.end());
          }

          Counters attempt_counters;
          ReduceContext ctx(node, r, attempt_counters, &cache);
          std::uint64_t groups = 0;
          std::uint64_t max_group_records = 0;
          std::uint64_t max_group_bytes = 0;
          try {
            auto reducer = spec.reducer_factory();
            reducer->setup(ctx);
            group_by_key(
                input, [&](const Bytes& key, const std::vector<Bytes>& vals) {
                  ++groups;
                  std::uint64_t group_bytes = 0;
                  for (const auto& v : vals)
                    group_bytes += key.size() + v.size();
                  max_group_records = std::max<std::uint64_t>(
                      max_group_records, vals.size());
                  max_group_bytes = std::max(max_group_bytes, group_bytes);
                  reducer->reduce(key, vals, ctx);
                });
            reducer->cleanup(ctx);
          } catch (...) {
            if (attempt + 1 >= max_attempts) throw;
            PAIRMR_LOG(kWarn) << "reduce task " << r << " attempt "
                              << attempt << " failed; retrying";
            continue;
          }

          // Successful attempt: release map outputs, meter the fetches,
          // publish counters and output.
          for (TaskIndex m = 0; m < num_map_tasks; ++m) {
            auto& bucket = map_outputs[m][r];
            bucket.clear();
            bucket.shrink_to_fit();
          }
          for (const auto& [src, bytes] : fetches) {
            net.transfer(src, node, bytes);
          }

          attempt_counters.add(counter::kShuffleBytesLocal, local_bytes);
          attempt_counters.add(counter::kShuffleBytesRemote, remote_bytes);
          attempt_counters.add(counter::kReduceInputGroups, groups);
          attempt_counters.add(counter::kReduceInputRecords, input_records);
          attempt_counters.add(counter::kReduceOutputRecords,
                               ctx.output().size());
          attempt_counters.add(counter::kReduceOutputBytes,
                               ctx.bytes_emitted());
          attempt_counters.note_max(counter::kReduceMaxGroupRecords,
                                    max_group_records);
          attempt_counters.note_max(counter::kReduceMaxGroupBytes,
                                    max_group_bytes);
          counters.merge(attempt_counters);

          reduce_stats[r] = TaskStats{
              .index = r,
              .node = node,
              .input_records = input_records,
              .output_records = ctx.output().size(),
              .output_bytes = ctx.bytes_emitted(),
              .max_group_records = max_group_records,
              .max_group_bytes = max_group_bytes,
          };

          char name[32];
          std::snprintf(name, sizeof(name), "part-r-%05u", r);
          const std::string path = spec.output_dir + "/" + name;
          dfs.write_file(path, node, std::move(ctx.output()));
          output_paths[r] = path;
          break;
        }
      });
    }
    cluster_.pool().run_all(std::move(tasks));
  }

  JobResult result;
  result.job_name = spec.name;
  result.output_dir = spec.output_dir;
  result.output_paths = std::move(output_paths);
  result.counters = counters.snapshot();
  result.map_tasks = std::move(map_stats);
  result.reduce_tasks = std::move(reduce_stats);
  result.elapsed_seconds = timer.elapsed_seconds();
  return result;
}

}  // namespace pairmr::mr
