#include "mr/engine.hpp"

#include <algorithm>
#include <cstdio>
#include <functional>
#include <iterator>
#include <memory>
#include <optional>
#include <unordered_map>
#include <utility>

#include "common/check.hpp"
#include "common/log.hpp"
#include "common/stopwatch.hpp"
#include "mr/context.hpp"
#include "mr/fault.hpp"
#include "mr/group.hpp"
#include "mr/trace.hpp"

namespace pairmr::mr {

namespace {

// Backstop against a runaway fault plan (a correct plan kills any task
// only finitely often, so this is never reached in practice).
constexpr std::uint32_t kAttemptCap = 1000;

// One map task's input: a contiguous slice of a DFS file.
struct Split {
  std::shared_ptr<const DfsFile> file;
  std::size_t begin = 0;
  std::size_t end = 0;  // exclusive
  NodeId node = 0;      // where the task runs (data-local)
};

std::vector<Split> build_splits(SimDfs& dfs, const JobSpec& spec) {
  std::vector<Split> splits;
  for (const auto& path : spec.input_paths) {
    auto file = dfs.open(path);
    const std::size_t n = file->records.size();
    const std::uint64_t chunk =
        spec.max_records_per_split == 0 ? n : spec.max_records_per_split;
    if (n == 0) {
      // Empty files still produce one (empty) task so setup/cleanup-only
      // mappers run — mirrors Hadoop behaviour with empty splits disabled;
      // we skip them instead to keep task counts meaningful.
      continue;
    }
    for (std::size_t begin = 0; begin < n;
         begin += static_cast<std::size_t>(chunk)) {
      const std::size_t end =
          std::min(n, begin + static_cast<std::size_t>(chunk));
      splits.push_back(Split{file, begin, end, file->home});
    }
  }
  return splits;
}

// Run the combiner over one partition bucket, replacing its contents.
// `parent` is the spill span the combine nests under (0 when untraced).
void run_combiner(const JobSpec& spec, NodeId node, TaskIndex task,
                  Counters& counters, std::vector<Record>& bucket,
                  Tracer* tracer, SpanId parent) {
  ScopedSpan combine(
      tracer, tracer != nullptr
                  ? tracer->begin_op(parent, SpanKind::kCombine, node)
                  : 0);
  ReduceContext ctx(node, task, counters, nullptr, tracer, combine.id());
  auto combiner = spec.combiner_factory();
  combiner->setup(ctx);
  counters.add(counter::kCombineInputRecords, bucket.size());
  group_by_key(bucket, [&](const Bytes& key, const std::vector<Bytes>& vals) {
    combiner->reduce(key, vals, ctx);
  });
  combiner->cleanup(ctx);
  counters.add(counter::kCombineOutputRecords, ctx.output().size());
  if (tracer != nullptr) {
    std::uint64_t bytes = 0;
    for (const auto& rec : ctx.output()) bytes += rec.size_bytes();
    combine.set_payload(bytes, ctx.output().size());
  }
  bucket = std::move(ctx.output());
}

}  // namespace

JobResult Engine::run(const JobSpec& spec) {
  spec.validate();

  const Stopwatch timer;
  const std::uint32_t num_nodes = cluster_.num_nodes();
  // Map-only jobs use a single pass-through bucket so emission order is
  // preserved in the output.
  const std::uint32_t num_reducers =
      spec.map_only ? 1
      : spec.num_reduce_tasks == 0 ? num_nodes
                                   : spec.num_reduce_tasks;
  const HashPartitioner default_partitioner;
  const Partitioner& partitioner =
      spec.partitioner ? *spec.partitioner : default_partitioner;

  static const FaultPlan kNoFaults;
  const FaultPlan& plan = spec.fault_plan ? *spec.fault_plan : kNoFaults;

  // When no execution can ever be repeated — no fault plan (so no kills,
  // stragglers, or dropped fetches) and no user-error retries — every
  // reduce task settles on its first execution and the shuffle can *move*
  // map-output records into the reducer instead of copying them. Any
  // retry possibility forces copies, since re-execution re-fetches the
  // buckets.
  const bool movable_shuffle =
      spec.fault_plan == nullptr && spec.max_task_attempts <= 1;

  // Tracing is opt-in and nullable: every recording site below is guarded,
  // so an untraced run does no tracer work at all.
  Tracer* const tracer =
      spec.tracer != nullptr ? spec.tracer : cluster_.tracer();
  const SpanId job_span =
      tracer != nullptr ? tracer->begin_job(spec.name) : 0;

  // Node the plan loses during this job; a node that already failed in an
  // earlier job does not die twice (it is simply never scheduled).
  std::optional<NodeId> doomed;
  if (plan.failed_node()) {
    PAIRMR_REQUIRE(*plan.failed_node() < num_nodes,
                   "fault plan fails an out-of-range node");
    if (cluster_.is_alive(*plan.failed_node())) doomed = plan.failed_node();
  }

  // Nodes able to host (re)scheduled attempts for the rest of the job.
  std::vector<NodeId> usable;
  usable.reserve(num_nodes);
  for (NodeId nd = 0; nd < num_nodes; ++nd) {
    if (cluster_.is_alive(nd) && !(doomed && nd == *doomed)) {
      usable.push_back(nd);
    }
  }
  PAIRMR_REQUIRE(!usable.empty(), "fault plan leaves no usable node");

  Counters counters;
  SimDfs& dfs = cluster_.dfs();
  NetworkMeter& net = cluster_.network();

  // Deterministic placement for rescheduled and speculative attempts.
  const auto place = [&usable](std::uint64_t origin, std::uint64_t salt) {
    return usable[(origin + salt) % usable.size()];
  };

  // The node hosting the backup copy of a straggler: the next usable node
  // after the one the original ran on.
  const auto backup_node_for = [&usable](NodeId original) {
    const auto it = std::find(usable.begin(), usable.end(), original);
    const auto idx = static_cast<std::size_t>(it - usable.begin());
    return usable[(idx + 1) % usable.size()];
  };

  // Fault-attributable traffic: metered like any transfer and additionally
  // tallied as recovery overhead (a fault-free run never moves these bytes).
  const auto recovery_transfer = [&](NodeId src, NodeId dst,
                                     std::uint64_t bytes) {
    net.transfer(src, dst, bytes);
    if (src != dst) counters.add(counter::kRecoveryBytes, bytes);
  };

  // --- Distributed cache broadcast -------------------------------------
  std::unordered_map<std::string, std::shared_ptr<const DfsFile>> cache;
  SpanId broadcast_phase = 0;
  if (tracer != nullptr && !spec.cache_paths.empty()) {
    broadcast_phase = tracer->begin_phase(job_span, "broadcast");
  }
  for (const auto& path : spec.cache_paths) {
    auto file = dfs.open(path);
    // Ship the file to every live node other than its home (its home reads
    // it from local disk). This is the paper's "distribute to all nodes".
    // A node doomed to die mid-job still receives its (wasted) copy.
    std::uint64_t shipped = 0;
    for (NodeId node = 0; node < num_nodes; ++node) {
      if (!cluster_.is_alive(node)) continue;
      net.transfer(file->home, node, file->bytes);
      if (tracer != nullptr) {
        tracer->record_transfer(broadcast_phase, SpanKind::kCacheBroadcast,
                                file->home, node, file->bytes, path);
      }
      if (node != file->home) shipped += file->bytes;
    }
    counters.add(counter::kCacheBroadcastBytes, shipped);
    cache.emplace(path, std::move(file));
  }
  if (broadcast_phase != 0) tracer->end(broadcast_phase);

  // --- Map phase --------------------------------------------------------
  const std::vector<Split> splits = build_splits(dfs, spec);
  PAIRMR_REQUIRE(!splits.empty(), "job has no input records");
  const auto num_map_tasks = static_cast<TaskIndex>(splits.size());

  PAIRMR_LOG(kInfo) << "job '" << spec.name << "': " << num_map_tasks
                    << " map task(s), " << num_reducers << " reduce task(s)";

  // map_outputs[m][r] = bucket destined for reduce task r from map task m.
  std::vector<std::vector<std::vector<Record>>> map_outputs(num_map_tasks);
  std::vector<TaskStats> map_stats(num_map_tasks);

  const std::uint32_t max_attempts = std::max(1u, spec.max_task_attempts);

  const SpanId map_phase =
      tracer != nullptr ? tracer->begin_phase(job_span, "map") : 0;
  {
    std::vector<std::function<void()>> tasks;
    tasks.reserve(num_map_tasks);
    for (TaskIndex m = 0; m < num_map_tasks; ++m) {
      tasks.push_back([&, m] {
        const Split& split = splits[m];
        const NodeId home = split.file->home;
        std::uint64_t input_bytes = 0;
        for (std::size_t i = split.begin; i < split.end; ++i) {
          input_bytes += split.file->records[i].size_bytes();
        }

        // One full execution of the task's user code on `node`. Each
        // execution gets a fresh context and counter bag; only the
        // execution that is ultimately kept merges into the job.
        const auto execute = [&](NodeId node, SpanId attempt_span) {
          auto exec_counters = std::make_unique<Counters>();
          ScopedSpan exec(tracer,
                          tracer != nullptr
                              ? tracer->begin_op(attempt_span,
                                                 SpanKind::kMapExec, node)
                              : 0);
          auto ctx = std::make_unique<MapContext>(
              node, m, partitioner, num_reducers, *exec_counters, cache,
              split.file->path, tracer, exec.id());
          auto mapper = spec.mapper_factory();
          mapper->setup(*ctx);
          for (std::size_t i = split.begin; i < split.end; ++i) {
            const Record& rec = split.file->records[i];
            mapper->map(rec.key, rec.value, *ctx);
          }
          mapper->cleanup(*ctx);
          exec.set_payload(ctx->bytes_emitted(), ctx->records_emitted());
          return std::pair{std::move(ctx), std::move(exec_counters)};
        };

        // Attempt loop (Hadoop task retry): a failed attempt's emissions
        // and counters are discarded wholesale; only the kept attempt's
        // state merges into the job. Injected faults retry without
        // consuming max_task_attempts (they are environmental, not bugs).
        std::uint32_t user_failures = 0;
        for (std::uint32_t attempt = 0;; ++attempt) {
          PAIRMR_CHECK(attempt < kAttemptCap, "map task retried too often");
          // Attempt 0 runs data-local (even on a node about to die — that
          // is what makes its loss cost something); retries move on.
          const NodeId node = (attempt == 0 && cluster_.is_alive(home))
                                  ? home
                                  : place(home, attempt);
          const SpanId att =
              tracer != nullptr
                  ? tracer->begin_task(map_phase, TaskKind::kMap, m, attempt,
                                       node)
                  : 0;
          // Reading the split away from its home replica travels the wire;
          // only recovery from faults ever needs that.
          if (node != home) {
            recovery_transfer(home, node, input_bytes);
            if (tracer != nullptr) {
              tracer->record_transfer(att, SpanKind::kInputRead, home, node,
                                      input_bytes, "recovery-reread");
            }
          }

          if ((doomed && node == *doomed) ||
              plan.kills_task(TaskKind::kMap, m, attempt)) {
            counters.add(counter::kTasksRetried, 1);
            if (tracer != nullptr) {
              tracer->mark_faulted(att, doomed && node == *doomed
                                            ? "node-lost"
                                            : "killed-by-fault-plan");
              tracer->end(att);
            }
            PAIRMR_LOG(kWarn) << "map task " << m << " attempt " << attempt
                              << " killed by fault plan; retrying";
            continue;
          }

          std::unique_ptr<MapContext> ctx;
          std::unique_ptr<Counters> exec_counters;
          try {
            std::tie(ctx, exec_counters) = execute(node, att);
          } catch (...) {
            const bool fatal = ++user_failures >= max_attempts;
            if (tracer != nullptr) {
              tracer->mark_faulted(att, "user-error");
              tracer->end(att);
            }
            if (fatal) throw;
            counters.add(counter::kTasksRetried, 1);
            PAIRMR_LOG(kWarn) << "map task " << m << " attempt " << attempt
                              << " failed; retrying";
            continue;
          }
          NodeId final_node = node;
          SpanId kept_span = att;

          // Speculative re-execution: a straggling task gets a backup copy
          // on another node; the plan decides the race. The loser's work
          // (and input re-read) is wasted, but the output is byte-identical
          // either way, so determinism survives.
          if (spec.speculative_execution && usable.size() > 1 &&
              plan.is_straggler(TaskKind::kMap, m)) {
            const NodeId backup = backup_node_for(node);
            const SpanId batt =
                tracer != nullptr
                    ? tracer->begin_task(map_phase, TaskKind::kMap, m,
                                         attempt, backup,
                                         /*speculative=*/true)
                    : 0;
            if (backup != home) {
              recovery_transfer(home, backup, input_bytes);
              if (tracer != nullptr) {
                tracer->record_transfer(batt, SpanKind::kInputRead, home,
                                        backup, input_bytes,
                                        "recovery-reread");
              }
            }
            auto [backup_ctx, backup_counters] = execute(backup, batt);
            counters.add(counter::kTasksSpeculative, 1);
            SpanId loser_span = batt;
            if (plan.backup_wins(TaskKind::kMap, m)) {
              counters.add(counter::kSpeculativeWins, 1);
              ctx = std::move(backup_ctx);
              exec_counters = std::move(backup_counters);
              final_node = backup;
              loser_span = att;
              kept_span = batt;
            }
            if (tracer != nullptr) {
              tracer->mark_faulted(loser_span, "lost-race");
              tracer->end(loser_span);
            }
          }

          exec_counters->add(counter::kMapInputRecords,
                             split.end - split.begin);
          exec_counters->add(counter::kMapOutputRecords,
                             ctx->records_emitted());
          exec_counters->add(counter::kMapOutputBytes, ctx->bytes_emitted());

          if (spec.combiner_factory) {
            ScopedSpan spill(tracer,
                             tracer != nullptr
                                 ? tracer->begin_op(kept_span,
                                                    SpanKind::kSpill,
                                                    final_node)
                                 : 0);
            for (auto& bucket : ctx->buckets()) {
              if (!bucket.empty()) {
                run_combiner(spec, final_node, m, *exec_counters, bucket,
                             tracer, spill.id());
              }
            }
            if (tracer != nullptr) {
              std::uint64_t out_bytes = 0;
              std::uint64_t out_records = 0;
              for (const auto& bucket : ctx->buckets()) {
                out_records += bucket.size();
                for (const auto& rec : bucket) out_bytes += rec.size_bytes();
              }
              spill.set_payload(out_bytes, out_records);
            }
          }

          map_stats[m] = TaskStats{
              .index = m,
              .node = final_node,
              .input_records = split.end - split.begin,
              .output_records = ctx->records_emitted(),
              .output_bytes = ctx->bytes_emitted(),
          };
          map_outputs[m] = std::move(ctx->buckets());
          counters.merge(*exec_counters);
          if (tracer != nullptr) {
            tracer->end(kept_span, ctx->bytes_emitted(),
                        ctx->records_emitted());
          }
          break;
        }
      });
    }
    cluster_.pool().run_all(std::move(tasks));
  }
  if (map_phase != 0) tracer->end(map_phase);

  // The doomed node is gone for good once the map phase ends: reduce
  // placement and every later job schedule around it.
  if (doomed) {
    PAIRMR_LOG(kWarn) << "node " << *doomed << " lost during job '"
                      << spec.name << "'";
    cluster_.fail_node(*doomed);
  }

  // --- Map-only: write map outputs directly, no shuffle ------------------
  if (spec.map_only) {
    const SpanId write_phase =
        tracer != nullptr ? tracer->begin_phase(job_span, "write") : 0;
    std::vector<std::string> output_paths(num_map_tasks);
    for (TaskIndex m = 0; m < num_map_tasks; ++m) {
      char name[32];
      std::snprintf(name, sizeof(name), "part-m-%05u", m);
      const std::string path = spec.output_dir + "/" + name;
      PAIRMR_CHECK(map_outputs[m].size() == 1,
                   "map-only job must have one bucket");
      {
        ScopedSpan write(tracer,
                         tracer != nullptr
                             ? tracer->begin_op(write_phase,
                                                SpanKind::kOutputWrite,
                                                map_stats[m].node, path)
                             : 0);
        write.set_payload(map_stats[m].output_bytes,
                          map_stats[m].output_records);
        dfs.write_file(path, map_stats[m].node,
                       std::move(map_outputs[m][0]));
      }
      output_paths[m] = path;
    }
    if (tracer != nullptr) {
      tracer->end(write_phase);
      tracer->end(job_span);
    }
    JobResult result;
    result.job_name = spec.name;
    result.output_dir = spec.output_dir;
    result.output_paths = std::move(output_paths);
    result.counters = counters.snapshot();
    result.map_tasks = std::move(map_stats);
    result.elapsed_seconds = timer.elapsed_seconds();
    return result;
  }

  // --- Shuffle + reduce phase -------------------------------------------
  std::vector<TaskStats> reduce_stats(num_reducers);
  std::vector<std::string> output_paths(num_reducers);

  const SpanId reduce_phase =
      tracer != nullptr ? tracer->begin_phase(job_span, "reduce") : 0;
  {
    std::vector<std::function<void()>> tasks;
    tasks.reserve(num_reducers);
    for (TaskIndex r = 0; r < num_reducers; ++r) {
      tasks.push_back([&, r] {
        // An injected fetch drop fires once per (reduce, map) pair.
        std::vector<bool> dropped(num_map_tasks, false);

        // One full execution of reduce task r: shuffle + sort + reduce.
        // Fetch volumes are recorded but metered by the caller, which
        // knows whether the execution's traffic was useful or wasted.
        struct Execution {
          NodeId node = 0;
          SpanId span = 0;  // attempt span (0 when untraced)
          std::vector<std::pair<NodeId, std::uint64_t>> fetches;
          std::uint64_t local_bytes = 0;
          std::uint64_t remote_bytes = 0;
          std::uint64_t input_records = 0;
          std::uint64_t groups = 0;
          std::uint64_t max_group_records = 0;
          std::uint64_t max_group_bytes = 0;
          std::unique_ptr<Counters> counters;
          std::unique_ptr<ReduceContext> ctx;
        };

        const auto bucket_bytes_of = [&](TaskIndex m) {
          std::uint64_t bytes = 0;
          for (const auto& rec : map_outputs[m][r]) bytes += rec.size_bytes();
          return bytes;
        };

        const auto execute = [&](NodeId node, SpanId attempt_span) {
          Execution e;
          e.node = node;
          e.span = attempt_span;
          e.counters = std::make_unique<Counters>();
          // Fetch this reducer's bucket from every map task, in map-task
          // order (deterministic). Buckets stay in place until the task
          // settles, so any re-execution can re-fetch them.
          std::vector<Record> input;
          {
            std::size_t total = 0;
            for (TaskIndex m = 0; m < num_map_tasks; ++m) {
              total += map_outputs[m][r].size();
            }
            input.reserve(total);
          }
          for (TaskIndex m = 0; m < num_map_tasks; ++m) {
            auto& bucket = map_outputs[m][r];
            const std::uint64_t bytes = bucket_bytes_of(m);
            const NodeId src = map_stats[m].node;
            if (!dropped[m] && plan.drops_fetch(r, m)) {
              // The first copy died mid-transfer and is thrown away; the
              // immediate re-fetch below is the one that counts.
              dropped[m] = true;
              recovery_transfer(src, node, bytes);
              counters.add(counter::kShuffleFetchRetries, 1);
              if (tracer != nullptr) {
                tracer->record_transfer(attempt_span,
                                        SpanKind::kShuffleFetch, src, node,
                                        bytes, "dropped-mid-transfer");
              }
            }
            ScopedSpan fetch(
                tracer, tracer != nullptr
                            ? tracer->begin_transfer(attempt_span,
                                                     SpanKind::kShuffleFetch,
                                                     src, node)
                            : 0);
            (src == node ? e.local_bytes : e.remote_bytes) += bytes;
            e.fetches.emplace_back(src, bytes);
            e.input_records += bucket.size();
            fetch.set_payload(bytes, bucket.size());
            if (movable_shuffle) {
              input.insert(input.end(), std::make_move_iterator(bucket.begin()),
                           std::make_move_iterator(bucket.end()));
            } else {
              input.insert(input.end(), bucket.begin(), bucket.end());
            }
          }

          ScopedSpan exec(tracer,
                          tracer != nullptr
                              ? tracer->begin_op(attempt_span,
                                                 SpanKind::kReduceExec, node)
                              : 0);
          e.ctx = std::make_unique<ReduceContext>(node, r, *e.counters,
                                                  &cache, tracer, exec.id());
          auto reducer = spec.reducer_factory();
          reducer->setup(*e.ctx);
          group_by_key(
              input, [&](const Bytes& key, const std::vector<Bytes>& vals) {
                ++e.groups;
                std::uint64_t group_bytes = 0;
                for (const auto& v : vals) group_bytes += key.size() + v.size();
                e.max_group_records =
                    std::max<std::uint64_t>(e.max_group_records, vals.size());
                e.max_group_bytes = std::max(e.max_group_bytes, group_bytes);
                reducer->reduce(key, vals, *e.ctx);
              });
          reducer->cleanup(*e.ctx);
          exec.set_payload(e.ctx->bytes_emitted(), e.ctx->output().size());
          return e;
        };

        // The shuffle traffic of an attempt that fetched its input but
        // never published output (killed, crashed, or lost the race).
        // `attempt_span` is set only when the attempt never executed (no
        // fetch spans exist yet); executions record their own.
        const auto charge_wasted_fetches = [&](NodeId node,
                                               SpanId attempt_span) {
          for (TaskIndex m = 0; m < num_map_tasks; ++m) {
            const std::uint64_t bytes = bucket_bytes_of(m);
            recovery_transfer(map_stats[m].node, node, bytes);
            if (tracer != nullptr && attempt_span != 0) {
              tracer->record_transfer(attempt_span, SpanKind::kShuffleFetch,
                                      map_stats[m].node, node, bytes,
                                      "wasted");
            }
          }
        };

        std::uint32_t user_failures = 0;
        for (std::uint32_t attempt = 0;; ++attempt) {
          PAIRMR_CHECK(attempt < kAttemptCap, "reduce task retried too often");
          const NodeId node = place(r, attempt);
          const SpanId att =
              tracer != nullptr
                  ? tracer->begin_task(reduce_phase, TaskKind::kReduce, r,
                                       attempt, node)
                  : 0;

          if (plan.kills_task(TaskKind::kReduce, r, attempt)) {
            // Aborted mid-task: its shuffle happened and was for nothing.
            charge_wasted_fetches(node, att);
            counters.add(counter::kTasksRetried, 1);
            if (tracer != nullptr) {
              tracer->mark_faulted(att, "killed-by-fault-plan");
              tracer->end(att);
            }
            PAIRMR_LOG(kWarn) << "reduce task " << r << " attempt " << attempt
                              << " killed by fault plan; retrying";
            continue;
          }

          Execution winner;
          try {
            winner = execute(node, att);
          } catch (...) {
            const bool fatal = ++user_failures >= max_attempts;
            if (tracer != nullptr) {
              tracer->mark_faulted(att, "user-error");
              tracer->end(att);
            }
            if (fatal) throw;
            charge_wasted_fetches(node, 0);
            counters.add(counter::kTasksRetried, 1);
            PAIRMR_LOG(kWarn) << "reduce task " << r << " attempt "
                              << attempt << " failed; retrying";
            continue;
          }

          if (spec.speculative_execution && usable.size() > 1 &&
              plan.is_straggler(TaskKind::kReduce, r)) {
            const NodeId backup_node = backup_node_for(node);
            const SpanId batt =
                tracer != nullptr
                    ? tracer->begin_task(reduce_phase, TaskKind::kReduce, r,
                                         attempt, backup_node,
                                         /*speculative=*/true)
                    : 0;
            Execution backup = execute(backup_node, batt);
            counters.add(counter::kTasksSpeculative, 1);
            if (plan.backup_wins(TaskKind::kReduce, r)) {
              counters.add(counter::kSpeculativeWins, 1);
              std::swap(winner, backup);
            }
            // After the optional swap, `backup` holds the losing execution.
            charge_wasted_fetches(backup.node, 0);
            if (tracer != nullptr) {
              tracer->mark_faulted(backup.span, "lost-race");
              tracer->end(backup.span);
            }
          }

          // Winning execution: release map outputs, meter its shuffle,
          // publish counters and output.
          for (TaskIndex m = 0; m < num_map_tasks; ++m) {
            auto& bucket = map_outputs[m][r];
            bucket.clear();
            bucket.shrink_to_fit();
          }
          for (const auto& [src, bytes] : winner.fetches) {
            net.transfer(src, winner.node, bytes);
          }

          winner.counters->add(counter::kShuffleBytesLocal,
                               winner.local_bytes);
          winner.counters->add(counter::kShuffleBytesRemote,
                               winner.remote_bytes);
          winner.counters->add(counter::kReduceInputGroups, winner.groups);
          winner.counters->add(counter::kReduceInputRecords,
                               winner.input_records);
          winner.counters->add(counter::kReduceOutputRecords,
                               winner.ctx->output().size());
          winner.counters->add(counter::kReduceOutputBytes,
                               winner.ctx->bytes_emitted());
          winner.counters->note_max(counter::kReduceMaxGroupRecords,
                                    winner.max_group_records);
          winner.counters->note_max(counter::kReduceMaxGroupBytes,
                                    winner.max_group_bytes);
          counters.merge(*winner.counters);

          reduce_stats[r] = TaskStats{
              .index = r,
              .node = winner.node,
              .input_records = winner.input_records,
              .output_records = winner.ctx->output().size(),
              .output_bytes = winner.ctx->bytes_emitted(),
              .max_group_records = winner.max_group_records,
              .max_group_bytes = winner.max_group_bytes,
          };

          char name[32];
          std::snprintf(name, sizeof(name), "part-r-%05u", r);
          const std::string path = spec.output_dir + "/" + name;
          {
            ScopedSpan write(tracer,
                             tracer != nullptr
                                 ? tracer->begin_op(winner.span,
                                                    SpanKind::kOutputWrite,
                                                    winner.node, path)
                                 : 0);
            write.set_payload(reduce_stats[r].output_bytes,
                              reduce_stats[r].output_records);
            dfs.write_file(path, winner.node,
                           std::move(winner.ctx->output()));
          }
          output_paths[r] = path;
          if (tracer != nullptr) {
            tracer->end(winner.span, reduce_stats[r].output_bytes,
                        reduce_stats[r].output_records);
          }
          break;
        }
      });
    }
    cluster_.pool().run_all(std::move(tasks));
  }
  if (reduce_phase != 0) tracer->end(reduce_phase);
  if (tracer != nullptr) tracer->end(job_span);

  JobResult result;
  result.job_name = spec.name;
  result.output_dir = spec.output_dir;
  result.output_paths = std::move(output_paths);
  result.counters = counters.snapshot();
  result.map_tasks = std::move(map_stats);
  result.reduce_tasks = std::move(reduce_stats);
  result.elapsed_seconds = timer.elapsed_seconds();
  return result;
}

}  // namespace pairmr::mr
